// Parallel portfolio scaling — wall-clock to the exact front at 1/2/4/8
// workers on Table-2-class instances, plus the cross-thread-count front
// identity check (the method is exact; any mismatch is a bug and exits 1).
//
// Select instances with ASPMT_SCALING_INSTANCES (comma-separated suite
// names, default "S06,S07,S09"); the per-method time limit comes from
// ASPMT_BENCH_TIMEOUT as everywhere else.  Note that on a single-core
// container the portfolio can only win algorithmically (slice seeding +
// diversified restarts shrinking total work), not by using more hardware —
// interpret speedups together with the machine's core count.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dse/explorer.hpp"
#include "dse/parallel_explorer.hpp"
#include "suite.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::string> selected_instances() {
  std::string csv = "S06,S07,S09";
  if (const char* env = std::getenv("ASPMT_SCALING_INSTANCES"); env != nullptr) {
    csv = env;
  }
  std::vector<std::string> names;
  std::istringstream iss(csv);
  std::string part;
  while (std::getline(iss, part, ',')) {
    if (!part.empty()) names.push_back(part);
  }
  return names;
}

}  // namespace

int main() {
  using namespace aspmt;
  const double limit = bench::method_time_limit();
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  std::cout << "Parallel scaling: time to the exact front (limit "
            << util::fmt(limit, 1) << "s per run, "
            << std::thread::hardware_concurrency() << " hardware threads)\n\n";

  bench::Report report("parallel_scaling");
  report.metric("time_limit_s", limit);
  report.metric("hardware_threads",
                static_cast<double>(std::thread::hardware_concurrency()));
  util::Table table({"inst", "|front|", "seq[s]", "p1[s]", "p2[s]", "p4[s]",
                     "p8[s]", "speedup@4"});
  bool any_mismatch = false;
  for (const auto& entry : bench::standard_suite()) {
    const auto names = selected_instances();
    if (std::find(names.begin(), names.end(), entry.name) == names.end()) {
      continue;
    }
    const synth::Specification spec = gen::generate(entry.config);

    dse::ExploreOptions seq_opts;
    seq_opts.common.time_limit_seconds = limit;
    const dse::ExploreResult seq = dse::explore(spec, seq_opts);

    std::vector<std::string> row{
        entry.name,
        util::fmt(static_cast<long long>(seq.front.size())),
        seq.stats.complete ? util::fmt(seq.stats.seconds, 3)
                           : std::string("t/o")};
    double t1 = -1.0;
    double t4 = -1.0;
    for (const std::size_t n : thread_counts) {
      dse::ParallelExploreOptions popts;
      popts.threads = n;
      popts.common.time_limit_seconds = limit;
      const dse::ParallelExploreResult par = dse::explore_parallel(spec, popts);
      if (seq.stats.complete && par.base.stats.complete &&
          par.base.front != seq.front) {
        std::cerr << "FRONT MISMATCH on " << entry.name << " at " << n
                  << " threads\n";
        any_mismatch = true;
      }
      row.push_back(par.base.stats.complete ? util::fmt(par.base.stats.seconds, 3)
                                       : std::string("t/o"));
      if (n == 1 && par.base.stats.complete) t1 = par.base.stats.seconds;
      if (n == 4 && par.base.stats.complete) t4 = par.base.stats.seconds;
      report.metric(
          entry.name + ".p" + util::fmt(static_cast<long long>(n)) + "_s",
          par.base.stats.seconds);
    }
    report.metric(entry.name + ".seq_s", seq.stats.seconds);
    report.metric(entry.name + ".front_size",
                  static_cast<double>(seq.front.size()));
    row.push_back(t1 > 0.0 && t4 > 0.0 ? util::fmt(t1 / t4, 2) + "x"
                                       : std::string("-"));
    table.add_row(row);
  }
  table.print(std::cout);
  if (any_mismatch) return 1;
  std::cout << "\nall completed runs agree on every front\n";
  const std::string path = report.write();
  std::cout << "wrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
