#include "suite.hpp"

#include <cstdlib>

namespace aspmt::bench {

std::vector<SuiteEntry> standard_suite() {
  using gen::Architecture;
  std::vector<SuiteEntry> suite;
  auto add = [&](std::string name, std::uint64_t seed, std::uint32_t tasks,
                 Architecture arch, std::uint32_t options, std::uint32_t layers,
                 std::uint32_t bus_procs = 3) {
    gen::GeneratorConfig c;
    c.seed = seed;
    c.tasks = tasks;
    c.architecture = arch;
    c.options_per_task = options;
    c.layers = layers;
    c.bus_processors = bus_procs;
    suite.push_back(SuiteEntry{std::move(name), c});
  };
  add("S01", 101, 4, Architecture::SharedBus, 2, 2, 2);
  add("S02", 102, 5, Architecture::SharedBus, 2, 3, 3);
  add("S03", 103, 6, Architecture::SharedBus, 2, 3, 3);
  add("S04", 104, 5, Architecture::Mesh2x2, 2, 3);
  add("S05", 105, 6, Architecture::Mesh2x2, 2, 3);
  add("S06", 106, 8, Architecture::SharedBus, 3, 4, 4);
  add("S07", 107, 8, Architecture::Mesh2x2, 2, 4);
  add("S08", 108, 8, Architecture::Mesh3x3, 2, 4);
  add("S09", 110, 11, Architecture::Mesh3x3, 2, 5);
  add("S10", 110, 12, Architecture::Mesh3x3, 3, 5);
  return suite;
}

double method_time_limit() {
  if (const char* env = std::getenv("ASPMT_BENCH_TIMEOUT"); env != nullptr) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 40.0;
}

}  // namespace aspmt::bench
