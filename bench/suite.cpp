#include "suite.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace aspmt::bench {

std::vector<SuiteEntry> standard_suite() {
  using gen::Architecture;
  std::vector<SuiteEntry> suite;
  auto add = [&](std::string name, std::uint64_t seed, std::uint32_t tasks,
                 Architecture arch, std::uint32_t options, std::uint32_t layers,
                 std::uint32_t bus_procs = 3) {
    gen::GeneratorConfig c;
    c.seed = seed;
    c.tasks = tasks;
    c.architecture = arch;
    c.options_per_task = options;
    c.layers = layers;
    c.bus_processors = bus_procs;
    suite.push_back(SuiteEntry{std::move(name), c});
  };
  add("S01", 101, 4, Architecture::SharedBus, 2, 2, 2);
  add("S02", 102, 5, Architecture::SharedBus, 2, 3, 3);
  add("S03", 103, 6, Architecture::SharedBus, 2, 3, 3);
  add("S04", 104, 5, Architecture::Mesh2x2, 2, 3);
  add("S05", 105, 6, Architecture::Mesh2x2, 2, 3);
  add("S06", 106, 8, Architecture::SharedBus, 3, 4, 4);
  add("S07", 107, 8, Architecture::Mesh2x2, 2, 4);
  add("S08", 108, 8, Architecture::Mesh3x3, 2, 4);
  add("S09", 110, 11, Architecture::Mesh3x3, 2, 5);
  add("S10", 110, 12, Architecture::Mesh3x3, 3, 5);
  return suite;
}

double method_time_limit() {
  if (const char* env = std::getenv("ASPMT_BENCH_TIMEOUT"); env != nullptr) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 40.0;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;  // bytes on macOS
#else
    return usage.ru_maxrss;  // KiB on Linux
#endif
  }
#endif
  return 0;
}

std::string git_rev() {
  if (const char* env = std::getenv("ASPMT_GIT_REV"); env != nullptr && *env != '\0') {
    return env;
  }
#ifdef ASPMT_GIT_REV
  return ASPMT_GIT_REV;
#else
  return "unknown";
#endif
}

std::string Report::write() const {
  std::string dir = ".";
  if (const char* env = std::getenv("ASPMT_BENCH_OUT"); env != nullptr && *env != '\0') {
    dir = env;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort; open reports
  }
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) return {};
  out << "{\n";
  out << "  \"name\": \"" << json_escape(name_) << "\",\n";
  out << "  \"git_rev\": \"" << json_escape(git_rev()) << "\",\n";
  out << "  \"peak_rss_kib\": " << peak_rss_kib() << ",\n";
  out << "  \"threads\": " << threads_ << ",\n";
  out << "  \"processes\": " << processes_ << ",\n";
  if (!shard_seconds_.empty()) {
    out << "  \"shard_wall_seconds\": [";
    for (std::size_t i = 0; i < shard_seconds_.size(); ++i) {
      out << (i == 0 ? "" : ", ") << json_number(shard_seconds_[i]);
    }
    out << "],\n";
  }
  out << "  \"metrics\": {";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(metrics_[i].first)
        << "\": " << json_number(metrics_[i].second);
  }
  out << (metrics_.empty() ? "" : "\n  ") << "},\n";
  out << "  \"notes\": {";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(notes_[i].first)
        << "\": \"" << json_escape(notes_[i].second) << "\"";
  }
  out << (notes_.empty() ? "" : "\n  ") << "},\n";
  // Raw embed: MetricsRegistry::to_json() emits a complete JSON object.
  out << "  \"metrics_snapshot\": " << registry_.to_json() << "\n";
  out << "}\n";
  return out ? path : std::string{};
}

}  // namespace aspmt::bench
