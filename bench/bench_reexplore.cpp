// Extension — incremental re-exploration (src/dse/respec.*): cold vs
// incremental wall time on an S09-class instance after a single WCET edit.
//
// The scenario is the respec layer's reason to exist: a finished session
// checkpointed its archive and learnt clauses; the designer bumps one WCET
// (an objective-coefficient-only delta, ClauseSafe) and re-runs.  The
// incremental run warm-starts the archive from the re-validated witnesses
// and replays the clause dump behind an assumption guard, so it should
// reach the (identical, certified-exact-quality) front in a fraction of the
// cold wall time.  The speedup and the reuse rate are recorded; the
// regression gate (tools/check_bench_regression.py vs bench/baselines/)
// holds the `*_per_sec` rates.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "dse/checkpoint.hpp"
#include "dse/explorer.hpp"
#include "dse/respec.hpp"
#include "suite.hpp"
#include "util/table.hpp"

namespace {

/// Rebuild `spec` with the first mapping option's WCET bumped by one —
/// the canonical single-coefficient designer edit.
aspmt::synth::Specification bump_first_wcet(
    const aspmt::synth::Specification& spec) {
  using namespace aspmt::synth;
  Specification out;
  for (const Resource& r : spec.resources()) {
    out.add_resource(r.name, r.kind, r.cost, r.capacity);
  }
  for (const Link& l : spec.links()) {
    out.add_link(l.from, l.to, l.hop_delay, l.hop_energy);
  }
  for (const Task& t : spec.tasks()) out.add_task(t.name);
  for (const Message& m : spec.messages()) {
    out.add_message(m.name, m.src, m.dst, m.payload);
  }
  bool first = true;
  for (const MappingOption& m : spec.mappings()) {
    out.add_mapping(m.task, m.resource, m.wcet + (first ? 1 : 0), m.energy);
    first = false;
  }
  out.max_hops = spec.max_hops;
  out.latency_bound = spec.latency_bound;
  return out;
}

double as_rate(double seconds) { return 1.0 / std::max(seconds, 1e-6); }

}  // namespace

int main() {
  using namespace aspmt;
  const auto suite = bench::standard_suite();
  const auto& entry = suite[8];  // S09
  const synth::Specification base = gen::generate(entry.config);
  const synth::Specification edited = bump_first_wcet(base);
  std::cout << "Extension: incremental re-exploration on " << entry.name
            << " (" << gen::summarize(base) << "), single WCET edit\n\n";
  bench::Report report("reexplore");
  report.note("instance", entry.name);

  // The previous session: a cold run on the base spec, snapshot attached.
  const std::string ckpt_path = "BENCH_reexplore.ckpt";
  dse::ExploreOptions prev_opts;
  prev_opts.common.time_limit_seconds = bench::method_time_limit();
  prev_opts.common.checkpoint_path = ckpt_path;
  const dse::ExploreResult prev_run = dse::explore(base, prev_opts);
  dse::Checkpoint ckpt;
  const std::string load_err = dse::load_checkpoint(ckpt_path, ckpt);
  std::remove(ckpt_path.c_str());
  if (!load_err.empty()) {
    std::cerr << "checkpoint load failed: " << load_err << "\n";
    return 1;
  }

  // Cold reference on the edited spec.
  dse::ExploreOptions cold_opts;
  cold_opts.common.time_limit_seconds = bench::method_time_limit();
  const dse::ExploreResult cold = dse::explore(edited, cold_opts);

  // Incremental run from the stale checkpoint.
  dse::ReexploreOptions ro;
  ro.base.threads = 1;
  ro.base.common.time_limit_seconds = bench::method_time_limit();
  const dse::ReexploreResult inc = dse::reexplore(ckpt, edited, ro);

  const bool fronts_match = inc.base.front == cold.front;
  const double speedup =
      cold.stats.seconds / std::max(inc.base.stats.seconds, 1e-6);

  util::Table table({"run", "t[s]", "|front|", "models", "conflicts"});
  table.add_row({"prev (base)", util::fmt(prev_run.stats.seconds, 3),
                 util::fmt(static_cast<long long>(prev_run.front.size())),
                 util::fmt(static_cast<long long>(prev_run.stats.models)),
                 util::fmt(static_cast<long long>(prev_run.stats.conflicts))});
  table.add_row({"cold (edited)", util::fmt(cold.stats.seconds, 3),
                 util::fmt(static_cast<long long>(cold.front.size())),
                 util::fmt(static_cast<long long>(cold.stats.models)),
                 util::fmt(static_cast<long long>(cold.stats.conflicts))});
  table.add_row({"incremental", util::fmt(inc.base.stats.seconds, 3),
                 util::fmt(static_cast<long long>(inc.base.front.size())),
                 util::fmt(static_cast<long long>(inc.base.stats.models)),
                 util::fmt(static_cast<long long>(inc.base.stats.conflicts))});
  table.print(std::cout);

  std::cout << "\ndelta: " << dse::delta_class_name(inc.reuse.delta.cls)
            << ", archive " << inc.reuse.archive_reused << "/"
            << inc.reuse.archive_candidates << ", clauses "
            << inc.reuse.clauses_replayed << "/" << inc.reuse.clause_candidates
            << " (installed " << inc.base.stats.replayed_clauses
            << "), reuse rate " << util::fmt(inc.reuse.reuse_rate(), 3) << "\n";
  std::cout << "cold " << util::fmt(cold.stats.seconds, 3) << "s vs incremental "
            << util::fmt(inc.base.stats.seconds, 3) << "s — speedup "
            << util::fmt(speedup, 2) << "x, fronts "
            << (fronts_match ? "identical" : "MISMATCH") << "\n";

  report.metric("cold.seconds", cold.stats.seconds);
  report.metric("incremental.seconds", inc.base.stats.seconds);
  report.metric("speedup", speedup);
  report.metric("reuse.rate", inc.reuse.reuse_rate());
  report.metric("reuse.archive", static_cast<double>(inc.reuse.archive_reused));
  report.metric("reuse.clauses",
                static_cast<double>(inc.base.stats.replayed_clauses));
  // Gated rates for the perf-smoke leg.
  report.metric("cold.runs_per_sec", as_rate(cold.stats.seconds));
  report.metric("incremental.runs_per_sec", as_rate(inc.base.stats.seconds));
  report.note("fronts", fronts_match ? "identical" : "MISMATCH");
  report.note("cold.complete", cold.stats.complete ? "yes" : "timeout");
  report.note("incremental.complete",
              inc.base.stats.complete ? "yes" : "timeout");
  const std::string path = report.write();
  std::cout << "wrote " << (path.empty() ? "(failed)" : path) << "\n";
  return fronts_match ? 0 : 1;
}
