// Table 2 — exact-front runtime comparison (the paper's headline table).
//
// For every suite instance, computes the complete Pareto front with
//   (a) ASPmT-DSE (dominance propagation + partial assignment evaluation),
//   (b) the iterative lexicographic ε-constraint method, and
//   (c) naive enumerate-&-filter,
// and reports front size, per-method wall-clock time (or t/o), solver
// conflicts and the speedup of (a) over the better baseline.
//
// Claim reproduced: (a) completes everywhere and scales; (c) collapses as
// soon as the design space grows; (b) trails (a) increasingly with size.
#include <iostream>

#include "dse/baselines.hpp"
#include "dse/explorer.hpp"
#include "suite.hpp"
#include "util/table.hpp"

int main() {
  using namespace aspmt;
  const double limit = bench::method_time_limit();
  std::cout << "Table 2: time to the exact Pareto front (limit "
            << util::fmt(limit, 1) << "s per method)\n\n";
  bench::Report report("table2_runtime");
  report.metric("time_limit_s", limit);
  util::Table table({"inst", "|front|", "aspmt[s]", "cert[s]", "models",
                     "prunings", "lex-ms[s]", "lex-ss[s]", "enum[s]",
                     "speedup"});
  for (const auto& entry : bench::standard_suite()) {
    const synth::Specification spec = gen::generate(entry.config);

    dse::ExploreOptions opts;
    opts.common.time_limit_seconds = limit;
    const dse::ExploreResult aspmt_run = dse::explore(spec, opts);

    // Certified mode: same exploration with proof logging, witness
    // validation and an independent checker replay — the cert[s] column is
    // the end-to-end price of a machine-checked front.
    dse::ExploreOptions cert_opts;
    cert_opts.common.time_limit_seconds = limit;
    cert_opts.common.certify = true;
    const dse::ExploreResult cert_run = dse::explore(spec, cert_opts);
    const std::string cert_cell =
        !cert_run.stats.complete ? std::string("t/o")
        : cert_run.certified    ? util::fmt(cert_run.stats.seconds, 3)
                                : std::string("FAIL");
    if (cert_run.stats.complete && !cert_run.certified) {
      std::cerr << "CERTIFICATION FAILED on " << entry.name << ": "
                << cert_run.certificate_error << "\n";
      std::exit(1);
    }

    const dse::BaselineResult lex = dse::lexicographic_epsilon(spec, limit);
    const dse::BaselineResult cold = dse::lexicographic_epsilon_cold(spec, limit);
    const dse::BaselineResult enu = dse::enumerate_and_filter(spec, limit);

    auto time_cell = [&](bool complete, double seconds) {
      return complete ? util::fmt(seconds, 3) : std::string("t/o");
    };
    // Speedup over the conventional single-shot workflow (the paper-style
    // comparison); ">Nx" when that baseline timed out.
    std::string speedup = "-";
    if (aspmt_run.stats.complete && aspmt_run.stats.seconds > 0.0) {
      if (cold.complete) {
        speedup = util::fmt(cold.seconds / aspmt_run.stats.seconds, 1) + "x";
      } else {
        speedup =
            ">" + util::fmt(limit / std::max(aspmt_run.stats.seconds, 1e-3), 1) +
            "x";
      }
    }

    table.add_row(
        {entry.name,
         aspmt_run.stats.complete
             ? util::fmt(static_cast<long long>(aspmt_run.front.size()))
             : (">=" + util::fmt(static_cast<long long>(aspmt_run.front.size()))),
         time_cell(aspmt_run.stats.complete, aspmt_run.stats.seconds),
         cert_cell,
         util::fmt(static_cast<long long>(aspmt_run.stats.models)),
         util::fmt(static_cast<long long>(aspmt_run.stats.prunings)),
         time_cell(lex.complete, lex.seconds),
         time_cell(cold.complete, cold.seconds),
         time_cell(enu.complete, enu.seconds), speedup});

    // Cross-check: completed methods must agree on the front.
    const auto check = [&](const char* who, bool complete,
                           const std::vector<pareto::Vec>& front) {
      if (aspmt_run.stats.complete && complete && aspmt_run.front != front) {
        std::cerr << "FRONT MISMATCH on " << entry.name << " (aspmt vs " << who
                  << ")\n";
        std::exit(1);
      }
    };
    check("cert", cert_run.stats.complete, cert_run.front);
    check("lex-ms", lex.complete, lex.front);
    check("lex-ss", cold.complete, cold.front);
    check("enum", enu.complete, enu.front);

    report.metric(entry.name + ".front_size",
                  static_cast<double>(aspmt_run.front.size()));
    report.metric(entry.name + ".aspmt_s", aspmt_run.stats.seconds);
    report.metric(entry.name + ".cert_s", cert_run.stats.seconds);
    report.metric(entry.name + ".models",
                  static_cast<double>(aspmt_run.stats.models));
    report.metric(entry.name + ".lex_ms_s", lex.seconds);
    report.metric(entry.name + ".lex_ss_s", cold.seconds);
    report.metric(entry.name + ".enum_s", enu.seconds);
    report.note(entry.name + ".aspmt_complete",
                aspmt_run.stats.complete ? "yes" : "timeout");
  }
  table.print(std::cout);
  std::cout << "\nall completed methods agree on every front\n";
  const std::string path = report.write();
  std::cout << "wrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
