// Table 1 — benchmark instance characteristics.
//
// Reproduces the instance-overview table of the evaluation: application
// size, architecture size, mapping freedom, routing freedom, and the size
// of the resulting ASPmT encoding (variables / clauses / decision atoms).
#include <iostream>

#include "dse/context.hpp"
#include "suite.hpp"
#include "util/table.hpp"

int main() {
  using namespace aspmt;
  std::cout << "Table 1: benchmark instance characteristics\n\n";
  bench::Report report("table1_instances");
  util::Table table({"inst", "arch", "|T|", "|M|", "|R|", "|L|", "opts", "H",
                     "vars", "clauses", "decisions"});
  for (const auto& entry : bench::standard_suite()) {
    const synth::Specification spec = gen::generate(entry.config);
    dse::SynthContext ctx(spec);
    const char* arch = "bus";
    switch (entry.config.architecture) {
      case gen::Architecture::SharedBus: arch = "bus"; break;
      case gen::Architecture::Mesh2x2: arch = "mesh2x2"; break;
      case gen::Architecture::Mesh3x3: arch = "mesh3x3"; break;
    }
    table.add_row({entry.name, arch,
                   util::fmt(static_cast<long long>(spec.tasks().size())),
                   util::fmt(static_cast<long long>(spec.messages().size())),
                   util::fmt(static_cast<long long>(spec.resources().size())),
                   util::fmt(static_cast<long long>(spec.links().size())),
                   util::fmt(static_cast<long long>(spec.mappings().size())),
                   util::fmt(static_cast<long long>(spec.effective_max_hops())),
                   util::fmt(static_cast<long long>(ctx.solver.num_vars())),
                   util::fmt(static_cast<long long>(ctx.solver.num_problem_clauses())),
                   util::fmt(static_cast<long long>(ctx.encoding.decision_lits.size()))});
    report.metric(entry.name + ".vars", static_cast<double>(ctx.solver.num_vars()));
    report.metric(entry.name + ".clauses",
                  static_cast<double>(ctx.solver.num_problem_clauses()));
    report.metric(entry.name + ".decisions",
                  static_cast<double>(ctx.encoding.decision_lits.size()));
  }
  table.print(std::cout);
  const std::string path = report.write();
  std::cout << "\nwrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
