// Extension — ε-dominance approximation (the direction of the series'
// CODES+ISSS'18 follow-up "On leveraging approximations for exact
// system-level design space exploration").
//
// Sweeps the additive ε (as a fraction of each objective's front range) on
// the harder suite instances and reports time, archive size and the
// verified cover property: every exact front point q has an approximate
// point p with p <= q + eps.
#include <algorithm>
#include <iostream>

#include "dse/explorer.hpp"
#include "suite.hpp"
#include "util/table.hpp"

int main() {
  using namespace aspmt;
  const double limit = bench::method_time_limit();
  std::cout << "Extension: eps-dominance approximation (limit "
            << util::fmt(limit, 1) << "s per run)\n\n";
  bench::Report report("ext_approximation");
  report.metric("time_limit_s", limit);
  util::Table table({"inst", "eps", "time[s]", "|set|", "models", "covers exact"});
  const auto suite = bench::standard_suite();
  for (const std::size_t idx : {7UL, 8UL, 9UL}) {  // S08..S10
    const auto& entry = suite[idx];
    const synth::Specification spec = gen::generate(entry.config);

    dse::ExploreOptions exact_opts;
    exact_opts.common.time_limit_seconds = limit;
    const dse::ExploreResult exact = dse::explore(spec, exact_opts);
    pareto::Vec lo = exact.front.front();
    pareto::Vec hi = exact.front.front();
    for (const auto& p : exact.front) {
      for (std::size_t o = 0; o < 3; ++o) {
        lo[o] = std::min(lo[o], p[o]);
        hi[o] = std::max(hi[o], p[o]);
      }
    }
    table.add_row({entry.name, "exact",
                   exact.stats.complete ? util::fmt(exact.stats.seconds, 3)
                                        : std::string("t/o"),
                   util::fmt(static_cast<long long>(exact.front.size())),
                   util::fmt(static_cast<long long>(exact.stats.models)), "-"});
    report.metric(entry.name + ".exact_s", exact.stats.seconds);
    report.metric(entry.name + ".exact_front",
                  static_cast<double>(exact.front.size()));

    for (const double frac : {0.05, 0.10, 0.25}) {
      dse::ExploreOptions opts;
      opts.common.time_limit_seconds = limit;
      opts.epsilon = pareto::Vec(3, 0);
      for (std::size_t o = 0; o < 3; ++o) {
        opts.epsilon[o] = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(frac * static_cast<double>(hi[o] - lo[o])));
      }
      const dse::ExploreResult approx = dse::explore(spec, opts);
      std::string covers = "?";
      if (exact.stats.complete && approx.stats.complete) {
        bool all = true;
        for (const auto& q : exact.front) {
          bool found = false;
          for (const auto& p : approx.front) {
            bool le = true;
            for (std::size_t o = 0; o < 3; ++o) {
              if (p[o] > q[o] + opts.epsilon[o]) le = false;
            }
            if (le) {
              found = true;
              break;
            }
          }
          all = all && found;
        }
        covers = all ? "yes" : "NO";
        if (!all) {
          std::cerr << "EPSILON COVER VIOLATED on " << entry.name << "\n";
          return 1;
        }
      }
      table.add_row({entry.name,
                     util::fmt(100.0 * frac, 0) + "% " + pareto::to_string(opts.epsilon),
                     approx.stats.complete ? util::fmt(approx.stats.seconds, 3)
                                           : std::string("t/o"),
                     util::fmt(static_cast<long long>(approx.front.size())),
                     util::fmt(static_cast<long long>(approx.stats.models)),
                     covers});
      const std::string key =
          entry.name + ".eps" + util::fmt(100.0 * frac, 0);
      report.metric(key + "_s", approx.stats.seconds);
      report.metric(key + "_set", static_cast<double>(approx.front.size()));
    }
  }
  table.print(std::cout);
  std::cout << "\nclaim: growing eps shrinks the returned set and the "
               "runtime while the cover guarantee holds\n";
  const std::string path = report.write();
  std::cout << "wrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
