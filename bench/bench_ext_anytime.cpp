// Extension — anytime behaviour: front quality over time.
//
// Replays the discovery timelines of the ASPmT explorer and NSGA-II on one
// instance and reports the hypervolume of the current archive at log-spaced
// time checkpoints.  Shape: the exact explorer reaches (and proves) the full
// hypervolume; the EA saturates below it.
#include <algorithm>
#include <iostream>

#include "dse/explorer.hpp"
#include "ea/nsga2.hpp"
#include "pareto/archive.hpp"
#include "pareto/indicators.hpp"
#include "suite.hpp"
#include "util/table.hpp"

namespace {

using aspmt::pareto::Vec;

/// Archive contents at time t, replayed from a discovery sequence.
std::vector<Vec> archive_at(
    const std::vector<std::pair<double, Vec>>& discoveries, double t) {
  aspmt::pareto::LinearArchive archive;
  for (const auto& [when, point] : discoveries) {
    if (when > t) break;
    archive.insert(point);
  }
  return archive.points();
}

}  // namespace

int main() {
  using namespace aspmt;
  const auto suite = bench::standard_suite();
  const auto& entry = suite[8];  // S09
  const synth::Specification spec = gen::generate(entry.config);
  std::cout << "Extension: anytime front quality on " << entry.name << " ("
            << gen::summarize(spec) << ")\n\n";
  bench::Report report("ext_anytime");
  report.note("instance", entry.name);

  dse::ExploreOptions opts;
  opts.common.time_limit_seconds = bench::method_time_limit();
  const dse::ExploreResult exact = dse::explore(spec, opts);

  ea::Nsga2Options ea_opts;
  ea_opts.seed = 9;
  ea_opts.population = 60;
  ea_opts.generations = 200;
  const ea::Nsga2Result ea_run = ea::nsga2(spec, ea_opts);

  // Shared reference point over everything either method ever saw.
  Vec ref(3, 0);
  auto stretch = [&](const std::vector<std::pair<double, Vec>>& d) {
    for (const auto& [when, p] : d) {
      (void)when;
      for (int o = 0; o < 3; ++o) ref[o] = std::max(ref[o], p[o] + 1);
    }
  };
  stretch(exact.discoveries);
  stretch(ea_run.discoveries);

  const double horizon = std::max(exact.stats.seconds, ea_run.seconds);
  util::Table table({"t[s]", "aspmt |set|", "aspmt HV", "nsga2 |set|", "nsga2 HV"});
  for (double t = horizon / 64.0; t <= horizon * 1.0001; t *= 2.0) {
    const auto a = archive_at(exact.discoveries, t);
    const auto e = archive_at(ea_run.discoveries, t);
    table.add_row({util::fmt(t, 4),
                   util::fmt(static_cast<long long>(a.size())),
                   util::fmt(pareto::hypervolume(a, ref), 0),
                   util::fmt(static_cast<long long>(e.size())),
                   util::fmt(pareto::hypervolume(e, ref), 0)});
  }
  table.print(std::cout);
  const double hv_exact = pareto::hypervolume(exact.front, ref);
  const double hv_ea = pareto::hypervolume(ea_run.front, ref);
  std::cout << "\nfinal: aspmt HV=" << util::fmt(hv_exact, 0) << " ("
            << (exact.stats.complete ? "proven complete" : "time-limited")
            << " after " << util::fmt(exact.stats.seconds, 3) << "s), nsga2 HV="
            << util::fmt(hv_ea, 0) << " after " << util::fmt(ea_run.seconds, 3)
            << "s / " << ea_run.evaluations << " evaluations\n";
  report.metric("aspmt.hv", hv_exact);
  report.metric("aspmt.seconds", exact.stats.seconds);
  report.metric("nsga2.hv", hv_ea);
  report.metric("nsga2.seconds", ea_run.seconds);
  report.metric("nsga2.evaluations", static_cast<double>(ea_run.evaluations));
  report.note("aspmt.complete", exact.stats.complete ? "yes" : "timeout");
  const std::string path = report.write();
  std::cout << "wrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
