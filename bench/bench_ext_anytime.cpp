// Extension — anytime behaviour: front quality over time, warm vs cold.
//
// Replays the discovery timelines of the cold ASPmT explorer, the hybrid
// warm-started explorer (NSGA-II seeds + exact completion) and plain
// NSGA-II on one instance and reports the hypervolume of the current
// archive at log-spaced time checkpoints.  Shape: both exact runs reach
// (and prove) the full hypervolume and the EA saturates below it, but the
// warm run is at high hypervolume from its first instants — the
// time-to-first-front and time-to-90%-HV metrics quantify that head start
// and are recorded as `*_per_sec` rates so the perf-smoke gate
// (tools/check_bench_regression.py vs bench/baselines/) can hold the line.
#include <algorithm>
#include <iostream>

#include "dse/explorer.hpp"
#include "dse/warmstart.hpp"
#include "ea/nsga2.hpp"
#include "pareto/archive.hpp"
#include "pareto/indicators.hpp"
#include "suite.hpp"
#include "util/table.hpp"

namespace {

using aspmt::pareto::Vec;

/// Archive contents at time t, replayed from a discovery sequence.
std::vector<Vec> archive_at(
    const std::vector<std::pair<double, Vec>>& discoveries, double t) {
  aspmt::pareto::LinearArchive archive;
  for (const auto& [when, point] : discoveries) {
    if (when > t) break;
    archive.insert(point);
  }
  return archive.points();
}

/// Earliest discovery timestamp at which the replayed archive reaches
/// `target` hypervolume w.r.t. `ref`; falls back to the last timestamp.
double time_to_hv(const std::vector<std::pair<double, Vec>>& discoveries,
                  double target, const Vec& ref) {
  aspmt::pareto::LinearArchive archive;
  double last = 0.0;
  for (const auto& [when, point] : discoveries) {
    archive.insert(point);
    last = when;
    if (aspmt::pareto::hypervolume(archive.points(), ref) >= target) {
      return when;
    }
  }
  return last;
}

/// A rate for the regression gate: events per second, saturated so a
/// sub-microsecond measurement cannot explode the baseline.
double as_rate(double seconds) { return 1.0 / std::max(seconds, 1e-6); }

}  // namespace

int main() {
  using namespace aspmt;
  const auto suite = bench::standard_suite();
  const auto& entry = suite[8];  // S09
  const synth::Specification spec = gen::generate(entry.config);
  std::cout << "Extension: anytime front quality on " << entry.name << " ("
            << gen::summarize(spec) << ")\n\n";
  bench::Report report("ext_anytime");
  report.note("instance", entry.name);

  dse::ExploreOptions opts;
  opts.common.time_limit_seconds = bench::method_time_limit();
  const dse::ExploreResult exact = dse::explore(spec, opts);

  dse::ExploreOptions wopts = opts;
  wopts.common.warm_start.method = dse::WarmStartMethod::Nsga2;
  wopts.common.warm_start.budget = 400;
  wopts.common.warm_start.seed = 9;
  const dse::ExploreResult warm = dse::explore(spec, wopts);

  ea::Nsga2Options ea_opts;
  ea_opts.seed = 9;
  ea_opts.population = 60;
  ea_opts.generations = 200;
  const ea::Nsga2Result ea_run = ea::nsga2(spec, ea_opts);

  // Shared reference point over everything any method ever saw.
  Vec ref(3, 0);
  auto stretch = [&](const std::vector<std::pair<double, Vec>>& d) {
    for (const auto& [when, p] : d) {
      (void)when;
      for (int o = 0; o < 3; ++o) ref[o] = std::max(ref[o], p[o] + 1);
    }
  };
  stretch(exact.discoveries);
  stretch(warm.discoveries);
  stretch(ea_run.discoveries);

  const double horizon =
      std::max({exact.stats.seconds, warm.stats.seconds, ea_run.seconds});
  util::Table table({"t[s]", "cold |set|", "cold HV", "warm |set|", "warm HV",
                     "nsga2 HV"});
  for (double t = horizon / 64.0; t <= horizon * 1.0001; t *= 2.0) {
    const auto a = archive_at(exact.discoveries, t);
    const auto w = archive_at(warm.discoveries, t);
    const auto e = archive_at(ea_run.discoveries, t);
    table.add_row({util::fmt(t, 4),
                   util::fmt(static_cast<long long>(a.size())),
                   util::fmt(pareto::hypervolume(a, ref), 0),
                   util::fmt(static_cast<long long>(w.size())),
                   util::fmt(pareto::hypervolume(w, ref), 0),
                   util::fmt(pareto::hypervolume(e, ref), 0)});
  }
  table.print(std::cout);

  const double hv_exact = pareto::hypervolume(exact.front, ref);
  const double hv_warm = pareto::hypervolume(warm.front, ref);
  const double hv_ea = pareto::hypervolume(ea_run.front, ref);
  const double cold_first =
      exact.discoveries.empty() ? 0.0 : exact.discoveries.front().first;
  const double warm_first =
      warm.discoveries.empty() ? 0.0 : warm.discoveries.front().first;
  const double cold_t90 = time_to_hv(exact.discoveries, 0.9 * hv_exact, ref);
  const double warm_t90 = time_to_hv(warm.discoveries, 0.9 * hv_exact, ref);

  std::cout << "\nfinal: cold HV=" << util::fmt(hv_exact, 0) << " ("
            << (exact.stats.complete ? "proven complete" : "time-limited")
            << " after " << util::fmt(exact.stats.seconds, 3)
            << "s), warm HV=" << util::fmt(hv_warm, 0) << " ("
            << warm.stats.warm_seeds << " seeds, "
            << (warm.stats.complete ? "proven complete" : "time-limited")
            << " after " << util::fmt(warm.stats.seconds, 3)
            << "s), nsga2 HV=" << util::fmt(hv_ea, 0) << " after "
            << util::fmt(ea_run.seconds, 3) << "s / " << ea_run.evaluations
            << " evaluations\n";
  std::cout << "time to first front point: cold "
            << util::fmt(cold_first * 1e3, 3) << "ms, warm "
            << util::fmt(warm_first * 1e3, 3) << "ms\n"
            << "time to 90% of final HV:  cold "
            << util::fmt(cold_t90 * 1e3, 3) << "ms, warm "
            << util::fmt(warm_t90 * 1e3, 3) << "ms\n";

  report.metric("aspmt.hv", hv_exact);
  report.metric("aspmt.seconds", exact.stats.seconds);
  report.metric("warm.hv", hv_warm);
  report.metric("warm.seconds", warm.stats.seconds);
  report.metric("warm.seeds", static_cast<double>(warm.stats.warm_seeds));
  report.metric("nsga2.hv", hv_ea);
  report.metric("nsga2.seconds", ea_run.seconds);
  report.metric("nsga2.evaluations", static_cast<double>(ea_run.evaluations));
  report.metric("cold.first_point_seconds", cold_first);
  report.metric("warm.first_point_seconds", warm_first);
  report.metric("cold.hv90_seconds", cold_t90);
  report.metric("warm.hv90_seconds", warm_t90);
  // Gated rates: how fast each variant reaches its first front point and
  // 90% of the final hypervolume.  Warm must stay measurably ahead.
  report.metric("cold.first_front_per_sec", as_rate(cold_first));
  report.metric("warm.first_front_per_sec", as_rate(warm_first));
  report.metric("cold.hv90_per_sec", as_rate(cold_t90));
  report.metric("warm.hv90_per_sec", as_rate(warm_t90));
  report.note("aspmt.complete", exact.stats.complete ? "yes" : "timeout");
  report.note("warm.complete", warm.stats.complete ? "yes" : "timeout");
  const std::string path = report.write();
  std::cout << "wrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
