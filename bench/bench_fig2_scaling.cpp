// Figure 2 — scaling of time-to-exact-front with application size.
//
// Sweeps the task count on a fixed 2x2 mesh and reports per-method
// wall-clock times.  Claim reproduced: enumerate-&-filter blows up first,
// the ε-constraint loop grows steeply, ASPmT-DSE scales furthest.
#include <iostream>

#include "dse/baselines.hpp"
#include "dse/explorer.hpp"
#include "suite.hpp"
#include "util/table.hpp"

int main() {
  using namespace aspmt;
  const double limit = bench::method_time_limit();
  std::cout << "Figure 2: scaling with task count (mesh2x2, limit "
            << util::fmt(limit, 1) << "s per method)\n\n";
  bench::Report report("fig2_scaling");
  report.metric("time_limit_s", limit);
  util::Table table(
      {"tasks", "|front|", "aspmt[s]", "lex-ms[s]", "lex-ss[s]", "enum[s]"});
  for (std::uint32_t tasks = 4; tasks <= 12; ++tasks) {
    gen::GeneratorConfig c;
    c.seed = 500 + tasks;
    c.tasks = tasks;
    c.architecture = gen::Architecture::Mesh2x2;
    c.options_per_task = 2;
    c.layers = 3;
    const synth::Specification spec = gen::generate(c);

    dse::ExploreOptions opts;
    opts.common.time_limit_seconds = limit;
    const dse::ExploreResult aspmt_run = dse::explore(spec, opts);
    const dse::BaselineResult lex = dse::lexicographic_epsilon(spec, limit);
    const dse::BaselineResult cold = dse::lexicographic_epsilon_cold(spec, limit);
    const dse::BaselineResult enu = dse::enumerate_and_filter(spec, limit);

    auto cell = [&](bool complete, double seconds) {
      return complete ? util::fmt(seconds, 3) : std::string("t/o");
    };
    table.add_row({util::fmt(static_cast<long long>(tasks)),
                   aspmt_run.stats.complete
                       ? util::fmt(static_cast<long long>(aspmt_run.front.size()))
                       : "?",
                   cell(aspmt_run.stats.complete, aspmt_run.stats.seconds),
                   cell(lex.complete, lex.seconds),
                   cell(cold.complete, cold.seconds),
                   cell(enu.complete, enu.seconds)});

    const std::string key = "tasks" + util::fmt(static_cast<long long>(tasks));
    report.metric(key + ".aspmt_s", aspmt_run.stats.seconds);
    report.metric(key + ".lex_ms_s", lex.seconds);
    report.metric(key + ".lex_ss_s", cold.seconds);
    report.metric(key + ".enum_s", enu.seconds);
    report.note(key + ".aspmt_complete",
                aspmt_run.stats.complete ? "yes" : "timeout");
  }
  table.print(std::cout);
  const std::string path = report.write();
  std::cout << "\nwrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
