// bench_propagate — microbenchmark of the clause-propagation core.
//
// Three deterministic, propagation-dominated workloads exercise the
// two-watched-literal loop that every DSE query bottoms out in:
//
//   bus  : model enumeration over the combinatorial part of the S06
//          shared-bus encoding (theory propagators left unregistered, so
//          the run is pure BCP + clause learning over the real encoding)
//   mesh : the same over the S08 3x3-mesh encoding
//   ph   : pigeonhole(9,8) refutation — dense conflict/learning traffic
//
// Reports wall time, propagations/s and conflicts/s per workload and
// writes BENCH_propagate.json for trend tracking.  ASPMT_BENCH_REPEAT
// (default 3) controls how many timed repetitions are aggregated.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "asp/solver.hpp"
#include "gen/generator.hpp"
#include "suite.hpp"
#include "synth/encoder.hpp"
#include "theory/difference.hpp"
#include "theory/linear_sum.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace aspmt;

struct RunStats {
  double seconds = 0.0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t models = 0;
};

RunStats& operator+=(RunStats& a, const RunStats& b) {
  a.seconds += b.seconds;
  a.propagations += b.propagations;
  a.conflicts += b.conflicts;
  a.models += b.models;
  return a;
}

/// Enumerate models of the combinatorial part of a synthesis encoding by
/// blocking each model's decision atoms, up to `max_models`.
RunStats enumerate_encoding(const bench::SuiteEntry& entry,
                            std::size_t max_models) {
  const synth::Specification spec = gen::generate(entry.config);
  asp::Solver solver;
  theory::LinearSumPropagator linear;
  theory::DifferencePropagator difference;
  const synth::Encoding enc =
      synth::encode(spec, solver, linear, difference);

  RunStats run;
  const util::Timer timer;
  for (std::size_t m = 0; m < max_models; ++m) {
    if (solver.solve() != asp::Solver::Result::Sat) break;
    ++run.models;
    std::vector<asp::Lit> block;
    block.reserve(enc.decision_lits.size());
    for (const asp::Lit l : enc.decision_lits) {
      block.push_back(solver.model_value(l.var()) ? ~l : l);
    }
    if (!solver.add_clause(std::move(block))) break;
  }
  run.seconds = timer.elapsed_seconds();
  run.propagations = solver.stats().propagations;
  run.conflicts = solver.stats().conflicts;
  return run;
}

/// Refute pigeonhole(pigeons, pigeons - 1): pure conflict-driven search.
RunStats pigeonhole(int pigeons) {
  const int holes = pigeons - 1;
  asp::Solver solver;
  std::vector<asp::Var> v;
  v.reserve(static_cast<std::size_t>(pigeons) * holes);
  for (int i = 0; i < pigeons * holes; ++i) v.push_back(solver.new_var());
  for (int p = 0; p < pigeons; ++p) {
    std::vector<asp::Lit> c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(asp::Lit::make(v[p * holes + h], true));
    }
    (void)solver.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        (void)solver.add_clause({asp::Lit::make(v[p1 * holes + h], false),
                                 asp::Lit::make(v[p2 * holes + h], false)});
      }
    }
  }
  RunStats run;
  const util::Timer timer;
  const auto result = solver.solve();
  run.seconds = timer.elapsed_seconds();
  if (result != asp::Solver::Result::Unsat) {
    std::cerr << "pigeonhole workload must be Unsat\n";
    std::exit(1);
  }
  run.propagations = solver.stats().propagations;
  run.conflicts = solver.stats().conflicts;
  return run;
}

int repeat_count() {
  if (const char* env = std::getenv("ASPMT_BENCH_REPEAT"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

}  // namespace

int main() {
  const int repeats = repeat_count();
  std::cout << "bench_propagate: clause-propagation core (" << repeats
            << " repetition(s) per workload)\n\n";

  const auto suite = bench::standard_suite();
  struct Workload {
    const char* name;
    RunStats (*run)(const bench::SuiteEntry&);
  };

  bench::Report report("propagate");
  report.note("repeats", std::to_string(repeats));

  util::Table table({"workload", "time[s]", "props", "props/s", "confl",
                     "confl/s", "models"});
  const auto record = [&](const char* name, const RunStats& total) {
    const double props_per_sec =
        total.seconds > 0.0 ? static_cast<double>(total.propagations) / total.seconds : 0.0;
    const double confl_per_sec =
        total.seconds > 0.0 ? static_cast<double>(total.conflicts) / total.seconds : 0.0;
    table.add_row({name, util::fmt(total.seconds, 3),
                   util::fmt(static_cast<long long>(total.propagations)),
                   util::fmt(props_per_sec, 0),
                   util::fmt(static_cast<long long>(total.conflicts)),
                   util::fmt(confl_per_sec, 0),
                   util::fmt(static_cast<long long>(total.models))});
    const std::string prefix = name;
    report.metric(prefix + ".wall_s", total.seconds);
    report.metric(prefix + ".props_per_sec", props_per_sec);
    report.metric(prefix + ".conflicts_per_sec", confl_per_sec);
    report.registry().counter(prefix + ".propagations").set(total.propagations);
    report.registry().counter(prefix + ".conflicts").set(total.conflicts);
  };

  // S06 (shared bus) and S08 (3x3 mesh) are the mid-ladder fixtures whose
  // combinatorial parts are big enough to stress the watcher lists.
  RunStats bus;
  RunStats mesh;
  RunStats ph;
  for (int r = 0; r < repeats; ++r) {
    bus += enumerate_encoding(suite[5], /*max_models=*/3000);
    mesh += enumerate_encoding(suite[7], /*max_models=*/2000);
    ph += pigeonhole(9);
  }
  record("bus", bus);
  record("mesh", mesh);
  record("ph", ph);

  table.print(std::cout);
  const std::string path = report.write();
  std::cout << "\nwrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
