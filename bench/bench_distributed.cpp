// Distributed sharding vs the single-process portfolio — wall-clock to the
// exact front under *matched parallelism*: the portfolio at M threads
// against M shard workers of 1 thread each, so both sides get the same
// nominal parallel budget and the comparison isolates what the objective-
// space partition (plus the shared split-sample seed pool) buys.
//
// Legs:
//   portfolio  t in {1, 2, 4}   explore_parallel, single process
//   distributed w in {2, 4}     w forked shard workers x 1 thread (the real
//                               fork/exec + pipe + RESULT path)
// plus one certified distributed run that must (a) certify and (b) match
// the single-process front byte-for-byte — any violation exits 1.
//
// Timing legs run uncertified: proof replay is the same work on both sides
// and would only blur the split's effect.  On a single-core container the
// distributed side can only win algorithmically — denser seed antichain and
// band-local dominance work — which is exactly the effect worth tracking.
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "dse/distributed.hpp"
#include "dse/parallel_explorer.hpp"
#include "gen/generator.hpp"
#include "suite.hpp"
#include "util/table.hpp"

namespace {

aspmt::synth::Specification bench_instance() {
  aspmt::gen::GeneratorConfig c;
  c.seed = 88;
  c.tasks = 10;
  c.architecture = aspmt::gen::Architecture::SharedBus;
  c.options_per_task = 3;
  c.bus_processors = 4;
  return aspmt::gen::generate(c);
}

}  // namespace

int main() {
  using namespace aspmt;
  const double limit = bench::method_time_limit();
  const synth::Specification spec = bench_instance();
  std::cout << "Distributed sharding vs portfolio (limit " << util::fmt(limit, 1)
            << "s per run, " << std::thread::hardware_concurrency()
            << " hardware threads)\n\n";

  bench::Report report("distributed");
  report.metric("time_limit_s", limit);

  // ---- portfolio legs ------------------------------------------------------
  std::vector<pareto::Vec> reference_front;
  double portfolio_s[5] = {0, 0, 0, 0, 0};
  bool ok = true;
  for (const std::size_t threads : {1U, 2U, 4U}) {
    dse::ParallelExploreOptions opts;
    opts.threads = threads;
    opts.common.time_limit_seconds = limit;
    const dse::ParallelExploreResult r = dse::explore_parallel(spec, opts);
    if (!r.base.stats.complete) {
      std::cerr << "portfolio t" << threads << " timed out\n";
      ok = false;
      continue;
    }
    portfolio_s[threads] = r.base.stats.seconds;
    const std::string leg = "portfolio_t" + std::to_string(threads);
    report.metric(leg + "_s", r.base.stats.seconds);
    report.metric(leg + "_runs_per_sec", 1.0 / r.base.stats.seconds);
    if (threads == 1) reference_front = r.base.front;
    if (r.base.front != reference_front) {
      std::cerr << "FRONT MISMATCH: portfolio t" << threads << "\n";
      ok = false;
    }
  }

  // ---- distributed legs (process mode, 1 thread per worker) ----------------
  double distributed_s[5] = {0, 0, 0, 0, 0};
  std::vector<double> shard_seconds;
  for (const std::size_t workers : {2U, 4U}) {
    dse::DistributedOptions opts;
    opts.processes = workers;
    opts.base.threads = 1;
    opts.base.common.time_limit_seconds = limit;
#ifdef ASPMT_DSE_BIN
    opts.worker_path = ASPMT_DSE_BIN;
#endif
    const dse::DistributedResult r = dse::explore_distributed(spec, opts);
    if (!r.base.stats.complete) {
      std::cerr << "distributed w" << workers << " incomplete: "
                << (r.base.errors.empty() ? "timeout" : r.base.errors.front())
                << "\n";
      ok = false;
      continue;
    }
    distributed_s[workers] = r.base.stats.seconds;
    const std::string leg = "dist_w" + std::to_string(workers);
    report.metric(leg + "_s", r.base.stats.seconds);
    report.metric(leg + "_runs_per_sec", 1.0 / r.base.stats.seconds);
    if (r.base.front != reference_front) {
      std::cerr << "FRONT MISMATCH: distributed w" << workers << "\n";
      ok = false;
    }
    if (workers == 4) {
      for (const dse::ShardReport& s : r.shards) {
        shard_seconds.push_back(s.seconds);
      }
    }
  }
  report.concurrency(1, 4);  // the widest distributed leg: 4 procs x 1 thread
  report.shard_seconds(shard_seconds);

  // ---- matched-parallelism speedups ---------------------------------------
  util::Table table({"leg", "wall[s]", "vs portfolio@same-par"});
  for (const std::size_t threads : {1U, 2U, 4U}) {
    if (portfolio_s[threads] > 0.0) {
      table.add_row({"portfolio t" + std::to_string(threads),
                     util::fmt(portfolio_s[threads], 3), "1.00x"});
    }
  }
  for (const std::size_t workers : {2U, 4U}) {
    if (distributed_s[workers] <= 0.0 || portfolio_s[workers] <= 0.0) continue;
    const double speedup = portfolio_s[workers] / distributed_s[workers];
    report.metric("speedup_w" + std::to_string(workers), speedup);
    table.add_row({"distributed " + std::to_string(workers) + "x1",
                   util::fmt(distributed_s[workers], 3),
                   util::fmt(speedup, 2) + "x"});
  }
  table.print(std::cout);

  // ---- certified merge: the exactness claim itself -------------------------
  {
    dse::DistributedOptions opts;
    opts.processes = 2;
    opts.base.threads = 1;
    opts.base.common.certify = true;
    opts.base.common.time_limit_seconds = limit;
#ifdef ASPMT_DSE_BIN
    opts.worker_path = ASPMT_DSE_BIN;
#endif
    const dse::DistributedResult r = dse::explore_distributed(spec, opts);
    if (!r.base.certified) {
      std::cerr << "CERTIFICATION FAILED: " << r.base.certificate_error << "\n";
      ok = false;
    } else if (r.base.front != reference_front) {
      std::cerr << "FRONT MISMATCH: certified distributed run\n";
      ok = false;
    } else {
      std::cout << "\ncertified distributed front == single-process front ("
                << r.base.front.size() << " points)\n";
    }
    report.metric("front_size", static_cast<double>(r.base.front.size()));
  }

  if (!ok) return 1;
  const std::string path = report.write();
  std::cout << "wrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
