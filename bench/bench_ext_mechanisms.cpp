// Extension — mechanism ablation matrix.
//
// Quantifies the contribution of each engineering mechanism on top of plain
// dominance propagation: binding-pair floors (stronger partial-assignment
// bounds) and drill-down (Pareto-sharp archive from the start).  All four
// configurations provably compute the same front; only effort differs.
#include <iostream>

#include "dse/explorer.hpp"
#include "suite.hpp"
#include "util/table.hpp"

int main() {
  using namespace aspmt;
  const double limit = bench::method_time_limit();
  std::cout << "Extension: mechanism ablation (limit " << util::fmt(limit, 1)
            << "s per run)\n\n";
  struct Config {
    const char* name;
    bool floors;
    bool drill;
  };
  const Config configs[] = {
      {"full", true, true},
      {"-drill", true, false},
      {"-floors", false, true},
      {"-both", false, false},
  };
  bench::Report report("ext_mechanisms");
  report.metric("time_limit_s", limit);
  util::Table table({"inst", "config", "time[s]", "models", "conflicts",
                     "prunings", "|front|"});
  const auto suite = bench::standard_suite();
  for (const std::size_t idx : {6UL, 7UL, 8UL}) {  // S07..S09
    const auto& entry = suite[idx];
    const synth::Specification spec = gen::generate(entry.config);
    std::vector<pareto::Vec> reference;
    bool have_reference = false;
    for (const Config& cfg : configs) {
      dse::ExploreOptions opts;
      opts.common.time_limit_seconds = limit;
      opts.common.objective_floors = cfg.floors;
      opts.common.drill_down = cfg.drill;
      const dse::ExploreResult r = dse::explore(spec, opts);
      table.add_row({entry.name, cfg.name,
                     r.stats.complete ? util::fmt(r.stats.seconds, 3)
                                      : std::string("t/o"),
                     util::fmt(static_cast<long long>(r.stats.models)),
                     util::fmt(static_cast<long long>(r.stats.conflicts)),
                     util::fmt(static_cast<long long>(r.stats.prunings)),
                     util::fmt(static_cast<long long>(r.front.size()))});
      const std::string key = entry.name + "." + cfg.name;
      report.metric(key + "_s", r.stats.seconds);
      report.metric(key + "_conflicts", static_cast<double>(r.stats.conflicts));
      report.metric(key + "_models", static_cast<double>(r.stats.models));
      if (r.stats.complete) {
        if (!have_reference) {
          reference = r.front;
          have_reference = true;
        } else if (r.front != reference) {
          std::cerr << "FRONT MISMATCH on " << entry.name << " config "
                    << cfg.name << "\n";
          return 1;
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nfronts agree across every completed configuration\n";
  const std::string path = report.write();
  std::cout << "wrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
