// Figure 1 — objective-space view: exact front vs. NSGA-II approximation.
//
// Prints both point sets for a representative instance plus the quality
// indicators (hypervolume, additive epsilon, coverage).  Claim reproduced:
// under a comparable evaluation budget the EA misses Pareto points and
// leaves a hypervolume gap — the motivation for exact exploration.
#include <algorithm>
#include <iostream>

#include "dse/explorer.hpp"
#include "ea/nsga2.hpp"
#include "pareto/indicators.hpp"
#include "suite.hpp"
#include "util/table.hpp"

int main() {
  using namespace aspmt;
  const auto suite = bench::standard_suite();
  const auto& entry = suite[4];  // S05: mesh2x2, 6 tasks
  const synth::Specification spec = gen::generate(entry.config);
  std::cout << "Figure 1: exact front vs NSGA-II on " << entry.name << " ("
            << gen::summarize(spec) << ")\n\n";
  bench::Report report("fig1_front");
  report.note("instance", entry.name);

  dse::ExploreOptions opts;
  opts.common.time_limit_seconds = bench::method_time_limit();
  const dse::ExploreResult exact = dse::explore(spec, opts);

  ea::Nsga2Options ea_opts;
  ea_opts.seed = 1;
  ea_opts.population = 40;
  ea_opts.generations = 50;
  const ea::Nsga2Result approx = ea::nsga2(spec, ea_opts);

  util::Table table({"series", "latency", "energy", "cost", "on exact front"});
  for (const auto& p : exact.front) {
    table.add_row({"exact", util::fmt(p[0]), util::fmt(p[1]), util::fmt(p[2]),
                   "yes"});
  }
  for (const auto& p : approx.front) {
    const bool hit =
        std::find(exact.front.begin(), exact.front.end(), p) != exact.front.end();
    table.add_row({"nsga2", util::fmt(p[0]), util::fmt(p[1]), util::fmt(p[2]),
                   hit ? "yes" : "no"});
  }
  table.print(std::cout);

  pareto::Vec ref(3, 0);
  for (const auto& p : exact.front) {
    for (int o = 0; o < 3; ++o) ref[o] = std::max(ref[o], p[o] + 1);
  }
  for (const auto& p : approx.front) {
    for (int o = 0; o < 3; ++o) ref[o] = std::max(ref[o], p[o] + 1);
  }
  const double hv_exact = pareto::hypervolume(exact.front, ref);
  const double hv_ea = pareto::hypervolume(approx.front, ref);
  std::cout << "\nexact: " << exact.front.size() << " points, complete="
            << (exact.stats.complete ? "yes" : "no")
            << ", time=" << util::fmt(exact.stats.seconds, 3) << "s\n";
  std::cout << "nsga2: " << approx.front.size() << " points, "
            << approx.evaluations << " evaluations, time="
            << util::fmt(approx.seconds, 3) << "s\n";
  std::cout << "hypervolume  exact=" << util::fmt(hv_exact, 1)
            << "  nsga2=" << util::fmt(hv_ea, 1) << "  gap="
            << util::fmt(100.0 * (hv_exact - hv_ea) / std::max(hv_exact, 1.0), 2)
            << "%\n";
  std::cout << "additive epsilon (nsga2 -> exact) = "
            << pareto::additive_epsilon(approx.front, exact.front) << "\n";
  std::cout << "front coverage by nsga2 = "
            << util::fmt(100.0 * pareto::coverage_ratio(approx.front, exact.front), 1)
            << "%\n";
  report.metric("exact.front_size", static_cast<double>(exact.front.size()));
  report.metric("exact.seconds", exact.stats.seconds);
  report.metric("nsga2.front_size", static_cast<double>(approx.front.size()));
  report.metric("nsga2.seconds", approx.seconds);
  report.metric("nsga2.evaluations", static_cast<double>(approx.evaluations));
  report.metric("hypervolume.exact", hv_exact);
  report.metric("hypervolume.nsga2", hv_ea);
  report.metric("epsilon.nsga2_to_exact",
                pareto::additive_epsilon(approx.front, exact.front));
  report.metric("coverage.nsga2", pareto::coverage_ratio(approx.front, exact.front));
  const std::string path = report.write();
  std::cout << "wrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
