// Figure 3 — ablation: partial assignment evaluation on/off.
//
// The DATE'17->'18 mechanism under test: with partial evaluation the
// objective bounds and the dominance propagator prune on *partial*
// assignments; without it they only reject total assignments.  Claim
// reproduced: disabling it inflates conflicts/models and runtime, with the
// gap widening on larger instances.
#include <iostream>

#include "dse/explorer.hpp"
#include "suite.hpp"
#include "util/table.hpp"

int main() {
  using namespace aspmt;
  const double limit = bench::method_time_limit();
  std::cout << "Figure 3: partial assignment evaluation ablation (limit "
            << util::fmt(limit, 1) << "s)\n\n";
  bench::Report report("fig3_partial_eval");
  report.metric("time_limit_s", limit);
  util::Table table({"inst", "pe[s]", "pe models", "pe conflicts", "nope[s]",
                     "nope models", "nope conflicts", "slowdown"});
  for (const auto& entry : bench::standard_suite()) {
    const synth::Specification spec = gen::generate(entry.config);
    dse::ExploreOptions on;
    on.common.time_limit_seconds = limit;
    dse::ExploreOptions off = on;
    off.common.partial_evaluation = false;

    const dse::ExploreResult with_pe = dse::explore(spec, on);
    const dse::ExploreResult without_pe = dse::explore(spec, off);

    auto cell = [&](bool complete, double seconds) {
      return complete ? util::fmt(seconds, 3) : std::string("t/o");
    };
    std::string slowdown = "-";
    if (with_pe.stats.complete && without_pe.stats.complete &&
        with_pe.stats.seconds > 0.0) {
      slowdown = util::fmt(without_pe.stats.seconds / with_pe.stats.seconds, 1) + "x";
    } else if (with_pe.stats.complete && !without_pe.stats.complete) {
      slowdown = ">" +
                 util::fmt(limit / std::max(with_pe.stats.seconds, 1e-3), 1) + "x";
    }
    table.add_row({entry.name, cell(with_pe.stats.complete, with_pe.stats.seconds),
                   util::fmt(static_cast<long long>(with_pe.stats.models)),
                   util::fmt(static_cast<long long>(with_pe.stats.conflicts)),
                   cell(without_pe.stats.complete, without_pe.stats.seconds),
                   util::fmt(static_cast<long long>(without_pe.stats.models)),
                   util::fmt(static_cast<long long>(without_pe.stats.conflicts)),
                   slowdown});
    if (with_pe.stats.complete && without_pe.stats.complete &&
        with_pe.front != without_pe.front) {
      std::cerr << "FRONT MISMATCH on " << entry.name << "\n";
      return 1;
    }
    report.metric(entry.name + ".pe_s", with_pe.stats.seconds);
    report.metric(entry.name + ".pe_conflicts",
                  static_cast<double>(with_pe.stats.conflicts));
    report.metric(entry.name + ".nope_s", without_pe.stats.seconds);
    report.metric(entry.name + ".nope_conflicts",
                  static_cast<double>(without_pe.stats.conflicts));
  }
  table.print(std::cout);
  std::cout << "\nfronts agree wherever both configurations completed\n";
  const std::string path = report.write();
  std::cout << "wrote " << (path.empty() ? "(failed)" : path) << "\n";
  return 0;
}
