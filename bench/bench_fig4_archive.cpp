// Figure 4 — ablation: quad-tree vs. linear-scan Pareto archive
// (the ASP-DAC'18 companion mechanism).
//
// Micro-benchmarks the archive operations the dominance propagator performs
// in the inner loop: dominator queries against a populated archive, and the
// full insert-stream workload.  Claim reproduced: the quad-tree wins once
// archives grow; for tiny archives the linear scan is competitive.
#include <benchmark/benchmark.h>

#include "pareto/archive.hpp"
#include "pareto/quadtree.hpp"
#include "util/rng.hpp"

namespace {

using aspmt::pareto::Archive;
using aspmt::pareto::LinearArchive;
using aspmt::pareto::QuadTreeArchive;
using aspmt::pareto::Vec;

/// Draw objective vectors near a 3D anti-correlated front so that a large
/// fraction is mutually non-dominated (archives actually grow).
Vec front_like_point(aspmt::util::Rng& rng, std::int64_t scale) {
  const std::int64_t a = rng.range(0, scale);
  const std::int64_t b = rng.range(0, scale - a);
  const std::int64_t c = scale - a - b + rng.range(0, scale / 8);
  return Vec{a, b, c};
}

void populate(Archive& archive, std::size_t n, std::uint64_t seed) {
  aspmt::util::Rng rng(seed);
  for (std::size_t attempts = 0; archive.size() < n && attempts < 500000;
       ++attempts) {
    archive.insert(front_like_point(rng, 1000));
  }
}

template <typename ArchiveT>
void BM_DominatorQuery(benchmark::State& state) {
  ArchiveT archive = [] {
    if constexpr (std::is_same_v<ArchiveT, QuadTreeArchive>) {
      return ArchiveT(3);
    } else {
      return ArchiveT();
    }
  }();
  populate(archive, static_cast<std::size_t>(state.range(0)), 7);
  aspmt::util::Rng rng(99);
  for (auto _ : state) {
    const Vec q = front_like_point(rng, 1000);
    benchmark::DoNotOptimize(archive.find_weak_dominator(q));
  }
  state.counters["archive_size"] = static_cast<double>(archive.size());
}

template <typename ArchiveT>
void BM_InsertStream(benchmark::State& state) {
  aspmt::util::Rng rng(13);
  std::vector<Vec> stream;
  for (int i = 0; i < 4000; ++i) stream.push_back(front_like_point(rng, 1000));
  for (auto _ : state) {
    ArchiveT archive = [] {
      if constexpr (std::is_same_v<ArchiveT, QuadTreeArchive>) {
        return ArchiveT(3);
      } else {
        return ArchiveT();
      }
    }();
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i) archive.insert(stream[i % stream.size()]);
    benchmark::DoNotOptimize(archive.size());
  }
}

}  // namespace

BENCHMARK_TEMPLATE(BM_DominatorQuery, LinearArchive)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK_TEMPLATE(BM_DominatorQuery, QuadTreeArchive)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK_TEMPLATE(BM_InsertStream, LinearArchive)
    ->Arg(100)->Arg(1000)->Arg(4000);
BENCHMARK_TEMPLATE(BM_InsertStream, QuadTreeArchive)
    ->Arg(100)->Arg(1000)->Arg(4000);

BENCHMARK_MAIN();
