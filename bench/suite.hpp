// The shared benchmark instance suite (Table 1) and common knobs.
//
// The instances form a difficulty ladder across the three generator
// architectures.  They are sized so that the ASPmT explorer finishes every
// instance within the per-method time limit on a laptop-class machine while
// the naive enumeration baseline starts timing out in the middle of the
// ladder — the shape the paper series reports.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "gen/generator.hpp"
#include "obs/metrics.hpp"

namespace aspmt::bench {

struct SuiteEntry {
  std::string name;
  gen::GeneratorConfig config;
};

/// S1..S10 ladder used by Tables 1/2 and Figure 3.
[[nodiscard]] std::vector<SuiteEntry> standard_suite();

/// Per-method time limit in seconds; override with ASPMT_BENCH_TIMEOUT.
[[nodiscard]] double method_time_limit();

/// Machine-readable result sink.  Every benchmark executable records its
/// headline numbers (wall time, conflicts/s, propagations/s, ...) here and
/// calls write(), which serializes them together with the peak RSS and the
/// git revision to `BENCH_<name>.json` so the perf trajectory of the repo
/// can be tracked across commits.  The output directory defaults to the
/// working directory and can be redirected with ASPMT_BENCH_OUT.
class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  /// Record a numeric result, e.g. metric("bus.props_per_sec", 1.9e6).
  /// Every metric is mirrored into the report's metrics registry, so the
  /// embedded snapshot always covers at least the headline numbers.
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
    registry_.gauge(key).set(value);
  }

  /// Record a free-form annotation, e.g. note("build", "Release").
  void note(const std::string& key, const std::string& value) {
    notes_.emplace_back(key, value);
  }

  /// Record the concurrency shape of the benchmarked run: solver threads per
  /// process and worker process count.  Serialized as top-level "threads" /
  /// "processes" JSON fields on every report (defaults 1/1 for the
  /// single-process benches), so cross-commit comparisons can never conflate
  /// runs at different parallelism.
  void concurrency(std::size_t threads, std::size_t processes) {
    threads_ = threads;
    processes_ = processes;
  }

  /// Record per-shard wall times of a distributed run; serialized as the
  /// top-level "shard_wall_seconds" array (omitted when empty).
  void shard_seconds(std::vector<double> seconds) {
    shard_seconds_ = std::move(seconds);
  }

  /// The report's own metrics registry.  Point CommonOptions::metrics (or
  /// dse::export_metrics) at it and the full counter/gauge/histogram state
  /// is embedded in the JSON under "metrics_snapshot".
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return registry_; }

  /// Write BENCH_<name>.json; returns the path (empty on I/O failure).
  std::string write() const;

 private:
  std::string name_;
  std::size_t threads_ = 1;
  std::size_t processes_ = 1;
  std::vector<double> shard_seconds_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> notes_;
  obs::MetricsRegistry registry_;
};

/// Peak resident set size of this process in KiB (0 when unavailable).
[[nodiscard]] long peak_rss_kib();

/// Git revision the benchmark binary was built from: the ASPMT_GIT_REV
/// environment variable when set, else the configure-time `git rev-parse`
/// result baked into the binary, else "unknown".
[[nodiscard]] std::string git_rev();

}  // namespace aspmt::bench
