// The shared benchmark instance suite (Table 1) and common knobs.
//
// The instances form a difficulty ladder across the three generator
// architectures.  They are sized so that the ASPmT explorer finishes every
// instance within the per-method time limit on a laptop-class machine while
// the naive enumeration baseline starts timing out in the middle of the
// ladder — the shape the paper series reports.
#pragma once

#include <string>
#include <vector>

#include "gen/generator.hpp"

namespace aspmt::bench {

struct SuiteEntry {
  std::string name;
  gen::GeneratorConfig config;
};

/// S1..S10 ladder used by Tables 1/2 and Figure 3.
[[nodiscard]] std::vector<SuiteEntry> standard_suite();

/// Per-method time limit in seconds; override with ASPMT_BENCH_TIMEOUT.
[[nodiscard]] double method_time_limit();

}  // namespace aspmt::bench
