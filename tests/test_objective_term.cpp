// The ObjectiveTerm tree API: factory validation, proof-binding
// serialization, combinator lower-bound semantics on total assignments, the
// tagged Source variant, the linear-only add_lower_bound contract and the
// one-release deprecation shims over the old flat registration calls.
#include "dse/objective_term.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "asp/solver.hpp"
#include "dse/objective_manager.hpp"
#include "theory/difference.hpp"
#include "theory/linear_sum.hpp"

namespace aspmt::dse {
namespace {

using asp::Lit;
using asp::Solver;
using asp::Var;

Lit L(Var v, bool s = true) { return Lit::make(v, s); }

/// Solver + linear propagator with two guarded sums:
///   s0 = 5*[v0] + 3*[v1]     s1 = 7*[v2] + 2*[v3]
struct Fixture {
  Solver solver;
  theory::LinearSumPropagator linear;
  theory::DifferencePropagator difference;
  std::vector<Var> vars;
  theory::LinearSumPropagator::SumId s0, s1;

  Fixture() {
    for (int i = 0; i < 4; ++i) vars.push_back(solver.new_var());
    solver.add_propagator(&linear);
    solver.add_propagator(&difference);
    s0 = linear.add_sum("s0", {{L(vars[0]), 5}, {L(vars[1]), 3}});
    s1 = linear.add_sum("s1", {{L(vars[2]), 7}, {L(vars[3]), 2}});
  }

  /// Force every guard and solve, so leaf bounds are exact totals:
  /// s0 = 8, s1 = 9.
  void fix_all() {
    for (const Var v : vars) ASSERT_TRUE(solver.add_clause({L(v)}));
    ASSERT_EQ(solver.solve(), Solver::Result::Sat);
  }
};

// ---- factory validation -----------------------------------------------------

TEST(ObjectiveTermFactories, LexRejectsBadShapes) {
  Fixture f;
  auto leaf = [&](theory::LinearSumPropagator::SumId s) {
    return ObjectiveTerm::linear("l", &f.linear, s);
  };
  // Arity mismatch between caps and children.
  EXPECT_THROW(ObjectiveTerm::lex("x", {10}, {leaf(f.s0), leaf(f.s1)}),
               std::invalid_argument);
  // Fewer than two children.
  std::vector<ObjectiveTerm> one;
  one.push_back(leaf(f.s0));
  EXPECT_THROW(ObjectiveTerm::lex("x", {10}, std::move(one)),
               std::invalid_argument);
  // Negative cap.
  EXPECT_THROW(ObjectiveTerm::lex("x", {-1, 5}, {leaf(f.s0), leaf(f.s1)}),
               std::invalid_argument);
  // Cap radix product overflows int64.
  const std::int64_t half = std::int64_t{1} << 33;
  EXPECT_THROW(ObjectiveTerm::lex("x", {half, half}, {leaf(f.s0), leaf(f.s1)}),
               std::invalid_argument);
}

TEST(ObjectiveTermFactories, WeightedAndFanoutCombinatorsRejectBadShapes) {
  Fixture f;
  auto leaf = [&](theory::LinearSumPropagator::SumId s) {
    return ObjectiveTerm::linear("l", &f.linear, s);
  };
  EXPECT_THROW(ObjectiveTerm::weighted("w", {2}, {leaf(f.s0), leaf(f.s1)}),
               std::invalid_argument);
  EXPECT_THROW(ObjectiveTerm::weighted("w", {0, 1}, {leaf(f.s0), leaf(f.s1)}),
               std::invalid_argument);
  std::vector<ObjectiveTerm> one;
  one.push_back(leaf(f.s0));
  EXPECT_THROW(ObjectiveTerm::minmax("m", std::move(one)),
               std::invalid_argument);
  std::vector<ObjectiveTerm> again;
  again.push_back(leaf(f.s0));
  EXPECT_THROW(ObjectiveTerm::scenario_worst("v", std::move(again)),
               std::invalid_argument);
}

TEST(ObjectiveTermFactories, FloorsAttachOnlyAtLinearLeaves) {
  Fixture f;
  ObjectiveTerm leaf = ObjectiveTerm::linear("l", &f.linear, f.s0);
  leaf.with_floor(&f.linear, f.s1);  // fine
  ObjectiveTerm comb = ObjectiveTerm::minmax(
      "m", {ObjectiveTerm::linear("a", &f.linear, f.s0),
            ObjectiveTerm::linear("b", &f.linear, f.s1)});
  EXPECT_THROW(comb.with_floor(&f.linear, f.s1), std::invalid_argument);
  const auto node = f.difference.new_node("mk");
  ObjectiveTerm mk = ObjectiveTerm::makespan("mk", &f.difference, node);
  EXPECT_THROW(mk.with_floor(&f.linear, f.s1), std::invalid_argument);
}

// ---- proof-binding serialization -------------------------------------------

TEST(ObjectiveTermSerialize, LeavesMatchTheLegacyBindingBodies) {
  Fixture f;
  std::string out;
  ObjectiveTerm::linear("e", &f.linear, f.s1).serialize(out);
  EXPECT_EQ(out, "L 1");
  out.clear();
  const auto node = f.difference.new_node("mk");
  ObjectiveTerm::makespan("mk", &f.difference, node).serialize(out);
  EXPECT_EQ(out, "D 0");
}

TEST(ObjectiveTermSerialize, CombinatorsEmitTheTreeGrammar) {
  Fixture f;
  auto leaf = [&](theory::LinearSumPropagator::SumId s) {
    return ObjectiveTerm::linear("l", &f.linear, s);
  };
  std::string out;
  ObjectiveTerm::lex("x", {10, 20}, {leaf(f.s0), leaf(f.s1)}).serialize(out);
  EXPECT_EQ(out, "X 2 10 20 L 0 L 1");
  out.clear();
  ObjectiveTerm::minmax("m", {leaf(f.s0), leaf(f.s1)}).serialize(out);
  EXPECT_EQ(out, "M 2 L 0 L 1");
  out.clear();
  ObjectiveTerm::weighted("w", {2, 3}, {leaf(f.s0), leaf(f.s1)}).serialize(out);
  EXPECT_EQ(out, "W 2 2 3 L 0 L 1");
  out.clear();
  ObjectiveTerm::scenario_worst("v", {leaf(f.s0), leaf(f.s1)}).serialize(out);
  EXPECT_EQ(out, "V 2 L 0 L 1");
  out.clear();
  // Nesting recurses: lex over (minmax, leaf).
  ObjectiveTerm::lex("x", {30, 9},
                     {ObjectiveTerm::minmax("m", {leaf(f.s0), leaf(f.s1)}),
                      leaf(f.s0)})
      .serialize(out);
  EXPECT_EQ(out, "X 2 30 9 M 2 L 0 L 1 L 0");
}

// ---- combinator semantics on total assignments ------------------------------

TEST(ObjectiveTermSemantics, CombinatorsFoldExactValuesAtTotalAssignments) {
  Fixture f;
  auto leaf = [&](theory::LinearSumPropagator::SumId s) {
    return ObjectiveTerm::linear("l", &f.linear, s);
  };
  const ObjectiveTerm mm = ObjectiveTerm::minmax("m", {leaf(f.s0), leaf(f.s1)});
  const ObjectiveTerm w =
      ObjectiveTerm::weighted("w", {2, 3}, {leaf(f.s0), leaf(f.s1)});
  const ObjectiveTerm x =
      ObjectiveTerm::lex("x", {10, 20}, {leaf(f.s0), leaf(f.s1)});
  const ObjectiveTerm v =
      ObjectiveTerm::scenario_worst("v", {leaf(f.s0), leaf(f.s1)});
  f.fix_all();  // s0 = 8, s1 = 9
  EXPECT_EQ(mm.lower_bound(), 9);
  EXPECT_EQ(w.lower_bound(), 2 * 8 + 3 * 9);
  EXPECT_EQ(x.lower_bound(), 8 * 21 + 9);  // big-endian, radix cap+1
  EXPECT_EQ(v.lower_bound(), 9);
}

TEST(ObjectiveTermSemantics, LexClampsChildrenToTheirCaps) {
  Fixture f;
  auto leaf = [&](theory::LinearSumPropagator::SumId s) {
    return ObjectiveTerm::linear("l", &f.linear, s);
  };
  // Cap 6 < s0's total 8: the head child saturates at 6.
  const ObjectiveTerm x =
      ObjectiveTerm::lex("x", {6, 20}, {leaf(f.s0), leaf(f.s1)});
  f.fix_all();
  EXPECT_EQ(x.lower_bound(), 6 * 21 + 9);
}

TEST(ObjectiveTermSemantics, ExplanationsJustifyTheThresholdByChildRecursion) {
  Fixture f;
  auto leaf = [&](theory::LinearSumPropagator::SumId s) {
    return ObjectiveTerm::linear("l", &f.linear, s);
  };
  const ObjectiveTerm x =
      ObjectiveTerm::lex("x", {10, 20}, {leaf(f.s0), leaf(f.s1)});
  f.fix_all();
  std::vector<Lit> reason;
  x.explain(x.lower_bound(), reason);
  EXPECT_FALSE(reason.empty());
  // Every cited literal must actually be assigned true.
  for (const Lit l : reason) {
    EXPECT_EQ(f.solver.value(l), asp::Lbool::True);
  }
}

// ---- ObjectiveManager: Source variant and bound contracts -------------------

TEST(ObjectiveManagerSources, TaggedVariantReportsKindAndTheoryId) {
  Fixture f;
  const auto node = f.difference.new_node("mk");
  ObjectiveManager m;
  m.add(ObjectiveTerm::makespan("latency", &f.difference, node));
  m.add(ObjectiveTerm::linear("energy", &f.linear, f.s1));
  m.add(ObjectiveTerm::minmax(
      "m", {ObjectiveTerm::linear("a", &f.linear, f.s0),
            ObjectiveTerm::linear("b", &f.linear, f.s1)}));
  ASSERT_EQ(m.count(), 3U);
  EXPECT_EQ(m.source(0).kind, ObjectiveManager::Source::Kind::Difference);
  EXPECT_EQ(m.source(0).id, node);
  EXPECT_EQ(m.source(1).kind, ObjectiveManager::Source::Kind::Linear);
  EXPECT_EQ(m.source(1).id, f.s1);
  EXPECT_EQ(m.source(2).kind, ObjectiveManager::Source::Kind::Combinator);
}

TEST(ObjectiveManagerBounds, LowerBoundsPushOnlyOntoLinearLeaves) {
  Fixture f;
  const auto node = f.difference.new_node("mk");
  ObjectiveManager m;
  m.add(ObjectiveTerm::linear("energy", &f.linear, f.s0));
  m.add(ObjectiveTerm::makespan("latency", &f.difference, node));
  m.add(ObjectiveTerm::minmax(
      "m", {ObjectiveTerm::linear("a", &f.linear, f.s0),
            ObjectiveTerm::linear("b", &f.linear, f.s1)}));
  EXPECT_TRUE(m.add_lower_bound(0, 3));
  EXPECT_FALSE(m.add_lower_bound(1, 3));
  EXPECT_FALSE(m.add_lower_bound(2, 3));
}

TEST(ObjectiveManagerBounds, ResidualCombinatorBoundsRequireThePropagator) {
  Fixture f;
  ObjectiveManager m;
  // minmax fans out fully: no residual needed even when unattached.
  m.add(ObjectiveTerm::minmax(
      "m", {ObjectiveTerm::linear("a", &f.linear, f.s0),
            ObjectiveTerm::linear("b", &f.linear, f.s1)}));
  // weighted pushdown is incomplete: the remainder needs the propagator.
  m.add(ObjectiveTerm::weighted(
      "w", {2, 3},
      {ObjectiveTerm::linear("a", &f.linear, f.s0),
       ObjectiveTerm::linear("b", &f.linear, f.s1)}));
  m.add_bound(0, 5);  // ok
  EXPECT_THROW(m.add_bound(1, 5), std::logic_error);
}

// ---- deprecated registration shims ------------------------------------------

TEST(ObjectiveManagerShims, DeprecatedCallsWarnOnStderrAndDelegate) {
  Fixture f;
  const auto node = f.difference.new_node("mk");
  ObjectiveManager m;
  ::testing::internal::CaptureStderr();
  m.add_makespan("latency", &f.difference, node);
  m.add_linear("energy", &f.linear, f.s0);
  m.add_floor(&f.linear, f.s1);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("add_makespan is deprecated"), std::string::npos) << err;
  EXPECT_NE(err.find("add_linear is deprecated"), std::string::npos) << err;
  EXPECT_NE(err.find("add_floor is deprecated"), std::string::npos) << err;
  // The shims land in the same axes the first-class API would produce.
  ASSERT_EQ(m.count(), 2U);
  EXPECT_EQ(m.source(0).kind, ObjectiveManager::Source::Kind::Difference);
  EXPECT_EQ(m.source(1).kind, ObjectiveManager::Source::Kind::Linear);
  std::string body;
  m.term(1).serialize(body);
  EXPECT_EQ(body, "L 0");
}

}  // namespace
}  // namespace aspmt::dse
