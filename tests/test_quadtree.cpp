#include "pareto/quadtree.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace aspmt::pareto {
namespace {

TEST(QuadTree, BasicInsertAndQuery) {
  QuadTreeArchive a(2);
  EXPECT_TRUE(a.insert({3, 3}));
  EXPECT_FALSE(a.insert({3, 3}));
  EXPECT_FALSE(a.insert({4, 3}));
  EXPECT_TRUE(a.insert({1, 5}));
  EXPECT_TRUE(a.insert({5, 1}));
  EXPECT_EQ(a.size(), 3U);
  EXPECT_NE(a.find_weak_dominator({6, 6}), nullptr);
  EXPECT_EQ(a.find_weak_dominator({0, 0}), nullptr);
}

TEST(QuadTree, EvictionSweepsEverythingDominated) {
  QuadTreeArchive a(2);
  a.insert({5, 5});
  a.insert({4, 7});
  a.insert({7, 4});
  // (3,3) dominates all three points.
  EXPECT_TRUE(a.insert({3, 3}));
  EXPECT_EQ(a.size(), 1U);
  EXPECT_EQ(a.points(), (std::vector<Vec>{{3, 3}}));
}

TEST(QuadTree, EvictionKeepsIncomparables) {
  QuadTreeArchive a(2);
  a.insert({5, 5});
  a.insert({1, 9});
  a.insert({9, 1});
  EXPECT_TRUE(a.insert({4, 4}));  // evicts (5,5) only
  EXPECT_EQ(a.size(), 3U);
  const auto pts = a.points();
  EXPECT_EQ(pts, (std::vector<Vec>{{1, 9}, {4, 4}, {9, 1}}));
}

TEST(QuadTree, RootEvictionReinsertsSurvivingSubtree) {
  QuadTreeArchive a(2);
  a.insert({5, 5});  // root
  a.insert({3, 8});
  a.insert({8, 3});
  // (4,6) evicts the root (4<=5, 6<=... no: 6 > 5!). Use (4,5): 4<=5 & 5<=5
  // dominates the root but neither flank (4>3 in obj0 vs (3,8)? weak
  // dominance of (3,8) needs 4<=3: no; of (8,3) needs 5<=3: no).
  EXPECT_TRUE(a.insert({4, 5}));
  EXPECT_EQ(a.size(), 3U);
  EXPECT_EQ(a.points(), (std::vector<Vec>{{3, 8}, {4, 5}, {8, 3}}));
}

TEST(QuadTree, ClearResets) {
  QuadTreeArchive a(3);
  a.insert({1, 2, 3});
  a.clear();
  EXPECT_EQ(a.size(), 0U);
  EXPECT_TRUE(a.insert({1, 2, 3}));
}

// Property: the quad-tree behaves exactly like the linear archive.
struct QtParam {
  std::uint64_t seed;
  std::size_t dims;
  std::int64_t range;
};

class QuadTreeEquivalence : public ::testing::TestWithParam<QtParam> {};

TEST_P(QuadTreeEquivalence, MatchesLinearArchive) {
  const auto [seed, dims, range] = GetParam();
  util::Rng rng(seed);
  QuadTreeArchive qt(dims);
  LinearArchive lin;
  for (int i = 0; i < 300; ++i) {
    Vec p;
    for (std::size_t d = 0; d < dims; ++d) p.push_back(rng.range(0, range));
    const bool a = qt.insert(p);
    const bool b = lin.insert(p);
    EXPECT_EQ(a, b) << "insert disagreement at step " << i;
    ASSERT_EQ(qt.size(), lin.size()) << "size disagreement at step " << i;
    // Random dominator queries agree on existence.
    Vec q;
    for (std::size_t d = 0; d < dims; ++d) q.push_back(rng.range(0, range));
    EXPECT_EQ(qt.find_weak_dominator(q) != nullptr,
              lin.find_weak_dominator(q) != nullptr);
  }
  EXPECT_EQ(qt.points(), lin.points());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuadTreeEquivalence,
    ::testing::Values(QtParam{1, 2, 10}, QtParam{2, 2, 30}, QtParam{3, 3, 10},
                      QtParam{4, 3, 25}, QtParam{5, 4, 12}, QtParam{6, 4, 6},
                      QtParam{7, 3, 50}, QtParam{8, 2, 4}, QtParam{9, 1, 20},
                      QtParam{10, 3, 8}));

}  // namespace
}  // namespace aspmt::pareto
