#include "asp/textio.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "util/rng.hpp"

namespace aspmt::asp {
namespace {

TEST(TextIo, ParseFact) {
  const Program p = parse_program("a.");
  ASSERT_EQ(p.rules().size(), 1U);
  EXPECT_EQ(p.name(p.rules()[0].head), "a");
  EXPECT_TRUE(p.rules()[0].body.empty());
}

TEST(TextIo, ParseNormalRule) {
  const Program p = parse_program("a :- b, not c.");
  ASSERT_EQ(p.rules().size(), 1U);
  const Rule& r = p.rules()[0];
  EXPECT_FALSE(r.choice);
  ASSERT_EQ(r.body.size(), 2U);
  EXPECT_TRUE(r.body[0].positive);
  EXPECT_EQ(p.name(r.body[0].atom), "b");
  EXPECT_FALSE(r.body[1].positive);
  EXPECT_EQ(p.name(r.body[1].atom), "c");
}

TEST(TextIo, ParseChoiceAndConstraint) {
  const Program p = parse_program("{a} :- b.\n:- a, not b.\n");
  ASSERT_EQ(p.rules().size(), 1U);
  EXPECT_TRUE(p.rules()[0].choice);
  ASSERT_EQ(p.constraints().size(), 1U);
}

TEST(TextIo, ParseStructuredAtomNames) {
  const Program p = parse_program("bind(t1,r2) :- alloc(r2).");
  EXPECT_NE(p.find("bind(t1,r2)"), p.num_atoms());
  EXPECT_NE(p.find("alloc(r2)"), p.num_atoms());
}

TEST(TextIo, CommentsSkipped) {
  const Program p = parse_program("% a comment\na. % trailing\n% done\n");
  EXPECT_EQ(p.rules().size(), 1U);
}

TEST(TextIo, NotAsAtomPrefixIsNotKeyword) {
  // "nota" is an atom name, not "not a".
  const Program p = parse_program("x :- nota.");
  EXPECT_NE(p.find("nota"), p.num_atoms());
  EXPECT_TRUE(p.rules()[0].body[0].positive);
}

TEST(TextIo, RoundTripPreservesSemantics) {
  const char* text =
      "{a}.\n"
      "{b}.\n"
      "c :- a, not b.\n"
      "d :- c.\n"
      ":- a, b.\n";
  const Program p1 = parse_program(text);
  const Program p2 = parse_program(to_text(p1));
  EXPECT_EQ(test::brute_force_stable_models(p1),
            test::brute_force_stable_models(p2));
}

TEST(TextIo, SameAtomInterned) {
  const Program p = parse_program("a :- b. c :- b.");
  EXPECT_EQ(p.num_atoms(), 3U);
}

TEST(TextIo, ErrorsCarryLineNumbers) {
  EXPECT_THROW((void)parse_program("a :- .\n"), ParseError);
  try {
    (void)parse_program("a.\nb :- ,.\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TextIo, UnbalancedParenthesesRejected) {
  EXPECT_THROW((void)parse_program("bind(t1,r2 :- a."), ParseError);
}

TEST(TextIo, MissingDotRejected) {
  EXPECT_THROW((void)parse_program("a :- b"), ParseError);
}

TEST(TextIo, ParseCardinalityBody) {
  const Program p = parse_program(
      "{a}. {b}. {c}.\n"
      "two :- 2 {a; b; c}.\n");
  // Expanded: `two` plus auxiliaries exist; solve and count.
  const auto models = test::solver_stable_models(p);
  int with_two = 0;
  const Atom two = p.find("two");
  for (const auto& m : models) with_two += m[two] ? 1 : 0;
  EXPECT_EQ(with_two, 4);  // the 4 subsets of size >= 2
}

TEST(TextIo, ParseWeightBody) {
  const Program p = parse_program(
      "{a}. {b}.\n"
      "big :- 5 {3: a; 4: b}.\n");
  const auto models = test::solver_stable_models(p);
  const Atom a = p.find("a");
  const Atom b = p.find("b");
  const Atom big = p.find("big");
  for (const auto& m : models) {
    EXPECT_EQ(m[big], m[a] && m[b]);
  }
}

TEST(TextIo, ParseWeightBodyWithNegation) {
  const Program p = parse_program("x :- 1 {2: not a}. {a}.\n");
  const auto models = test::solver_stable_models(p);
  const Atom a = p.find("a");
  const Atom x = p.find("x");
  for (const auto& m : models) EXPECT_EQ(m[x], !m[a]);
}

TEST(TextIo, ParseMinimizeStatement) {
  const Program p = parse_program("{a}. {b}.\n#minimize {2: a; 3: not b}.\n");
  ASSERT_EQ(p.minimize_terms().size(), 2U);
  EXPECT_EQ(p.minimize_terms()[0].weight, 2);
  EXPECT_TRUE(p.minimize_terms()[0].lit.positive);
  EXPECT_EQ(p.minimize_terms()[1].weight, 3);
  EXPECT_FALSE(p.minimize_terms()[1].lit.positive);
}

TEST(TextIo, MinimizeSurvivesRoundTrip) {
  const Program p1 = parse_program("{a}.\n#minimize {4: a}.\n");
  const Program p2 = parse_program(to_text(p1));
  ASSERT_EQ(p2.minimize_terms().size(), 1U);
  EXPECT_EQ(p2.minimize_terms()[0].weight, 4);
}

TEST(TextIo, BadDirectiveRejected) {
  EXPECT_THROW((void)parse_program("#maximize {1: a}.\n"), ParseError);
}

TEST(TextIo, WeightBodyMissingBraceRejected) {
  EXPECT_THROW((void)parse_program("a :- 2 b, c.\n"), ParseError);
}

// Round-trip fuzz: random programs survive to_text/parse with identical
// stable models.
class TextIoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TextIoRoundTrip, RandomProgramsSurvive) {
  util::Rng rng(GetParam() * 53 + 2);
  Program p;
  const std::uint32_t n = 6;
  std::vector<Atom> atoms;
  for (std::uint32_t i = 0; i < n; ++i) {
    atoms.push_back(p.new_atom("a" + std::to_string(i)));
  }
  const std::uint32_t rules = 3 + static_cast<std::uint32_t>(rng.below(6));
  for (std::uint32_t r = 0; r < rules; ++r) {
    std::vector<BodyLit> body;
    const std::uint32_t len = static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t k = 0; k < len; ++k) {
      body.push_back(BodyLit{atoms[rng.below(n)], rng.chance(0.5)});
    }
    switch (rng.below(3)) {
      case 0: p.choice_rule(atoms[rng.below(n)], std::move(body)); break;
      case 1: p.rule(atoms[rng.below(n)], std::move(body)); break;
      default:
        if (!body.empty()) p.integrity(std::move(body));
        break;
    }
  }
  // The re-parsed program interns atoms in occurrence order and never sees
  // atoms that occur in no statement, so compare models by atom *name*.
  const auto names_of = [](const Program& prog) {
    std::set<std::set<std::string>> out;
    for (const auto& m : test::brute_force_stable_models(prog)) {
      std::set<std::string> names;
      for (Atom a = 0; a < prog.num_atoms(); ++a) {
        if (m[a]) names.insert(prog.name(a));
      }
      out.insert(std::move(names));
    }
    return out;
  };
  const Program q = parse_program(to_text(p));
  EXPECT_EQ(names_of(p), names_of(q)) << to_text(p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextIoRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(TextIo, ParsedProgramSolvesCorrectly) {
  const Program p = parse_program(
      "{x}.\n"
      "y :- not x.\n"
      ":- y.\n");
  const auto models = test::solver_stable_models(p);
  // y <=> not x, and y forbidden, so x must hold.
  ASSERT_EQ(models.size(), 1U);
  EXPECT_TRUE((*models.begin())[p.find("x")]);
}

}  // namespace
}  // namespace aspmt::asp
