#include "pareto/point.hpp"

#include <gtest/gtest.h>

#include "pareto/archive.hpp"
#include "util/rng.hpp"

namespace aspmt::pareto {
namespace {

TEST(Dominance, CompareRelations) {
  EXPECT_EQ(compare(Vec{1, 2}, Vec{2, 3}), DomRel::Dominates);
  EXPECT_EQ(compare(Vec{2, 3}, Vec{1, 2}), DomRel::Dominated);
  EXPECT_EQ(compare(Vec{1, 2}, Vec{1, 2}), DomRel::Equal);
  EXPECT_EQ(compare(Vec{1, 3}, Vec{2, 2}), DomRel::Incomparable);
  EXPECT_EQ(compare(Vec{1, 2}, Vec{1, 3}), DomRel::Dominates);
}

TEST(Dominance, WeakVsStrict) {
  EXPECT_TRUE(weakly_dominates(Vec{1, 2}, Vec{1, 2}));
  EXPECT_FALSE(dominates(Vec{1, 2}, Vec{1, 2}));
  EXPECT_TRUE(dominates(Vec{1, 1}, Vec{1, 2}));
  EXPECT_FALSE(weakly_dominates(Vec{2, 1}, Vec{1, 2}));
}

TEST(Dominance, NonDominatedFilter) {
  std::vector<Vec> pts{{3, 3}, {1, 5}, {5, 1}, {2, 4}, {3, 3}, {4, 4}};
  const auto front = non_dominated_filter(pts);
  const std::vector<Vec> expected{{1, 5}, {2, 4}, {3, 3}, {5, 1}};
  EXPECT_EQ(front, expected);
}

TEST(Dominance, FilterKeepsSingleCopyOfDuplicates) {
  const auto front = non_dominated_filter({{1, 1}, {1, 1}});
  EXPECT_EQ(front.size(), 1U);
}

TEST(Dominance, ToStringFormat) {
  EXPECT_EQ(to_string(Vec{1, 2, 3}), "(1, 2, 3)");
  EXPECT_EQ(to_string(Vec{}), "()");
}

TEST(LinearArchive, InsertRejectsWeaklyDominated) {
  LinearArchive a;
  EXPECT_TRUE(a.insert({2, 2}));
  EXPECT_FALSE(a.insert({2, 2}));  // equal counts as weakly dominated
  EXPECT_FALSE(a.insert({3, 2}));
  EXPECT_TRUE(a.insert({1, 3}));
  EXPECT_EQ(a.size(), 2U);
}

TEST(LinearArchive, InsertEvictsDominated) {
  LinearArchive a;
  EXPECT_TRUE(a.insert({4, 4}));
  EXPECT_TRUE(a.insert({5, 2}));
  EXPECT_TRUE(a.insert({2, 2}));  // dominates both? (2,2) <= (4,4) and <= (5,2)
  EXPECT_EQ(a.size(), 1U);
  EXPECT_EQ(a.points(), (std::vector<Vec>{{2, 2}}));
}

TEST(LinearArchive, FindWeakDominator) {
  LinearArchive a;
  a.insert({2, 5});
  a.insert({4, 1});
  EXPECT_NE(a.find_weak_dominator({3, 6}), nullptr);
  EXPECT_NE(a.find_weak_dominator({2, 5}), nullptr);
  EXPECT_EQ(a.find_weak_dominator({1, 1}), nullptr);
  EXPECT_EQ(a.find_weak_dominator({3, 4}), nullptr);
}

TEST(LinearArchive, ComparisonsCounted) {
  LinearArchive a;
  a.insert({1, 2});
  a.insert({2, 1});
  const auto before = a.comparisons();
  (void)a.find_weak_dominator({5, 5});
  EXPECT_GT(a.comparisons(), before);
}

TEST(LinearArchive, ClearEmpties) {
  LinearArchive a;
  a.insert({1, 1});
  a.clear();
  EXPECT_EQ(a.size(), 0U);
  EXPECT_TRUE(a.points().empty());
}

TEST(ArchiveFactory, MakesBothKinds) {
  EXPECT_NE(make_archive("linear", 3), nullptr);
  EXPECT_NE(make_archive("quadtree", 3), nullptr);
  EXPECT_THROW((void)make_archive("btree", 3), std::invalid_argument);
}

// Property: archive contents equal the non-dominated filter of the inserted
// prefix at every step.
class ArchiveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArchiveProperty, MatchesFilterAtEveryStep) {
  util::Rng rng(GetParam() + 99);
  LinearArchive archive;
  std::vector<Vec> inserted;
  for (int i = 0; i < 120; ++i) {
    Vec p{rng.range(0, 12), rng.range(0, 12), rng.range(0, 12)};
    inserted.push_back(p);
    archive.insert(p);
    if (i % 20 == 19) {
      EXPECT_EQ(archive.points(), non_dominated_filter(inserted));
    }
  }
  EXPECT_EQ(archive.points(), non_dominated_filter(inserted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace aspmt::pareto
