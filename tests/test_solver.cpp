#include "asp/solver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"
#include "util/rng.hpp"

namespace aspmt::asp {
namespace {

Lit L(Var v, bool s = true) { return Lit::make(v, s); }

TEST(Literal, Basics) {
  const Lit a = L(3);
  EXPECT_EQ(a.var(), 3U);
  EXPECT_TRUE(a.positive());
  EXPECT_FALSE((~a).positive());
  EXPECT_EQ((~~a), a);
  EXPECT_NE(a, ~a);
  EXPECT_EQ(Lit::from_index(a.index()), a);
}

TEST(Literal, ValueUnderAssignment) {
  EXPECT_EQ(lit_value(Lbool::True, L(0)), Lbool::True);
  EXPECT_EQ(lit_value(Lbool::True, ~L(0)), Lbool::False);
  EXPECT_EQ(lit_value(Lbool::False, ~L(0)), Lbool::True);
  EXPECT_EQ(lit_value(Lbool::Undef, L(0)), Lbool::Undef);
}

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({L(a)}));
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({L(a)}));
  EXPECT_FALSE(s.add_clause({~L(a)}));
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(Solver, EmptyClauseUnsat) {
  Solver s;
  s.new_var();
  EXPECT_FALSE(s.add_clause({}));
  EXPECT_FALSE(s.ok());
}

TEST(Solver, UnitPropagationChain) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  ASSERT_TRUE(s.add_clause({L(a)}));
  ASSERT_TRUE(s.add_clause({~L(a), L(b)}));
  ASSERT_TRUE(s.add_clause({~L(b), L(c)}));
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.model_value(c));
}

TEST(Solver, TautologyAndDuplicatesIgnored) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({L(a), ~L(a)}));          // tautology: no-op
  ASSERT_TRUE(s.add_clause({L(b), L(b), L(b)}));     // collapses to unit
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(b));
}

TEST(Solver, PigeonholeThreeIntoTwoUnsat) {
  // 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h.
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 6; ++i) v.push_back(s.new_var());
  for (int p = 0; p < 3; ++p) {
    ASSERT_TRUE(s.add_clause({L(v[p * 2]), L(v[p * 2 + 1])}));
  }
  for (int h = 0; h < 2; ++h) {
    for (int p1 = 0; p1 < 3; ++p1) {
      for (int p2 = p1 + 1; p2 < 3; ++p2) {
        ASSERT_TRUE(s.add_clause({~L(v[p1 * 2 + h]), ~L(v[p2 * 2 + h])}));
      }
    }
  }
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
  EXPECT_GT(s.stats().conflicts, 0U);
}

TEST(Solver, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({L(a), L(b)}));
  const std::vector<Lit> assume_na{~L(a)};
  EXPECT_EQ(s.solve(assume_na), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(b));
  // Incompatible assumptions are Unsat but do not poison the solver.
  ASSERT_TRUE(s.add_clause({~L(a), ~L(b)}));
  const std::vector<Lit> both{L(a), L(b)};
  EXPECT_EQ(s.solve(both), Solver::Result::Unsat);
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

TEST(Solver, IncrementalClausesBetweenSolves) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({L(a), L(b)}));
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  ASSERT_TRUE(s.add_clause({~L(a)}));
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.add_clause({~L(b)}) == false || s.solve() == Solver::Result::Unsat);
}

TEST(Solver, ModelEnumerationCount) {
  // (a | b) & (~a | ~b): exactly two models.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({L(a), L(b)}));
  ASSERT_TRUE(s.add_clause({~L(a), ~L(b)}));
  const auto models = test::enumerate_projected(s, {a, b});
  EXPECT_EQ(models.size(), 2U);
  EXPECT_TRUE(models.count({true, false}) == 1);
  EXPECT_TRUE(models.count({false, true}) == 1);
}

TEST(Solver, DeadlineReturnsUnknown) {
  Solver s;
  // A hard-ish pigeonhole instance with an already expired deadline.
  const int pigeons = 9;
  const int holes = 8;
  std::vector<Var> v;
  for (int i = 0; i < pigeons * holes; ++i) v.push_back(s.new_var());
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(L(v[p * holes + h]));
    ASSERT_TRUE(s.add_clause(std::move(c)));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(s.add_clause({~L(v[p1 * holes + h]), ~L(v[p2 * holes + h])}));
      }
    }
  }
  const util::Deadline expired(1e-9);
  EXPECT_EQ(s.solve({}, &expired), Solver::Result::Unknown);
}

// Property test: agreement with brute force on random 3-CNF.
class RandomCnf : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCnf, MatchesBruteForce) {
  util::Rng rng(GetParam());
  const std::uint32_t num_vars = 8;
  const std::uint32_t num_clauses = 4 + static_cast<std::uint32_t>(rng.below(35));
  std::vector<std::vector<Lit>> cnf;
  Solver s;
  for (std::uint32_t i = 0; i < num_vars; ++i) s.new_var();
  bool ok = true;
  for (std::uint32_t c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(
          L(static_cast<Var>(rng.below(num_vars)), rng.chance(0.5)));
    }
    cnf.push_back(clause);
    ok = s.add_clause(clause) && ok;
  }
  const bool expected = test::brute_force_sat(cnf, num_vars);
  if (!ok) {
    EXPECT_FALSE(expected);
  } else {
    const auto r = s.solve();
    EXPECT_EQ(r == Solver::Result::Sat, expected);
    if (r == Solver::Result::Sat) {
      // The reported model must satisfy the formula.
      for (const auto& clause : cnf) {
        bool sat = false;
        for (const Lit l : clause) {
          if (s.model_value(l.var()) == l.positive()) sat = true;
        }
        EXPECT_TRUE(sat);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf, ::testing::Range<std::uint64_t>(0, 40));

// Property test: enumeration counts match brute force.
class RandomCnfCount : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCnfCount, EnumerationMatchesBruteForce) {
  util::Rng rng(GetParam() + 1000);
  const std::uint32_t num_vars = 6;
  const std::uint32_t num_clauses = 3 + static_cast<std::uint32_t>(rng.below(12));
  std::vector<std::vector<Lit>> cnf;
  Solver s;
  std::vector<Var> vars;
  for (std::uint32_t i = 0; i < num_vars; ++i) vars.push_back(s.new_var());
  bool ok = true;
  for (std::uint32_t c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(L(static_cast<Var>(rng.below(num_vars)), rng.chance(0.5)));
    }
    cnf.push_back(clause);
    ok = s.add_clause(clause) && ok;
  }
  const std::uint64_t expected = test::brute_force_count(cnf, num_vars);
  if (!ok) {
    EXPECT_EQ(expected, 0U);
    return;
  }
  const auto models = test::enumerate_projected(s, vars);
  EXPECT_EQ(models.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfCount,
                         ::testing::Range<std::uint64_t>(0, 25));

// A small theory propagator used to exercise the injection interface: it
// forbids more than `cap` of the watched literals being true.
class CapPropagator final : public TheoryPropagator {
 public:
  CapPropagator(std::vector<Lit> lits, std::size_t cap)
      : lits_(std::move(lits)), cap_(cap) {}

  bool propagate(Solver& solver) override { return enforce(solver); }
  void undo_to(const Solver&, std::size_t) override {}
  bool check(Solver& solver) override { return enforce(solver); }

 private:
  bool enforce(Solver& solver) {
    std::vector<Lit> trues;
    for (const Lit l : lits_) {
      if (solver.value(l) == Lbool::True) trues.push_back(l);
    }
    if (trues.size() <= cap_) return true;
    std::vector<Lit> clause;
    for (const Lit l : trues) clause.push_back(~l);
    return solver.add_theory_clause(clause);
  }

  std::vector<Lit> lits_;
  std::size_t cap_;
};

TEST(SolverTheory, InjectedCapConstraintRespected) {
  Solver s;
  std::vector<Var> vars;
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) {
    vars.push_back(s.new_var());
    lits.push_back(L(vars.back()));
  }
  // Require at least 2 true via clauses on pairs: not (all but one false).
  // Simpler: force v0 and make the cap propagator limit the total to 2.
  ASSERT_TRUE(s.add_clause({L(vars[0])}));
  CapPropagator cap(lits, 2);
  s.add_propagator(&cap);
  const auto models = test::enumerate_projected(s, vars);
  // Models: v0 true, at most one more of v1..v4 true... plus exactly-2 sets.
  // Count subsets of {v1..v4} of size <= 1 plus size == 1? cap=2 total.
  // total true <= 2 with v0 fixed true: choose 0 or 1 or 2-1=1 extra... i.e.
  // subsets of the remaining 4 with size <= 1: 1 + 4 = 5.
  EXPECT_EQ(models.size(), 5U);
  for (const auto& m : models) {
    int trues = 0;
    for (const bool b : m) trues += b ? 1 : 0;
    EXPECT_LE(trues, 2);
    EXPECT_TRUE(m[0]);
  }
}

TEST(SolverTheory, TheoryConflictAtRootMakesUnsat) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause({L(a)}));
  CapPropagator cap({L(a)}, 0);  // a may never be true -> contradiction
  s.add_propagator(&cap);
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(SolverStats, CountersMove) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 8; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 8; ++i) {
    ASSERT_TRUE(s.add_clause({L(v[i]), L(v[i + 1])}));
  }
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_GT(s.stats().propagations + s.stats().decisions, 0U);
  EXPECT_EQ(s.stats().models, 1U);
}

}  // namespace
}  // namespace aspmt::asp
