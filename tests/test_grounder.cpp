// The non-ground front-end: parsing, safety, grounding, and end-to-end
// stable-model correctness through the full CDNL pipeline.
#include "asp/grounder.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace aspmt::asp {
namespace {

/// Ground, solve, and return the names of atoms true in every model plus
/// the model count (projected on all ground atoms).
struct Solved {
  std::set<std::set<std::string>> models;
};

Solved solve_text(std::string_view text) {
  const Program p = ground_text(text);
  const auto raw = test::solver_stable_models(p);
  Solved out;
  for (const auto& m : raw) {
    std::set<std::string> names;
    for (Atom a = 0; a < p.num_atoms(); ++a) {
      if (m[a]) names.insert(p.name(a));
    }
    out.models.insert(std::move(names));
  }
  return out;
}

TEST(GrounderTerms, OrderingAndGroundness) {
  EXPECT_TRUE(Term::number_term(3).is_ground());
  EXPECT_FALSE(Term::variable("X").is_ground());
  EXPECT_FALSE(Term::function("f", {Term::variable("X")}).is_ground());
  EXPECT_TRUE(Term::function("f", {Term::symbol("a")}).is_ground());
  EXPECT_LT(Term::number_term(1), Term::number_term(2));
  EXPECT_LT(Term::number_term(9), Term::symbol("a"));  // numbers before symbols
  EXPECT_EQ(Term::function("f", {Term::number_term(1)}).to_string(), "f(1)");
}

TEST(Grounder, FactsAndIntervals) {
  GroundStats stats;
  const Program p = ground_text("node(1..4). weight(7).", &stats);
  EXPECT_EQ(stats.ground_atoms, 5U);
  EXPECT_NE(p.find("node(1)"), p.num_atoms());
  EXPECT_NE(p.find("node(4)"), p.num_atoms());
  EXPECT_NE(p.find("weight(7)"), p.num_atoms());
}

TEST(Grounder, JoinOverSharedVariable) {
  const Solved s = solve_text(
      "edge(1,2). edge(2,3). edge(2,4).\n"
      "path(X,Z) :- edge(X,Y), edge(Y,Z).\n");
  ASSERT_EQ(s.models.size(), 1U);
  const auto& m = *s.models.begin();
  EXPECT_TRUE(m.count("path(1,3)"));
  EXPECT_TRUE(m.count("path(1,4)"));
  EXPECT_FALSE(m.count("path(2,3)"));
}

TEST(Grounder, TransitiveClosureOnCycle) {
  const Solved s = solve_text(
      "edge(1,2). edge(2,3). edge(3,1).\n"
      "reach(X,Y) :- edge(X,Y).\n"
      "reach(X,Z) :- reach(X,Y), edge(Y,Z).\n");
  ASSERT_EQ(s.models.size(), 1U);
  const auto& m = *s.models.begin();
  // Full closure on a 3-cycle: all 9 pairs.
  for (const char* pair : {"reach(1,1)", "reach(2,2)", "reach(1,3)",
                           "reach(3,2)", "reach(2,1)"}) {
    EXPECT_TRUE(m.count(pair)) << pair;
  }
}

TEST(Grounder, ChoiceAndNegationSplitWorlds) {
  const Solved s = solve_text(
      "node(1..3).\n"
      "in(X) :- node(X), not out(X).\n"
      "out(X) :- node(X), not in(X).\n");
  EXPECT_EQ(s.models.size(), 8U);  // each node independently in or out
}

TEST(Grounder, GraphColouringCountsMatch) {
  const Solved s = solve_text(
      "node(1..3). col(r). col(g). col(b).\n"
      "edge(1,2). edge(2,3). edge(1,3).\n"
      "{colour(X,C)} :- node(X), col(C).\n"
      "has(X) :- colour(X,C).\n"
      ":- node(X), not has(X).\n"
      ":- colour(X,C1), colour(X,C2), C1 != C2.\n"
      ":- edge(X,Y), colour(X,C), colour(Y,C).\n");
  EXPECT_EQ(s.models.size(), 6U);  // proper 3-colourings of a triangle
}

TEST(Grounder, ComparisonOperators) {
  const Solved s = solve_text(
      "num(1..4).\n"
      "small(X) :- num(X), X < 3.\n"
      "big(X) :- num(X), X >= 3.\n"
      "three(X) :- num(X), X = 3.\n");
  const auto& m = *s.models.begin();
  EXPECT_TRUE(m.count("small(1)"));
  EXPECT_TRUE(m.count("small(2)"));
  EXPECT_FALSE(m.count("small(3)"));
  EXPECT_TRUE(m.count("big(3)"));
  EXPECT_TRUE(m.count("big(4)"));
  EXPECT_TRUE(m.count("three(3)"));
  EXPECT_FALSE(m.count("three(2)"));
}

TEST(Grounder, UnderivableNegationIsDropped) {
  const Solved s = solve_text("ok :- not missing.\n");
  ASSERT_EQ(s.models.size(), 1U);
  EXPECT_TRUE(s.models.begin()->count("ok"));
}

TEST(Grounder, FunctionTerms) {
  const Solved s = solve_text(
      "item(a). item(b).\n"
      "boxed(box(X)) :- item(X).\n"
      "unboxed(X) :- boxed(box(X)).\n");
  const auto& m = *s.models.begin();
  EXPECT_TRUE(m.count("boxed(box(a))"));
  EXPECT_TRUE(m.count("unboxed(b)"));
}

TEST(Grounder, WinLoseGameOnDag) {
  // Terminal position 3 loses; 2 -> 3 wins; 1 -> 2 loses.
  const Solved s = solve_text(
      "move(1,2). move(2,3).\n"
      "win(X) :- move(X,Y), not win(Y).\n");
  ASSERT_EQ(s.models.size(), 1U);
  const auto& m = *s.models.begin();
  EXPECT_TRUE(m.count("win(2)"));
  EXPECT_FALSE(m.count("win(1)"));
}

TEST(Grounder, WinLoseGameOnCycleHasTwoModels) {
  const Solved s = solve_text(
      "move(1,2). move(2,1).\n"
      "win(X) :- move(X,Y), not win(Y).\n");
  EXPECT_EQ(s.models.size(), 2U);  // the even negation loop splits
}

TEST(Grounder, ConstraintPrunesModels) {
  const Solved s = solve_text(
      "{pick(X)} :- option(X).\n"
      "option(1..2).\n"
      ":- pick(1), pick(2).\n");
  EXPECT_EQ(s.models.size(), 3U);
}

TEST(Grounder, HamiltonianCycleSmall) {
  // Classic encoding on a 3-cycle with a chord: count Hamiltonian cycles.
  const Solved s = solve_text(
      "node(1..3).\n"
      "edge(1,2). edge(2,3). edge(3,1). edge(2,1).\n"
      "{in(X,Y)} :- edge(X,Y).\n"
      "outdeg(X) :- in(X,Y).\n"
      "indeg(Y) :- in(X,Y).\n"
      ":- node(X), not outdeg(X).\n"
      ":- node(X), not indeg(X).\n"
      ":- in(X,Y), in(X,Z), Y != Z.\n"
      ":- in(X,Z), in(Y,Z), X != Y.\n"
      "reach(1).\n"
      "reach(Y) :- reach(X), in(X,Y).\n"
      ":- node(X), not reach(X).\n");
  // Only the directed 3-cycle 1->2->3->1 qualifies (2->1 breaks degree or
  // reachability constraints).
  EXPECT_EQ(s.models.size(), 1U);
  EXPECT_TRUE(s.models.begin()->count("in(1,2)"));
  EXPECT_TRUE(s.models.begin()->count("in(3,1)"));
}

TEST(GrounderSafety, UnboundHeadVariableRejected) {
  EXPECT_THROW((void)ground_text("p(X).\n"), GroundError);
}

TEST(GrounderSafety, UnboundNegativeVariableRejected) {
  EXPECT_THROW((void)ground_text("p :- not q(X).\n"), GroundError);
}

TEST(GrounderSafety, UnboundComparisonRejected) {
  EXPECT_THROW((void)ground_text(":- X < Y.\n"), GroundError);
}

TEST(GrounderSafety, NegativeBindingDoesNotCount) {
  EXPECT_THROW((void)ground_text("q(1). p(X) :- not q(X).\n"), GroundError);
}

TEST(GrounderErrors, IntervalOutsideFactRejected) {
  EXPECT_THROW((void)ground_text("p(X) :- q(1..3).\nq(1).\n"), GroundError);
}

TEST(GrounderErrors, SyntaxErrorsCarryLine) {
  try {
    (void)ground_text("a.\nb :- ,.\n");
    FAIL() << "expected GroundError";
  } catch (const GroundError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(GrounderErrors, RunawayRecursionCapped) {
  EXPECT_THROW((void)ground_text("p(o). p(s(X)) :- p(X).\n"), GroundError);
}

TEST(Grounder, StatsPopulated) {
  GroundStats stats;
  (void)ground_text("a :- not b. b :- not a.", &stats);
  EXPECT_EQ(stats.ground_atoms, 2U);
  EXPECT_EQ(stats.ground_rules, 2U);
  EXPECT_GE(stats.iterations, 1U);
}

TEST(Grounder, GroundProgramMatchesHandWrittenEquivalent) {
  // The grounded program must have exactly the stable models of the
  // hand-grounded version.
  const Program generated = ground_text(
      "q(1). q(2).\n"
      "{p(X)} :- q(X).\n"
      ":- p(1), p(2).\n");
  Program manual;
  const Atom q1 = manual.new_atom("q(1)");
  const Atom q2 = manual.new_atom("q(2)");
  const Atom p1 = manual.new_atom("p(1)");
  const Atom p2 = manual.new_atom("p(2)");
  manual.fact(q1);
  manual.fact(q2);
  manual.choice_rule(p1, {pos(q1)});
  manual.choice_rule(p2, {pos(q2)});
  manual.integrity({pos(p1), pos(p2)});
  // Compare projected models by name.
  auto names_of = [](const Program& p) {
    std::set<std::set<std::string>> out;
    for (const auto& m : test::solver_stable_models(p)) {
      std::set<std::string> names;
      for (Atom a = 0; a < p.num_atoms(); ++a) {
        if (m[a]) names.insert(p.name(a));
      }
      out.insert(std::move(names));
    }
    return out;
  };
  EXPECT_EQ(names_of(generated), names_of(manual));
}

}  // namespace
}  // namespace aspmt::asp
