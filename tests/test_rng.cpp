#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace aspmt::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17U);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0U);
}

TEST(Rng, BelowCoversAllValues) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(5));
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || (v == -3);
    saw_hi = saw_hi || (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeDegenerate) {
  Rng r(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.range(5, 5), 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-1.0));
    EXPECT_TRUE(r.chance(2.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

}  // namespace
}  // namespace aspmt::util
