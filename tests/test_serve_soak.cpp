// Tier-2 soak: hammer the exploration service with concurrent submits,
// cancellations, injected attempt failures and deliberate overload at 2 and
// 4 workers, then hold it to the exactness contract — every job that
// reports `completed` must carry the identical front the batch explorer
// computes for its spec, and every admitted job must reach exactly one
// terminal state (no hangs, no lost jobs, no double counting).  Runs clean
// under TSan: all cross-thread traffic goes through the server's own API.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dse/explorer.hpp"
#include "serve/journal.hpp"
#include "synth/specio.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::serve {
namespace {

struct Golden {
  std::string text;
  std::vector<pareto::Vec> front;
};

std::vector<Golden> golden_fixtures() {
  std::vector<Golden> out;
  for (const synth::Specification& spec :
       {test::two_proc_bus(), test::chain3_bus(), test::diamond_two_proc()}) {
    const dse::ExploreResult seq = dse::explore(spec);
    EXPECT_TRUE(seq.stats.complete);
    out.push_back({synth::to_text(spec), seq.front});
  }
  return out;
}

struct Accepted {
  std::string id;
  std::size_t fixture;
  bool flaky;
  bool certify;
};

void soak(std::size_t workers) {
  SCOPED_TRACE("workers=" + std::to_string(workers));
  const std::vector<Golden> goldens = golden_fixtures();

  const std::string dir = ::testing::TempDir() + "aspmt_serve_soak_" +
                          std::to_string(workers);
  std::filesystem::remove_all(dir);

  ServerOptions opts;
  opts.journal_dir = dir;
  opts.workers = workers;
  opts.max_queue_depth = 12;   // small enough that overload really happens
  opts.shed_watermark = 10;
  opts.tenant_quota = 10;
  opts.drain_grace_seconds = 30.0;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff_seconds = 0.001;
  opts.retry.max_backoff_seconds = 0.005;
  opts.seed = 7 + workers;
  Server server(std::move(opts));
  ASSERT_TRUE(server.start().empty());

  constexpr std::size_t kSubmitters = 3;
  constexpr std::size_t kJobsPerSubmitter = 8;

  std::mutex accepted_mutex;
  std::vector<Accepted> accepted;
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> events_seen{0};

  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (std::size_t j = 0; j < kJobsPerSubmitter; ++j) {
        const std::size_t n = s * kJobsPerSubmitter + j;
        const std::size_t fixture = n % goldens.size();
        const bool flaky = n % 3 == 0;
        JobRequest req;
        req.tenant = "t" + std::to_string(s % 2);
        req.spec_text = goldens[fixture].text;
        req.priority = static_cast<std::int64_t>(n % 4);
        // Certification is asserted only for clean first-attempt completions
        // (a resumed retry is never certifiable), so flaky jobs skip it.
        req.certify = !flaky && n % 4 == 1;
        if (flaky) {
          req.before_attempt = [](std::size_t attempt) {
            if (attempt == 1) throw std::runtime_error("soak: injected loss");
          };
        }
        SubmitOutcome out = server.submit(std::move(req));
        if (!out.accepted) {
          // Overload is an expected, structured outcome under this load —
          // anything else would be a real failure.
          EXPECT_EQ(out.reject_reason, "overload") << out.detail;
          ++rejected;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        (void)server.subscribe(
            out.job_id, [&](const JobEvent&) { ++events_seen; });
        const std::lock_guard<std::mutex> lock(accepted_mutex);
        accepted.push_back({out.job_id, fixture, flaky,
                            n % 4 == 1 && !flaky});
      }
    });
  }

  // Cancel a rotating slice of whatever has been admitted so far, racing
  // the workers and the retry path.
  std::thread canceller([&] {
    for (int round = 0; round < 20; ++round) {
      std::vector<std::string> victims;
      {
        const std::lock_guard<std::mutex> lock(accepted_mutex);
        for (std::size_t i = round; i < accepted.size(); i += 7) {
          victims.push_back(accepted[i].id);
        }
      }
      for (const std::string& id : victims) EXPECT_TRUE(server.cancel(id));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  for (std::thread& t : submitters) t.join();
  canceller.join();

  // Every admitted job must reach exactly one terminal state — the wait
  // has a generous timeout so a lost job fails loudly instead of hanging.
  std::size_t completed = 0;
  for (const Accepted& job : accepted) {
    const Server::StatusResult status = server.wait(job.id, 120.0);
    ASSERT_TRUE(status.known) << job.id;
    ASSERT_TRUE(is_terminal(status.record.state))
        << job.id << " stuck in " << to_string(status.record.state);
    if (status.record.state == JobState::Completed && status.record.complete) {
      ++completed;
      EXPECT_EQ(status.record.front, goldens[job.fixture].front)
          << job.id << ": a completed job must carry the exact batch front";
      if (job.certify && status.record.attempts == 1) {
        EXPECT_TRUE(status.record.certified)
            << job.id << ": clean first-attempt certify run must certify";
      }
    }
  }
  EXPECT_GT(completed, 0U) << "soak must complete at least some jobs";

  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, accepted.size());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.completed + stats.cancelled + stats.shed + stats.quarantined,
            accepted.size())
      << "terminal states must partition the admitted jobs";
  EXPECT_EQ(stats.queued, 0U);
  EXPECT_EQ(stats.running, 0U);
  // Done fires once per admitted job (subscribers were registered for all).
  EXPECT_GE(events_seen.load(), accepted.size());

  std::filesystem::remove_all(dir);
}

TEST(ServeStress, ConcurrentSubmitCancelOverloadTwoWorkers) { soak(2); }

TEST(ServeStress, ConcurrentSubmitCancelOverloadFourWorkers) { soak(4); }

}  // namespace
}  // namespace aspmt::serve
