#include "theory/difference.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "asp/solver.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace aspmt::theory {
namespace {

using asp::Lit;
using asp::Solver;
using asp::Var;

Lit L(Var v, bool s = true) { return Lit::make(v, s); }

TEST(Difference, UnconditionalChain) {
  Solver s;
  DifferencePropagator dl;
  const auto a = dl.new_node("a");
  const auto b = dl.new_node("b");
  const auto c = dl.new_node("c");
  dl.add_edge(a, b, 3, {});
  dl.add_edge(b, c, 4, {});
  EXPECT_FALSE(dl.infeasible());
  EXPECT_EQ(dl.lower_bound(a), 0);
  EXPECT_EQ(dl.lower_bound(b), 3);
  EXPECT_EQ(dl.lower_bound(c), 7);
}

TEST(Difference, LongestOfTwoPathsWins) {
  Solver s;
  DifferencePropagator dl;
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  const auto c = dl.new_node();
  const auto d = dl.new_node();
  dl.add_edge(a, b, 10, {});
  dl.add_edge(b, d, 1, {});
  dl.add_edge(a, c, 2, {});
  dl.add_edge(c, d, 2, {});
  EXPECT_EQ(dl.lower_bound(d), 11);
}

TEST(Difference, UnconditionalPositiveCycleIsConstructionError) {
  Solver s;
  DifferencePropagator dl;
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  dl.add_edge(a, b, 1, {});
  dl.add_edge(b, a, 1, {});
  EXPECT_TRUE(dl.infeasible());
}

TEST(Difference, ZeroWeightCycleIsFine) {
  Solver s;
  DifferencePropagator dl;
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  dl.add_edge(a, b, 0, {});
  dl.add_edge(b, a, 0, {});
  EXPECT_FALSE(dl.infeasible());
  EXPECT_EQ(dl.lower_bound(a), 0);
  EXPECT_EQ(dl.lower_bound(b), 0);
}

TEST(Difference, GuardedEdgeActivatesWithLiteral) {
  Solver s;
  DifferencePropagator dl;
  const Var g = s.new_var();
  s.add_propagator(&dl);
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  dl.add_edge(a, b, 5, {L(g)});
  dl.set_bound(b, 3);
  // g true violates the bound on b.
  ASSERT_TRUE(s.add_clause({L(g)}));
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(Difference, GuardedEdgeInactiveWhenGuardFalse) {
  Solver s;
  DifferencePropagator dl;
  const Var g = s.new_var();
  s.add_propagator(&dl);
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  dl.add_edge(a, b, 5, {L(g)});
  dl.set_bound(b, 3);
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_FALSE(s.model_value(g));  // bound forces the guard off
}

TEST(Difference, ConjunctiveGuardNeedsAllLiterals) {
  Solver s;
  DifferencePropagator dl;
  const Var g1 = s.new_var();
  const Var g2 = s.new_var();
  s.add_propagator(&dl);
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  dl.add_edge(a, b, 5, {L(g1), L(g2)});
  dl.set_bound(b, 3);
  const auto models = test::enumerate_projected(s, {g1, g2});
  // Only g1 & g2 together are forbidden.
  EXPECT_EQ(models.size(), 3U);
  EXPECT_EQ(models.count({true, true}), 0U);
}

TEST(Difference, GuardedPositiveCycleConflicts) {
  Solver s;
  DifferencePropagator dl;
  const Var g1 = s.new_var();
  const Var g2 = s.new_var();
  s.add_propagator(&dl);
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  dl.add_edge(a, b, 2, {L(g1)});
  dl.add_edge(b, a, 2, {L(g2)});
  const auto models = test::enumerate_projected(s, {g1, g2});
  EXPECT_EQ(models.size(), 3U);
  EXPECT_EQ(models.count({true, true}), 0U);
}

TEST(Difference, DisjunctiveOrderingBothDirectionsFeasible) {
  // Classic serialization: either a before b or b before a.
  Solver s;
  DifferencePropagator dl;
  const Var o_ab = s.new_var();
  const Var o_ba = s.new_var();
  s.add_propagator(&dl);
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  const auto mak = dl.new_node();
  dl.add_edge(a, b, 4, {L(o_ab)});
  dl.add_edge(b, a, 4, {L(o_ba)});
  dl.add_edge(a, mak, 4, {});
  dl.add_edge(b, mak, 4, {});
  ASSERT_TRUE(s.add_clause({L(o_ab), L(o_ba)}));
  ASSERT_TRUE(s.add_clause({~L(o_ab), ~L(o_ba)}));
  dl.set_bound(mak, 8);
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  // Makespan below the serial length is impossible.
  dl.set_bound(mak, 7);
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(Difference, ActivationGuardedBound) {
  Solver s;
  DifferencePropagator dl;
  s.add_propagator(&dl);
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  dl.add_edge(a, b, 10, {});
  const Var act = s.new_var();
  dl.add_bound(b, 5, L(act));
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  const std::vector<Lit> assume{L(act)};
  EXPECT_EQ(s.solve(assume), Solver::Result::Unsat);
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

TEST(Difference, BacktrackingRestoresDistances) {
  Solver s;
  DifferencePropagator dl;
  const Var g = s.new_var();
  const Var x = s.new_var();
  s.add_propagator(&dl);
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  dl.add_edge(a, b, 7, {L(g)});
  // Force a conflict after g is set, then check dist rewinds: encode
  // g -> x and g -> ~x.
  ASSERT_TRUE(s.add_clause({~L(g), L(x)}));
  ASSERT_TRUE(s.add_clause({~L(g), ~L(x)}));
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_FALSE(s.model_value(g));
  EXPECT_EQ(dl.lower_bound(b), 0);  // rewound at root
}

// Reference longest path via Bellman-Ford over active edges.
std::vector<std::int64_t> reference_longest(
    std::size_t n, const std::vector<std::tuple<int, int, std::int64_t>>& edges) {
  std::vector<std::int64_t> dist(n, 0);
  for (std::size_t round = 0; round <= n + 1; ++round) {
    bool changed = false;
    for (const auto& [u, v, w] : edges) {
      if (dist[u] + w > dist[v]) {
        dist[v] = dist[u] + w;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

class RandomDlDag : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDlDag, FixpointMatchesBellmanFord) {
  util::Rng rng(GetParam() * 31 + 5);
  const std::size_t n = 8;
  Solver s;
  DifferencePropagator dl;
  std::vector<DifferencePropagator::NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(dl.new_node());
  std::vector<Var> guards;
  struct E {
    int u, v;
    std::int64_t w;
    Var g;
  };
  std::vector<E> edges;
  // Random forward edges (DAG: u < v), each with its own guard variable.
  for (int u = 0; u < static_cast<int>(n); ++u) {
    for (int v = u + 1; v < static_cast<int>(n); ++v) {
      if (!rng.chance(0.4)) continue;
      const Var g = s.new_var();
      const std::int64_t w = rng.range(1, 9);
      guards.push_back(g);
      edges.push_back(E{u, v, w, g});
      dl.add_edge(nodes[u], nodes[v], w, {L(g)});
    }
  }
  s.add_propagator(&dl);
  // Fix a random subset of guards via unit clauses.
  std::vector<std::tuple<int, int, std::int64_t>> active;
  for (const E& e : edges) {
    if (rng.chance(0.6)) {
      ASSERT_TRUE(s.add_clause({L(e.g)}));
      active.emplace_back(e.u, e.v, e.w);
    } else {
      ASSERT_TRUE(s.add_clause({~L(e.g)}));
    }
  }
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  // Distances at the root fixpoint (all units propagated at level 0).
  const auto expected = reference_longest(n, active);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(dl.lower_bound(nodes[i]), expected[i]) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDlDag, ::testing::Range<std::uint64_t>(0, 30));

TEST(Difference, ExplainBoundCollectsPathGuards) {
  Solver s;
  DifferencePropagator dl;
  const Var g1 = s.new_var();
  const Var g2 = s.new_var();
  s.add_propagator(&dl);
  const auto a = dl.new_node();
  const auto b = dl.new_node();
  const auto c = dl.new_node();
  dl.add_edge(a, b, 3, {L(g1)});
  dl.add_edge(b, c, 3, {L(g2)});
  ASSERT_TRUE(s.add_clause({L(g1)}));
  ASSERT_TRUE(s.add_clause({L(g2)}));
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  // At the root fixpoint after solve, units persist: explanation of c's
  // bound must mention both guards.
  std::vector<Lit> expl;
  dl.explain_bound(c, expl);
  EXPECT_EQ(expl.size(), 2U);
}

}  // namespace
}  // namespace aspmt::theory
