#include "synth/specio.hpp"

#include <gtest/gtest.h>

#include "dse/explorer.hpp"
#include "gen/generator.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::synth {
namespace {

TEST(SpecIo, RoundTripPreservesStructure) {
  const Specification a = test::chain3_bus();
  const Specification b = parse_specification(to_text(a));
  EXPECT_EQ(a.tasks().size(), b.tasks().size());
  EXPECT_EQ(a.messages().size(), b.messages().size());
  EXPECT_EQ(a.resources().size(), b.resources().size());
  EXPECT_EQ(a.links().size(), b.links().size());
  EXPECT_EQ(a.mappings().size(), b.mappings().size());
  for (std::size_t i = 0; i < a.mappings().size(); ++i) {
    EXPECT_EQ(a.mappings()[i].task, b.mappings()[i].task);
    EXPECT_EQ(a.mappings()[i].resource, b.mappings()[i].resource);
    EXPECT_EQ(a.mappings()[i].wcet, b.mappings()[i].wcet);
    EXPECT_EQ(a.mappings()[i].energy, b.mappings()[i].energy);
  }
}

TEST(SpecIo, RoundTripPreservesTheFront) {
  const Specification a = test::diamond_two_proc();
  const Specification b = parse_specification(to_text(a));
  const auto ra = dse::explore(a);
  const auto rb = dse::explore(b);
  ASSERT_TRUE(ra.stats.complete && rb.stats.complete);
  EXPECT_EQ(ra.front, rb.front);
}

TEST(SpecIo, RoundTripOfGeneratedInstances) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    gen::GeneratorConfig c;
    c.seed = seed;
    c.tasks = 6;
    c.architecture = gen::Architecture::Mesh2x2;
    const Specification a = gen::generate(c);
    const Specification b = parse_specification(to_text(a));
    EXPECT_EQ(to_text(a), to_text(b));
    EXPECT_EQ(b.validate(), "");
  }
}

TEST(SpecIo, GlobalSettingsSurvive) {
  Specification a = test::two_proc_bus();
  a.max_hops = 4;
  a.latency_bound = 99;
  const Specification b = parse_specification(to_text(a));
  EXPECT_EQ(b.max_hops, 4U);
  EXPECT_EQ(b.latency_bound, 99);
}

TEST(SpecIo, CapacitySurvives) {
  Specification a = test::two_proc_bus();
  a.set_capacity(1, 2);
  const Specification b = parse_specification(to_text(a));
  EXPECT_EQ(b.resources()[1].capacity, 2U);
}

TEST(SpecIo, CommentsAndBlankLines) {
  const char* text =
      "# header\n"
      "\n"
      "resource p0 processor cost=5  # trailing comment\n"
      "task a\n"
      "map a p0 wcet=3 energy=1\n";
  const Specification s = parse_specification(text);
  EXPECT_EQ(s.resources().size(), 1U);
  EXPECT_EQ(s.validate(), "");
}

TEST(SpecIo, DefaultsApplied) {
  const char* text =
      "resource p0 processor cost=1\n"
      "resource p1 processor cost=1\n"
      "link p0 p1\n"
      "task a\n"
      "task b\n"
      "message m a b\n"
      "map a p0 wcet=1\n"
      "map b p1 wcet=1\n";
  const Specification s = parse_specification(text);
  EXPECT_EQ(s.links()[0].hop_delay, 1);
  EXPECT_EQ(s.messages()[0].payload, 1);
  EXPECT_EQ(s.mappings()[0].energy, 0);
}

TEST(SpecIo, ErrorsMentionLineNumbers) {
  try {
    (void)parse_specification("resource p0 processor cost=5\nlink p0 p9\n");
    FAIL() << "expected SpecParseError";
  } catch (const SpecParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("p9"), std::string::npos);
  }
}

TEST(SpecIo, RejectsUnknownStatement) {
  EXPECT_THROW((void)parse_specification("frobnicate x\n"), SpecParseError);
}

TEST(SpecIo, RejectsDuplicates) {
  EXPECT_THROW((void)parse_specification(
                   "resource p processor cost=1\nresource p bus cost=1\n"),
               SpecParseError);
  EXPECT_THROW((void)parse_specification("task a\ntask a\n"), SpecParseError);
}

TEST(SpecIo, RejectsMissingRequiredOption) {
  EXPECT_THROW((void)parse_specification("resource p processor\n"),
               SpecParseError);
  EXPECT_THROW((void)parse_specification(
                   "resource p processor cost=1\ntask a\nmap a p\n"),
               SpecParseError);
}

TEST(SpecIo, RejectsBadInteger) {
  EXPECT_THROW((void)parse_specification("resource p processor cost=abc\n"),
               SpecParseError);
}

TEST(SpecIo, FileRoundTrip) {
  const Specification a = test::two_proc_bus();
  const std::string path = ::testing::TempDir() + "/aspmt_spec_test.txt";
  save_specification(a, path);
  const Specification b = load_specification(path);
  EXPECT_EQ(to_text(a), to_text(b));
}

TEST(SpecIo, MissingFileThrows) {
  EXPECT_THROW((void)load_specification("/nonexistent/nope.txt"), SpecParseError);
}

}  // namespace
}  // namespace aspmt::synth
