// Multi-threaded stress and property tests for the sharded concurrent
// Pareto archive: whatever the interleaving, the final archive must equal a
// sequential insert of the same point multiset, no archived point may
// dominate another, and the generation counter / update log must let a
// reader reconstruct the front exactly.
#include "pareto/concurrent_archive.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pareto/archive.hpp"
#include "pareto/quadtree.hpp"
#include "util/rng.hpp"

namespace aspmt::pareto {
namespace {

constexpr std::size_t kWriters = 8;
constexpr std::size_t kPointsPerWriter = 10000;

std::vector<std::vector<Vec>> random_batches(std::uint64_t seed,
                                             std::int64_t value_range) {
  std::vector<std::vector<Vec>> batches(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    util::Rng rng(seed + w * 7919);
    batches[w].reserve(kPointsPerWriter);
    for (std::size_t i = 0; i < kPointsPerWriter; ++i) {
      batches[w].push_back(Vec{rng.range(0, value_range),
                               rng.range(0, value_range),
                               rng.range(0, value_range)});
    }
  }
  return batches;
}

class ConcurrentArchiveStress
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ConcurrentArchiveStress, EightWritersMatchSequentialInsert) {
  // A tight value range maximizes dominance churn (insert+evict), a wide
  // one maximizes archive size; cover both.
  for (const std::int64_t range : {30LL, 100000LL}) {
    const auto batches = random_batches(0xC0FFEE + range, range);
    ConcurrentArchive shared(GetParam(), 3);
    std::atomic<std::uint64_t> successful{0};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (std::size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        std::uint64_t mine = 0;
        for (const Vec& p : batches[w]) {
          if (shared.insert(p)) ++mine;
        }
        successful.fetch_add(mine);
      });
    }
    for (std::thread& t : writers) t.join();

    // Reference: the same multiset inserted sequentially.  The final
    // non-dominated set is order-independent, so any interleaving must
    // produce exactly this.
    std::vector<Vec> all;
    all.reserve(kWriters * kPointsPerWriter);
    for (const auto& batch : batches) {
      all.insert(all.end(), batch.begin(), batch.end());
    }
    EXPECT_EQ(shared.points(), non_dominated_filter(std::move(all)));
    EXPECT_EQ(shared.generation(), successful.load());
    EXPECT_LE(shared.size(), successful.load());
  }
}

TEST_P(ConcurrentArchiveStress, NoArchivedPointDominatesAnother) {
  const auto batches = random_batches(0xBEEF, 40);
  ConcurrentArchive shared(GetParam(), 3);
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (const Vec& p : batches[w]) shared.insert(p);
    });
  }
  for (std::thread& t : writers) t.join();
  const std::vector<Vec> front = shared.points();
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(weakly_dominates(front[i], front[j]))
          << to_string(front[i]) << " vs " << to_string(front[j]);
    }
  }
}

TEST_P(ConcurrentArchiveStress, ReaderReconstructsFrontFromUpdateLog) {
  const auto batches = random_batches(0xF00D, 60);
  ConcurrentArchive shared(GetParam(), 3);
  std::atomic<bool> done{false};

  // A reader mirrors what a worker's dominance propagator does: poll the
  // lock-free generation counter, pull increments, replay into a local
  // snapshot archive.
  LinearArchive local;
  std::thread reader([&] {
    std::uint64_t synced = 0;
    std::vector<Vec> buffer;
    while (!done.load(std::memory_order_acquire)) {
      if (shared.generation() != synced) {
        buffer.clear();
        synced = shared.fetch_updates(synced, buffer);
        for (const Vec& p : buffer) local.insert(p);
      }
      std::this_thread::yield();
    }
    // Final drain after the writers stopped.
    buffer.clear();
    synced = shared.fetch_updates(synced, buffer);
    for (const Vec& p : buffer) local.insert(p);
  });

  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (const Vec& p : batches[w]) shared.insert(p);
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(local.points(), shared.points());
}

INSTANTIATE_TEST_SUITE_P(Kinds, ConcurrentArchiveStress,
                         ::testing::Values("linear", "quadtree"));

TEST(ConcurrentArchive, SingleThreadMatchesPlainArchiveSemantics) {
  ConcurrentArchive shared("quadtree", 3);
  EXPECT_TRUE(shared.insert(Vec{3, 3, 3}));
  EXPECT_FALSE(shared.insert(Vec{3, 3, 3}));  // duplicate
  EXPECT_FALSE(shared.insert(Vec{4, 3, 3}));  // weakly dominated
  EXPECT_TRUE(shared.insert(Vec{1, 5, 5}));   // incomparable
  EXPECT_TRUE(shared.insert(Vec{1, 4, 5}));   // evicts (1,5,5)
  EXPECT_EQ(shared.size(), 2U);
  EXPECT_EQ(shared.points(), (std::vector<Vec>{{1, 4, 5}, {3, 3, 3}}));
  EXPECT_EQ(shared.generation(), 3U);  // three successful inserts
}

TEST(ConcurrentArchive, TrippedCancelTokenAbandonsInsertWithoutMutation) {
  ConcurrentArchive shared("quadtree", 3);
  ASSERT_TRUE(shared.insert(Vec{3, 3, 3}));
  std::atomic<bool> cancel{true};
  // The would-be insert dominates the archived point (it would evict it);
  // the tripped token must abandon it before any mutation.
  EXPECT_FALSE(shared.insert(Vec{1, 1, 1}, &cancel));
  EXPECT_EQ(shared.points(), (std::vector<Vec>{{3, 3, 3}}));
  EXPECT_EQ(shared.generation(), 1U);
  cancel.store(false);
  EXPECT_TRUE(shared.insert(Vec{1, 1, 1}, &cancel));
  EXPECT_EQ(shared.points(), (std::vector<Vec>{{1, 1, 1}}));
}

TEST(ConcurrentArchive, MidInsertCancellationKeepsFrontDominanceConsistent) {
  // Writers race full batches against a token tripped mid-flight: however
  // many inserts the cancellation cuts off, the surviving archive must be
  // mutually non-dominated, contain only inserted points, and agree with
  // the generation counter — i.e. cancellation between the optimistic
  // shared-lock pass and the exclusive escalation never tears an insert.
  const auto batches = random_batches(0xCA11, 40);
  ConcurrentArchive shared("quadtree", 3);
  std::atomic<bool> cancel{false};
  std::atomic<std::uint64_t> successful{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::uint64_t mine = 0;
      for (std::size_t i = 0; i < batches[w].size(); ++i) {
        if (w == 0 && i == batches[w].size() / 2) {
          cancel.store(true, std::memory_order_release);  // trip mid-run
        }
        if (shared.insert(batches[w][i], &cancel)) ++mine;
      }
      successful.fetch_add(mine);
    });
  }
  for (std::thread& t : writers) t.join();

  const std::vector<Vec> front = shared.points();
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(weakly_dominates(front[j], front[i]))
            << to_string(front[j]) << " vs " << to_string(front[i]);
      }
    }
  }
  EXPECT_EQ(shared.generation(), successful.load());
  EXPECT_LE(shared.size(), successful.load());
  // Every archived point is one the writers actually offered.
  for (const Vec& p : front) {
    bool known = false;
    for (const auto& batch : batches) {
      for (const Vec& q : batch) known = known || q == p;
    }
    EXPECT_TRUE(known) << to_string(p);
  }
}

TEST(ConcurrentArchive, FetchUpdatesReturnsEvictedEntriesToo) {
  ConcurrentArchive shared("linear", 3, 2);
  ASSERT_TRUE(shared.insert(Vec{5, 5, 5}));
  ASSERT_TRUE(shared.insert(Vec{2, 2, 2}));  // evicts (5,5,5)
  std::vector<Vec> log;
  const std::uint64_t gen = shared.fetch_updates(0, log);
  EXPECT_EQ(gen, 2U);
  EXPECT_EQ(log, (std::vector<Vec>{{5, 5, 5}, {2, 2, 2}}));
  // Replaying the full log into a fresh archive yields the current front.
  LinearArchive replay;
  for (const Vec& p : log) replay.insert(p);
  EXPECT_EQ(replay.points(), shared.points());
}

// The eviction half of insert(), exposed for the sharded archive, must
// behave identically on both archive kinds.
template <typename A>
void check_erase_dominated_by(A&& archive) {
  archive.insert(Vec{2, 2, 2});
  archive.insert(Vec{1, 5, 1});
  archive.insert(Vec{5, 1, 1});
  EXPECT_EQ(archive.erase_dominated_by(Vec{1, 1, 1}), 3U);
  EXPECT_EQ(archive.size(), 0U);
  archive.insert(Vec{2, 2, 2});
  // A point equal to p must survive erase_dominated_by(p).
  EXPECT_EQ(archive.erase_dominated_by(Vec{2, 2, 2}), 0U);
  EXPECT_EQ(archive.size(), 1U);
  // Incomparable points survive.
  EXPECT_EQ(archive.erase_dominated_by(Vec{1, 9, 9}), 0U);
  EXPECT_EQ(archive.size(), 1U);
}

TEST(EraseDominatedBy, LinearArchive) { check_erase_dominated_by(LinearArchive{}); }

TEST(EraseDominatedBy, QuadTreeArchive) {
  check_erase_dominated_by(QuadTreeArchive{3});
}

}  // namespace
}  // namespace aspmt::pareto
