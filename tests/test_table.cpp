#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace aspmt::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2U);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);
  // Three lines: header, separator, row.
  int lines = 0;
  for (const char c : os.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
}

TEST(Table, ColumnsAligned) {
  Table t({"col", "x"});
  t.add_row({"longercell", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  const std::size_t header_end = out.find('\n');
  const std::string header = out.substr(0, header_end);
  // Header is padded to the widest cell plus separator spacing.
  EXPECT_GE(header.size(), std::string("longercell").size());
}

TEST(TableFmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

TEST(TableFmt, Integers) {
  EXPECT_EQ(fmt(42LL), "42");
  EXPECT_EQ(fmt(-7LL), "-7");
  EXPECT_EQ(fmt(0LL), "0");
}

}  // namespace
}  // namespace aspmt::util
