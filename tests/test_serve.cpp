// The exploration service is exact software wrapped in robustness: whatever
// the daemon survives — overload, flaky attempts, SIGKILL — every job that
// reports `completed` must carry the same front the batch explorer computes
// for its spec.  These tests pin the four pillars (admission/shedding,
// crash-safe journal, retry/backoff supervision, graceful drain) plus the
// wire protocol and the durability primitives underneath them.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dse/checkpoint.hpp"
#include "dse/explorer.hpp"
#include "dse/fault.hpp"
#include "dse/supervise.hpp"
#include "gen/generator.hpp"
#include "serve/client.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "synth/specio.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::serve {
namespace {

std::string temp_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "aspmt_serve_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string spec_text(const synth::Specification& spec) {
  return synth::to_text(spec);
}

/// A gate a before_attempt hook can block on until the test releases it —
/// the deterministic way to hold a job in Running.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
};

ServerOptions small_server(const std::string& journal_dir) {
  ServerOptions opts;
  opts.journal_dir = journal_dir;
  opts.workers = 1;
  opts.drain_grace_seconds = 10.0;
  opts.retry.initial_backoff_seconds = 0.01;
  opts.retry.max_backoff_seconds = 0.02;
  return opts;
}

// ---- protocol --------------------------------------------------------------

TEST(ServeProtocol, RoundTripPreservesStructureAndEscapes) {
  Json obj = Json::object();
  obj.set("op", "submit");
  obj.set("count", std::int64_t{42});
  obj.set("ratio", 1.5);
  obj.set("flag", true);
  obj.set("nothing", nullptr);
  obj.set("text", std::string("line1\nline2\t\"quoted\" \\slash\x01"));
  Json arr = Json::array();
  arr.push_back(std::int64_t{-7});
  Json inner = Json::object();
  inner.set("k", "v");
  arr.push_back(std::move(inner));
  obj.set("list", std::move(arr));

  const std::string line = obj.dump();
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "dump must stay single-line for the wire protocol";

  Json parsed;
  ASSERT_EQ(Json::parse(line, parsed), "");
  EXPECT_EQ(parsed.get("op").as_string(), "submit");
  EXPECT_EQ(parsed.get("count").as_int(), 42);
  EXPECT_DOUBLE_EQ(parsed.get("ratio").as_double(), 1.5);
  EXPECT_TRUE(parsed.get("flag").as_bool());
  EXPECT_TRUE(parsed.get("nothing").is_null());
  EXPECT_EQ(parsed.get("text").as_string(),
            "line1\nline2\t\"quoted\" \\slash\x01");
  ASSERT_EQ(parsed.get("list").items().size(), 2U);
  EXPECT_EQ(parsed.get("list").items()[0].as_int(), -7);
  EXPECT_EQ(parsed.get("list").items()[1].get("k").as_string(), "v");
  // Second round trip is a fixed point.
  EXPECT_EQ(parsed.dump(), line);
}

TEST(ServeProtocol, NumbersWithoutFractionParseAsInt) {
  Json v;
  ASSERT_EQ(Json::parse("42", v), "");
  EXPECT_EQ(v.kind(), Json::Kind::Int);
  ASSERT_EQ(Json::parse("-4.5", v), "");
  EXPECT_EQ(v.kind(), Json::Kind::Double);
  ASSERT_EQ(Json::parse("1e3", v), "");
  EXPECT_EQ(v.kind(), Json::Kind::Double);
}

TEST(ServeProtocol, MalformedInputIsADiagnosticNeverACrash) {
  Json v;
  EXPECT_NE(Json::parse("", v), "");
  EXPECT_NE(Json::parse("{", v), "");
  EXPECT_NE(Json::parse("[1,]", v), "");
  EXPECT_NE(Json::parse("{\"a\":1} trailing", v), "");
  EXPECT_NE(Json::parse("\"unterminated", v), "");
  // Depth bomb: the recursion guard must reject, not overflow the stack.
  const std::string bomb(500, '[');
  EXPECT_NE(Json::parse(bomb, v), "");
}

// ---- journal ---------------------------------------------------------------

JobRecord sample_record() {
  JobRecord r;
  r.id = "j-7";
  r.tenant = "acme";
  r.state = JobState::Completed;
  r.priority = -3;
  r.threads = 2;
  r.attempts = 2;
  r.limits.wall_seconds = 1.5;
  r.limits.conflicts = 1000;
  r.limits.memory_mb = 256;
  r.certify = true;
  r.spec_text = spec_text(test::two_proc_bus());
  r.error = "survived a\nmultiline error";
  r.complete = true;
  r.certified = true;
  r.seconds = 0.25;
  r.front = {{5, 7, 9}, {6, 6, 10}};
  return r;
}

TEST(ServeJournal, RecordRoundTrips) {
  const JobRecord r = sample_record();
  JobRecord back;
  ASSERT_EQ(job_from_text(job_to_text(r), back), "");
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.tenant, r.tenant);
  EXPECT_EQ(back.state, r.state);
  EXPECT_EQ(back.priority, r.priority);
  EXPECT_EQ(back.threads, r.threads);
  EXPECT_EQ(back.attempts, r.attempts);
  EXPECT_DOUBLE_EQ(back.limits.wall_seconds, r.limits.wall_seconds);
  EXPECT_EQ(back.limits.conflicts, r.limits.conflicts);
  EXPECT_EQ(back.limits.memory_mb, r.limits.memory_mb);
  EXPECT_TRUE(back.certify);
  EXPECT_EQ(back.spec_text, r.spec_text);
  EXPECT_EQ(back.error, "survived a multiline error");  // LF flattened
  EXPECT_TRUE(back.complete);
  EXPECT_TRUE(back.certified);
  EXPECT_DOUBLE_EQ(back.seconds, r.seconds);
  EXPECT_EQ(back.front, r.front);
}

TEST(ServeJournal, NonTerminalRecordCarriesNoResult) {
  JobRecord r = sample_record();
  r.state = JobState::Queued;
  r.front.clear();
  r.complete = false;
  JobRecord back;
  ASSERT_EQ(job_from_text(job_to_text(r), back), "");
  EXPECT_EQ(back.state, JobState::Queued);
  EXPECT_TRUE(back.front.empty());
}

TEST(ServeJournal, EveryCorruptionIsRejectedByTheChecksum) {
  const std::string good = job_to_text(sample_record());
  JobRecord out;
  ASSERT_EQ(job_from_text(good, out), "");
  // Flip one byte anywhere before the trailer: must be rejected.
  for (std::size_t i = 0; i + 26 < good.size(); i += 97) {
    std::string bad = good;
    bad[i] ^= 0x20;
    EXPECT_NE(job_from_text(bad, out), "") << "flip at offset " << i;
  }
  // Truncation (torn write) at any prefix: must be rejected.
  EXPECT_NE(job_from_text(good.substr(0, good.size() / 2), out), "");
  EXPECT_NE(job_from_text("", out), "");
}

TEST(ServeJournal, LoadAllSkipsCorruptEntriesWithDiagnostics) {
  const std::string dir = temp_dir("journal_loadall");
  const JobJournal journal(dir);
  JobRecord a = sample_record();
  a.id = "j-1";
  JobRecord b = sample_record();
  b.id = "j-2";
  ASSERT_EQ(journal.save(a), "");
  ASSERT_EQ(journal.save(b), "");
  {
    std::ofstream garbage(dir + "/j-3.job");
    garbage << "not a journal entry\n";
  }
  std::vector<std::string> diagnostics;
  const std::vector<JobRecord> loaded = journal.load_all(&diagnostics);
  ASSERT_EQ(loaded.size(), 2U);
  EXPECT_EQ(loaded[0].id, "j-1");
  EXPECT_EQ(loaded[1].id, "j-2");
  ASSERT_EQ(diagnostics.size(), 1U);
  EXPECT_NE(diagnostics[0].find("j-3.job"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// ---- supervision -----------------------------------------------------------

TEST(ServeSupervise, BackoffIsDeterministicCappedAndJittered) {
  dse::RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.max_backoff_seconds = 0.4;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;
  // First attempt has no predecessor failure: no delay.
  EXPECT_EQ(dse::retry_backoff_seconds(policy, 1, 9, 1), 0.0);
  for (std::size_t attempt = 2; attempt <= 8; ++attempt) {
    const double d = dse::retry_backoff_seconds(policy, 1, 9, attempt);
    EXPECT_EQ(d, dse::retry_backoff_seconds(policy, 1, 9, attempt))
        << "jitter must be a pure function of (seed, key, attempt)";
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, policy.max_backoff_seconds);
    // Jitter only ever shrinks the delay (decorrelation, never extra wait).
    const double base =
        std::min(policy.max_backoff_seconds,
                 policy.initial_backoff_seconds *
                     std::pow(policy.multiplier,
                              static_cast<double>(attempt - 2)));
    EXPECT_LE(d, base);
    EXPECT_GE(d, base * (1.0 - policy.jitter) - 1e-12);
  }
  // Different keys decorrelate.
  EXPECT_NE(dse::retry_backoff_seconds(policy, 1, 9, 3),
            dse::retry_backoff_seconds(policy, 1, 10, 3));
}

TEST(ServeSupervise, CircuitOpensAfterMaxAttempts) {
  dse::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.01;
  dse::RetrySupervisor supervisor(policy, 42);
  const auto first = supervisor.on_failure(5);
  EXPECT_TRUE(first.retry);
  EXPECT_EQ(first.attempt, 2U);
  const auto second = supervisor.on_failure(5);
  EXPECT_TRUE(second.retry);
  EXPECT_EQ(second.attempt, 3U);
  const auto third = supervisor.on_failure(5);
  EXPECT_FALSE(third.retry) << "third failure must open the circuit";
  EXPECT_EQ(supervisor.attempts(5), 3U);
  EXPECT_EQ(supervisor.retries_granted(), 2U);
  // Independent keys have independent circuits.
  EXPECT_TRUE(supervisor.on_failure(6).retry);
}

// ---- durability ------------------------------------------------------------

TEST(ServeDurability, AtomicWriteSurvivesFsyncFailureDegraded) {
  const std::string dir = temp_dir("atomic_write");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/out.txt";
  // Healthy write: no diagnostic.
  EXPECT_EQ(dse::atomic_write_file(path, "v1"), "");
  // Injected fsync failure: the write is still published (rename happened),
  // but the caller is told durability degraded.
  const std::string diag = dse::atomic_write_file(path, "v2", true);
  EXPECT_NE(diag.find("durability degraded"), std::string::npos) << diag;
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "v2");
  std::filesystem::remove_all(dir);
}

TEST(ServeDurability, SyncFailFaultKeyParsesFromEnv) {
  ::setenv("ASPMT_FAULT_INJECT", "sync-fail", 1);
  EXPECT_TRUE(dse::FaultPlan::from_env().sync_fail);
  ::setenv("ASPMT_FAULT_INJECT", "worker-throw=0", 1);
  EXPECT_FALSE(dse::FaultPlan::from_env().sync_fail);
  ::unsetenv("ASPMT_FAULT_INJECT");
  EXPECT_FALSE(dse::FaultPlan::from_env().sync_fail);
}

TEST(ServeDurability, ExplorerReportsDegradedCheckpointButCompletes) {
  const std::string dir = temp_dir("ckpt_syncfail");
  std::filesystem::create_directories(dir);
  dse::FaultPlan fault;
  fault.sync_fail = true;
  dse::ExploreOptions opts;
  opts.common.checkpoint_path = dir + "/run.ckpt";
  opts.common.fault = &fault;
  const dse::ExploreResult r = dse::explore(test::chain3_bus(), opts);
  EXPECT_TRUE(r.stats.complete);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors.front().find("durability degraded"), std::string::npos)
      << r.errors.front();
  // Degraded means fsync was skipped, not that the data is bad: the final
  // checkpoint is still on disk and loadable.
  dse::Checkpoint ckpt;
  EXPECT_EQ(dse::load_checkpoint(opts.common.checkpoint_path, ckpt), "");
  EXPECT_EQ(ckpt.points, r.front);
  std::filesystem::remove_all(dir);
}

// ---- server: happy path ----------------------------------------------------

TEST(ServeServer, CompletedJobMatchesSequentialExplore) {
  const synth::Specification spec = test::chain3_bus();
  const dse::ExploreResult seq = dse::explore(spec);
  ASSERT_TRUE(seq.stats.complete);

  Server server(small_server(temp_dir("happy")));
  ASSERT_TRUE(server.start().empty());
  JobRequest req;
  req.spec_text = spec_text(spec);
  const SubmitOutcome out = server.submit(std::move(req));
  ASSERT_TRUE(out.accepted) << out.reject_reason << ": " << out.detail;
  EXPECT_EQ(out.job_id, "j-1");
  const Server::StatusResult status = server.wait(out.job_id, 60.0);
  ASSERT_TRUE(status.known);
  ASSERT_EQ(status.record.state, JobState::Completed) << status.record.error;
  EXPECT_TRUE(status.record.complete);
  EXPECT_EQ(status.record.front, seq.front);
  EXPECT_EQ(status.record.attempts, 1U);
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, 1U);
  EXPECT_EQ(stats.completed, 1U);
  std::filesystem::remove_all(server.options().journal_dir);
}

TEST(ServeServer, InvalidSpecIsRejectedStructurally) {
  Server server(small_server(""));
  ASSERT_TRUE(server.start().empty());
  JobRequest req;
  req.spec_text = "this is not a specification";
  const SubmitOutcome out = server.submit(std::move(req));
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reject_reason, "invalid-spec");
  EXPECT_FALSE(out.detail.empty());
  EXPECT_EQ(server.stats().rejected, 1U);
  server.drain();
}

TEST(ServeServer, UnknownJobIdsAreNotKnown) {
  Server server(small_server(""));
  ASSERT_TRUE(server.start().empty());
  EXPECT_FALSE(server.status("j-404").known);
  EXPECT_FALSE(server.wait("j-404", 0.05).known);
  EXPECT_FALSE(server.cancel("j-404"));
  server.drain();
}

// ---- server: admission control and shedding --------------------------------

TEST(ServeServer, TenantOverQuotaGetsStructuredOverloadNeverAHang) {
  auto gate = std::make_shared<Gate>();
  ServerOptions opts = small_server("");
  opts.tenant_quota = 1;
  Server server(std::move(opts));
  ASSERT_TRUE(server.start().empty());

  JobRequest blocker;
  blocker.tenant = "acme";
  blocker.spec_text = spec_text(test::two_proc_bus());
  blocker.before_attempt = [gate](std::size_t) { gate->wait(); };
  const SubmitOutcome first = server.submit(std::move(blocker));
  ASSERT_TRUE(first.accepted);

  // The quota counts live (queued + running) jobs, so the rejection holds
  // whether or not the worker picked the blocker up yet.
  JobRequest second;
  second.tenant = "acme";
  second.spec_text = spec_text(test::two_proc_bus());
  const SubmitOutcome rejected = server.submit(std::move(second));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.reject_reason, "overload");
  EXPECT_EQ(rejected.detail, "tenant quota exceeded");

  // A different tenant is unaffected.
  JobRequest other;
  other.tenant = "zenith";
  other.spec_text = spec_text(test::two_proc_bus());
  EXPECT_TRUE(server.submit(std::move(other)).accepted);

  gate->release();
  server.drain();
}

TEST(ServeServer, FullQueueRejectsWithOverload) {
  auto gate = std::make_shared<Gate>();
  ServerOptions opts = small_server("");
  opts.max_queue_depth = 2;
  opts.shed_watermark = 2;  // shedding off for this test
  Server server(std::move(opts));
  ASSERT_TRUE(server.start().empty());

  JobRequest blocker;
  blocker.spec_text = spec_text(test::two_proc_bus());
  blocker.before_attempt = [gate](std::size_t) { gate->wait(); };
  ASSERT_TRUE(server.submit(std::move(blocker)).accepted);
  // Wait until the single worker runs the blocker (queued -> running).
  while (server.stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 2; ++i) {
    JobRequest filler;
    filler.spec_text = spec_text(test::two_proc_bus());
    ASSERT_TRUE(server.submit(std::move(filler)).accepted) << i;
  }
  JobRequest overflow;
  overflow.spec_text = spec_text(test::two_proc_bus());
  const SubmitOutcome rejected = server.submit(std::move(overflow));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.reject_reason, "overload");
  EXPECT_EQ(rejected.detail, "queue full");
  gate->release();
  server.drain();
}

TEST(ServeServer, ShedsNewestLowestPriorityFirst) {
  auto gate = std::make_shared<Gate>();
  ServerOptions opts = small_server("");
  opts.max_queue_depth = 64;
  opts.shed_watermark = 1;
  Server server(std::move(opts));
  ASSERT_TRUE(server.start().empty());

  JobRequest blocker;
  blocker.spec_text = spec_text(test::two_proc_bus());
  blocker.before_attempt = [gate](std::size_t) { gate->wait(); };
  ASSERT_TRUE(server.submit(std::move(blocker)).accepted);
  while (server.stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  JobRequest keeper;
  keeper.spec_text = spec_text(test::two_proc_bus());
  keeper.priority = 5;
  const SubmitOutcome kept = server.submit(std::move(keeper));
  ASSERT_TRUE(kept.accepted);

  // Queue is now at the watermark; the next admission triggers a shed and
  // the victim is the lowest-priority queued job — the newcomer itself.
  JobRequest doomed;
  doomed.spec_text = spec_text(test::two_proc_bus());
  doomed.priority = 1;
  const SubmitOutcome shed = server.submit(std::move(doomed));
  ASSERT_TRUE(shed.accepted) << "shedding is post-admission, not rejection";
  const Server::StatusResult shed_status = server.wait(shed.job_id, 5.0);
  ASSERT_TRUE(shed_status.known);
  EXPECT_EQ(shed_status.record.state, JobState::Shed);
  EXPECT_NE(shed_status.record.error.find("load shed"), std::string::npos);

  // A high-priority late arrival displaces the older low-priority job
  // instead of being shed itself.
  JobRequest urgent;
  urgent.spec_text = spec_text(test::two_proc_bus());
  urgent.priority = 9;
  const SubmitOutcome kept2 = server.submit(std::move(urgent));
  ASSERT_TRUE(kept2.accepted);
  const Server::StatusResult old_status = server.wait(kept.job_id, 5.0);
  EXPECT_EQ(old_status.record.state, JobState::Shed)
      << "priority 5 should be shed to make room under priority 9";

  gate->release();
  const Server::StatusResult urgent_status = server.wait(kept2.job_id, 60.0);
  EXPECT_EQ(urgent_status.record.state, JobState::Completed);
  server.drain();
  EXPECT_EQ(server.stats().shed, 2U);
}

// ---- server: cancellation and supervision ----------------------------------

TEST(ServeServer, CancelWinsAgainstQueuedAndRunningJobs) {
  auto gate = std::make_shared<Gate>();
  Server server(small_server(""));
  ASSERT_TRUE(server.start().empty());

  JobRequest running;
  running.spec_text = spec_text(test::two_proc_bus());
  running.before_attempt = [gate](std::size_t) { gate->wait(); };
  const SubmitOutcome r = server.submit(std::move(running));
  ASSERT_TRUE(r.accepted);
  while (server.stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  JobRequest queued;
  queued.spec_text = spec_text(test::two_proc_bus());
  const SubmitOutcome q = server.submit(std::move(queued));
  ASSERT_TRUE(q.accepted);

  // Queued cancel resolves immediately, before any worker touches it.
  EXPECT_TRUE(server.cancel(q.job_id));
  const Server::StatusResult qs = server.status(q.job_id);
  EXPECT_EQ(qs.record.state, JobState::Cancelled);
  EXPECT_EQ(qs.record.attempts, 0U);

  // Running cancel trips the attempt's budget; the gate releases after so
  // the cancellation is already sticky when the explorer starts.
  EXPECT_TRUE(server.cancel(r.job_id));
  gate->release();
  const Server::StatusResult rs = server.wait(r.job_id, 60.0);
  EXPECT_EQ(rs.record.state, JobState::Cancelled);
  server.drain();
  EXPECT_EQ(server.stats().cancelled, 2U);
}

TEST(ServeServer, FlakyAttemptIsRetriedWithBackoffAndConverges) {
  const synth::Specification spec = test::chain3_bus();
  const dse::ExploreResult seq = dse::explore(spec);

  Server server(small_server(temp_dir("flaky")));
  ASSERT_TRUE(server.start().empty());
  auto gate = std::make_shared<Gate>();
  auto events = std::make_shared<std::vector<JobEvent::Kind>>();
  auto events_mutex = std::make_shared<std::mutex>();
  JobRequest req;
  req.spec_text = spec_text(spec);
  // The gate holds attempt 1 until the subscriber below is registered, so
  // the Requeue event cannot race past it.
  req.before_attempt = [gate](std::size_t attempt) {
    gate->wait();
    if (attempt == 1) throw std::runtime_error("injected worker loss");
  };
  const SubmitOutcome out = server.submit(std::move(req));
  ASSERT_TRUE(out.accepted);
  ASSERT_TRUE(server.subscribe(out.job_id, [=](const JobEvent& ev) {
    const std::lock_guard<std::mutex> lock(*events_mutex);
    events->push_back(ev.kind);
  }));
  gate->release();
  const Server::StatusResult status = server.wait(out.job_id, 60.0);
  ASSERT_EQ(status.record.state, JobState::Completed) << status.record.error;
  EXPECT_EQ(status.record.attempts, 2U);
  EXPECT_TRUE(status.record.complete);
  EXPECT_EQ(status.record.front, seq.front);
  server.drain();
  EXPECT_EQ(server.stats().retries, 1U);
  {
    const std::lock_guard<std::mutex> lock(*events_mutex);
    EXPECT_NE(std::count(events->begin(), events->end(),
                         JobEvent::Kind::Requeue), 0);
    EXPECT_EQ(std::count(events->begin(), events->end(), JobEvent::Kind::Done),
              1);
  }
  std::filesystem::remove_all(server.options().journal_dir);
}

TEST(ServeServer, PersistentFailureQuarantinesAfterMaxAttempts) {
  ServerOptions opts = small_server("");
  opts.retry.max_attempts = 3;
  Server server(std::move(opts));
  ASSERT_TRUE(server.start().empty());
  JobRequest req;
  req.spec_text = spec_text(test::two_proc_bus());
  req.before_attempt = [](std::size_t) {
    throw std::runtime_error("always broken");
  };
  const SubmitOutcome out = server.submit(std::move(req));
  ASSERT_TRUE(out.accepted);
  const Server::StatusResult status = server.wait(out.job_id, 60.0);
  EXPECT_EQ(status.record.state, JobState::Quarantined);
  EXPECT_EQ(status.record.attempts, 3U);
  EXPECT_EQ(status.record.error, "always broken");
  server.drain();
  EXPECT_EQ(server.stats().quarantined, 1U);
  EXPECT_EQ(server.stats().retries, 2U);
}

// ---- server: drain and recovery --------------------------------------------

TEST(ServeServer, DrainingServerRejectsNewSubmits) {
  Server server(small_server(""));
  ASSERT_TRUE(server.start().empty());
  server.drain();
  JobRequest req;
  req.spec_text = spec_text(test::two_proc_bus());
  const SubmitOutcome out = server.submit(std::move(req));
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reject_reason, "draining");
  // Idempotent.
  server.drain();
}

TEST(ServeServer, RestartRecoversTerminalAndQueuedJobs) {
  const std::string dir = temp_dir("recovery");
  const synth::Specification diamond = test::diamond_two_proc();
  const dse::ExploreResult seq = dse::explore(diamond);
  std::string completed_id;
  std::vector<pareto::Vec> completed_front;
  {
    Server first(small_server(dir));
    ASSERT_TRUE(first.start().empty());
    JobRequest req;
    req.spec_text = spec_text(test::chain3_bus());
    const SubmitOutcome out = first.submit(std::move(req));
    ASSERT_TRUE(out.accepted);
    completed_id = out.job_id;
    const Server::StatusResult st = first.wait(out.job_id, 60.0);
    ASSERT_EQ(st.record.state, JobState::Completed);
    completed_front = st.record.front;
    first.drain();
  }
  // A queued record left behind by a crashed daemon (never started here).
  {
    JobRecord orphan;
    orphan.id = "j-50";
    orphan.tenant = "default";
    orphan.state = JobState::Queued;
    orphan.spec_text = spec_text(diamond);
    ASSERT_EQ(JobJournal(dir).save(orphan), "");
  }
  Server second(small_server(dir));
  ASSERT_TRUE(second.start().empty());
  // The finished job survives the restart with its front intact...
  const Server::StatusResult old_job = second.status(completed_id);
  ASSERT_TRUE(old_job.known);
  EXPECT_EQ(old_job.record.state, JobState::Completed);
  EXPECT_EQ(old_job.record.front, completed_front);
  // ...the orphaned queued job is re-admitted and runs to the exact front...
  const Server::StatusResult orphan = second.wait("j-50", 60.0);
  ASSERT_TRUE(orphan.known);
  ASSERT_EQ(orphan.record.state, JobState::Completed) << orphan.record.error;
  EXPECT_EQ(orphan.record.front, seq.front);
  // ...and the id counter resumes past every journaled id.
  JobRequest fresh;
  fresh.spec_text = spec_text(test::two_proc_bus());
  const SubmitOutcome out = second.submit(std::move(fresh));
  ASSERT_TRUE(out.accepted);
  EXPECT_EQ(out.job_id, "j-51");
  (void)second.wait(out.job_id, 60.0);
  second.drain();
  std::filesystem::remove_all(dir);
}

TEST(ServeServer, CorruptJournalEntryIsAStartDiagnosticNotAFailure) {
  const std::string dir = temp_dir("corrupt_journal");
  std::filesystem::create_directories(dir);
  {
    std::ofstream garbage(dir + "/j-1.job");
    garbage << "torn write\n";
  }
  Server server(small_server(dir));
  const std::vector<std::string> diagnostics = server.start();
  ASSERT_EQ(diagnostics.size(), 1U);
  EXPECT_NE(diagnostics[0].find("j-1.job"), std::string::npos);
  // The daemon is healthy: fresh submits run normally.
  JobRequest req;
  req.spec_text = spec_text(test::two_proc_bus());
  const SubmitOutcome out = server.submit(std::move(req));
  ASSERT_TRUE(out.accepted);
  EXPECT_EQ(server.wait(out.job_id, 60.0).record.state, JobState::Completed);
  server.drain();
  std::filesystem::remove_all(dir);
}

TEST(ServeServer, SubscriberSeesFrontDeltasBeforeDone) {
  auto gate = std::make_shared<Gate>();
  Server server(small_server(""));
  ASSERT_TRUE(server.start().empty());
  JobRequest req;
  req.spec_text = spec_text(test::chain3_bus());
  req.before_attempt = [gate](std::size_t) { gate->wait(); };
  const SubmitOutcome out = server.submit(std::move(req));
  ASSERT_TRUE(out.accepted);

  auto mutex = std::make_shared<std::mutex>();
  auto kinds = std::make_shared<std::vector<JobEvent::Kind>>();
  ASSERT_TRUE(server.subscribe(out.job_id, [=](const JobEvent& ev) {
    const std::lock_guard<std::mutex> lock(*mutex);
    kinds->push_back(ev.kind);
  }));
  gate->release();
  ASSERT_EQ(server.wait(out.job_id, 60.0).record.state, JobState::Completed);
  server.drain();
  const std::lock_guard<std::mutex> lock(*mutex);
  ASSERT_FALSE(kinds->empty());
  EXPECT_NE(std::count(kinds->begin(), kinds->end(),
                       JobEvent::Kind::FrontDelta), 0)
      << "archive insertions must stream to subscribers";
  EXPECT_EQ(kinds->back(), JobEvent::Kind::Done);
  EXPECT_EQ(std::count(kinds->begin(), kinds->end(), JobEvent::Kind::Done), 1);
}

// ---- daemon process: the kill-9 differential --------------------------------
// ASPMT_SERVED_BIN points at the real daemon binary; these tests cover the
// full fork/exec + unix socket + SIGKILL + restart path end to end.
#ifdef ASPMT_SERVED_BIN

pid_t spawn_daemon(const std::string& socket_path, const std::string& journal,
                   const char* workers, const char* ckpt_interval) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(ASPMT_SERVED_BIN, "aspmt_served", "serve", "--socket",
            socket_path.c_str(), "--journal", journal.c_str(), "--workers",
            workers, "--checkpoint-interval", ckpt_interval,
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  return pid;
}

std::string connect_with_retry(Client& client, const std::string& socket_path,
                               double timeout_seconds) {
  std::string err = "timed out";
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    err = client.connect(socket_path);
    if (err.empty()) return "";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return err;
}

TEST(ServeDaemon, Kill9ThenRestartConvergesToTheSameFront) {
  // A spec heavy enough that SIGKILL lands mid-exploration on any machine
  // fast or slow — and if it does complete first, the differential still
  // holds: the restarted daemon must serve the identical recorded front.
  gen::GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.tasks = 14;
  cfg.architecture = gen::Architecture::Mesh2x2;
  const synth::Specification spec = gen::generate(cfg);
  const dse::ExploreResult seq = dse::explore(spec);
  ASSERT_TRUE(seq.stats.complete);

  const std::string dir = temp_dir("kill9");
  const std::string socket_path =
      "/tmp/aspmt_served_t" + std::to_string(::getpid()) + ".sock";

  const pid_t first = spawn_daemon(socket_path, dir, "1", "0.05");
  ASSERT_GT(first, 0);
  {
    Client client;
    ASSERT_EQ(connect_with_retry(client, socket_path, 10.0), "");
    Json req = Json::object();
    req.set("op", "submit");
    req.set("spec", spec_text(spec));
    Json ack;
    ASSERT_EQ(client.request(req, ack), "");
    ASSERT_TRUE(ack.get("ok").as_bool()) << ack.dump();
    EXPECT_EQ(ack.get("job").as_string(), "j-1");
  }
  // Let the job run long enough for admission + first checkpoints, then
  // kill without any chance to clean up.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(::kill(first, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(first, &status, 0), first);
  ASSERT_TRUE(WIFSIGNALED(status));

  const pid_t second = spawn_daemon(socket_path, dir, "1", "0.05");
  ASSERT_GT(second, 0);
  {
    Client client;
    ASSERT_EQ(connect_with_retry(client, socket_path, 10.0), "");
    Json req = Json::object();
    req.set("op", "result");
    req.set("job", "j-1");
    Json result;
    ASSERT_EQ(client.request(req, result), "");
    ASSERT_TRUE(result.get("ok").as_bool()) << result.dump();
    EXPECT_EQ(result.get("state").as_string(), "completed");
    EXPECT_TRUE(result.get("complete").as_bool());
    std::vector<pareto::Vec> front;
    for (const Json& point : result.get("front").items()) {
      pareto::Vec p;
      for (const Json& v : point.items()) p.push_back(v.as_int());
      front.push_back(std::move(p));
    }
    EXPECT_EQ(front, seq.front)
        << "kill-9 recovery must converge to the exact batch front";

    Json drain = Json::object();
    drain.set("op", "drain");
    ASSERT_EQ(client.send(drain), "");
    std::string line;
    ASSERT_EQ(client.read_line(line), "");
  }
  ASSERT_EQ(::waitpid(second, &status, 0), second);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "SIGTERM/drain path must exit cleanly, got status " << status;
  std::filesystem::remove_all(dir);
  std::filesystem::remove(socket_path);
}

#endif  // ASPMT_SERVED_BIN

}  // namespace
}  // namespace aspmt::serve
