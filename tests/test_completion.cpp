#include "asp/completion.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "util/rng.hpp"

namespace aspmt::asp {
namespace {

TEST(Completion, TightnessDetection) {
  Program tight;
  const Atom a = tight.new_atom("a");
  const Atom b = tight.new_atom("b");
  tight.rule(b, {pos(a)});
  tight.fact(a);
  Solver s1;
  EXPECT_TRUE(compile(tight, s1).tight);

  Program loop;
  const Atom x = loop.new_atom("x");
  const Atom y = loop.new_atom("y");
  loop.rule(x, {pos(y)});
  loop.rule(y, {pos(x)});
  Solver s2;
  const auto c = compile(loop, s2);
  EXPECT_FALSE(c.tight);
  EXPECT_EQ(c.scc_of[x], c.scc_of[y]);
  EXPECT_TRUE(c.cyclic[x] != 0 && c.cyclic[y] != 0);
}

TEST(Completion, SelfLoopIsCyclic) {
  Program p;
  const Atom a = p.new_atom("a");
  p.rule(a, {pos(a)});
  Solver s;
  const auto c = compile(p, s);
  EXPECT_FALSE(c.tight);
  EXPECT_TRUE(c.cyclic[a] != 0);
}

TEST(Completion, NegativeCycleStaysTight) {
  // Negation does not create positive dependencies.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.rule(a, {neg(b)});
  p.rule(b, {neg(a)});
  Solver s;
  EXPECT_TRUE(compile(p, s).tight);
}

TEST(Completion, SupportClauseForcesFalseWithoutRules) {
  Program p;
  const Atom a = p.new_atom("a");
  (void)a;
  Solver s;
  const auto c = compile(p, s);
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_FALSE(s.model_value(c.atom_var[a]));
}

TEST(Completion, DerivationForcesHead) {
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.fact(a);
  p.rule(b, {pos(a)});
  Solver s;
  const auto c = compile(p, s);
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(c.atom_var[b]));
}

TEST(Completion, SharedBodiesReuseAuxiliaries) {
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  const Atom c1 = p.new_atom("c1");
  const Atom c2 = p.new_atom("c2");
  p.choice_rule(a);
  p.choice_rule(b);
  p.rule(c1, {pos(a), pos(b)});
  p.rule(c2, {pos(a), pos(b)});
  Solver s;
  const auto compiled = compile(p, s);
  // 4 atoms + 1 constant-true + exactly one shared body auxiliary.
  EXPECT_EQ(s.num_vars(), compiled.atom_var.size() + 2);
}

TEST(Completion, CompiledRulesCarryPositiveBodies) {
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  const Atom c = p.new_atom("c");
  p.rule(c, {pos(a), neg(b)});
  Solver s;
  const auto compiled = compile(p, s);
  ASSERT_EQ(compiled.rules.size(), 1U);
  EXPECT_EQ(compiled.rules[0].head, c);
  ASSERT_EQ(compiled.rules[0].pos_body.size(), 1U);
  EXPECT_EQ(compiled.rules[0].pos_body[0], a);
}

// Property: on random *tight* programs, completion alone must reproduce the
// brute-force stable models (no unfounded-set checker needed).
class RandomTightProgram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTightProgram, MatchesBruteForce) {
  util::Rng rng(GetParam());
  Program p;
  const std::uint32_t n = 7;
  std::vector<Atom> atoms;
  for (std::uint32_t i = 0; i < n; ++i) {
    atoms.push_back(p.new_atom("a" + std::to_string(i)));
  }
  // Tight by construction: positive bodies only reference lower atoms.
  for (std::uint32_t i = 0; i < n; ++i) {
    const int kind = static_cast<int>(rng.below(3));
    std::vector<BodyLit> body;
    const std::uint32_t body_len = static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t k = 0; k < body_len; ++k) {
      const bool positive = rng.chance(0.5);
      if (positive && i > 0) {
        body.push_back(pos(atoms[rng.below(i)]));
      } else {
        body.push_back(neg(atoms[rng.below(n)]));
      }
    }
    if (kind == 0) {
      p.choice_rule(atoms[i], std::move(body));
    } else {
      p.rule(atoms[i], std::move(body));
    }
  }
  if (rng.chance(0.5)) {
    p.integrity({pos(atoms[rng.below(n)]), neg(atoms[rng.below(n)])});
  }

  Solver solver;
  const auto compiled = compile(p, solver);
  EXPECT_TRUE(compiled.tight);
  std::vector<Var> vars;
  for (const Atom a : atoms) vars.push_back(compiled.atom_var[a]);
  const auto via_solver = test::enumerate_projected(solver, vars);
  const auto reference = test::brute_force_stable_models(p);
  EXPECT_EQ(via_solver, reference) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTightProgram,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace aspmt::asp
