// Single-edit specification mutations for the incremental re-exploration
// tests (tests/test_respec.cpp, FuzzRespec in tests/test_fuzz_dse.cpp).
//
// synth::Specification is build-only (no mutators beyond set_capacity and
// the two public knobs), so every mutation copies the spec into a plain
// SpecEditor, applies one edit and rebuilds through the add_* API — ids are
// assigned sequentially, so re-adding in order reproduces them.
#pragma once

#include <cstdint>
#include <vector>

#include "dse/respec.hpp"
#include "synth/spec.hpp"

namespace aspmt::test {

struct SpecEditor {
  std::vector<synth::Task> tasks;
  std::vector<synth::Message> messages;
  std::vector<synth::Resource> resources;
  std::vector<synth::Link> links;
  std::vector<synth::MappingOption> mappings;
  std::uint32_t max_hops = 0;
  std::int64_t latency_bound = 0;

  explicit SpecEditor(const synth::Specification& s)
      : tasks(s.tasks()),
        messages(s.messages()),
        resources(s.resources()),
        links(s.links()),
        mappings(s.mappings()),
        max_hops(s.max_hops),
        latency_bound(s.latency_bound) {}

  [[nodiscard]] synth::Specification build() const {
    synth::Specification out;
    for (const synth::Resource& r : resources) {
      out.add_resource(r.name, r.kind, r.cost, r.capacity);
    }
    for (const synth::Link& l : links) {
      out.add_link(l.from, l.to, l.hop_delay, l.hop_energy);
    }
    for (const synth::Task& t : tasks) out.add_task(t.name);
    for (const synth::Message& m : messages) {
      out.add_message(m.name, m.src, m.dst, m.payload);
    }
    for (const synth::MappingOption& m : mappings) {
      out.add_mapping(m.task, m.resource, m.wcet, m.energy);
    }
    out.max_hops = max_hops;
    out.latency_bound = latency_bound;
    return out;
  }

  /// Index of the n-th processor resource (asserts one exists).
  [[nodiscard]] synth::ResourceId processor(std::size_t n = 0) const {
    std::size_t seen = 0;
    for (std::size_t i = 0; i < resources.size(); ++i) {
      if (resources[i].kind == synth::ResourceKind::Processor) {
        if (seen == n) return static_cast<synth::ResourceId>(i);
        ++seen;
      }
    }
    return 0;
  }
};

// ---- the single-edit mutation catalogue -----------------------------------
// Each mutation returns a *valid* specification; the comment gives the delta
// class the respec layer must assign to it.

/// WCET bump on the first mapping option — ClauseSafe (coefficient only).
inline synth::Specification mutate_wcet_bump(const synth::Specification& s) {
  SpecEditor e(s);
  e.mappings.front().wcet += 1;
  return e.build();
}

/// Energy bump on the last mapping option — ClauseSafe.
inline synth::Specification mutate_energy_bump(const synth::Specification& s) {
  SpecEditor e(s);
  e.mappings.back().energy += 2;
  return e.build();
}

/// Resource cost change — ClauseSafe (cost is an objective coefficient).
inline synth::Specification mutate_resource_cost(const synth::Specification& s) {
  SpecEditor e(s);
  e.resources[e.processor(0)].cost += 3;
  return e.build();
}

/// Retarget the first mapping option to a different processor —
/// ArchiveSafe (the mapping structure changed; tasks survive).
inline synth::Specification mutate_resource_swap(const synth::Specification& s) {
  SpecEditor e(s);
  synth::MappingOption& m = e.mappings.front();
  const synth::ResourceId p0 = e.processor(0);
  const synth::ResourceId p1 = e.processor(1);
  m.resource = (m.resource == p0 && p1 != p0) ? p1 : p0;
  return e.build();
}

/// Add an independent task mapped to the first processor — Unsafe.
inline synth::Specification mutate_task_add(const synth::Specification& s) {
  SpecEditor e(s);
  synth::Task t;
  t.name = "added_task";
  e.tasks.push_back(t);
  synth::MappingOption m;
  m.task = static_cast<synth::TaskId>(e.tasks.size() - 1);
  m.resource = e.processor(0);
  m.wcet = 2;
  m.energy = 2;
  e.mappings.push_back(m);
  return e.build();
}

/// Remove the last task together with its messages and mappings — Unsafe.
/// Requires >= 2 tasks.
inline synth::Specification mutate_task_remove(const synth::Specification& s) {
  SpecEditor e(s);
  const auto victim = static_cast<synth::TaskId>(e.tasks.size() - 1);
  std::erase_if(e.messages, [victim](const synth::Message& m) {
    return m.src == victim || m.dst == victim;
  });
  std::erase_if(e.mappings, [victim](const synth::MappingOption& m) {
    return m.task == victim;
  });
  e.tasks.pop_back();
  return e.build();
}

struct MutationCase {
  const char* name;
  dse::DeltaClass expected;
  synth::Specification (*apply)(const synth::Specification&);
};

/// Every single-edit mutation with its expected delta classification.
inline const MutationCase* mutation_catalogue(std::size_t& count) {
  static const MutationCase kCases[] = {
      {"wcet_bump", dse::DeltaClass::ClauseSafe, &mutate_wcet_bump},
      {"energy_bump", dse::DeltaClass::ClauseSafe, &mutate_energy_bump},
      {"resource_cost", dse::DeltaClass::ClauseSafe, &mutate_resource_cost},
      {"resource_swap", dse::DeltaClass::ArchiveSafe, &mutate_resource_swap},
      {"task_add", dse::DeltaClass::Unsafe, &mutate_task_add},
      {"task_remove", dse::DeltaClass::Unsafe, &mutate_task_remove},
  };
  count = sizeof(kCases) / sizeof(kCases[0]);
  return kCases;
}

}  // namespace aspmt::test
