#include "asp/cardinality.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace aspmt::asp {
namespace {

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  std::uint64_t r = 1;
  for (std::uint64_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

std::uint64_t count_upto(std::uint64_t n, std::uint64_t k) {
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i <= k; ++i) total += binomial(n, i);
  return total;
}

struct CardHarness {
  Solver solver;
  std::vector<Var> vars;
  std::vector<Lit> lits;
  explicit CardHarness(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      vars.push_back(solver.new_var());
      lits.push_back(Lit::make(vars.back(), true));
    }
  }
};

struct CardCase {
  std::uint32_t n;
  std::uint32_t k;
};

class AtMostCount : public ::testing::TestWithParam<CardCase> {};

TEST_P(AtMostCount, ModelCountMatchesBinomialSum) {
  const auto [n, k] = GetParam();
  CardHarness s(n);
  encode_at_most(s.solver, s.lits, k);
  const auto models = test::enumerate_projected(s.solver, s.vars);
  EXPECT_EQ(models.size(), count_upto(n, k));
  for (const auto& m : models) {
    std::uint32_t trues = 0;
    for (const bool b : m) trues += b ? 1 : 0;
    EXPECT_LE(trues, k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AtMostCount,
    ::testing::Values(CardCase{3, 1}, CardCase{4, 2}, CardCase{5, 1},
                      CardCase{5, 3}, CardCase{6, 2}, CardCase{7, 4},
                      CardCase{6, 5}, CardCase{8, 1}));

class AtLeastCount : public ::testing::TestWithParam<CardCase> {};

TEST_P(AtLeastCount, ModelCountMatchesBinomialSum) {
  const auto [n, k] = GetParam();
  CardHarness s(n);
  encode_at_least(s.solver, s.lits, k);
  const auto models = test::enumerate_projected(s.solver, s.vars);
  std::uint64_t expected = 0;
  for (std::uint64_t i = k; i <= n; ++i) expected += binomial(n, i);
  EXPECT_EQ(models.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AtLeastCount,
    ::testing::Values(CardCase{3, 2}, CardCase{4, 1}, CardCase{5, 3},
                      CardCase{6, 4}, CardCase{6, 6}, CardCase{5, 5}));

TEST(Cardinality, ExactlyOneCounts) {
  for (const std::uint32_t n : {2U, 3U, 5U, 8U}) {
    CardHarness s(n);
    encode_exactly_one(s.solver, s.lits);
    const auto models = test::enumerate_projected(s.solver, s.vars);
    EXPECT_EQ(models.size(), n);
  }
}

TEST(Cardinality, AtMostZeroForcesAllFalse) {
  CardHarness s(4);
  encode_at_most(s.solver, s.lits, 0);
  ASSERT_EQ(s.solver.solve(), Solver::Result::Sat);
  for (const Var v : s.vars) EXPECT_FALSE(s.solver.model_value(v));
}

TEST(Cardinality, AtLeastMoreThanSizeUnsat) {
  CardHarness s(3);
  encode_at_least(s.solver, s.lits, 4);
  EXPECT_EQ(s.solver.solve(), Solver::Result::Unsat);
}

TEST(Cardinality, AtMostWholeSizeIsNoOp) {
  CardHarness s(3);
  const std::uint32_t vars_before = s.solver.num_vars();
  encode_at_most(s.solver, s.lits, 3);
  EXPECT_EQ(s.solver.num_vars(), vars_before);
  const auto models = test::enumerate_projected(s.solver, s.vars);
  EXPECT_EQ(models.size(), 8U);
}

TEST(Cardinality, MixedPolarityLiterals) {
  // at most 1 of {a, ~b}: forbids a & ~b together... no wait: allows at most
  // one of the two literals true.
  CardHarness s(2);
  const std::vector<Lit> lits{s.lits[0], ~s.lits[1]};
  encode_at_most(s.solver, lits, 1);
  const auto models = test::enumerate_projected(s.solver, s.vars);
  // Excluded: a=true, b=false. Remaining 3.
  EXPECT_EQ(models.size(), 3U);
  EXPECT_EQ(models.count({true, false}), 0U);
}

}  // namespace
}  // namespace aspmt::asp
