// Randomized end-to-end fuzz: random generator configurations, random
// capacities and deadlines — the explorer must agree with an independent
// exact method, every witness must validate, and every run is driven in
// certified mode: the terminating Unsat proof is replayed by the
// independent checker and the front cross-checked against the validated
// witnesses (see src/cert/).  Seeds honour ASPMT_TEST_SEED (test_util.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "dse/baselines.hpp"
#include "dse/checkpoint.hpp"
#include "dse/explorer.hpp"
#include "dse/respec.hpp"
#include "dse/parallel_explorer.hpp"
#include "dse/warmstart.hpp"
#include "gen/generator.hpp"
#include "pareto/indicators.hpp"
#include "spec_mutations.hpp"
#include "synth/validator.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace aspmt {
namespace {

class FuzzDse : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDse, ExplorerAgreesWithLexUnderRandomConstraints) {
  const std::uint64_t seed = test::fuzz_seed(GetParam());
  util::Rng rng(seed * 7207 + 17);
  gen::GeneratorConfig c;
  c.seed = rng.next();
  c.tasks = 4 + static_cast<std::uint32_t>(rng.below(4));
  c.layers = 2 + static_cast<std::uint32_t>(rng.below(3));
  c.options_per_task = 2 + static_cast<std::uint32_t>(rng.below(2));
  c.extra_edge_density = rng.uniform() * 0.4;
  c.payload_max = 1 + static_cast<std::int64_t>(rng.below(4));
  switch (rng.below(3)) {
    case 0: c.architecture = gen::Architecture::SharedBus; break;
    case 1: c.architecture = gen::Architecture::Mesh2x2; break;
    default:
      c.architecture = gen::Architecture::Mesh2x2;  // keep 3x3 out of fuzz (slow)
      break;
  }
  synth::Specification spec = gen::generate(c);

  // Random capacity on one processor, random-ish deadline sometimes.
  if (rng.chance(0.5)) {
    const auto r = static_cast<synth::ResourceId>(rng.below(spec.resources().size()));
    spec.set_capacity(r, 1 + static_cast<std::uint32_t>(rng.below(3)));
  }
  if (rng.chance(0.4)) {
    // A loose-ish deadline derived from total work (often binding, sometimes
    // infeasible — both are interesting).
    std::int64_t total = 0;
    for (const auto& o : spec.mappings()) total += o.wcet;
    spec.latency_bound = 1 + static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(total)));
  }

  dse::ExploreOptions eopts;
  eopts.common.certify = true;  // every terminating Unsat goes through the checker
  const dse::ExploreResult e = dse::explore(spec, eopts);
  ASSERT_TRUE(e.stats.complete) << gen::summarize(spec);
  EXPECT_TRUE(e.certified) << "seed " << seed << ": " << e.certificate_error;
  for (std::size_t i = 0; i < e.front.size(); ++i) {
    EXPECT_EQ(synth::validate_implementation(spec, e.witnesses[i]), "")
        << "seed " << seed;
    EXPECT_EQ(e.witnesses[i].objectives(), e.front[i]);
  }
  const dse::BaselineResult lex = dse::lexicographic_epsilon(spec, 300.0);
  ASSERT_TRUE(lex.complete);
  EXPECT_EQ(e.front, lex.front) << "seed " << seed << " "
                                << gen::summarize(spec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDse, ::testing::Range<std::uint64_t>(0, 25));

class FuzzDseSmall : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDseSmall, EnumerationAgreesOnTinyInstances) {
  const std::uint64_t seed = test::fuzz_seed(GetParam());
  util::Rng rng(seed * 31337 + 5);
  gen::GeneratorConfig c;
  c.seed = rng.next();
  c.tasks = 3 + static_cast<std::uint32_t>(rng.below(2));
  c.layers = 2;
  c.options_per_task = 2;
  c.architecture = rng.chance(0.5) ? gen::Architecture::SharedBus
                                   : gen::Architecture::Mesh2x2;
  c.bus_processors = 2;
  const synth::Specification spec = gen::generate(c);
  dse::ExploreOptions eopts;
  eopts.common.certify = true;
  const dse::ExploreResult e = dse::explore(spec, eopts);
  const dse::BaselineResult b = dse::enumerate_and_filter(spec, 300.0);
  ASSERT_TRUE(e.stats.complete && b.complete);
  EXPECT_TRUE(e.certified) << "seed " << seed << ": " << e.certificate_error;
  EXPECT_EQ(e.front, b.front) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDseSmall,
                         ::testing::Range<std::uint64_t>(0, 15));

// Seeded fuzz mode for the parallel portfolio: on randomly generated specs
// the parallel front at a random thread count must be point-for-point the
// sequential front.  On mismatch the failing seed is printed — rerun with
// --gtest_filter='Seeds/FuzzParallelDse.*/<seed>' to reproduce.
class FuzzParallelDse : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzParallelDse, ParallelFrontEqualsSequentialFront) {
  const std::uint64_t seed = test::fuzz_seed(GetParam());
  util::Rng rng(seed * 104729 + 11);
  gen::GeneratorConfig c;
  c.seed = rng.next();
  c.tasks = 3 + static_cast<std::uint32_t>(rng.below(3));
  c.layers = 2 + static_cast<std::uint32_t>(rng.below(2));
  c.options_per_task = 2;
  c.extra_edge_density = rng.uniform() * 0.3;
  c.architecture = rng.chance(0.5) ? gen::Architecture::SharedBus
                                   : gen::Architecture::Mesh2x2;
  c.bus_processors = 2 + static_cast<std::uint32_t>(rng.below(2));
  synth::Specification spec = gen::generate(c);
  if (rng.chance(0.4)) {
    const auto r = static_cast<synth::ResourceId>(rng.below(spec.resources().size()));
    spec.set_capacity(r, 1 + static_cast<std::uint32_t>(rng.below(3)));
  }

  const dse::ExploreResult seq = dse::explore(spec);
  ASSERT_TRUE(seq.stats.complete) << "seed " << seed;

  dse::ParallelExploreOptions popts;
  popts.threads = 2 + static_cast<std::size_t>(rng.below(3));  // 2..4
  popts.seed = seed + 1;
  popts.common.certify = true;  // winner's Unsat proof replayed by the checker
  const dse::ParallelExploreResult par = dse::explore_parallel(spec, popts);
  ASSERT_TRUE(par.base.stats.complete) << "seed " << seed;
  EXPECT_TRUE(par.base.certified) << "seed " << seed << ": "
                             << par.base.certificate_error;
  EXPECT_EQ(par.base.front, seq.front)
      << "seed " << seed << " threads " << popts.threads << " "
      << gen::summarize(spec);
  for (std::size_t i = 0; i < par.base.front.size(); ++i) {
    EXPECT_EQ(synth::validate_implementation(spec, par.base.witnesses[i]), "")
        << "seed " << seed;
    EXPECT_EQ(par.base.witnesses[i].objectives(), par.base.front[i])
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParallelDse,
                         ::testing::Range<std::uint64_t>(0, 12));

// Hybrid-pipeline fuzz: random specs under a randomly drawn warm-start
// configuration (method, budget, heuristic seed, occasionally an
// adversarial fake candidate, random thread count).  The warm front must
// equal the cold front point-for-point, certification must survive the
// injected seeds, and the anytime hypervolume profile — seeds included —
// must be monotone non-decreasing.
class FuzzHybridDse : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzHybridDse, WarmFrontEqualsColdFrontAndAnytimeHvIsMonotone) {
  const std::uint64_t seed = test::fuzz_seed(GetParam());
  util::Rng rng(seed * 52361 + 29);
  gen::GeneratorConfig c;
  c.seed = rng.next();
  c.tasks = 3 + static_cast<std::uint32_t>(rng.below(3));
  c.layers = 2 + static_cast<std::uint32_t>(rng.below(2));
  c.options_per_task = 2;
  c.extra_edge_density = rng.uniform() * 0.3;
  c.architecture = rng.chance(0.5) ? gen::Architecture::SharedBus
                                   : gen::Architecture::Mesh2x2;
  c.bus_processors = 2 + static_cast<std::uint32_t>(rng.below(2));
  const synth::Specification spec = gen::generate(c);

  const dse::ExploreResult cold = dse::explore(spec);
  ASSERT_TRUE(cold.stats.complete) << "seed " << seed;

  dse::WarmStartOptions warm;
  switch (rng.below(3)) {
    case 0: warm.method = dse::WarmStartMethod::Off; break;
    case 1: warm.method = dse::WarmStartMethod::Nsga2; break;
    default: warm.method = dse::WarmStartMethod::Sampler; break;
  }
  warm.budget = 50 + rng.below(200);
  warm.seed = rng.next();
  if (rng.chance(0.3)) {
    // An adversarial candidate claiming a utopian point with no real
    // implementation behind it — the validation gate must drop it.
    dse::WarmSeedCandidate fake;
    fake.point = {1, 1, 1};
    warm.external.push_back(std::move(fake));
  }

  dse::ExploreResult hybrid;
  const std::size_t threads = 1 + static_cast<std::size_t>(rng.below(3));
  if (threads == 1) {
    dse::ExploreOptions opts;
    opts.common.certify = true;
    opts.common.warm_start = warm;
    hybrid = dse::explore(spec, opts);
  } else {
    dse::ParallelExploreOptions opts;
    opts.threads = threads;
    opts.seed = seed + 1;
    opts.common.certify = true;
    opts.common.warm_start = warm;
    hybrid = std::move(dse::explore_parallel(spec, opts).base);
  }
  ASSERT_TRUE(hybrid.stats.complete) << "seed " << seed;
  EXPECT_TRUE(hybrid.certified) << "seed " << seed << ": "
                                << hybrid.certificate_error;
  EXPECT_EQ(hybrid.front, cold.front)
      << "seed " << seed << " threads " << threads << " method "
      << dse::warm_start_method_name(warm.method) << " "
      << gen::summarize(spec);
  if (!warm.external.empty()) {
    EXPECT_GE(hybrid.stats.warm_rejected, 1U) << "seed " << seed;
  }

  // Anytime-hypervolume monotonicity over the discovery sequence.
  if (!hybrid.discoveries.empty()) {
    pareto::Vec ref = hybrid.discoveries.front().second;
    for (const auto& [when, p] : hybrid.discoveries) {
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ref[i] = std::max(ref[i], p[i] + 1);
      }
    }
    std::vector<pareto::Vec> prefix;
    double prev = 0.0;
    double prev_when = 0.0;
    for (const auto& [when, p] : hybrid.discoveries) {
      EXPECT_GE(when, prev_when - 1e-9) << "seed " << seed;
      prev_when = when;
      prefix.push_back(p);
      const double hv = pareto::hypervolume(prefix, ref);
      EXPECT_GE(hv, prev - 1e-9)
          << "seed " << seed << ": anytime HV regressed at "
          << pareto::to_string(p);
      prev = hv;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzHybridDse,
                         ::testing::Range<std::uint64_t>(0, 15));

// Incremental re-exploration fuzz (src/dse/respec.*): a random spec is
// cold-explored with a snapshot attached, then edited by a random chain of
// 2–8 catalogue mutations (tests/spec_mutations.hpp) — spanning coefficient
// tweaks, mapping retargets and task add/remove, so the chain's delta class
// is itself random.  dse::reexplore from the stale checkpoint must return
// exactly the cold front of the edited spec, certified, at a random thread
// count.  Reuse stats must stay internally consistent.
class FuzzRespec : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRespec, EditChainsNeverDistortTheIncrementalFront) {
  const std::uint64_t seed = test::fuzz_seed(GetParam());
  util::Rng rng(seed * 86243 + 41);
  gen::GeneratorConfig c;
  c.seed = rng.next();
  c.tasks = 3 + static_cast<std::uint32_t>(rng.below(3));
  c.layers = 2 + static_cast<std::uint32_t>(rng.below(2));
  c.options_per_task = 2;
  c.extra_edge_density = rng.uniform() * 0.3;
  c.architecture = rng.chance(0.5) ? gen::Architecture::SharedBus
                                   : gen::Architecture::Mesh2x2;
  c.bus_processors = 2 + static_cast<std::uint32_t>(rng.below(2));
  const synth::Specification base = gen::generate(c);

  // The previous session: a real cold run with a snapshot file attached.
  const std::string path = ::testing::TempDir() + "aspmt_fuzz_respec_" +
                           std::to_string(seed) + ".ckpt";
  dse::ExploreOptions prev_opts;
  prev_opts.common.checkpoint_path = path;
  const dse::ExploreResult prev_run = dse::explore(base, prev_opts);
  ASSERT_TRUE(prev_run.stats.complete) << "seed " << seed;
  dse::Checkpoint prev;
  ASSERT_EQ(dse::load_checkpoint(path, prev), "") << "seed " << seed;
  std::remove(path.c_str());

  // A chain of 2..8 random single-edit mutations.
  std::size_t n_cases = 0;
  const test::MutationCase* cases = test::mutation_catalogue(n_cases);
  synth::Specification edited = base;
  const std::size_t chain = 2 + rng.below(7);
  std::string trail;
  for (std::size_t i = 0; i < chain; ++i) {
    const test::MutationCase& m = cases[rng.below(n_cases)];
    // Preserve preconditions: removing the last task needs a spare task.
    if (m.apply == &test::mutate_task_remove && edited.tasks().size() < 2) {
      continue;
    }
    synth::Specification next = m.apply(edited);
    if (!next.validate().empty()) continue;  // edit landed on a degenerate spec
    edited = std::move(next);
    trail += std::string(trail.empty() ? "" : "+") + m.name;
  }
  ASSERT_EQ(edited.validate(), "") << "seed " << seed << " chain " << trail;

  const dse::ExploreResult cold = dse::explore(edited);
  ASSERT_TRUE(cold.stats.complete) << "seed " << seed << " chain " << trail;

  dse::ReexploreOptions ro;
  ro.base.threads = 1 + static_cast<std::size_t>(rng.below(4));  // 1..4
  ro.base.seed = seed + 3;
  ro.base.common.certify = true;
  const dse::ReexploreResult inc = dse::reexplore(prev, edited, ro);
  ASSERT_TRUE(inc.base.stats.complete)
      << "seed " << seed << " chain " << trail;
  EXPECT_EQ(inc.base.front, cold.front)
      << "seed " << seed << " chain " << trail << " threads "
      << ro.base.threads << " delta "
      << dse::delta_class_name(inc.reuse.delta.cls) << " "
      << gen::summarize(edited);
  EXPECT_TRUE(inc.base.certified)
      << "seed " << seed << " chain " << trail << ": "
      << inc.base.certificate_error;

  // Reuse accounting invariants.
  EXPECT_GE(inc.reuse.reuse_rate(), 0.0) << "seed " << seed;
  EXPECT_LE(inc.reuse.reuse_rate(), 1.0) << "seed " << seed;
  EXPECT_LE(inc.reuse.archive_reused, inc.reuse.archive_candidates);
  EXPECT_LE(inc.reuse.clauses_replayed, inc.reuse.clause_candidates);
  if (inc.reuse.delta.cls == dse::DeltaClass::Unsafe) {
    EXPECT_TRUE(inc.reuse.cold_start) << "seed " << seed;
    EXPECT_EQ(inc.reuse.archive_reused, 0U) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRespec,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace aspmt
