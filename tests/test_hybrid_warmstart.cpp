// Differential exactness layer for the hybrid heuristic–exact pipeline
// (dse/warmstart.hpp): on every checked-in example specification and every
// fixture, a warm-started run must reproduce the cold run's front
// point-for-point at 1, 2 and 4 threads, its proof stream must satisfy both
// the trust-mode checker (what tools/aspmt_check replays) and full
// certification, and adversarially injected fake seeds — infeasible,
// mislabelled, or dominated — must bounce off the validation gate without
// poisoning the archive.
#include "dse/warmstart.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cert/checker.hpp"
#include "dse/explorer.hpp"
#include "dse/parallel_explorer.hpp"
#include "ea/nsga2.hpp"
#include "synth/specio.hpp"
#include "synth/validator.hpp"
#include "synth_fixtures.hpp"

#ifndef ASPMT_TEST_DATA_DIR
#error "tests/CMakeLists.txt must define ASPMT_TEST_DATA_DIR"
#endif

namespace aspmt::dse {
namespace {

struct SpecCase {
  const char* name;
  synth::Specification (*fixture)();  // null: load examples/specs/<name>.txt
};

const SpecCase kSpecs[] = {
    {"two_proc_bus", &test::two_proc_bus},
    {"chain3_bus", &test::chain3_bus},
    {"diamond_two_proc", &test::diamond_two_proc},
    {"bus_small", nullptr},
    {"mesh_small", nullptr},
    {"bus_wide", nullptr},
    {"mesh_chain", nullptr},
};

synth::Specification load_case(const SpecCase& c) {
  if (c.fixture != nullptr) return c.fixture();
  return synth::load_specification(std::string(ASPMT_TEST_DATA_DIR) +
                                   "/examples/specs/" + c.name + ".txt");
}

WarmStartOptions nsga2_warm(std::uint64_t seed = 3, std::uint64_t budget = 200) {
  WarmStartOptions w;
  w.method = WarmStartMethod::Nsga2;
  w.budget = budget;
  w.seed = seed;
  return w;
}

/// Warm run at the given thread count (1 = sequential explorer) in
/// certified mode; parallel results are flattened to the shared base.
ExploreResult run_warm(const synth::Specification& spec, std::size_t threads,
                       const WarmStartOptions& warm) {
  if (threads <= 1) {
    ExploreOptions opts;
    opts.common.certify = true;
    opts.common.warm_start = warm;
    return explore(spec, opts);
  }
  ParallelExploreOptions opts;
  opts.threads = threads;
  opts.common.certify = true;
  opts.common.warm_start = warm;
  ParallelExploreResult r = explore_parallel(spec, opts);
  return std::move(r.base);
}

// --- the differential core: warm == cold, everywhere -----------------------

TEST(HybridDifferential, WarmFrontEqualsColdFrontEverySpecEveryThreadCount) {
  for (const SpecCase& c : kSpecs) {
    const synth::Specification spec = load_case(c);
    const ExploreResult cold = explore(spec);
    ASSERT_TRUE(cold.stats.complete) << c.name;
    for (const std::size_t threads : {1U, 2U, 4U}) {
      const ExploreResult warm = run_warm(spec, threads, nsga2_warm());
      ASSERT_TRUE(warm.stats.complete) << c.name << " threads " << threads;
      EXPECT_EQ(warm.front, cold.front) << c.name << " threads " << threads;
      EXPECT_TRUE(warm.certified)
          << c.name << " threads " << threads << ": "
          << warm.certificate_error;
      ASSERT_EQ(warm.witnesses.size(), warm.front.size()) << c.name;
      for (std::size_t i = 0; i < warm.front.size(); ++i) {
        EXPECT_EQ(synth::validate_implementation(spec, warm.witnesses[i]), "")
            << c.name << " threads " << threads;
        EXPECT_EQ(warm.witnesses[i].objectives(), warm.front[i]) << c.name;
      }
    }
  }
}

TEST(HybridDifferential, SamplerWarmStartIsExactToo) {
  WarmStartOptions w;
  w.method = WarmStartMethod::Sampler;
  w.budget = 100;
  w.seed = 9;
  for (const SpecCase& c : {kSpecs[1], kSpecs[4]}) {  // chain3_bus, mesh_small
    const synth::Specification spec = load_case(c);
    const ExploreResult cold = explore(spec);
    ASSERT_TRUE(cold.stats.complete);
    for (const std::size_t threads : {1U, 2U}) {
      const ExploreResult warm = run_warm(spec, threads, w);
      ASSERT_TRUE(warm.stats.complete) << c.name;
      EXPECT_EQ(warm.front, cold.front) << c.name << " threads " << threads;
      EXPECT_TRUE(warm.certified) << c.name << ": " << warm.certificate_error;
    }
  }
}

// The in-process equivalent of piping --proof-out into `aspmt_check
// --require-unsat`: the stream must replay in trust mode (F steps accepted
// as feasibility evidence) with a verified global Unsat conclusion, both
// sequentially and from the 4-thread portfolio winner.
TEST(HybridDifferential, WarmProofsPassTheTrustModeChecker) {
  for (const std::size_t threads : {1U, 4U}) {
    const ExploreResult warm =
        run_warm(test::chain3_bus(), threads, nsga2_warm());
    ASSERT_TRUE(warm.stats.complete);
    ASSERT_FALSE(warm.proof.empty());
    cert::CheckOptions opts;
    opts.require_global_unsat = true;
    const cert::CheckResult check = cert::check_proof(warm.proof, opts);
    EXPECT_TRUE(check.ok) << "threads " << threads << ": " << check.error;
    EXPECT_TRUE(check.concluded_global_unsat) << "threads " << threads;
    EXPECT_GE(check.feasible_points, warm.stats.warm_seeds)
        << "every injected seed must have an F step in the winning stream";
  }
}

// --- seed generation -------------------------------------------------------

TEST(WarmSeeds, GeneratedSeedsAreAValidatedAntichainUnderTheExactFront) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult exact = explore(spec);
  ASSERT_TRUE(exact.stats.complete);
  const WarmStartResult ws = generate_warm_seeds(spec, nsga2_warm());
  EXPECT_GT(ws.candidates, 0U);
  EXPECT_GT(ws.heuristic_evaluations, 0U);
  ASSERT_FALSE(ws.seeds.empty());
  for (const WarmSeedCandidate& s : ws.seeds) {
    EXPECT_EQ(synth::validate_implementation(spec, s.impl), "");
    EXPECT_EQ(s.impl.objectives(), s.point);
    bool covered = false;
    for (const pareto::Vec& q : exact.front) {
      covered = covered || pareto::weakly_dominates(q, s.point);
    }
    EXPECT_TRUE(covered) << pareto::to_string(s.point)
                         << " beats the exact front — validation is broken";
  }
  for (const WarmSeedCandidate& a : ws.seeds) {
    for (const WarmSeedCandidate& b : ws.seeds) {
      if (&a == &b) continue;
      EXPECT_FALSE(pareto::weakly_dominates(a.point, b.point))
          << "seeds must form an antichain";
    }
  }
}

TEST(WarmSeeds, GenerationIsDeterministicForFixedSeed) {
  const synth::Specification spec = test::diamond_two_proc();
  const WarmStartResult a = generate_warm_seeds(spec, nsga2_warm(11));
  const WarmStartResult b = generate_warm_seeds(spec, nsga2_warm(11));
  ASSERT_EQ(a.seeds.size(), b.seeds.size());
  for (std::size_t i = 0; i < a.seeds.size(); ++i) {
    EXPECT_EQ(a.seeds[i].point, b.seeds[i].point);
  }
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.heuristic_evaluations, b.heuristic_evaluations);
}

// --- the adversarial injector: fake seeds must not get through -------------

/// An obviously fabricated candidate: a utopian point with an empty
/// implementation behind it.
WarmSeedCandidate utopian_fake() {
  WarmSeedCandidate c;
  c.point = {1, 1, 1};
  return c;
}

/// A mislabelled candidate: a genuine witness claiming a better vector than
/// it achieves.
WarmSeedCandidate mislabelled(const ExploreResult& cold) {
  WarmSeedCandidate c;
  c.impl = cold.witnesses.front();
  c.point = cold.front.front();
  c.point[0] -= 1;  // lie: one unit faster than reality
  return c;
}

/// A tampered candidate whose *fields* are self-consistent (objectives()
/// matches the claimed point) but whose schedule no longer satisfies the
/// specification — only full re-validation can catch this one.
WarmSeedCandidate tampered(const ExploreResult& cold) {
  WarmSeedCandidate c;
  c.impl = cold.witnesses.front();
  c.impl.latency -= 1;
  c.point = c.impl.objectives();
  return c;
}

TEST(WarmSeeds, FakeCandidatesAreRejectedByTheValidationGate) {
  const synth::Specification spec = test::chain3_bus();
  ExploreOptions copts;
  const ExploreResult cold = explore(spec, copts);
  ASSERT_TRUE(cold.stats.complete);
  ASSERT_FALSE(cold.witnesses.empty());

  WarmStartOptions w;  // method Off: only the external injector runs
  w.external = {utopian_fake(), mislabelled(cold), tampered(cold)};
  const WarmStartResult ws = generate_warm_seeds(spec, w);
  EXPECT_EQ(ws.candidates, 3U);
  EXPECT_EQ(ws.rejected_invalid, 3U);
  EXPECT_TRUE(ws.seeds.empty());
}

TEST(WarmSeeds, DominatedValidCandidateIsDroppedNotInjected) {
  const synth::Specification spec = test::chain3_bus();
  // Exhaustively decode the 2^3 option genotypes and pick a strictly
  // dominated/dominating pair of *valid* implementations.
  std::vector<WarmSeedCandidate> all;
  for (std::size_t bits = 0; bits < 8; ++bits) {
    ea::Genotype g;
    g.option = {bits & 1U, (bits >> 1U) & 1U, (bits >> 2U) & 1U};
    g.priority = {0.5, 0.5, 0.5};
    WarmSeedCandidate c;
    if (!ea::decode_genotype(spec, g, c.impl)) continue;
    c.point = c.impl.objectives();
    all.push_back(std::move(c));
  }
  const WarmSeedCandidate* better = nullptr;
  const WarmSeedCandidate* worse = nullptr;
  for (const WarmSeedCandidate& a : all) {
    for (const WarmSeedCandidate& b : all) {
      if (a.point != b.point && pareto::weakly_dominates(a.point, b.point)) {
        better = &a;
        worse = &b;
      }
    }
  }
  ASSERT_NE(better, nullptr) << "fixture lost its dominated pair";

  WarmStartOptions w;
  w.external = {*worse, *better};
  const WarmStartResult ws = generate_warm_seeds(spec, w);
  EXPECT_EQ(ws.rejected_invalid, 0U);
  EXPECT_EQ(ws.rejected_dominated, 1U);
  ASSERT_EQ(ws.seeds.size(), 1U);
  EXPECT_EQ(ws.seeds.front().point, better->point);
}

TEST(WarmSeeds, DuplicateCandidatesCollapseToOneSeed) {
  const synth::Specification spec = test::two_proc_bus();
  const ExploreResult cold = explore(spec);
  ASSERT_FALSE(cold.witnesses.empty());
  WarmSeedCandidate real;
  real.impl = cold.witnesses.front();
  real.point = cold.front.front();
  WarmStartOptions w;
  w.external = {real, real};
  const WarmStartResult ws = generate_warm_seeds(spec, w);
  EXPECT_EQ(ws.seeds.size(), 1U);
  EXPECT_EQ(ws.rejected_dominated, 1U);
}

// End to end: a run fed nothing but adversarial seeds (plus the genuine
// NSGA-II pass) still lands on the exact front, still certifies, and the
// stats report the rejects instead of silently swallowing them.
TEST(WarmSeeds, AdversarialSeedsCannotPoisonTheArchive) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult cold = explore(spec);
  ASSERT_TRUE(cold.stats.complete);
  WarmStartOptions w = nsga2_warm();
  w.external = {utopian_fake(), mislabelled(cold), tampered(cold)};
  for (const std::size_t threads : {1U, 2U, 4U}) {
    const ExploreResult r = run_warm(spec, threads, w);
    ASSERT_TRUE(r.stats.complete) << "threads " << threads;
    EXPECT_EQ(r.front, cold.front) << "threads " << threads;
    EXPECT_TRUE(r.certified) << "threads " << threads << ": "
                             << r.certificate_error;
    EXPECT_GE(r.stats.warm_rejected, 3U) << "threads " << threads;
  }
}

TEST(WarmSeeds, StatsCountInjectedSeeds) {
  const ExploreResult r = run_warm(test::chain3_bus(), 1, nsga2_warm());
  ASSERT_TRUE(r.stats.complete);
  EXPECT_GT(r.stats.warm_seeds, 0U);
  // Every injected seed appears in the anytime discovery log.
  EXPECT_GE(r.discoveries.size(), r.stats.warm_seeds);
}

// --- flag parsing ----------------------------------------------------------

TEST(WarmStartMethodNames, ParseRoundTrips) {
  for (const WarmStartMethod m : {WarmStartMethod::Off, WarmStartMethod::Nsga2,
                                  WarmStartMethod::Sampler}) {
    const auto parsed = parse_warm_start_method(warm_start_method_name(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_warm_start_method("anneal").has_value());
  EXPECT_FALSE(parse_warm_start_method("").has_value());
}

// --- the gap-guided slice scheduler ----------------------------------------

TEST(SliceSchedulerTest, RefusesDegenerateFronts) {
  SliceScheduler s;
  EXPECT_FALSE(s.seed({}, 4));
  EXPECT_FALSE(s.seed({{1, 2}}, 4));          // one point: no range
  EXPECT_FALSE(s.seed({{1, 2}, {3, 4}}, 1));  // one part: nothing to split
  EXPECT_FALSE(s.seed({{5, 1}, {5, 9}}, 4));  // zero span on objective 0
  EXPECT_FALSE(s.seeded());
  EXPECT_EQ(s.pending(), 0U);
  EXPECT_FALSE(s.claim().has_value());
}

TEST(SliceSchedulerTest, ClaimsSlicesInDescendingGapOrder) {
  // Front {(0,10),(10,0)}, 4 parts => splits {2,5,7}; hand computation of
  // slice_hypervolume_gaps gives gaps {20, 30, 20}: the middle band is the
  // emptiest, and the 20/20 tie breaks towards the lower slice id.
  SliceScheduler s;
  ASSERT_TRUE(s.seed({{0, 10}, {10, 0}}, 4));
  EXPECT_TRUE(s.seeded());
  EXPECT_EQ(s.pending(), 3U);

  const auto first = s.claim();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 1U);
  EXPECT_EQ(first->bound, 5);
  EXPECT_DOUBLE_EQ(first->gap, 30.0);

  const auto second = s.claim();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, 0U);
  EXPECT_EQ(second->bound, 2);

  const auto third = s.claim();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->id, 2U);
  EXPECT_EQ(third->bound, 7);

  EXPECT_EQ(s.pending(), 0U);
  EXPECT_FALSE(s.claim().has_value());
}

TEST(SliceSchedulerTest, SeedingIsFirstSnapshotWins) {
  SliceScheduler s;
  ASSERT_TRUE(s.seed({{0, 10}, {10, 0}}, 4));
  EXPECT_EQ(s.pending(), 3U);
  // A later, different snapshot must not rebuild the table mid-run.
  EXPECT_TRUE(s.seed({{0, 100}, {100, 0}}, 8));
  EXPECT_EQ(s.pending(), 3U);
}

TEST(SliceSchedulerTest, AbandonedSliceIsRequeuedExactlyOnce) {
  SliceScheduler s;
  ASSERT_TRUE(s.seed({{0, 10}, {10, 0}}, 4));
  const auto first = s.claim();
  ASSERT_TRUE(first.has_value());
  while (s.claim().has_value()) {
  }
  s.abandon(first->id);
  const auto again = s.claim();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->id, first->id);
  // The one-shot latch: a second death of the same slice retires it.
  s.abandon(first->id);
  EXPECT_FALSE(s.claim().has_value());
  EXPECT_EQ(s.pending(), 0U);
}

}  // namespace
}  // namespace aspmt::dse
