// Shared helpers for the test suite: model enumeration over selected
// variables, CNF brute force, and a brute-force stable-model reference
// implementation used as the oracle for the ASP pipeline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <vector>

#include "asp/completion.hpp"
#include "asp/program.hpp"
#include "asp/solver.hpp"

namespace aspmt::test {

/// Seed for parameterized fuzz/stress suites.  ASPMT_TEST_SEED=<N> shifts
/// every seed by N, so nightly runs can sweep fresh regions of the input
/// space without a rebuild; failure messages print the *effective* seed —
/// reproduce a shifted failure with ASPMT_TEST_SEED=<printed - param>.
inline std::uint64_t fuzz_seed(std::uint64_t param) {
  static const std::uint64_t offset = [] {
    const char* env = std::getenv("ASPMT_TEST_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10) : 0ULL;
  }();
  return param + offset;
}

/// Enumerate all models of `solver`, projected onto `vars`, by adding
/// blocking clauses.  Destructive (the solver ends up unsatisfiable).
inline std::set<std::vector<bool>> enumerate_projected(
    asp::Solver& solver, const std::vector<asp::Var>& vars,
    std::size_t limit = 1 << 20) {
  std::set<std::vector<bool>> models;
  while (models.size() < limit) {
    if (solver.solve() != asp::Solver::Result::Sat) break;
    std::vector<bool> projection;
    std::vector<asp::Lit> blocking;
    projection.reserve(vars.size());
    for (const asp::Var v : vars) {
      const bool val = solver.model_value(v);
      projection.push_back(val);
      blocking.push_back(asp::Lit::make(v, !val));
    }
    models.insert(std::move(projection));
    if (!solver.add_clause(std::move(blocking))) break;
  }
  return models;
}

/// Brute-force SAT check of a CNF over `num_vars` variables (<= 24).
inline bool brute_force_sat(const std::vector<std::vector<asp::Lit>>& cnf,
                            std::uint32_t num_vars) {
  for (std::uint64_t mask = 0; mask < (1ULL << num_vars); ++mask) {
    bool all = true;
    for (const auto& clause : cnf) {
      bool sat = false;
      for (const asp::Lit l : clause) {
        const bool v = ((mask >> l.var()) & 1ULL) != 0;
        if (v == l.positive()) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

/// Count models of a CNF by brute force.
inline std::uint64_t brute_force_count(
    const std::vector<std::vector<asp::Lit>>& cnf, std::uint32_t num_vars) {
  std::uint64_t count = 0;
  for (std::uint64_t mask = 0; mask < (1ULL << num_vars); ++mask) {
    bool all = true;
    for (const auto& clause : cnf) {
      bool sat = false;
      for (const asp::Lit l : clause) {
        const bool v = ((mask >> l.var()) & 1ULL) != 0;
        if (v == l.positive()) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) ++count;
  }
  return count;
}

/// Brute-force stable models of a ground program (num_atoms <= 20).
///
/// Semantics of choice rules `{h} :- B` follows the standard translation
/// h :- B, not h'  /  h' :- not h  with a fresh h' per choice rule; the
/// check below inlines that translation: a candidate S is stable iff S
/// equals the least model of the reduct, where a choice rule contributes
/// h :- B⁺ to the reduct iff its negative body holds and h ∈ S.
inline std::set<std::vector<bool>> brute_force_stable_models(
    const asp::Program& program) {
  const std::uint32_t n = program.num_atoms();
  std::set<std::vector<bool>> result;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    const auto in_s = [&](asp::Atom a) { return ((mask >> a) & 1ULL) != 0; };

    // Integrity constraints must not fire.
    bool violated = false;
    for (const auto& body : program.constraints()) {
      bool fires = true;
      for (const asp::BodyLit& bl : body) {
        if (in_s(bl.atom) != bl.positive) {
          fires = false;
          break;
        }
      }
      if (fires) {
        violated = true;
        break;
      }
    }
    if (violated) continue;

    // Least model of the reduct.
    std::vector<bool> derived(n, false);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const asp::Rule& r : program.rules()) {
        if (derived[r.head]) continue;
        if (r.choice && !in_s(r.head)) continue;  // head not chosen
        bool applicable = true;
        for (const asp::BodyLit& bl : r.body) {
          if (bl.positive) {
            if (!derived[bl.atom]) {
              applicable = false;
              break;
            }
          } else if (in_s(bl.atom)) {  // reduct removes rules with sat. "not"
            applicable = false;
            break;
          }
        }
        if (applicable) {
          derived[r.head] = true;
          changed = true;
        }
      }
    }

    std::vector<bool> candidate(n);
    bool equal = true;
    for (asp::Atom a = 0; a < n; ++a) {
      candidate[a] = in_s(a);
      if (derived[a] != candidate[a]) equal = false;
    }
    if (equal) result.insert(std::move(candidate));
  }
  return result;
}

/// Solve a program through the production pipeline (completion + CDNL +
/// unfounded-set checker) and enumerate all answer sets projected onto the
/// program's atoms.
std::set<std::vector<bool>> solver_stable_models(const asp::Program& program);

}  // namespace aspmt::test
