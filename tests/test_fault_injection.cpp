// Fault-injection suite: every injected fault must yield a clean exit (no
// exception escapes the explorer), a front that is a valid subset of the
// fault-free front, the correct structured StopReason, and never a
// certified=true result.  The uninjected control runs must still reach
// StopReason::Completed with identical fronts at 1, 2 and 4 threads.
#include "dse/fault.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "dse/checkpoint.hpp"
#include "dse/explorer.hpp"
#include "dse/parallel_explorer.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::dse {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "aspmt_fault_" + name;
}

/// A partial front is valid iff it is mutually non-dominated and every
/// point is covered by (weakly dominated by) some exact-front point — the
/// archive never invents points the fault-free run could not reach.
void expect_valid_partial_front(const std::vector<pareto::Vec>& partial,
                                const std::vector<pareto::Vec>& exact,
                                const char* label) {
  for (std::size_t i = 0; i < partial.size(); ++i) {
    for (std::size_t j = 0; j < partial.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(pareto::weakly_dominates(partial[j], partial[i]))
            << label << ": partial front not mutually non-dominated";
      }
    }
    bool covered = false;
    for (const pareto::Vec& q : exact) {
      covered = covered || pareto::weakly_dominates(q, partial[i]);
    }
    EXPECT_TRUE(covered) << label << ": point " << pareto::to_string(partial[i])
                         << " unreachable by the fault-free run";
  }
}

TEST(FaultInjection, PlanParsesTheFullSyntax) {
  const FaultPlan p = FaultPlan::parse(
      "worker-throw=1:2,alloc-fail=3,deadline-polls=5,corrupt-checkpoint");
  EXPECT_EQ(p.throw_worker, 1);
  EXPECT_EQ(p.throw_after_models, 2U);
  EXPECT_EQ(p.alloc_fail_after, 3U);
  EXPECT_EQ(p.deadline_after_polls, 5U);
  EXPECT_TRUE(p.corrupt_checkpoint);
  EXPECT_TRUE(p.any());

  const FaultPlan defaults = FaultPlan::parse("worker-throw=0,alloc-fail");
  EXPECT_EQ(defaults.throw_worker, 0);
  EXPECT_EQ(defaults.throw_after_models, 1U);
  EXPECT_EQ(defaults.alloc_fail_after, 1U);

  EXPECT_THROW((void)FaultPlan::parse("explode=now"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("worker-throw=x"),
               std::invalid_argument);
  EXPECT_FALSE(FaultPlan{}.any());
}

TEST(FaultInjection, EnvironmentArmsThePlan) {
  ::setenv("ASPMT_FAULT_INJECT", "deadline-polls=7", 1);
  const FaultPlan p = FaultPlan::from_env();
  ::unsetenv("ASPMT_FAULT_INJECT");
  EXPECT_EQ(p.deadline_after_polls, 7U);
  EXPECT_TRUE(p.any());
  EXPECT_FALSE(FaultPlan::from_env().any());
}

TEST(FaultInjection, SequentialWorkerThrowIsContained) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult exact = explore(spec);
  ASSERT_TRUE(exact.stats.complete);

  FaultPlan fault;
  fault.throw_worker = 0;
  fault.throw_after_models = 3;
  ExploreOptions opts;
  opts.common.fault = &fault;
  const ExploreResult r = explore(spec, opts);  // must not throw
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.reason, StopReason::WorkerFailure);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors.front().find("injected fault"), std::string::npos)
      << r.errors.front();
  expect_valid_partial_front(r.front, exact.front, "seq-throw");
}

TEST(FaultInjection, SequentialAllocFailureIsContained) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult exact = explore(spec);
  FaultPlan fault;
  fault.alloc_fail_after = 2;  // the second witness capture throws bad_alloc
  ExploreOptions opts;
  opts.common.fault = &fault;
  const ExploreResult r = explore(spec, opts);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.reason, StopReason::WorkerFailure);
  EXPECT_FALSE(r.errors.empty());
  expect_valid_partial_front(r.front, exact.front, "seq-alloc");
  // The point whose capture failed stays on the front with an empty
  // placeholder witness — never an end() dereference.
  EXPECT_EQ(r.witnesses.size(), r.front.size());
}

TEST(FaultInjection, InjectedDeadlineMidPropagation) {
  FaultPlan fault;
  fault.deadline_after_polls = 1;  // expire on the very first monitor poll
  ExploreOptions opts;
  opts.common.fault = &fault;
  const ExploreResult r = explore(test::diamond_two_proc(), opts);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.reason, StopReason::Deadline);
  EXPECT_TRUE(r.front.empty());  // tripped before the first model
}

TEST(FaultInjection, MemoryCeilingYieldsCleanPartialExit) {
  // A 1 MiB ceiling is below any real process's peak RSS, so the first
  // monitor poll must trip it — equivalent to an allocation storm without
  // actually exhausting the host.
  ExploreOptions opts;
  opts.common.mem_limit_mb = 1;
  const ExploreResult r = explore(test::diamond_two_proc(), opts);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.reason, StopReason::Memory);
  EXPECT_TRUE(r.front.empty());  // tripped before the first model

  ParallelExploreOptions par;
  par.threads = 2;
  par.common.mem_limit_mb = 1;
  const ParallelExploreResult p = explore_parallel(test::diamond_two_proc(), par);
  EXPECT_FALSE(p.base.stats.complete);
  EXPECT_EQ(p.base.stats.reason, StopReason::Memory);
  EXPECT_TRUE(p.worker_errors.empty());
}

TEST(FaultInjection, ParallelWorkerCrashIsContained) {
  const synth::Specification spec = test::diamond_two_proc();
  const ExploreResult exact = explore(spec);
  ASSERT_TRUE(exact.stats.complete);

  for (const std::size_t threads : {1U, 2U, 4U}) {
    FaultPlan fault;
    fault.throw_worker = threads == 1 ? 0 : 1;
    ParallelExploreOptions opts;
    opts.threads = threads;
    opts.common.fault = &fault;
    opts.common.certify = true;
    const ParallelExploreResult r = explore_parallel(spec, opts);
    expect_valid_partial_front(r.base.front, exact.front, "par-crash");
    // The targeted worker only dies if it accepted a model before a peer
    // finished the search; when it did, the containment contract applies.
    if (!r.worker_errors.empty()) {
      EXPECT_FALSE(r.base.certified);  // a degraded run is never certified
      EXPECT_EQ(r.base.stats.reason, StopReason::WorkerFailure);
      EXPECT_EQ(r.worker_errors.front().worker,
                static_cast<std::size_t>(fault.throw_worker));
      EXPECT_TRUE(r.workers[r.worker_errors.front().worker].failed);
      EXPECT_NE(r.base.certificate_error.find("never certified"),
                std::string::npos)
          << r.base.certificate_error;
    } else {
      EXPECT_TRUE(r.base.stats.complete);
      EXPECT_EQ(r.base.front, exact.front);
    }
  }
}

TEST(FaultInjection, SingleThreadCrashBeforeFirstPublishIsClean) {
  // threads=1 + crash on the first accepted model: deterministic worker
  // death with an empty (valid) front and a clean, structured exit.
  FaultPlan fault;
  fault.throw_worker = 0;
  fault.throw_after_models = 1;
  ParallelExploreOptions opts;
  opts.threads = 1;
  opts.common.fault = &fault;
  const ParallelExploreResult r =
      explore_parallel(test::two_proc_bus(), opts);
  EXPECT_FALSE(r.base.stats.complete);
  EXPECT_EQ(r.base.stats.reason, StopReason::WorkerFailure);
  ASSERT_EQ(r.worker_errors.size(), 1U);
  EXPECT_EQ(r.worker_errors.front().worker, 0U);
  EXPECT_TRUE(r.workers[0].failed);
  EXPECT_TRUE(r.base.front.empty());
}

TEST(FaultInjection, CorruptedCheckpointDegradesToColdStart) {
  const synth::Specification spec = test::two_proc_bus();
  const std::string path = temp_path("corrupt_ckpt.txt");
  FaultPlan fault;
  fault.corrupt_checkpoint = true;
  ExploreOptions opts;
  opts.common.fault = &fault;
  opts.common.checkpoint_path = path;
  const ExploreResult r = explore(spec, opts);
  ASSERT_TRUE(r.stats.complete);  // corruption hits the file, not the run
  Checkpoint ckpt;
  EXPECT_NE(load_checkpoint(path, ckpt), "");  // loader must reject it
  std::remove(path.c_str());
}

TEST(FaultInjection, EnvironmentPlanReachesTheExplorer) {
  ::setenv("ASPMT_FAULT_INJECT", "worker-throw=0:1", 1);
  const ExploreResult r = explore(test::two_proc_bus());
  ::unsetenv("ASPMT_FAULT_INJECT");
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.reason, StopReason::WorkerFailure);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors.front().find("injected fault"), std::string::npos);
}

TEST(FaultInjection, UninjectedRunsReachCompletedIdentically) {
  using SpecFn = synth::Specification (*)();
  for (const SpecFn make : {SpecFn{&test::two_proc_bus},
                            SpecFn{&test::chain3_bus},
                            SpecFn{&test::diamond_two_proc}}) {
    const synth::Specification spec = make();
    const ExploreResult seq = explore(spec);
    ASSERT_TRUE(seq.stats.complete);
    EXPECT_EQ(seq.stats.reason, StopReason::Completed);
    EXPECT_TRUE(seq.errors.empty());
    for (const std::size_t threads : {1U, 2U, 4U}) {
      ParallelExploreOptions opts;
      opts.threads = threads;
      const ParallelExploreResult par = explore_parallel(spec, opts);
      ASSERT_TRUE(par.base.stats.complete);
      EXPECT_EQ(par.base.stats.reason, StopReason::Completed);
      EXPECT_TRUE(par.worker_errors.empty());
      EXPECT_EQ(par.base.front, seq.front);
    }
  }
}

TEST(FaultInjection, CertifiedRunStillCertifiesWithoutFaults) {
  // Guard against the fault hooks perturbing the healthy certified path.
  ExploreOptions opts;
  opts.common.certify = true;
  const ExploreResult r = explore(test::chain3_bus(), opts);
  ASSERT_TRUE(r.stats.complete);
  EXPECT_TRUE(r.certified) << r.certificate_error;
}

}  // namespace
}  // namespace aspmt::dse
