// End-to-end tests over generated instances: the full ASPmT pipeline
// (generator -> encoder -> CDNL + theories -> exact front) cross-checked
// against the independent exact baselines, the validator, and the EA.
#include <gtest/gtest.h>

#include "dse/baselines.hpp"
#include "dse/explorer.hpp"
#include "ea/nsga2.hpp"
#include "gen/generator.hpp"
#include "pareto/indicators.hpp"
#include "synth/validator.hpp"

namespace aspmt {
namespace {

struct InstanceParam {
  std::uint64_t seed;
  std::uint32_t tasks;
  gen::Architecture arch;
};

class GeneratedInstance : public ::testing::TestWithParam<InstanceParam> {
 protected:
  synth::Specification make_spec() const {
    gen::GeneratorConfig c;
    c.seed = GetParam().seed;
    c.tasks = GetParam().tasks;
    c.architecture = GetParam().arch;
    c.layers = 3;
    c.options_per_task = 2;
    return gen::generate(c);
  }
};

TEST_P(GeneratedInstance, ExactMethodsAgreeAndWitnessesValidate) {
  const synth::Specification spec = make_spec();
  ASSERT_EQ(spec.validate(), "");

  const dse::ExploreResult exact = dse::explore(spec);
  ASSERT_TRUE(exact.stats.complete) << gen::summarize(spec);
  ASSERT_FALSE(exact.front.empty());

  for (std::size_t i = 0; i < exact.front.size(); ++i) {
    EXPECT_EQ(synth::validate_implementation(spec, exact.witnesses[i]), "")
        << exact.witnesses[i].describe(spec);
    EXPECT_EQ(exact.witnesses[i].objectives(), exact.front[i]);
  }

  const dse::BaselineResult lex = dse::lexicographic_epsilon(spec, 300.0);
  ASSERT_TRUE(lex.complete);
  EXPECT_EQ(exact.front, lex.front) << gen::summarize(spec);
}

TEST_P(GeneratedInstance, AblationsPreserveTheFront) {
  const synth::Specification spec = make_spec();
  const dse::ExploreResult base = dse::explore(spec);
  dse::ExploreOptions no_pe;
  no_pe.common.partial_evaluation = false;
  const dse::ExploreResult ablated = dse::explore(spec, no_pe);
  dse::ExploreOptions lin;
  lin.common.archive_kind = "linear";
  const dse::ExploreResult linear = dse::explore(spec, lin);
  ASSERT_TRUE(base.stats.complete && ablated.stats.complete &&
              linear.stats.complete);
  EXPECT_EQ(base.front, ablated.front);
  EXPECT_EQ(base.front, linear.front);
}

TEST_P(GeneratedInstance, EaIsCoveredByExactFront) {
  const synth::Specification spec = make_spec();
  const dse::ExploreResult exact = dse::explore(spec);
  ASSERT_TRUE(exact.stats.complete);
  ea::Nsga2Options opts;
  opts.population = 20;
  opts.generations = 15;
  opts.seed = GetParam().seed;
  const ea::Nsga2Result ea_result = ea::nsga2(spec, opts);
  for (const auto& p : ea_result.front) {
    bool covered = false;
    for (const auto& q : exact.front) {
      if (pareto::weakly_dominates(q, p)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << pareto::to_string(p);
  }
  // Hypervolume of the exact front dominates the EA's.
  pareto::Vec ref(3, 0);
  for (const auto& p : exact.front) {
    for (int o = 0; o < 3; ++o) ref[o] = std::max(ref[o], p[o] + 1);
  }
  for (const auto& p : ea_result.front) {
    for (int o = 0; o < 3; ++o) ref[o] = std::max(ref[o], p[o] + 1);
  }
  EXPECT_GE(pareto::hypervolume(exact.front, ref) + 1e-9,
            pareto::hypervolume(ea_result.front, ref));
}

INSTANTIATE_TEST_SUITE_P(
    Instances, GeneratedInstance,
    ::testing::Values(InstanceParam{1, 4, gen::Architecture::SharedBus},
                      InstanceParam{2, 5, gen::Architecture::SharedBus},
                      InstanceParam{3, 4, gen::Architecture::Mesh2x2},
                      InstanceParam{4, 5, gen::Architecture::Mesh2x2},
                      InstanceParam{5, 6, gen::Architecture::SharedBus}));

TEST(Integration, LargerInstanceCompletesAndValidates) {
  gen::GeneratorConfig c;
  c.seed = 77;
  c.tasks = 7;
  c.architecture = gen::Architecture::Mesh2x2;
  c.options_per_task = 2;
  const synth::Specification spec = gen::generate(c);
  const dse::ExploreResult exact = dse::explore(spec, {});
  ASSERT_TRUE(exact.stats.complete) << gen::summarize(spec);
  for (const auto& w : exact.witnesses) {
    EXPECT_EQ(synth::validate_implementation(spec, w), "");
  }
  EXPECT_GE(exact.front.size(), 2U);
}

}  // namespace
}  // namespace aspmt
