// Shared miniature specifications for the synthesis / DSE tests.
#pragma once

#include "synth/spec.hpp"

namespace aspmt::test {

/// Two heterogeneous processors on one bus, producer -> consumer.
/// Small enough for exhaustive reasoning in tests.
inline synth::Specification two_proc_bus() {
  using namespace synth;
  Specification s;
  const ResourceId bus = s.add_resource("bus", ResourceKind::Bus, 1);
  const ResourceId p0 = s.add_resource("p0", ResourceKind::Processor, 10);
  const ResourceId p1 = s.add_resource("p1", ResourceKind::Processor, 5);
  s.add_link(p0, bus, 1, 1);
  s.add_link(bus, p0, 1, 1);
  s.add_link(p1, bus, 1, 1);
  s.add_link(bus, p1, 1, 1);
  const TaskId a = s.add_task("a");
  const TaskId b = s.add_task("b");
  s.add_message("m", a, b, 2);
  s.add_mapping(a, p0, 3, 4);  // fast, hungry
  s.add_mapping(a, p1, 6, 2);  // slow, frugal
  s.add_mapping(b, p0, 2, 3);
  s.add_mapping(b, p1, 4, 1);
  return s;
}

/// Three-task chain over three bus-connected processors; enough freedom for
/// a non-trivial front but still exhaustively enumerable.
inline synth::Specification chain3_bus() {
  using namespace synth;
  Specification s;
  const ResourceId bus = s.add_resource("bus", ResourceKind::Bus, 2);
  const ResourceId p0 = s.add_resource("p0", ResourceKind::Processor, 12);
  const ResourceId p1 = s.add_resource("p1", ResourceKind::Processor, 7);
  const ResourceId p2 = s.add_resource("p2", ResourceKind::Processor, 4);
  for (const ResourceId p : {p0, p1, p2}) {
    s.add_link(p, bus, 1, 1);
    s.add_link(bus, p, 1, 1);
  }
  const TaskId a = s.add_task("a");
  const TaskId b = s.add_task("b");
  const TaskId c = s.add_task("c");
  s.add_message("m0", a, b, 1);
  s.add_message("m1", b, c, 2);
  s.add_mapping(a, p0, 2, 6);
  s.add_mapping(a, p1, 4, 3);
  s.add_mapping(b, p1, 3, 4);
  s.add_mapping(b, p2, 6, 2);
  s.add_mapping(c, p0, 2, 5);
  s.add_mapping(c, p2, 5, 1);
  return s;
}

/// Fork-join diamond (a -> b, a -> c, b -> d, c -> d) on two processors —
/// exercises resource serialization.
inline synth::Specification diamond_two_proc() {
  using namespace synth;
  Specification s;
  const ResourceId bus = s.add_resource("bus", ResourceKind::Bus, 1);
  const ResourceId p0 = s.add_resource("p0", ResourceKind::Processor, 8);
  const ResourceId p1 = s.add_resource("p1", ResourceKind::Processor, 6);
  for (const ResourceId p : {p0, p1}) {
    s.add_link(p, bus, 1, 1);
    s.add_link(bus, p, 1, 1);
  }
  const TaskId a = s.add_task("a");
  const TaskId b = s.add_task("b");
  const TaskId c = s.add_task("c");
  const TaskId d = s.add_task("d");
  s.add_message("ab", a, b, 1);
  s.add_message("ac", a, c, 1);
  s.add_message("bd", b, d, 1);
  s.add_message("cd", c, d, 1);
  for (const TaskId t : {a, b, c, d}) {
    s.add_mapping(t, p0, 2, 3);
    s.add_mapping(t, p1, 3, 2);
  }
  return s;
}

/// Single task, single processor: the smallest valid specification.
inline synth::Specification singleton() {
  using namespace synth;
  Specification s;
  const ResourceId p0 = s.add_resource("p0", ResourceKind::Processor, 3);
  const TaskId a = s.add_task("a");
  s.add_mapping(a, p0, 4, 2);
  return s;
}

}  // namespace aspmt::test
