// Stress and configuration coverage for the CDCL core: forced clause-DB
// reduction, restart churn, phase options, and larger cross-checked
// instances.
#include <gtest/gtest.h>

#include "asp/solver.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace aspmt::asp {
namespace {

Lit L(Var v, bool s = true) { return Lit::make(v, s); }

void add_pigeonhole(Solver& s, int pigeons, int holes, std::vector<Var>& vars) {
  vars.clear();
  for (int i = 0; i < pigeons * holes; ++i) vars.push_back(s.new_var());
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(L(vars[p * holes + h]));
    ASSERT_TRUE(s.add_clause(std::move(c)));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(
            s.add_clause({~L(vars[p1 * holes + h]), ~L(vars[p2 * holes + h])}));
      }
    }
  }
}

TEST(SolverStress, PigeonholeUnsatWithTinyLearntDb) {
  SolverOptions opts;
  opts.learnt_start = 8;  // constant clause-DB reduction
  opts.learnt_growth = 1.05;
  Solver s(opts);
  std::vector<Var> vars;
  add_pigeonhole(s, 6, 5, vars);
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
  EXPECT_GT(s.stats().deleted_clauses, 0U);
}

TEST(SolverStress, PigeonholeUnsatWithAggressiveRestarts) {
  SolverOptions opts;
  opts.restart_base = 1;  // restart storm
  Solver s(opts);
  std::vector<Var> vars;
  add_pigeonhole(s, 6, 5, vars);
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
  EXPECT_GT(s.stats().restarts, 10U);
}

TEST(SolverStress, SatisfiablePigeonholeFindsAssignment) {
  Solver s;
  std::vector<Var> vars;
  add_pigeonhole(s, 5, 5, vars);
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  // Verify it is a perfect matching.
  for (int h = 0; h < 5; ++h) {
    int count = 0;
    for (int p = 0; p < 5; ++p) count += s.model_value(vars[p * 5 + h]) ? 1 : 0;
    EXPECT_LE(count, 1);
  }
}

TEST(SolverStress, DefaultPhaseTrueStillCorrect) {
  SolverOptions opts;
  opts.default_phase = true;
  Solver s(opts);
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({~L(a), ~L(b)}));
  const auto models = test::enumerate_projected(s, {a, b});
  EXPECT_EQ(models.size(), 3U);
}

TEST(SolverStress, PhaseSavingOffStillCorrect) {
  SolverOptions opts;
  opts.phase_saving = false;
  Solver s(opts);
  util::Rng rng(3);
  std::vector<Var> vars;
  std::vector<std::vector<Lit>> cnf;
  for (int i = 0; i < 7; ++i) vars.push_back(s.new_var());
  for (int c = 0; c < 20; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(L(static_cast<Var>(rng.below(7)), rng.chance(0.5)));
    }
    cnf.push_back(clause);
    (void)s.add_clause(clause);
  }
  const bool expected = test::brute_force_sat(cnf, 7);
  EXPECT_EQ(s.ok() && s.solve() == Solver::Result::Sat, expected);
}

// Randomized stress with tiny DB + restart storm must still agree with
// brute force (exercises reduction, locking and restart interplay).
class StressConfig : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressConfig, RandomCnfUnderHarshOptions) {
  const std::uint64_t seed = test::fuzz_seed(GetParam());
  util::Rng rng(seed * 977 + 11);
  SolverOptions opts;
  opts.learnt_start = 4;
  opts.restart_base = 2;
  opts.var_decay = 0.8;
  Solver s(opts);
  const std::uint32_t n = 9;
  std::vector<std::vector<Lit>> cnf;
  bool ok = true;
  for (std::uint32_t i = 0; i < n; ++i) s.new_var();
  const std::uint32_t clauses = 20 + static_cast<std::uint32_t>(rng.below(25));
  for (std::uint32_t c = 0; c < clauses; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(L(static_cast<Var>(rng.below(n)), rng.chance(0.5)));
    }
    cnf.push_back(clause);
    ok = s.add_clause(clause) && ok;
  }
  const bool expected = test::brute_force_sat(cnf, n);
  if (!ok) {
    EXPECT_FALSE(expected) << "seed " << seed;
  } else {
    EXPECT_EQ(s.solve() == Solver::Result::Sat, expected) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressConfig,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(SolverStress, PreferredPhaseSteersUnconstrainedVariables) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.set_preferred_phase(a, true);
  s.set_preferred_phase(b, false);
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_FALSE(s.model_value(b));
}

TEST(SolverStress, BoostedVariableDecidedFirst) {
  // With a boosted variable and preferred phase, the first decision is
  // predictable; constraints then force the rest.
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  ASSERT_TRUE(s.add_clause({Lit::make(x, false), Lit::make(y, true)}));
  s.boost_variable(x, 50.0);
  s.set_preferred_phase(x, true);
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(x));
  EXPECT_TRUE(s.model_value(y));  // forced by the clause
}

TEST(SolverStress, ManyIncrementalSolveCalls) {
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 12; ++i) vars.push_back(s.new_var());
  // Chain of implications with periodic new constraints between solves.
  for (int i = 0; i + 1 < 12; ++i) {
    ASSERT_TRUE(s.add_clause({~L(vars[i]), L(vars[i + 1])}));
  }
  for (int round = 0; round < 10; ++round) {
    ASSERT_EQ(s.solve(), Solver::Result::Sat);
    // Alternate assumptions.
    const std::vector<Lit> a{L(vars[0], round % 2 == 0)};
    const auto r = s.solve(a);
    EXPECT_EQ(r, Solver::Result::Sat);
  }
  ASSERT_TRUE(s.add_clause({L(vars[0])}));
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(vars[11]));
}

}  // namespace
}  // namespace aspmt::asp
