#include "ea/nsga2.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "dse/explorer.hpp"
#include "synth_fixtures.hpp"
#include "synth/validator.hpp"
#include "util/rng.hpp"

namespace aspmt::ea {
namespace {

TEST(Decode, ProducesValidatedImplementations) {
  const synth::Specification spec = test::chain3_bus();
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Genotype g;
    for (synth::TaskId t = 0; t < spec.tasks().size(); ++t) {
      g.option.push_back(rng.below(100));
      g.priority.push_back(rng.uniform());
    }
    synth::Implementation impl;
    ASSERT_TRUE(decode_genotype(spec, g, impl));
    EXPECT_EQ(synth::validate_implementation(spec, impl), "")
        << impl.describe(spec);
  }
}

TEST(Decode, SingletonDeterministic) {
  const synth::Specification spec = test::singleton();
  Genotype g;
  g.option = {0};
  g.priority = {0.5};
  synth::Implementation impl;
  ASSERT_TRUE(decode_genotype(spec, g, impl));
  EXPECT_EQ(impl.objectives(), (pareto::Vec{4, 2, 3}));
}

TEST(Decode, ReportsUnroutableBinding) {
  using namespace synth;
  Specification s;
  const ResourceId p0 = s.add_resource("p0", ResourceKind::Processor, 1);
  const ResourceId p1 = s.add_resource("p1", ResourceKind::Processor, 1);
  const ResourceId bus = s.add_resource("bus", ResourceKind::Bus, 1);
  // Only p0 is connected.
  s.add_link(p0, bus, 1, 1);
  s.add_link(bus, p0, 1, 1);
  const TaskId a = s.add_task("a");
  const TaskId b = s.add_task("b");
  s.add_message("m", a, b, 1);
  s.add_mapping(a, p0, 1, 1);
  s.add_mapping(b, p0, 1, 1);
  s.add_mapping(b, p1, 1, 1);  // unroutable when chosen
  Genotype g;
  g.option = {0, 1};
  g.priority = {0.5, 0.5};
  synth::Implementation impl;
  EXPECT_FALSE(decode_genotype(s, g, impl));
  g.option = {0, 0};
  EXPECT_TRUE(decode_genotype(s, g, impl));
}

TEST(Nsga2, DeterministicForFixedSeed) {
  const synth::Specification spec = test::chain3_bus();
  Nsga2Options opts;
  opts.seed = 7;
  opts.population = 16;
  opts.generations = 10;
  const Nsga2Result a = nsga2(spec, opts);
  const Nsga2Result b = nsga2(spec, opts);
  EXPECT_EQ(a.front, b.front);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Nsga2, EvaluationBudgetRespected) {
  const synth::Specification spec = test::chain3_bus();
  Nsga2Options opts;
  opts.population = 10;
  opts.generations = 5;
  const Nsga2Result r = nsga2(spec, opts);
  EXPECT_EQ(r.evaluations, 10U * (5U + 1U));
}

TEST(Nsga2, FrontIsNonDominated) {
  const synth::Specification spec = test::diamond_two_proc();
  const Nsga2Result r = nsga2(spec, {});
  for (const auto& p : r.front) {
    for (const auto& q : r.front) {
      if (&p == &q) continue;
      EXPECT_FALSE(pareto::weakly_dominates(p, q) && p != q);
    }
  }
  EXPECT_FALSE(r.front.empty());
}

TEST(Nsga2, NeverBeatsTheExactFront) {
  // Every EA point must be weakly dominated by some exact front point —
  // the exactness sanity check for Figure 1.
  const synth::Specification spec = test::chain3_bus();
  const dse::ExploreResult exact = dse::explore(spec);
  ASSERT_TRUE(exact.stats.complete);
  Nsga2Options opts;
  opts.population = 24;
  opts.generations = 30;
  const Nsga2Result ea = nsga2(spec, opts);
  for (const auto& p : ea.front) {
    bool covered = false;
    for (const auto& q : exact.front) {
      if (pareto::weakly_dominates(q, p)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "EA point " << pareto::to_string(p)
                         << " not covered by the exact front";
  }
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Order-sensitive digest over the final population: option indices as
/// integers, priorities via their IEEE-754 bit patterns.
std::uint64_t population_digest(const std::vector<Genotype>& population) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Genotype& g : population) {
    for (const std::size_t o : g.option) h = fnv_mix(h, o);
    for (const double p : g.priority) {
      h = fnv_mix(h, std::bit_cast<std::uint64_t>(p));
    }
  }
  return h;
}

// The cross-platform determinism pin: the final population is a pure
// function of (spec, options) — fixed xoshiro256** stream, stable sorts on
// every partially tied key, IEEE-754 double arithmetic — so its digest is a
// platform-independent constant.  If this fails after an intentional
// algorithm change, print the new digest and re-pin it like a golden file.
TEST(Nsga2, GoldenPopulationDigest) {
  const synth::Specification spec = test::chain3_bus();
  Nsga2Options opts;
  opts.seed = 7;
  opts.population = 16;
  opts.generations = 10;
  const Nsga2Result r = nsga2(spec, opts);
  ASSERT_EQ(r.population.size(), opts.population);
  EXPECT_EQ(population_digest(r.population), 0x69176ae3b0a192ffULL)
      << "digest drifted: NSGA-II is no longer byte-deterministic (or the "
         "algorithm changed intentionally — re-pin after review): 0x"
      << std::hex << population_digest(r.population);
}

TEST(Nsga2, PopulationIsByteIdenticalAcrossRuns) {
  const synth::Specification spec = test::diamond_two_proc();
  Nsga2Options opts;
  opts.seed = 13;
  opts.population = 12;
  opts.generations = 8;
  const Nsga2Result a = nsga2(spec, opts);
  const Nsga2Result b = nsga2(spec, opts);
  ASSERT_EQ(a.population.size(), b.population.size());
  for (std::size_t i = 0; i < a.population.size(); ++i) {
    EXPECT_EQ(a.population[i].option, b.population[i].option) << i;
    ASSERT_EQ(a.population[i].priority.size(), b.population[i].priority.size());
    for (std::size_t j = 0; j < a.population[i].priority.size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.population[i].priority[j]),
                std::bit_cast<std::uint64_t>(b.population[i].priority[j]))
          << i << "/" << j << ": priorities differ at the bit level";
    }
  }
  EXPECT_EQ(population_digest(a.population), population_digest(b.population));
}

TEST(Nsga2, CollectedWitnessesValidateAndMatchTheFront) {
  const synth::Specification spec = test::chain3_bus();
  Nsga2Options opts;
  opts.population = 16;
  opts.generations = 10;
  opts.collect_witnesses = true;
  const Nsga2Result r = nsga2(spec, opts);
  ASSERT_EQ(r.witnesses.size(), r.front.size());
  for (std::size_t i = 0; i < r.front.size(); ++i) {
    EXPECT_EQ(synth::validate_implementation(spec, r.witnesses[i]), "");
    EXPECT_EQ(r.witnesses[i].objectives(), r.front[i]);
  }
}

TEST(Nsga2, WitnessesAreOptIn) {
  const Nsga2Result r = nsga2(test::chain3_bus(), {});
  EXPECT_TRUE(r.witnesses.empty());
  EXPECT_FALSE(r.population.empty());
}

TEST(Nsga2, FindsTheSingletonOptimum) {
  const synth::Specification spec = test::singleton();
  Nsga2Options opts;
  opts.population = 4;
  opts.generations = 2;
  const Nsga2Result r = nsga2(spec, opts);
  ASSERT_EQ(r.front.size(), 1U);
  EXPECT_EQ(r.front[0], (pareto::Vec{4, 2, 3}));
}

}  // namespace
}  // namespace aspmt::ea
