// Checkpoint format round-trips byte-for-byte, corruption of any kind is
// rejected (degrading to a cold start), and a run killed by its budget and
// resumed from its checkpoint reaches exactly the same final front as an
// uninterrupted run.
#include "dse/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "dse/explorer.hpp"
#include "dse/parallel_explorer.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::dse {
namespace {

/// Same FNV-1a the checkpoint writer uses — lets the tests hand-craft
/// version-1 and deliberately damaged bodies with valid checksums.
std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string with_checksum(std::string body) {
  body += "end ";
  body += std::to_string(fnv1a(body));
  body += '\n';
  return body;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "aspmt_ckpt_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// A checkpoint with real witnesses, produced by an actual exploration.
Checkpoint explored_checkpoint(const synth::Specification& spec) {
  const ExploreResult r = explore(spec);
  EXPECT_TRUE(r.stats.complete);
  Checkpoint c;
  c.spec_fingerprint = spec_fingerprint(spec);
  c.seed = 42;
  c.elapsed_ms = 1234;
  c.points = r.front;
  c.witnesses = r.witnesses;
  return c;
}

TEST(Checkpoint, TextRoundTripIsByteIdentical) {
  const Checkpoint a = explored_checkpoint(test::chain3_bus());
  const std::string text = to_text(a);
  Checkpoint b;
  ASSERT_EQ(parse_checkpoint(text, b), "");
  EXPECT_EQ(b.spec_fingerprint, a.spec_fingerprint);
  EXPECT_EQ(b.seed, a.seed);
  EXPECT_EQ(b.elapsed_ms, a.elapsed_ms);
  EXPECT_EQ(b.points, a.points);
  ASSERT_EQ(b.witnesses.size(), a.witnesses.size());
  // The decisive property: serialize(parse(serialize(x))) == serialize(x).
  EXPECT_EQ(to_text(b), text);
}

TEST(Checkpoint, FileRoundTripIsByteIdentical) {
  const Checkpoint a = explored_checkpoint(test::two_proc_bus());
  const std::string path = temp_path("roundtrip.txt");
  ASSERT_EQ(save_checkpoint(a, path), "");
  Checkpoint b;
  ASSERT_EQ(load_checkpoint(path, b), "");
  const std::string path2 = temp_path("roundtrip2.txt");
  ASSERT_EQ(save_checkpoint(b, path2), "");
  EXPECT_EQ(slurp(path), slurp(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(Checkpoint, MissingWitnessSentinelSurvivesRoundTrip) {
  Checkpoint a = explored_checkpoint(test::chain3_bus());
  ASSERT_GE(a.points.size(), 2U);
  a.witnesses[1] = synth::Implementation{};  // witness lost to a fault
  const std::string text = to_text(a);
  Checkpoint b;
  ASSERT_EQ(parse_checkpoint(text, b), "");
  EXPECT_TRUE(b.witnesses[1].option_of_task.empty());
  EXPECT_FALSE(b.witnesses[0].option_of_task.empty());
  EXPECT_EQ(to_text(b), text);
}

TEST(Checkpoint, EveryByteFlipIsDetected) {
  const Checkpoint a = explored_checkpoint(test::two_proc_bus());
  const std::string text = to_text(a);
  // Flip one byte at a sample of offsets: either the checksum or the
  // structural validation must reject every damaged variant that parses
  // differently from the original.
  for (std::size_t pos = 0; pos < text.size(); pos += 7) {
    std::string damaged = text;
    damaged[pos] ^= 0x20;
    if (damaged == text) continue;
    Checkpoint out;
    EXPECT_NE(parse_checkpoint(damaged, out), "") << "byte " << pos;
  }
}

TEST(Checkpoint, InjectedCorruptionIsRejectedOnLoad) {
  const Checkpoint a = explored_checkpoint(test::two_proc_bus());
  const std::string path = temp_path("corrupt.txt");
  ASSERT_EQ(save_checkpoint(a, path, /*inject_corruption=*/true), "");
  Checkpoint b;
  EXPECT_NE(load_checkpoint(path, b), "");
  std::remove(path.c_str());
}

TEST(Checkpoint, DominatedPointsAreRejected) {
  Checkpoint c;
  c.points = {pareto::Vec{1, 1, 1}, pareto::Vec{2, 2, 2}};  // 2nd is dominated
  const std::string err = parse_checkpoint(to_text(c), c);
  EXPECT_NE(err.find("non-dominated"), std::string::npos) << err;
}

TEST(Checkpoint, UnsortedPointsAreRejected) {
  Checkpoint c;
  c.points = {pareto::Vec{5, 1, 9}, pareto::Vec{1, 9, 5}};
  const std::string err = parse_checkpoint(to_text(c), c);
  EXPECT_NE(err.find("sorted"), std::string::npos) << err;
}

TEST(Checkpoint, ResumeFromForeignSpecStartsCold) {
  const Checkpoint foreign = explored_checkpoint(test::two_proc_bus());
  ExploreOptions opts;
  opts.common.resume = &foreign;
  const ExploreResult r = explore(test::chain3_bus(), opts);
  ASSERT_TRUE(r.stats.complete);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors.front().find("resume rejected"), std::string::npos);
  EXPECT_EQ(r.front, explore(test::chain3_bus()).front);  // unpoisoned
}

TEST(Checkpoint, KilledAndResumedRunMatchesUninterrupted) {
  const synth::Specification spec = test::diamond_two_proc();
  const ExploreResult uninterrupted = explore(spec);
  ASSERT_TRUE(uninterrupted.stats.complete);

  // Kill the first run via its budget (deadline-equivalent trip through the
  // monitor) after forcing a checkpoint on every discovery.
  const std::string path = temp_path("resume.txt");
  ExploreOptions first;
  first.common.conflict_budget = 1;
  first.common.solver_options.monitor_interval = 1;
  first.common.checkpoint_path = path;
  first.common.checkpoint_interval_seconds = 0.0;
  const ExploreResult killed = explore(spec, first);
  EXPECT_FALSE(killed.stats.complete);

  Checkpoint ckpt;
  ASSERT_EQ(load_checkpoint(path, ckpt), "");
  EXPECT_EQ(ckpt.points, killed.front);  // the final write is unconditional

  ExploreOptions second;
  second.common.resume = &ckpt;
  const ExploreResult resumed = explore(spec, second);
  ASSERT_TRUE(resumed.stats.complete);
  EXPECT_EQ(resumed.front, uninterrupted.front);
  EXPECT_EQ(resumed.stats.reason, StopReason::Completed);
  std::remove(path.c_str());
}

TEST(Checkpoint, ParallelResumeMatchesUninterrupted) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult uninterrupted = explore(spec);
  ASSERT_TRUE(uninterrupted.stats.complete);

  const std::string path = temp_path("par_resume.txt");
  ParallelExploreOptions first;
  first.threads = 2;
  first.common.conflict_budget = 1;
  first.common.solver_options.monitor_interval = 1;
  first.common.checkpoint_path = path;
  first.common.checkpoint_interval_seconds = 0.0;
  (void)explore_parallel(spec, first);

  Checkpoint ckpt;
  ASSERT_EQ(load_checkpoint(path, ckpt), "");

  ParallelExploreOptions second;
  second.threads = 2;
  second.common.resume = &ckpt;
  const ParallelExploreResult resumed = explore_parallel(spec, second);
  ASSERT_TRUE(resumed.base.stats.complete);
  EXPECT_EQ(resumed.base.front, uninterrupted.front);
}

TEST(Checkpoint, ResumedRunsAreNotCertifiable) {
  const synth::Specification spec = test::two_proc_bus();
  const Checkpoint ckpt = explored_checkpoint(spec);
  ExploreOptions opts;
  opts.common.resume = &ckpt;
  opts.common.certify = true;
  const ExploreResult r = explore(spec, opts);
  ASSERT_TRUE(r.stats.complete);
  EXPECT_FALSE(r.certified);
  EXPECT_NE(r.certificate_error.find("not certifiable"), std::string::npos)
      << r.certificate_error;
}

// --- format v2: the warm-start provenance flag ----------------------------

TEST(Checkpoint, WarmFlagSurvivesRoundTrip) {
  Checkpoint a = explored_checkpoint(test::two_proc_bus());
  a.warm_started = true;
  const std::string text = to_text(a);
  EXPECT_EQ(text.rfind("aspmt-ckpt 5", 0), 0U) << "v5 header expected";
  EXPECT_NE(text.find("\nwarm 1\n"), std::string::npos);
  Checkpoint b;
  ASSERT_EQ(parse_checkpoint(text, b), "");
  EXPECT_TRUE(b.warm_started);
  EXPECT_EQ(to_text(b), text);
}

TEST(Checkpoint, VersionTwoFilesStillLoad) {
  const std::string text = with_checksum(
      "aspmt-ckpt 2\nspec 7\nseed 1\nelapsed-ms 5\nwarm 1\npoints 1\n"
      "p 3 1 2 3\n");
  Checkpoint c;
  ASSERT_EQ(parse_checkpoint(text, c), "");
  EXPECT_TRUE(c.warm_started);
  EXPECT_FALSE(c.has_sections);
  EXPECT_TRUE(c.clauses.empty());
  ASSERT_EQ(c.points.size(), 1U);
  EXPECT_EQ(c.points.front(), (pareto::Vec{1, 2, 3}));
}

TEST(Checkpoint, SectionsLineInsideVersionTwoIsRejected) {
  const std::string text = with_checksum(
      "aspmt-ckpt 2\nspec 7\nseed 1\nelapsed-ms 5\nwarm 0\n"
      "sections 1 2 3 4\npoints 1\np 3 1 2 3\n");
  Checkpoint c;
  const std::string err = parse_checkpoint(text, c);
  EXPECT_NE(err.find("unknown line kind"), std::string::npos) << err;
}

// --- format v3: per-section digests + the learnt-clause dump --------------

TEST(Checkpoint, SectionsAndClausesSurviveRoundTrip) {
  Checkpoint a = explored_checkpoint(test::chain3_bus());
  a.has_sections = true;
  a.sections = spec_sections(test::chain3_bus());
  a.clause_base_vars = 40;
  a.clauses = {{1, -2, 3}, {-40, 17}};
  const std::string text = to_text(a);
  Checkpoint b;
  ASSERT_EQ(parse_checkpoint(text, b), "");
  EXPECT_TRUE(b.has_sections);
  EXPECT_EQ(b.sections, a.sections);
  EXPECT_EQ(b.clause_base_vars, a.clause_base_vars);
  EXPECT_EQ(b.clauses, a.clauses);
  EXPECT_EQ(to_text(b), text);
}

TEST(Checkpoint, ClauseLiteralOutsideBaseIsRejected) {
  const std::string text = with_checksum(
      "aspmt-ckpt 3\nspec 7\nseed 1\nelapsed-ms 5\nwarm 0\n"
      "clauses 1 10\nc 2 3 -11\npoints 1\np 3 1 2 3\n");
  Checkpoint c;
  const std::string err = parse_checkpoint(text, c);
  EXPECT_NE(err.find("literal out of range"), std::string::npos) << err;
}

TEST(Checkpoint, ClauseCountMismatchIsRejected) {
  const std::string text = with_checksum(
      "aspmt-ckpt 3\nspec 7\nseed 1\nelapsed-ms 5\nwarm 0\n"
      "clauses 2 10\nc 1 3\npoints 1\np 3 1 2 3\n");
  Checkpoint c;
  const std::string err = parse_checkpoint(text, c);
  EXPECT_NE(err.find("clause count mismatch"), std::string::npos) << err;
}

// The latent hole the per-section digests close: a checkpoint whose
// *combined* fingerprint happens to equal the spec's but whose section
// digests disagree must be refused by the resume gate — the combined hash
// alone would have admitted a foreign front.
TEST(Checkpoint, PerSectionDigestMismatchDefeatsCombinedHashCollision) {
  const synth::Specification spec = test::two_proc_bus();
  Checkpoint forged = explored_checkpoint(spec);
  forged.has_sections = true;
  forged.sections = spec_sections(spec);
  ASSERT_TRUE(checkpoint_matches(forged, spec));
  forged.sections.objectives ^= 0xdeadbeefULL;  // simulated collision victim
  EXPECT_FALSE(checkpoint_matches(forged, spec))
      << "combined hash matches but a section digest differs";

  // And the explorer's resume gate actually consults it: the forged
  // checkpoint is rejected (cold start), not silently absorbed.
  ExploreOptions opts;
  opts.common.resume = &forged;
  const ExploreResult r = explore(spec, opts);
  ASSERT_TRUE(r.stats.complete);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors.front().find("resume rejected"), std::string::npos);
  EXPECT_EQ(r.front, explore(spec).front);
}

TEST(Checkpoint, ExploredRunRecordsSectionsAndClausesInSnapshot) {
  const std::string path = temp_path("v3_snapshot.txt");
  ExploreOptions opts;
  opts.common.checkpoint_path = path;
  const ExploreResult r = explore(test::chain3_bus(), opts);
  ASSERT_TRUE(r.stats.complete);
  Checkpoint ckpt;
  ASSERT_EQ(load_checkpoint(path, ckpt), "");
  EXPECT_TRUE(ckpt.has_sections);
  EXPECT_EQ(ckpt.sections, spec_sections(test::chain3_bus()));
  for (const auto& clause : ckpt.clauses) {
    ASSERT_FALSE(clause.empty());
    for (const std::int32_t l : clause) {
      ASSERT_NE(l, 0);
      ASSERT_LE(static_cast<std::uint32_t>(l < 0 ? -l : l),
                ckpt.clause_base_vars);
    }
  }
  std::remove(path.c_str());
}

// --- format v4: slice-scheduler bounds ------------------------------------

TEST(Checkpoint, SliceBoundsSurviveRoundTrip) {
  Checkpoint a = explored_checkpoint(test::chain3_bus());
  a.slice_bounds = {7, 12, 25};
  const std::string text = to_text(a);
  EXPECT_EQ(text.rfind("aspmt-ckpt 5", 0), 0U);
  Checkpoint b;
  b.slice_bounds = {99};  // stale state: the parser must reset it
  ASSERT_EQ(parse_checkpoint(text, b), "");
  EXPECT_EQ(b.slice_bounds, a.slice_bounds);
  EXPECT_EQ(to_text(b), text);
}

TEST(Checkpoint, EmptySliceBoundsOmitTheSlicesLine) {
  const Checkpoint a = explored_checkpoint(test::two_proc_bus());
  const std::string text = to_text(a);
  EXPECT_EQ(text.find("slices"), std::string::npos);
  Checkpoint b;
  ASSERT_EQ(parse_checkpoint(text, b), "");
  EXPECT_TRUE(b.slice_bounds.empty());
}

TEST(Checkpoint, VersionThreeFilesLoadWithEmptySliceBounds) {
  const std::string text = with_checksum(
      "aspmt-ckpt 3\nspec 7\nseed 1\nelapsed-ms 5\nwarm 0\npoints 1\n"
      "p 3 1 2 3\n");
  Checkpoint c;
  c.slice_bounds = {4};  // stale state: the parser must reset it
  ASSERT_EQ(parse_checkpoint(text, c), "");
  EXPECT_TRUE(c.slice_bounds.empty());
}

TEST(Checkpoint, SlicesLineInsideVersionThreeIsRejected) {
  const std::string text = with_checksum(
      "aspmt-ckpt 3\nspec 7\nseed 1\nelapsed-ms 5\nwarm 0\n"
      "slices 2 4 9\npoints 1\np 3 1 2 3\n");
  Checkpoint c;
  const std::string err = parse_checkpoint(text, c);
  EXPECT_NE(err.find("unknown line kind"), std::string::npos) << err;
}

TEST(Checkpoint, MalformedSlicesLineIsRejected) {
  const std::string text = with_checksum(
      "aspmt-ckpt 4\nspec 7\nseed 1\nelapsed-ms 5\nwarm 0\n"
      "slices 3 4 9\npoints 1\np 3 1 2 3\n");  // promises 3 bounds, gives 2
  Checkpoint c;
  const std::string err = parse_checkpoint(text, c);
  EXPECT_FALSE(err.empty());
}

// --- format v5: the objective-tree section digest --------------------------

TEST(Checkpoint, VersionFourSectionsLoadWithTheDefaultTreeDigest) {
  const std::string text = with_checksum(
      "aspmt-ckpt 4\nspec 7\nseed 1\nelapsed-ms 5\nwarm 0\n"
      "sections 1 2 3 4\npoints 1\np 3 1 2 3\n");
  Checkpoint c;
  ASSERT_EQ(parse_checkpoint(text, c), "");
  EXPECT_TRUE(c.has_sections);
  // Pre-v5 files predate declared objective trees: they load as "default
  // axes", so a resumed session against an unchanged classic spec still
  // section-matches.
  EXPECT_EQ(c.sections.tree, default_tree_digest());
}

TEST(Checkpoint, FourDigestSectionsLineInsideVersionFiveIsRejected) {
  const std::string text = with_checksum(
      "aspmt-ckpt 5\nspec 7\nseed 1\nelapsed-ms 5\nwarm 0\n"
      "sections 1 2 3 4\npoints 1\np 3 1 2 3\n");
  Checkpoint c;
  const std::string err = parse_checkpoint(text, c);
  EXPECT_NE(err.find("malformed section digests"), std::string::npos) << err;
}

TEST(Checkpoint, TreeDigestSurvivesRoundTripInTheSectionsLine) {
  Checkpoint a = explored_checkpoint(test::chain3_bus());
  a.has_sections = true;
  a.sections = spec_sections(test::chain3_bus());
  const std::string text = to_text(a);
  EXPECT_NE(text.find("sections "), std::string::npos);
  Checkpoint b;
  ASSERT_EQ(parse_checkpoint(text, b), "");
  EXPECT_EQ(b.sections.tree, a.sections.tree);
  EXPECT_EQ(to_text(b), text);
}

TEST(Checkpoint, VersionOneFilesStillLoadWithWarmStartedFalse) {
  const std::string text = with_checksum(
      "aspmt-ckpt 1\nspec 7\nseed 1\nelapsed-ms 5\npoints 1\np 3 1 2 3\n");
  Checkpoint c;
  c.warm_started = true;  // stale state: the parser must reset it
  ASSERT_EQ(parse_checkpoint(text, c), "");
  EXPECT_FALSE(c.warm_started);
  ASSERT_EQ(c.points.size(), 1U);
  EXPECT_EQ(c.points.front(), (pareto::Vec{1, 2, 3}));
}

TEST(Checkpoint, WarmLineInsideVersionOneIsRejected) {
  const std::string text = with_checksum(
      "aspmt-ckpt 1\nspec 7\nseed 1\nelapsed-ms 5\nwarm 1\npoints 1\n"
      "p 3 1 2 3\n");
  Checkpoint c;
  const std::string err = parse_checkpoint(text, c);
  EXPECT_NE(err.find("unknown line kind"), std::string::npos) << err;
}

TEST(Checkpoint, MalformedWarmFlagIsRejected) {
  const std::string text = with_checksum(
      "aspmt-ckpt 2\nspec 7\nseed 1\nelapsed-ms 5\nwarm 7\npoints 1\n"
      "p 3 1 2 3\n");
  Checkpoint c;
  const std::string err = parse_checkpoint(text, c);
  EXPECT_NE(err.find("warm-start flag"), std::string::npos) << err;
}

TEST(Checkpoint, WarmStartedRunRecordsTheFlag) {
  const std::string path = temp_path("warm_flag.txt");
  ExploreOptions opts;
  opts.common.warm_start.method = WarmStartMethod::Nsga2;
  opts.common.warm_start.budget = 120;
  opts.common.checkpoint_path = path;
  const ExploreResult r = explore(test::chain3_bus(), opts);
  ASSERT_TRUE(r.stats.complete);
  ASSERT_GT(r.stats.warm_seeds, 0U);
  Checkpoint ckpt;
  ASSERT_EQ(load_checkpoint(path, ckpt), "");
  EXPECT_TRUE(ckpt.warm_started);
  std::remove(path.c_str());
}

TEST(Checkpoint, ParallelWarmStartedRunRecordsTheFlag) {
  const std::string path = temp_path("warm_flag_par.txt");
  ParallelExploreOptions opts;
  opts.threads = 2;
  opts.common.warm_start.method = WarmStartMethod::Nsga2;
  opts.common.warm_start.budget = 120;
  opts.common.checkpoint_path = path;
  const ParallelExploreResult r = explore_parallel(test::chain3_bus(), opts);
  ASSERT_TRUE(r.base.stats.complete);
  ASSERT_GT(r.base.stats.warm_seeds, 0U);
  Checkpoint ckpt;
  ASSERT_EQ(load_checkpoint(path, ckpt), "");
  EXPECT_TRUE(ckpt.warm_started);
  std::remove(path.c_str());
}

// Resuming *after* a warm start keeps PR 4 resume semantics: the continued
// run is exact but not certifiable (archive history crosses streams), and
// the warm flag rides along into the next checkpoint generation.
TEST(Checkpoint, ResumeAfterWarmStartIsExactButNotCertifiable) {
  const synth::Specification spec = test::diamond_two_proc();
  const ExploreResult cold = explore(spec);
  ASSERT_TRUE(cold.stats.complete);

  const std::string path = temp_path("warm_resume.txt");
  ExploreOptions first;
  first.common.warm_start.method = WarmStartMethod::Nsga2;
  first.common.warm_start.budget = 120;
  first.common.checkpoint_path = path;
  const ExploreResult warmed = explore(spec, first);
  ASSERT_TRUE(warmed.stats.complete);
  ASSERT_GT(warmed.stats.warm_seeds, 0U);

  Checkpoint ckpt;
  ASSERT_EQ(load_checkpoint(path, ckpt), "");
  EXPECT_TRUE(ckpt.warm_started);

  const std::string path2 = temp_path("warm_resume2.txt");
  ExploreOptions second;
  second.common.resume = &ckpt;
  second.common.certify = true;
  second.common.checkpoint_path = path2;
  const ExploreResult resumed = explore(spec, second);
  ASSERT_TRUE(resumed.stats.complete);
  EXPECT_EQ(resumed.front, cold.front);
  EXPECT_FALSE(resumed.certified);
  EXPECT_NE(resumed.certificate_error.find("not certifiable"),
            std::string::npos)
      << resumed.certificate_error;
  Checkpoint next;
  ASSERT_EQ(load_checkpoint(path2, next), "");
  EXPECT_TRUE(next.warm_started) << "warm provenance must survive resume";
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(Checkpoint, WriterHonoursItsInterval) {
  const std::string path = temp_path("interval.txt");
  CheckpointWriter writer(path, 3600.0);  // one hour: never due in-test
  EXPECT_FALSE(writer.due());
  Checkpoint c;
  EXPECT_EQ(writer.write_if_due(c), "");  // skipped, not an error
  Checkpoint probe;
  EXPECT_NE(load_checkpoint(path, probe), "");  // nothing was written
  EXPECT_EQ(writer.write(c), "");  // the final write is unconditional
  EXPECT_EQ(load_checkpoint(path, probe), "");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aspmt::dse
