#include "synth/validator.hpp"

#include <gtest/gtest.h>

#include "dse/context.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::synth {
namespace {

/// Produce a known-good implementation to tamper with.
Implementation good_impl(const Specification& spec) {
  dse::SynthContext ctx(spec);
  EXPECT_EQ(ctx.solver.solve(), asp::Solver::Result::Sat);
  Implementation impl = ctx.capture().implementation();
  EXPECT_EQ(validate_implementation(spec, impl), "");
  return impl;
}

TEST(Validator, AcceptsDecodedImplementation) {
  const Specification spec = test::chain3_bus();
  const Implementation impl = good_impl(spec);
  EXPECT_EQ(validate_implementation(spec, impl), "");
}

TEST(Validator, RejectsDimensionMismatch) {
  const Specification spec = test::two_proc_bus();
  Implementation impl = good_impl(spec);
  impl.start.pop_back();
  EXPECT_NE(validate_implementation(spec, impl), "");
}

TEST(Validator, RejectsForeignOption) {
  const Specification spec = test::two_proc_bus();
  Implementation impl = good_impl(spec);
  // Use an option belonging to the other task.
  std::swap(impl.option_of_task[0], impl.option_of_task[1]);
  EXPECT_NE(validate_implementation(spec, impl), "");
}

TEST(Validator, RejectsBindingOptionMismatch) {
  const Specification spec = test::two_proc_bus();
  Implementation impl = good_impl(spec);
  impl.binding[0] = impl.binding[0] == 1 ? 2 : 1;
  EXPECT_NE(validate_implementation(spec, impl), "");
}

TEST(Validator, RejectsBrokenRoute) {
  const Specification spec = test::two_proc_bus();
  dse::SynthContext ctx(spec);
  // Cross binding ensures a non-empty route.
  ASSERT_TRUE(ctx.solver.add_clause(
      {ctx.encoding.lit(ctx.encoding.bind_atom[0][0])}));
  ASSERT_TRUE(ctx.solver.add_clause(
      {ctx.encoding.lit(ctx.encoding.bind_atom[1][1])}));
  ASSERT_EQ(ctx.solver.solve(), asp::Solver::Result::Sat);
  Implementation impl = ctx.capture().implementation();
  ASSERT_EQ(validate_implementation(spec, impl), "");
  Implementation broken = impl;
  broken.route[0].pop_back();  // no longer reaches the destination
  EXPECT_NE(validate_implementation(spec, broken), "");
  Implementation missing = impl;
  missing.route[0].clear();
  EXPECT_NE(validate_implementation(spec, missing), "");
}

TEST(Validator, RejectsPrecedenceViolation) {
  const Specification spec = test::two_proc_bus();
  Implementation impl = good_impl(spec);
  impl.start[1] = 0;
  impl.start[0] = 100;  // consumer before producer
  EXPECT_NE(validate_implementation(spec, impl), "");
}

TEST(Validator, RejectsOverlapOnSharedResource) {
  const Specification spec = test::diamond_two_proc();
  dse::SynthContext ctx(spec);
  const auto& enc = ctx.encoding;
  ASSERT_TRUE(ctx.solver.add_clause({enc.lit(enc.bind_atom[1][0])}));
  ASSERT_TRUE(ctx.solver.add_clause({enc.lit(enc.bind_atom[2][0])}));
  ASSERT_EQ(ctx.solver.solve(), asp::Solver::Result::Sat);
  Implementation impl = ctx.capture().implementation();
  ASSERT_EQ(validate_implementation(spec, impl), "");
  // Collapse b and c onto the same start time: overlap on p0.
  impl.start[2] = impl.start[1];
  EXPECT_NE(validate_implementation(spec, impl), "");
}

TEST(Validator, RejectsWrongObjectives) {
  const Specification spec = test::two_proc_bus();
  Implementation impl = good_impl(spec);
  ++impl.energy;
  EXPECT_NE(validate_implementation(spec, impl), "");
  --impl.energy;
  ++impl.latency;
  EXPECT_NE(validate_implementation(spec, impl), "");
}

TEST(Validator, RecomputeMatchesRecorded) {
  const Specification spec = test::chain3_bus();
  const Implementation impl = good_impl(spec);
  EXPECT_EQ(recompute_objectives(spec, impl), impl.objectives());
}

TEST(Validator, ScheduleRenderingMentionsResourcesAndTasks) {
  const Specification spec = test::diamond_two_proc();
  const Implementation impl = good_impl(spec);
  const std::string gantt = impl.describe_schedule(spec);
  EXPECT_NE(gantt.find("A = a"), std::string::npos);
  EXPECT_NE(gantt.find("D = d"), std::string::npos);
  // At least one processor row rendered with block characters.
  EXPECT_NE(gantt.find('|'), std::string::npos);
}

TEST(Validator, RejectsNegativeStart) {
  const Specification spec = test::singleton();
  Implementation impl = good_impl(spec);
  impl.start[0] = -1;
  EXPECT_NE(validate_implementation(spec, impl), "");
}

}  // namespace
}  // namespace aspmt::synth
