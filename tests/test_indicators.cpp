#include "pareto/indicators.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace aspmt::pareto {
namespace {

TEST(Hypervolume, SinglePoint2d) {
  EXPECT_DOUBLE_EQ(hypervolume({{2, 3}}, {10, 10}), 8.0 * 7.0);
}

TEST(Hypervolume, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume({}, {10, 10}), 0.0);
}

TEST(Hypervolume, PointBeyondReferenceClipped) {
  EXPECT_DOUBLE_EQ(hypervolume({{11, 2}}, {10, 10}), 0.0);
}

TEST(Hypervolume, TwoPoints2dUnion) {
  // (2,6) and (6,2) w.r.t. (10,10): 8*4 + 4*8 - 4*4 = 48.
  EXPECT_DOUBLE_EQ(hypervolume({{2, 6}, {6, 2}}, {10, 10}), 48.0);
}

TEST(Hypervolume, DominatedPointAddsNothing) {
  const double base = hypervolume({{2, 6}, {6, 2}}, {10, 10});
  EXPECT_DOUBLE_EQ(hypervolume({{2, 6}, {6, 2}, {7, 7}}, {10, 10}), base);
}

TEST(Hypervolume, SinglePoint3d) {
  EXPECT_DOUBLE_EQ(hypervolume({{1, 2, 3}}, {5, 5, 5}), 4.0 * 3.0 * 2.0);
}

TEST(Hypervolume, ThreeDimensionalUnion) {
  // Two cuboids overlapping: (1,1,3)->(5,5,5) and (3,3,1)->(5,5,5).
  // vol1 = 4*4*2 = 32, vol2 = 2*2*4 = 16, overlap = 2*2*2 = 8 -> 40.
  EXPECT_DOUBLE_EQ(hypervolume({{1, 1, 3}, {3, 3, 1}}, {5, 5, 5}), 40.0);
}

TEST(Hypervolume, MonotoneUnderAddedPoint) {
  util::Rng rng(4);
  std::vector<Vec> pts;
  const Vec ref{20, 20, 20};
  double prev = 0.0;
  for (int i = 0; i < 20; ++i) {
    pts.push_back(Vec{rng.range(0, 15), rng.range(0, 15), rng.range(0, 15)});
    const double hv = hypervolume(pts, ref);
    EXPECT_GE(hv, prev - 1e-9);
    prev = hv;
  }
}

// Brute-force 2D hypervolume on a grid for cross-checking.
double grid_hv_2d(const std::vector<Vec>& pts, const Vec& ref) {
  double cells = 0;
  for (std::int64_t x = 0; x < ref[0]; ++x) {
    for (std::int64_t y = 0; y < ref[1]; ++y) {
      for (const Vec& p : pts) {
        if (p[0] <= x && p[1] <= y) {
          cells += 1;
          break;
        }
      }
    }
  }
  return cells;
}

class HvRandom2d : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HvRandom2d, MatchesGridCount) {
  util::Rng rng(GetParam() * 17 + 3);
  std::vector<Vec> pts;
  const Vec ref{12, 12};
  const int n = 1 + static_cast<int>(rng.below(6));
  for (int i = 0; i < n; ++i) {
    pts.push_back(Vec{rng.range(0, 11), rng.range(0, 11)});
  }
  EXPECT_DOUBLE_EQ(hypervolume(pts, ref), grid_hv_2d(pts, ref));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HvRandom2d, ::testing::Range<std::uint64_t>(0, 20));

TEST(Epsilon, ZeroWhenCovering) {
  const std::vector<Vec> r{{1, 2}, {2, 1}};
  EXPECT_EQ(additive_epsilon(r, r), 0);
}

TEST(Epsilon, ShiftMeasured) {
  const std::vector<Vec> approx{{2, 3}};
  const std::vector<Vec> ref{{1, 2}};
  EXPECT_EQ(additive_epsilon(approx, ref), 1);
}

TEST(Epsilon, WorstReferencePointCounts) {
  const std::vector<Vec> approx{{0, 0}};
  const std::vector<Vec> ref{{0, 0}, {-3, 5}};
  // For (-3,5): max(0-(-3), 0-5) = 3.
  EXPECT_EQ(additive_epsilon(approx, ref), 3);
}

TEST(Epsilon, EmptyApproximationIsInfinite) {
  EXPECT_EQ(additive_epsilon({}, {{1, 1}}),
            std::numeric_limits<std::int64_t>::max());
}

TEST(Coverage, CountsExactHits) {
  const std::vector<Vec> exact{{1, 1}, {2, 0}, {0, 3}};
  const std::vector<Vec> approx{{1, 1}, {9, 9}};
  EXPECT_DOUBLE_EQ(coverage_ratio(approx, exact), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(coverage_ratio(exact, exact), 1.0);
  EXPECT_DOUBLE_EQ(coverage_ratio({}, exact), 0.0);
}

}  // namespace
}  // namespace aspmt::pareto
