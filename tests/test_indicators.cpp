#include "pareto/indicators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "util/rng.hpp"

namespace aspmt::pareto {
namespace {

TEST(Hypervolume, SinglePoint2d) {
  EXPECT_DOUBLE_EQ(hypervolume({{2, 3}}, {10, 10}), 8.0 * 7.0);
}

TEST(Hypervolume, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume({}, {10, 10}), 0.0);
}

TEST(Hypervolume, PointBeyondReferenceClipped) {
  EXPECT_DOUBLE_EQ(hypervolume({{11, 2}}, {10, 10}), 0.0);
}

TEST(Hypervolume, TwoPoints2dUnion) {
  // (2,6) and (6,2) w.r.t. (10,10): 8*4 + 4*8 - 4*4 = 48.
  EXPECT_DOUBLE_EQ(hypervolume({{2, 6}, {6, 2}}, {10, 10}), 48.0);
}

TEST(Hypervolume, DominatedPointAddsNothing) {
  const double base = hypervolume({{2, 6}, {6, 2}}, {10, 10});
  EXPECT_DOUBLE_EQ(hypervolume({{2, 6}, {6, 2}, {7, 7}}, {10, 10}), base);
}

TEST(Hypervolume, SinglePoint3d) {
  EXPECT_DOUBLE_EQ(hypervolume({{1, 2, 3}}, {5, 5, 5}), 4.0 * 3.0 * 2.0);
}

TEST(Hypervolume, ThreeDimensionalUnion) {
  // Two cuboids overlapping: (1,1,3)->(5,5,5) and (3,3,1)->(5,5,5).
  // vol1 = 4*4*2 = 32, vol2 = 2*2*4 = 16, overlap = 2*2*2 = 8 -> 40.
  EXPECT_DOUBLE_EQ(hypervolume({{1, 1, 3}, {3, 3, 1}}, {5, 5, 5}), 40.0);
}

TEST(Hypervolume, MonotoneUnderAddedPoint) {
  util::Rng rng(4);
  std::vector<Vec> pts;
  const Vec ref{20, 20, 20};
  double prev = 0.0;
  for (int i = 0; i < 20; ++i) {
    pts.push_back(Vec{rng.range(0, 15), rng.range(0, 15), rng.range(0, 15)});
    const double hv = hypervolume(pts, ref);
    EXPECT_GE(hv, prev - 1e-9);
    prev = hv;
  }
}

// Brute-force 2D hypervolume on a grid for cross-checking.
double grid_hv_2d(const std::vector<Vec>& pts, const Vec& ref) {
  double cells = 0;
  for (std::int64_t x = 0; x < ref[0]; ++x) {
    for (std::int64_t y = 0; y < ref[1]; ++y) {
      for (const Vec& p : pts) {
        if (p[0] <= x && p[1] <= y) {
          cells += 1;
          break;
        }
      }
    }
  }
  return cells;
}

class HvRandom2d : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HvRandom2d, MatchesGridCount) {
  util::Rng rng(GetParam() * 17 + 3);
  std::vector<Vec> pts;
  const Vec ref{12, 12};
  const int n = 1 + static_cast<int>(rng.below(6));
  for (int i = 0; i < n; ++i) {
    pts.push_back(Vec{rng.range(0, 11), rng.range(0, 11)});
  }
  EXPECT_DOUBLE_EQ(hypervolume(pts, ref), grid_hv_2d(pts, ref));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HvRandom2d, ::testing::Range<std::uint64_t>(0, 20));

// A fully hand-computed three-objective pin (inclusion–exclusion):
//   A=(1,4,2): (5-1)(5-4)(5-2) = 12     A∩B at (2,4,3): 3*1*2 = 6
//   B=(2,2,3): (5-2)(5-2)(5-3) = 18     A∩C at (4,4,2): 1*1*3 = 3
//   C=(4,1,1): (5-4)(5-1)(5-1) = 16     B∩C at (4,2,3): 1*3*2 = 6
//                                       A∩B∩C at (4,4,3): 1*1*2 = 2
//   union = 12+18+16-6-3-6+2 = 33.
TEST(Hypervolume, HandComputedThreeObjectiveFront) {
  EXPECT_DOUBLE_EQ(hypervolume({{1, 4, 2}, {2, 2, 3}, {4, 1, 1}}, {5, 5, 5}),
                   33.0);
}

TEST(SliceGaps, DegenerateInputsYieldNothing) {
  EXPECT_TRUE(slice_hypervolume_gaps({}, {1}).empty());
  EXPECT_TRUE(slice_hypervolume_gaps({{1, 2}}, {1}).empty());
  EXPECT_TRUE(slice_hypervolume_gaps({{1, 2}, {2, 1}}, {}).empty());
}

// front {(2,6),(3,3),(6,2)}: lo=(2,2), hi=(6,6), upper reference (7,7).
// Band (2,3]: box = 1*5 = 5; dominated part is (2,6) clipped against the
//   (3,7) corner = 1*1 = 1 -> gap 4 ((3,3) sits on the band edge, width 0).
// Band (3,6]: box = 3*5 = 15; (3,3) covers (6-3)*(7-3) = 12, (6,2) has
//   width 0, (3,6) is dominated -> gap 3.
TEST(SliceGaps, HandComputedTwoBandCase) {
  const std::vector<double> gaps =
      slice_hypervolume_gaps({{2, 6}, {3, 3}, {6, 2}}, {3, 6});
  ASSERT_EQ(gaps.size(), 2U);
  EXPECT_DOUBLE_EQ(gaps[0], 4.0);
  EXPECT_DOUBLE_EQ(gaps[1], 3.0);
}

TEST(SliceGaps, CollapsedBandScoresZero) {
  // A duplicated split makes the second band empty: its gap must be 0.
  const std::vector<double> gaps =
      slice_hypervolume_gaps({{2, 6}, {6, 2}}, {4, 4});
  ASSERT_EQ(gaps.size(), 2U);
  EXPECT_GT(gaps[0], 0.0);
  EXPECT_DOUBLE_EQ(gaps[1], 0.0);
}

TEST(SliceGaps, NonNegativeAndBoundedByTheBandBox) {
  util::Rng rng(9);
  for (int round = 0; round < 20; ++round) {
    std::vector<Vec> pts;
    const int n = 2 + static_cast<int>(rng.below(5));
    for (int i = 0; i < n; ++i) {
      pts.push_back(Vec{rng.range(0, 20), rng.range(0, 20), rng.range(0, 20)});
    }
    const std::vector<Vec> front = non_dominated_filter(std::move(pts));
    if (front.size() < 2) continue;
    Vec lo = front.front();
    Vec hi = front.front();
    for (const Vec& p : front) {
      for (std::size_t i = 0; i < 3; ++i) {
        lo[i] = std::min(lo[i], p[i]);
        hi[i] = std::max(hi[i], p[i]);
      }
    }
    const std::vector<std::int64_t> splits{lo[0] + (hi[0] - lo[0]) / 2, hi[0]};
    const std::vector<double> gaps = slice_hypervolume_gaps(front, splits);
    ASSERT_EQ(gaps.size(), splits.size());
    std::int64_t band_lo = lo[0];
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      EXPECT_GE(gaps[i], 0.0);
      const double width = static_cast<double>(splits[i] - band_lo);
      const double box = width < 0 ? 0.0
                                   : width *
                                         static_cast<double>(hi[1] + 1 - lo[1]) *
                                         static_cast<double>(hi[2] + 1 - lo[2]);
      EXPECT_LE(gaps[i], box + 1e-9) << "round " << round << " band " << i;
      band_lo = splits[i];
    }
  }
}

TEST(Epsilon, ZeroWhenCovering) {
  const std::vector<Vec> r{{1, 2}, {2, 1}};
  EXPECT_EQ(additive_epsilon(r, r), 0);
}

TEST(Epsilon, ShiftMeasured) {
  const std::vector<Vec> approx{{2, 3}};
  const std::vector<Vec> ref{{1, 2}};
  EXPECT_EQ(additive_epsilon(approx, ref), 1);
}

TEST(Epsilon, WorstReferencePointCounts) {
  const std::vector<Vec> approx{{0, 0}};
  const std::vector<Vec> ref{{0, 0}, {-3, 5}};
  // For (-3,5): max(0-(-3), 0-5) = 3.
  EXPECT_EQ(additive_epsilon(approx, ref), 3);
}

TEST(Epsilon, EmptyApproximationIsInfinite) {
  EXPECT_EQ(additive_epsilon({}, {{1, 1}}),
            std::numeric_limits<std::int64_t>::max());
}

TEST(Coverage, CountsExactHits) {
  const std::vector<Vec> exact{{1, 1}, {2, 0}, {0, 3}};
  const std::vector<Vec> approx{{1, 1}, {9, 9}};
  EXPECT_DOUBLE_EQ(coverage_ratio(approx, exact), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(coverage_ratio(exact, exact), 1.0);
  EXPECT_DOUBLE_EQ(coverage_ratio({}, exact), 0.0);
}

}  // namespace
}  // namespace aspmt::pareto
