// Clause-arena garbage collection must be unobservable: compacting at any
// point — every few conflicts, or via the wasted-fraction trigger — may
// only move clauses around in memory.  The tests pin that down by running
// the same instances with compaction disabled, forced aggressively, and
// driven by the normal trigger, and demanding identical model sequences,
// identical search statistics, and proofs the independent checker accepts.
#include "asp/solver.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "asp/proof.hpp"
#include "cert/checker.hpp"
#include "util/rng.hpp"

namespace aspmt::asp {
namespace {

Lit L(Var v, bool s = true) { return Lit::make(v, s); }

std::vector<std::vector<Lit>> random_cnf(std::uint64_t seed,
                                         std::uint32_t num_vars,
                                         std::size_t num_clauses) {
  util::Rng rng(seed);
  std::vector<std::vector<Lit>> cnf;
  cnf.reserve(num_clauses);
  while (cnf.size() < num_clauses) {
    const std::size_t width = 3 + rng.below(3);  // 3..5 literals
    std::vector<Lit> clause;
    for (std::size_t k = 0; k < width; ++k) {
      clause.push_back(L(static_cast<Var>(rng.below(num_vars)), rng.chance(0.5)));
    }
    cnf.push_back(std::move(clause));
  }
  return cnf;
}

std::vector<std::vector<Lit>> pigeonhole_cnf(int pigeons,
                                             std::uint32_t& num_vars) {
  const int holes = pigeons - 1;
  num_vars = static_cast<std::uint32_t>(pigeons * holes);
  std::vector<std::vector<Lit>> cnf;
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h) {
      c.push_back(L(static_cast<Var>(p * holes + h)));
    }
    cnf.push_back(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.push_back({L(static_cast<Var>(p1 * holes + h), false),
                       L(static_cast<Var>(p2 * holes + h), false)});
      }
    }
  }
  return cnf;
}

struct EnumerationTrace {
  std::vector<std::vector<bool>> models;  // in discovery order
  SolverStats stats;
};

/// Enumerate every model (in solver order) by blocking full assignments.
/// A tight learnt-DB cap forces reduce_learnt_db early and often, so
/// compaction has actual garbage to collect.
EnumerationTrace enumerate_all(const std::vector<std::vector<Lit>>& cnf,
                               std::uint32_t num_vars,
                               const SolverOptions& options,
                               ProofLog* proof = nullptr,
                               std::size_t max_models = 500) {
  Solver solver(options);
  if (proof != nullptr) solver.set_proof(proof);
  for (Var v = 0; v < num_vars; ++v) solver.new_var();
  for (const auto& clause : cnf) {
    if (!solver.add_clause(clause)) break;
  }
  EnumerationTrace trace;
  while (trace.models.size() < max_models &&
         solver.solve() == Solver::Result::Sat) {
    std::vector<bool> model;
    std::vector<Lit> blocking;
    model.reserve(num_vars);
    for (Var v = 0; v < num_vars; ++v) {
      const bool val = solver.model_value(v);
      model.push_back(val);
      blocking.push_back(L(v, !val));
    }
    trace.models.push_back(std::move(model));
    if (!solver.add_clause(std::move(blocking))) break;
  }
  trace.stats = solver.stats();
  return trace;
}

SolverOptions tight_db_options() {
  SolverOptions options;
  options.learnt_start = 30;  // reduce_learnt_db fires every few conflicts
  options.learnt_growth = 1.05;
  return options;
}

void expect_same_search(const SolverStats& a, const SolverStats& b) {
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.propagations, b.propagations);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.learnt_clauses, b.learnt_clauses);
  EXPECT_EQ(a.deleted_clauses, b.deleted_clauses);
  EXPECT_EQ(a.models, b.models);
}

TEST(ClauseGc, ForcedCompactionLeavesEnumerationIdentical) {
  // Random instances near the constrained regime: compare the model
  // sequences (capped — the count is irrelevant, the order is not).
  for (std::uint64_t seed : {11U, 23U, 47U}) {
    const auto cnf = random_cnf(seed, 40, 190);

    SolverOptions off = tight_db_options();
    off.gc_fraction = 0.0;  // never compact
    const EnumerationTrace base = enumerate_all(cnf, 40, off);

    SolverOptions forced = tight_db_options();
    forced.gc_every_conflicts = 3;  // compact constantly
    const EnumerationTrace gc = enumerate_all(cnf, 40, forced);

    EXPECT_EQ(base.stats.arena_gcs, 0U);
    if (gc.stats.conflicts >= 3) {
      EXPECT_GT(gc.stats.arena_gcs, 0U) << "seed " << seed;
    }
    EXPECT_EQ(base.models, gc.models) << "seed " << seed;
    expect_same_search(base.stats, gc.stats);
  }
}

TEST(ClauseGc, WastedFractionTriggerLeavesRefutationIdentical) {
  std::uint32_t num_vars = 0;
  const auto cnf = pigeonhole_cnf(7, num_vars);

  SolverOptions off = tight_db_options();
  off.gc_fraction = 0.0;
  const EnumerationTrace base = enumerate_all(cnf, num_vars, off);

  SolverOptions eager = tight_db_options();
  eager.gc_fraction = 0.01;  // compact on the slightest waste
  const EnumerationTrace gc = enumerate_all(cnf, num_vars, eager);

  EXPECT_TRUE(base.models.empty());
  EXPECT_TRUE(gc.models.empty());
  EXPECT_GT(gc.stats.arena_gcs, 0U);
  expect_same_search(base.stats, gc.stats);
}

TEST(ClauseGc, ProofStreamIsCompactionInvariantAndChecks) {
  std::uint32_t num_vars = 0;
  const auto cnf = pigeonhole_cnf(6, num_vars);

  ProofLog base_proof;
  SolverOptions off = tight_db_options();
  off.gc_fraction = 0.0;
  (void)enumerate_all(cnf, num_vars, off, &base_proof);

  ProofLog gc_proof;
  SolverOptions forced = tight_db_options();
  forced.gc_every_conflicts = 2;
  const EnumerationTrace gc = enumerate_all(cnf, num_vars, forced, &gc_proof);

  ASSERT_GT(gc.stats.arena_gcs, 0U);
  ASSERT_GT(gc.stats.deleted_clauses, 0U)
      << "learnt-DB reduction never fired; the GC had nothing to collect";
  // Deletions are identified by literal content, so relocation must be
  // invisible in the proof stream.
  EXPECT_EQ(base_proof.text(), gc_proof.text());

  cert::CheckOptions check;
  check.require_global_unsat = true;
  const cert::CheckResult result = cert::check_proof(gc_proof.text(), check);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.concluded_global_unsat);
}

TEST(ClauseGc, CompactionReclaimsArenaSpace) {
  std::uint32_t num_vars = 0;
  const auto cnf = pigeonhole_cnf(7, num_vars);

  SolverOptions forced = tight_db_options();
  forced.gc_every_conflicts = 16;
  Solver solver(forced);
  for (Var v = 0; v < num_vars; ++v) solver.new_var();
  for (const auto& clause : cnf) ASSERT_TRUE(solver.add_clause(clause));
  EXPECT_EQ(solver.solve(), Solver::Result::Unsat);
  EXPECT_GT(solver.stats().arena_gcs, 0U);
  EXPECT_GT(solver.stats().deleted_clauses, 0U);
}

}  // namespace
}  // namespace aspmt::asp
