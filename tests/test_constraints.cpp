// Hard latency deadlines and resource capacities.
#include <gtest/gtest.h>

#include <algorithm>

#include "dse/baselines.hpp"
#include "dse/explorer.hpp"
#include "ea/nsga2.hpp"
#include "synth_fixtures.hpp"
#include "synth/validator.hpp"

namespace aspmt::dse {
namespace {

TEST(LatencyBound, FrontContainsOnlyFeasiblePoints) {
  synth::Specification spec = test::chain3_bus();
  const ExploreResult unconstrained = explore(spec);
  ASSERT_TRUE(unconstrained.stats.complete);
  // Pick a bound that cuts the front roughly in half.
  const std::int64_t bound =
      (unconstrained.front.front()[0] + unconstrained.front.back()[0]) / 2;
  spec.latency_bound = bound;
  const ExploreResult constrained = explore(spec);
  ASSERT_TRUE(constrained.stats.complete);
  for (const auto& p : constrained.front) EXPECT_LE(p[0], bound);
  // Every unconstrained front point meeting the bound stays Pareto-optimal.
  for (const auto& p : unconstrained.front) {
    if (p[0] > bound) continue;
    EXPECT_NE(std::find(constrained.front.begin(), constrained.front.end(), p),
              constrained.front.end())
        << pareto::to_string(p);
  }
  for (const auto& w : constrained.witnesses) {
    EXPECT_EQ(synth::validate_implementation(spec, w), "");
  }
}

TEST(LatencyBound, InfeasibleBoundYieldsEmptyFront) {
  synth::Specification spec = test::singleton();
  spec.latency_bound = 1;  // wcet is 4
  const ExploreResult r = explore(spec);
  EXPECT_TRUE(r.stats.complete);
  EXPECT_TRUE(r.front.empty());
}

TEST(LatencyBound, BaselinesAgreeUnderDeadline) {
  synth::Specification spec = test::diamond_two_proc();
  spec.latency_bound = 14;
  const ExploreResult e = explore(spec);
  const BaselineResult b = enumerate_and_filter(spec, 120.0);
  ASSERT_TRUE(e.stats.complete && b.complete);
  EXPECT_EQ(e.front, b.front);
}

TEST(LatencyBound, ValidatorRejectsDeadlineViolation) {
  synth::Specification spec = test::singleton();
  const ExploreResult r = explore(spec);
  ASSERT_EQ(r.witnesses.size(), 1U);
  synth::Implementation impl = r.witnesses[0];
  spec.latency_bound = impl.latency - 1;
  EXPECT_NE(synth::validate_implementation(spec, impl), "");
}

TEST(Capacity, UnitCapacityForcesSpreading) {
  synth::Specification spec = test::diamond_two_proc();
  // Both processors can hold at most 2 of the 4 tasks.
  // (resource ids: 0 = bus, 1 = p0, 2 = p1)
  spec.set_capacity(1, 2);
  spec.set_capacity(2, 2);
  const ExploreResult r = explore(spec);
  ASSERT_TRUE(r.stats.complete);
  ASSERT_FALSE(r.front.empty());
  for (const auto& w : r.witnesses) {
    int on_p0 = 0;
    int on_p1 = 0;
    for (const auto b : w.binding) {
      if (b == 1) ++on_p0;
      if (b == 2) ++on_p1;
    }
    EXPECT_LE(on_p0, 2);
    EXPECT_LE(on_p1, 2);
    EXPECT_EQ(synth::validate_implementation(spec, w), "");
  }
}

TEST(Capacity, ImpossibleCapacityIsUnsat) {
  synth::Specification spec = test::diamond_two_proc();
  spec.set_capacity(1, 1);
  spec.set_capacity(2, 1);  // 4 tasks, 2 slots: infeasible
  const ExploreResult r = explore(spec);
  EXPECT_TRUE(r.stats.complete);
  EXPECT_TRUE(r.front.empty());
}

TEST(Capacity, EnumerationAgrees) {
  synth::Specification spec = test::diamond_two_proc();
  spec.set_capacity(1, 3);
  const ExploreResult e = explore(spec);
  const BaselineResult b = enumerate_and_filter(spec, 120.0);
  ASSERT_TRUE(e.stats.complete && b.complete);
  EXPECT_EQ(e.front, b.front);
}

TEST(Capacity, EaRespectsConstraints) {
  synth::Specification spec = test::diamond_two_proc();
  spec.set_capacity(1, 2);
  spec.set_capacity(2, 2);
  spec.latency_bound = 30;
  ea::Nsga2Options opts;
  opts.population = 16;
  opts.generations = 10;
  const ea::Nsga2Result r = ea::nsga2(spec, opts);
  const ExploreResult exact = explore(spec);
  ASSERT_TRUE(exact.stats.complete);
  for (const auto& p : r.front) {
    bool covered = false;
    for (const auto& q : exact.front) {
      covered = covered || pareto::weakly_dominates(q, p);
    }
    EXPECT_TRUE(covered);
  }
}

}  // namespace
}  // namespace aspmt::dse
