#include "synth/encoder.hpp"

#include <gtest/gtest.h>

#include "dse/context.hpp"
#include "synth_fixtures.hpp"
#include "synth/validator.hpp"

namespace aspmt::synth {
namespace {

TEST(Encoder, SingletonHasUniqueSolution) {
  const Specification spec = test::singleton();
  dse::SynthContext ctx(spec);
  ASSERT_EQ(ctx.solver.solve(), asp::Solver::Result::Sat);
  const Implementation impl = ctx.capture().implementation();
  EXPECT_EQ(impl.binding[0], 0U);
  EXPECT_EQ(impl.start[0], 0);
  EXPECT_EQ(impl.latency, 4);
  EXPECT_EQ(impl.energy, 2);
  EXPECT_EQ(impl.cost, 3);
  EXPECT_EQ(validate_implementation(spec, impl), "");
}

TEST(Encoder, TwoProcDecodesValidImplementation) {
  const Specification spec = test::two_proc_bus();
  dse::SynthContext ctx(spec);
  ASSERT_EQ(ctx.solver.solve(), asp::Solver::Result::Sat);
  const Implementation impl = ctx.capture().implementation();
  EXPECT_EQ(validate_implementation(spec, impl), "") << impl.describe(spec);
}

TEST(Encoder, SameResourceBindingHasEmptyRoute) {
  const Specification spec = test::two_proc_bus();
  dse::SynthContext ctx(spec);
  // Force both tasks onto p0 (option 0 of each task).
  ASSERT_TRUE(ctx.solver.add_clause(
      {ctx.encoding.lit(ctx.encoding.bind_atom[0][0])}));
  ASSERT_TRUE(ctx.solver.add_clause(
      {ctx.encoding.lit(ctx.encoding.bind_atom[1][0])}));
  ASSERT_EQ(ctx.solver.solve(), asp::Solver::Result::Sat);
  const Implementation impl = ctx.capture().implementation();
  EXPECT_TRUE(impl.route[0].empty());
  // Serial execution on one resource: latency = 3 + 2.
  EXPECT_EQ(impl.latency, 5);
  // Cost: only p0 allocated.
  EXPECT_EQ(impl.cost, 10);
  EXPECT_EQ(validate_implementation(spec, impl), "");
}

TEST(Encoder, CrossBindingRoutesOverBus) {
  const Specification spec = test::two_proc_bus();
  dse::SynthContext ctx(spec);
  // a on p0 (option 0), b on p1 (option 1).
  ASSERT_TRUE(ctx.solver.add_clause(
      {ctx.encoding.lit(ctx.encoding.bind_atom[0][0])}));
  ASSERT_TRUE(ctx.solver.add_clause(
      {ctx.encoding.lit(ctx.encoding.bind_atom[1][1])}));
  ASSERT_EQ(ctx.solver.solve(), asp::Solver::Result::Sat);
  const Implementation impl = ctx.capture().implementation();
  ASSERT_EQ(impl.route[0].size(), 2U);  // p0 -> bus -> p1
  EXPECT_EQ(validate_implementation(spec, impl), "");
  // Latency: 3 (wcet a) + 2 hops * payload 2 * delay 1 = 4, then wcet b = 4
  // -> start(b) >= 7, latency = 11.
  EXPECT_EQ(impl.latency, 11);
  // Energy: 4 (a on p0) + 1 (b on p1) + 2 hops * 2 payload = 9.
  EXPECT_EQ(impl.energy, 9);
  // Cost: p0 + bus + p1 = 10 + 1 + 5.
  EXPECT_EQ(impl.cost, 16);
}

TEST(Encoder, HopBoundRespected) {
  const Specification spec = test::two_proc_bus();
  dse::SynthContext ctx(spec);
  EXPECT_EQ(ctx.encoding.hops, 2U);
}

TEST(Encoder, DecisionLiteralsCoverGuessedAtoms) {
  const Specification spec = test::diamond_two_proc();
  dse::SynthContext ctx(spec);
  // 4 tasks * 2 binding options, plus steps and prec atoms.
  EXPECT_GE(ctx.encoding.decision_lits.size(), 8U);
}

TEST(Encoder, ProgramIsTight) {
  const Specification spec = test::chain3_bus();
  dse::SynthContext ctx(spec);
  EXPECT_TRUE(ctx.encoding.compiled.tight);
}

TEST(Encoder, SerializationForcedOnSharedResource) {
  const Specification spec = test::diamond_two_proc();
  dse::SynthContext ctx(spec);
  // Force b and c onto the same processor: some prec atom between them must
  // then be true in every model.
  const auto& enc = ctx.encoding;
  ASSERT_TRUE(ctx.solver.add_clause({enc.lit(enc.bind_atom[1][0])}));
  ASSERT_TRUE(ctx.solver.add_clause({enc.lit(enc.bind_atom[2][0])}));
  ASSERT_EQ(ctx.solver.solve(), asp::Solver::Result::Sat);
  bool found_pair = false;
  for (const auto& pp : enc.prec_pairs) {
    if ((pp.t1 == 1 && pp.t2 == 2)) {
      found_pair = true;
      const bool p12 = ctx.solver.model_value(enc.lit(pp.t1_first).var());
      const bool p21 = ctx.solver.model_value(enc.lit(pp.t2_first).var());
      EXPECT_TRUE(p12 != p21);  // exactly one direction
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(Encoder, ObjectivesRegisteredInCanonicalOrder) {
  const Specification spec = test::two_proc_bus();
  dse::SynthContext ctx(spec);
  ASSERT_EQ(ctx.objectives.count(), 3U);
  EXPECT_EQ(ctx.objectives.name(0), "latency");
  EXPECT_EQ(ctx.objectives.name(1), "energy");
  EXPECT_EQ(ctx.objectives.name(2), "cost");
}

TEST(Encoder, CapturedVectorMatchesImplementation) {
  const Specification spec = test::chain3_bus();
  dse::SynthContext ctx(spec);
  ASSERT_EQ(ctx.solver.solve(), asp::Solver::Result::Sat);
  EXPECT_EQ(ctx.capture().vector(), ctx.capture().implementation().objectives());
}

}  // namespace
}  // namespace aspmt::synth
