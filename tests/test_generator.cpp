#include "gen/generator.hpp"

#include <gtest/gtest.h>

namespace aspmt::gen {
namespace {

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig c;
  c.seed = 42;
  c.tasks = 8;
  const auto a = generate(c);
  const auto b = generate(c);
  EXPECT_EQ(summarize(a), summarize(b));
  ASSERT_EQ(a.mappings().size(), b.mappings().size());
  for (std::size_t i = 0; i < a.mappings().size(); ++i) {
    EXPECT_EQ(a.mappings()[i].resource, b.mappings()[i].resource);
    EXPECT_EQ(a.mappings()[i].wcet, b.mappings()[i].wcet);
    EXPECT_EQ(a.mappings()[i].energy, b.mappings()[i].energy);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig c1;
  c1.seed = 1;
  c1.tasks = 10;
  GeneratorConfig c2 = c1;
  c2.seed = 2;
  // Either the structure or the numbers must differ somewhere.
  const auto a = generate(c1);
  const auto b = generate(c2);
  bool differs = a.messages().size() != b.messages().size() ||
                 a.mappings().size() != b.mappings().size();
  if (!differs) {
    for (std::size_t i = 0; i < a.mappings().size(); ++i) {
      if (a.mappings()[i].wcet != b.mappings()[i].wcet ||
          a.mappings()[i].resource != b.mappings()[i].resource) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

class EveryArchitecture : public ::testing::TestWithParam<Architecture> {};

TEST_P(EveryArchitecture, GeneratesValidSpecs) {
  GeneratorConfig c;
  c.architecture = GetParam();
  c.tasks = 7;
  c.seed = 11;
  c.options_per_task = 3;
  const auto spec = generate(c);
  EXPECT_EQ(spec.validate(), "");
  EXPECT_EQ(spec.tasks().size(), 7U);
  // Layered DAG: at least tasks - first layer messages exist.
  EXPECT_GE(spec.messages().size(), 4U);
}

INSTANTIATE_TEST_SUITE_P(Archs, EveryArchitecture,
                         ::testing::Values(Architecture::SharedBus,
                                           Architecture::Mesh2x2,
                                           Architecture::Mesh3x3));

TEST(Generator, ProcessorCounts) {
  GeneratorConfig c;
  c.architecture = Architecture::SharedBus;
  c.bus_processors = 5;
  EXPECT_EQ(processor_count(c), 5U);
  c.architecture = Architecture::Mesh2x2;
  EXPECT_EQ(processor_count(c), 4U);
  c.architecture = Architecture::Mesh3x3;
  EXPECT_EQ(processor_count(c), 9U);
}

TEST(Generator, OptionsPerTaskClampedToProcessors) {
  GeneratorConfig c;
  c.architecture = Architecture::SharedBus;
  c.bus_processors = 2;
  c.options_per_task = 10;
  c.tasks = 3;
  const auto spec = generate(c);
  for (synth::TaskId t = 0; t < spec.tasks().size(); ++t) {
    EXPECT_EQ(spec.mappings_of(t).size(), 2U);
    // Options must target distinct processors.
    EXPECT_NE(spec.mappings()[spec.mappings_of(t)[0]].resource,
              spec.mappings()[spec.mappings_of(t)[1]].resource);
  }
}

TEST(Generator, MessagesAreForwardEdges) {
  GeneratorConfig c;
  c.tasks = 12;
  c.layers = 4;
  c.extra_edge_density = 0.5;
  c.seed = 3;
  const auto spec = generate(c);
  // The generator only creates src < dst edges, so the graph is a DAG.
  for (const auto& m : spec.messages()) {
    EXPECT_LT(m.src, m.dst);
  }
}

TEST(Generator, DagAcyclicViaTopologicalCheck) {
  GeneratorConfig c;
  c.tasks = 10;
  c.layers = 3;
  c.seed = 9;
  const auto spec = generate(c);
  // src < dst for every message implies acyclicity; double-check the
  // layering property: consumer layer strictly above producer layer.
  EXPECT_EQ(spec.validate(), "");
}

TEST(Generator, MultipleApplicationsAreDisjointDags) {
  GeneratorConfig c;
  c.tasks = 9;
  c.applications = 3;
  c.layers = 2;
  c.seed = 21;
  const auto spec = generate(c);
  EXPECT_EQ(spec.validate(), "");
  EXPECT_EQ(spec.tasks().size(), 9U);
  // Task names carry their application; messages never cross applications.
  auto app_of = [&](synth::TaskId t) {
    return spec.tasks()[t].name.substr(0, 2);  // "a0", "a1", "a2"
  };
  for (const auto& m : spec.messages()) {
    EXPECT_EQ(app_of(m.src), app_of(m.dst));
  }
}

TEST(Generator, MultiAppStillExplorable) {
  GeneratorConfig c;
  c.tasks = 6;
  c.applications = 2;
  c.seed = 5;
  const auto spec = generate(c);
  EXPECT_EQ(spec.validate(), "");
}

TEST(Generator, SummaryMentionsKeyQuantities) {
  GeneratorConfig c;
  c.tasks = 5;
  const auto spec = generate(c);
  const std::string s = summarize(spec);
  EXPECT_NE(s.find("T=5"), std::string::npos);
  EXPECT_NE(s.find("H="), std::string::npos);
}

}  // namespace
}  // namespace aspmt::gen
