// Budget / cancellation-token semantics: first trip wins, peer completion
// records no failure, ceilings trip the token from poll(), and the
// explorers surface the structured StopReason instead of a bare bool.
#include "dse/budget.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "dse/explorer.hpp"
#include "dse/parallel_explorer.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::dse {
namespace {

TEST(Budget, FirstTripWinsTheReasonRace) {
  Budget b;
  EXPECT_FALSE(b.stop_requested());
  b.trip(StopReason::Conflicts);
  b.trip(StopReason::Memory);  // too late; the first reason is kept
  b.interrupt();
  EXPECT_TRUE(b.stop_requested());
  EXPECT_TRUE(b.tripped());
  EXPECT_EQ(b.finish(false), StopReason::Conflicts);
}

TEST(Budget, CompletionWinsOverEveryTrip) {
  Budget b;
  b.trip(StopReason::Deadline);
  EXPECT_EQ(b.finish(true), StopReason::Completed);
}

TEST(Budget, RequestStopRecordsNoFailure) {
  Budget b;
  b.request_stop();  // a peer finished; nothing went wrong
  EXPECT_TRUE(b.stop_requested());
  EXPECT_FALSE(b.tripped());
  // An un-tripped, un-expired stop can only have been external.
  EXPECT_EQ(b.finish(false), StopReason::Interrupted);
}

TEST(Budget, ConflictCeilingTripsOnPoll) {
  Budget b(BudgetLimits{0.0, 100, 0});
  b.add_conflicts(99);
  b.poll();
  EXPECT_FALSE(b.stop_requested());
  b.add_conflicts(1);
  b.poll();
  EXPECT_TRUE(b.stop_requested());
  EXPECT_EQ(b.finish(false), StopReason::Conflicts);
}

TEST(Budget, MemoryCeilingTripsOnPoll) {
  ASSERT_GT(peak_rss_mb(), 0) << "RSS probe unavailable on this platform";
  Budget b(BudgetLimits{0.0, 0, 1});  // 1 MiB: any real process exceeds it
  b.poll();
  EXPECT_TRUE(b.stop_requested());
  EXPECT_EQ(b.finish(false), StopReason::Memory);
}

TEST(Budget, UnlimitedBudgetNeverTrips) {
  Budget b;
  b.add_conflicts(1'000'000);
  b.poll();
  EXPECT_FALSE(b.stop_requested());
  EXPECT_EQ(b.finish(true), StopReason::Completed);
}

TEST(Budget, StopReasonNamesAreStable) {
  EXPECT_EQ(std::string(to_string(StopReason::Completed)), "completed");
  EXPECT_EQ(std::string(to_string(StopReason::Deadline)), "deadline");
  EXPECT_EQ(std::string(to_string(StopReason::Conflicts)), "conflicts");
  EXPECT_EQ(std::string(to_string(StopReason::Memory)), "memory");
  EXPECT_EQ(std::string(to_string(StopReason::Interrupted)), "interrupted");
  EXPECT_EQ(std::string(to_string(StopReason::WorkerFailure)),
            "worker-failure");
}

TEST(Budget, SequentialExplorerReportsCompleted) {
  const ExploreResult r = explore(test::chain3_bus());
  ASSERT_TRUE(r.stats.complete);
  EXPECT_EQ(r.stats.reason, StopReason::Completed);
  EXPECT_TRUE(r.errors.empty());
}

TEST(Budget, SequentialConflictBudgetStopsEarly) {
  ExploreOptions opts;
  opts.common.conflict_budget = 1;  // trip on the first monitor poll
  opts.common.solver_options.monitor_interval = 1;
  const ExploreResult r = explore(test::diamond_two_proc(), opts);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.reason, StopReason::Conflicts);
}

TEST(Budget, SequentialDeadlineStopsEarly) {
  ExploreOptions opts;
  opts.common.time_limit_seconds = 1e-9;
  const ExploreResult r = explore(test::diamond_two_proc(), opts);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.reason, StopReason::Deadline);
}

TEST(Budget, ExternalInterruptStopsBothExplorers) {
  // Trip the token before the run starts: the solvers must exit at their
  // first stop-token check and report Interrupted, not Completed.
  Budget budget;
  budget.interrupt();
  ExploreOptions seq;
  seq.common.budget = &budget;
  const ExploreResult r = explore(test::chain3_bus(), seq);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.reason, StopReason::Interrupted);

  ParallelExploreOptions par;
  par.threads = 2;
  par.common.budget = &budget;
  const ParallelExploreResult p = explore_parallel(test::chain3_bus(), par);
  EXPECT_FALSE(p.base.stats.complete);
  EXPECT_EQ(p.base.stats.reason, StopReason::Interrupted);
  EXPECT_TRUE(p.worker_errors.empty());
}

TEST(Budget, AsyncInterruptFromAnotherThread) {
  // A peer thread trips the token mid-run (the signal-handler code path).
  // The run must wind down cleanly with a valid partial front.
  Budget budget;
  std::thread killer([&budget] { budget.interrupt(); });
  ParallelExploreOptions opts;
  opts.threads = 4;
  opts.common.budget = &budget;
  const ParallelExploreResult r =
      explore_parallel(test::diamond_two_proc(), opts);
  killer.join();
  EXPECT_TRUE(r.worker_errors.empty());
  if (!r.base.stats.complete) {
    EXPECT_EQ(r.base.stats.reason, StopReason::Interrupted);
  }
  // Whatever was found is mutually non-dominated (archive invariant).
  for (std::size_t i = 0; i < r.base.front.size(); ++i) {
    for (std::size_t j = 0; j < r.base.front.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(pareto::weakly_dominates(r.base.front[j], r.base.front[i]));
      }
    }
  }
}

TEST(Budget, ParallelConflictBudgetIsSharedAcrossWorkers) {
  ParallelExploreOptions opts;
  opts.threads = 2;
  opts.common.conflict_budget = 1;
  opts.common.solver_options.monitor_interval = 1;
  const ParallelExploreResult r =
      explore_parallel(test::diamond_two_proc(), opts);
  // The tiny fixture may still complete before the first poll; when it does
  // not, the structured reason must say why.
  if (!r.base.stats.complete) {
    EXPECT_EQ(r.base.stats.reason, StopReason::Conflicts);
  }
}

}  // namespace
}  // namespace aspmt::dse
