#include "dse/explorer.hpp"

#include <gtest/gtest.h>

#include "dse/baselines.hpp"
#include "synth_fixtures.hpp"
#include "synth/validator.hpp"

namespace aspmt::dse {
namespace {

TEST(Explorer, SingletonFrontIsTheOnlyPoint) {
  const synth::Specification spec = test::singleton();
  const ExploreResult r = explore(spec);
  ASSERT_TRUE(r.stats.complete);
  ASSERT_EQ(r.front.size(), 1U);
  EXPECT_EQ(r.front[0], (pareto::Vec{4, 2, 3}));
}

TEST(Explorer, TwoProcFrontMatchesEnumeration) {
  const synth::Specification spec = test::two_proc_bus();
  const ExploreResult r = explore(spec);
  ASSERT_TRUE(r.stats.complete);
  const BaselineResult b = enumerate_and_filter(spec);
  ASSERT_TRUE(b.complete);
  EXPECT_EQ(r.front, b.front);
  EXPECT_GE(r.front.size(), 2U);  // heterogeneity must create a trade-off
}

TEST(Explorer, WitnessesAreFeasibleAndMatchFront) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult r = explore(spec);
  ASSERT_TRUE(r.stats.complete);
  ASSERT_EQ(r.witnesses.size(), r.front.size());
  for (std::size_t i = 0; i < r.front.size(); ++i) {
    EXPECT_EQ(synth::validate_implementation(spec, r.witnesses[i]), "");
    EXPECT_EQ(r.witnesses[i].objectives(), r.front[i]);
  }
}

TEST(Explorer, FrontIsMutuallyNonDominated) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult r = explore(spec);
  for (std::size_t i = 0; i < r.front.size(); ++i) {
    for (std::size_t j = 0; j < r.front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(pareto::weakly_dominates(r.front[i], r.front[j]))
          << pareto::to_string(r.front[i]) << " vs "
          << pareto::to_string(r.front[j]);
    }
  }
}

TEST(Explorer, ChainFrontMatchesEnumeration) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult r = explore(spec);
  const BaselineResult b = enumerate_and_filter(spec);
  ASSERT_TRUE(r.stats.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_EQ(r.front, b.front);
}

TEST(Explorer, DiamondFrontMatchesEnumeration) {
  const synth::Specification spec = test::diamond_two_proc();
  const ExploreResult r = explore(spec);
  const BaselineResult b = enumerate_and_filter(spec, /*time_limit=*/120.0);
  ASSERT_TRUE(r.stats.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_EQ(r.front, b.front);
}

TEST(Explorer, ArchiveKindsAgree) {
  const synth::Specification spec = test::chain3_bus();
  ExploreOptions quad;
  quad.common.archive_kind = "quadtree";
  ExploreOptions lin;
  lin.common.archive_kind = "linear";
  const ExploreResult r1 = explore(spec, quad);
  const ExploreResult r2 = explore(spec, lin);
  EXPECT_EQ(r1.front, r2.front);
  EXPECT_TRUE(r1.stats.complete && r2.stats.complete);
}

TEST(Explorer, PartialEvaluationAblationSameFront) {
  const synth::Specification spec = test::chain3_bus();
  ExploreOptions off;
  off.common.partial_evaluation = false;
  const ExploreResult with_pe = explore(spec);
  const ExploreResult without_pe = explore(spec, off);
  ASSERT_TRUE(with_pe.stats.complete && without_pe.stats.complete);
  EXPECT_EQ(with_pe.front, without_pe.front);
}

TEST(Explorer, FloorsOffSameFront) {
  const synth::Specification spec = test::chain3_bus();
  ExploreOptions no_floors;
  no_floors.common.objective_floors = false;
  const ExploreResult with_floors = explore(spec);
  const ExploreResult without_floors = explore(spec, no_floors);
  ASSERT_TRUE(with_floors.stats.complete && without_floors.stats.complete);
  EXPECT_EQ(with_floors.front, without_floors.front);
}

TEST(Explorer, DrillDownOffSameFront) {
  const synth::Specification spec = test::chain3_bus();
  ExploreOptions no_drill;
  no_drill.common.drill_down = false;
  const ExploreResult with_drill = explore(spec);
  const ExploreResult without_drill = explore(spec, no_drill);
  ASSERT_TRUE(with_drill.stats.complete && without_drill.stats.complete);
  EXPECT_EQ(with_drill.front, without_drill.front);
}

TEST(Explorer, EpsilonZeroMatchesExact) {
  const synth::Specification spec = test::chain3_bus();
  ExploreOptions eps0;
  eps0.epsilon = pareto::Vec{0, 0, 0};
  const ExploreResult exact = explore(spec);
  const ExploreResult approx = explore(spec, eps0);
  ASSERT_TRUE(exact.stats.complete && approx.stats.complete);
  EXPECT_EQ(exact.front, approx.front);
}

TEST(Explorer, EpsilonCoversTheExactFront) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult exact = explore(spec);
  ASSERT_TRUE(exact.stats.complete);
  ExploreOptions opts;
  opts.epsilon = pareto::Vec{2, 6, 3};
  const ExploreResult approx = explore(spec, opts);
  ASSERT_TRUE(approx.stats.complete);
  EXPECT_LE(approx.front.size(), exact.front.size());
  for (const auto& q : exact.front) {
    bool covered = false;
    for (const auto& p : approx.front) {
      bool le = true;
      for (std::size_t o = 0; o < 3; ++o) {
        if (p[o] > q[o] + opts.epsilon[o]) le = false;
      }
      covered = covered || le;
    }
    EXPECT_TRUE(covered) << pareto::to_string(q);
  }
}

TEST(Explorer, HugeEpsilonReturnsSinglePoint) {
  const synth::Specification spec = test::chain3_bus();
  ExploreOptions opts;
  opts.epsilon = pareto::Vec{1000000, 1000000, 1000000};
  const ExploreResult r = explore(spec, opts);
  ASSERT_TRUE(r.stats.complete);
  // With drill-down the single survivor is still a true Pareto point.
  EXPECT_EQ(r.front.size(), 1U);
  const ExploreResult exact = explore(spec);
  EXPECT_NE(std::find(exact.front.begin(), exact.front.end(), r.front[0]),
            exact.front.end());
}

TEST(Explorer, EveryModelEntersTheArchive) {
  // With dominance propagation, no accepted model may be dominated, so the
  // number of accepted models >= |front| and every front point stems from a
  // model.
  const synth::Specification spec = test::two_proc_bus();
  const ExploreResult r = explore(spec);
  EXPECT_GE(r.stats.models, r.front.size());
}

TEST(WitnessEnumeration, AllWitnessesValidateAndHitThePoint) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult r = explore(spec);
  ASSERT_TRUE(r.stats.complete);
  for (const auto& p : r.front) {
    const WitnessEnumeration w = enumerate_witnesses(spec, p);
    ASSERT_TRUE(w.complete);
    ASSERT_FALSE(w.implementations.empty());
    for (const auto& impl : w.implementations) {
      EXPECT_EQ(synth::validate_implementation(spec, impl), "");
      EXPECT_EQ(impl.objectives(), p);
    }
  }
}

TEST(WitnessEnumeration, CountsMatchFullEnumeration) {
  const synth::Specification spec = test::two_proc_bus();
  const ExploreResult r = explore(spec);
  ASSERT_TRUE(r.stats.complete);
  // Cross-check witness counts against the enumerate-everything baseline.
  std::size_t total_models = 0;
  {
    const BaselineResult all = enumerate_and_filter(spec);
    ASSERT_TRUE(all.complete);
    total_models = all.models;
  }
  std::size_t sum = 0;
  for (const auto& p : r.front) {
    const WitnessEnumeration w = enumerate_witnesses(spec, p);
    ASSERT_TRUE(w.complete);
    sum += w.implementations.size();
  }
  // Every implementation hits exactly one objective vector; front vectors
  // are a subset of all vectors, so front witnesses <= all implementations.
  EXPECT_LE(sum, total_models);
  EXPECT_GE(sum, r.front.size());
}

TEST(WitnessEnumeration, LimitShortCircuits) {
  const synth::Specification spec = test::diamond_two_proc();
  const ExploreResult r = explore(spec);
  ASSERT_TRUE(r.stats.complete);
  const WitnessEnumeration w = enumerate_witnesses(spec, r.front.front(), 1);
  EXPECT_EQ(w.implementations.size(), 1U);
}

TEST(Explorer, TimeoutReportsIncomplete) {
  const synth::Specification spec = test::diamond_two_proc();
  ExploreOptions opts;
  opts.common.time_limit_seconds = 1e-9;
  const ExploreResult r = explore(spec, opts);
  EXPECT_FALSE(r.stats.complete);
}

TEST(Explorer, StatsPopulated) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult r = explore(spec);
  EXPECT_GT(r.stats.models, 0U);
  EXPECT_GT(r.stats.decisions, 0U);
  EXPECT_GT(r.stats.seconds, 0.0);
  EXPECT_GT(r.stats.prunings, 0U);
}

}  // namespace
}  // namespace aspmt::dse
