// The parallel portfolio explorer is an *exact* method: whatever the thread
// count, the front must be point-for-point identical to the sequential
// explorer's.  These tests enforce that for every synth fixture at 1, 2 and
// 4 workers, and check that the aggregated ExploreStats are internally
// consistent with the per-worker reports.
#include "dse/parallel_explorer.hpp"

#include <gtest/gtest.h>

#include "dse/explorer.hpp"
#include "synth_fixtures.hpp"
#include "synth/validator.hpp"

namespace aspmt::dse {
namespace {

struct Fixture {
  const char* name;
  synth::Specification spec;
};

std::vector<Fixture> fixtures() {
  std::vector<Fixture> f;
  f.push_back({"singleton", test::singleton()});
  f.push_back({"two_proc_bus", test::two_proc_bus()});
  f.push_back({"chain3_bus", test::chain3_bus()});
  f.push_back({"diamond_two_proc", test::diamond_two_proc()});
  return f;
}

TEST(ParallelExplorer, FrontMatchesSequentialAtEveryThreadCount) {
  for (const Fixture& f : fixtures()) {
    const ExploreResult seq = explore(f.spec);
    ASSERT_TRUE(seq.stats.complete) << f.name;
    for (const std::size_t threads : {1U, 2U, 4U}) {
      ParallelExploreOptions opts;
      opts.threads = threads;
      const ParallelExploreResult par = explore_parallel(f.spec, opts);
      ASSERT_TRUE(par.base.stats.complete) << f.name << " @" << threads;
      EXPECT_EQ(par.base.front, seq.front) << f.name << " @" << threads;
    }
  }
}

TEST(ParallelExplorer, WitnessesValidateAndMatchTheFront) {
  for (const Fixture& f : fixtures()) {
    ParallelExploreOptions opts;
    opts.threads = 4;
    const ParallelExploreResult r = explore_parallel(f.spec, opts);
    ASSERT_TRUE(r.base.stats.complete) << f.name;
    ASSERT_EQ(r.base.witnesses.size(), r.base.front.size()) << f.name;
    for (std::size_t i = 0; i < r.base.front.size(); ++i) {
      EXPECT_EQ(synth::validate_implementation(f.spec, r.base.witnesses[i]), "")
          << f.name;
      EXPECT_EQ(r.base.witnesses[i].objectives(), r.base.front[i]) << f.name;
    }
  }
}

TEST(ParallelExplorer, StatsAreInternallyConsistent) {
  for (const Fixture& f : fixtures()) {
    for (const std::size_t threads : {1U, 2U, 4U}) {
      ParallelExploreOptions opts;
      opts.threads = threads;
      const ParallelExploreResult r = explore_parallel(f.spec, opts);
      ASSERT_TRUE(r.base.stats.complete) << f.name << " @" << threads;
      ASSERT_EQ(r.workers.size(), threads) << f.name;

      std::uint64_t models = 0;
      std::uint64_t inserts = 0;
      std::uint64_t prunings = 0;
      bool someone_proved = false;
      for (const WorkerReport& w : r.workers) {
        // Every accepted model was either published or beaten by a peer.
        EXPECT_EQ(w.shared_inserts + w.rejected_inserts, w.models)
            << f.name << " worker " << w.worker;
        EXPECT_LE(w.slice_models, w.models) << f.name;
        models += w.models;
        inserts += w.shared_inserts;
        prunings += w.prunings;
        someone_proved = someone_proved || w.proved_complete;
      }
      EXPECT_TRUE(someone_proved) << f.name << " @" << threads;
      EXPECT_EQ(r.base.stats.models, models) << f.name << " @" << threads;
      EXPECT_EQ(r.base.stats.prunings, prunings) << f.name << " @" << threads;
      // Each front point entered the shared archive exactly once; evicted
      // interim points account for the rest.
      EXPECT_GE(inserts, r.base.front.size()) << f.name << " @" << threads;
      EXPECT_GE(r.base.stats.models, r.base.front.size()) << f.name << " @" << threads;
      EXPECT_EQ(r.base.discoveries.size(), inserts) << f.name << " @" << threads;
    }
  }
}

TEST(ParallelExplorer, RepeatedRunsReturnTheSameFront) {
  const synth::Specification spec = test::chain3_bus();
  ParallelExploreOptions opts;
  opts.threads = 4;
  const ParallelExploreResult a = explore_parallel(spec, opts);
  const ParallelExploreResult b = explore_parallel(spec, opts);
  ASSERT_TRUE(a.base.stats.complete && b.base.stats.complete);
  EXPECT_EQ(a.base.front, b.base.front);
}

TEST(ParallelExplorer, SeedChangesTrajectoryNotTheFront) {
  const synth::Specification spec = test::diamond_two_proc();
  ParallelExploreOptions a;
  a.threads = 2;
  a.seed = 1;
  ParallelExploreOptions b;
  b.threads = 2;
  b.seed = 424242;
  const ParallelExploreResult ra = explore_parallel(spec, a);
  const ParallelExploreResult rb = explore_parallel(spec, b);
  ASSERT_TRUE(ra.base.stats.complete && rb.base.stats.complete);
  EXPECT_EQ(ra.base.front, rb.base.front);
}

TEST(ParallelExplorer, TimeoutReportsIncomplete) {
  const synth::Specification spec = test::diamond_two_proc();
  ParallelExploreOptions opts;
  opts.threads = 2;
  opts.common.time_limit_seconds = 1e-9;
  const ParallelExploreResult r = explore_parallel(spec, opts);
  EXPECT_FALSE(r.base.stats.complete);
}

TEST(ParallelExplorer, LinearArchiveKindAgrees) {
  const synth::Specification spec = test::chain3_bus();
  ParallelExploreOptions lin;
  lin.threads = 2;
  lin.common.archive_kind = "linear";
  const ParallelExploreResult a = explore_parallel(spec, lin);
  const ExploreResult seq = explore(spec);
  ASSERT_TRUE(a.base.stats.complete && seq.stats.complete);
  EXPECT_EQ(a.base.front, seq.front);
}

TEST(ParallelExplorer, InfeasibleSpecYieldsEmptyCompleteFront) {
  synth::Specification spec = test::two_proc_bus();
  spec.latency_bound = 1;  // nothing fits under a 1-cycle deadline
  ParallelExploreOptions opts;
  opts.threads = 2;
  const ParallelExploreResult r = explore_parallel(spec, opts);
  EXPECT_TRUE(r.base.stats.complete);
  EXPECT_TRUE(r.base.front.empty());
}

}  // namespace
}  // namespace aspmt::dse
