// Differential property test for assumption-based solving: for a random
// CNF and a random assumption set, solve(assumptions) on one incremental
// solver must agree with a scratch solver that receives the same
// assumptions as unit clauses — and the incremental solver must stay
// reusable (a later unconstrained solve still matches brute force).
// Seeds honour ASPMT_TEST_SEED (see test_util.hpp).
#include <gtest/gtest.h>

#include "asp/solver.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace aspmt::asp {
namespace {

Lit L(Var v, bool s = true) { return Lit::make(v, s); }

class AssumptionDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssumptionDiff, AssumptionsEquivalentToUnitClauses) {
  const std::uint64_t seed = test::fuzz_seed(GetParam());
  util::Rng rng(seed * 6151 + 29);

  const std::uint32_t n = 8 + static_cast<std::uint32_t>(rng.below(4));
  const std::uint32_t num_clauses =
      2 * n + static_cast<std::uint32_t>(rng.below(3 * n));
  std::vector<std::vector<Lit>> cnf;
  cnf.reserve(num_clauses);
  for (std::uint32_t c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    const int width = 2 + static_cast<int>(rng.below(2));  // 2- and 3-clauses
    for (int k = 0; k < width; ++k) {
      clause.push_back(L(static_cast<Var>(rng.below(n)), rng.chance(0.5)));
    }
    cnf.push_back(std::move(clause));
  }
  std::vector<Lit> assumptions;
  const std::size_t num_assumptions = 1 + rng.below(3);
  for (std::size_t a = 0; a < num_assumptions; ++a) {
    assumptions.push_back(L(static_cast<Var>(rng.below(n)), rng.chance(0.5)));
  }

  Solver incremental;
  for (std::uint32_t i = 0; i < n; ++i) incremental.new_var();
  bool inc_ok = true;
  for (const auto& clause : cnf) inc_ok = incremental.add_clause(clause) && inc_ok;

  Solver scratch;
  for (std::uint32_t i = 0; i < n; ++i) scratch.new_var();
  bool scratch_ok = inc_ok;
  for (const auto& clause : cnf) {
    scratch_ok = scratch.add_clause(clause) && scratch_ok;
  }
  for (const Lit a : assumptions) {
    scratch_ok = scratch.add_clause({a}) && scratch_ok;
  }

  const bool incremental_sat =
      inc_ok && incremental.solve(assumptions) == Solver::Result::Sat;
  const bool scratch_sat =
      scratch_ok && scratch.solve() == Solver::Result::Sat;
  EXPECT_EQ(incremental_sat, scratch_sat) << "seed " << seed;
  if (incremental_sat) {
    // The model must honour every assumption, not just exist.
    for (const Lit a : assumptions) {
      EXPECT_EQ(incremental.model_value(a.var()), a.positive())
          << "seed " << seed;
    }
  }

  // Assumptions must leave no residue: the same solver, asked again without
  // them, must agree with brute force on the plain CNF.
  const bool expected = test::brute_force_sat(cnf, n);
  EXPECT_EQ(inc_ok && incremental.solve() == Solver::Result::Sat, expected)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssumptionDiff,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace aspmt::asp
