// Weight rules (BDD expansion) and #minimize.
#include <gtest/gtest.h>

#include <set>

#include "asp/completion.hpp"
#include "asp/program.hpp"
#include "asp/solver.hpp"
#include "asp/unfounded.hpp"
#include "test_util.hpp"
#include "theory/asp_minimize.hpp"
#include "util/rng.hpp"

namespace aspmt::asp {
namespace {

/// Independent weight-rule-aware stable-model evaluator over the ORIGINAL
/// atoms (the Program under test expands weight rules into auxiliaries; this
/// reference never sees them).
struct RefWeightRule {
  Atom head;
  std::int64_t bound;
  std::vector<WeightedBodyLit> body;
};

struct RefProgram {
  std::uint32_t num_atoms = 0;
  std::vector<Rule> rules;  // normal + choice
  std::vector<RefWeightRule> weight_rules;
  std::vector<std::vector<BodyLit>> constraints;
};

std::set<std::vector<bool>> reference_models(const RefProgram& p) {
  std::set<std::vector<bool>> out;
  for (std::uint64_t mask = 0; mask < (1ULL << p.num_atoms); ++mask) {
    const auto in_s = [&](Atom a) { return ((mask >> a) & 1ULL) != 0; };
    bool violated = false;
    for (const auto& body : p.constraints) {
      bool fires = true;
      for (const BodyLit& bl : body) {
        if (in_s(bl.atom) != bl.positive) fires = false;
      }
      if (fires) violated = true;
    }
    if (violated) continue;

    std::vector<bool> derived(p.num_atoms, false);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Rule& r : p.rules) {
        if (derived[r.head]) continue;
        if (r.choice && !in_s(r.head)) continue;
        bool ok = true;
        for (const BodyLit& bl : r.body) {
          if (bl.positive ? !derived[bl.atom] : in_s(bl.atom)) ok = false;
        }
        if (ok) {
          derived[r.head] = true;
          changed = true;
        }
      }
      for (const RefWeightRule& r : p.weight_rules) {
        if (derived[r.head]) continue;
        std::int64_t have = 0;
        for (const WeightedBodyLit& e : r.body) {
          const bool sat =
              e.lit.positive ? derived[e.lit.atom] : !in_s(e.lit.atom);
          if (sat) have += e.weight;
        }
        if (have >= r.bound) {
          derived[r.head] = true;
          changed = true;
        }
      }
    }
    bool stable = true;
    std::vector<bool> candidate(p.num_atoms);
    for (Atom a = 0; a < p.num_atoms; ++a) {
      candidate[a] = in_s(a);
      if (derived[a] != candidate[a]) stable = false;
    }
    if (stable) out.insert(std::move(candidate));
  }
  return out;
}

/// Solve the (expanded) program and project onto the first `n` atoms.
std::set<std::vector<bool>> solve_projected(const Program& program,
                                            std::uint32_t n) {
  const auto full = test::solver_stable_models(program);
  std::set<std::vector<bool>> projected;
  for (const auto& m : full) {
    projected.insert(std::vector<bool>(m.begin(), m.begin() + n));
  }
  EXPECT_EQ(projected.size(), full.size())
      << "weight-rule auxiliaries must be functionally determined";
  return projected;
}

TEST(WeightRules, CardinalityRuleCounts) {
  // {a} {b} {c}.  two :- 2 {a; b; c}.
  Program p;
  RefProgram ref;
  std::vector<Atom> atoms;
  for (const char* n : {"a", "b", "c", "two"}) atoms.push_back(p.new_atom(n));
  ref.num_atoms = 4;
  for (int i = 0; i < 3; ++i) {
    p.choice_rule(atoms[i]);
    ref.rules.push_back(Rule{atoms[i], {}, true});
  }
  p.cardinality_rule(atoms[3], 2, {pos(atoms[0]), pos(atoms[1]), pos(atoms[2])});
  ref.weight_rules.push_back(RefWeightRule{
      atoms[3], 2,
      {{pos(atoms[0]), 1}, {pos(atoms[1]), 1}, {pos(atoms[2]), 1}}});
  const auto got = solve_projected(p, 4);
  EXPECT_EQ(got, reference_models(ref));
  // Sanity: 8 subsets, `two` true in exactly the 4 with >= 2 elements.
  EXPECT_EQ(got.size(), 8U);
  int with_two = 0;
  for (const auto& m : got) with_two += m[3] ? 1 : 0;
  EXPECT_EQ(with_two, 4);
}

TEST(WeightRules, WeightedThreshold) {
  // {a} {b}.  big :- 5 <= #sum {3:a, 4:b}.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  const Atom big = p.new_atom("big");
  p.choice_rule(a);
  p.choice_rule(b);
  p.weight_rule(big, 5, {{pos(a), 3}, {pos(b), 4}});
  const auto got = solve_projected(p, 3);
  // big iff a and b (3+4=7 >= 5; singletons 3,4 < 5).
  std::set<std::vector<bool>> expected{
      {false, false, false}, {true, false, false}, {false, true, false},
      {true, true, true}};
  EXPECT_EQ(got, expected);
}

TEST(WeightRules, NegativeLiteralsContribute) {
  // {a}.  x :- 1 <= #sum {1: not a}.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom x = p.new_atom("x");
  p.choice_rule(a);
  p.weight_rule(x, 1, {{neg(a), 1}});
  const auto got = solve_projected(p, 2);
  std::set<std::vector<bool>> expected{{false, true}, {true, false}};
  EXPECT_EQ(got, expected);
}

TEST(WeightRules, UnreachableBoundNeverFires) {
  Program p;
  const Atom a = p.new_atom("a");
  const Atom x = p.new_atom("x");
  p.choice_rule(a);
  p.weight_rule(x, 10, {{pos(a), 3}});
  const auto got = solve_projected(p, 2);
  for (const auto& m : got) EXPECT_FALSE(m[1]);
}

TEST(WeightRules, ZeroBoundIsFact) {
  Program p;
  const Atom x = p.new_atom("x");
  p.weight_rule(x, 0, {});
  const auto got = solve_projected(p, 1);
  ASSERT_EQ(got.size(), 1U);
  EXPECT_TRUE(got.begin()->at(0));
}

TEST(WeightRules, PositiveRecursionThroughWeightBodyIsUnfounded) {
  // a :- 1 <= #sum {1: b}.   b :- a.   Self-supporting: only {} is stable.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.weight_rule(a, 1, {{pos(b), 1}});
  p.rule(b, {pos(a)});
  const auto got = solve_projected(p, 2);
  ASSERT_EQ(got.size(), 1U);
  EXPECT_EQ(*got.begin(), (std::vector<bool>{false, false}));
}

TEST(WeightRules, PartialSupportThroughLoopStillCounts) {
  // a :- 1 <= #sum {1:b, 1:c}.  b :- a (loop).  c external choice.
  // With c true, a is founded through c even though b loops.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  const Atom c = p.new_atom("c");
  p.weight_rule(a, 1, {{pos(b), 1}, {pos(c), 1}});
  p.rule(b, {pos(a)});
  p.choice_rule(c);
  const auto got = solve_projected(p, 3);
  std::set<std::vector<bool>> expected{{false, false, false},
                                       {true, true, true}};
  EXPECT_EQ(got, expected);
}

// Property: random programs with weight rules match the reference.
class RandomWeightProgram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWeightProgram, MatchesReference) {
  util::Rng rng(GetParam() * 131 + 7);
  Program p;
  RefProgram ref;
  const std::uint32_t n = 5;
  std::vector<Atom> atoms;
  for (std::uint32_t i = 0; i < n; ++i) {
    atoms.push_back(p.new_atom("a" + std::to_string(i)));
  }
  ref.num_atoms = n;
  const std::uint32_t rules = 3 + static_cast<std::uint32_t>(rng.below(4));
  for (std::uint32_t r = 0; r < rules; ++r) {
    const Atom head = atoms[rng.below(n)];
    const int kind = static_cast<int>(rng.below(3));
    if (kind == 0) {
      p.choice_rule(head);
      ref.rules.push_back(Rule{head, {}, true});
    } else if (kind == 1) {
      std::vector<BodyLit> body;
      const std::uint32_t len = static_cast<std::uint32_t>(rng.below(3));
      for (std::uint32_t k = 0; k < len; ++k) {
        body.push_back(BodyLit{atoms[rng.below(n)], rng.chance(0.6)});
      }
      ref.rules.push_back(Rule{head, body, false});
      p.rule(head, std::move(body));
    } else {
      std::vector<WeightedBodyLit> body;
      const std::uint32_t len = 1 + static_cast<std::uint32_t>(rng.below(3));
      for (std::uint32_t k = 0; k < len; ++k) {
        body.push_back(WeightedBodyLit{
            BodyLit{atoms[rng.below(n)], rng.chance(0.6)},
            rng.range(1, 4)});
      }
      const std::int64_t bound = rng.range(1, 6);
      ref.weight_rules.push_back(RefWeightRule{head, bound, body});
      p.weight_rule(head, bound, std::move(body));
    }
  }
  EXPECT_EQ(solve_projected(p, n), reference_models(ref))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWeightProgram,
                         ::testing::Range<std::uint64_t>(0, 50));

TEST(Minimize, FindsTheCheapestModel) {
  // {a} {b} {c}: at least one; costs 5/3/4: optimum is {b} = 3.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  const Atom c = p.new_atom("c");
  for (const Atom x : {a, b, c}) p.choice_rule(x);
  p.integrity({neg(a), neg(b), neg(c)});
  p.minimize({{pos(a), 5}, {pos(b), 3}, {pos(c), 4}});

  Solver solver;
  const CompiledProgram compiled = compile(p, solver);
  UnfoundedSetChecker checker(compiled);
  theory::LinearSumPropagator linear;
  const auto sum = theory::install_minimize(p, compiled, linear);
  solver.add_propagator(&linear);
  solver.add_propagator(&checker);

  const theory::OptimalModel best = theory::minimize_answer_set(solver, linear, sum);
  ASSERT_TRUE(best.feasible);
  ASSERT_TRUE(best.proven);
  EXPECT_EQ(best.cost, 3);
  EXPECT_EQ(best.model[compiled.atom_var[b]], Lbool::True);
  EXPECT_EQ(best.model[compiled.atom_var[a]], Lbool::False);
}

TEST(Minimize, MinimizeWithNegativeLiteralTerms) {
  // {a}. Penalize NOT choosing a: optimum has a true, cost 0.
  Program p;
  const Atom a = p.new_atom("a");
  p.choice_rule(a);
  p.minimize({{neg(a), 7}});
  Solver solver;
  const CompiledProgram compiled = compile(p, solver);
  theory::LinearSumPropagator linear;
  const auto sum = theory::install_minimize(p, compiled, linear);
  solver.add_propagator(&linear);
  const theory::OptimalModel best = theory::minimize_answer_set(solver, linear, sum);
  ASSERT_TRUE(best.feasible && best.proven);
  EXPECT_EQ(best.cost, 0);
  EXPECT_EQ(best.model[compiled.atom_var[a]], Lbool::True);
}

TEST(Minimize, UnsatisfiableProgramReported) {
  Program p;
  const Atom a = p.new_atom("a");
  p.fact(a);
  p.integrity({pos(a)});
  p.minimize({{pos(a), 1}});
  Solver solver;
  const CompiledProgram compiled = compile(p, solver);
  theory::LinearSumPropagator linear;
  const auto sum = theory::install_minimize(p, compiled, linear);
  solver.add_propagator(&linear);
  const theory::OptimalModel best = theory::minimize_answer_set(solver, linear, sum);
  EXPECT_FALSE(best.feasible);
  EXPECT_TRUE(best.proven);
}

TEST(Minimize, LexicographicLevelsOptimizeInPriorityOrder) {
  // {a} {b}: level 1 (high) prefers a false; level 0 prefers b false — but a
  // constraint couples them: :- not a, not b. High priority wins: a false,
  // b true (paying the low-priority cost).
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.choice_rule(a);
  p.choice_rule(b);
  p.integrity({neg(a), neg(b)});
  p.minimize_at(1, {{pos(a), 1}});
  p.minimize_at(0, {{pos(b), 1}});
  Solver solver;
  const CompiledProgram compiled = compile(p, solver);
  theory::LinearSumPropagator linear;
  const auto sums = theory::install_minimize_levels(p, compiled, linear);
  ASSERT_EQ(sums.size(), 2U);
  solver.add_propagator(&linear);
  const theory::OptimalModel best =
      theory::minimize_answer_set_lex(solver, linear, sums);
  ASSERT_TRUE(best.feasible && best.proven);
  ASSERT_EQ(best.level_costs.size(), 2U);
  EXPECT_EQ(best.level_costs[0], 0);  // priority 1: a avoided
  EXPECT_EQ(best.level_costs[1], 1);  // priority 0: b unavoidable
  EXPECT_EQ(best.model[compiled.atom_var[a]], Lbool::False);
  EXPECT_EQ(best.model[compiled.atom_var[b]], Lbool::True);
}

TEST(Minimize, LexicographicSingleLevelMatchesPlain) {
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.choice_rule(a);
  p.choice_rule(b);
  p.integrity({neg(a), neg(b)});
  p.minimize({{pos(a), 5}, {pos(b), 3}});
  Solver s1;
  const CompiledProgram c1 = compile(p, s1);
  theory::LinearSumPropagator l1;
  const auto sum1 = theory::install_minimize(p, c1, l1);
  s1.add_propagator(&l1);
  const auto plain = theory::minimize_answer_set(s1, l1, sum1);

  Solver s2;
  const CompiledProgram c2 = compile(p, s2);
  theory::LinearSumPropagator l2;
  const auto sums = theory::install_minimize_levels(p, c2, l2);
  s2.add_propagator(&l2);
  const auto lex = theory::minimize_answer_set_lex(s2, l2, sums);
  ASSERT_TRUE(plain.proven && lex.proven);
  EXPECT_EQ(plain.cost, lex.cost);
  EXPECT_EQ(lex.cost, 3);
}

TEST(Minimize, SolverReusableAfterOptimization) {
  Program p;
  const Atom a = p.new_atom("a");
  p.choice_rule(a);
  p.minimize({{pos(a), 2}});
  Solver solver;
  const CompiledProgram compiled = compile(p, solver);
  theory::LinearSumPropagator linear;
  const auto sum = theory::install_minimize(p, compiled, linear);
  solver.add_propagator(&linear);
  const theory::OptimalModel best = theory::minimize_answer_set(solver, linear, sum);
  ASSERT_TRUE(best.proven);
  EXPECT_EQ(best.cost, 0);
  // Bounds were activation-guarded: both answer sets still reachable.
  const auto models = test::enumerate_projected(solver, {compiled.atom_var[a]});
  EXPECT_EQ(models.size(), 2U);
}

}  // namespace
}  // namespace aspmt::asp
