// The certification layer itself: hand-written proofs exercise every step
// kind of the checker, real explorer proofs must verify, and mutated real
// proofs must be rejected — a checker that accepts everything would make
// `certified: yes` meaningless.
#include <gtest/gtest.h>

#include <string>

#include "cert/certify.hpp"
#include "cert/checker.hpp"
#include "dse/explorer.hpp"
#include "synth_fixtures.hpp"

namespace aspmt {
namespace {

cert::CheckResult check(const std::string& proof, bool require_unsat = false) {
  cert::CheckOptions opts;
  opts.require_global_unsat = require_unsat;
  return cert::check_proof(proof, opts);
}

TEST(ProofChecker, RejectsMissingHeader) {
  const auto r = check("I 1 0\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("header"), std::string::npos) << r.error;
}

TEST(ProofChecker, VerifiesUnitContradiction) {
  const auto r = check("p aspmt 1\nI 1 0\nI -1 0\nU 0\n", true);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.concluded_global_unsat);
  EXPECT_EQ(r.input_clauses, 2U);
}

TEST(ProofChecker, RejectsUnsupportedConclusion) {
  const auto r = check("p aspmt 1\nI 1 2 0\nU 0\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("Unsat conclusion"), std::string::npos) << r.error;
}

TEST(ProofChecker, RejectsNonRupLearntClause) {
  const auto r = check("p aspmt 1\nI 1 2 0\nL 1 0\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not RUP"), std::string::npos) << r.error;
}

TEST(ProofChecker, AcceptsRupLearntClauseAndAssumptionConclusion) {
  const auto r = check("p aspmt 1\nI 1 2 0\nI 1 -2 0\nL 1 0\nU -1 0\n");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.learnt_clauses, 1U);
  EXPECT_EQ(r.conclusions, 1U);
  EXPECT_FALSE(r.concluded_global_unsat);
}

TEST(ProofChecker, RequireUnsatRejectsSatOnlyProof) {
  const auto r = check("p aspmt 1\nI 1 2 0\nM 0\n", true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("never concludes"), std::string::npos) << r.error;
}

TEST(ProofChecker, VerifiesLinearSumLemma) {
  // sum 0 = 3*[g1] + 4*[g2], bound 5: both guards set exceeds the bound.
  const std::string prefix = "p aspmt 1\nS 0 2 1 3 2 4\nSB 0 5 0\n";
  EXPECT_TRUE(check(prefix + "T LS 0 5 0 ; -1 -2 0\n").ok);
  // A single guard only reaches 3 <= 5: the lemma claims too much.
  const auto weak = check(prefix + "T LS 0 5 0 ; -1 0\n");
  EXPECT_FALSE(weak.ok);
  EXPECT_NE(weak.error.find("do not exceed"), std::string::npos) << weak.error;
  // Undeclared bound: the lemma cites a constraint the solver never had.
  const auto undeclared = check(prefix + "T LS 0 4 0 ; -1 -2 0\n");
  EXPECT_FALSE(undeclared.ok);
  EXPECT_NE(undeclared.error.find("never declared"), std::string::npos)
      << undeclared.error;
}

TEST(ProofChecker, VerifiesDifferenceCycleLemma) {
  const std::string prefix =
      "p aspmt 1\nN 0\nN 1\nE 0 0 1 2 1 3\nE 1 1 0 2 1 4\n";
  EXPECT_TRUE(check(prefix + "T DC ; -3 -4 0\n").ok);
  // Dropping one guard from the clause breaks the cycle.
  const auto broken = check(prefix + "T DC ; -3 0\n");
  EXPECT_FALSE(broken.ok);
  EXPECT_NE(broken.error.find("no positive cycle"), std::string::npos)
      << broken.error;
}

TEST(ProofChecker, VerifiesNodeBoundLemma) {
  const std::string prefix =
      "p aspmt 1\nN 0\nN 1\nE 0 0 1 7 1 3\nNB 1 5 2\n";
  // Guarded longest path to node 1 is 7 > 5; clause negates guard and act.
  EXPECT_TRUE(check(prefix + "T DB 1 5 2 ; -3 -2 0\n").ok);
  const auto missing_act = check(prefix + "T DB 1 5 2 ; -3 0\n");
  EXPECT_FALSE(missing_act.ok);
  EXPECT_NE(missing_act.error.find("activation"), std::string::npos)
      << missing_act.error;
}

TEST(ProofChecker, VerifiesDominanceLemma) {
  // Objective 0 is sum 0 = 5*[g1]; feasible point (3) <= threshold (4).
  const std::string prefix =
      "p aspmt 1\nS 0 1 1 5\nO 0 L 0\nF 1 3 0\n";
  EXPECT_TRUE(check(prefix + "T DOM 1 4 ; -1 0\n").ok);
  // Without any feasible point at or below the threshold the pruning is
  // unjustified.
  const auto unjustified = check("p aspmt 1\nS 0 1 1 5\nO 0 L 0\nT DOM 1 4 ; -1 0\n");
  EXPECT_FALSE(unjustified.ok);
  EXPECT_NE(unjustified.error.find("no certified feasible point"),
            std::string::npos)
      << unjustified.error;
}

// ---- mutations of a real explorer proof -----------------------------------

std::string real_proof() {
  dse::ExploreOptions opts;
  opts.common.certify = true;
  const dse::ExploreResult r = dse::explore(test::chain3_bus(), opts);
  EXPECT_TRUE(r.certified) << r.certificate_error;
  EXPECT_FALSE(r.proof.empty());
  return r.proof;
}

TEST(ProofMutation, PristineProofVerifies) {
  const auto r = check(real_proof(), true);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.theory_lemmas, 0U);
  EXPECT_GT(r.learnt_clauses, 0U);
}

TEST(ProofMutation, BogusLearntClauseRejected) {
  std::string proof = real_proof();
  // A fresh-variable unit clause right after the header can never be RUP.
  const std::size_t header_end = proof.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  proof.insert(header_end + 1, "L 999999 0\n");
  const auto r = check(proof, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not RUP"), std::string::npos) << r.error;
}

TEST(ProofMutation, DroppedConclusionRejected) {
  std::string proof = real_proof();
  // Remove the global "U 0" conclusion line(s).
  std::string out;
  std::size_t pos = 0;
  while (pos < proof.size()) {
    const std::size_t eol = proof.find('\n', pos);
    const std::string line = proof.substr(pos, eol - pos);
    if (line != "U 0") out += line + "\n";
    pos = eol == std::string::npos ? proof.size() : eol + 1;
  }
  const auto r = check(out, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("never concludes"), std::string::npos) << r.error;
}

TEST(ProofMutation, UnknownTheoryTagRejected) {
  std::string proof = real_proof();
  const std::size_t pos = proof.find("\nT ");
  ASSERT_NE(pos, std::string::npos) << "proof has no theory lemma";
  proof.replace(pos, 3, "\nT ZZ");  // "T <tag>" -> "T ZZ<tag>"
  EXPECT_FALSE(check(proof, true).ok);
}

TEST(ProofMutation, TamperedSumBoundRejected) {
  std::string proof = real_proof();
  const std::size_t pos = proof.find("\nT LS ");
  ASSERT_NE(pos, std::string::npos) << "proof has no linear-sum lemma";
  // Bump the cited bound far past anything declared.
  std::size_t tok = pos + 6;                      // after "\nT LS "
  tok = proof.find(' ', tok);                     // skip sum id
  ASSERT_NE(tok, std::string::npos);
  const std::size_t bound_end = proof.find(' ', tok + 1);
  ASSERT_NE(bound_end, std::string::npos);
  proof.replace(tok + 1, bound_end - tok - 1, "1000001");
  const auto r = check(proof, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("theory lemma rejected"), std::string::npos)
      << r.error;
}

// ---- certify_front end-to-end ----------------------------------------------

TEST(CertifyFront, SingletonRoundTrips) {
  const synth::Specification spec = test::singleton();
  dse::ExploreOptions opts;
  opts.common.certify = true;
  const dse::ExploreResult r = dse::explore(spec, opts);
  ASSERT_TRUE(r.certified) << r.certificate_error;
  ASSERT_EQ(r.front.size(), 1U);
  ASSERT_EQ(r.witnesses.size(), 1U);

  std::vector<std::pair<pareto::Vec, synth::Implementation>> pairs;
  pairs.emplace_back(r.front[0], r.witnesses[0]);

  const auto ok = cert::certify_front(spec, pairs, r.front, r.proof);
  EXPECT_TRUE(ok.certified) << ok.error;
  EXPECT_EQ(ok.witnesses_validated, 1U);

  // An extra fabricated front point must be caught even though the proof
  // and the witnesses are untouched.
  std::vector<pareto::Vec> padded = r.front;
  padded.push_back({0, 0, 0});
  const auto extra = cert::certify_front(spec, pairs, padded, r.proof);
  EXPECT_FALSE(extra.certified);

  // A discovery whose recorded objectives disagree with its witness is the
  // witness-forgery case.
  auto forged = pairs;
  forged[0].first[0] += 1;
  const auto forgery = cert::certify_front(spec, forged, r.front, r.proof);
  EXPECT_FALSE(forgery.certified);
  EXPECT_NE(forgery.error.find("disagree"), std::string::npos) << forgery.error;

  // And an empty proof certifies nothing.
  const auto empty = cert::certify_front(spec, pairs, r.front, "");
  EXPECT_FALSE(empty.certified);
}

}  // namespace
}  // namespace aspmt
