// Differential spec-mutation test layer for incremental re-exploration
// (src/dse/respec.*).
//
// The contract under test is unconditional exactness: for every checked-in
// fixture and every single-edit mutation in the catalogue
// (tests/spec_mutations.hpp), dse::reexplore from the previous session's
// checkpoint must return byte-for-byte the same front a cold run on the
// edited spec returns — certified — at 1, 2 and 4 threads.  Reuse
// (archive witnesses, guarded clause replay, slice resumption) may only
// change how fast the search gets there.  Adversarially corrupted clause
// dumps must be rejected or neutralized, degrading towards a cold start,
// never distorting the front.
#include "dse/respec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "dse/checkpoint.hpp"
#include "dse/explorer.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "spec_mutations.hpp"
#include "synth/objective_expr.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::dse {
namespace {

// ---- helpers --------------------------------------------------------------

/// A previous session: cold-explore `spec` with a snapshot file attached and
/// load the final v3 checkpoint (sections + clause dump included) back.
Checkpoint previous_session(const synth::Specification& spec,
                            const std::string& tag) {
  const std::string path = ::testing::TempDir() + "aspmt_respec_" + tag + ".ckpt";
  ExploreOptions opts;
  opts.common.checkpoint_path = path;
  const ExploreResult r = explore(spec, opts);
  EXPECT_TRUE(r.stats.complete);
  Checkpoint c;
  EXPECT_EQ(load_checkpoint(path, c), "");
  std::remove(path.c_str());
  return c;
}

/// Cold certified reference run on a spec.
ExploreResult cold_reference(const synth::Specification& spec) {
  ExploreOptions opts;
  opts.common.certify = true;
  return explore(spec, opts);
}

ReexploreOptions incremental_options(std::size_t threads) {
  ReexploreOptions ro;
  ro.base.threads = threads;
  ro.base.seed = 7;
  ro.base.common.certify = true;
  return ro;
}

struct Fixture {
  const char* name;
  synth::Specification (*make)();
};

constexpr Fixture kFixtures[] = {
    {"two_proc_bus", &test::two_proc_bus},
    {"chain3_bus", &test::chain3_bus},
};

// ---- digest / classification units ----------------------------------------

TEST(Respec, SectionDigestsAreStableAndEditSensitive) {
  const synth::Specification base = test::two_proc_bus();
  const SectionDigests d0 = spec_sections(base);
  EXPECT_EQ(d0, spec_sections(test::two_proc_bus()));  // deterministic

  const SectionDigests d_wcet = spec_sections(test::mutate_wcet_bump(base));
  EXPECT_EQ(d_wcet.tasks, d0.tasks);
  EXPECT_EQ(d_wcet.resources, d0.resources);
  EXPECT_EQ(d_wcet.mappings, d0.mappings);
  EXPECT_NE(d_wcet.objectives, d0.objectives);

  const SectionDigests d_swap = spec_sections(test::mutate_resource_swap(base));
  EXPECT_EQ(d_swap.tasks, d0.tasks);
  EXPECT_NE(d_swap.mappings, d0.mappings);

  const SectionDigests d_add = spec_sections(test::mutate_task_add(base));
  EXPECT_NE(d_add.tasks, d0.tasks);

  const SectionDigests d_rm = spec_sections(test::mutate_task_remove(base));
  EXPECT_NE(d_rm.tasks, d0.tasks);
}

TEST(Respec, ObjectiveTreeEditsClassifyUnsafe) {
  // Declaring (or editing) combinator axes redefines the geometry of every
  // archived point, so nothing from the old session is reusable.
  const synth::Specification base = test::chain3_bus();
  const SectionDigests d0 = spec_sections(base);
  EXPECT_EQ(d0.tree, default_tree_digest());

  synth::Specification comb = test::chain3_bus();
  const std::size_t hot = comb.add_scenario("hot");
  comb.set_scenario_factor(hot, 1, 2);
  synth::ObjectiveExpr expr;
  ASSERT_EQ(synth::parse_objective_expr("lex(latency,energy@hot)", expr), "");
  comb.add_objective(std::move(expr));
  const SectionDigests d1 = spec_sections(comb);
  EXPECT_NE(d1.tree, d0.tree);
  EXPECT_EQ(d1.tasks, d0.tasks);
  EXPECT_EQ(d1.mappings, d0.mappings);

  const DeltaReport rep = classify_delta(d0, d1);
  EXPECT_TRUE(rep.tree_changed);
  EXPECT_EQ(rep.cls, DeltaClass::Unsafe);
  EXPECT_NE(rep.section_mask() & 16U, 0U);
}

TEST(Respec, CatalogueMutationsClassifyAsDocumented) {
  const synth::Specification base = test::chain3_bus();
  const SectionDigests d0 = spec_sections(base);
  std::size_t count = 0;
  const test::MutationCase* cases = test::mutation_catalogue(count);
  for (std::size_t i = 0; i < count; ++i) {
    const synth::Specification edited = cases[i].apply(base);
    ASSERT_EQ(edited.validate(), "") << cases[i].name;
    const DeltaReport rep = classify_delta(d0, spec_sections(edited));
    EXPECT_EQ(rep.cls, cases[i].expected)
        << cases[i].name << " classified " << delta_class_name(rep.cls);
  }
  const DeltaReport same = classify_delta(d0, d0);
  EXPECT_EQ(same.cls, DeltaClass::Identical);
  EXPECT_EQ(same.section_mask(), 0U);
}

TEST(Respec, LegacyCheckpointsClassifyAllOrNothing) {
  const synth::Specification spec = test::two_proc_bus();
  Checkpoint legacy;  // v1/v2: no per-section digests
  legacy.spec_fingerprint = spec_fingerprint(spec);
  legacy.has_sections = false;
  EXPECT_EQ(classify_checkpoint(legacy, spec).cls, DeltaClass::Identical);
  EXPECT_EQ(classify_checkpoint(legacy, test::mutate_wcet_bump(spec)).cls,
            DeltaClass::Unsafe);
}

// ---- the differential exactness sweep --------------------------------------

TEST(Respec, DifferentialSingleEditFrontsMatchColdAtAllThreadCounts) {
  std::size_t count = 0;
  const test::MutationCase* cases = test::mutation_catalogue(count);
  for (const Fixture& fx : kFixtures) {
    const synth::Specification base = fx.make();
    const Checkpoint prev = previous_session(base, fx.name);
    for (std::size_t i = 0; i < count; ++i) {
      const synth::Specification edited = cases[i].apply(base);
      ASSERT_EQ(edited.validate(), "") << fx.name << "/" << cases[i].name;
      const DeltaReport rep = classify_checkpoint(prev, edited);
      EXPECT_EQ(rep.cls, cases[i].expected) << fx.name << "/" << cases[i].name;

      const ExploreResult cold = cold_reference(edited);
      ASSERT_TRUE(cold.stats.complete);
      ASSERT_TRUE(cold.certified) << cold.certificate_error;

      for (const std::size_t threads : {1U, 2U, 4U}) {
        const ReexploreResult inc =
            reexplore(prev, edited, incremental_options(threads));
        ASSERT_TRUE(inc.base.stats.complete)
            << fx.name << "/" << cases[i].name << " threads " << threads;
        EXPECT_EQ(inc.base.front, cold.front)
            << fx.name << "/" << cases[i].name << " threads " << threads;
        EXPECT_TRUE(inc.base.certified)
            << fx.name << "/" << cases[i].name << " threads " << threads
            << ": " << inc.base.certificate_error;
        EXPECT_EQ(inc.reuse.delta.cls, cases[i].expected);
        EXPECT_GE(inc.reuse.reuse_rate(), 0.0);
        EXPECT_LE(inc.reuse.reuse_rate(), 1.0);
        if (cases[i].expected == DeltaClass::Unsafe) {
          EXPECT_TRUE(inc.reuse.cold_start);
          EXPECT_EQ(inc.reuse.archive_reused, 0U);
          EXPECT_EQ(inc.reuse.clauses_replayed, 0U);
        } else {
          EXPECT_GT(inc.reuse.archive_candidates, 0U);
        }
      }
    }
  }
}

TEST(Respec, IdenticalSpecReusesArchiveAndClauses) {
  const synth::Specification spec = test::chain3_bus();
  const Checkpoint prev = previous_session(spec, "identical");
  const ExploreResult cold = cold_reference(spec);
  ASSERT_TRUE(cold.certified) << cold.certificate_error;
  const ReexploreResult inc = reexplore(prev, spec, incremental_options(1));
  EXPECT_EQ(inc.reuse.delta.cls, DeltaClass::Identical);
  EXPECT_FALSE(inc.reuse.cold_start);
  EXPECT_EQ(inc.reuse.archive_reused, prev.points.size());
  EXPECT_EQ(inc.reuse.clause_candidates, prev.clauses.size());
  EXPECT_EQ(inc.base.front, cold.front);
  EXPECT_TRUE(inc.base.certified) << inc.base.certificate_error;
  EXPECT_GT(inc.reuse.reuse_rate(), 0.0);
}

// ---- adversarial clause dumps ----------------------------------------------

TEST(Respec, CorruptedClauseDumpIsRejectedNotInstalled) {
  const synth::Specification spec = test::two_proc_bus();
  Checkpoint prev = previous_session(spec, "corrupt_reject");
  ASSERT_TRUE(prev.has_sections);
  // Lits outside the declared base and zero lits: every clause must be
  // dropped individually by decode_replay, never installed.
  prev.clause_base_vars = prev.clause_base_vars != 0 ? prev.clause_base_vars : 8;
  prev.clauses = {{0}, {1, 0, -2}, {999999}, {-999999, 3}};
  const ExploreResult cold = cold_reference(spec);
  const ReexploreResult inc = reexplore(prev, spec, incremental_options(1));
  EXPECT_EQ(inc.reuse.clauses_replayed, 0U);
  EXPECT_EQ(inc.base.front, cold.front);
  EXPECT_TRUE(inc.base.certified) << inc.base.certificate_error;
}

TEST(Respec, MismatchedClauseBaseDegradesToNoReplay) {
  const synth::Specification spec = test::two_proc_bus();
  Checkpoint prev = previous_session(spec, "base_mismatch");
  // A dump from "some other encoding": base_vars can't match this spec's.
  // The dump passes respec's own validation (lits within the declared base),
  // but the explorer must drop the whole hand-off on the base mismatch —
  // nothing is installed.
  prev.clause_base_vars = 3;
  prev.clauses = {{1, -2}, {3}};
  const ExploreResult cold = cold_reference(spec);
  const ReexploreResult inc = reexplore(prev, spec, incremental_options(1));
  EXPECT_EQ(inc.reuse.clauses_replayed, 2U);      // offered…
  EXPECT_EQ(inc.base.stats.replayed_clauses, 0U);  // …but never installed
  EXPECT_EQ(inc.base.front, cold.front);
  EXPECT_TRUE(inc.base.certified) << inc.base.certificate_error;
}

TEST(Respec, HostileInRangeClausesCannotDistortTheFront) {
  // The nastiest case: clauses that *decode fine* but are semantic garbage —
  // contradictory units over real encoding variables.  The assumption guard
  // must contain them: the run goes Unsat under the guard, drops it, and
  // re-proves completeness cold.  Front and certificate must survive, at
  // every thread count.
  const synth::Specification spec = test::chain3_bus();
  Checkpoint prev = previous_session(spec, "hostile");
  ASSERT_NE(prev.clause_base_vars, 0U);
  prev.clauses = {{1}, {-1}, {2}, {-2}};
  const ExploreResult cold = cold_reference(spec);
  for (const std::size_t threads : {1U, 2U, 4U}) {
    const ReexploreResult inc =
        reexplore(prev, spec, incremental_options(threads));
    ASSERT_TRUE(inc.base.stats.complete) << "threads " << threads;
    EXPECT_EQ(inc.base.front, cold.front) << "threads " << threads;
    EXPECT_TRUE(inc.base.certified)
        << "threads " << threads << ": " << inc.base.certificate_error;
  }
}

TEST(Respec, CorruptedCheckpointFileDegradesToColdStart) {
  // End-to-end file path: a truncated/bit-flipped snapshot fails to load, so
  // the caller (see tools/aspmt_dse.cpp) falls back to an empty checkpoint —
  // which reexplore treats as a cold start with zero reuse.
  const synth::Specification spec = test::two_proc_bus();
  Checkpoint empty;  // what a failed load leaves behind
  const ExploreResult cold = cold_reference(spec);
  const ReexploreResult inc = reexplore(empty, spec, incremental_options(1));
  EXPECT_TRUE(inc.reuse.cold_start);
  EXPECT_EQ(inc.reuse.archive_reused, 0U);
  EXPECT_EQ(inc.base.front, cold.front);
  EXPECT_TRUE(inc.base.certified) << inc.base.certificate_error;
}

// ---- observability ----------------------------------------------------------

class RecordingSink final : public obs::EventSink {
 public:
  void on_event(const obs::Event& e) override { events.push_back(e); }
  std::vector<obs::Event> events;
};

TEST(Respec, EmitsDeltaAndReuseEventsAndMetrics) {
  const synth::Specification base = test::two_proc_bus();
  const Checkpoint prev = previous_session(base, "obs");
  const synth::Specification edited = test::mutate_wcet_bump(base);

  RecordingSink sink;
  obs::MetricsRegistry metrics;
  ReexploreOptions ro = incremental_options(1);
  ro.base.common.certify = false;
  ro.base.common.sink = &sink;
  ro.base.common.metrics = &metrics;
  const ReexploreResult inc = reexplore(prev, edited, ro);
  ASSERT_TRUE(inc.base.stats.complete);

  bool saw_delta = false;
  bool saw_reuse = false;
  for (const obs::Event& e : sink.events) {
    if (e.kind == obs::EventKind::RespecDelta) {
      saw_delta = true;
      EXPECT_EQ(e.a, static_cast<std::int64_t>(DeltaClass::ClauseSafe));
      EXPECT_EQ(e.b, 8);  // objectives-only section mask
    }
    if (e.kind == obs::EventKind::RespecReuse) {
      saw_reuse = true;
      EXPECT_EQ(e.a, static_cast<std::int64_t>(inc.reuse.archive_reused));
      EXPECT_EQ(e.b, static_cast<std::int64_t>(inc.reuse.clauses_replayed));
    }
  }
  EXPECT_TRUE(saw_delta);
  EXPECT_TRUE(saw_reuse);

  EXPECT_EQ(metrics.counter("respec.archive_reused").value(),
            static_cast<std::uint64_t>(inc.reuse.archive_reused));
  EXPECT_EQ(metrics.counter("respec.clauses_replayed").value(),
            static_cast<std::uint64_t>(inc.reuse.clauses_replayed));
}

// A v4 checkpoint carries the previous session's slice bounds; reexplore at
// >1 threads must reseed the scheduler from those exact bounds (not a fresh
// partition) and still land on the cold front.
TEST(Respec, SliceBoundsFromV4CheckpointReseedTheScheduler) {
  const synth::Specification base = test::chain3_bus();
  const std::string path =
      ::testing::TempDir() + "aspmt_respec_slices.ckpt";
  ParallelExploreOptions par;
  par.threads = 4;
  par.common.checkpoint_path = path;
  const ParallelExploreResult prev_run = explore_parallel(base, par);
  ASSERT_TRUE(prev_run.base.stats.complete);
  Checkpoint prev;
  ASSERT_EQ(load_checkpoint(path, prev), "");
  std::remove(path.c_str());
  ASSERT_FALSE(prev.slice_bounds.empty())
      << "a 4-thread run must persist its slice partition";

  const synth::Specification edited = test::mutate_wcet_bump(base);
  const ExploreResult cold = cold_reference(edited);
  ASSERT_TRUE(cold.stats.complete);

  const ReexploreResult inc = reexplore(prev, edited, incremental_options(4));
  ASSERT_TRUE(inc.base.stats.complete);
  EXPECT_EQ(inc.base.front, cold.front);
  EXPECT_EQ(inc.reuse.slices_resumed, prev.slice_bounds.size())
      << "scheduler must resume the persisted partition verbatim";
}

}  // namespace
}  // namespace aspmt::dse
