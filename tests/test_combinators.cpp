// Combinator objectives end to end: differential fronts against a
// brute-force reference at 1/2/4 threads (certified), the multicore PPA
// family through the portfolio and distributed paths, scenario/objective
// spec round-trips, and adversarial proofs tampering with the serialized
// objective-tree bindings.
//
// The reference construction leans on monotonicity: every combinator is
// monotone in the base metrics (latency, nominal energy, cost, per-scenario
// energies), so any design optimal under combinator axes has a leaf-metric
// vector on the leaf-axis Pareto front.  Exploring with one leaf axis per
// metric and folding that front through evaluate_objective_expr therefore
// reproduces the exact combinator front.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "cert/checker.hpp"
#include "dse/distributed.hpp"
#include "dse/explorer.hpp"
#include "dse/parallel_explorer.hpp"
#include "gen/multicore.hpp"
#include "pareto/archive.hpp"
#include "synth/objective_expr.hpp"
#include "synth/specio.hpp"
#include "synth_fixtures.hpp"

namespace aspmt {
namespace {

synth::Specification with_axes(synth::Specification s,
                               const std::vector<std::string>& axes) {
  for (const std::string& a : axes) {
    synth::ObjectiveExpr e;
    const std::string err = synth::parse_objective_expr(a, e);
    EXPECT_EQ(err, "") << a;
    s.add_objective(std::move(e));
  }
  return s;
}

/// chain3_bus plus a "hot" scenario: p0's energy triples, p1's doubles.
synth::Specification chain3_hot() {
  synth::Specification s = test::chain3_bus();
  const std::size_t hot = s.add_scenario("hot");
  s.set_scenario_factor(hot, 1, 3);  // p0
  s.set_scenario_factor(hot, 2, 2);  // p1
  return s;
}

/// One leaf axis per base metric: latency, energy, cost, energy@<scenario>.
std::vector<std::string> leaf_axes(const synth::Specification& base) {
  std::vector<std::string> axes = {"latency", "energy", "cost"};
  for (const synth::Scenario& s : base.scenarios()) {
    axes.push_back("energy@" + s.name);
  }
  return axes;
}

std::vector<pareto::Vec> sorted(std::vector<pareto::Vec> front) {
  std::sort(front.begin(), front.end());
  return front;
}

/// Brute-force reference: leaf-axis front folded through the combinator
/// expressions, reduced to the non-dominated set.
std::vector<pareto::Vec> reference_front(
    const synth::Specification& base,
    const std::vector<std::string>& comb_axes) {
  const synth::Specification leaf = with_axes(base, leaf_axes(base));
  const dse::ExploreResult r = dse::explore(leaf);
  EXPECT_TRUE(r.stats.complete);
  const synth::Specification comb = with_axes(base, comb_axes);
  pareto::LinearArchive archive;
  for (const pareto::Vec& p : r.front) {
    synth::MetricValues mv;
    mv.latency = p[0];
    mv.energy = p[1];
    mv.cost = p[2];
    mv.scenario_energy.assign(p.begin() + 3, p.end());
    pareto::Vec q;
    for (const synth::ObjectiveExpr& e : comb.objective_exprs()) {
      q.push_back(synth::evaluate_objective_expr(comb, e, mv));
    }
    archive.insert(q);
  }
  return sorted(archive.points());
}

/// Sequential certified run plus the portfolio at 1/2/4 threads, all
/// compared against the brute-force reference.
void expect_differential(const synth::Specification& base,
                         const std::vector<std::string>& comb_axes) {
  const std::vector<pareto::Vec> ref = reference_front(base, comb_axes);
  ASSERT_FALSE(ref.empty());
  const synth::Specification comb = with_axes(base, comb_axes);

  dse::ExploreOptions opts;
  opts.common.certify = true;
  const dse::ExploreResult r = dse::explore(comb, opts);
  ASSERT_TRUE(r.stats.complete);
  EXPECT_TRUE(r.certified) << r.certificate_error;
  EXPECT_EQ(sorted(r.front), ref);

  for (const std::size_t threads : {1U, 2U, 4U}) {
    dse::ParallelExploreOptions popts;
    popts.threads = threads;
    const dse::ParallelExploreResult pr = dse::explore_parallel(comb, popts);
    ASSERT_TRUE(pr.base.stats.complete) << "threads " << threads;
    EXPECT_EQ(sorted(pr.base.front), ref) << "threads " << threads;
  }
}

// ---- differential fronts ----------------------------------------------------

TEST(CombinatorFronts, LexMatchesBruteForceCertified) {
  expect_differential(test::chain3_bus(), {"lex(latency,energy)", "cost"});
}

TEST(CombinatorFronts, MinMaxMatchesBruteForceCertified) {
  expect_differential(test::chain3_bus(), {"minmax(latency,cost)", "energy"});
}

TEST(CombinatorFronts, WeightedMatchesBruteForceCertified) {
  expect_differential(test::chain3_bus(),
                      {"weighted(2*latency+3*energy)", "cost"});
}

TEST(CombinatorFronts, ScenarioWorstMatchesBruteForceCertified) {
  expect_differential(chain3_hot(), {"worst(energy,energy@hot)", "latency"});
}

TEST(CombinatorFronts, NestedTreeMatchesBruteForceCertified) {
  expect_differential(chain3_hot(),
                      {"lex(minmax(latency,cost),energy@hot)", "energy"});
}

TEST(CombinatorFronts, DiamondLexMatchesBruteForceCertified) {
  expect_differential(test::diamond_two_proc(),
                      {"lex(latency,cost)", "energy"});
}

// ---- the multicore PPA family ----------------------------------------------

gen::MulticoreConfig small_multicore() {
  gen::MulticoreConfig c;
  c.seed = 3;
  c.tasks = 4;
  c.big_cores = 1;
  c.little_cores = 1;
  c.pipeline_depths = 2;
  c.cache_levels = 1;
  return c;
}

TEST(MulticoreFamily, GeneratesValidatingSpecsWithCombinatorAxes) {
  const synth::Specification spec = gen::generate_multicore(small_multicore());
  EXPECT_EQ(spec.validate(), "");
  EXPECT_EQ(spec.axis_count(), 2U);
  EXPECT_EQ(spec.scenario_index("throttle"), 0U);
  EXPECT_EQ(core_variant_count(small_multicore()), 4U);
  // A malformed axis surfaces as a diagnostic, not a bad spec.
  gen::MulticoreConfig bad = small_multicore();
  bad.axes = {"lex(latency)"};
  EXPECT_THROW(gen::generate_multicore(bad), std::invalid_argument);
  gen::MulticoreConfig unknown = small_multicore();
  unknown.axes = {"energy@nosuch"};
  EXPECT_THROW(gen::generate_multicore(unknown), std::invalid_argument);
}

TEST(MulticoreFamily, CombinatorFrontMatchesBruteForceAcrossThreads) {
  // Re-generating with leaf axes reproduces the identical platform and task
  // graph (the RNG never sees the axis list), so the differential harness
  // applies to the generated family as-is.
  const synth::Specification comb = gen::generate_multicore(small_multicore());
  gen::MulticoreConfig leaf_cfg = small_multicore();
  leaf_cfg.axes = {"latency", "energy", "cost", "energy@throttle"};
  const synth::Specification leaf = gen::generate_multicore(leaf_cfg);

  const dse::ExploreResult lr = dse::explore(leaf);
  ASSERT_TRUE(lr.stats.complete);
  pareto::LinearArchive archive;
  for (const pareto::Vec& p : lr.front) {
    synth::MetricValues mv;
    mv.latency = p[0];
    mv.energy = p[1];
    mv.cost = p[2];
    mv.scenario_energy = {p[3]};
    pareto::Vec q;
    for (const synth::ObjectiveExpr& e : comb.objective_exprs()) {
      q.push_back(synth::evaluate_objective_expr(comb, e, mv));
    }
    archive.insert(q);
  }
  const std::vector<pareto::Vec> ref = sorted(archive.points());

  dse::ExploreOptions opts;
  opts.common.certify = true;
  const dse::ExploreResult r = dse::explore(comb, opts);
  ASSERT_TRUE(r.stats.complete);
  EXPECT_TRUE(r.certified) << r.certificate_error;
  EXPECT_EQ(sorted(r.front), ref);
  for (const std::size_t threads : {1U, 2U, 4U}) {
    dse::ParallelExploreOptions popts;
    popts.threads = threads;
    const dse::ParallelExploreResult pr = dse::explore_parallel(comb, popts);
    ASSERT_TRUE(pr.base.stats.complete) << "threads " << threads;
    EXPECT_EQ(sorted(pr.base.front), ref) << "threads " << threads;
  }
}

TEST(MulticoreFamily, DistributedShardsOnTheLinearAreaAxis) {
  const synth::Specification spec = gen::generate_multicore(small_multicore());
  const dse::ExploreResult seq = dse::explore(spec);
  ASSERT_TRUE(seq.stats.complete);

  dse::DistributedOptions opts;
  opts.in_process = true;
  opts.processes = 2;
  opts.shard_objective = 1;  // "cost": a linear leaf — the only sound band
  const dse::DistributedResult r = dse::explore_distributed(spec, opts);
  ASSERT_TRUE(r.base.stats.complete);
  EXPECT_EQ(sorted(r.base.front), sorted(seq.front));
}

TEST(MulticoreFamily, CombinatorShardAxisIsRejectedNotMiscomputed) {
  const synth::Specification spec = gen::generate_multicore(small_multicore());
  dse::DistributedOptions opts;
  opts.in_process = true;
  opts.processes = 2;
  opts.shard_objective = 0;  // lex(latency,energy): banding would be unsound
  EXPECT_THROW(dse::explore_distributed(spec, opts), std::invalid_argument);
  dse::DistributedOptions oob = opts;
  oob.shard_objective = 7;  // out of range
  EXPECT_THROW(dse::explore_distributed(spec, oob), std::invalid_argument);
}

// ---- scenario/objective spec round-trips ------------------------------------

TEST(CombinatorSpecIo, ScenarioAndObjectiveLinesRoundTripByteIdentically) {
  const synth::Specification spec =
      with_axes(chain3_hot(), {"lex(latency,energy@hot)", "cost"});
  const std::string text = synth::to_text(spec);
  EXPECT_NE(text.find("scenario hot p0=3 p1=2"), std::string::npos) << text;
  EXPECT_NE(text.find("objective lex(latency,energy@hot)"), std::string::npos)
      << text;
  const synth::Specification back = synth::parse_specification(text);
  EXPECT_EQ(back.validate(), "");
  EXPECT_EQ(synth::to_text(back), text);
  ASSERT_EQ(back.scenarios().size(), 1U);
  EXPECT_EQ(back.scenarios()[0].name, "hot");
  ASSERT_EQ(back.objective_exprs().size(), 2U);
  EXPECT_EQ(synth::to_string(back.objective_exprs()[0]),
            "lex(latency,energy@hot)");
  EXPECT_EQ(synth::to_string(back.objective_exprs()[1]), "cost");
}

TEST(CombinatorSpecIo, UndeclaredScenarioInAnAxisFailsValidation) {
  const synth::Specification spec =
      with_axes(test::chain3_bus(), {"worst(energy,energy@phantom)"});
  EXPECT_NE(spec.validate().find("phantom"), std::string::npos)
      << spec.validate();
}

// ---- adversarial objective-tree bindings ------------------------------------

cert::CheckResult check(const std::string& proof, bool require_unsat = false) {
  cert::CheckOptions opts;
  opts.require_global_unsat = require_unsat;
  return cert::check_proof(proof, opts);
}

// Two guarded sums for hand-written proofs:
//   sum 0 = 5*[v1]      sum 1 = 7*[v2]
const char kTwoSums[] = "p aspmt 1\nS 0 1 1 5\nS 1 1 2 7\n";

TEST(ObjectiveTreeBindings, LexDominanceLemmaVerifiesViaTreeRederivation) {
  // Axis 0 = lex(s0, s1) with caps 10/20: pack(5, 7) = 5*21 + 7 = 112.
  const std::string proof = std::string(kTwoSums) +
                            "O 0 X 2 10 20 L 0 L 1\n"
                            "F 1 112 0\n"
                            "T DOM 1 112 ; -1 -2 0\n";
  EXPECT_TRUE(check(proof).ok) << check(proof).error;
}

TEST(ObjectiveTreeBindings, OverclaimedThresholdIsRejected) {
  const std::string proof = std::string(kTwoSums) +
                            "O 0 X 2 10 20 L 0 L 1\n"
                            "F 1 112 0\n"
                            "T DOM 1 113 ; -1 -2 0\n";
  const auto r = check(proof);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("do not reach"), std::string::npos) << r.error;
}

TEST(ObjectiveTreeBindings, DominanceWithoutADeclaredTreeIsRejected) {
  const std::string proof =
      std::string(kTwoSums) + "F 1 112 0\nT DOM 1 112 ; -1 -2 0\n";
  const auto r = check(proof);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("never declared"), std::string::npos) << r.error;
}

TEST(ObjectiveTreeBindings, MalformedTreesAreRejectedAtDeclaration) {
  const struct {
    const char* line;
    const char* why;
  } kBad[] = {
      {"O 0 L 0 L 1\n", "trailing tokens"},
      {"O 0 X 2 9223372036854775807 9223372036854775807 L 0 L 1\n",
       "lex packing overflows"},
      {"O 0 X 2 -1 5 L 0 L 1\n", "negative lex cap"},
      {"O 0 W 2 0 1 L 0 L 1\n", "weight must be positive"},
      {"O 0 M 1 L 0\n", "combinator needs two children"},
      {"O 0 M 2 L 0\n", "missing term"},
      {"O 0 Q 2 L 0 L 1\n", "unknown term kind"},
  };
  for (const auto& bad : kBad) {
    const auto r = check(std::string(kTwoSums) + bad.line);
    EXPECT_FALSE(r.ok) << bad.line;
    EXPECT_NE(r.error.find(bad.why), std::string::npos)
        << bad.line << " -> " << r.error;
  }
}

TEST(ObjectiveTreeBindings, CombinatorBoundsNeedTheirDeclarations) {
  // OB before any O line: rejected.
  const auto undeclared =
      check(std::string(kTwoSums) + "OB 0 4 3\n");
  EXPECT_FALSE(undeclared.ok);
  EXPECT_NE(undeclared.error.find("undeclared objective"), std::string::npos)
      << undeclared.error;
  // CB lemma citing a bound that was never declared: rejected.
  const auto uncited = check(std::string(kTwoSums) +
                             "O 0 M 2 L 0 L 1\n"
                             "T CB 0 4 3 ; -3 -1 -2 0\n");
  EXPECT_FALSE(uncited.ok);
  EXPECT_NE(uncited.error.find("never declared"), std::string::npos)
      << uncited.error;
  // The honest version verifies: max(5, 7) = 7 > 4 under both guards.
  const auto honest = check(std::string(kTwoSums) +
                            "O 0 M 2 L 0 L 1\n"
                            "OB 0 4 3\n"
                            "T CB 0 4 3 ; -3 -1 -2 0\n");
  EXPECT_TRUE(honest.ok) << honest.error;
  // A weaker clause that misses one guard only reaches max(5) = 5 > 4 —
  // still true here, so instead drop the activation negation: rejected.
  const auto no_act = check(std::string(kTwoSums) +
                            "O 0 M 2 L 0 L 1\n"
                            "OB 0 4 3\n"
                            "T CB 0 4 3 ; -1 -2 0\n");
  EXPECT_FALSE(no_act.ok);
  EXPECT_NE(no_act.error.find("activation"), std::string::npos)
      << no_act.error;
}

TEST(ObjectiveTreeBindings, RealCombinatorProofRejectsABrokenBinding) {
  const synth::Specification spec =
      with_axes(test::chain3_bus(), {"lex(latency,energy)", "cost"});
  dse::ExploreOptions opts;
  opts.common.certify = true;
  const dse::ExploreResult r = dse::explore(spec, opts);
  ASSERT_TRUE(r.certified) << r.certificate_error;
  ASSERT_FALSE(r.proof.empty());
  ASSERT_TRUE(check(r.proof, true).ok) << check(r.proof, true).error;

  // Deleting the combinator axis's binding orphans every dominance lemma
  // that prunes through it.
  std::string tampered = r.proof;
  const std::size_t pos = tampered.find("\nO 0 ");
  ASSERT_NE(pos, std::string::npos) << "proof lacks the axis-0 binding";
  const std::size_t eol = tampered.find('\n', pos + 1);
  tampered.erase(pos, eol - pos);
  const auto broken = check(tampered, true);
  EXPECT_FALSE(broken.ok);
  // Whichever references the orphaned axis first reports it: a residual OB
  // declaration ("combinator bound on an undeclared objective") or a
  // dominance lemma ("objective binding was never declared").
  EXPECT_NE(broken.error.find("declared"), std::string::npos) << broken.error;
}

}  // namespace
}  // namespace aspmt
