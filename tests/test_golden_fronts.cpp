// Golden-front regression layer: the exact Pareto front of every fixture
// and every checked-in example specification is pinned in
// tests/golden/<name>.front and must be reproduced bit-for-bit by the
// sequential explorer (in certified mode) and by the parallel portfolio at
// 1, 2 and 4 threads.  Regenerate after an intentional encoding change with
//   ASPMT_WRITE_GOLDEN=1 ./aspmt_tests --gtest_filter='*GoldenFronts*'
// and review the .front diff like any other code change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dse/checkpoint.hpp"
#include "dse/explorer.hpp"
#include "dse/parallel_explorer.hpp"
#include "dse/respec.hpp"
#include "synth/specio.hpp"
#include "synth_fixtures.hpp"

#ifndef ASPMT_TEST_DATA_DIR
#error "tests/CMakeLists.txt must define ASPMT_TEST_DATA_DIR"
#endif

namespace aspmt {
namespace {

struct GoldenCase {
  const char* name;
  synth::Specification (*fixture)();  // null: load examples/specs/<name>.txt
};

const GoldenCase kCases[] = {
    {"two_proc_bus", &test::two_proc_bus},
    {"chain3_bus", &test::chain3_bus},
    {"diamond_two_proc", &test::diamond_two_proc},
    {"singleton", &test::singleton},
    {"bus_small", nullptr},
    {"mesh_small", nullptr},
    {"bus_wide", nullptr},
    {"mesh_chain", nullptr},
    {"bus_small_edited", nullptr},
    {"mesh_small_edited", nullptr},
    // Multicore PPA family under combinator objectives (ObjectiveTerm
    // trees): lexicographic latency-then-energy vs. area, and a
    // minmax/scenario-worst robustness pairing.
    {"multicore_lex", nullptr},
    {"multicore_minmax", nullptr},
};

/// Checked-in (base, single-edit) spec pairs for the incremental
/// re-exploration layer: a session checkpointed on `base` is re-explored on
/// `edited` and must land exactly on the edited spec's golden front.
struct RespecPair {
  const char* base;
  const char* edited;
};

const RespecPair kRespecPairs[] = {
    {"bus_small", "bus_small_edited"},
    {"mesh_small", "mesh_small_edited"},
};

std::string data_path(const std::string& relative) {
  return std::string(ASPMT_TEST_DATA_DIR) + "/" + relative;
}

synth::Specification load_case(const GoldenCase& c) {
  if (c.fixture != nullptr) return c.fixture();
  return synth::load_specification(
      data_path("examples/specs/" + std::string(c.name) + ".txt"));
}

std::string golden_path(const GoldenCase& c) {
  return data_path("tests/golden/" + std::string(c.name) + ".front");
}

bool regenerating() { return std::getenv("ASPMT_WRITE_GOLDEN") != nullptr; }

std::string front_to_text(const std::vector<pareto::Vec>& front) {
  std::ostringstream out;
  for (const pareto::Vec& p : front) {
    for (std::size_t i = 0; i < p.size(); ++i) out << (i ? " " : "") << p[i];
    out << "\n";
  }
  return out.str();
}

std::vector<pareto::Vec> parse_front(std::istream& in) {
  std::vector<pareto::Vec> front;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    pareto::Vec point;
    std::istringstream iss(line);
    std::int64_t v = 0;
    while (iss >> v) point.push_back(v);
    if (!point.empty()) front.push_back(std::move(point));
  }
  return front;
}

std::vector<pareto::Vec> load_golden(const GoldenCase& c) {
  std::ifstream in(golden_path(c));
  EXPECT_TRUE(in.is_open())
      << "missing golden file " << golden_path(c)
      << " — regenerate with ASPMT_WRITE_GOLDEN=1";
  return parse_front(in);
}

class GoldenFronts : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenFronts, SequentialCertifiedFrontMatchesGolden) {
  const GoldenCase& c = GetParam();
  const synth::Specification spec = load_case(c);
  dse::ExploreOptions opts;
  opts.common.certify = true;
  const dse::ExploreResult r = dse::explore(spec, opts);
  ASSERT_TRUE(r.stats.complete) << c.name;
  EXPECT_TRUE(r.certified) << c.name << ": " << r.certificate_error;
  if (regenerating()) {
    std::ofstream out(golden_path(c));
    ASSERT_TRUE(out.is_open()) << "cannot write " << golden_path(c);
    out << front_to_text(r.front);
    GTEST_SKIP() << "regenerated " << golden_path(c);
  }
  EXPECT_EQ(r.front, load_golden(c)) << c.name;
}

TEST_P(GoldenFronts, PortfolioFrontMatchesGoldenAtOneTwoFourThreads) {
  const GoldenCase& c = GetParam();
  if (regenerating()) GTEST_SKIP() << "regeneration uses the sequential run";
  const synth::Specification spec = load_case(c);
  const std::vector<pareto::Vec> golden = load_golden(c);
  for (const std::size_t threads : {1U, 2U, 4U}) {
    dse::ParallelExploreOptions opts;
    opts.threads = threads;
    const dse::ParallelExploreResult r = dse::explore_parallel(spec, opts);
    ASSERT_TRUE(r.base.stats.complete) << c.name << " threads " << threads;
    EXPECT_EQ(r.base.front, golden) << c.name << " threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, GoldenFronts, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.name);
    });

class GoldenRespecPairs : public ::testing::TestWithParam<RespecPair> {};

TEST_P(GoldenRespecPairs, IncrementalFrontMatchesEditedGoldenAtAllThreads) {
  const RespecPair& pair = GetParam();
  if (regenerating()) GTEST_SKIP() << "regeneration uses the sequential run";
  const synth::Specification base = synth::load_specification(
      data_path("examples/specs/" + std::string(pair.base) + ".txt"));
  const synth::Specification edited = synth::load_specification(
      data_path("examples/specs/" + std::string(pair.edited) + ".txt"));
  ASSERT_EQ(base.validate(), "");
  ASSERT_EQ(edited.validate(), "");
  const std::vector<pareto::Vec> golden = load_golden({pair.edited, nullptr});

  // The previous session: a real run on the base spec with a snapshot file.
  const std::string ckpt_path = ::testing::TempDir() + "aspmt_golden_" +
                                std::string(pair.base) + ".ckpt";
  dse::ExploreOptions prev_opts;
  prev_opts.common.checkpoint_path = ckpt_path;
  const dse::ExploreResult prev_run = dse::explore(base, prev_opts);
  ASSERT_TRUE(prev_run.stats.complete) << pair.base;
  dse::Checkpoint prev;
  ASSERT_EQ(dse::load_checkpoint(ckpt_path, prev), "") << pair.base;
  std::remove(ckpt_path.c_str());

  for (const std::size_t threads : {1U, 2U, 4U}) {
    dse::ReexploreOptions ro;
    ro.base.threads = threads;
    ro.base.common.certify = true;
    const dse::ReexploreResult r = dse::reexplore(prev, edited, ro);
    ASSERT_TRUE(r.base.stats.complete) << pair.edited << " threads " << threads;
    EXPECT_EQ(r.base.front, golden) << pair.edited << " threads " << threads;
    EXPECT_TRUE(r.base.certified)
        << pair.edited << " threads " << threads << ": "
        << r.base.certificate_error;
    EXPECT_FALSE(r.reuse.cold_start) << pair.edited;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, GoldenRespecPairs, ::testing::ValuesIn(kRespecPairs),
    [](const ::testing::TestParamInfo<RespecPair>& info) {
      return std::string(info.param.base);
    });

}  // namespace
}  // namespace aspmt
