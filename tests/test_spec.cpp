#include "synth/spec.hpp"

#include <gtest/gtest.h>

namespace aspmt::synth {
namespace {

/// Two processors on a bus; one producer/consumer pair.
Specification tiny_spec() {
  Specification s;
  const ResourceId bus = s.add_resource("bus", ResourceKind::Bus, 1);
  const ResourceId p0 = s.add_resource("p0", ResourceKind::Processor, 10);
  const ResourceId p1 = s.add_resource("p1", ResourceKind::Processor, 5);
  s.add_link(p0, bus, 1, 1);
  s.add_link(bus, p0, 1, 1);
  s.add_link(p1, bus, 1, 1);
  s.add_link(bus, p1, 1, 1);
  const TaskId a = s.add_task("a");
  const TaskId b = s.add_task("b");
  s.add_message("m", a, b, 2);
  s.add_mapping(a, p0, 3, 4);
  s.add_mapping(a, p1, 6, 2);
  s.add_mapping(b, p0, 2, 3);
  s.add_mapping(b, p1, 4, 1);
  return s;
}

TEST(Spec, BuildersPopulateViews) {
  const Specification s = tiny_spec();
  EXPECT_EQ(s.tasks().size(), 2U);
  EXPECT_EQ(s.messages().size(), 1U);
  EXPECT_EQ(s.resources().size(), 3U);
  EXPECT_EQ(s.links().size(), 4U);
  EXPECT_EQ(s.mappings().size(), 4U);
  EXPECT_EQ(s.mappings_of(0).size(), 2U);
  EXPECT_EQ(s.links_from(1).size(), 1U);  // p0 -> bus
}

TEST(Spec, HopDistances) {
  const Specification s = tiny_spec();
  const auto d = s.hop_distances();
  EXPECT_EQ(d[1][1], 0U);
  EXPECT_EQ(d[1][0], 1U);  // p0 -> bus
  EXPECT_EQ(d[1][2], 2U);  // p0 -> bus -> p1
}

TEST(Spec, UnreachableDistance) {
  Specification s;
  s.add_resource("x", ResourceKind::Processor, 1);
  s.add_resource("y", ResourceKind::Processor, 1);
  const auto d = s.hop_distances();
  EXPECT_EQ(d[0][1], Specification::kUnreachable);
}

TEST(Spec, EffectiveMaxHopsAuto) {
  const Specification s = tiny_spec();
  // Worst candidate pair: p0 <-> p1 at distance 2.
  EXPECT_EQ(s.effective_max_hops(), 2U);
}

TEST(Spec, EffectiveMaxHopsExplicitOverride) {
  Specification s = tiny_spec();
  s.max_hops = 5;
  EXPECT_EQ(s.effective_max_hops(), 5U);
}

TEST(Spec, ValidateAcceptsSoundSpec) {
  EXPECT_EQ(tiny_spec().validate(), "");
}

TEST(Spec, ValidateRejectsUnmappedTask) {
  Specification s;
  s.add_resource("p", ResourceKind::Processor, 1);
  s.add_task("lonely");
  EXPECT_NE(s.validate().find("no mapping option"), std::string::npos);
}

TEST(Spec, ValidateRejectsUnroutableMessage) {
  Specification s;
  const ResourceId p0 = s.add_resource("p0", ResourceKind::Processor, 1);
  const ResourceId p1 = s.add_resource("p1", ResourceKind::Processor, 1);
  // No links at all.
  const TaskId a = s.add_task("a");
  const TaskId b = s.add_task("b");
  s.add_message("m", a, b, 1);
  s.add_mapping(a, p0, 1, 1);
  s.add_mapping(b, p1, 1, 1);
  EXPECT_NE(s.validate().find("no routable"), std::string::npos);
}

TEST(Spec, ValidateAcceptsCoLocatedOnlyMessage) {
  Specification s;
  const ResourceId p0 = s.add_resource("p0", ResourceKind::Processor, 1);
  const TaskId a = s.add_task("a");
  const TaskId b = s.add_task("b");
  s.add_message("m", a, b, 1);
  s.add_mapping(a, p0, 1, 1);
  s.add_mapping(b, p0, 1, 1);
  EXPECT_EQ(s.validate(), "");
  EXPECT_EQ(s.effective_max_hops(), 0U);
}

}  // namespace
}  // namespace aspmt::synth
