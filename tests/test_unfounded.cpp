#include "asp/unfounded.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "util/rng.hpp"

namespace aspmt::asp {
namespace {

TEST(Unfounded, TightProgramIsNoOp) {
  Program p;
  const Atom a = p.new_atom("a");
  p.fact(a);
  Solver s;
  const auto compiled = compile(p, s);
  UnfoundedSetChecker checker(compiled);
  s.add_propagator(&checker);
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_EQ(checker.loop_nogoods(), 0U);
}

TEST(Unfounded, PositiveLoopRejectedWithoutExternalSupport) {
  // a :- b. b :- a.  Completion admits {a,b}; stability rejects it.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.rule(a, {pos(b)});
  p.rule(b, {pos(a)});
  const auto models = test::solver_stable_models(p);
  ASSERT_EQ(models.size(), 1U);
  EXPECT_TRUE(models.count({false, false}) == 1);
}

TEST(Unfounded, LoopWithExternalSupportKeepsBothOutcomes) {
  // a :- b. b :- a. a :- c. {c}.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  const Atom c = p.new_atom("c");
  p.rule(a, {pos(b)});
  p.rule(b, {pos(a)});
  p.rule(a, {pos(c)});
  p.choice_rule(c);
  const auto ref = test::brute_force_stable_models(p);
  // {} and {a,b,c}
  EXPECT_EQ(ref.size(), 2U);
  EXPECT_EQ(test::solver_stable_models(p), ref);
}

TEST(Unfounded, LoopNogoodCounterIncrements) {
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  const Atom c = p.new_atom("c");
  p.rule(a, {pos(b)});
  p.rule(b, {pos(a)});
  // Force the completion to prefer the self-supporting model: require a.
  p.choice_rule(c);
  p.integrity({neg(a), pos(c)});
  Solver s;
  const auto compiled = compile(p, s);
  UnfoundedSetChecker checker(compiled);
  s.add_propagator(&checker);
  std::vector<Var> vars;
  for (Atom x = 0; x < p.num_atoms(); ++x) vars.push_back(compiled.atom_var[x]);
  const auto models = test::enumerate_projected(s, vars);
  // Only {} survives: a can never be true, so c must be false.
  ASSERT_EQ(models.size(), 1U);
  EXPECT_EQ(*models.begin(), (std::vector<bool>{false, false, false}));
  EXPECT_GT(checker.loop_nogoods(), 0U);
}

TEST(Unfounded, ThreeAtomCycle) {
  // a :- b. b :- c. c :- a. {d}. a :- d.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  const Atom c = p.new_atom("c");
  const Atom d = p.new_atom("d");
  p.rule(a, {pos(b)});
  p.rule(b, {pos(c)});
  p.rule(c, {pos(a)});
  p.rule(a, {pos(d)});
  p.choice_rule(d);
  const auto ref = test::brute_force_stable_models(p);
  EXPECT_EQ(test::solver_stable_models(p), ref);
  EXPECT_EQ(ref.size(), 2U);
}

TEST(Unfounded, TwoIndependentLoops) {
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  const Atom x = p.new_atom("x");
  const Atom y = p.new_atom("y");
  p.rule(a, {pos(b)});
  p.rule(b, {pos(a)});
  p.rule(x, {pos(y)});
  p.rule(y, {pos(x)});
  const auto models = test::solver_stable_models(p);
  ASSERT_EQ(models.size(), 1U);
  EXPECT_EQ(*models.begin(), (std::vector<bool>(4, false)));
}

TEST(Unfounded, ChoiceRuleInLoopStillNeedsFoundation) {
  // {a} :- b.  b :- a.  Choosing a requires b which requires a: unfounded.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.choice_rule(a, {pos(b)});
  p.rule(b, {pos(a)});
  const auto ref = test::brute_force_stable_models(p);
  ASSERT_EQ(ref.size(), 1U);
  EXPECT_TRUE(ref.count({false, false}) == 1);
  EXPECT_EQ(test::solver_stable_models(p), ref);
}

// Property: random (frequently non-tight) programs agree with brute force.
class RandomLoopyProgram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLoopyProgram, MatchesBruteForce) {
  util::Rng rng(GetParam() * 7919 + 13);
  Program p;
  const std::uint32_t n = 6;
  std::vector<Atom> atoms;
  for (std::uint32_t i = 0; i < n; ++i) {
    atoms.push_back(p.new_atom("a" + std::to_string(i)));
  }
  const std::uint32_t rules = 4 + static_cast<std::uint32_t>(rng.below(6));
  for (std::uint32_t r = 0; r < rules; ++r) {
    const Atom head = atoms[rng.below(n)];
    std::vector<BodyLit> body;
    const std::uint32_t body_len = static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t k = 0; k < body_len; ++k) {
      // Unrestricted positive references: loops happen regularly.
      body.push_back(BodyLit{atoms[rng.below(n)], rng.chance(0.6)});
    }
    if (rng.chance(0.3)) {
      p.choice_rule(head, std::move(body));
    } else {
      p.rule(head, std::move(body));
    }
  }
  const auto via_solver = test::solver_stable_models(p);
  const auto reference = test::brute_force_stable_models(p);
  EXPECT_EQ(via_solver, reference) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLoopyProgram,
                         ::testing::Range<std::uint64_t>(0, 60));

}  // namespace
}  // namespace aspmt::asp
