#include "asp/program.hpp"

#include <gtest/gtest.h>

#include "asp/completion.hpp"
#include "asp/solver.hpp"
#include "asp/unfounded.hpp"
#include "test_util.hpp"

namespace aspmt::test {

// Defined here, declared in test_util.hpp: run a program through the full
// production pipeline and enumerate its answer sets.
std::set<std::vector<bool>> solver_stable_models(const asp::Program& program) {
  asp::Solver solver;
  const asp::CompiledProgram compiled = asp::compile(program, solver);
  asp::UnfoundedSetChecker checker(compiled);
  solver.add_propagator(&checker);
  std::vector<asp::Var> vars;
  for (asp::Atom a = 0; a < program.num_atoms(); ++a) {
    vars.push_back(compiled.atom_var[a]);
  }
  return enumerate_projected(solver, vars);
}

}  // namespace aspmt::test

namespace aspmt::asp {
namespace {

TEST(Program, AtomCreationAndNames) {
  Program p;
  const Atom a = p.new_atom("alpha");
  const Atom b = p.new_atom();
  EXPECT_EQ(p.name(a), "alpha");
  EXPECT_FALSE(p.name(b).empty());
  EXPECT_EQ(p.num_atoms(), 2U);
  EXPECT_EQ(p.find("alpha"), a);
  EXPECT_EQ(p.find("missing"), p.num_atoms());
}

TEST(Program, RuleKindsRecorded) {
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.fact(a);
  p.rule(b, {pos(a)});
  p.choice_rule(b, {neg(a)});
  p.integrity({pos(a), pos(b)});
  ASSERT_EQ(p.rules().size(), 3U);
  EXPECT_FALSE(p.rules()[0].choice);
  EXPECT_TRUE(p.rules()[2].choice);
  EXPECT_EQ(p.constraints().size(), 1U);
}

TEST(StableModels, FactsOnly) {
  Program p;
  const Atom a = p.new_atom("a");
  p.new_atom("b");
  p.fact(a);
  const auto ref = test::brute_force_stable_models(p);
  ASSERT_EQ(ref.size(), 1U);
  EXPECT_TRUE(ref.count({true, false}) == 1);
  EXPECT_EQ(test::solver_stable_models(p), ref);
}

TEST(StableModels, EvenNegationLoopHasTwoModels) {
  // a :- not b.  b :- not a.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.rule(a, {neg(b)});
  p.rule(b, {neg(a)});
  const auto ref = test::brute_force_stable_models(p);
  EXPECT_EQ(ref.size(), 2U);
  EXPECT_EQ(test::solver_stable_models(p), ref);
}

TEST(StableModels, OddNegationLoopHasNoModel) {
  // a :- not a.
  Program p;
  const Atom a = p.new_atom("a");
  p.rule(a, {neg(a)});
  const auto ref = test::brute_force_stable_models(p);
  EXPECT_EQ(ref.size(), 0U);
  EXPECT_EQ(test::solver_stable_models(p), ref);
}

TEST(StableModels, PositiveLoopUnfounded) {
  // a :- b.  b :- a.   only the empty model is stable.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.rule(a, {pos(b)});
  p.rule(b, {pos(a)});
  const auto ref = test::brute_force_stable_models(p);
  ASSERT_EQ(ref.size(), 1U);
  EXPECT_TRUE(ref.count({false, false}) == 1);
  EXPECT_EQ(test::solver_stable_models(p), ref);
}

TEST(StableModels, ChoiceRuleGeneratesSubsets) {
  // {a}. {b}. -> 4 models.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.choice_rule(a);
  p.choice_rule(b);
  const auto ref = test::brute_force_stable_models(p);
  EXPECT_EQ(ref.size(), 4U);
  EXPECT_EQ(test::solver_stable_models(p), ref);
}

TEST(StableModels, ChoiceWithBodyIsConditional) {
  // {b} :- a.  with a a choice too: b requires a.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.choice_rule(a);
  p.choice_rule(b, {pos(a)});
  const auto ref = test::brute_force_stable_models(p);
  EXPECT_EQ(ref.size(), 3U);  // {}, {a}, {a,b}
  EXPECT_EQ(test::solver_stable_models(p), ref);
}

TEST(StableModels, IntegrityConstraintFilters) {
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.choice_rule(a);
  p.choice_rule(b);
  p.integrity({pos(a), pos(b)});
  const auto ref = test::brute_force_stable_models(p);
  EXPECT_EQ(ref.size(), 3U);
  EXPECT_EQ(test::solver_stable_models(p), ref);
}

TEST(StableModels, ConstraintWithNegation) {
  // {a}. :- not a.  -> only {a}.
  Program p;
  const Atom a = p.new_atom("a");
  p.choice_rule(a);
  p.integrity({neg(a)});
  const auto models = test::solver_stable_models(p);
  ASSERT_EQ(models.size(), 1U);
  EXPECT_TRUE(models.count({true}) == 1);
}

TEST(StableModels, UnreachableAtomForcedFalse) {
  Program p;
  const Atom a = p.new_atom("a");
  const Atom orphan = p.new_atom("orphan");
  (void)orphan;
  p.fact(a);
  const auto models = test::solver_stable_models(p);
  ASSERT_EQ(models.size(), 1U);
  EXPECT_TRUE(models.begin()->at(1) == false);
}

TEST(StableModels, ContradictoryBodyNeverFires) {
  // b :- a, not a.  {a}.  b never derivable.
  Program p;
  const Atom a = p.new_atom("a");
  const Atom b = p.new_atom("b");
  p.choice_rule(a);
  p.rule(b, {pos(a), neg(a)});
  const auto ref = test::brute_force_stable_models(p);
  for (const auto& m : ref) EXPECT_FALSE(m[b]);
  EXPECT_EQ(test::solver_stable_models(p), ref);
}

}  // namespace
}  // namespace aspmt::asp
