// Observability subsystem contract tests (DESIGN.md §11):
//
//   1. the event stream is faithful — replaying the archive events of a run
//      reconstructs exactly the front the run returned, and the metrics
//      snapshot agrees with ExploreStats field for field;
//   2. the ring drops and never blocks — concurrent producers on tiny rings
//      lose events, not ordering, and every event is either seen or counted
//      (run under TSan in the sanitize CI job);
//   3. the zero-observer path is inert — certified runs produce
//      byte-identical proof streams and identical fronts with and without a
//      sink attached, sequentially and at 1/2/4 portfolio threads;
//   4. the stock exporters emit well-formed output.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dse/explorer.hpp"
#include "dse/parallel_explorer.hpp"
#include "obs/collector.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/ring.hpp"
#include "obs/sink.hpp"
#include "pareto/archive.hpp"
#include "synth_fixtures.hpp"

namespace aspmt {
namespace {

/// Collects the full event stream in memory.  Safe to inspect once the
/// explorer has returned (the collector is stopped before the result is
/// assembled).
class CaptureSink final : public obs::EventSink {
 public:
  void on_event(const obs::Event& e) override { events.push_back(e); }
  void on_drop(std::uint64_t dropped) override { dropped_total += dropped; }
  void flush() override { ++flush_calls; }

  [[nodiscard]] std::uint64_t count(obs::EventKind kind) const {
    std::uint64_t n = 0;
    for (const obs::Event& e : events) n += e.kind == kind ? 1 : 0;
    return n;
  }

  std::vector<obs::Event> events;
  std::uint64_t dropped_total = 0;
  int flush_calls = 0;
};

// ---- 1. Faithful event stream ---------------------------------------------

TEST(Obs, ReplayingArchiveEventsReconstructsTheFront) {
  using SpecFn = synth::Specification (*)();
  for (const SpecFn make : {SpecFn{&test::two_proc_bus},
                            SpecFn{&test::chain3_bus},
                            SpecFn{&test::diamond_two_proc}}) {
    const synth::Specification spec = make();
    CaptureSink sink;
    dse::ExploreOptions opts;
    opts.common.sink = &sink;
    const dse::ExploreResult r = dse::explore(spec, opts);
    ASSERT_TRUE(r.stats.complete);

    const auto replay = pareto::make_archive("linear", 3);
    for (const obs::Event& e : sink.events) {
      if (e.kind == obs::EventKind::ArchiveInsert) {
        replay->insert(pareto::Vec{e.a, e.b, e.c});
      }
    }
    std::vector<pareto::Vec> replayed = replay->points();
    std::sort(replayed.begin(), replayed.end());
    std::vector<pareto::Vec> front = r.front;
    std::sort(front.begin(), front.end());
    EXPECT_EQ(replayed, front);
  }
}

TEST(Obs, EventStreamHasRunAndWorkerBrackets) {
  CaptureSink sink;
  dse::ExploreOptions opts;
  opts.common.sink = &sink;
  const dse::ExploreResult r = dse::explore(test::chain3_bus(), opts);
  ASSERT_TRUE(r.stats.complete);
  EXPECT_EQ(sink.count(obs::EventKind::RunStart), 1U);
  EXPECT_EQ(sink.count(obs::EventKind::RunEnd), 1U);
  EXPECT_EQ(sink.count(obs::EventKind::WorkerStart), 1U);
  EXPECT_EQ(sink.count(obs::EventKind::WorkerEnd), 1U);
  EXPECT_EQ(sink.count(obs::EventKind::ModelFound), r.stats.models);
  // Solve calls bracket correctly and the stream was flushed exactly once.
  EXPECT_EQ(sink.count(obs::EventKind::SolveStart),
            sink.count(obs::EventKind::SolveEnd));
  EXPECT_GT(sink.count(obs::EventKind::SolveStart), 0U);
  EXPECT_EQ(sink.flush_calls, 1);
  // The final RunEnd reports the front the result carries.
  const obs::Event& last = sink.events.back();
  EXPECT_EQ(last.kind, obs::EventKind::RunEnd);
  EXPECT_EQ(last.a, static_cast<std::int64_t>(r.front.size()));
}

TEST(Obs, MetricsSnapshotMatchesExploreStats) {
  obs::MetricsRegistry reg;
  dse::ExploreOptions opts;
  opts.common.metrics = &reg;
  const dse::ExploreResult r = dse::explore(test::chain3_bus(), opts);
  ASSERT_TRUE(r.stats.complete);
  EXPECT_EQ(reg.counter("explore.models").value(), r.stats.models);
  EXPECT_EQ(reg.counter("explore.prunings").value(), r.stats.prunings);
  EXPECT_EQ(reg.counter("explore.conflicts").value(), r.stats.conflicts);
  EXPECT_EQ(reg.counter("explore.decisions").value(), r.stats.decisions);
  EXPECT_EQ(reg.counter("explore.propagations").value(),
            r.stats.propagations);
  EXPECT_EQ(reg.counter("explore.theory_clauses").value(),
            r.stats.theory_clauses);
  EXPECT_EQ(reg.counter("explore.archive_comparisons").value(),
            r.stats.archive_comparisons);
  EXPECT_EQ(reg.counter("explore.front_size").value(), r.front.size());
  EXPECT_EQ(reg.gauge("explore.complete").value(), 1.0);
  // Per-insert archive work was observed once per accepted model.
  EXPECT_EQ(reg.histogram("archive.comparisons_per_insert").count(),
            r.stats.models);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"explore.models\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
}

TEST(Obs, ParallelMetricsMatchAggregatedStats) {
  obs::MetricsRegistry reg;
  dse::ParallelExploreOptions opts;
  opts.threads = 4;
  opts.common.metrics = &reg;
  const dse::ParallelExploreResult r =
      dse::explore_parallel(test::chain3_bus(), opts);
  ASSERT_TRUE(r.base.stats.complete);
  EXPECT_EQ(reg.counter("explore.models").value(), r.base.stats.models);
  EXPECT_EQ(reg.counter("explore.conflicts").value(), r.base.stats.conflicts);
  std::uint64_t worker_conflicts = 0;
  for (const dse::WorkerReport& w : r.workers) {
    worker_conflicts +=
        reg.counter("worker." + std::to_string(w.worker) + ".conflicts")
            .value();
  }
  EXPECT_EQ(worker_conflicts, r.base.stats.conflicts);
}

// ---- 2. Ring: drop, never block -------------------------------------------

TEST(Obs, RingDropsWhenFullAndAccountsEveryEvent) {
  obs::Recorder rec(0, obs::Recorder::Clock::now(), /*ring_capacity=*/8);
  rec.set_enabled(true);
  for (std::int64_t i = 0; i < 100; ++i) {
    rec.record(obs::EventKind::ModelFound, i);
  }
  std::vector<obs::Event> seen;
  rec.ring().pop_all(seen);
  EXPECT_EQ(seen.size(), 8U);
  EXPECT_EQ(rec.ring().dropped(), 92U);
  // The survivors are the *oldest* events, in emission order.
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].a, static_cast<std::int64_t>(i));
  }
  // Disabled recorders cost nothing and push nothing.
  rec.set_enabled(false);
  rec.record(obs::EventKind::ModelFound, 7);
  std::vector<obs::Event> after;
  rec.ring().pop_all(after);
  EXPECT_TRUE(after.empty());
}

TEST(Obs, ConcurrentProducersNeverBlockAndKeepPerWorkerOrder) {
  // Four producers hammer tiny rings while the collector drains as fast as
  // it can.  Every event is either delivered in per-worker order or counted
  // as dropped — and the producers never wait.  TSan-clean by construction.
  constexpr std::size_t kThreads = 4;
  constexpr std::int64_t kPerThread = 20000;

  struct OrderSink final : obs::EventSink {
    void on_event(const obs::Event& e) override {
      auto [it, fresh] = last.try_emplace(e.worker, -1);
      EXPECT_LT(it->second, e.a) << "per-worker order broken";
      it->second = e.a;
      ++seen[e.worker];
    }
    std::map<std::uint16_t, std::int64_t> last;
    std::map<std::uint16_t, std::uint64_t> seen;
  } sink;

  obs::Collector::Options copts;
  copts.ring_capacity = 1 << 8;
  copts.drain_interval_seconds = 0.0002;
  obs::Collector collector(sink, kThreads, copts);
  collector.start();

  std::vector<std::thread> producers;
  for (std::size_t w = 0; w < kThreads; ++w) {
    producers.emplace_back([&collector, w] {
      obs::Recorder& rec = collector.recorder(w);
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        rec.record(obs::EventKind::StatsSample, i);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  collector.stop();

  for (std::size_t w = 0; w < kThreads; ++w) {
    const std::uint64_t seen = sink.seen[static_cast<std::uint16_t>(w)];
    const std::uint64_t dropped = collector.recorder(w).ring().dropped();
    EXPECT_EQ(seen + dropped, static_cast<std::uint64_t>(kPerThread))
        << "worker " << w;
  }
}

// ---- 3. Zero-observer path is inert ---------------------------------------

TEST(Obs, CertifiedProofIsByteIdenticalWithAndWithoutSink) {
  const synth::Specification spec = test::chain3_bus();
  dse::ExploreOptions plain;
  plain.common.certify = true;
  const dse::ExploreResult without = dse::explore(spec, plain);
  ASSERT_TRUE(without.certified) << without.certificate_error;

  CaptureSink sink;
  obs::MetricsRegistry reg;
  dse::ExploreOptions observed;
  observed.common.certify = true;
  observed.common.sink = &sink;
  observed.common.metrics = &reg;
  const dse::ExploreResult with = dse::explore(spec, observed);
  ASSERT_TRUE(with.certified) << with.certificate_error;

  EXPECT_EQ(with.front, without.front);
  EXPECT_EQ(with.proof, without.proof);  // byte-identical
  EXPECT_EQ(with.stats.models, without.stats.models);
  EXPECT_EQ(with.stats.conflicts, without.stats.conflicts);
  EXPECT_FALSE(sink.events.empty());
}

TEST(Obs, PortfolioFrontUnchangedBySinkAtOneTwoFourThreads) {
  const synth::Specification spec = test::diamond_two_proc();
  const dse::ExploreResult seq = dse::explore(spec);
  ASSERT_TRUE(seq.stats.complete);
  for (const std::size_t threads : {1U, 2U, 4U}) {
    CaptureSink sink;
    dse::ParallelExploreOptions opts;
    opts.threads = threads;
    opts.common.sink = &sink;
    const dse::ParallelExploreResult r = dse::explore_parallel(spec, opts);
    ASSERT_TRUE(r.base.stats.complete) << threads;
    EXPECT_EQ(r.base.front, seq.front) << threads;
    // threads + 1 rings: every worker bracketed, orchestrator brackets run.
    EXPECT_EQ(sink.count(obs::EventKind::WorkerStart), threads);
    EXPECT_EQ(sink.count(obs::EventKind::WorkerEnd), threads);
    EXPECT_EQ(sink.count(obs::EventKind::RunStart), 1U);
    EXPECT_EQ(sink.count(obs::EventKind::RunEnd), 1U);
  }
}

TEST(Obs, ParallelCertifiedProofIsByteIdenticalWithSinkAtOneThread) {
  // threads == 1 runs the worker inline, so the proof stream is
  // deterministic and must not change when observability is attached.
  const synth::Specification spec = test::chain3_bus();
  dse::ParallelExploreOptions plain;
  plain.threads = 1;
  plain.common.certify = true;
  const dse::ParallelExploreResult without =
      dse::explore_parallel(spec, plain);
  ASSERT_TRUE(without.base.certified) << without.base.certificate_error;

  CaptureSink sink;
  dse::ParallelExploreOptions observed;
  observed.threads = 1;
  observed.common.certify = true;
  observed.common.sink = &sink;
  const dse::ParallelExploreResult with =
      dse::explore_parallel(spec, observed);
  ASSERT_TRUE(with.base.certified) << with.base.certificate_error;
  EXPECT_EQ(with.base.front, without.base.front);
  EXPECT_EQ(with.base.proof, without.base.proof);
}

// ---- 4. Exporters ----------------------------------------------------------

/// Structural well-formedness without a JSON parser: balanced braces and
/// brackets outside string literals.
void expect_balanced_json(const std::string& text) {
  long brace = 0;
  long bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++brace;
    else if (c == '}') --brace;
    else if (c == '[') ++bracket;
    else if (c == ']') --bracket;
    EXPECT_GE(brace, 0);
    EXPECT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
  EXPECT_FALSE(in_string);
}

TEST(Obs, ChromeTraceExporterEmitsBalancedJsonFromARealRun) {
  std::ostringstream out;
  {
    obs::ChromeTraceExporter chrome(out);
    dse::ParallelExploreOptions opts;
    opts.threads = 2;
    opts.common.sink = &chrome;
    const dse::ParallelExploreResult r =
        dse::explore_parallel(test::chain3_bus(), opts);
    ASSERT_TRUE(r.base.stats.complete);
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);  // solve spans
  EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"model\""), std::string::npos);
  EXPECT_NE(text.find("thread_name"), std::string::npos);
  expect_balanced_json(text);
}

TEST(Obs, ChromeTraceExporterClosesEvenWithoutEvents) {
  std::ostringstream out;
  obs::ChromeTraceExporter chrome(out);
  chrome.flush();
  expect_balanced_json(out.str());
  EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
}

TEST(Obs, NdjsonExporterEmitsOneObjectPerLine) {
  std::ostringstream out;
  obs::NdjsonExporter ndjson(out);
  CaptureSink capture;
  obs::MultiSink multi;
  multi.add(&ndjson);
  multi.add(&capture);
  dse::ExploreOptions opts;
  opts.common.sink = &multi;
  const dse::ExploreResult r = dse::explore(test::two_proc_bus(), opts);
  ASSERT_TRUE(r.stats.complete);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos);
    expect_balanced_json(line);
    ++n;
  }
  EXPECT_EQ(n, capture.events.size());  // MultiSink fan-out is lossless
}

TEST(Obs, ProgressMeterPrintsAFinalLine) {
  std::ostringstream out;
  obs::ProgressMeter progress(out);
  dse::ExploreOptions opts;
  opts.common.sink = &progress;
  const dse::ExploreResult r = dse::explore(test::two_proc_bus(), opts);
  ASSERT_TRUE(r.stats.complete);
  const std::string text = out.str();
  EXPECT_NE(text.find("[aspmt]"), std::string::npos);
  EXPECT_NE(text.find("front="), std::string::npos);
  EXPECT_NE(text.find("[done]"), std::string::npos);
}

TEST(Obs, EventKindNamesAreStable) {
  EXPECT_STREQ(obs::kind_name(obs::EventKind::RunStart), "run-start");
  EXPECT_STREQ(obs::kind_name(obs::EventKind::ModelFound), "model-found");
  EXPECT_STREQ(obs::kind_name(obs::EventKind::ArchiveInsert),
               "archive-insert");
  EXPECT_STREQ(obs::kind_name(obs::EventKind::DominancePrune),
               "dominance-prune");
  EXPECT_STREQ(obs::kind_name(obs::EventKind::BudgetTrip), "budget-trip");
  EXPECT_STREQ(obs::kind_name(obs::EventKind::CheckpointWrite),
               "checkpoint-write");
}

TEST(Obs, HistogramBucketsByLog2) {
  obs::Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  EXPECT_EQ(h.count(), 5U);
  EXPECT_EQ(h.sum(), 10U);
  EXPECT_EQ(h.max(), 4U);
  EXPECT_EQ(h.bucket(0), 1U);  // the zero
  EXPECT_EQ(h.bucket(1), 1U);  // [1, 2)
  EXPECT_EQ(h.bucket(2), 2U);  // [2, 4)
  EXPECT_EQ(h.bucket(3), 1U);  // [4, 8)
}

}  // namespace
}  // namespace aspmt
