// Distributed sharding is an *exact* method: whatever the shard/process
// split, the merged front must be point-for-point identical to the
// single-process explorer's and the merged certificate must verify.  These
// tests enforce that over the full {threads} x {processes} matrix on every
// synth fixture, exercise both execution backends (in-process lanes and
// forked shard workers), and drive the certified merge with adversarial
// shard results — forged witnesses, truncated proofs, overlapping and
// missing bands — that must all be rejected.
#include "dse/distributed.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cert/certify.hpp"
#include "dse/explorer.hpp"
#include "dse/parallel_explorer.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "pareto/point.hpp"
#include "synth/validator.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::dse {
namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

struct Fixture {
  const char* name;
  synth::Specification spec;
};

std::vector<Fixture> fixtures() {
  std::vector<Fixture> f;
  f.push_back({"singleton", test::singleton()});
  f.push_back({"two_proc_bus", test::two_proc_bus()});
  f.push_back({"chain3_bus", test::chain3_bus()});
  f.push_back({"diamond_two_proc", test::diamond_two_proc()});
  return f;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "aspmt_dist_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void expect_tiling(const std::vector<Shard>& shards) {
  ASSERT_FALSE(shards.empty());
  EXPECT_EQ(shards.front().lo, kMin);
  EXPECT_EQ(shards.back().hi, kMax);
  for (std::size_t i = 0; i + 1 < shards.size(); ++i) {
    ASSERT_LT(shards[i].hi, kMax);
    EXPECT_EQ(shards[i + 1].lo, shards[i].hi + 1)
        << "bands " << i << " and " << i + 1 << " do not meet";
  }
}

// ---- shard_objective_space -------------------------------------------------

TEST(Distributed, SingleShardSplitIsOneUnboundedBand) {
  const std::vector<Shard> shards =
      shard_objective_space(test::chain3_bus(), 1, 1);
  ASSERT_EQ(shards.size(), 1U);
  EXPECT_EQ(shards[0].lo, kMin);
  EXPECT_EQ(shards[0].hi, kMax);
}

TEST(Distributed, BandsTileTheObjectiveLine) {
  const synth::Specification spec = test::chain3_bus();
  for (const std::size_t want : {2U, 3U, 4U}) {
    const std::vector<Shard> shards = shard_objective_space(spec, want, 1);
    EXPECT_LE(shards.size(), want);
    expect_tiling(shards);
  }
}

TEST(Distributed, DegenerateSampleCollapsesToFewerShards) {
  // The singleton fixture has one design point: every sampled objective
  // value coincides, so no quantile split exists and the request collapses
  // to a single unbounded band instead of fabricating empty shards.
  const std::vector<Shard> shards =
      shard_objective_space(test::singleton(), 4, 1);
  ASSERT_EQ(shards.size(), 1U);
  EXPECT_EQ(shards[0].lo, kMin);
  EXPECT_EQ(shards[0].hi, kMax);
}

TEST(Distributed, SplitSampleDoublesAsValidatedSeedPool) {
  const synth::Specification spec = test::chain3_bus();
  std::vector<WarmSeedCandidate> seeds;
  const std::vector<Shard> shards =
      shard_objective_space(spec, 2, 1, 256, 1, &seeds);
  expect_tiling(shards);
  ASSERT_FALSE(seeds.empty());
  for (const WarmSeedCandidate& s : seeds) {
    EXPECT_EQ(synth::validate_implementation(spec, s.impl), "");
    EXPECT_EQ(s.impl.objectives(), s.point);
  }
}

// ---- seed-file handoff -----------------------------------------------------

TEST(Distributed, SeedFileRoundTrips) {
  std::vector<WarmSeedCandidate> seeds;
  (void)shard_objective_space(test::chain3_bus(), 2, 1, 256, 1, &seeds);
  ASSERT_FALSE(seeds.empty());

  const std::string path = temp_path("seeds_roundtrip.txt");
  ASSERT_TRUE(save_seed_file(path, seeds));
  std::vector<WarmSeedCandidate> loaded;
  ASSERT_EQ(load_seed_file(path, loaded), "");
  ASSERT_EQ(loaded.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(loaded[i].point, seeds[i].point);
    EXPECT_EQ(loaded[i].impl.objectives(), seeds[i].impl.objectives());
    EXPECT_EQ(loaded[i].impl.option_of_task, seeds[i].impl.option_of_task);
  }
  std::remove(path.c_str());
}

TEST(Distributed, CorruptSeedFilesAreRejected) {
  std::vector<WarmSeedCandidate> seeds;
  (void)shard_objective_space(test::chain3_bus(), 2, 1, 256, 1, &seeds);
  ASSERT_FALSE(seeds.empty());
  const std::string path = temp_path("seeds_corrupt.txt");
  ASSERT_TRUE(save_seed_file(path, seeds));
  const std::string good = slurp(path);

  auto rejects = [&](const std::string& text) {
    std::ofstream(path, std::ios::binary) << text;
    std::vector<WarmSeedCandidate> out;
    return !load_seed_file(path, out).empty();
  };
  EXPECT_TRUE(rejects("aspmt-seeds 9\n0\n")) << "wrong header version";
  EXPECT_TRUE(rejects("not a seed file\n")) << "foreign header";
  // Truncation: drop the final witness line — the promised count is short.
  const std::size_t last_w = good.rfind("\nw ");
  ASSERT_NE(last_w, std::string::npos);
  EXPECT_TRUE(rejects(good.substr(0, last_w + 1))) << "truncated file";
  // A witness that fails to parse must not slip through as empty.
  std::string bad = good;
  const std::size_t w_at = bad.find("\nw ");
  ASSERT_NE(w_at, std::string::npos);
  bad.replace(w_at, 3, "\nw @");
  EXPECT_TRUE(rejects(bad)) << "mangled witness";
  std::remove(path.c_str());
}

// ---- RESULT payload --------------------------------------------------------

TEST(Distributed, ShardResultPayloadRoundTrips) {
  ParallelExploreOptions opts;
  opts.threads = 2;
  opts.common.certify = true;
  const ParallelExploreResult r =
      explore_parallel(test::chain3_bus(), opts);
  ASSERT_TRUE(r.base.stats.complete);
  ASSERT_FALSE(r.discovery_witnesses.empty());
  ASSERT_FALSE(r.base.proof.empty());

  const std::string text = shard_result_to_text(r);
  ShardResultPayload p;
  ASSERT_EQ(parse_shard_result(text, p), "");
  EXPECT_TRUE(p.complete);
  EXPECT_EQ(p.models, r.base.stats.models);
  EXPECT_EQ(p.front, r.base.front);
  EXPECT_EQ(p.proof, r.base.proof);
  ASSERT_EQ(p.discoveries.size(), r.discovery_witnesses.size());
  for (std::size_t i = 0; i < p.discoveries.size(); ++i) {
    EXPECT_EQ(p.discoveries[i].first, r.discovery_witnesses[i].first);
    EXPECT_EQ(p.discoveries[i].second.option_of_task,
              r.discovery_witnesses[i].second.option_of_task);
  }
}

TEST(Distributed, TruncatedShardResultIsRejected) {
  ParallelExploreOptions opts;
  opts.common.certify = true;
  const ParallelExploreResult r = explore_parallel(test::two_proc_bus(), opts);
  ASSERT_TRUE(r.base.stats.complete);
  const std::string text = shard_result_to_text(r);
  ShardResultPayload p;
  // Every prefix that cuts into the proof bytes or the trailer must fail:
  // the length-prefixed framing makes truncation detectable, not silent.
  EXPECT_NE(parse_shard_result(text.substr(0, text.size() / 2), p), "");
  EXPECT_NE(parse_shard_result(text.substr(0, text.size() - 5), p), "");
  EXPECT_NE(parse_shard_result("", p), "");
}

// ---- the equivalence matrix ------------------------------------------------

TEST(Distributed, FrontMatchesSingleProcessAcrossThreadByProcessMatrix) {
  for (const Fixture& f : fixtures()) {
    const ExploreResult seq = explore(f.spec);
    ASSERT_TRUE(seq.stats.complete) << f.name;
    for (const std::size_t threads : {1U, 2U, 4U}) {
      for (const std::size_t processes : {1U, 2U, 4U}) {
        DistributedOptions opts;
        opts.in_process = true;  // deterministic backend for the matrix
        opts.processes = processes;
        opts.base.threads = threads;
        opts.base.common.certify = true;
        const DistributedResult r = explore_distributed(f.spec, opts);
        ASSERT_TRUE(r.base.stats.complete)
            << f.name << " t" << threads << " p" << processes;
        EXPECT_EQ(r.base.front, seq.front)
            << f.name << " t" << threads << " p" << processes;
        EXPECT_TRUE(r.base.certified)
            << f.name << " t" << threads << " p" << processes << ": "
            << r.base.certificate_error;
        for (const ShardReport& s : r.shards) {
          EXPECT_TRUE(s.completed) << f.name << " shard " << s.shard;
          EXPECT_EQ(s.attempts, 1U) << f.name << " shard " << s.shard;
        }
      }
    }
  }
}

TEST(Distributed, MergedWitnessesValidateAndMatchTheFront) {
  const synth::Specification spec = test::chain3_bus();
  DistributedOptions opts;
  opts.in_process = true;
  opts.processes = 2;
  opts.base.common.certify = true;
  const DistributedResult r = explore_distributed(spec, opts);
  ASSERT_TRUE(r.base.certified) << r.base.certificate_error;
  ASSERT_EQ(r.base.witnesses.size(), r.base.front.size());
  for (std::size_t i = 0; i < r.base.front.size(); ++i) {
    EXPECT_EQ(synth::validate_implementation(spec, r.base.witnesses[i]), "");
    EXPECT_EQ(r.base.witnesses[i].objectives(), r.base.front[i]);
  }
}

TEST(Distributed, MergedProofContainerRoundTripsAndReCertifies) {
  const synth::Specification spec = test::chain3_bus();
  DistributedOptions opts;
  opts.in_process = true;
  opts.processes = 2;
  opts.base.common.certify = true;
  const DistributedResult r = explore_distributed(spec, opts);
  ASSERT_TRUE(r.base.certified) << r.base.certificate_error;
  ASSERT_FALSE(r.base.proof.empty());
  EXPECT_EQ(r.base.proof.compare(0, cert::kMergedProofHeader.size(),
                                 cert::kMergedProofHeader),
            0);
  std::size_t objective = 99;
  std::vector<cert::ShardProof> shards;
  ASSERT_EQ(cert::parse_merged_proof(r.base.proof, objective, shards), "");
  EXPECT_EQ(objective, 1U);
  EXPECT_EQ(shards.size(), r.shards.size());
}

TEST(Distributed, CoordinatorEmitsShardLifecycleEvents) {
  struct Capture final : obs::EventSink {
    std::vector<obs::Event> events;
    bool flushed = false;
    void on_event(const obs::Event& e) override { events.push_back(e); }
    void flush() override { flushed = true; }
  } capture;

  DistributedOptions opts;
  opts.in_process = true;
  opts.processes = 2;
  opts.base.common.sink = &capture;
  const DistributedResult r = explore_distributed(test::chain3_bus(), opts);
  ASSERT_TRUE(r.base.stats.complete);
  EXPECT_TRUE(capture.flushed);

  std::size_t spawns = 0;
  std::size_t exits = 0;
  std::size_t run_start = 0;
  std::size_t run_end = 0;
  for (const obs::Event& e : capture.events) {
    switch (e.kind) {
      case obs::EventKind::ShardSpawn: ++spawns; break;
      case obs::EventKind::ShardExit: ++exits; break;
      case obs::EventKind::RunStart: ++run_start; break;
      case obs::EventKind::RunEnd: ++run_end; break;
      default: break;
    }
  }
  EXPECT_EQ(run_start, 1U);
  EXPECT_EQ(run_end, 1U);
  EXPECT_EQ(spawns, r.shards.size());
  EXPECT_EQ(exits, r.shards.size());
}

// ---- adversarial merged certification ---------------------------------------
//
// Built from a *real* 2-shard certified run: each adversarial case tampers
// with exactly one aspect of otherwise-valid shard results, so a rejection
// can only come from the check under test.

struct TwoShardRun {
  synth::Specification spec;
  std::vector<Shard> bands;
  std::vector<std::pair<pareto::Vec, synth::Implementation>> discoveries;
  std::vector<pareto::Vec> front;
  std::vector<cert::ShardProof> proofs;
};

TwoShardRun real_two_shard_run() {
  TwoShardRun run;
  run.spec = test::chain3_bus();
  run.bands = shard_objective_space(run.spec, 2, 1);
  EXPECT_EQ(run.bands.size(), 2U);

  std::vector<pareto::Vec> union_points;
  for (const Shard& band : run.bands) {
    ParallelExploreOptions opts;
    opts.common.certify = true;
    opts.shard.active = true;
    opts.shard.objective = 1;
    opts.shard.lo = band.lo;
    opts.shard.hi = band.hi;
    const ParallelExploreResult r = explore_parallel(run.spec, opts);
    EXPECT_TRUE(r.base.stats.complete);
    for (const auto& [point, impl] : r.discovery_witnesses) {
      bool seen = false;
      for (const auto& [p, unused] : run.discoveries) seen = seen || p == point;
      if (!seen) run.discoveries.emplace_back(point, impl);
    }
    for (const pareto::Vec& p : r.base.front) union_points.push_back(p);
    run.proofs.push_back(cert::ShardProof{band.lo, band.hi, r.base.proof});
  }
  run.front = pareto::non_dominated_filter(std::move(union_points));
  return run;
}

TEST(Distributed, AdversarialShardResultsAreRejected) {
  const TwoShardRun run = real_two_shard_run();
  ASSERT_EQ(run.proofs.size(), 2U);

  // Baseline: the untampered run certifies — every rejection below is
  // attributable to its single tampered aspect.
  {
    const cert::MergedCertifyResult ok = cert::certify_merged(
        run.spec, run.discoveries, run.front, run.proofs, 1);
    ASSERT_TRUE(ok.certified) << ok.error;
  }

  // Forged witness: a discovery claims objectives its implementation does
  // not realise.
  {
    auto discoveries = run.discoveries;
    ASSERT_FALSE(discoveries.empty());
    discoveries.front().first[0] += 1;
    const cert::MergedCertifyResult r = cert::certify_merged(
        run.spec, discoveries, run.front, run.proofs, 1);
    EXPECT_FALSE(r.certified);
    EXPECT_FALSE(r.error.empty());
  }

  // Dropped witness: a discovery with an empty implementation cannot stand
  // in for the proof's F step.
  {
    auto discoveries = run.discoveries;
    discoveries.front().second = synth::Implementation{};
    const cert::MergedCertifyResult r = cert::certify_merged(
        run.spec, discoveries, run.front, run.proofs, 1);
    EXPECT_FALSE(r.certified);
  }

  // Truncated proof: shard 1's stream loses its tail (and with it the
  // verified Unsat conclusion).
  {
    auto proofs = run.proofs;
    ASSERT_GT(proofs[1].proof.size(), 40U);
    proofs[1].proof.resize(proofs[1].proof.size() / 2);
    const cert::MergedCertifyResult r = cert::certify_merged(
        run.spec, run.discoveries, run.front, proofs, 1);
    EXPECT_FALSE(r.certified);
  }

  // Overlapping bands: shard 1 claims to start inside shard 0's band, so
  // the claimed bands no longer tile the objective line.
  {
    auto proofs = run.proofs;
    proofs[1].lo = proofs[0].lo;
    const cert::MergedCertifyResult r = cert::certify_merged(
        run.spec, run.discoveries, run.front, proofs, 1);
    EXPECT_FALSE(r.certified);
  }

  // Missing band: dropping a shard leaves a hole no Unsat covers.
  {
    const std::vector<cert::ShardProof> proofs{run.proofs[0]};
    const cert::MergedCertifyResult r = cert::certify_merged(
        run.spec, run.discoveries, run.front, proofs, 1);
    EXPECT_FALSE(r.certified);
  }

  // Band claim wider than the proven box: the bands still tile, but shard
  // 0's proof only established exhaustion up to its real hi.
  {
    auto proofs = run.proofs;
    proofs[0].hi += 5;
    proofs[1].lo += 5;
    const cert::MergedCertifyResult r = cert::certify_merged(
        run.spec, run.discoveries, run.front, proofs, 1);
    EXPECT_FALSE(r.certified);
  }

  // Forged front: an extra (dominated) point smuggled into the merged front
  // fails the front == non-dominated-filter(union) check.
  {
    auto front = run.front;
    ASSERT_FALSE(front.empty());
    pareto::Vec extra = front.front();
    for (std::int64_t& v : extra) v += 1;
    front.push_back(extra);
    const cert::MergedCertifyResult r = cert::certify_merged(
        run.spec, run.discoveries, front, run.proofs, 1);
    EXPECT_FALSE(r.certified);
  }
}

// ---- process mode ----------------------------------------------------------
//
// ASPMT_DSE_BIN points at the real aspmt_dse binary (set by the test build),
// so these run the genuine fork/exec + pipe + RESULT path end to end.
#ifdef ASPMT_DSE_BIN

TEST(Distributed, ProcessModeMatchesSingleProcessAndCertifies) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult seq = explore(spec);
  ASSERT_TRUE(seq.stats.complete);

  DistributedOptions opts;
  opts.processes = 2;
  opts.base.threads = 1;
  opts.base.common.certify = true;
  opts.worker_path = ASPMT_DSE_BIN;
  const DistributedResult r = explore_distributed(spec, opts);
  ASSERT_TRUE(r.base.stats.complete);
  EXPECT_EQ(r.base.front, seq.front);
  EXPECT_TRUE(r.base.certified) << r.base.certificate_error;
  for (const ShardReport& s : r.shards) {
    EXPECT_TRUE(s.completed) << "shard " << s.shard << ": " << s.error;
    EXPECT_EQ(s.attempts, 1U);
    EXPECT_GT(s.seconds, 0.0);
  }
}

TEST(Distributed, KilledWorkerIsRequeuedAndConvergesToTheSameFront) {
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult seq = explore(spec);
  ASSERT_TRUE(seq.stats.complete);

  obs::MetricsRegistry metrics;
  DistributedOptions opts;
  opts.processes = 2;
  opts.base.threads = 1;
  opts.base.common.certify = true;
  opts.base.common.metrics = &metrics;
  opts.worker_path = ASPMT_DSE_BIN;
  opts.sabotage_shard = 0;  // first attempt self-kills after one point
  opts.sabotage_after_points = 1;
  const DistributedResult r = explore_distributed(spec, opts);
  ASSERT_TRUE(r.base.stats.complete)
      << (r.base.errors.empty() ? "" : r.base.errors.front());
  EXPECT_EQ(r.base.front, seq.front);
  EXPECT_TRUE(r.base.certified) << r.base.certificate_error;
  ASSERT_FALSE(r.shards.empty());
  EXPECT_EQ(r.shards[0].attempts, 2U) << "sabotaged shard was not requeued";
  EXPECT_TRUE(r.shards[0].completed) << r.shards[0].error;
  EXPECT_EQ(metrics.counter("distributed.requeues").value(), 1U);
  // Total launches across both shards: the sabotaged one twice, the other
  // once (supervised retry bookkeeping, shared with the service layer).
  EXPECT_EQ(metrics.counter("distributed.requeue_attempts").value(), 3U);
}

TEST(Distributed, RemovedCliAliasesAreHardErrors) {
  const std::string err_path = temp_path("alias_stderr.txt");
  const std::string cmd = std::string(ASPMT_DSE_BIN) +
                          " explore missing.txt --proof=x 2>" + err_path;
  const int status = std::system(cmd.c_str());
  ASSERT_NE(status, -1);
  EXPECT_NE(status, 0) << "--proof must be a hard error";
  const std::string err = slurp(err_path);
  EXPECT_NE(err.find("--proof was removed"), std::string::npos) << err;
  EXPECT_NE(err.find("--proof-out"), std::string::npos) << err;
  std::remove(err_path.c_str());

  const std::string cmd2 = std::string(ASPMT_DSE_BIN) +
                           " explore missing.txt --checkpoint=x 2>" + err_path;
  EXPECT_NE(std::system(cmd2.c_str()), 0);
  const std::string err2 = slurp(err_path);
  EXPECT_NE(err2.find("--checkpoint-out"), std::string::npos) << err2;
  std::remove(err_path.c_str());
}

#endif  // ASPMT_DSE_BIN

}  // namespace
}  // namespace aspmt::dse
