#include "dse/baselines.hpp"

#include <gtest/gtest.h>

#include "dse/explorer.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::dse {
namespace {

TEST(EnumerateAndFilter, SingletonEnumeratesOneModel) {
  const synth::Specification spec = test::singleton();
  const BaselineResult r = enumerate_and_filter(spec);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.models, 1U);
  ASSERT_EQ(r.front.size(), 1U);
  EXPECT_EQ(r.front[0], (pareto::Vec{4, 2, 3}));
}

TEST(EnumerateAndFilter, CountsAllTwoProcImplementations) {
  const synth::Specification spec = test::two_proc_bus();
  const BaselineResult r = enumerate_and_filter(spec);
  ASSERT_TRUE(r.complete);
  // 4 binding combinations; co-located ones add a serialization choice, but
  // the message a->b forces a before b, so both orders of the prec pair are
  // not both feasible... the count must at least cover the 4 bindings.
  EXPECT_GE(r.models, 4U);
  EXPECT_FALSE(r.front.empty());
}

TEST(EnumerateAndFilter, FrontIsNonDominated) {
  const synth::Specification spec = test::chain3_bus();
  const BaselineResult r = enumerate_and_filter(spec);
  ASSERT_TRUE(r.complete);
  for (const auto& p : r.front) {
    for (const auto& q : r.front) {
      if (&p == &q) continue;
      EXPECT_FALSE(pareto::weakly_dominates(p, q) && p != q);
    }
  }
}

TEST(EnumerateAndFilter, TimeoutIncomplete) {
  const synth::Specification spec = test::diamond_two_proc();
  const BaselineResult r = enumerate_and_filter(spec, 1e-9);
  EXPECT_FALSE(r.complete);
}

TEST(LexicographicEpsilon, MatchesExplorerTwoProc) {
  const synth::Specification spec = test::two_proc_bus();
  const BaselineResult b = lexicographic_epsilon(spec);
  const ExploreResult e = explore(spec);
  ASSERT_TRUE(b.complete);
  ASSERT_TRUE(e.stats.complete);
  EXPECT_EQ(b.front, e.front);
}

TEST(LexicographicEpsilon, MatchesExplorerChain) {
  const synth::Specification spec = test::chain3_bus();
  const BaselineResult b = lexicographic_epsilon(spec);
  const ExploreResult e = explore(spec);
  ASSERT_TRUE(b.complete);
  ASSERT_TRUE(e.stats.complete);
  EXPECT_EQ(b.front, e.front);
}

TEST(LexicographicEpsilon, MatchesExplorerDiamond) {
  const synth::Specification spec = test::diamond_two_proc();
  const BaselineResult b = lexicographic_epsilon(spec, 120.0);
  const ExploreResult e = explore(spec);
  ASSERT_TRUE(b.complete);
  ASSERT_TRUE(e.stats.complete);
  EXPECT_EQ(b.front, e.front);
}

TEST(LexicographicEpsilon, SingletonSinglePoint) {
  const synth::Specification spec = test::singleton();
  const BaselineResult r = lexicographic_epsilon(spec);
  ASSERT_TRUE(r.complete);
  ASSERT_EQ(r.front.size(), 1U);
  EXPECT_EQ(r.front[0], (pareto::Vec{4, 2, 3}));
}

TEST(LexicographicEpsilon, TimeoutIncomplete) {
  const synth::Specification spec = test::diamond_two_proc();
  const BaselineResult r = lexicographic_epsilon(spec, 1e-9);
  EXPECT_FALSE(r.complete);
}

TEST(LexicographicEpsilonCold, MatchesWarmVariant) {
  for (const synth::Specification& spec :
       {test::two_proc_bus(), test::chain3_bus(), test::diamond_two_proc()}) {
    const BaselineResult warm = lexicographic_epsilon(spec, 120.0);
    const BaselineResult cold = lexicographic_epsilon_cold(spec, 120.0);
    ASSERT_TRUE(warm.complete && cold.complete);
    EXPECT_EQ(warm.front, cold.front);
  }
}

TEST(LexicographicEpsilonCold, TimeoutIncomplete) {
  const synth::Specification spec = test::diamond_two_proc();
  const BaselineResult r = lexicographic_epsilon_cold(spec, 1e-9);
  EXPECT_FALSE(r.complete);
}

TEST(Baselines, ThreeExactMethodsAgree) {
  // The strongest consistency check in the suite: three independently
  // implemented exact algorithms must produce identical fronts.
  const synth::Specification spec = test::chain3_bus();
  const ExploreResult e = explore(spec);
  const BaselineResult b1 = enumerate_and_filter(spec);
  const BaselineResult b2 = lexicographic_epsilon(spec);
  ASSERT_TRUE(e.stats.complete && b1.complete && b2.complete);
  EXPECT_EQ(e.front, b1.front);
  EXPECT_EQ(b1.front, b2.front);
}

}  // namespace
}  // namespace aspmt::dse
