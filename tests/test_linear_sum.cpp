#include "theory/linear_sum.hpp"

#include <gtest/gtest.h>

#include "asp/solver.hpp"
#include "test_util.hpp"

namespace aspmt::theory {
namespace {

using asp::Lit;
using asp::Solver;
using asp::Var;

Lit L(Var v, bool s = true) { return Lit::make(v, s); }

struct Fixture {
  Solver solver;
  LinearSumPropagator linear;
  std::vector<Var> vars;

  explicit Fixture(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) vars.push_back(solver.new_var());
    solver.add_propagator(&linear);
  }
};

TEST(LinearSum, BoundsAtRoot) {
  Fixture f(3);
  const auto sum = f.linear.add_sum(
      "s", {{L(f.vars[0]), 5}, {L(f.vars[1]), 3}, {L(f.vars[2]), 2}});
  EXPECT_EQ(f.linear.lower_bound(sum), 0);
  EXPECT_EQ(f.linear.upper_bound(sum), 10);
}

TEST(LinearSum, ValueUnderModelMatchesGuards) {
  Fixture f(3);
  const auto sum = f.linear.add_sum(
      "s", {{L(f.vars[0]), 5}, {L(f.vars[1]), 3}, {~L(f.vars[2]), 2}});
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[0])}));
  ASSERT_TRUE(f.solver.add_clause({~L(f.vars[1])}));
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[2])}));
  ASSERT_EQ(f.solver.solve(), Solver::Result::Sat);
  EXPECT_EQ(f.linear.value_under_model(sum, f.solver.model()), 5);
}

TEST(LinearSum, UnguardedBoundPrunesModels) {
  Fixture f(4);
  std::vector<Term> terms;
  for (const Var v : f.vars) terms.push_back(Term{L(v), 1});
  const auto sum = f.linear.add_sum("count", std::move(terms));
  f.linear.set_bound(sum, 2);
  const auto models = test::enumerate_projected(f.solver, f.vars);
  // Subsets of size <= 2 of 4 elements: 1 + 4 + 6 = 11.
  EXPECT_EQ(models.size(), 11U);
}

TEST(LinearSum, WeightedBoundExactFrontier) {
  Fixture f(3);
  const auto sum = f.linear.add_sum(
      "s", {{L(f.vars[0]), 4}, {L(f.vars[1]), 3}, {L(f.vars[2]), 2}});
  f.linear.set_bound(sum, 5);
  const auto models = test::enumerate_projected(f.solver, f.vars);
  // Allowed subsets: {}, {4}, {3}, {2}, {3,2}=5. Not {4,3},{4,2},{4,3,2}.
  EXPECT_EQ(models.size(), 5U);
}

TEST(LinearSum, BoundZeroForcesAllGuardsFalse) {
  Fixture f(3);
  std::vector<Term> terms;
  for (const Var v : f.vars) terms.push_back(Term{L(v), 2});
  const auto sum = f.linear.add_sum("s", std::move(terms));
  f.linear.set_bound(sum, 0);
  ASSERT_EQ(f.solver.solve(), Solver::Result::Sat);
  for (const Var v : f.vars) EXPECT_FALSE(f.solver.model_value(v));
}

TEST(LinearSum, InfeasibleBoundUnsat) {
  Fixture f(2);
  const auto sum =
      f.linear.add_sum("s", {{L(f.vars[0]), 3}, {L(f.vars[1]), 3}});
  f.linear.set_bound(sum, 4);
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[0])}));
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[1])}));
  EXPECT_EQ(f.solver.solve(), Solver::Result::Unsat);
}

TEST(LinearSum, ActivationGuardedBoundOnlyUnderAssumption) {
  Fixture f(2);
  const auto sum =
      f.linear.add_sum("s", {{L(f.vars[0]), 3}, {L(f.vars[1]), 3}});
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[0])}));
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[1])}));
  const Var act = f.solver.new_var();
  f.linear.add_bound(sum, 4, L(act));
  // Without the assumption the bound is dormant.
  EXPECT_EQ(f.solver.solve(), Solver::Result::Sat);
  // Under the assumption it bites.
  const std::vector<Lit> assume{L(act)};
  EXPECT_EQ(f.solver.solve(assume), Solver::Result::Unsat);
  // And the solver stays usable.
  EXPECT_EQ(f.solver.solve(), Solver::Result::Sat);
}

TEST(LinearSum, TightestOfMultipleBoundsWins) {
  Fixture f(3);
  std::vector<Term> terms;
  for (const Var v : f.vars) terms.push_back(Term{L(v), 1});
  const auto sum = f.linear.add_sum("s", std::move(terms));
  f.linear.add_bound(sum, 2);
  f.linear.add_bound(sum, 1);
  const auto models = test::enumerate_projected(f.solver, f.vars);
  EXPECT_EQ(models.size(), 4U);  // size <= 1
}

TEST(LinearSum, ExplainLowerBoundPrefersHeavyGuards) {
  Fixture f(3);
  const auto sum = f.linear.add_sum(
      "s", {{L(f.vars[0]), 10}, {L(f.vars[1]), 2}, {L(f.vars[2]), 1}});
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[0])}));
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[1])}));
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[2])}));
  ASSERT_EQ(f.solver.solve(), Solver::Result::Sat);
  // Bounds and explanation state live on the trail; query inside a check:
  // solve() backtracks to root, so re-propagate by solving again with the
  // propagator attached and inspect through value_under_model instead.
  EXPECT_EQ(f.linear.value_under_model(sum, f.solver.model()), 13);
}

TEST(LinearSum, PartialEvaluationOffDelaysConflictToCheck) {
  Fixture f(2);
  f.linear.set_partial_evaluation(false);
  const auto sum =
      f.linear.add_sum("s", {{L(f.vars[0]), 3}, {L(f.vars[1]), 3}});
  f.linear.set_bound(sum, 4);
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[0])}));
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[1])}));
  // Still unsatisfiable — just discovered later.
  EXPECT_EQ(f.solver.solve(), Solver::Result::Unsat);
}

TEST(LinearSum, SeveralSumsIndependent) {
  Fixture f(2);
  const auto s1 = f.linear.add_sum("one", {{L(f.vars[0]), 7}});
  const auto s2 = f.linear.add_sum("two", {{L(f.vars[1]), 9}});
  ASSERT_TRUE(f.solver.add_clause({L(f.vars[0])}));
  ASSERT_TRUE(f.solver.add_clause({~L(f.vars[1])}));
  ASSERT_EQ(f.solver.solve(), Solver::Result::Sat);
  EXPECT_EQ(f.linear.value_under_model(s1, f.solver.model()), 7);
  EXPECT_EQ(f.linear.value_under_model(s2, f.solver.model()), 0);
  EXPECT_EQ(f.linear.name(s1), "one");
  EXPECT_EQ(f.linear.name(s2), "two");
}

TEST(LinearSum, NegativeLiteralGuards) {
  // Terms guarded by negative literals count when the variable is false.
  Fixture f(2);
  const auto sum =
      f.linear.add_sum("s", {{~L(f.vars[0]), 5}, {~L(f.vars[1]), 5}});
  f.linear.set_bound(sum, 5);
  const auto models = test::enumerate_projected(f.solver, f.vars);
  // Forbidden: both false (sum 10). 3 models remain.
  EXPECT_EQ(models.size(), 3U);
  EXPECT_EQ(models.count({false, false}), 0U);
}

}  // namespace
}  // namespace aspmt::theory
