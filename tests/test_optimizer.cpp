#include "dse/optimizer.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "dse/baselines.hpp"
#include "dse/context.hpp"
#include "synth_fixtures.hpp"

namespace aspmt::dse {
namespace {

/// Coordinate-wise minimum over the exhaustive front — the reference for
/// single-objective optima (the front contains the per-objective minima).
std::int64_t reference_min(const synth::Specification& spec, std::size_t obj) {
  const BaselineResult all = enumerate_and_filter(spec);
  EXPECT_TRUE(all.complete);
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const auto& p : all.front) best = std::min(best, p[obj]);
  return best;
}

class MinimizeEachObjective
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MinimizeEachObjective, MatchesExhaustiveMinimumTwoProc) {
  const synth::Specification spec = test::two_proc_bus();
  SynthContext ctx(spec);
  std::vector<asp::Lit> assumptions;
  const MinimizeResult r =
      minimize_objective(ctx, GetParam(), assumptions, nullptr);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.best, reference_min(spec, GetParam()));
}

TEST_P(MinimizeEachObjective, MatchesExhaustiveMinimumChain) {
  const synth::Specification spec = test::chain3_bus();
  SynthContext ctx(spec);
  std::vector<asp::Lit> assumptions;
  const MinimizeResult r =
      minimize_objective(ctx, GetParam(), assumptions, nullptr);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.best, reference_min(spec, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Objectives, MinimizeEachObjective,
                         ::testing::Values(0U, 1U, 2U));

TEST(Optimizer, LexicographicStagesPinEarlierObjectives) {
  const synth::Specification spec = test::chain3_bus();
  SynthContext ctx(spec);
  std::vector<asp::Lit> assumptions;
  const MinimizeResult lat = minimize_objective(ctx, 0, assumptions, nullptr);
  ASSERT_TRUE(lat.feasible && lat.proven);
  const MinimizeResult en = minimize_objective(ctx, 1, assumptions, nullptr);
  ASSERT_TRUE(en.feasible && en.proven);
  const MinimizeResult cost = minimize_objective(ctx, 2, assumptions, nullptr);
  ASSERT_TRUE(cost.feasible && cost.proven);
  // The lexicographic point must lie on the exhaustive front.
  const BaselineResult all = enumerate_and_filter(spec);
  const pareto::Vec point{lat.best, en.best, cost.best};
  EXPECT_NE(std::find(all.front.begin(), all.front.end(), point),
            all.front.end());
  // And it must be the lexicographically smallest front point.
  EXPECT_EQ(point, all.front.front());
}

TEST(Optimizer, SolverRemainsUsableAfterOptimum) {
  const synth::Specification spec = test::two_proc_bus();
  SynthContext ctx(spec);
  std::vector<asp::Lit> assumptions;
  const MinimizeResult r = minimize_objective(ctx, 0, assumptions, nullptr);
  ASSERT_TRUE(r.proven);
  // Solving without assumptions still works (activation guards dormant).
  EXPECT_EQ(ctx.solver.solve(), asp::Solver::Result::Sat);
}

TEST(Optimizer, ExpiredDeadlineIsUnproven) {
  const synth::Specification spec = test::chain3_bus();
  SynthContext ctx(spec);
  std::vector<asp::Lit> assumptions;
  const util::Deadline expired(1e-9);
  const MinimizeResult r = minimize_objective(ctx, 0, assumptions, &expired);
  EXPECT_FALSE(r.proven);
}

TEST(Optimizer, InfeasibleUnderAssumptionReported) {
  const synth::Specification spec = test::singleton();
  SynthContext ctx(spec);
  // Pin an impossible latency first.
  const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
  ctx.objectives.add_bound(0, 1, act);  // latency <= 1 < wcet 4
  std::vector<asp::Lit> assumptions{act};
  const MinimizeResult r = minimize_objective(ctx, 1, assumptions, nullptr);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.proven);
}

}  // namespace
}  // namespace aspmt::dse
