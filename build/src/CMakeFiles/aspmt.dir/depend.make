# Empty dependencies file for aspmt.
# This may be replaced when dependencies are built.
