file(REMOVE_RECURSE
  "libaspmt.a"
)
