
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asp/cardinality.cpp" "src/CMakeFiles/aspmt.dir/asp/cardinality.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/asp/cardinality.cpp.o.d"
  "/root/repo/src/asp/clause.cpp" "src/CMakeFiles/aspmt.dir/asp/clause.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/asp/clause.cpp.o.d"
  "/root/repo/src/asp/completion.cpp" "src/CMakeFiles/aspmt.dir/asp/completion.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/asp/completion.cpp.o.d"
  "/root/repo/src/asp/grounder.cpp" "src/CMakeFiles/aspmt.dir/asp/grounder.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/asp/grounder.cpp.o.d"
  "/root/repo/src/asp/heuristic.cpp" "src/CMakeFiles/aspmt.dir/asp/heuristic.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/asp/heuristic.cpp.o.d"
  "/root/repo/src/asp/program.cpp" "src/CMakeFiles/aspmt.dir/asp/program.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/asp/program.cpp.o.d"
  "/root/repo/src/asp/solver.cpp" "src/CMakeFiles/aspmt.dir/asp/solver.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/asp/solver.cpp.o.d"
  "/root/repo/src/asp/textio.cpp" "src/CMakeFiles/aspmt.dir/asp/textio.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/asp/textio.cpp.o.d"
  "/root/repo/src/asp/unfounded.cpp" "src/CMakeFiles/aspmt.dir/asp/unfounded.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/asp/unfounded.cpp.o.d"
  "/root/repo/src/dse/baselines.cpp" "src/CMakeFiles/aspmt.dir/dse/baselines.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/dse/baselines.cpp.o.d"
  "/root/repo/src/dse/context.cpp" "src/CMakeFiles/aspmt.dir/dse/context.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/dse/context.cpp.o.d"
  "/root/repo/src/dse/dominance.cpp" "src/CMakeFiles/aspmt.dir/dse/dominance.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/dse/dominance.cpp.o.d"
  "/root/repo/src/dse/explorer.cpp" "src/CMakeFiles/aspmt.dir/dse/explorer.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/dse/explorer.cpp.o.d"
  "/root/repo/src/dse/objective_manager.cpp" "src/CMakeFiles/aspmt.dir/dse/objective_manager.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/dse/objective_manager.cpp.o.d"
  "/root/repo/src/dse/optimizer.cpp" "src/CMakeFiles/aspmt.dir/dse/optimizer.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/dse/optimizer.cpp.o.d"
  "/root/repo/src/ea/nsga2.cpp" "src/CMakeFiles/aspmt.dir/ea/nsga2.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/ea/nsga2.cpp.o.d"
  "/root/repo/src/gen/generator.cpp" "src/CMakeFiles/aspmt.dir/gen/generator.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/gen/generator.cpp.o.d"
  "/root/repo/src/pareto/archive.cpp" "src/CMakeFiles/aspmt.dir/pareto/archive.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/pareto/archive.cpp.o.d"
  "/root/repo/src/pareto/indicators.cpp" "src/CMakeFiles/aspmt.dir/pareto/indicators.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/pareto/indicators.cpp.o.d"
  "/root/repo/src/pareto/point.cpp" "src/CMakeFiles/aspmt.dir/pareto/point.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/pareto/point.cpp.o.d"
  "/root/repo/src/pareto/quadtree.cpp" "src/CMakeFiles/aspmt.dir/pareto/quadtree.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/pareto/quadtree.cpp.o.d"
  "/root/repo/src/synth/encoder.cpp" "src/CMakeFiles/aspmt.dir/synth/encoder.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/synth/encoder.cpp.o.d"
  "/root/repo/src/synth/implementation.cpp" "src/CMakeFiles/aspmt.dir/synth/implementation.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/synth/implementation.cpp.o.d"
  "/root/repo/src/synth/spec.cpp" "src/CMakeFiles/aspmt.dir/synth/spec.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/synth/spec.cpp.o.d"
  "/root/repo/src/synth/specio.cpp" "src/CMakeFiles/aspmt.dir/synth/specio.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/synth/specio.cpp.o.d"
  "/root/repo/src/synth/validator.cpp" "src/CMakeFiles/aspmt.dir/synth/validator.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/synth/validator.cpp.o.d"
  "/root/repo/src/theory/asp_minimize.cpp" "src/CMakeFiles/aspmt.dir/theory/asp_minimize.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/theory/asp_minimize.cpp.o.d"
  "/root/repo/src/theory/difference.cpp" "src/CMakeFiles/aspmt.dir/theory/difference.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/theory/difference.cpp.o.d"
  "/root/repo/src/theory/linear_sum.cpp" "src/CMakeFiles/aspmt.dir/theory/linear_sum.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/theory/linear_sum.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/aspmt.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/aspmt.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/aspmt.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/aspmt.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
