file(REMOVE_RECURSE
  "CMakeFiles/aspmt_dse.dir/aspmt_dse.cpp.o"
  "CMakeFiles/aspmt_dse.dir/aspmt_dse.cpp.o.d"
  "aspmt_dse"
  "aspmt_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspmt_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
