# Empty dependencies file for aspmt_dse.
# This may be replaced when dependencies are built.
