# Empty compiler generated dependencies file for bench_ext_anytime.
# This may be replaced when dependencies are built.
