file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_anytime.dir/bench_ext_anytime.cpp.o"
  "CMakeFiles/bench_ext_anytime.dir/bench_ext_anytime.cpp.o.d"
  "bench_ext_anytime"
  "bench_ext_anytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
