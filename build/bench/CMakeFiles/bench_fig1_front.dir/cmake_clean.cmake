file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_front.dir/bench_fig1_front.cpp.o"
  "CMakeFiles/bench_fig1_front.dir/bench_fig1_front.cpp.o.d"
  "bench_fig1_front"
  "bench_fig1_front.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_front.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
