# Empty compiler generated dependencies file for bench_ext_approximation.
# This may be replaced when dependencies are built.
