file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_partial_eval.dir/bench_fig3_partial_eval.cpp.o"
  "CMakeFiles/bench_fig3_partial_eval.dir/bench_fig3_partial_eval.cpp.o.d"
  "bench_fig3_partial_eval"
  "bench_fig3_partial_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_partial_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
