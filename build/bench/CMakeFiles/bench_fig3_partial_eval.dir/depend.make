# Empty dependencies file for bench_fig3_partial_eval.
# This may be replaced when dependencies are built.
