file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mechanisms.dir/bench_ext_mechanisms.cpp.o"
  "CMakeFiles/bench_ext_mechanisms.dir/bench_ext_mechanisms.cpp.o.d"
  "bench_ext_mechanisms"
  "bench_ext_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
