file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_archive.dir/bench_fig4_archive.cpp.o"
  "CMakeFiles/bench_fig4_archive.dir/bench_fig4_archive.cpp.o.d"
  "bench_fig4_archive"
  "bench_fig4_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
