# Empty dependencies file for noc_multimedia.
# This may be replaced when dependencies are built.
