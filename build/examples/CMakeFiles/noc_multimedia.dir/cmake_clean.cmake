file(REMOVE_RECURSE
  "CMakeFiles/noc_multimedia.dir/noc_multimedia.cpp.o"
  "CMakeFiles/noc_multimedia.dir/noc_multimedia.cpp.o.d"
  "noc_multimedia"
  "noc_multimedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_multimedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
