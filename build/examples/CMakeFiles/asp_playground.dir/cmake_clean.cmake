file(REMOVE_RECURSE
  "CMakeFiles/asp_playground.dir/asp_playground.cpp.o"
  "CMakeFiles/asp_playground.dir/asp_playground.cpp.o.d"
  "asp_playground"
  "asp_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asp_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
