# Empty compiler generated dependencies file for asp_playground.
# This may be replaced when dependencies are built.
