
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_cardinality.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_cardinality.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_cardinality.cpp.o.d"
  "/root/repo/tests/test_completion.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_completion.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_completion.cpp.o.d"
  "/root/repo/tests/test_constraints.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_constraints.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_constraints.cpp.o.d"
  "/root/repo/tests/test_difference.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_difference.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_difference.cpp.o.d"
  "/root/repo/tests/test_encoder.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_encoder.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_encoder.cpp.o.d"
  "/root/repo/tests/test_explorer.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_explorer.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_explorer.cpp.o.d"
  "/root/repo/tests/test_fuzz_dse.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_fuzz_dse.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_fuzz_dse.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_grounder.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_grounder.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_grounder.cpp.o.d"
  "/root/repo/tests/test_indicators.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_indicators.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_indicators.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_linear_sum.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_linear_sum.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_linear_sum.cpp.o.d"
  "/root/repo/tests/test_nsga2.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_nsga2.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_nsga2.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_pareto.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_pareto.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_pareto.cpp.o.d"
  "/root/repo/tests/test_program.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_program.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_program.cpp.o.d"
  "/root/repo/tests/test_quadtree.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_quadtree.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_quadtree.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_solver.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_solver.cpp.o.d"
  "/root/repo/tests/test_solver_stress.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_solver_stress.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_solver_stress.cpp.o.d"
  "/root/repo/tests/test_spec.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_spec.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_spec.cpp.o.d"
  "/root/repo/tests/test_specio.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_specio.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_specio.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_textio.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_textio.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_textio.cpp.o.d"
  "/root/repo/tests/test_unfounded.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_unfounded.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_unfounded.cpp.o.d"
  "/root/repo/tests/test_validator.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_validator.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_validator.cpp.o.d"
  "/root/repo/tests/test_weight_rules.cpp" "tests/CMakeFiles/aspmt_tests.dir/test_weight_rules.cpp.o" "gcc" "tests/CMakeFiles/aspmt_tests.dir/test_weight_rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aspmt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
