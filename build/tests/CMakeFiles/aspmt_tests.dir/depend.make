# Empty dependencies file for aspmt_tests.
# This may be replaced when dependencies are built.
