#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

namespace aspmt::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void Histogram::observe(std::uint64_t sample) noexcept {
  std::size_t bucket = 0;
  if (sample != 0) {
    bucket = 1;
    while (bucket < kBuckets - 1 && (1ULL << bucket) <= sample) ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  return histograms_[name];
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << c.value();
    first = false;
  }
  out << (counters_.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << json_number(g.value());
    first = false;
  }
  out << (gauges_.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const std::uint64_t count = h.count();
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {"
        << "\"count\": " << count << ", \"sum\": " << h.sum()
        << ", \"mean\": "
        << json_number(count == 0
                           ? 0.0
                           : static_cast<double>(h.sum()) /
                                 static_cast<double>(count))
        << ", \"max\": " << h.max() << ", \"buckets\": [";
    // Trailing all-zero buckets are elided; bucket i counts samples in
    // [2^(i-1), 2^i), bucket 0 the zeros.
    std::size_t last = Histogram::kBuckets;
    while (last > 0 && h.bucket(last - 1) == 0) --last;
    for (std::size_t i = 0; i < last; ++i) {
      out << (i == 0 ? "" : ", ") << h.bucket(i);
    }
    out << "]}";
    first = false;
  }
  out << (histograms_.empty() ? "" : "\n  ") << "}\n}";
  return out.str();
}

}  // namespace aspmt::obs
