// Single-producer single-consumer lock-free event ring (DESIGN.md §11).
//
// One ring per instrumented thread: the owning worker is the only pusher,
// the collector thread the only popper.  Overflow policy is *drop, never
// block*: when the consumer lags, push() counts the event into `dropped_`
// and returns — the producer's latency is one acquire load, one store and
// one release store in the common case, with no CAS, no allocation and no
// possibility of waiting on the consumer.  Dropped events are reported once
// at end of run through EventSink::on_drop.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/events.hpp"

namespace aspmt::obs {

class EventRing {
 public:
  /// `capacity` is rounded up to a power of two (masked indexing).
  explicit EventRing(std::size_t capacity = kDefaultCapacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Producer side.  Returns false (and counts the drop) when full.
  bool push(const Event& e) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = e;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: append every pending event to `out`.  Returns the
  /// number popped.
  std::size_t pop_all(std::vector<Event>& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    for (std::uint64_t i = tail; i != head; ++i) {
      out.push_back(slots_[i & mask_]);
    }
    tail_.store(head, std::memory_order_release);
    return static_cast<std::size_t>(head - tail);
  }

  /// Events discarded because the ring was full (relaxed; exact after the
  /// producer has stopped).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  static constexpr std::size_t kDefaultCapacity = 1 << 14;

 private:
  std::vector<Event> slots_;
  std::size_t mask_ = 0;
  // Producer and consumer cursors on separate cache lines so the producer's
  // release store never contends with the consumer's tail bump.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace aspmt::obs
