#include "obs/events.hpp"

namespace aspmt::obs {

const char* kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::RunStart: return "run-start";
    case EventKind::RunEnd: return "run-end";
    case EventKind::WorkerStart: return "worker-start";
    case EventKind::WorkerEnd: return "worker-end";
    case EventKind::SolveStart: return "solve-start";
    case EventKind::SolveEnd: return "solve-end";
    case EventKind::Restart: return "restart";
    case EventKind::StatsSample: return "stats-sample";
    case EventKind::ModelFound: return "model-found";
    case EventKind::ArchiveInsert: return "archive-insert";
    case EventKind::ArchiveEvict: return "archive-evict";
    case EventKind::DominancePrune: return "dominance-prune";
    case EventKind::SliceActivate: return "slice-activate";
    case EventKind::SliceExhaust: return "slice-exhaust";
    case EventKind::BudgetTrip: return "budget-trip";
    case EventKind::CheckpointWrite: return "checkpoint-write";
    case EventKind::WarmStartSeed: return "warmstart-seed";
    case EventKind::SliceScheduled: return "slice-scheduled";
    case EventKind::RespecDelta: return "respec-delta";
    case EventKind::RespecReuse: return "respec-reuse";
    case EventKind::ShardSpawn: return "shard-spawn";
    case EventKind::ShardExit: return "shard-exit";
    case EventKind::ShardRequeue: return "shard-requeue";
    case EventKind::ShardPoint: return "shard-point";
    case EventKind::ShardHeartbeat: return "shard-heartbeat";
    case EventKind::JobAdmit: return "job-admit";
    case EventKind::JobShed: return "job-shed";
    case EventKind::JobRequeue: return "job-requeue";
    case EventKind::JobQuarantine: return "job-quarantine";
    case EventKind::JobDone: return "job-done";
  }
  return "unknown";
}

}  // namespace aspmt::obs
