#include "obs/exporters.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>

namespace aspmt::obs {
namespace {

/// Event timestamps are ns; trace_event and the NDJSON log use microseconds.
double to_us(std::uint64_t t_ns) {
  return static_cast<double>(t_ns) / 1000.0;
}

std::string fmt_us(std::uint64_t t_ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", to_us(t_ns));
  return buf;
}

/// Compact human count: 1234 -> "1.2k", 5600000 -> "5.6M".
std::string fmt_si(std::uint64_t v) {
  char buf[32];
  if (v >= 1000000000ULL) {
    std::snprintf(buf, sizeof buf, "%.1fG", static_cast<double>(v) / 1e9);
  } else if (v >= 1000000ULL) {
    std::snprintf(buf, sizeof buf, "%.1fM", static_cast<double>(v) / 1e6);
  } else if (v >= 10000ULL) {
    std::snprintf(buf, sizeof buf, "%.1fk", static_cast<double>(v) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  }
  return buf;
}

}  // namespace

// ---- NdjsonExporter --------------------------------------------------------

void NdjsonExporter::on_event(const Event& e) {
  out_ << "{\"t_us\":" << fmt_us(e.t_ns) << ",\"worker\":" << e.worker
       << ",\"kind\":\"" << kind_name(e.kind) << "\",\"a\":" << e.a
       << ",\"b\":" << e.b << ",\"c\":" << e.c << "}\n";
}

void NdjsonExporter::on_drop(std::uint64_t dropped) {
  out_ << "{\"kind\":\"dropped\",\"count\":" << dropped << "}\n";
}

void NdjsonExporter::flush() { out_.flush(); }

// ---- ChromeTraceExporter ---------------------------------------------------

void ChromeTraceExporter::emit(const char* ph, const char* name,
                               const Event& e, const std::string& extra) {
  if (closed_) return;
  if (first_) {
    out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    first_ = false;
  } else {
    out_ << ",\n";
  }
  out_ << "{\"ph\":\"" << ph << "\",\"name\":\"" << name
       << "\",\"pid\":0,\"tid\":" << e.worker << ",\"ts\":" << fmt_us(e.t_ns)
       << extra << "}";
}

void ChromeTraceExporter::emit_counters(std::uint64_t t_ns) {
  Event synth;
  synth.t_ns = t_ns;
  synth.worker = 0;
  std::int64_t prunings = 0;
  for (const auto& [w, v] : prunings_) prunings += v;
  std::int64_t conflicts = 0;
  for (const auto& [w, v] : conflicts_) conflicts += v;
  emit("C", "front", synth,
       ",\"args\":{\"points\":" + std::to_string(front_size_) + "}");
  emit("C", "prunings", synth,
       ",\"args\":{\"total\":" + std::to_string(prunings) + "}");
  emit("C", "conflicts", synth,
       ",\"args\":{\"total\":" + std::to_string(conflicts) + "}");
  counters_dirty_ = false;
}

void ChromeTraceExporter::on_event(const Event& e) {
  last_t_ns_ = e.t_ns;
  std::ostringstream args;
  switch (e.kind) {
    case EventKind::RunStart:
      emit("M", "process_name", e, ",\"args\":{\"name\":\"aspmt_dse\"}");
      args << ",\"s\":\"g\",\"args\":{\"wall_limit_ms\":" << e.a
           << ",\"workers\":" << e.b << ",\"conflict_budget\":" << e.c << "}";
      emit("i", "run-start", e, args.str());
      break;
    case EventKind::RunEnd:
      args << ",\"s\":\"g\",\"args\":{\"front\":" << e.a << ",\"models\":"
           << e.b << ",\"complete\":" << e.c << "}";
      emit("i", "run-end", e, args.str());
      break;
    case EventKind::WorkerStart:
      args << ",\"args\":{\"name\":\"worker-" << e.a << "\"}";
      emit("M", "thread_name", e, args.str());
      emit("i", "worker-start", e, ",\"s\":\"t\"");
      break;
    case EventKind::WorkerEnd:
      args << ",\"s\":\"t\",\"args\":{\"models\":" << e.a
           << ",\"conflicts\":" << e.b << ",\"failed\":" << e.c << "}";
      emit("i", "worker-end", e, args.str());
      break;
    case EventKind::SolveStart:
      args << ",\"args\":{\"assumptions\":" << e.a << "}";
      emit("B", "solve", e, args.str());
      break;
    case EventKind::SolveEnd: {
      static const char* kResult[] = {"sat", "unsat", "unknown"};
      const char* result =
          e.a >= 0 && e.a < 3 ? kResult[e.a] : "?";
      args << ",\"args\":{\"result\":\"" << result
           << "\",\"conflicts\":" << e.b << ",\"propagations\":" << e.c << "}";
      emit("E", "solve", e, args.str());
      break;
    }
    case EventKind::Restart:
      emit("i", "restart", e, ",\"s\":\"t\"");
      break;
    case EventKind::StatsSample:
      conflicts_[e.worker] = e.a;
      counters_dirty_ = true;
      break;
    case EventKind::ModelFound:
      args << ",\"s\":\"t\",\"args\":{\"point\":[" << e.a << "," << e.b << ","
           << e.c << "]}";
      emit("i", "model", e, args.str());
      break;
    case EventKind::ArchiveInsert:
      ++front_size_;
      counters_dirty_ = true;
      break;
    case EventKind::ArchiveEvict:
      front_size_ = e.b;  // authoritative size after the insertion
      counters_dirty_ = true;
      break;
    case EventKind::DominancePrune:
      prunings_[e.worker] = e.a;
      counters_dirty_ = true;
      break;
    case EventKind::SliceActivate:
      args << ",\"s\":\"t\",\"args\":{\"slice\":" << e.a << ",\"bound\":"
           << e.b << "}";
      emit("i", "slice-activate", e, args.str());
      break;
    case EventKind::SliceExhaust:
      args << ",\"s\":\"t\",\"args\":{\"slice\":" << e.a << "}";
      emit("i", "slice-exhaust", e, args.str());
      break;
    case EventKind::BudgetTrip:
      args << ",\"s\":\"g\",\"args\":{\"reason\":" << e.a << "}";
      emit("i", "budget-trip", e, args.str());
      break;
    case EventKind::CheckpointWrite:
      args << ",\"s\":\"t\",\"args\":{\"points\":" << e.a << ",\"ok\":" << e.b
           << "}";
      emit("i", "checkpoint-write", e, args.str());
      break;
    case EventKind::WarmStartSeed:
      ++front_size_;
      counters_dirty_ = true;
      args << ",\"s\":\"g\",\"args\":{\"point\":[" << e.a << "," << e.b << ","
           << e.c << "]}";
      emit("i", "warmstart-seed", e, args.str());
      break;
    case EventKind::SliceScheduled:
      args << ",\"s\":\"t\",\"args\":{\"slice\":" << e.a << ",\"bound\":"
           << e.b << ",\"gap\":" << e.c << "}";
      emit("i", "slice-scheduled", e, args.str());
      break;
    case EventKind::ShardSpawn:
      args << ",\"s\":\"g\",\"args\":{\"shard\":" << e.a << ",\"lo\":" << e.b
           << ",\"hi\":" << e.c << "}";
      emit("i", "shard-spawn", e, args.str());
      break;
    case EventKind::ShardExit:
      args << ",\"s\":\"g\",\"args\":{\"shard\":" << e.a << ",\"delivered\":"
           << e.b << ",\"attempt\":" << e.c << "}";
      emit("i", "shard-exit", e, args.str());
      break;
    case EventKind::ShardRequeue:
      args << ",\"s\":\"g\",\"args\":{\"shard\":" << e.a << ",\"attempt\":"
           << e.b << ",\"resumed\":" << e.c << "}";
      emit("i", "shard-requeue", e, args.str());
      break;
    case EventKind::ShardPoint:
      args << ",\"s\":\"g\",\"args\":{\"point\":[" << e.a << "," << e.b << ","
           << e.c << "]}";
      emit("i", "shard-point", e, args.str());
      break;
    case EventKind::ShardHeartbeat:
      // High-frequency liveness signal; counters, not instants, keep the
      // trace readable.
      break;
    default:
      break;
  }
}

void ChromeTraceExporter::tick() {
  // Counter tracks are flushed on the collector heartbeat, not per event —
  // a run with 10^5 prunings stays a few hundred counter samples.
  if (counters_dirty_) emit_counters(last_t_ns_);
}

void ChromeTraceExporter::on_drop(std::uint64_t dropped) {
  Event synth;
  synth.t_ns = last_t_ns_;
  emit("i", "events-dropped", synth,
       ",\"s\":\"g\",\"args\":{\"count\":" + std::to_string(dropped) + "}");
}

void ChromeTraceExporter::flush() {
  if (closed_) return;
  if (counters_dirty_) emit_counters(last_t_ns_);
  if (first_) {
    out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    first_ = false;
  }
  out_ << "\n]}\n";
  closed_ = true;
  out_.flush();
}

// ---- ProgressMeter ---------------------------------------------------------

void ProgressMeter::on_event(const Event& e) {
  if (e.t_ns > t_ns_) t_ns_ = e.t_ns;
  switch (e.kind) {
    case EventKind::RunStart:
      wall_limit_ms_ = e.a;
      break;
    case EventKind::ModelFound:
      ++models_;
      break;
    case EventKind::ArchiveInsert:
    case EventKind::WarmStartSeed:
      ++front_size_;
      break;
    case EventKind::ArchiveEvict:
      front_size_ = e.b;
      break;
    case EventKind::StatsSample:
      conflicts_[e.worker] = e.a;
      break;
    default:
      break;
  }
}

void ProgressMeter::print_line(bool final_line) {
  const double seconds = static_cast<double>(t_ns_) / 1e9;
  std::uint64_t conflicts = 0;
  for (const auto& [w, v] : conflicts_) {
    conflicts += static_cast<std::uint64_t>(v);
  }
  const double dt = seconds - last_print_seconds_;
  const double rate =
      dt > 1e-9
          ? static_cast<double>(conflicts - conflicts_at_last_print_) / dt
          : 0.0;
  char head[160];
  std::snprintf(head, sizeof head,
                "[aspmt] %7.1fs  front=%lld  models=%s  conflicts=%s (%s/s)",
                seconds, static_cast<long long>(front_size_),
                fmt_si(models_).c_str(), fmt_si(conflicts).c_str(),
                fmt_si(static_cast<std::uint64_t>(rate)).c_str());
  out_ << head;
  if (wall_limit_ms_ > 0) {
    const double limit = static_cast<double>(wall_limit_ms_) / 1000.0;
    char budget[64];
    std::snprintf(budget, sizeof budget, "  budget %.0f%% of %.0fs",
                  100.0 * seconds / limit, limit);
    out_ << budget;
  }
  out_ << (final_line ? "  [done]\n" : "\n");
  out_.flush();
  last_print_seconds_ = seconds;
  conflicts_at_last_print_ = conflicts;
  any_line_ = true;
}

void ProgressMeter::tick() {
  const double seconds = static_cast<double>(t_ns_) / 1e9;
  if (!any_line_ || seconds - last_print_seconds_ >= interval_seconds_) {
    print_line(false);
  }
}

void ProgressMeter::flush() { print_line(true); }

}  // namespace aspmt::obs
