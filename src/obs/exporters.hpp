// Stock EventSink implementations: NDJSON event log, Chrome trace_event
// JSON (loadable in Perfetto / about:tracing), and a human progress line.
//
// All exporters write to a caller-owned std::ostream and are driven
// exclusively from the collector thread (see sink.hpp for the contract).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/sink.hpp"

namespace aspmt::obs {

/// One JSON object per line:
/// {"t_us":1234.5,"worker":0,"kind":"model-found","a":7,"b":3,"c":9}
/// plus a final {"kind":"dropped","count":N} line when rings overflowed.
class NdjsonExporter final : public EventSink {
 public:
  explicit NdjsonExporter(std::ostream& out) : out_(out) {}

  void on_event(const Event& event) override;
  void on_drop(std::uint64_t dropped) override;
  void flush() override;

 private:
  std::ostream& out_;
};

/// Chrome trace_event JSON: solve() calls become duration (B/E) pairs per
/// worker track, models/restarts/slices become instants, and front size /
/// conflicts / prunings become counter tracks.  Load the file via
/// ui.perfetto.dev → "Open trace file" or chrome://tracing.
class ChromeTraceExporter final : public EventSink {
 public:
  explicit ChromeTraceExporter(std::ostream& out) : out_(out) {}

  void on_event(const Event& event) override;
  void tick() override;
  void on_drop(std::uint64_t dropped) override;
  void flush() override;

 private:
  /// Emit one trace-event object; `extra` is appended raw after the common
  /// fields (e.g. ",\"args\":{...}").
  void emit(const char* ph, const char* name, const Event& event,
            const std::string& extra = {});
  void emit_counters(std::uint64_t t_ns);

  std::ostream& out_;
  bool first_ = true;
  bool closed_ = false;
  std::int64_t front_size_ = 0;
  std::map<std::uint16_t, std::int64_t> prunings_;   // per-worker totals
  std::map<std::uint16_t, std::int64_t> conflicts_;  // per-worker totals
  std::uint64_t last_t_ns_ = 0;
  bool counters_dirty_ = false;
};

/// Periodic one-line status report (front size, models, conflict rate, ETA
/// against the wall budget) — the CLI's --progress sink, pointed at stderr.
class ProgressMeter final : public EventSink {
 public:
  explicit ProgressMeter(std::ostream& out, double interval_seconds = 1.0)
      : out_(out), interval_seconds_(interval_seconds) {}

  void on_event(const Event& event) override;
  void tick() override;
  void flush() override;

 private:
  void print_line(bool final_line);

  std::ostream& out_;
  double interval_seconds_;
  std::uint64_t t_ns_ = 0;          ///< latest event timestamp seen
  std::int64_t wall_limit_ms_ = 0;  ///< from RunStart; 0 = unlimited
  std::int64_t front_size_ = 0;
  std::uint64_t models_ = 0;
  std::map<std::uint16_t, std::int64_t> conflicts_;  // per-worker totals
  double last_print_seconds_ = 0.0;
  std::uint64_t conflicts_at_last_print_ = 0;
  bool any_line_ = false;
};

}  // namespace aspmt::obs
