// Per-thread producer handle of the observability pipeline.
//
// A Recorder owns one SPSC EventRing and stamps every record() with a
// steady-clock timestamp relative to the collector epoch.  Instrumented
// code holds a `Recorder*` that is nullptr when no sink is attached, so the
// zero-observer cost on every instrumented site is one pointer test (the
// enabled() check below is a relaxed atomic load for the attached case);
// nothing inside the solver's propagation loop is instrumented at all —
// see DESIGN.md §11 for the overhead budget.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/ring.hpp"

namespace aspmt::obs {

class Recorder {
 public:
  using Clock = std::chrono::steady_clock;

  Recorder(std::uint16_t worker, Clock::time_point epoch,
           std::size_t ring_capacity = EventRing::kDefaultCapacity)
      : ring_(ring_capacity), epoch_(epoch), worker_(worker) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// One relaxed atomic load — the whole hot-path cost when attached.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Emit an event (dropped silently when the ring is full or the recorder
  /// is disabled).  Callable only from the owning thread (SPSC contract).
  void record(EventKind kind, std::int64_t a = 0, std::int64_t b = 0,
              std::int64_t c = 0) noexcept {
    if (!enabled()) return;
    Event e;
    e.t_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch_)
            .count());
    e.a = a;
    e.b = b;
    e.c = c;
    e.kind = kind;
    e.worker = worker_;
    ring_.push(e);
  }

  [[nodiscard]] EventRing& ring() noexcept { return ring_; }
  [[nodiscard]] std::uint16_t worker() const noexcept { return worker_; }

  /// Collector lifecycle: producers observe the flip with relaxed loads.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

 private:
  EventRing ring_;
  Clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::uint16_t worker_;
};

}  // namespace aspmt::obs
