// Observability event taxonomy (DESIGN.md §11).
//
// Every instrumented subsystem reports through one fixed-size POD `Event`:
// a kind tag, the emitting worker, a nanosecond timestamp relative to the
// run's collector epoch, and up to three int64 payload words whose meaning
// is per-kind (documented on the enumerators).  Keeping the record flat and
// small (40 bytes) lets the per-thread ring buffers move events with a
// single memcpy-class store and no allocation on the producer side.
#pragma once

#include <cstdint>

namespace aspmt::obs {

enum class EventKind : std::uint8_t {
  /// Exploration run begins.  a = wall-clock limit in ms (0 = unlimited),
  /// b = worker count, c = conflict budget (0 = unlimited).
  RunStart = 0,
  /// Exploration run ends.  a = front size, b = total models, c = 1 iff the
  /// front was proven exact.
  RunEnd,
  /// Worker thread enters its search loop.  a = worker index.
  WorkerStart,
  /// Worker thread leaves its search loop.  a = models accepted,
  /// b = conflicts, c = 1 iff the worker failed (contained exception).
  WorkerEnd,
  /// Solver::solve() entered.  a = number of assumptions.
  SolveStart,
  /// Solver::solve() returned.  a = result (0 Sat, 1 Unsat, 2 Unknown),
  /// b = cumulative conflicts, c = cumulative propagations.
  SolveEnd,
  /// Solver restarted.  a = cumulative restarts.
  Restart,
  /// Periodic counter sample from the solver's monitor cadence (solve
  /// entry / every restart / every monitor_interval conflicts).
  /// a = cumulative conflicts, b = cumulative propagations, c = cumulative
  /// decisions — per worker, so rates can be derived between samples.
  StatsSample,
  /// An accepted answer set.  a,b,c = the model's objective vector.
  ModelFound,
  /// A point entered the Pareto archive.  a,b,c = the point.
  ArchiveInsert,
  /// An insertion evicted dominated points.  a = number evicted,
  /// b = archive size after the insertion.
  ArchiveEvict,
  /// A dominance conflict pruned a subtree.  a = cumulative prunings of the
  /// emitting worker's propagator.
  DominancePrune,
  /// A portfolio epsilon-slice was activated.  a = slice id, b = its bound
  /// on the first objective.
  SliceActivate,
  /// A portfolio epsilon-slice was exhausted (proven empty).  a = slice id.
  SliceExhaust,
  /// The run's Budget tripped; emitted once per worker on first observation
  /// (the trip itself may happen in a signal handler).  a = StopReason.
  BudgetTrip,
  /// An archive checkpoint was written.  a = points in the snapshot,
  /// b = 1 on success, 0 on a (contained) write failure.
  CheckpointWrite,
  /// A validated heuristic seed entered the archive before solving began.
  /// a,b,c = the seeded point.
  WarmStartSeed,
  /// The gap-guided scheduler handed a slice to a worker.  a = slice id,
  /// b = the slice's objective-0 bound, c = its hypervolume-gap score
  /// rounded to the nearest integer.
  SliceScheduled,
  /// Incremental re-exploration classified a spec delta (dse/respec.hpp).
  /// a = DeltaClass, b = changed-section bitmask (tasks=1, resources=2,
  /// mappings=4, objectives=8), c = 1 iff the run degraded to a cold start.
  RespecDelta,
  /// Incremental re-exploration reuse summary.  a = archive witnesses
  /// reused, b = learnt clauses replayed, c = epsilon slices resumable from
  /// the reused front.
  RespecReuse,
  /// Distributed exploration (dse/distributed.hpp): a shard was handed to a
  /// worker process (or in-process lane).  a = shard id, b = band lower
  /// bound (clamped to int64), c = band upper bound.
  ShardSpawn,
  /// A shard's worker finished.  a = shard id, b = 1 iff it delivered a
  /// result (0 = died or timed out), c = attempt number (1-based).
  ShardExit,
  /// A dead shard was requeued onto the surviving workers.  a = shard id,
  /// b = attempt number the requeue starts, c = 1 iff a checkpoint was
  /// available to resume from.
  ShardRequeue,
  /// A point streamed up from a shard worker over the control channel.
  /// a,b,c = the point (coordinator-side mirror of ArchiveInsert).
  ShardPoint,
  /// Heartbeat received from a shard worker.  a = shard id, b = the
  /// worker-reported elapsed ms, c = points received from it so far.
  ShardHeartbeat,
  /// Exploration service (serve/server.hpp): a job passed admission.
  /// a = job sequence number, b = queue depth after admission, c = the
  /// job's priority.
  JobAdmit,
  /// A queued job was load-shed (overload watermark crossed).  a = job
  /// sequence number, b = queue depth at the shed decision, c = 1 iff the
  /// trigger was RSS (0 = queue depth).
  JobShed,
  /// A failed job was requeued for a supervised retry.  a = job sequence
  /// number, b = attempt number the retry starts, c = backoff delay in ms.
  JobRequeue,
  /// A job exhausted its retry budget and was quarantined.  a = job
  /// sequence number, b = failed attempts.
  JobQuarantine,
  /// A job reached a terminal state.  a = job sequence number,
  /// b = terminal JobState, c = front size (terminal runs only).
  JobDone,
};

/// Number of distinct EventKind values (array sizing in exporters).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::JobDone) + 1;

/// Stable kebab-case name, e.g. "model-found" (NDJSON + trace export).
[[nodiscard]] const char* kind_name(EventKind kind) noexcept;

struct Event {
  std::uint64_t t_ns = 0;  ///< nanoseconds since the collector epoch
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  EventKind kind = EventKind::RunStart;
  std::uint16_t worker = 0;
};

}  // namespace aspmt::obs
