// MetricsRegistry — named counters, gauges and histograms with a JSON
// snapshot.
//
// Instruments are created on first lookup and live as long as the registry
// (node-based storage: references stay valid across later registrations).
// All instrument mutators are lock-free atomics, so workers may bump shared
// instruments concurrently; lookup takes a mutex and belongs off the hot
// path — resolve `Counter&`/`Histogram&` references once, outside loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace aspmt::obs {

/// Monotone (or set-once-at-end) unsigned total, e.g. "explore.conflicts".
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time double, e.g. "explore.conflicts_per_sec".
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed distribution of non-negative samples, e.g. "comparisons
/// per archive insert".  Bucket i counts samples in [2^(i-1), 2^i) with
/// bucket 0 holding the zeros; count/sum/max give the exact moments.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 33;  // 0 and 2^0..2^31, then rest

  void observe(std::uint64_t sample) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the returned reference stays valid for the registry's
  /// lifetime.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Consistent-enough snapshot as pretty-printed JSON:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// mean, max, buckets}}}.  Safe to call while instruments are live.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;  // guards the maps, not the instruments
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace aspmt::obs
