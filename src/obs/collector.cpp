#include "obs/collector.hpp"

#include <algorithm>
#include <chrono>

namespace aspmt::obs {

Collector::Collector(EventSink& sink, std::size_t recorders)
    : Collector(sink, recorders, Options()) {}

Collector::Collector(EventSink& sink, std::size_t recorders, Options options)
    : sink_(sink), options_(options) {
  const Recorder::Clock::time_point epoch = Recorder::Clock::now();
  recorders_.reserve(recorders);
  for (std::size_t i = 0; i < recorders; ++i) {
    recorders_.push_back(std::make_unique<Recorder>(
        static_cast<std::uint16_t>(i), epoch, options_.ring_capacity));
  }
}

Collector::~Collector() { stop(); }

void Collector::start() {
  if (started_) return;
  started_ = true;
  for (auto& r : recorders_) r->set_enabled(true);
  thread_ = std::thread([this] { drain_loop(); });
}

void Collector::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Producers must be quiescent by now (workers joined before stop()); the
  // final sweep below therefore sees every remaining event.
  for (auto& r : recorders_) r->set_enabled(false);
  drain_once();
  const std::uint64_t dropped = dropped_total();
  if (dropped != 0) sink_.on_drop(dropped);
  sink_.flush();
}

std::uint64_t Collector::dropped_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : recorders_) total += r->ring().dropped();
  return total;
}

void Collector::drain_loop() {
  const auto interval = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double>(options_.drain_interval_seconds));
  for (;;) {
    drain_once();
    sink_.tick();
    std::unique_lock lock(mutex_);
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;
    }
  }
}

void Collector::drain_once() {
  batch_.clear();
  for (auto& r : recorders_) r->ring().pop_all(batch_);
  // Per-ring order is emission order; merging by timestamp gives the sink a
  // globally monotone stream (up to clock resolution) across workers.
  std::stable_sort(batch_.begin(), batch_.end(),
                   [](const Event& a, const Event& b) { return a.t_ns < b.t_ns; });
  for (const Event& e : batch_) sink_.on_event(e);
}

}  // namespace aspmt::obs
