// The collector: one drain thread pumping N per-worker rings into one sink.
//
// Ownership: the collector owns the recorders (stable addresses for the
// whole run) and the drain thread; the sink is the caller's.  start() flips
// every recorder live and spawns the drain thread; stop() joins it, drains
// the rings one final time, reports the total overflow via on_drop and
// flushes the sink.  Both are idempotent, and the destructor stops.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/recorder.hpp"
#include "obs/sink.hpp"

namespace aspmt::obs {

class Collector {
 public:
  struct Options {
    std::size_t ring_capacity = EventRing::kDefaultCapacity;
    /// Sleep between drain sweeps.  Short enough for a live progress line,
    /// long enough to stay invisible next to a solver thread.
    double drain_interval_seconds = 0.02;
  };

  /// `recorders` = number of producer threads (a portfolio passes
  /// threads + 1: one ring per worker plus one for the orchestrator).
  Collector(EventSink& sink, std::size_t recorders);
  Collector(EventSink& sink, std::size_t recorders, Options options);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  [[nodiscard]] Recorder& recorder(std::size_t index) {
    return *recorders_.at(index);
  }
  [[nodiscard]] std::size_t recorder_count() const noexcept {
    return recorders_.size();
  }

  void start();
  void stop();

  /// Total events discarded across all rings (exact once stopped).
  [[nodiscard]] std::uint64_t dropped_total() const noexcept;

 private:
  void drain_loop();
  /// One sweep over every ring; forwards the merged batch to the sink.
  void drain_once();

  EventSink& sink_;
  Options options_;
  std::vector<std::unique_ptr<Recorder>> recorders_;
  std::vector<Event> batch_;  // drain scratch, collector thread only

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace aspmt::obs
