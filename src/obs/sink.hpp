// EventSink — the consumer-side interface of the observability pipeline.
//
// Threading contract: the collector serializes every callback.  on_event,
// tick, on_drop and flush are only ever invoked from the collector's drain
// thread (or from Collector::stop on the stopping thread, after the drain
// thread has joined) — a sink never needs its own locking unless the
// embedding application reads it concurrently while the run is live.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/events.hpp"

namespace aspmt::obs {

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// One drained event.  Events of one worker arrive in emission order;
  /// across workers the collector merges batches by timestamp, so global
  /// order is monotone up to the clock resolution.
  virtual void on_event(const Event& event) = 0;

  /// Periodic heartbeat between drain batches (even when no events are
  /// pending) — exporters use it for progress lines and counter flushes.
  virtual void tick() {}

  /// Called once at end of run when ring overflow discarded events.
  virtual void on_drop(std::uint64_t dropped) { (void)dropped; }

  /// End of run; write trailers and flush buffers.
  virtual void flush() {}
};

/// Fan a single collector stream out to several sinks (CLI: NDJSON log +
/// Chrome trace + progress line in one run).  Non-owning.
class MultiSink final : public EventSink {
 public:
  void add(EventSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  [[nodiscard]] bool empty() const noexcept { return sinks_.empty(); }

  void on_event(const Event& event) override {
    for (EventSink* s : sinks_) s->on_event(event);
  }
  void tick() override {
    for (EventSink* s : sinks_) s->tick();
  }
  void on_drop(std::uint64_t dropped) override {
    for (EventSink* s : sinks_) s->on_drop(dropped);
  }
  void flush() override {
    for (EventSink* s : sinks_) s->flush();
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace aspmt::obs
