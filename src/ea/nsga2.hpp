// NSGA-II — the classic heuristic DSE comparator (Figure 1).
//
// Genotype: one mapping-option index per task plus one priority key per
// task.  Decoding is repair-free by construction: routes follow
// deterministic shortest paths between the bound resources and the schedule
// is built by priority-driven list scheduling, so every decodable genotype
// yields a feasible implementation (genotypes whose binding leaves a
// message unroutable are penalised out).  Because routing is fixed to
// shortest paths, the EA searches a *subset* of the exact design space —
// one of the structural reasons exact ASPmT exploration can find points the
// EA cannot.
#pragma once

#include <cstdint>
#include <vector>

#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::ea {

struct Genotype {
  std::vector<std::size_t> option;  ///< local option index per task
  std::vector<double> priority;     ///< scheduling priority key per task
};

/// Decode a genotype into an implementation.  Returns false (and leaves
/// `out` untouched) when some message is unroutable under the binding.
[[nodiscard]] bool decode_genotype(const synth::Specification& spec,
                                   const Genotype& genotype,
                                   synth::Implementation& out);

struct Nsga2Options {
  std::uint64_t seed = 1;
  std::size_t population = 40;
  std::size_t generations = 60;
  double crossover_rate = 0.9;
  /// Per-gene mutation probability; <= 0 means 1/num_tasks.
  double mutation_rate = -1.0;
  /// Keep the decoded implementation of every archive insertion so callers
  /// (the warm-start pipeline) can re-validate front points independently.
  bool collect_witnesses = false;
};

struct Nsga2Result {
  std::vector<pareto::Vec> front;  ///< non-dominated set over all evaluations
  std::uint64_t evaluations = 0;
  double seconds = 0.0;
  /// Anytime profile: (seconds since start, point) per archive insertion.
  std::vector<std::pair<double, pareto::Vec>> discoveries;
  /// One decoded implementation per front point (same order as `front`);
  /// empty unless `collect_witnesses` was set.
  std::vector<synth::Implementation> witnesses;
  /// Final population genotypes after the last environmental selection.
  /// The run is a pure function of (spec, options): the RNG is a fixed
  /// xoshiro256** stream and every sort with partially tied keys is stable,
  /// so equal seeds yield byte-identical populations across platforms (see
  /// Nsga2Test.GoldenPopulationDigest).
  std::vector<Genotype> population;
};

[[nodiscard]] Nsga2Result nsga2(const synth::Specification& spec,
                                const Nsga2Options& options = {});

}  // namespace aspmt::ea
