#include "ea/nsga2.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <map>

#include "pareto/archive.hpp"
#include "synth/validator.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace aspmt::ea {

namespace {

using synth::LinkId;
using synth::ResourceId;
using synth::Specification;
using synth::TaskId;

/// Deterministic shortest path (BFS, lowest link id first).  Empty result
/// plus `found=false` when unreachable; empty plus true when from == to.
bool shortest_path(const Specification& spec, ResourceId from, ResourceId to,
                   std::vector<LinkId>& out) {
  out.clear();
  if (from == to) return true;
  const std::size_t n = spec.resources().size();
  std::vector<LinkId> via(n, 0xffffffffU);
  std::vector<char> seen(n, 0);
  seen[from] = 1;
  std::deque<ResourceId> queue{from};
  while (!queue.empty()) {
    const ResourceId u = queue.front();
    queue.pop_front();
    for (const LinkId l : spec.links_from(u)) {
      const ResourceId v = spec.links()[l].to;
      if (seen[v] != 0) continue;
      seen[v] = 1;
      via[v] = l;
      if (v == to) {
        // reconstruct
        ResourceId at = to;
        while (at != from) {
          out.push_back(via[at]);
          at = spec.links()[via[at]].from;
        }
        std::reverse(out.begin(), out.end());
        return true;
      }
      queue.push_back(v);
    }
  }
  return false;
}

/// Priority-driven list scheduling honouring precedence, communication
/// delays and resource exclusivity.
void list_schedule(const Specification& spec, synth::Implementation& impl,
                   const std::vector<double>& priority) {
  const std::size_t T = spec.tasks().size();
  std::vector<std::uint32_t> pending(T, 0);  // unscheduled predecessors
  std::vector<std::vector<synth::MessageId>> incoming(T);
  for (synth::MessageId m = 0; m < spec.messages().size(); ++m) {
    ++pending[spec.messages()[m].dst];
    incoming[spec.messages()[m].dst].push_back(m);
  }
  std::vector<std::int64_t> resource_free(spec.resources().size(), 0);
  std::vector<char> done(T, 0);
  impl.start.assign(T, 0);

  for (std::size_t scheduled = 0; scheduled < T; ++scheduled) {
    // Highest-priority ready task (deterministic tie-break by id).
    TaskId best = 0;
    bool have = false;
    for (TaskId t = 0; t < T; ++t) {
      if (done[t] != 0 || pending[t] != 0) continue;
      if (!have || priority[t] > priority[best]) {
        best = t;
        have = true;
      }
    }
    assert(have && "application graph must be acyclic");
    std::int64_t ready = 0;
    for (const synth::MessageId m : incoming[best]) {
      const synth::Message& msg = spec.messages()[m];
      std::int64_t arrival = impl.start[msg.src] +
                             spec.mappings()[impl.option_of_task[msg.src]].wcet;
      for (const LinkId l : impl.route[m]) {
        arrival += spec.links()[l].hop_delay * msg.payload;
      }
      ready = std::max(ready, arrival);
    }
    const ResourceId r = impl.binding[best];
    impl.start[best] = std::max(ready, resource_free[r]);
    resource_free[r] =
        impl.start[best] + spec.mappings()[impl.option_of_task[best]].wcet;
    done[best] = 1;
    for (synth::MessageId m = 0; m < spec.messages().size(); ++m) {
      if (spec.messages()[m].src == best) --pending[spec.messages()[m].dst];
    }
  }

  std::int64_t latency = 0;
  for (TaskId t = 0; t < T; ++t) {
    latency = std::max(latency,
                       impl.start[t] + spec.mappings()[impl.option_of_task[t]].wcet);
  }
  impl.latency = latency;
}

struct Individual {
  Genotype genotype;
  pareto::Vec objectives;
  bool feasible = false;
  std::uint32_t rank = 0;
  double crowding = 0.0;
};

void non_dominated_sort(std::vector<Individual>& pop) {
  const std::size_t n = pop.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::uint32_t> counter(n, 0);
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const pareto::DomRel r = pareto::compare(pop[i].objectives, pop[j].objectives);
      if (r == pareto::DomRel::Dominates) {
        dominated_by[i].push_back(j);
        ++counter[j];
      } else if (r == pareto::DomRel::Dominated) {
        dominated_by[j].push_back(i);
        ++counter[i];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (counter[i] == 0) {
      pop[i].rank = 0;
      current.push_back(i);
    }
  }
  std::uint32_t rank = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t i : current) {
      for (const std::size_t j : dominated_by[i]) {
        if (--counter[j] == 0) {
          pop[j].rank = rank + 1;
          next.push_back(j);
        }
      }
    }
    ++rank;
    current = std::move(next);
  }
}

void assign_crowding(std::vector<Individual>& pop) {
  const std::size_t n = pop.size();
  if (n == 0) return;
  const std::size_t k = pop.front().objectives.size();
  for (Individual& ind : pop) ind.crowding = 0.0;
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t o = 0; o < k; ++o) {
    // stable_sort: ties on the objective value must keep index order, or the
    // crowding sums (and with them the whole trajectory) depend on the
    // platform's std::sort tie-breaking.
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return pop[a].objectives[o] < pop[b].objectives[o];
    });
    pop[idx.front()].crowding = std::numeric_limits<double>::infinity();
    pop[idx.back()].crowding = std::numeric_limits<double>::infinity();
    const double span = static_cast<double>(pop[idx.back()].objectives[o] -
                                            pop[idx.front()].objectives[o]);
    if (span <= 0.0) continue;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      pop[idx[i]].crowding +=
          static_cast<double>(pop[idx[i + 1]].objectives[o] -
                              pop[idx[i - 1]].objectives[o]) /
          span;
    }
  }
}

/// True if a is a better survivor than b.
bool crowded_less(const Individual& a, const Individual& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

}  // namespace

bool decode_genotype(const Specification& spec, const Genotype& genotype,
                     synth::Implementation& out) {
  const std::size_t T = spec.tasks().size();
  const std::size_t M = spec.messages().size();
  synth::Implementation impl;
  impl.option_of_task.resize(T);
  impl.binding.resize(T);
  impl.route.assign(M, {});
  for (TaskId t = 0; t < T; ++t) {
    const auto& opts = spec.mappings_of(t);
    const std::size_t local = genotype.option[t] % opts.size();
    impl.option_of_task[t] = opts[local];
    impl.binding[t] = spec.mappings()[opts[local]].resource;
  }
  // Capacity-respecting repair is out of scope: over-capacity genotypes are
  // simply infeasible, as are unroutable bindings.
  for (ResourceId r = 0; r < spec.resources().size(); ++r) {
    const std::uint32_t cap = spec.resources()[r].capacity;
    if (cap == 0) continue;
    std::uint32_t used = 0;
    for (TaskId t = 0; t < T; ++t) {
      if (impl.binding[t] == r) ++used;
    }
    if (used > cap) return false;
  }
  for (synth::MessageId m = 0; m < M; ++m) {
    const synth::Message& msg = spec.messages()[m];
    if (!shortest_path(spec, impl.binding[msg.src], impl.binding[msg.dst],
                       impl.route[m])) {
      return false;
    }
  }
  list_schedule(spec, impl, genotype.priority);
  if (spec.latency_bound > 0 && impl.latency > spec.latency_bound) return false;

  // Energy and cost from the decoded structure.
  std::int64_t energy = 0;
  for (TaskId t = 0; t < T; ++t) {
    energy += spec.mappings()[impl.option_of_task[t]].energy;
  }
  std::vector<char> allocated(spec.resources().size(), 0);
  for (TaskId t = 0; t < T; ++t) allocated[impl.binding[t]] = 1;
  for (synth::MessageId m = 0; m < M; ++m) {
    for (const LinkId l : impl.route[m]) {
      energy += spec.links()[l].hop_energy * spec.messages()[m].payload;
      allocated[spec.links()[l].to] = 1;
    }
  }
  std::int64_t cost = 0;
  for (ResourceId r = 0; r < spec.resources().size(); ++r) {
    if (allocated[r] != 0) cost += spec.resources()[r].cost;
  }
  impl.energy = energy;
  impl.cost = cost;
  out = std::move(impl);
  return true;
}

Nsga2Result nsga2(const Specification& spec, const Nsga2Options& options) {
  util::Timer timer;
  util::Rng rng(options.seed);
  const std::size_t T = spec.tasks().size();
  const double mutation =
      options.mutation_rate > 0.0 ? options.mutation_rate : 1.0 / static_cast<double>(T);

  Nsga2Result result;
  pareto::LinearArchive archive;
  std::map<pareto::Vec, synth::Implementation> witness_of;

  auto evaluate = [&](Individual& ind) {
    synth::Implementation impl;
    ++result.evaluations;
    if (decode_genotype(spec, ind.genotype, impl)) {
      ind.feasible = true;
      ind.objectives = synth::recompute_objectives(spec, impl);
      if (archive.insert(ind.objectives)) {
        result.discoveries.emplace_back(timer.elapsed_seconds(), ind.objectives);
        if (options.collect_witnesses) witness_of[ind.objectives] = impl;
      }
    } else {
      ind.feasible = false;
      const std::int64_t big = std::numeric_limits<std::int64_t>::max() / 4;
      ind.objectives = pareto::Vec(spec.axis_count(), big);
    }
  };

  auto random_individual = [&]() {
    Individual ind;
    ind.genotype.option.resize(T);
    ind.genotype.priority.resize(T);
    for (TaskId t = 0; t < T; ++t) {
      ind.genotype.option[t] = rng.below(spec.mappings_of(t).size());
      ind.genotype.priority[t] = rng.uniform();
    }
    evaluate(ind);
    return ind;
  };

  std::vector<Individual> pop;
  pop.reserve(options.population);
  for (std::size_t i = 0; i < options.population; ++i) pop.push_back(random_individual());
  non_dominated_sort(pop);
  assign_crowding(pop);

  auto tournament = [&]() -> const Individual& {
    const Individual& a = pop[rng.below(pop.size())];
    const Individual& b = pop[rng.below(pop.size())];
    return crowded_less(a, b) ? a : b;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::vector<Individual> offspring;
    offspring.reserve(options.population);
    while (offspring.size() < options.population) {
      Individual child;
      const Individual& p1 = tournament();
      const Individual& p2 = tournament();
      child.genotype = p1.genotype;
      if (rng.chance(options.crossover_rate)) {
        for (TaskId t = 0; t < T; ++t) {
          if (rng.chance(0.5)) child.genotype.option[t] = p2.genotype.option[t];
          if (rng.chance(0.5)) child.genotype.priority[t] = p2.genotype.priority[t];
        }
      }
      for (TaskId t = 0; t < T; ++t) {
        if (rng.chance(mutation)) {
          child.genotype.option[t] = rng.below(spec.mappings_of(t).size());
        }
        if (rng.chance(mutation)) child.genotype.priority[t] = rng.uniform();
      }
      evaluate(child);
      offspring.push_back(std::move(child));
    }
    // Environmental selection over the union.  stable_sort for the same
    // reason as in assign_crowding: (rank, crowding) ties are common and the
    // survivor set must not depend on the platform's tie-breaking.
    pop.insert(pop.end(), std::make_move_iterator(offspring.begin()),
               std::make_move_iterator(offspring.end()));
    non_dominated_sort(pop);
    assign_crowding(pop);
    std::stable_sort(pop.begin(), pop.end(), crowded_less);
    pop.resize(options.population);
  }

  result.front = archive.points();
  if (options.collect_witnesses) {
    result.witnesses.reserve(result.front.size());
    for (const pareto::Vec& p : result.front) {
      result.witnesses.push_back(witness_of.at(p));
    }
  }
  result.population.reserve(pop.size());
  for (Individual& ind : pop) result.population.push_back(std::move(ind.genotype));
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace aspmt::ea
