// Wall-clock timing and deadline handling for solver runs and benchmarks.
#pragma once

#include <chrono>

namespace aspmt::util {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A deadline that solver loops poll periodically.  A non-positive budget
/// means "no limit".
class Deadline {
 public:
  Deadline() noexcept = default;
  explicit Deadline(double budget_seconds) noexcept : budget_(budget_seconds) {}

  [[nodiscard]] bool expired() const noexcept {
    return budget_ > 0.0 && timer_.elapsed_seconds() >= budget_;
  }

  [[nodiscard]] double remaining_seconds() const noexcept {
    if (budget_ <= 0.0) return -1.0;
    const double rest = budget_ - timer_.elapsed_seconds();
    return rest > 0.0 ? rest : 0.0;
  }

  [[nodiscard]] bool unlimited() const noexcept { return budget_ <= 0.0; }

 private:
  Timer timer_;
  double budget_ = -1.0;
};

}  // namespace aspmt::util
