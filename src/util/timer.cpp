#include "util/timer.hpp"

// Header-only in practice; this translation unit anchors the header so that
// build systems listing it stay simple.
namespace aspmt::util {}
