// Minimal fixed-width table printer used by the benchmark harnesses to emit
// the rows of each reproduced table/figure in a diff-friendly format.
#pragma once

#include <concepts>
#include <ostream>
#include <string>
#include <vector>

namespace aspmt::util {

/// Collects rows of string cells and renders them with aligned columns.
/// Numeric cells should be pre-formatted by the caller (see `fmt` helpers).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Render with a separator line under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 2 digits).
[[nodiscard]] std::string fmt(double value, int precision = 2);

/// Format any integer (exact match beats the double overload).
template <std::integral T>
[[nodiscard]] std::string fmt(T value) {
  return std::to_string(value);
}

}  // namespace aspmt::util
