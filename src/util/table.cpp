#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace aspmt::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

}  // namespace aspmt::util
