#include "util/rng.hpp"

namespace aspmt::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Debiased modulo via rejection from the top of the range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(width));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace aspmt::util
