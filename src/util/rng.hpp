// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (instance generation, the NSGA-II
// baseline, solver tie-breaking in tests) draw from this generator so that
// every experiment is reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <limits>

namespace aspmt::util {

/// xoshiro256** seeded via SplitMix64.  Small, fast, and good enough for
/// workload generation; not intended for cryptographic use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-initialise the full state from a single seed value.
  void reseed(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive — requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

 private:
  std::uint64_t state_[4]{};
};

}  // namespace aspmt::util
