#include "gen/multicore.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace aspmt::gen {

namespace {

using synth::ResourceId;
using synth::ResourceKind;
using synth::Specification;
using synth::TaskId;

/// One entry of the core catalog with its derived per-work-unit factors.
struct CoreVariant {
  ResourceId res = 0;
  bool big = false;
  std::int64_t cycles = 1;  ///< wcet = work * cycles
  std::int64_t epw = 1;     ///< energy = work * epw
};

/// Microarchitecture baselines: {compute cycles, memory cycles, energy per
/// work unit, area} before the pipeline/cache knobs apply.
struct CoreBase {
  std::int64_t compute, mem, epw, area;
};

constexpr CoreBase kBig{2, 2, 4, 8};
constexpr CoreBase kLittle{5, 2, 1, 3};

void build_catalog(const MulticoreConfig& config, Specification& spec,
                   ResourceId bus, util::Rng& rng,
                   std::vector<CoreVariant>& catalog) {
  const std::uint32_t slots = config.big_cores + config.little_cores;
  for (std::uint32_t s = 0; s < slots; ++s) {
    const bool big = s < config.big_cores;
    const CoreBase& base = big ? kBig : kLittle;
    const std::uint32_t slot = big ? s : s - config.big_cores;
    for (std::uint32_t d = 0; d < config.pipeline_depths; ++d) {
      for (std::uint32_t c = 0; c < config.cache_levels; ++c) {
        CoreVariant v;
        v.big = big;
        // Deeper pipelines shave compute cycles, larger caches shave memory
        // cycles; both trade the saving against energy and area.
        const std::int64_t compute = std::max<std::int64_t>(1, base.compute - d);
        const std::int64_t mem = std::max<std::int64_t>(0, base.mem - c);
        v.cycles = compute + mem;
        v.epw = base.epw + d + c;
        const std::int64_t area = base.area + 2 * d + 3 * c + rng.range(0, 1);
        std::string name = big ? "big" : "lit";
        name += std::to_string(slot);
        name += 'd';
        name += std::to_string(d);
        name += 'c';
        name += std::to_string(c);
        v.res = spec.add_resource(name, ResourceKind::Processor, area);
        spec.add_link(v.res, bus, 1, 1);
        spec.add_link(bus, v.res, 1, 1);
        catalog.push_back(v);
      }
    }
  }
}

}  // namespace

std::uint32_t core_variant_count(const MulticoreConfig& config) {
  return (config.big_cores + config.little_cores) * config.pipeline_depths *
         config.cache_levels;
}

synth::Specification generate_multicore(const MulticoreConfig& config) {
  assert(config.tasks >= 1 && config.layers >= 1);
  assert(config.pipeline_depths >= 1 && config.cache_levels >= 1);
  assert(config.big_cores + config.little_cores >= 1);
  assert(config.throttle_factor >= 1);
  util::Rng rng(config.seed);
  Specification spec;

  const ResourceId bus = spec.add_resource("bus", ResourceKind::Bus, 1);
  std::vector<CoreVariant> catalog;
  build_catalog(config, spec, bus, rng, catalog);
  const std::size_t V = catalog.size();

  // Thermal throttling: under the "throttle" scenario every energy
  // contribution attributed to a big core is inflated — robustness axes
  // (worst(energy, energy@throttle)) then prefer little-core designs whose
  // worst case degrades less.
  const std::size_t throttle = spec.add_scenario("throttle");
  for (const CoreVariant& v : catalog) {
    if (v.big) spec.set_scenario_factor(throttle, v.res, config.throttle_factor);
  }

  // One layered DAG: every non-first-layer task consumes from the previous
  // layer, plus random forward cross edges.
  std::vector<TaskId> tasks;
  std::vector<std::uint32_t> layer_of;
  const std::uint32_t layers = std::max(1U, std::min(config.layers, config.tasks));
  std::uint32_t msg_count = 0;
  auto add_msg = [&](TaskId a, TaskId b) {
    spec.add_message("m" + std::to_string(msg_count++), a, b,
                     rng.range(config.payload_min, config.payload_max));
  };
  for (std::uint32_t i = 0; i < config.tasks; ++i) {
    tasks.push_back(spec.add_task("t" + std::to_string(i)));
    layer_of.push_back(static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(i) * layers) / config.tasks));
  }
  for (std::uint32_t t = 0; t < config.tasks; ++t) {
    if (layer_of[t] == 0) continue;
    std::vector<TaskId> candidates;
    for (std::uint32_t s = 0; s < config.tasks; ++s) {
      if (layer_of[s] == layer_of[t] - 1) candidates.push_back(s);
    }
    assert(!candidates.empty());
    add_msg(candidates[rng.below(candidates.size())], t);
  }
  for (std::uint32_t s = 0; s < config.tasks; ++s) {
    for (std::uint32_t t = s + 1; t < config.tasks; ++t) {
      if (layer_of[s] < layer_of[t] && rng.chance(config.extra_edge_density)) {
        add_msg(s, t);
      }
    }
  }

  // Mapping options: either the full catalog per task or a sampled subset
  // of distinct variants.
  const std::uint32_t per_task =
      config.options_per_task == 0
          ? static_cast<std::uint32_t>(V)
          : std::min<std::uint32_t>(config.options_per_task,
                                    static_cast<std::uint32_t>(V));
  for (std::uint32_t t = 0; t < config.tasks; ++t) {
    const std::int64_t work = rng.range(config.work_min, config.work_max);
    std::vector<std::size_t> order(V);
    for (std::size_t i = 0; i < V; ++i) order[i] = i;
    if (per_task < V) {
      for (std::uint32_t i = 0; i < per_task; ++i) {  // deterministic partial shuffle
        const std::size_t j = i + rng.below(V - i);
        std::swap(order[i], order[j]);
      }
    }
    for (std::uint32_t i = 0; i < per_task; ++i) {
      const CoreVariant& v = catalog[order[i]];
      spec.add_mapping(tasks[t], v.res, work * v.cycles, work * v.epw);
    }
  }

  // Pareto axes: user expressions, or the recommended combinator default
  // (latency-then-energy lexicographic vs. area).
  std::vector<std::string> axes = config.axes;
  if (axes.empty()) axes = {"lex(latency,energy)", "cost"};
  for (const std::string& text : axes) {
    synth::ObjectiveExpr expr;
    const std::string err = synth::parse_objective_expr(text, expr);
    if (!err.empty()) {
      throw std::invalid_argument("multicore axis '" + text + "': " + err);
    }
    spec.add_objective(std::move(expr));
  }
  const std::string err = spec.validate();
  if (!err.empty()) throw std::invalid_argument("multicore spec: " + err);
  return spec;
}

}  // namespace aspmt::gen
