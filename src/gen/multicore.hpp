// Multicore PPA benchmark family.
//
// Models the core-configuration design space of an embedded multicore: a
// catalog of candidate cores — big/little microarchitecture × pipeline
// depth × cache configuration — hangs off one shared bus, and the explorer
// decides which candidates to instantiate by binding tasks to them.  The
// classic PPA triple maps onto the base metrics: Performance = makespan
// latency, Power = execution + communication energy, Area = summed cost of
// the *instantiated* cores (unused catalog entries charge nothing).
//
// Knob physics (small integer factors, deterministic from the seed):
//   - big cores execute a work unit faster than little ones but burn more
//     energy per unit and occupy more area;
//   - each pipeline-depth step shaves compute cycles and adds both energy
//     (deeper speculation) and area;
//   - each cache level shaves memory cycles and adds area plus a small
//     leakage-energy term.
//
// The family also declares a "throttle" energy scenario (thermal capping
// inflates the effective energy of big cores) and, by default, combinator
// Pareto axes, so generated instances exercise the ObjectiveTerm tree —
// lex packing, scenario sums, certified replay — end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/spec.hpp"

namespace aspmt::gen {

struct MulticoreConfig {
  std::uint64_t seed = 1;
  std::uint32_t tasks = 6;
  std::uint32_t layers = 3;          ///< depth of the layered task DAG
  double extra_edge_density = 0.15;  ///< probability of additional cross edges
  std::uint32_t big_cores = 1;       ///< big catalog slots
  std::uint32_t little_cores = 2;    ///< little catalog slots
  std::uint32_t pipeline_depths = 2; ///< depth variants per slot (>= 1)
  std::uint32_t cache_levels = 2;    ///< cache variants per slot (>= 1)
  /// Mapping options sampled per task; 0 = one option on every core variant.
  std::uint32_t options_per_task = 0;
  std::int64_t payload_min = 1;
  std::int64_t payload_max = 3;
  std::int64_t work_min = 2;         ///< abstract work units per task
  std::int64_t work_max = 8;
  std::int64_t throttle_factor = 3;  ///< big-core energy factor under "throttle"
  /// Pareto axes as objective-expression strings (README syntax).  Empty
  /// declares the recommended combinator axes {"lex(latency,energy)",
  /// "cost"}; pass {"latency","energy","cost"} for the classic triple.
  std::vector<std::string> axes;
};

/// Size of the core catalog: (big + little slots) * depths * cache levels.
[[nodiscard]] std::uint32_t core_variant_count(const MulticoreConfig& config);

/// Generate a multicore PPA specification.  The result always satisfies
/// Specification::validate(); a malformed or non-validating axis expression
/// throws std::invalid_argument naming the offending axis.
[[nodiscard]] synth::Specification generate_multicore(const MulticoreConfig& config);

}  // namespace aspmt::gen
