// Deterministic synthetic specification generator.
//
// Produces the benchmark families of the evaluation: layered task-graph
// applications mapped onto shared-bus or mesh-NoC architectures with
// heterogeneous processors (fast-but-hungry vs. slow-but-frugal, cheap vs.
// expensive) — the parameter space that controls instance hardness in the
// paper series.  Fully reproducible from a single seed.
#pragma once

#include <cstdint>
#include <string>

#include "synth/spec.hpp"

namespace aspmt::gen {

enum class Architecture : std::uint8_t {
  SharedBus,  ///< N processors on one bus
  Mesh2x2,    ///< 4 routers in a grid, one processor each
  Mesh3x3,    ///< 9 routers in a grid, one processor each
};

struct GeneratorConfig {
  std::uint64_t seed = 1;
  std::uint32_t tasks = 6;            ///< total, split across applications
  std::uint32_t applications = 1;     ///< independent task graphs sharing the platform
  std::uint32_t layers = 3;           ///< depth of each layered DAG
  double extra_edge_density = 0.15;   ///< probability of additional cross edges
  Architecture architecture = Architecture::SharedBus;
  std::uint32_t bus_processors = 3;   ///< processor count for SharedBus
  std::uint32_t options_per_task = 2; ///< mapping options sampled per task
  std::int64_t payload_min = 1;
  std::int64_t payload_max = 3;
  std::int64_t work_min = 2;          ///< abstract work units per task
  std::int64_t work_max = 8;
};

/// Number of processors the architecture provides.
[[nodiscard]] std::uint32_t processor_count(const GeneratorConfig& config);

/// Generate a specification; the result always satisfies
/// Specification::validate().
[[nodiscard]] synth::Specification generate(const GeneratorConfig& config);

/// Human-readable one-line summary ("T=6 M=5 arch=mesh2x2 |R|=8 ...").
[[nodiscard]] std::string summarize(const synth::Specification& spec);

}  // namespace aspmt::gen
