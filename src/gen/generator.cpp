#include "gen/generator.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <vector>

#include "util/rng.hpp"

namespace aspmt::gen {

namespace {

using synth::ResourceId;
using synth::ResourceKind;
using synth::Specification;
using synth::TaskId;

/// Heterogeneity profile of one processor.
struct ProcessorProfile {
  std::int64_t speed;       ///< wcet = work * speed
  std::int64_t energy_per_work;
  std::int64_t cost;
};

ProcessorProfile sample_processor(util::Rng& rng) {
  // Fast processors are expensive and (mostly) hungrier — the classic
  // latency/energy/cost tension that makes fronts non-trivial.
  const std::int64_t speed = rng.range(1, 3);           // 1 = fast
  const std::int64_t epw = rng.range(1, 3) + (3 - speed);
  const std::int64_t cost = 4 * (4 - speed) + rng.range(0, 5);
  return ProcessorProfile{speed, epw, cost};
}

struct BuiltArchitecture {
  std::vector<ResourceId> processors;
  std::vector<ProcessorProfile> profiles;
};

void add_bidirectional(Specification& spec, ResourceId a, ResourceId b,
                       std::int64_t delay, std::int64_t energy) {
  spec.add_link(a, b, delay, energy);
  spec.add_link(b, a, delay, energy);
}

BuiltArchitecture build_architecture(const GeneratorConfig& config,
                                     Specification& spec, util::Rng& rng) {
  BuiltArchitecture arch;
  switch (config.architecture) {
    case Architecture::SharedBus: {
      const ResourceId bus = spec.add_resource("bus", ResourceKind::Bus, 3);
      for (std::uint32_t p = 0; p < config.bus_processors; ++p) {
        const ProcessorProfile prof = sample_processor(rng);
        const ResourceId r = spec.add_resource("p" + std::to_string(p),
                                               ResourceKind::Processor, prof.cost);
        add_bidirectional(spec, r, bus, 1, 1);
        arch.processors.push_back(r);
        arch.profiles.push_back(prof);
      }
      break;
    }
    case Architecture::Mesh2x2:
    case Architecture::Mesh3x3: {
      const std::uint32_t k = config.architecture == Architecture::Mesh2x2 ? 2 : 3;
      std::vector<std::vector<ResourceId>> router(k, std::vector<ResourceId>(k));
      for (std::uint32_t y = 0; y < k; ++y) {
        for (std::uint32_t x = 0; x < k; ++x) {
          router[y][x] = spec.add_resource(
              "r" + std::to_string(x) + std::to_string(y), ResourceKind::Router, 2);
        }
      }
      for (std::uint32_t y = 0; y < k; ++y) {
        for (std::uint32_t x = 0; x < k; ++x) {
          if (x + 1 < k) add_bidirectional(spec, router[y][x], router[y][x + 1], 1, 1);
          if (y + 1 < k) add_bidirectional(spec, router[y][x], router[y + 1][x], 1, 1);
          const ProcessorProfile prof = sample_processor(rng);
          const ResourceId p = spec.add_resource(
              "p" + std::to_string(x) + std::to_string(y), ResourceKind::Processor,
              prof.cost);
          add_bidirectional(spec, p, router[y][x], 1, 1);
          arch.processors.push_back(p);
          arch.profiles.push_back(prof);
        }
      }
      break;
    }
  }
  return arch;
}

}  // namespace

std::uint32_t processor_count(const GeneratorConfig& config) {
  switch (config.architecture) {
    case Architecture::SharedBus:
      return config.bus_processors;
    case Architecture::Mesh2x2:
      return 4;
    case Architecture::Mesh3x3:
      return 9;
  }
  return 0;
}

synth::Specification generate(const GeneratorConfig& config) {
  assert(config.tasks >= 1 && config.layers >= 1);
  util::Rng rng(config.seed);
  Specification spec;

  const BuiltArchitecture arch = build_architecture(config, spec, rng);
  const std::size_t P = arch.processors.size();

  // One layered DAG per application, all sharing the platform.  Tasks are
  // split round-robin-contiguously across applications.
  const std::uint32_t apps = std::max(1U, std::min(config.applications, config.tasks));
  std::vector<TaskId> tasks;
  std::vector<std::uint32_t> layer_of;
  std::vector<std::uint32_t> app_of;
  std::uint32_t msg_count = 0;
  auto add_msg = [&](TaskId a, TaskId b) {
    spec.add_message("m" + std::to_string(msg_count++), a, b,
                     rng.range(config.payload_min, config.payload_max));
  };
  std::uint32_t created = 0;
  for (std::uint32_t app = 0; app < apps; ++app) {
    const std::uint32_t count =
        config.tasks / apps + (app < config.tasks % apps ? 1 : 0);
    const std::uint32_t layers = std::max(1U, std::min(config.layers, count));
    const std::uint32_t base = created;
    for (std::uint32_t i = 0; i < count; ++i) {
      tasks.push_back(spec.add_task("a" + std::to_string(app) + "t" +
                                    std::to_string(i)));
      layer_of.push_back(static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(i) * layers) / count));
      app_of.push_back(app);
      ++created;
    }
    // Every non-first-layer task consumes from the previous layer.
    for (std::uint32_t t = base; t < created; ++t) {
      if (layer_of[t] == 0) continue;
      std::vector<TaskId> candidates;
      for (std::uint32_t s = base; s < created; ++s) {
        if (layer_of[s] == layer_of[t] - 1) candidates.push_back(s);
      }
      assert(!candidates.empty());
      add_msg(candidates[rng.below(candidates.size())], t);
    }
    // Extra forward edges within the application.
    for (std::uint32_t s = base; s < created; ++s) {
      for (std::uint32_t t = s + 1; t < created; ++t) {
        if (layer_of[s] < layer_of[t] && rng.chance(config.extra_edge_density)) {
          add_msg(s, t);
        }
      }
    }
  }

  // Mapping options: distinct processors per task.
  const std::uint32_t per_task =
      std::min<std::uint32_t>(config.options_per_task, static_cast<std::uint32_t>(P));
  for (std::uint32_t t = 0; t < config.tasks; ++t) {
    const std::int64_t work = rng.range(config.work_min, config.work_max);
    std::vector<std::size_t> procs(P);
    for (std::size_t i = 0; i < P; ++i) procs[i] = i;
    // deterministic partial shuffle
    for (std::uint32_t i = 0; i < per_task; ++i) {
      const std::size_t j = i + rng.below(P - i);
      std::swap(procs[i], procs[j]);
    }
    for (std::uint32_t i = 0; i < per_task; ++i) {
      const ProcessorProfile& prof = arch.profiles[procs[i]];
      spec.add_mapping(tasks[t], arch.processors[procs[i]],
                       work * prof.speed, work * prof.energy_per_work);
    }
  }

  assert(spec.validate().empty());
  return spec;
}

std::string summarize(const synth::Specification& spec) {
  std::ostringstream os;
  std::size_t procs = 0;
  for (const auto& r : spec.resources()) {
    if (r.kind == synth::ResourceKind::Processor) ++procs;
  }
  os << "T=" << spec.tasks().size() << " M=" << spec.messages().size()
     << " R=" << spec.resources().size() << " (P=" << procs << ")"
     << " L=" << spec.links().size() << " opts=" << spec.mappings().size()
     << " H=" << spec.effective_max_hops();
  return os.str();
}

}  // namespace aspmt::gen
