#include "dse/objective_term.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "synth/objective_expr.hpp"

namespace aspmt::dse {

namespace {

/// Stride of the most significant lex child: Π_{j>0} (cap_j + 1).
/// Construction guarantees the full product fits an int64.
std::int64_t lex_head_stride(const std::vector<std::int64_t>& caps) {
  __int128 stride = 1;
  for (std::size_t j = 1; j < caps.size(); ++j) {
    stride *= static_cast<__int128>(caps[j]) + 1;
  }
  return static_cast<std::int64_t>(stride);
}

}  // namespace

ObjectiveTerm ObjectiveTerm::linear(std::string name,
                                    theory::LinearSumPropagator* propagator,
                                    theory::LinearSumPropagator::SumId sum) {
  if (propagator == nullptr) {
    throw std::invalid_argument("linear objective term without a propagator");
  }
  ObjectiveTerm t;
  t.kind_ = Kind::Linear;
  t.name_ = std::move(name);
  t.linear_ = propagator;
  t.sum_ = sum;
  t.id_ = sum;
  return t;
}

ObjectiveTerm ObjectiveTerm::makespan(std::string name,
                                      theory::DifferencePropagator* propagator,
                                      theory::DifferencePropagator::NodeId node) {
  if (propagator == nullptr) {
    throw std::invalid_argument("difference objective term without a propagator");
  }
  ObjectiveTerm t;
  t.kind_ = Kind::Difference;
  t.name_ = std::move(name);
  t.difference_ = propagator;
  t.node_ = node;
  t.id_ = node;
  return t;
}

ObjectiveTerm ObjectiveTerm::combinator(Kind kind, std::string name,
                                        std::vector<std::int64_t> params,
                                        std::vector<ObjectiveTerm> children) {
  ObjectiveTerm t;
  t.kind_ = kind;
  t.name_ = std::move(name);
  t.params_ = std::move(params);
  t.children_ = std::move(children);
  return t;
}

ObjectiveTerm ObjectiveTerm::lex(std::string name,
                                 std::vector<std::int64_t> caps,
                                 std::vector<ObjectiveTerm> children) {
  if (children.size() < 2) {
    throw std::invalid_argument("lex needs at least two children");
  }
  if (caps.size() != children.size()) {
    throw std::invalid_argument("lex cap arity mismatch");
  }
  __int128 range = 1;
  for (const std::int64_t c : caps) {
    if (c < 0) throw std::invalid_argument("negative lex cap");
    range *= static_cast<__int128>(c) + 1;
    if (range > std::numeric_limits<std::int64_t>::max()) {
      throw std::invalid_argument("lex caps overflow the packed axis");
    }
  }
  return combinator(Kind::Lex, std::move(name), std::move(caps),
                    std::move(children));
}

ObjectiveTerm ObjectiveTerm::minmax(std::string name,
                                    std::vector<ObjectiveTerm> children) {
  if (children.size() < 2) {
    throw std::invalid_argument("minmax needs at least two children");
  }
  return combinator(Kind::MinMax, std::move(name), {}, std::move(children));
}

ObjectiveTerm ObjectiveTerm::weighted(std::string name,
                                      std::vector<std::int64_t> weights,
                                      std::vector<ObjectiveTerm> children) {
  if (children.empty()) {
    throw std::invalid_argument("weighted needs at least one child");
  }
  if (weights.size() != children.size()) {
    throw std::invalid_argument("weighted arity mismatch");
  }
  for (const std::int64_t w : weights) {
    if (w < 1) throw std::invalid_argument("weights must be >= 1");
  }
  return combinator(Kind::Weighted, std::move(name), std::move(weights),
                    std::move(children));
}

ObjectiveTerm ObjectiveTerm::scenario_worst(std::string name,
                                            std::vector<ObjectiveTerm> children) {
  if (children.size() < 2) {
    throw std::invalid_argument("scenario_worst needs at least two children");
  }
  return combinator(Kind::ScenarioWorst, std::move(name), {},
                    std::move(children));
}

ObjectiveTerm& ObjectiveTerm::with_floor(theory::LinearSumPropagator* propagator,
                                         theory::LinearSumPropagator::SumId sum) {
  if (kind_ != Kind::Linear || propagator == nullptr) {
    throw std::invalid_argument("floors attach to linear leaves only");
  }
  floors_.push_back(Floor{propagator, sum});
  return *this;
}

std::int64_t ObjectiveTerm::lower_bound() const {
  switch (kind_) {
    case Kind::Linear: {
      std::int64_t best = linear_->lower_bound(sum_);
      for (const Floor& f : floors_) {
        best = std::max(best, f.linear->lower_bound(f.sum));
      }
      return best;
    }
    case Kind::Difference:
      return difference_->lower_bound(node_);
    case Kind::Lex: {
      std::vector<std::int64_t> lbs;
      lbs.reserve(children_.size());
      for (const ObjectiveTerm& c : children_) lbs.push_back(c.lower_bound());
      return synth::lex_pack(lbs, params_);
    }
    case Kind::MinMax:
    case Kind::ScenarioWorst: {
      std::int64_t best = 0;
      for (const ObjectiveTerm& c : children_) {
        best = std::max(best, c.lower_bound());
      }
      return best;
    }
    case Kind::Weighted: {
      __int128 total = 0;
      for (std::size_t i = 0; i < children_.size(); ++i) {
        total += static_cast<__int128>(params_[i]) * children_[i].lower_bound();
      }
      if (total > std::numeric_limits<std::int64_t>::max()) {
        return std::numeric_limits<std::int64_t>::max();
      }
      return static_cast<std::int64_t>(total);
    }
  }
  return 0;
}

void ObjectiveTerm::explain(std::int64_t threshold,
                            std::vector<asp::Lit>& out) const {
  if (threshold <= 0) return;
  switch (kind_) {
    case Kind::Linear: {
      // Prefer the primary sum (checker-re-derivable); fall back to the
      // strongest floor (uncertified runs only — floors are disabled under
      // proof logging).
      if (linear_->lower_bound(sum_) >= threshold) {
        linear_->explain_lower_bound(sum_, threshold, out);
        return;
      }
      for (const Floor& f : floors_) {
        if (f.linear->lower_bound(f.sum) >= threshold) {
          f.linear->explain_lower_bound(f.sum, threshold, out);
          return;
        }
      }
      assert(false && "no source explains the requested threshold");
      return;
    }
    case Kind::Difference:
      difference_->explain_bound(node_, out);
      return;
    case Kind::MinMax:
    case Kind::ScenarioWorst: {
      // One child carrying the max suffices: the checker's re-derived child
      // bound folds through max monotonically.
      for (const ObjectiveTerm& c : children_) {
        if (c.lower_bound() >= threshold) {
          c.explain(threshold, out);
          return;
        }
      }
      assert(false && "no child explains the minmax threshold");
      return;
    }
    case Kind::Weighted: {
      // Explain every child at its current bound: the checker re-derives at
      // least these child values, and Σ w_i · lb_i >= threshold already.
      for (const ObjectiveTerm& c : children_) {
        c.explain(c.lower_bound(), out);
      }
      return;
    }
    case Kind::Lex: {
      // Explain each child at its clamped bound; packing the clamped child
      // values reproduces lower_bound() >= threshold, and any larger
      // re-derived child value only raises the packed value.
      for (std::size_t i = 0; i < children_.size(); ++i) {
        const std::int64_t clamped =
            std::min(children_[i].lower_bound(), params_[i]);
        children_[i].explain(clamped, out);
      }
      return;
    }
  }
}

bool ObjectiveTerm::push_bound(std::int64_t bound, asp::Lit activation,
                               bool mirror_floors) const {
  switch (kind_) {
    case Kind::Linear:
      linear_->add_bound(sum_, bound, activation);
      if (mirror_floors) {
        // Floors never exceed the leaf, so the same ceiling holds for them.
        for (const Floor& f : floors_) {
          f.linear->add_bound(f.sum, bound, activation);
        }
      }
      return true;
    case Kind::Difference:
      difference_->add_bound(node_, bound, activation);
      return true;
    case Kind::MinMax:
    case Kind::ScenarioWorst: {
      // max(children) <= B  <=>  every child <= B: complete fan-out.
      bool complete = true;
      for (const ObjectiveTerm& c : children_) {
        complete &= c.push_bound(bound, activation, mirror_floors);
      }
      return complete;
    }
    case Kind::Weighted: {
      // w_i·c_i <= Σ w_j·c_j <= B (children are >= 0), so c_i <= B/w_i is
      // sound — but the conjunction of the pushed bounds does not imply the
      // aggregate bound: a residual combinator bound is required.
      for (std::size_t i = 0; i < children_.size(); ++i) {
        children_[i].push_bound(bound / params_[i], activation, mirror_floors);
      }
      return false;
    }
    case Kind::Lex: {
      // Only the most significant child admits a sound prefix bound:
      // clamp(c_0)·stride_0 <= value <= B forces c_0 <= B/stride_0 whenever
      // that quotient is below cap_0.  Deeper children stay unconstrained
      // (their contribution can be compensated), so a residual bound is
      // always required.
      if (bound < 0) {
        children_[0].push_bound(-1, activation, mirror_floors);
        return false;
      }
      const std::int64_t head = bound / lex_head_stride(params_);
      if (head < params_[0]) {
        children_[0].push_bound(head, activation, mirror_floors);
      }
      return false;
    }
  }
  return false;
}

bool ObjectiveTerm::push_lower_bound(std::int64_t bound,
                                     asp::Lit activation) const {
  if (kind_ != Kind::Linear) return false;
  linear_->add_lower_bound(sum_, bound, activation);
  return true;
}

void ObjectiveTerm::serialize(std::string& out) const {
  auto token = [&out](const std::string& t) {
    if (!out.empty() && out.back() != ' ') out += ' ';
    out += t;
  };
  switch (kind_) {
    case Kind::Linear:
      token("L");
      token(std::to_string(sum_));
      return;
    case Kind::Difference:
      token("D");
      token(std::to_string(node_));
      return;
    case Kind::Lex:
      token("X");
      break;
    case Kind::MinMax:
      token("M");
      break;
    case Kind::Weighted:
      token("W");
      break;
    case Kind::ScenarioWorst:
      token("V");
      break;
  }
  token(std::to_string(children_.size()));
  for (const std::int64_t p : params_) token(std::to_string(p));
  for (const ObjectiveTerm& c : children_) c.serialize(out);
}

}  // namespace aspmt::dse
