// dse::HybridPipeline — the heuristic half of the hybrid heuristic–exact
// explorer (ROADMAP item 4).
//
// Two mechanisms, both strictly accuracy-preserving:
//
//  1. Warm-start seeding: a budgeted heuristic pass (NSGA-II or a random
//     genotype sampler) proposes candidate design points.  Every candidate
//     is re-validated through synth::validate_implementation and its
//     objectives cross-checked against the decoded implementation before it
//     may enter the archive; survivors are injected as bounds that tighten
//     the dominance propagator from the very first conflict.  Because the
//     dominance nogood blocks `f >= p` *including equality*, a seeded point
//     is never re-enumerated by the solver — its validated witness stands
//     in as the front witness, and a matching `F` proof step is emitted at
//     injection time, so `cert::certify_front` certifies warm runs
//     end-to-end (see DESIGN §12 for the soundness argument).  Seeds that
//     turn out to be dominated are evicted by normal archive semantics.
//
//  2. Slice scheduling: the portfolio explorer carves objective 0 into
//     epsilon slices.  Instead of statically assigning slice i to worker i,
//     a SliceScheduler scores every slice by its remaining-hypervolume gap
//     (pareto::slice_hypervolume_gaps) against the incumbent front —
//     warm-start seeds make that front available immediately — and workers
//     claim the highest-gap slice next, so search effort goes where the
//     most unexplained volume is.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::dse {

enum class WarmStartMethod : std::uint8_t {
  Off,      ///< no heuristic pass
  Nsga2,    ///< budgeted ea::nsga2 run
  Sampler,  ///< uniform random genotypes through ea::decode_genotype
};

/// A candidate seed: an objective vector plus the implementation claimed to
/// realise it.  Candidates are untrusted until `generate_warm_seeds` has
/// validated them.
struct WarmSeedCandidate {
  pareto::Vec point;
  synth::Implementation impl;
};

struct WarmStartOptions {
  WarmStartMethod method = WarmStartMethod::Off;
  /// Heuristic evaluation budget (genotype decodes).  For NSGA-II the
  /// population/generation split is derived from this.
  std::uint64_t budget = 400;
  std::uint64_t seed = 1;
  /// Extra candidates injected alongside the generated ones.  They pass the
  /// same validation gate — tests use this to prove that infeasible or
  /// mislabelled seeds cannot poison the archive.
  std::vector<WarmSeedCandidate> external;
};

[[nodiscard]] inline bool warm_start_enabled(const WarmStartOptions& o) {
  return o.method != WarmStartMethod::Off || !o.external.empty();
}

/// Parse "nsga2" / "sampler" / "off"; returns nullopt on anything else.
[[nodiscard]] std::optional<WarmStartMethod> parse_warm_start_method(
    const std::string& name);
[[nodiscard]] const char* warm_start_method_name(WarmStartMethod m);

struct WarmStartResult {
  /// Validated, mutually non-dominated seeds ready for archive injection.
  std::vector<WarmSeedCandidate> seeds;
  std::uint64_t candidates = 0;          ///< proposed (generated + external)
  std::uint64_t rejected_invalid = 0;    ///< failed the validation gate
  std::uint64_t rejected_dominated = 0;  ///< valid but dominated by another seed
  std::uint64_t heuristic_evaluations = 0;
  double seconds = 0.0;
};

/// Run the configured heuristic pass and validate every candidate.  The
/// returned seeds all satisfy
///   validate_implementation(spec, impl) == ""  &&  impl.objectives() == point
/// and form an antichain under weak dominance.
[[nodiscard]] WarmStartResult generate_warm_seeds(
    const synth::Specification& spec, const WarmStartOptions& options);

/// Thread-safe gap-guided slice dispenser for the portfolio explorer.
///
/// Built once from the first usable front snapshot; workers then `claim()`
/// pending slices in descending hypervolume-gap order.  A slice abandoned
/// by a dying worker is requeued exactly once (same one-shot policy the
/// static scheduler had), so a slice whose constraint itself triggers the
/// fault cannot wedge the portfolio in a requeue loop.
class SliceScheduler {
 public:
  struct Slice {
    std::size_t id = 0;
    std::int64_t bound = 0;  ///< objective-0 upper bound of the slice
    double gap = 0.0;        ///< remaining-hypervolume score at seeding time
  };

  /// Build the slice table from a front snapshot: `parts` epsilon splits on
  /// objective 0, scored by pareto::slice_hypervolume_gaps.  Only the first
  /// call with a front of >= 2 points takes effect; returns true when the
  /// table was (already) built.
  bool seed(const std::vector<pareto::Vec>& front, std::size_t parts);

  /// Build the slice table from explicit objective-0 ceilings (checkpoint v4
  /// slice persistence, distributed shard resume) instead of deriving splits
  /// from a front snapshot.  Gaps are scored against `front` when it has the
  /// two points slice_hypervolume_gaps needs, else they default to zero.
  /// Same first-call-wins contract as seed().
  bool seed_bounds(const std::vector<std::int64_t>& bounds,
                   const std::vector<pareto::Vec>& front);

  /// All slice bounds in id order (empty before seeding) — what checkpoint
  /// v4 persists so a later session reseeds the identical partition.
  [[nodiscard]] std::vector<std::int64_t> bounds() const;

  /// Claim the pending slice with the largest gap; nullopt when none left.
  std::optional<Slice> claim();

  /// Return a claimed slice after its worker died; it becomes claimable
  /// again exactly once.
  void abandon(std::size_t id);

  [[nodiscard]] bool seeded() const;
  [[nodiscard]] std::size_t pending() const;

 private:
  /// Shared tail of seed()/seed_bounds(): fill the slice table and order the
  /// pending queue.  Caller holds `mutex_`.
  void install(const std::vector<std::int64_t>& splits,
               const std::vector<double>& gaps);

  mutable std::mutex mutex_;
  bool seeded_ = false;
  std::vector<Slice> slices_;        // immutable after seeding
  std::vector<std::size_t> queue_;   // pending slice ids, best gap last
  std::vector<char> requeued_;       // one-shot abandon flag per slice
};

}  // namespace aspmt::dse
