// Retry/backoff supervision shared by the exploration service and the
// distributed shard coordinator.
//
// A RetryPolicy bounds how stubbornly a failed unit of work (an exploration
// job, a shard worker) is retried: capped exponential backoff between
// attempts, deterministic jitter so a herd of failures de-synchronizes
// without making reruns irreproducible, and a circuit breaker that
// quarantines the unit after `max_attempts` instead of letting one poisoned
// job starve the pool forever.  The jitter is a pure function of
// (seed, key, attempt) — two runs with the same seed schedule identical
// retries, which keeps the differential tests exact.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

namespace aspmt::dse {

struct RetryPolicy {
  /// Total attempts before the circuit breaker quarantines the unit
  /// (first run included).  1 = never retry; 0 is treated as 1.
  std::size_t max_attempts = 3;
  double initial_backoff_seconds = 0.05;
  double max_backoff_seconds = 2.0;
  double multiplier = 2.0;
  /// Fraction of the computed backoff randomized away ([0,1]): the delay
  /// drawn for attempt k lies in [(1-jitter)*b_k, b_k].
  double jitter = 0.5;
};

/// The (deterministically jittered) delay before retry attempt `attempt`
/// (2-based: the delay after the first failure is attempt == 2).  `key`
/// identifies the unit of work so distinct units de-synchronize.
[[nodiscard]] double retry_backoff_seconds(const RetryPolicy& policy,
                                           std::uint64_t seed,
                                           std::uint64_t key,
                                           std::size_t attempt) noexcept;

/// Per-unit attempt ledger implementing the policy.  Thread-safe.
class RetrySupervisor {
 public:
  explicit RetrySupervisor(RetryPolicy policy, std::uint64_t seed = 1)
      : policy_(policy), seed_(seed) {}

  struct Decision {
    bool retry = false;           ///< false = quarantined (circuit open)
    double delay_seconds = 0.0;   ///< backoff before the retry
    std::size_t attempt = 0;      ///< attempt number the retry would be
  };

  /// Record one failure of unit `key` and decide its fate.
  [[nodiscard]] Decision on_failure(std::uint64_t key);

  /// Failures recorded for `key` so far.
  [[nodiscard]] std::size_t attempts(std::uint64_t key) const;

  /// Total retries granted across all keys.
  [[nodiscard]] std::uint64_t retries_granted() const;

  [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }

 private:
  RetryPolicy policy_;
  std::uint64_t seed_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::size_t> failures_;
  std::uint64_t retries_ = 0;
};

}  // namespace aspmt::dse
