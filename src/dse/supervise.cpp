#include "dse/supervise.hpp"

#include <algorithm>

namespace aspmt::dse {

namespace {

/// SplitMix64 — the repo's standard mixing function for derived streams.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double retry_backoff_seconds(const RetryPolicy& policy, std::uint64_t seed,
                             std::uint64_t key, std::size_t attempt) noexcept {
  if (attempt < 2) return 0.0;
  double backoff = policy.initial_backoff_seconds;
  for (std::size_t k = 2; k < attempt; ++k) {
    backoff *= policy.multiplier;
    if (backoff >= policy.max_backoff_seconds) break;
  }
  backoff = std::min(backoff, policy.max_backoff_seconds);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter <= 0.0) return backoff;
  // Uniform in [0,1) from the deterministic (seed, key, attempt) stream.
  const std::uint64_t h =
      mix(mix(seed) ^ mix(key ^ (0x5e71e0ULL + attempt)));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  return backoff * (1.0 - jitter * u);
}

RetrySupervisor::Decision RetrySupervisor::on_failure(std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t failed_attempts = ++failures_[key];
  const std::size_t cap = std::max<std::size_t>(1, policy_.max_attempts);
  Decision d;
  d.attempt = failed_attempts + 1;
  if (failed_attempts >= cap) {
    d.retry = false;  // circuit breaker: quarantine
    return d;
  }
  d.retry = true;
  d.delay_seconds = retry_backoff_seconds(policy_, seed_, key, d.attempt);
  ++retries_;
  return d;
}

std::size_t RetrySupervisor::attempts(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = failures_.find(key);
  return it == failures_.end() ? 0 : it->second;
}

std::uint64_t RetrySupervisor::retries_granted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return retries_;
}

}  // namespace aspmt::dse
