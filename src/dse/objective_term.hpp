// First-class objective terms: the tree the ObjectiveManager's axes are
// made of.
//
// Leaves are theory-backed objectives — guarded linear sums and
// difference-logic nodes, with optional floor sums attached at the leaf.
// Interior nodes are combinators:
//
//   lex(a, b, ...)       big-endian packing Σ clamp(v_i,0,cap_i)·stride_i
//                        with static caps (part of the axis definition)
//   minmax(a, b, ...)    max of the children
//   weighted(w*a+...)    positive-integer weighted aggregate
//   scenario_worst(...)  max of the children (robustness over scenarios;
//                        semantically minmax, kept distinct for reporting
//                        and proof-binding fidelity)
//
// Every node provides three facilities the dominance propagator and the
// optimizer rely on:
//
//   * lower_bound()   — a sound lower bound from child bounds on partial
//                       assignments (exact at total assignments, since every
//                       combinator is monotone and leaf bounds are exact);
//   * explain(t, out) — literals justifying lower_bound() >= t, by recursion
//                       into children.  The explanation is checker-friendly:
//                       re-deriving each *leaf* bound from the clause and
//                       folding it through the (monotone) combinators again
//                       reaches t;
//   * push_bound()    — decompose `term <= bound` into child theory bounds
//                       where sound.  minmax/scenario_worst fan out
//                       completely; weighted pushes child_i <= bound/w_i and
//                       lex pushes a prefix bound on its most significant
//                       child — both sound but incomplete, so the caller
//                       must install a residual combinator bound (see
//                       CombinatorBoundPropagator).  push_lower_bound() is
//                       only sound on linear leaves and is rejected
//                       elsewhere, which keeps the distributed banding
//                       contract linear-only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asp/literal.hpp"
#include "theory/difference.hpp"
#include "theory/linear_sum.hpp"

namespace aspmt::dse {

class ObjectiveTerm {
 public:
  enum class Kind : std::uint8_t {
    Linear,
    Difference,
    Lex,
    MinMax,
    Weighted,
    ScenarioWorst,
  };

  // ---- construction -------------------------------------------------------

  /// Linear-sum leaf (non-owning propagator pointer).
  [[nodiscard]] static ObjectiveTerm linear(
      std::string name, theory::LinearSumPropagator* propagator,
      theory::LinearSumPropagator::SumId sum);

  /// Difference-logic node leaf (e.g. the makespan).
  [[nodiscard]] static ObjectiveTerm makespan(
      std::string name, theory::DifferencePropagator* propagator,
      theory::DifferencePropagator::NodeId node);

  /// Lexicographic combinator.  `caps` gives the static per-child caps of
  /// the packing (one per child).  Throws std::invalid_argument when the
  /// arity mismatches, fewer than two children are given, a cap is negative
  /// or Π (cap_i + 1) overflows int64.
  [[nodiscard]] static ObjectiveTerm lex(std::string name,
                                         std::vector<std::int64_t> caps,
                                         std::vector<ObjectiveTerm> children);

  /// Min-max combinator (at least two children).
  [[nodiscard]] static ObjectiveTerm minmax(std::string name,
                                            std::vector<ObjectiveTerm> children);

  /// Weighted aggregate.  Weights must be >= 1 and match the child count
  /// (at least one child); throws std::invalid_argument otherwise.
  [[nodiscard]] static ObjectiveTerm weighted(std::string name,
                                              std::vector<std::int64_t> weights,
                                              std::vector<ObjectiveTerm> children);

  /// Best worst-case over a scenario set (at least two children).
  [[nodiscard]] static ObjectiveTerm scenario_worst(
      std::string name, std::vector<ObjectiveTerm> children);

  /// Attach a floor sum to a *linear leaf*: a redundant sum that never
  /// exceeds the leaf in a total model but can bound tighter on partial
  /// assignments.  Throws std::invalid_argument on non-linear terms.
  ObjectiveTerm& with_floor(theory::LinearSumPropagator* propagator,
                            theory::LinearSumPropagator::SumId sum);

  // ---- inspection ---------------------------------------------------------

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool is_leaf() const noexcept {
    return kind_ == Kind::Linear || kind_ == Kind::Difference;
  }
  [[nodiscard]] bool is_linear_leaf() const noexcept {
    return kind_ == Kind::Linear;
  }
  /// Leaf theory id (sum or node).
  [[nodiscard]] std::uint32_t leaf_id() const noexcept { return id_; }
  [[nodiscard]] const std::vector<ObjectiveTerm>& children() const noexcept {
    return children_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& params() const noexcept {
    return params_;  ///< caps (lex) or weights (weighted)
  }

  // ---- semantics ----------------------------------------------------------

  /// Sound lower bound under the current partial assignment (exact on total
  /// assignments).
  [[nodiscard]] std::int64_t lower_bound() const;

  /// Append true literals justifying `lower_bound() >= threshold`.
  void explain(std::int64_t threshold, std::vector<asp::Lit>& out) const;

  /// Push `term <= bound` into child theory bounds where sound.  Returns
  /// true iff the decomposition *fully* enforces the bound (leaves,
  /// minmax/scenario_worst fan-out); false when a residual combinator-level
  /// bound is still required (weighted, lex).  `mirror_floors` additionally
  /// mirrors leaf bounds onto attached floor sums (a propagation sharpener;
  /// skip it for shard ceilings, whose proofs must touch one sum only).
  bool push_bound(std::int64_t bound, asp::Lit activation,
                  bool mirror_floors) const;

  /// Push `term >= bound`.  Only sound on linear leaves; returns false
  /// (no constraint installed) everywhere else.
  bool push_lower_bound(std::int64_t bound, asp::Lit activation) const;

  /// Serialize the tree as proof-binding tokens:
  ///   L <sum> | D <node> | X <k> <cap...> <child>... |
  ///   M <k> <child>... | W <k> <weight...> <child>... | V <k> <child>...
  /// A leaf serializes to exactly the legacy binding body.
  void serialize(std::string& out) const;

 private:
  Kind kind_ = Kind::Linear;
  std::string name_;
  // Leaf payload.
  theory::LinearSumPropagator* linear_ = nullptr;
  theory::LinearSumPropagator::SumId sum_ = 0;
  theory::DifferencePropagator* difference_ = nullptr;
  theory::DifferencePropagator::NodeId node_ = 0;
  std::uint32_t id_ = 0;
  struct Floor {
    theory::LinearSumPropagator* linear = nullptr;
    theory::LinearSumPropagator::SumId sum = 0;
  };
  std::vector<Floor> floors_;
  // Interior payload.
  std::vector<std::int64_t> params_;  // caps (lex) or weights (weighted)
  std::vector<ObjectiveTerm> children_;

  static ObjectiveTerm combinator(Kind kind, std::string name,
                                  std::vector<std::int64_t> params,
                                  std::vector<ObjectiveTerm> children);
};

}  // namespace aspmt::dse
