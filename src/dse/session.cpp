#include "dse/session.hpp"

#include <filesystem>
#include <utility>

#include "dse/checkpoint.hpp"

namespace aspmt::dse {

ParallelExploreResult Session::run() {
  const std::lock_guard<std::mutex> run_lock(run_mutex_);

  auto budget = std::make_shared<Budget>(options_.limits);
  {
    const std::lock_guard<std::mutex> lock(budget_mutex_);
    budget_ = budget;
  }
  if (cancelled_.load(std::memory_order_acquire)) {
    budget->interrupt();  // poisoned session: the attempt stops immediately
  }

  ParallelExploreOptions opts = options_.base;
  opts.common.budget = budget.get();
  opts.common.checkpoint_path = options_.checkpoint_path;
  opts.common.checkpoint_interval_seconds =
      options_.checkpoint_interval_seconds;
  opts.common.resume = nullptr;

  // Auto-resume: a matching checkpoint at the session's anchor means a
  // previous attempt (this process or a predecessor that was killed) made
  // progress — seed from it.  A missing, corrupt, or foreign file degrades
  // to a cold start; the explorer records the mismatch diagnostic itself
  // when `resume` is set, so only a *loadable matching* file is passed on.
  Checkpoint ckpt;
  bool resumed = false;
  if (options_.resume_from_checkpoint && !options_.checkpoint_path.empty() &&
      std::filesystem::exists(options_.checkpoint_path)) {
    const std::string err = load_checkpoint(options_.checkpoint_path, ckpt);
    if (err.empty() && checkpoint_matches(ckpt, spec_)) {
      opts.common.resume = &ckpt;
      resumed = true;
    }
  }
  resumed_.store(resumed, std::memory_order_release);

  return explore_parallel(spec_, opts);
}

void Session::cancel() {
  cancelled_.store(true, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(budget_mutex_);
  if (budget_ != nullptr) budget_->interrupt();
}

void Session::interrupt() {
  const std::lock_guard<std::mutex> lock(budget_mutex_);
  if (budget_ != nullptr) budget_->interrupt();
}

}  // namespace aspmt::dse
