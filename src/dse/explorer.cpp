#include "dse/explorer.hpp"

#include <cassert>
#include <map>
#include <memory>

#include "cert/certify.hpp"
#include "dse/checkpoint.hpp"
#include "dse/context.hpp"
#include "util/timer.hpp"

namespace aspmt::dse {

ExploreResult explore(const synth::Specification& spec,
                      const ExploreOptions& options) {
  util::Timer timer;

  ExploreResult result;
  const bool certify = options.certify && options.epsilon.empty();
  if (options.certify && !options.epsilon.empty()) {
    result.certificate_error = "certification requires exact exploration (empty epsilon)";
  }
  const bool collect = options.collect_witnesses || certify;
  asp::ProofLog proof_log;

  // Resource governance: the caller's Budget wins; otherwise build one from
  // the numeric limits.  Either way the solver polls the same token.
  Budget local_budget(BudgetLimits{options.time_limit_seconds,
                                   options.conflict_budget,
                                   options.mem_limit_mb});
  Budget* budget = options.budget != nullptr ? options.budget : &local_budget;

  FaultPlan env_fault;
  const FaultPlan* fault = options.fault;
  if (fault == nullptr) {
    env_fault = FaultPlan::from_env();
    if (env_fault.any()) fault = &env_fault;
  }
  FaultState fstate;
  BudgetMonitor monitor(budget, fault, &fstate);

  ContextOptions copts;
  copts.archive_kind = options.archive_kind;
  copts.partial_evaluation = options.partial_evaluation;
  // Floor explanations reference redundant copair sums the checker cannot
  // re-derive; without floors the primary sources explain every bound and
  // the front is unchanged (floors are a pruning aid only).
  copts.objective_floors = certify ? false : options.objective_floors;
  copts.solver_options = options.solver_options;
  copts.solver_options.stop = budget->token();
  copts.solver_options.monitor = &monitor;
  if (certify) copts.proof = &proof_log;
  SynthContext ctx(spec, copts);
  if (!options.epsilon.empty()) {
    assert(options.epsilon.size() == ctx.objectives.count());
    ctx.dominance().set_epsilon(options.epsilon);
  }

  std::map<pareto::Vec, synth::Implementation> witnesses;

  // Warm start: seed the archive with the checkpointed front so every
  // region it weakly dominates is pruned from the first propagation on.
  std::uint64_t base_elapsed_ms = 0;
  bool resumed = false;
  if (options.resume != nullptr) {
    if (options.resume->spec_fingerprint != spec_fingerprint(spec)) {
      result.errors.push_back(
          "resume rejected: checkpoint was written for a different "
          "specification; starting cold");
    } else {
      const Checkpoint& ckpt = *options.resume;
      for (std::size_t i = 0; i < ckpt.points.size(); ++i) {
        ctx.dominance().insert(ckpt.points[i]);
        if (collect && i < ckpt.witnesses.size() &&
            !ckpt.witnesses[i].option_of_task.empty()) {
          witnesses[ckpt.points[i]] = ckpt.witnesses[i];
        }
      }
      base_elapsed_ms = ckpt.elapsed_ms;
      resumed = !ckpt.points.empty();
    }
  }

  std::unique_ptr<CheckpointWriter> ckpt_writer;
  if (!options.checkpoint_path.empty()) {
    ckpt_writer = std::make_unique<CheckpointWriter>(
        options.checkpoint_path, options.checkpoint_interval_seconds,
        fault != nullptr && fault->corrupt_checkpoint);
  }
  const auto snapshot = [&]() {
    Checkpoint c;
    c.spec_fingerprint = spec_fingerprint(spec);
    c.seed = options.solver_options.seed;
    c.elapsed_ms = base_elapsed_ms +
                   static_cast<std::uint64_t>(timer.elapsed_ms());
    c.points = ctx.archive().points();
    if (collect) {
      c.witnesses.reserve(c.points.size());
      for (const pareto::Vec& p : c.points) {
        const auto it = witnesses.find(p);
        c.witnesses.push_back(it == witnesses.end() ? synth::Implementation{}
                                                    : it->second);
      }
    }
    return c;
  };

  const auto record = [&](const pareto::Vec& point) {
    ++result.stats.models;
    fault_worker_throw(fault, 0, result.stats.models);
    if (certify) proof_log.feasible_point(point);
    result.discoveries.emplace_back(timer.elapsed_seconds(), point);
    if (collect) {
      fault_alloc(fault, &fstate);
      witnesses[point] = ctx.capture().implementation();
    }
    if (ckpt_writer != nullptr && ckpt_writer->due()) {
      const std::string err = ckpt_writer->write_if_due(snapshot());
      if (!err.empty()) result.errors.push_back(err);
    }
  };

  bool out_of_time = false;
  bool failed = false;
  try {
    for (;;) {
      const asp::Solver::Result r = ctx.solver.solve({}, budget->deadline());
      if (r == asp::Solver::Result::Sat) {
        pareto::Vec point = ctx.capture().vector();
        // The dominance check already rejected weakly dominated candidates,
        // so insertion must succeed.
        const bool inserted = ctx.dominance().insert(point);
        assert(inserted);
        (void)inserted;
        record(point);
        // Drill down: chase strictly dominating points until none is left.
        // The archive already blocks f >= point, so requiring f <= point
        // leaves exactly the strictly-better region.
        while (options.drill_down) {
          const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
          for (std::size_t o = 0; o < ctx.objectives.count(); ++o) {
            ctx.objectives.add_bound(o, point[o], act);
          }
          const std::vector<asp::Lit> assume{act};
          const asp::Solver::Result r2 =
              ctx.solver.solve(assume, budget->deadline());
          if (r2 == asp::Solver::Result::Unknown) {
            out_of_time = true;
            break;
          }
          if (r2 == asp::Solver::Result::Unsat) break;  // point is Pareto-optimal
          point = ctx.capture().vector();
          const bool better = ctx.dominance().insert(point);
          assert(better);
          (void)better;
          record(point);
        }
        if (out_of_time) break;
        continue;
      }
      result.stats.complete = (r == asp::Solver::Result::Unsat);
      break;
    }
  } catch (const std::exception& e) {
    // Graceful degradation: the archive holds every point found so far and
    // is returned labelled as partial instead of dying with the exception.
    failed = true;
    result.errors.push_back(std::string("exploration aborted: ") + e.what());
  }

  result.front = ctx.archive().points();
  if (collect) {
    result.witnesses.reserve(result.front.size());
    for (const pareto::Vec& p : result.front) {
      const auto it = witnesses.find(p);
      if (it == witnesses.end()) {
        // A fault between archive insert and witness capture can leave a
        // front point witness-less; report it instead of dereferencing
        // end() (the pre-fix behavior was UB under NDEBUG).
        result.witnesses.emplace_back();
        result.errors.push_back("missing witness for " + pareto::to_string(p));
      } else {
        result.witnesses.push_back(it->second);
      }
    }
  }

  result.stats.complete = result.stats.complete && !out_of_time && !failed;
  result.stats.reason = failed ? StopReason::WorkerFailure
                               : budget->finish(result.stats.complete);
  if (certify) {
    result.proof = proof_log.text();
    if (!result.stats.complete) {
      result.proof += "X 0\n";  // truncation marker: prefix-checkable only
      result.certificate_error =
          std::string("exploration stopped early (") +
          to_string(result.stats.reason) + "); nothing to certify";
    } else if (resumed) {
      result.certificate_error =
          "resumed runs are not certifiable (seeded points lack in-stream "
          "derivations)";
    } else if (!result.errors.empty()) {
      result.certificate_error = result.errors.front();
    } else {
      std::vector<std::pair<pareto::Vec, synth::Implementation>> pairs(
          witnesses.begin(), witnesses.end());
      const cert::CertifyResult cr =
          cert::certify_front(spec, pairs, result.front, result.proof);
      result.certified = cr.certified;
      if (!cr.certified) result.certificate_error = cr.error;
    }
  }

  if (ckpt_writer != nullptr) {
    const std::string err = ckpt_writer->write(snapshot());
    if (!err.empty()) result.errors.push_back(err);
  }

  const asp::SolverStats& s = ctx.solver.stats();
  result.stats.prunings = ctx.dominance().prunings();
  result.stats.conflicts = s.conflicts;
  result.stats.decisions = s.decisions;
  result.stats.propagations = s.propagations;
  result.stats.theory_clauses = s.theory_clauses;
  result.stats.archive_comparisons = ctx.archive().comparisons();
  result.stats.seconds = timer.elapsed_seconds();
  return result;
}

WitnessEnumeration enumerate_witnesses(const synth::Specification& spec,
                                       const pareto::Vec& point,
                                       std::size_t limit,
                                       double time_limit_seconds) {
  const util::Deadline deadline(time_limit_seconds);
  SynthContext ctx(spec, {});
  assert(point.size() == ctx.objectives.count());
  // Pin every objective at the point (monotone tightening on a fresh
  // context is sound without activation literals).
  for (std::size_t o = 0; o < ctx.objectives.count(); ++o) {
    ctx.objectives.add_bound(o, point[o]);
  }
  WitnessEnumeration result;
  while (result.implementations.size() < limit) {
    const asp::Solver::Result r = ctx.solver.solve({}, &deadline);
    if (r != asp::Solver::Result::Sat) {
      result.complete = (r == asp::Solver::Result::Unsat);
      return result;
    }
    // With f <= p and p Pareto-optimal, equality is forced.
    assert(ctx.capture().vector() == point &&
           "point must be Pareto-optimal for exact witness enumeration");
    result.implementations.push_back(ctx.capture().implementation());
    std::vector<asp::Lit> blocking;
    blocking.reserve(ctx.encoding.decision_lits.size());
    for (const asp::Lit d : ctx.encoding.decision_lits) {
      blocking.push_back(ctx.solver.model_value(d.var()) == d.positive() ? ~d : d);
    }
    if (!ctx.solver.add_clause(std::move(blocking))) {
      result.complete = true;
      return result;
    }
  }
  return result;  // limit reached; completeness unknown
}

}  // namespace aspmt::dse
