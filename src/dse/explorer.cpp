#include "dse/explorer.hpp"

#include <cassert>
#include <map>

#include "cert/certify.hpp"
#include "dse/context.hpp"
#include "util/timer.hpp"

namespace aspmt::dse {

ExploreResult explore(const synth::Specification& spec,
                      const ExploreOptions& options) {
  util::Timer timer;
  const util::Deadline deadline(options.time_limit_seconds);

  ExploreResult result;
  const bool certify = options.certify && options.epsilon.empty();
  if (options.certify && !options.epsilon.empty()) {
    result.certificate_error = "certification requires exact exploration (empty epsilon)";
  }
  const bool collect = options.collect_witnesses || certify;
  asp::ProofLog proof_log;

  ContextOptions copts;
  copts.archive_kind = options.archive_kind;
  copts.partial_evaluation = options.partial_evaluation;
  // Floor explanations reference redundant copair sums the checker cannot
  // re-derive; without floors the primary sources explain every bound and
  // the front is unchanged (floors are a pruning aid only).
  copts.objective_floors = certify ? false : options.objective_floors;
  copts.solver_options = options.solver_options;
  if (certify) copts.proof = &proof_log;
  SynthContext ctx(spec, copts);
  if (!options.epsilon.empty()) {
    assert(options.epsilon.size() == ctx.objectives.count());
    ctx.dominance().set_epsilon(options.epsilon);
  }

  std::map<pareto::Vec, synth::Implementation> witnesses;

  bool out_of_time = false;
  for (;;) {
    const asp::Solver::Result r = ctx.solver.solve({}, &deadline);
    if (r == asp::Solver::Result::Sat) {
      ++result.stats.models;
      pareto::Vec point = ctx.capture().vector();
      // The dominance check already rejected weakly dominated candidates,
      // so insertion must succeed.
      const bool inserted = ctx.dominance().insert(point);
      assert(inserted);
      (void)inserted;
      if (certify) proof_log.feasible_point(point);
      result.discoveries.emplace_back(timer.elapsed_seconds(), point);
      if (collect) {
        witnesses[point] = ctx.capture().implementation();
      }
      // Drill down: chase strictly dominating points until none is left.
      // The archive already blocks f >= point, so requiring f <= point
      // leaves exactly the strictly-better region.
      while (options.drill_down) {
        const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
        for (std::size_t o = 0; o < ctx.objectives.count(); ++o) {
          ctx.objectives.add_bound(o, point[o], act);
        }
        const std::vector<asp::Lit> assume{act};
        const asp::Solver::Result r2 = ctx.solver.solve(assume, &deadline);
        if (r2 == asp::Solver::Result::Unknown) {
          out_of_time = true;
          break;
        }
        if (r2 == asp::Solver::Result::Unsat) break;  // point is Pareto-optimal
        ++result.stats.models;
        point = ctx.capture().vector();
        const bool better = ctx.dominance().insert(point);
        assert(better);
        (void)better;
        if (certify) proof_log.feasible_point(point);
        result.discoveries.emplace_back(timer.elapsed_seconds(), point);
        if (collect) {
          witnesses[point] = ctx.capture().implementation();
        }
      }
      if (out_of_time) break;
      continue;
    }
    result.stats.complete = (r == asp::Solver::Result::Unsat);
    break;
  }

  result.front = ctx.archive().points();
  if (collect) {
    result.witnesses.reserve(result.front.size());
    for (const pareto::Vec& p : result.front) {
      const auto it = witnesses.find(p);
      assert(it != witnesses.end());
      result.witnesses.push_back(it->second);
    }
  }

  result.stats.complete = result.stats.complete && !out_of_time;
  if (certify) {
    result.proof = proof_log.text();
    if (!result.stats.complete) {
      result.certificate_error = "exploration did not terminate; nothing to certify";
    } else {
      std::vector<std::pair<pareto::Vec, synth::Implementation>> pairs(
          witnesses.begin(), witnesses.end());
      const cert::CertifyResult cr =
          cert::certify_front(spec, pairs, result.front, result.proof);
      result.certified = cr.certified;
      if (!cr.certified) result.certificate_error = cr.error;
    }
  }

  const asp::SolverStats& s = ctx.solver.stats();
  result.stats.prunings = ctx.dominance().prunings();
  result.stats.conflicts = s.conflicts;
  result.stats.decisions = s.decisions;
  result.stats.propagations = s.propagations;
  result.stats.theory_clauses = s.theory_clauses;
  result.stats.archive_comparisons = ctx.archive().comparisons();
  result.stats.seconds = timer.elapsed_seconds();
  return result;
}

WitnessEnumeration enumerate_witnesses(const synth::Specification& spec,
                                       const pareto::Vec& point,
                                       std::size_t limit,
                                       double time_limit_seconds) {
  const util::Deadline deadline(time_limit_seconds);
  SynthContext ctx(spec, {});
  assert(point.size() == ctx.objectives.count());
  // Pin every objective at the point (monotone tightening on a fresh
  // context is sound without activation literals).
  for (std::size_t o = 0; o < ctx.objectives.count(); ++o) {
    ctx.objectives.add_bound(o, point[o]);
  }
  WitnessEnumeration result;
  while (result.implementations.size() < limit) {
    const asp::Solver::Result r = ctx.solver.solve({}, &deadline);
    if (r != asp::Solver::Result::Sat) {
      result.complete = (r == asp::Solver::Result::Unsat);
      return result;
    }
    // With f <= p and p Pareto-optimal, equality is forced.
    assert(ctx.capture().vector() == point &&
           "point must be Pareto-optimal for exact witness enumeration");
    result.implementations.push_back(ctx.capture().implementation());
    std::vector<asp::Lit> blocking;
    blocking.reserve(ctx.encoding.decision_lits.size());
    for (const asp::Lit d : ctx.encoding.decision_lits) {
      blocking.push_back(ctx.solver.model_value(d.var()) == d.positive() ? ~d : d);
    }
    if (!ctx.solver.add_clause(std::move(blocking))) {
      result.complete = true;
      return result;
    }
  }
  return result;  // limit reached; completeness unknown
}

}  // namespace aspmt::dse
