#include "dse/explorer.hpp"

#include <cassert>
#include <map>
#include <memory>

#include "cert/certify.hpp"
#include "dse/checkpoint.hpp"
#include "dse/context.hpp"
#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace aspmt::dse {

namespace {

/// Obs event payloads have exactly three slots; axes beyond them are elided
/// and missing ones report 0 (combinator specs may declare any axis count).
inline std::int64_t axis_or_zero(const pareto::Vec& p, std::size_t i) {
  return i < p.size() ? p[i] : 0;
}

}  // namespace

void export_metrics(obs::MetricsRegistry& registry,
                    const ExploreResult& result) {
  const ExploreStats& s = result.stats;
  // Counter totals mirror ExploreStats exactly — test_obs holds the two
  // equal field-for-field.
  registry.counter("explore.models").set(s.models);
  registry.counter("explore.prunings").set(s.prunings);
  registry.counter("explore.conflicts").set(s.conflicts);
  registry.counter("explore.decisions").set(s.decisions);
  registry.counter("explore.propagations").set(s.propagations);
  registry.counter("explore.theory_clauses").set(s.theory_clauses);
  registry.counter("explore.archive_comparisons").set(s.archive_comparisons);
  registry.counter("explore.warm_seeds").set(s.warm_seeds);
  registry.counter("explore.warm_rejected").set(s.warm_rejected);
  registry.counter("explore.replayed_clauses").set(s.replayed_clauses);
  registry.counter("explore.front_size").set(result.front.size());
  registry.gauge("explore.seconds").set(s.seconds);
  registry.gauge("explore.complete").set(s.complete ? 1.0 : 0.0);
  if (s.seconds > 0.0) {
    registry.gauge("explore.conflicts_per_sec")
        .set(static_cast<double>(s.conflicts) / s.seconds);
    registry.gauge("explore.propagations_per_sec")
        .set(static_cast<double>(s.propagations) / s.seconds);
    registry.gauge("explore.models_per_sec")
        .set(static_cast<double>(s.models) / s.seconds);
  }
}

ExploreResult explore(const synth::Specification& spec,
                      const ExploreOptions& options) {
  util::Timer timer;
  const CommonOptions& common = options.common;

  ExploreResult result;
  const bool certify = common.certify && options.epsilon.empty();
  if (common.certify && !options.epsilon.empty()) {
    result.certificate_error = "certification requires exact exploration (empty epsilon)";
  }
  const bool collect = common.collect_witnesses || certify;
  asp::ProofLog proof_log;

  // Resource governance: the caller's Budget wins; otherwise build one from
  // the numeric limits.  Either way the solver polls the same token.
  Budget local_budget(BudgetLimits{common.time_limit_seconds,
                                   common.conflict_budget,
                                   common.mem_limit_mb});
  Budget* budget = common.budget != nullptr ? common.budget : &local_budget;

  FaultPlan env_fault;
  const FaultPlan* fault = common.fault;
  if (fault == nullptr) {
    env_fault = FaultPlan::from_env();
    if (env_fault.any()) fault = &env_fault;
  }
  FaultState fstate;

  // Observability: with a sink attached, this run gets one producer ring
  // (worker 0) and a collector thread draining it.  Without one, `rec`
  // stays null and every instrumented site below is a pointer test.
  std::unique_ptr<obs::Collector> collector;
  obs::Recorder* rec = nullptr;
  if (common.sink != nullptr) {
    collector = std::make_unique<obs::Collector>(*common.sink, 1);
    rec = &collector->recorder(0);
    collector->start();
    rec->record(obs::EventKind::RunStart,
                static_cast<std::int64_t>(common.time_limit_seconds * 1000.0),
                1, static_cast<std::int64_t>(common.conflict_budget));
    rec->record(obs::EventKind::WorkerStart, 0);
  }
  obs::Histogram* insert_hist =
      common.metrics != nullptr
          ? &common.metrics->histogram("archive.comparisons_per_insert")
          : nullptr;

  BudgetMonitor monitor(budget, fault, &fstate, rec);

  ContextOptions copts;
  copts.archive_kind = common.archive_kind;
  copts.partial_evaluation = common.partial_evaluation;
  // Floor explanations reference redundant copair sums the checker cannot
  // re-derive; without floors the primary sources explain every bound and
  // the front is unchanged (floors are a pruning aid only).
  copts.objective_floors = certify ? false : common.objective_floors;
  copts.solver_options = common.solver_options;
  copts.solver_options.stop = budget->token();
  copts.solver_options.monitor = &monitor;
  copts.solver_options.recorder = rec;
  if (certify) copts.proof = &proof_log;
  SynthContext ctx(spec, copts);
  ctx.dominance().set_recorder(rec);
  if (!options.epsilon.empty()) {
    assert(options.epsilon.size() == ctx.objectives.count());
    ctx.dominance().set_epsilon(options.epsilon);
  }

  // Incremental re-exploration (respec.hpp): install a previous session's
  // learnt clauses behind a fresh assumption guard.  The guard keeps replay
  // exactness-neutral — the first Unsat under it only proves the *augmented*
  // problem empty, so the loop below drops the guard and re-proves
  // completeness against the unmodified encoding.  A dump whose variable
  // base does not match this encoding is ignored wholesale.
  const std::uint32_t base_vars = ctx.solver.num_vars();
  std::vector<asp::Lit> base_assume;
  if (common.clause_replay != nullptr) {
    const auto replay = decode_replay(*common.clause_replay, base_vars);
    if (!replay.empty()) {
      std::size_t installed = 0;
      const asp::Lit guard = ctx.solver.add_guarded_clauses(replay, &installed);
      if (installed > 0) base_assume.push_back(guard);
      result.stats.replayed_clauses = installed;
    }
  }

  std::map<pareto::Vec, synth::Implementation> witnesses;

  // Warm start: seed the archive with the checkpointed front so every
  // region it weakly dominates is pruned from the first propagation on.
  std::uint64_t base_elapsed_ms = 0;
  bool resumed = false;
  bool warm_ancestor = false;  // resumed from a warm-started checkpoint
  if (common.resume != nullptr) {
    if (!checkpoint_matches(*common.resume, spec)) {
      result.errors.push_back(
          "resume rejected: checkpoint was written for a different "
          "specification; starting cold");
    } else {
      const Checkpoint& ckpt = *common.resume;
      for (std::size_t i = 0; i < ckpt.points.size(); ++i) {
        ctx.dominance().insert(ckpt.points[i]);
        if (collect && i < ckpt.witnesses.size() &&
            !ckpt.witnesses[i].option_of_task.empty()) {
          witnesses[ckpt.points[i]] = ckpt.witnesses[i];
        }
      }
      base_elapsed_ms = ckpt.elapsed_ms;
      resumed = !ckpt.points.empty();
      warm_ancestor = ckpt.warm_started;
    }
  }

  // Hybrid warm start (warmstart.hpp): validated heuristic seeds enter the
  // archive before the first solve, so the dominance propagator prunes
  // everything they weakly dominate from the first conflict on.  Unlike
  // resume seeds, each one carries a freshly validated witness and (in
  // certified mode) an in-stream `F` step, so the run stays certifiable.
  bool warm_started = false;
  if (warm_start_enabled(common.warm_start)) {
    WarmStartResult ws = generate_warm_seeds(spec, common.warm_start);
    result.stats.warm_rejected = ws.rejected_invalid + ws.rejected_dominated;
    for (WarmSeedCandidate& seed : ws.seeds) {
      // A resume point may already dominate the seed; skipping it keeps the
      // archive an antichain.
      if (!ctx.dominance().insert(seed.point)) {
        ++result.stats.warm_rejected;
        continue;
      }
      ++result.stats.warm_seeds;
      warm_started = true;
      if (certify) proof_log.feasible_point(seed.point);
      result.discoveries.emplace_back(timer.elapsed_seconds(), seed.point);
      if (rec != nullptr) {
        // Obs events carry three payload slots; combinator specs may have
        // fewer (or more) axes, so missing slots report 0.
        rec->record(obs::EventKind::WarmStartSeed, axis_or_zero(seed.point, 0),
                    axis_or_zero(seed.point, 1), axis_or_zero(seed.point, 2));
      }
      if (collect) witnesses[seed.point] = std::move(seed.impl);
    }
  }

  std::unique_ptr<CheckpointWriter> ckpt_writer;
  if (!common.checkpoint_path.empty()) {
    ckpt_writer = std::make_unique<CheckpointWriter>(
        common.checkpoint_path, common.checkpoint_interval_seconds,
        fault != nullptr && fault->corrupt_checkpoint,
        fault != nullptr && fault->sync_fail);
  }
  const auto snapshot = [&]() {
    Checkpoint c;
    c.spec_fingerprint = spec_fingerprint(spec);
    c.seed = common.solver_options.seed;
    c.elapsed_ms = base_elapsed_ms +
                   static_cast<std::uint64_t>(timer.elapsed_ms());
    c.warm_started = warm_started || warm_ancestor;
    c.has_sections = true;
    c.sections = spec_sections(spec);
    if (common.checkpoint_clause_dump > 0) {
      for (const std::vector<asp::Lit>& cl :
           ctx.solver.export_learnts(base_vars, common.checkpoint_clause_dump)) {
        if (cl.size() > 1024) continue;  // the checkpoint format's clause cap
        std::vector<std::int32_t> dimacs;
        dimacs.reserve(cl.size());
        for (const asp::Lit l : cl) {
          const auto v = static_cast<std::int32_t>(l.var()) + 1;
          dimacs.push_back(l.positive() ? v : -v);
        }
        c.clauses.push_back(std::move(dimacs));
      }
      if (!c.clauses.empty()) c.clause_base_vars = base_vars;
    }
    c.points = ctx.archive().points();
    if (collect) {
      c.witnesses.reserve(c.points.size());
      for (const pareto::Vec& p : c.points) {
        const auto it = witnesses.find(p);
        c.witnesses.push_back(it == witnesses.end() ? synth::Implementation{}
                                                    : it->second);
      }
    }
    return c;
  };

  // Archive insertion with observability around it: the events and the
  // histogram only read sizes/counters, so the search trajectory is
  // untouched whether or not a sink is attached.
  const auto insert_point = [&](const pareto::Vec& p) {
    const bool observing = rec != nullptr && rec->enabled();
    const std::size_t before = observing ? ctx.archive().size() : 0;
    const std::uint64_t cmp_before =
        insert_hist != nullptr ? ctx.archive().comparisons() : 0;
    const bool inserted = ctx.dominance().insert(p);
    if (insert_hist != nullptr) {
      insert_hist->observe(ctx.archive().comparisons() - cmp_before);
    }
    if (observing && inserted) {
      rec->record(obs::EventKind::ArchiveInsert, axis_or_zero(p, 0),
                  axis_or_zero(p, 1), axis_or_zero(p, 2));
      const std::size_t after = ctx.archive().size();
      if (before + 1 > after) {
        rec->record(obs::EventKind::ArchiveEvict,
                    static_cast<std::int64_t>(before + 1 - after),
                    static_cast<std::int64_t>(after));
      }
    }
    return inserted;
  };

  const auto record = [&](const pareto::Vec& point) {
    ++result.stats.models;
    if (rec != nullptr) {
      rec->record(obs::EventKind::ModelFound, axis_or_zero(point, 0),
                  axis_or_zero(point, 1), axis_or_zero(point, 2));
    }
    fault_worker_throw(fault, 0, result.stats.models);
    if (certify) proof_log.feasible_point(point);
    result.discoveries.emplace_back(timer.elapsed_seconds(), point);
    if (collect) {
      fault_alloc(fault, &fstate);
      witnesses[point] = ctx.capture().implementation();
    }
    if (ckpt_writer != nullptr && ckpt_writer->due()) {
      const Checkpoint c = snapshot();
      const std::string err = ckpt_writer->write_if_due(c);
      if (rec != nullptr) {
        rec->record(obs::EventKind::CheckpointWrite,
                    static_cast<std::int64_t>(c.points.size()),
                    err.empty() ? 1 : 0);
      }
      if (!err.empty()) result.errors.push_back(err);
    }
  };

  bool out_of_time = false;
  bool failed = false;
  try {
    for (;;) {
      const asp::Solver::Result r =
          ctx.solver.solve(base_assume, budget->deadline());
      if (r == asp::Solver::Result::Unsat && !base_assume.empty()) {
        // Replay guard exhausted: the augmented problem is empty, which says
        // nothing about the original one.  Drop the guard and keep searching
        // — any point a stale clause hid is found now and evicts whatever it
        // dominated in the archive.
        base_assume.clear();
        continue;
      }
      if (r == asp::Solver::Result::Sat) {
        pareto::Vec point = ctx.capture().vector();
        // The dominance check already rejected weakly dominated candidates,
        // so insertion must succeed.
        const bool inserted = insert_point(point);
        assert(inserted);
        (void)inserted;
        record(point);
        // Drill down: chase strictly dominating points until none is left.
        // The archive already blocks f >= point, so requiring f <= point
        // leaves exactly the strictly-better region.
        while (common.drill_down) {
          const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
          for (std::size_t o = 0; o < ctx.objectives.count(); ++o) {
            ctx.objectives.add_bound(o, point[o], act);
          }
          std::vector<asp::Lit> assume = base_assume;
          assume.push_back(act);
          const asp::Solver::Result r2 =
              ctx.solver.solve(assume, budget->deadline());
          if (r2 == asp::Solver::Result::Unknown) {
            out_of_time = true;
            break;
          }
          if (r2 == asp::Solver::Result::Unsat) break;  // point is Pareto-optimal
          point = ctx.capture().vector();
          const bool better = insert_point(point);
          assert(better);
          (void)better;
          record(point);
        }
        if (out_of_time) break;
        continue;
      }
      result.stats.complete = (r == asp::Solver::Result::Unsat);
      break;
    }
  } catch (const std::exception& e) {
    // Graceful degradation: the archive holds every point found so far and
    // is returned labelled as partial instead of dying with the exception.
    failed = true;
    result.errors.push_back(std::string("exploration aborted: ") + e.what());
  }

  result.front = ctx.archive().points();
  if (collect) {
    result.witnesses.reserve(result.front.size());
    for (const pareto::Vec& p : result.front) {
      const auto it = witnesses.find(p);
      if (it == witnesses.end()) {
        // A fault between archive insert and witness capture can leave a
        // front point witness-less; report it instead of dereferencing
        // end() (the pre-fix behavior was UB under NDEBUG).
        result.witnesses.emplace_back();
        result.errors.push_back("missing witness for " + pareto::to_string(p));
      } else {
        result.witnesses.push_back(it->second);
      }
    }
  }

  result.stats.complete = result.stats.complete && !out_of_time && !failed;
  result.stats.reason = failed ? StopReason::WorkerFailure
                               : budget->finish(result.stats.complete);
  if (certify) {
    result.proof = proof_log.text();
    if (!result.stats.complete) {
      result.proof += "X 0\n";  // truncation marker: prefix-checkable only
      result.certificate_error =
          std::string("exploration stopped early (") +
          to_string(result.stats.reason) + "); nothing to certify";
    } else if (resumed) {
      result.certificate_error =
          "resumed runs are not certifiable (seeded points lack in-stream "
          "derivations)";
    } else if (!result.errors.empty()) {
      result.certificate_error = result.errors.front();
    } else {
      std::vector<std::pair<pareto::Vec, synth::Implementation>> pairs(
          witnesses.begin(), witnesses.end());
      const cert::CertifyResult cr =
          cert::certify_front(spec, pairs, result.front, result.proof);
      result.certified = cr.certified;
      if (!cr.certified) result.certificate_error = cr.error;
    }
  }

  if (ckpt_writer != nullptr) {
    const Checkpoint c = snapshot();
    const std::string err = ckpt_writer->write(c);
    if (rec != nullptr) {
      rec->record(obs::EventKind::CheckpointWrite,
                  static_cast<std::int64_t>(c.points.size()),
                  err.empty() ? 1 : 0);
    }
    if (!err.empty()) result.errors.push_back(err);
  }

  const asp::SolverStats& s = ctx.solver.stats();
  result.stats.prunings = ctx.dominance().prunings();
  result.stats.conflicts = s.conflicts;
  result.stats.decisions = s.decisions;
  result.stats.propagations = s.propagations;
  result.stats.theory_clauses = s.theory_clauses;
  result.stats.archive_comparisons = ctx.archive().comparisons();
  result.stats.seconds = timer.elapsed_seconds();

  if (rec != nullptr) {
    rec->record(obs::EventKind::WorkerEnd,
                static_cast<std::int64_t>(result.stats.models),
                static_cast<std::int64_t>(result.stats.conflicts),
                failed ? 1 : 0);
    rec->record(obs::EventKind::RunEnd,
                static_cast<std::int64_t>(result.front.size()),
                static_cast<std::int64_t>(result.stats.models),
                result.stats.complete ? 1 : 0);
  }
  if (collector != nullptr) collector->stop();
  if (common.metrics != nullptr) export_metrics(*common.metrics, result);
  return result;
}

WitnessEnumeration enumerate_witnesses(const synth::Specification& spec,
                                       const pareto::Vec& point,
                                       std::size_t limit,
                                       double time_limit_seconds) {
  const util::Deadline deadline(time_limit_seconds);
  SynthContext ctx(spec, {});
  assert(point.size() == ctx.objectives.count());
  // Pin every objective at the point (monotone tightening on a fresh
  // context is sound without activation literals).
  for (std::size_t o = 0; o < ctx.objectives.count(); ++o) {
    ctx.objectives.add_bound(o, point[o]);
  }
  WitnessEnumeration result;
  while (result.implementations.size() < limit) {
    const asp::Solver::Result r = ctx.solver.solve({}, &deadline);
    if (r != asp::Solver::Result::Sat) {
      result.complete = (r == asp::Solver::Result::Unsat);
      return result;
    }
    // With f <= p and p Pareto-optimal, equality is forced.
    assert(ctx.capture().vector() == point &&
           "point must be Pareto-optimal for exact witness enumeration");
    result.implementations.push_back(ctx.capture().implementation());
    std::vector<asp::Lit> blocking;
    blocking.reserve(ctx.encoding.decision_lits.size());
    for (const asp::Lit d : ctx.encoding.decision_lits) {
      blocking.push_back(ctx.solver.model_value(d.var()) == d.positive() ? ~d : d);
    }
    if (!ctx.solver.add_clause(std::move(blocking))) {
      result.complete = true;
      return result;
    }
  }
  return result;  // limit reached; completeness unknown
}

}  // namespace aspmt::dse
