#include "dse/context.hpp"

namespace aspmt::dse {

bool ModelCapture::check(asp::Solver& solver) {
  vector_ = ctx_.objectives.lower_bounds();
  impl_ = synth::decode_current(ctx_.spec(), ctx_.encoding, solver, ctx_.linear,
                                ctx_.difference);
  return true;
}

SynthContext::SynthContext(const synth::Specification& spec, ContextOptions options)
    : solver(options.solver_options), spec_(&spec) {
  if (options.proof != nullptr) {
    // Attach before encode() so the trace covers every declaration.
    solver.set_proof(options.proof);
    linear.set_proof(options.proof);
    difference.set_proof(options.proof);
  }
  synth::EncodeOptions eopts;
  eopts.objective_floors = options.objective_floors;
  encoding = synth::encode(spec, solver, linear, difference, eopts);

  objectives.add_makespan("latency", &difference, encoding.makespan);
  objectives.add_linear("energy", &linear, encoding.energy_sum);
  objectives.add_floor(&linear, encoding.energy_floor_sum);
  objectives.add_linear("cost", &linear, encoding.cost_sum);
  if (options.proof != nullptr) {
    for (std::size_t i = 0; i < objectives.count(); ++i) {
      const auto src = objectives.source(i);
      if (src.is_linear) {
        options.proof->def_objective_linear(i, src.id);
      } else {
        options.proof->def_objective_diff(i, src.id);
      }
    }
  }

  unfounded_ = std::make_unique<asp::UnfoundedSetChecker>(encoding.compiled);
  unfounded_->set_proof(options.proof);
  archive_ = pareto::make_archive(options.archive_kind, objectives.count());
  dominance_ = std::make_unique<DominancePropagator>(objectives, *archive_);
  capture_ = std::make_unique<ModelCapture>(*this);

  if (!options.partial_evaluation) {
    linear.set_partial_evaluation(false);
    difference.set_partial_evaluation(false);
    dominance_->set_partial_evaluation(false);
  }

  if (options.binding_first_heuristic) {
    // Deciding bindings first fixes the WCET/energy/cost contributions of
    // every task, so the objective lower bounds (and with them the dominance
    // propagator) become meaningful at shallow decision levels.
    for (const auto& per_task : encoding.bind_atom) {
      for (const asp::Atom a : per_task) {
        solver.boost_variable(encoding.compiled.atom_var[a], 100.0);
      }
    }
  }

  // Registration order matters: theories first (they feed the objective
  // bounds), then stability, then dominance, then capture (which must only
  // run on accepted assignments).
  solver.add_propagator(&linear);
  solver.add_propagator(&difference);
  solver.add_propagator(unfounded_.get());
  solver.add_propagator(dominance_.get());
  solver.add_propagator(capture_.get());
}

}  // namespace aspmt::dse
