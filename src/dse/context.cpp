#include "dse/context.hpp"

#include <map>

#include "synth/objective_expr.hpp"

namespace aspmt::dse {

namespace {

using SumId = theory::LinearSumPropagator::SumId;

/// Build the guarded linear sum of a scenario's energy: every encoding term
/// of the nominal energy sum, scaled by the scenario's per-resource factor —
/// execution terms by the factor of the mapping's resource, communication
/// terms by the factor of the link's sending resource.  Mirrors
/// synth::recompute_metrics term for term.
SumId scenario_energy_sum(const synth::Specification& spec,
                          const synth::Encoding& enc,
                          theory::LinearSumPropagator& linear,
                          std::size_t scenario) {
  const synth::Scenario& s = spec.scenarios()[scenario];
  std::vector<theory::Term> terms;
  for (synth::TaskId t = 0; t < spec.tasks().size(); ++t) {
    const auto& options = spec.mappings_of(t);
    for (std::size_t i = 0; i < options.size(); ++i) {
      const synth::MappingOption& o = spec.mappings()[options[i]];
      const std::int64_t w = o.energy * s.factor_of(o.resource);
      if (w != 0) terms.push_back(theory::Term{enc.lit(enc.bind_atom[t][i]), w});
    }
  }
  for (synth::MessageId m = 0; m < spec.messages().size(); ++m) {
    for (const auto& per_hop : enc.step_atom[m]) {
      for (synth::LinkId l = 0; l < per_hop.size(); ++l) {
        if (per_hop[l] == synth::Encoding::kNoAtom) continue;
        const synth::Link& link = spec.links()[l];
        const std::int64_t w = spec.messages()[m].payload * link.hop_energy *
                               s.factor_of(link.from);
        if (w != 0) terms.push_back(theory::Term{enc.lit(per_hop[l]), w});
      }
    }
  }
  return linear.add_sum("energy@" + s.name, std::move(terms));
}

/// Instantiate one axis' ObjectiveTerm tree from its spec-level expression.
/// Lex caps come from synth::expr_cap, the same statics the witness
/// recomputation uses, so runtime values, recomputed values and the proof
/// binding always agree.
ObjectiveTerm build_term(const synth::Specification& spec,
                         const synth::Encoding& enc,
                         theory::LinearSumPropagator& linear,
                         theory::DifferencePropagator& difference,
                         std::map<std::size_t, SumId>& scenario_sums,
                         const synth::ObjectiveExpr& expr) {
  const std::string label = synth::to_string(expr);
  if (expr.kind == synth::ObjectiveExpr::Kind::Metric) {
    if (expr.metric == "latency") {
      return ObjectiveTerm::makespan(label, &difference, enc.makespan);
    }
    if (expr.metric == "cost") {
      return ObjectiveTerm::linear(label, &linear, enc.cost_sum);
    }
    if (expr.scenario.empty()) {
      ObjectiveTerm t = ObjectiveTerm::linear(label, &linear, enc.energy_sum);
      t.with_floor(&linear, enc.energy_floor_sum);
      return t;
    }
    const std::size_t scn = spec.scenario_index(expr.scenario);
    auto it = scenario_sums.find(scn);
    if (it == scenario_sums.end()) {
      it = scenario_sums
               .emplace(scn, scenario_energy_sum(spec, enc, linear, scn))
               .first;
    }
    return ObjectiveTerm::linear(label, &linear, it->second);
  }

  std::vector<ObjectiveTerm> children;
  children.reserve(expr.children.size());
  for (const synth::ObjectiveExpr& c : expr.children) {
    children.push_back(
        build_term(spec, enc, linear, difference, scenario_sums, c));
  }
  switch (expr.kind) {
    case synth::ObjectiveExpr::Kind::Lex: {
      std::vector<std::int64_t> caps;
      caps.reserve(expr.children.size());
      for (const synth::ObjectiveExpr& c : expr.children) {
        caps.push_back(synth::expr_cap(spec, c));
      }
      return ObjectiveTerm::lex(label, std::move(caps), std::move(children));
    }
    case synth::ObjectiveExpr::Kind::MinMax:
      return ObjectiveTerm::minmax(label, std::move(children));
    case synth::ObjectiveExpr::Kind::Worst:
      return ObjectiveTerm::scenario_worst(label, std::move(children));
    case synth::ObjectiveExpr::Kind::Weighted:
    default:
      return ObjectiveTerm::weighted(label, expr.weights, std::move(children));
  }
}

}  // namespace

bool ModelCapture::check(asp::Solver& solver) {
  vector_ = ctx_.objectives.lower_bounds();
  impl_ = synth::decode_current(ctx_.spec(), ctx_.encoding, solver, ctx_.linear,
                                ctx_.difference);
  return true;
}

SynthContext::SynthContext(const synth::Specification& spec, ContextOptions options)
    : solver(options.solver_options), spec_(&spec) {
  if (options.proof != nullptr) {
    // Attach before encode() so the trace covers every declaration.
    solver.set_proof(options.proof);
    linear.set_proof(options.proof);
    difference.set_proof(options.proof);
  }
  synth::EncodeOptions eopts;
  eopts.objective_floors = options.objective_floors;
  encoding = synth::encode(spec, solver, linear, difference, eopts);

  // One ObjectiveTerm tree per Pareto axis, instantiated from the spec's
  // objective expressions (the classic latency/energy/cost triple when none
  // are declared).  Scenario energy sums are materialized on first use.
  std::map<std::size_t, SumId> scenario_sums;
  for (const synth::ObjectiveExpr& expr : spec.effective_objectives()) {
    objectives.add(
        build_term(spec, encoding, linear, difference, scenario_sums, expr));
  }
  combinator_bounds_ = std::make_unique<CombinatorBoundPropagator>(objectives);
  combinator_bounds_->set_proof(options.proof);
  objectives.attach_combinator_bounds(combinator_bounds_.get());
  if (options.proof != nullptr) {
    for (std::size_t i = 0; i < objectives.count(); ++i) {
      std::string tokens;
      objectives.term(i).serialize(tokens);
      options.proof->def_objective_term(i, tokens);
    }
  }

  unfounded_ = std::make_unique<asp::UnfoundedSetChecker>(encoding.compiled);
  unfounded_->set_proof(options.proof);
  archive_ = pareto::make_archive(options.archive_kind, objectives.count());
  dominance_ = std::make_unique<DominancePropagator>(objectives, *archive_);
  capture_ = std::make_unique<ModelCapture>(*this);

  if (!options.partial_evaluation) {
    linear.set_partial_evaluation(false);
    difference.set_partial_evaluation(false);
    dominance_->set_partial_evaluation(false);
  }

  if (options.binding_first_heuristic) {
    // Deciding bindings first fixes the WCET/energy/cost contributions of
    // every task, so the objective lower bounds (and with them the dominance
    // propagator) become meaningful at shallow decision levels.
    for (const auto& per_task : encoding.bind_atom) {
      for (const asp::Atom a : per_task) {
        solver.boost_variable(encoding.compiled.atom_var[a], 100.0);
      }
    }
  }

  // Registration order matters: theories first (they feed the objective
  // bounds), then stability, then the residual combinator bounds, then
  // dominance, then capture (which must only run on accepted assignments).
  solver.add_propagator(&linear);
  solver.add_propagator(&difference);
  solver.add_propagator(unfounded_.get());
  solver.add_propagator(combinator_bounds_.get());
  solver.add_propagator(dominance_.get());
  solver.add_propagator(capture_.get());
}

}  // namespace aspmt::dse
