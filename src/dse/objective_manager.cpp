#include "dse/objective_manager.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "dse/combinator_bounds.hpp"

namespace aspmt::dse {

namespace {

void warn_deprecated_once(const char* what, const char* replacement) {
  static bool warned[3] = {false, false, false};
  const int slot = what[4] == 'l' ? 0 : (what[4] == 'm' ? 1 : 2);
  if (warned[slot]) return;
  warned[slot] = true;
  std::fprintf(stderr,
               "warning: ObjectiveManager::%s is deprecated and will be "
               "removed next release; use %s\n",
               what, replacement);
}

}  // namespace

void ObjectiveManager::add(ObjectiveTerm term) {
  axes_.push_back(std::move(term));
}

void ObjectiveManager::add_linear(std::string name,
                                  theory::LinearSumPropagator* propagator,
                                  theory::LinearSumPropagator::SumId sum) {
  warn_deprecated_once("add_linear", "add(ObjectiveTerm::linear(...))");
  add(ObjectiveTerm::linear(std::move(name), propagator, sum));
}

void ObjectiveManager::add_makespan(std::string name,
                                    theory::DifferencePropagator* propagator,
                                    theory::DifferencePropagator::NodeId node) {
  warn_deprecated_once("add_makespan", "add(ObjectiveTerm::makespan(...))");
  add(ObjectiveTerm::makespan(std::move(name), propagator, node));
}

void ObjectiveManager::add_floor(theory::LinearSumPropagator* propagator,
                                 theory::LinearSumPropagator::SumId sum) {
  warn_deprecated_once("add_floor", "ObjectiveTerm::with_floor(...)");
  assert(!axes_.empty());
  axes_.back().with_floor(propagator, sum);
}

pareto::Vec ObjectiveManager::lower_bounds() const {
  pareto::Vec v;
  lower_bounds_into(v);
  return v;
}

void ObjectiveManager::lower_bounds_into(pareto::Vec& out) const {
  out.resize(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) out[i] = axes_[i].lower_bound();
}

void ObjectiveManager::explain(std::size_t i, std::int64_t threshold,
                               std::vector<asp::Lit>& out) const {
  axes_[i].explain(threshold, out);
}

void ObjectiveManager::add_bound(std::size_t i, std::int64_t bound,
                                 asp::Lit activation) {
  if (axes_[i].push_bound(bound, activation, /*mirror_floors=*/true)) return;
  if (residual_ == nullptr) {
    throw std::logic_error(
        "combinator axis bound requires an attached CombinatorBoundPropagator");
  }
  residual_->add_bound(i, bound, activation);
}

void ObjectiveManager::add_primary_bound(std::size_t i, std::int64_t bound,
                                         asp::Lit activation) {
  if (axes_[i].push_bound(bound, activation, /*mirror_floors=*/false)) return;
  if (residual_ == nullptr) {
    throw std::logic_error(
        "combinator axis bound requires an attached CombinatorBoundPropagator");
  }
  residual_->add_bound(i, bound, activation);
}

bool ObjectiveManager::add_lower_bound(std::size_t i, std::int64_t bound,
                                       asp::Lit activation) {
  return axes_[i].push_lower_bound(bound, activation);
}

ObjectiveManager::Source ObjectiveManager::source(std::size_t i) const noexcept {
  const ObjectiveTerm& t = axes_[i];
  switch (t.kind()) {
    case ObjectiveTerm::Kind::Linear:
      return Source{Source::Kind::Linear, t.leaf_id()};
    case ObjectiveTerm::Kind::Difference:
      return Source{Source::Kind::Difference, t.leaf_id()};
    default:
      return Source{Source::Kind::Combinator, 0};
  }
}

std::vector<std::int64_t> ObjectiveManager::epsilon_splits(std::int64_t lo,
                                                           std::int64_t hi,
                                                           std::size_t parts) {
  std::vector<std::int64_t> splits;
  if (parts < 2 || hi <= lo) return splits;
  const std::int64_t span = hi - lo;
  for (std::size_t i = 1; i < parts; ++i) {
    const std::int64_t b =
        lo + span * static_cast<std::int64_t>(i) /
                 static_cast<std::int64_t>(parts);
    if (b <= lo || b >= hi) continue;
    if (!splits.empty() && splits.back() == b) continue;
    splits.push_back(b);
  }
  return splits;
}

}  // namespace aspmt::dse
