#include "dse/objective_manager.hpp"

#include <algorithm>
#include <cassert>

namespace aspmt::dse {

void ObjectiveManager::add_linear(std::string name,
                                  theory::LinearSumPropagator* propagator,
                                  theory::LinearSumPropagator::SumId sum) {
  assert(propagator != nullptr);
  Entry e;
  e.name = std::move(name);
  e.linear = propagator;
  e.sum = sum;
  objectives_.push_back(std::move(e));
}

void ObjectiveManager::add_makespan(std::string name,
                                    theory::DifferencePropagator* propagator,
                                    theory::DifferencePropagator::NodeId node) {
  assert(propagator != nullptr);
  Entry e;
  e.name = std::move(name);
  e.difference = propagator;
  e.node = node;
  objectives_.push_back(std::move(e));
}

void ObjectiveManager::add_floor(theory::LinearSumPropagator* propagator,
                                 theory::LinearSumPropagator::SumId sum) {
  assert(!objectives_.empty() && propagator != nullptr);
  objectives_.back().floors.push_back(Floor{propagator, sum});
}

std::int64_t ObjectiveManager::lower_bound(std::size_t i) const {
  const Entry& e = objectives_[i];
  std::int64_t best = e.linear != nullptr ? e.linear->lower_bound(e.sum)
                                          : e.difference->lower_bound(e.node);
  for (const Floor& f : e.floors) {
    best = std::max(best, f.linear->lower_bound(f.sum));
  }
  return best;
}

pareto::Vec ObjectiveManager::lower_bounds() const {
  pareto::Vec v;
  lower_bounds_into(v);
  return v;
}

void ObjectiveManager::lower_bounds_into(pareto::Vec& out) const {
  out.resize(objectives_.size());
  for (std::size_t i = 0; i < objectives_.size(); ++i) out[i] = lower_bound(i);
}

void ObjectiveManager::explain(std::size_t i, std::int64_t threshold,
                               std::vector<asp::Lit>& out) const {
  const Entry& e = objectives_[i];
  // Use the primary source when it suffices, else the strongest floor.
  const std::int64_t primary = e.linear != nullptr
                                   ? e.linear->lower_bound(e.sum)
                                   : e.difference->lower_bound(e.node);
  if (primary >= threshold) {
    if (e.linear != nullptr) {
      e.linear->explain_lower_bound(e.sum, threshold, out);
    } else if (threshold > 0) {
      e.difference->explain_bound(e.node, out);
    }
    return;
  }
  for (const Floor& f : e.floors) {
    if (f.linear->lower_bound(f.sum) >= threshold) {
      f.linear->explain_lower_bound(f.sum, threshold, out);
      return;
    }
  }
  assert(threshold <= 0 && "no source explains the requested threshold");
}

void ObjectiveManager::add_bound(std::size_t i, std::int64_t bound,
                                 asp::Lit activation) {
  const Entry& e = objectives_[i];
  if (e.linear != nullptr) {
    e.linear->add_bound(e.sum, bound, activation);
  } else {
    e.difference->add_bound(e.node, bound, activation);
  }
  // Floors never exceed the objective, so the same bound holds for them and
  // sharpens propagation.
  for (const Floor& f : e.floors) f.linear->add_bound(f.sum, bound, activation);
}

void ObjectiveManager::add_primary_bound(std::size_t i, std::int64_t bound,
                                         asp::Lit activation) {
  const Entry& e = objectives_[i];
  if (e.linear != nullptr) {
    e.linear->add_bound(e.sum, bound, activation);
  } else {
    e.difference->add_bound(e.node, bound, activation);
  }
}

bool ObjectiveManager::add_lower_bound(std::size_t i, std::int64_t bound,
                                       asp::Lit activation) {
  const Entry& e = objectives_[i];
  if (e.linear == nullptr) return false;
  e.linear->add_lower_bound(e.sum, bound, activation);
  return true;
}

std::vector<std::int64_t> ObjectiveManager::epsilon_splits(std::int64_t lo,
                                                           std::int64_t hi,
                                                           std::size_t parts) {
  std::vector<std::int64_t> splits;
  if (parts < 2 || hi <= lo) return splits;
  const std::int64_t span = hi - lo;
  for (std::size_t i = 1; i < parts; ++i) {
    const std::int64_t b =
        lo + span * static_cast<std::int64_t>(i) /
                 static_cast<std::int64_t>(parts);
    if (b <= lo || b >= hi) continue;
    if (!splits.empty() && splits.back() == b) continue;
    splits.push_back(b);
  }
  return splits;
}

}  // namespace aspmt::dse
