// Single-objective branch-and-bound on top of a SynthContext.
//
// Minimisation works by repeatedly solving under an assumption literal that
// activates the bound `objective <= best - 1`; unsatisfiability under the
// assumption proves optimality without poisoning the solver (the bound's
// clauses all carry the negated activation literal).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "asp/literal.hpp"
#include "util/timer.hpp"

namespace aspmt::dse {

class SynthContext;

struct MinimizeResult {
  bool feasible = false;  ///< at least one model was found
  /// The outcome is definitive: optimality when feasible, infeasibility when
  /// not.  False only when the deadline expired first.
  bool proven = false;
  std::int64_t best = 0;  ///< best objective value seen
};

/// No warm-start bound (see minimize_objective's `upper_bound`).
inline constexpr std::int64_t kNoUpperBound =
    std::numeric_limits<std::int64_t>::max();

/// Minimise objective `objective` (index into ctx.objectives) subject to the
/// context's constraints and `assumptions`.  On return (when feasible) a
/// fresh activation literal pinning `objective <= best` has been appended to
/// `assumptions`, so subsequent calls optimise lexicographically.
///
/// `upper_bound` warm-starts the descent: when a heuristic pass (e.g. a
/// validated NSGA-II candidate, see warmstart.hpp) already exhibits a
/// solution with value v, passing v prunes everything above v from the first
/// solve on.  Sound for optimality because the caller vouches v is
/// *attained* by a real solution: if nothing at or below v exists the
/// bounded problem is Unsat and the result honestly reports infeasibility —
/// so only ever pass attained values.  kNoUpperBound (default) starts cold.
[[nodiscard]] MinimizeResult minimize_objective(SynthContext& ctx,
                                                std::size_t objective,
                                                std::vector<asp::Lit>& assumptions,
                                                const util::Deadline* deadline,
                                                std::int64_t upper_bound = kNoUpperBound);

}  // namespace aspmt::dse
