// Exact multi-objective design space exploration using ASPmT — the paper's
// headline algorithm.
//
// The explorer enumerates answer sets of the synthesis encoding.  Every
// accepted model's objective vector enters the Pareto archive held by the
// dominance propagator, which from then on prunes (already during search,
// on partial assignments) every region of the design space that the
// archive weakly dominates.  When the solver reports unsatisfiability the
// archive is exactly the Pareto front of the specification — with one
// witness implementation per front point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asp/solver.hpp"
#include "dse/budget.hpp"
#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::dse {

struct Checkpoint;

struct ExploreOptions {
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  bool partial_evaluation = true;   ///< Figure 3 ablation switch
  std::string archive_kind = "quadtree";  ///< or "linear" (Figure 4 ablation)
  bool collect_witnesses = true;
  /// After every model, immediately descend to a Pareto-optimal point by
  /// re-solving under activation-guarded bounds f <= v: mediocre interim
  /// points never enter the archive, so dominance pruning is maximal from
  /// the first insertion on.
  bool drill_down = true;
  /// Binding-pair floor bounds in the encoding (ablation switch; disabling
  /// never changes the front, only the pruning power).
  bool objective_floors = true;
  /// ε-dominance approximation (one additive slack per objective, in
  /// canonical order latency/energy/cost).  Empty = exact.  With a non-empty
  /// epsilon the run terminates with an ε-approximate front: every true
  /// Pareto point q is covered by a returned point p with p <= q + eps.
  pareto::Vec epsilon;
  /// Certified mode: proof-log the whole session, validate every discovered
  /// witness with synth::Validator, and machine-check the terminating Unsat
  /// proof with the independent checker — on success the result's
  /// `certified` flag asserts the front is exactly the Pareto front of the
  /// declared system.  Forces witness collection on and objective floors
  /// off (floor explanations are not independently re-derivable; the front
  /// is unaffected).  Incompatible with a non-empty epsilon.
  bool certify = false;
  asp::SolverOptions solver_options{};

  // ---- fault-tolerant runtime (see budget.hpp / checkpoint.hpp) ----------
  std::uint64_t conflict_budget = 0;  ///< 0 = unlimited solver conflicts
  std::size_t mem_limit_mb = 0;       ///< 0 = unlimited; ceiling on peak RSS
  /// External budget/token (CLI signal handling, embedding).  When set it
  /// governs the run and the three numeric limits above are ignored — the
  /// caller configured the Budget itself.
  Budget* budget = nullptr;
  /// Periodic archive snapshots ("" = off), written atomically.
  std::string checkpoint_path;
  double checkpoint_interval_seconds = 30.0;
  /// Warm start: seed the archive (and witness table) from a loaded
  /// checkpoint.  Rejected with a recorded error when the spec fingerprint
  /// does not match.  Resumed runs are not certifiable.
  const Checkpoint* resume = nullptr;
  /// Fault-injection plan; nullptr = consult ASPMT_FAULT_INJECT.
  const FaultPlan* fault = nullptr;
};

struct ExploreStats {
  std::uint64_t models = 0;      ///< accepted answer sets
  std::uint64_t prunings = 0;    ///< dominance conflicts raised
  std::uint64_t conflicts = 0;   ///< total solver conflicts
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t theory_clauses = 0;
  std::uint64_t archive_comparisons = 0;
  double seconds = 0.0;
  bool complete = false;  ///< true iff the front is proven exact
  /// Structured cause of termination.  `Completed` iff `complete`, except
  /// after a contained worker failure, where the front may still have been
  /// proven exact by survivors while the reason honestly reports the crash.
  StopReason reason = StopReason::Completed;
};

struct ExploreResult {
  std::vector<pareto::Vec> front;  ///< sorted lexicographically
  /// One witness per front point (parallel to `front`), when collected.
  std::vector<synth::Implementation> witnesses;
  /// Anytime profile: (seconds since start, inserted point) for every
  /// archive insertion, in discovery order.  Later insertions may evict
  /// earlier points; replaying the sequence reconstructs the archive at any
  /// point in time.
  std::vector<std::pair<double, pareto::Vec>> discoveries;
  /// Certified mode only: true once every witness validated and the proof
  /// checker verified the terminating Unsat conclusion.
  bool certified = false;
  /// Why certification failed (or was unavailable); empty when certified or
  /// not requested.
  std::string certificate_error;
  /// Certified mode only: the full proof stream, replayable by
  /// cert::check_proof and tools/aspmt_check.  Streams of runs that stopped
  /// early end with an `X 0` truncation marker.
  std::string proof;
  /// Non-fatal degradations survived during the run (contained exceptions,
  /// missing witnesses, checkpoint I/O failures, rejected resume files).
  /// Empty on a healthy run.
  std::vector<std::string> errors;
  ExploreStats stats;
};

/// Compute the exact Pareto front of `spec` (latency, energy, cost).
[[nodiscard]] ExploreResult explore(const synth::Specification& spec,
                                    const ExploreOptions& options = {});

struct WitnessEnumeration {
  std::vector<synth::Implementation> implementations;
  bool complete = false;  ///< false iff `limit` or the deadline cut it short
};

/// Enumerate all distinct implementations achieving exactly the objective
/// vector `point` (which must be Pareto-optimal — otherwise strictly better
/// implementations would slip under the bounds and the function reports
/// them as a contract violation via assertion).  Distinctness is modulo the
/// decision atoms: binding, routing, serialization order.
[[nodiscard]] WitnessEnumeration enumerate_witnesses(
    const synth::Specification& spec, const pareto::Vec& point,
    std::size_t limit = 1000, double time_limit_seconds = 0.0);

}  // namespace aspmt::dse
