// Exact multi-objective design space exploration using ASPmT — the paper's
// headline algorithm.
//
// The explorer enumerates answer sets of the synthesis encoding.  Every
// accepted model's objective vector enters the Pareto archive held by the
// dominance propagator, which from then on prunes (already during search,
// on partial assignments) every region of the design space that the
// archive weakly dominates.  When the solver reports unsatisfiability the
// archive is exactly the Pareto front of the specification — with one
// witness implementation per front point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asp/solver.hpp"
#include "dse/budget.hpp"
#include "dse/options.hpp"
#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::dse {

struct ExploreOptions {
  /// Everything shared with the portfolio explorer — limits, archive kind,
  /// certification, fault-tolerant runtime, observability (see options.hpp).
  CommonOptions common;
  /// ε-dominance approximation (one additive slack per objective, in
  /// canonical order latency/energy/cost).  Empty = exact.  With a non-empty
  /// epsilon the run terminates with an ε-approximate front: every true
  /// Pareto point q is covered by a returned point p with p <= q + eps.
  /// Sequential-only: the portfolio explorer always runs exact.
  pareto::Vec epsilon;
};

struct ExploreStats {
  std::uint64_t models = 0;      ///< accepted answer sets
  std::uint64_t prunings = 0;    ///< dominance conflicts raised
  std::uint64_t conflicts = 0;   ///< total solver conflicts
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t theory_clauses = 0;
  std::uint64_t archive_comparisons = 0;
  /// Hybrid pipeline (warmstart.hpp): validated heuristic seeds that entered
  /// the archive before solving, and candidates the validation gate or the
  /// antichain reduction refused.
  std::uint64_t warm_seeds = 0;
  std::uint64_t warm_rejected = 0;
  /// Incremental re-exploration (respec.hpp): learnt clauses installed
  /// behind the replay guard (summed over workers in the portfolio).
  std::uint64_t replayed_clauses = 0;
  double seconds = 0.0;
  bool complete = false;  ///< true iff the front is proven exact
  /// Structured cause of termination.  `Completed` iff `complete`, except
  /// after a contained worker failure, where the front may still have been
  /// proven exact by survivors while the reason honestly reports the crash.
  StopReason reason = StopReason::Completed;
};

struct ExploreResult {
  std::vector<pareto::Vec> front;  ///< sorted lexicographically
  /// One witness per front point (parallel to `front`), when collected.
  std::vector<synth::Implementation> witnesses;
  /// Anytime profile: (seconds since start, inserted point) for every
  /// archive insertion, in discovery order.  Later insertions may evict
  /// earlier points; replaying the sequence reconstructs the archive at any
  /// point in time.
  std::vector<std::pair<double, pareto::Vec>> discoveries;
  /// Certified mode only: true once every witness validated and the proof
  /// checker verified the terminating Unsat conclusion.
  bool certified = false;
  /// Why certification failed (or was unavailable); empty when certified or
  /// not requested.
  std::string certificate_error;
  /// Certified mode only: the full proof stream, replayable by
  /// cert::check_proof and tools/aspmt_check.  Streams of runs that stopped
  /// early end with an `X 0` truncation marker.
  std::string proof;
  /// Non-fatal degradations survived during the run (contained exceptions,
  /// missing witnesses, checkpoint I/O failures, rejected resume files).
  /// Empty on a healthy run.
  std::vector<std::string> errors;
  ExploreStats stats;
};

/// Compute the exact Pareto front of `spec` (latency, energy, cost).
[[nodiscard]] ExploreResult explore(const synth::Specification& spec,
                                    const ExploreOptions& options = {});

/// Fill `registry` from a finished run so counter totals equal the run's
/// ExploreStats field-for-field ("explore.models" == stats.models, ...),
/// with derived per-second gauges alongside.  Called automatically by both
/// explorers when CommonOptions::metrics is set; public so embedders and
/// benches can snapshot ad-hoc runs the same way.
void export_metrics(obs::MetricsRegistry& registry, const ExploreResult& result);

struct WitnessEnumeration {
  std::vector<synth::Implementation> implementations;
  bool complete = false;  ///< false iff `limit` or the deadline cut it short
};

/// Enumerate all distinct implementations achieving exactly the objective
/// vector `point` (which must be Pareto-optimal — otherwise strictly better
/// implementations would slip under the bounds and the function reports
/// them as a contract violation via assertion).  Distinctness is modulo the
/// decision atoms: binding, routing, serialization order.
[[nodiscard]] WitnessEnumeration enumerate_witnesses(
    const synth::Specification& spec, const pareto::Vec& point,
    std::size_t limit = 1000, double time_limit_seconds = 0.0);

}  // namespace aspmt::dse
