#include "dse/parallel_explorer.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "cert/certify.hpp"
#include "dse/context.hpp"
#include "pareto/concurrent_archive.hpp"
#include "util/timer.hpp"

namespace aspmt::dse {
namespace {

/// SynthContext always registers latency, energy, cost (see context.cpp).
constexpr std::size_t kNumObjectives = 3;

std::uint64_t mix_seed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return (x ^ (x >> 31)) | 1ULL;  // non-zero: 0 would disable jitter
}

struct SharedState {
  SharedState(const std::string& kind, std::size_t shards,
              const util::Deadline* dl)
      : archive(kind, kNumObjectives, shards), deadline(dl) {}

  pareto::ConcurrentArchive archive;
  const util::Deadline* deadline;
  std::atomic<bool> stop{false};
  std::atomic<bool> complete{false};
  util::Timer timer;
  std::mutex mutex;  // guards witnesses + discoveries
  std::map<pareto::Vec, synth::Implementation> witnesses;
  std::vector<std::pair<double, pareto::Vec>> discoveries;
};

/// Diversified solver configuration for worker `index` of `total`.  Worker 0
/// keeps the caller's base configuration bit-for-bit (it is the "sequential
/// anchor" of the portfolio); the others jitter tie-breaking, restart
/// cadence and activity decay.
asp::SolverOptions diversify(asp::SolverOptions base, std::size_t index,
                             std::uint64_t portfolio_seed) {
  if (index == 0) return base;
  base.seed = mix_seed(portfolio_seed + index);
  base.restart_base = std::max<std::uint32_t>(
      1, base.restart_base << (index % 3));
  if (index % 3 == 2) base.var_decay = 0.90;
  return base;
}

void run_worker(std::size_t index, std::size_t total,
                const synth::Specification& spec,
                const ParallelExploreOptions& opts, SharedState& shared,
                WorkerReport& report, asp::ProofLog* proof) {
  util::Timer worker_timer;
  report.worker = index;

  ContextOptions copts;
  copts.archive_kind = opts.archive_kind;
  copts.partial_evaluation = opts.partial_evaluation;
  // Certified runs disable floors for checkable explanations (see
  // ExploreOptions::certify) and give every worker its own proof stream.
  copts.objective_floors = proof != nullptr ? false : opts.objective_floors;
  copts.proof = proof;
  copts.solver_options = diversify(opts.solver_options, index, opts.seed);
  copts.solver_options.stop = &shared.stop;
  SynthContext ctx(spec, copts);
  assert(ctx.objectives.count() == kNumObjectives);
  ctx.dominance().attach_shared(&shared.archive);

  std::vector<asp::Lit> assumptions;  // the active slice bound, if any
  bool slice_active = false;
  // Workers > 0 carve an epsilon-constraint slice out of the first
  // objective once the shared front spans a range there.
  bool slice_pending = index > 0 && total > 1;

  const auto publish = [&](const pareto::Vec& point) {
    ++report.models;
    if (slice_active) ++report.slice_models;
    const bool inserted = shared.archive.insert(point);
    ctx.dominance().sync_shared();
    if (!inserted) {
      ++report.rejected_inserts;
      return;
    }
    ++report.shared_inserts;
    // Only first publications carry an F step: rejected points may be
    // dominated by a *different* peer point and then have no witness.
    if (proof != nullptr) proof->feasible_point(point);
    std::lock_guard lock(shared.mutex);
    shared.discoveries.emplace_back(shared.timer.elapsed_seconds(), point);
    if (opts.collect_witnesses || proof != nullptr) {
      shared.witnesses[point] = ctx.capture().implementation();
    }
  };

  const auto try_activate_slice = [&]() {
    if (!slice_pending) return;
    const std::vector<pareto::Vec> front = shared.archive.points();
    if (front.size() < 2) return;
    std::int64_t lo = front.front()[0];
    std::int64_t hi = lo;
    for (const pareto::Vec& p : front) {
      lo = std::min(lo, p[0]);
      hi = std::max(hi, p[0]);
    }
    slice_pending = false;  // one shot, even when the range is degenerate
    const std::vector<std::int64_t> splits =
        ObjectiveManager::epsilon_splits(lo, hi, total);
    if (splits.empty()) return;
    const std::int64_t bound = splits[std::min(index - 1, splits.size() - 1)];
    const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
    ctx.objectives.add_bound(0, bound, act);
    assumptions.assign(1, act);
    slice_active = true;
  };

  for (;;) {
    try_activate_slice();
    const asp::Solver::Result r = ctx.solver.solve(assumptions, shared.deadline);
    if (r == asp::Solver::Result::Unknown) break;  // peer finished or deadline
    if (r == asp::Solver::Result::Unsat) {
      if (!assumptions.empty() && ctx.solver.ok()) {
        // Slice exhausted; fall back to the unconstrained problem.
        assumptions.clear();
        slice_active = false;
        continue;
      }
      // Unconstrained Unsat: every feasible point is weakly dominated by
      // the shared archive, which therefore is the exact front.
      report.proved_complete = true;
      shared.complete.store(true, std::memory_order_release);
      shared.stop.store(true, std::memory_order_release);
      break;
    }
    pareto::Vec point = ctx.capture().vector();
    publish(point);
    // Drill down to a Pareto-optimal point exactly as the sequential
    // explorer does, except that a peer may publish the point first — the
    // rejected insert is counted, never asserted against.
    bool out_of_time = false;
    while (opts.drill_down) {
      const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
      for (std::size_t o = 0; o < ctx.objectives.count(); ++o) {
        ctx.objectives.add_bound(o, point[o], act);
      }
      std::vector<asp::Lit> assume = assumptions;
      assume.push_back(act);
      const asp::Solver::Result r2 = ctx.solver.solve(assume, shared.deadline);
      if (r2 == asp::Solver::Result::Unknown) {
        out_of_time = true;
        break;
      }
      if (r2 == asp::Solver::Result::Unsat) break;  // point is region-optimal
      point = ctx.capture().vector();
      publish(point);
    }
    if (out_of_time) break;
  }

  const asp::SolverStats& s = ctx.solver.stats();
  report.prunings = ctx.dominance().prunings();
  report.conflicts = s.conflicts;
  report.decisions = s.decisions;
  report.propagations = s.propagations;
  report.restarts = s.restarts;
  report.theory_clauses = s.theory_clauses;
  report.archive_comparisons = ctx.archive().comparisons();
  report.seconds = worker_timer.elapsed_seconds();
}

}  // namespace

ParallelExploreResult explore_parallel(const synth::Specification& spec,
                                       const ParallelExploreOptions& options) {
  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  const util::Deadline deadline(options.time_limit_seconds);
  SharedState shared(options.archive_kind, options.archive_shards, &deadline);

  ParallelExploreResult result;
  result.workers.resize(threads);

  // Proof logs are per worker (never shared across threads); the winner's
  // becomes the portfolio's completeness certificate.
  std::vector<std::unique_ptr<asp::ProofLog>> logs(threads);
  if (options.certify) {
    for (auto& log : logs) log = std::make_unique<asp::ProofLog>();
  }

  if (threads == 1) {
    run_worker(0, 1, spec, options, shared, result.workers[0], logs[0].get());
  } else {
    std::mutex error_mutex;
    std::string first_error;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        try {
          run_worker(w, threads, spec, options, shared, result.workers[w],
                     logs[w].get());
        } catch (const std::exception& e) {
          shared.stop.store(true, std::memory_order_release);
          std::lock_guard lock(error_mutex);
          if (first_error.empty()) first_error = e.what();
        }
      });
    }
    for (std::thread& t : pool) t.join();
    if (!first_error.empty()) {
      throw std::runtime_error("parallel explorer worker failed: " +
                               first_error);
    }
  }

  result.front = shared.archive.points();
  if (options.collect_witnesses || options.certify) {
    result.witnesses.reserve(result.front.size());
    for (const pareto::Vec& p : result.front) {
      const auto it = shared.witnesses.find(p);
      assert(it != shared.witnesses.end());
      result.witnesses.push_back(it->second);
    }
  }
  result.discoveries = std::move(shared.discoveries);
  std::stable_sort(result.discoveries.begin(), result.discoveries.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  ExploreStats& stats = result.stats;
  for (const WorkerReport& w : result.workers) {
    stats.models += w.models;
    stats.prunings += w.prunings;
    stats.conflicts += w.conflicts;
    stats.decisions += w.decisions;
    stats.propagations += w.propagations;
    stats.theory_clauses += w.theory_clauses;
    stats.archive_comparisons += w.archive_comparisons;
  }
  stats.archive_comparisons += shared.archive.comparisons();
  stats.seconds = shared.timer.elapsed_seconds();
  stats.complete = shared.complete.load(std::memory_order_acquire);

  if (options.certify) {
    const auto winner =
        std::find_if(result.workers.begin(), result.workers.end(),
                     [](const WorkerReport& w) { return w.proved_complete; });
    if (!stats.complete || winner == result.workers.end()) {
      result.certificate_error =
          "no worker closed the global Unsat proof; nothing to certify";
    } else {
      result.proof = logs[winner->worker]->text();
      std::vector<std::pair<pareto::Vec, synth::Implementation>> pairs(
          shared.witnesses.begin(), shared.witnesses.end());
      const cert::CertifyResult cr =
          cert::certify_front(spec, pairs, result.front, result.proof);
      result.certified = cr.certified;
      if (!cr.certified) result.certificate_error = cr.error;
    }
  }
  return result;
}

}  // namespace aspmt::dse
