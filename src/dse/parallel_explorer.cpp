#include "dse/parallel_explorer.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "cert/certify.hpp"
#include "dse/checkpoint.hpp"
#include "dse/context.hpp"
#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "pareto/concurrent_archive.hpp"
#include "util/timer.hpp"

namespace aspmt::dse {
namespace {

constexpr std::size_t kNoSlice = std::numeric_limits<std::size_t>::max();

/// Obs event payloads have exactly three slots; axes beyond them are elided
/// and missing ones report 0 (combinator specs may declare any axis count).
inline std::int64_t axis_or_zero(const pareto::Vec& p, std::size_t i) {
  return i < p.size() ? p[i] : 0;
}

std::uint64_t mix_seed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return (x ^ (x >> 31)) | 1ULL;  // non-zero: 0 would disable jitter
}

struct SharedState {
  SharedState(const std::string& kind, std::size_t axes, std::size_t shards,
              Budget* bdg, std::size_t total_workers)
      : archive(kind, axes, shards),
        budget(bdg),
        slice_parts(total_workers > 1 ? 2 * (total_workers - 1) : 0) {}

  pareto::ConcurrentArchive archive;
  Budget* budget;
  std::atomic<bool> complete{false};
  util::Timer timer;
  std::uint64_t base_elapsed_ms = 0;  ///< carried over from a resumed run
  bool warm_started = false;  ///< heuristic seeds were injected (checkpoint v2)

  std::mutex mutex;  // guards witnesses, discoveries, errors
  std::map<pareto::Vec, synth::Implementation> witnesses;
  std::vector<std::pair<double, pareto::Vec>> discoveries;
  std::vector<WorkerError> errors;

  // Gap-guided epsilon-slice dispenser (warmstart.hpp).  More slices than
  // workers (2*(threads-1) parts), so which slice a worker adopts *next* is
  // a real scheduling decision, driven by the hypervolume gap scores.
  SliceScheduler scheduler;
  const std::size_t slice_parts;

  CheckpointWriter* checkpoint = nullptr;
  const FaultPlan* fault = nullptr;
  FaultState fstate;
  std::uint64_t checkpoint_seed = 0;
  std::uint64_t fingerprint = 0;
  // v3 checkpoint payload: per-section digests (set once at setup) and the
  // sequential anchor's learnt-clause dump.  Worker 0 publishes its dump at
  // exit under `mutex`, so only the final snapshot carries clauses —
  // mid-run snapshots dump points only.
  SectionDigests sections;
  std::size_t clause_dump_cap = 0;
  std::uint32_t clause_base_vars = 0;
  std::vector<std::vector<std::int32_t>> clauses;
  /// Per-insert archive work histogram (nullptr without a metrics registry).
  /// In portfolio mode the comparison deltas are sampled off the shared
  /// atomic counter, so concurrent inserts may attribute a peer's work to
  /// each other — an approximation, flagged in DESIGN.md §11.
  obs::Histogram* insert_hist = nullptr;

  /// Contain a worker death: preserve the error and return its slice to the
  /// scheduler (one-shot requeue) so a survivor can finish the region it
  /// was responsible for.  Slices the dead worker never claimed are still
  /// pending in the scheduler and need no rescue.
  void record_failure(std::size_t worker, std::size_t active_slice,
                      std::string message) {
    {
      std::lock_guard lock(mutex);
      errors.push_back({worker, std::move(message)});
    }
    if (active_slice != kNoSlice) scheduler.abandon(active_slice);
  }

  /// Consistent snapshot for the checkpoint writer.
  Checkpoint snapshot() {
    Checkpoint c;
    c.spec_fingerprint = fingerprint;
    c.seed = checkpoint_seed;
    c.elapsed_ms = base_elapsed_ms +
                   static_cast<std::uint64_t>(timer.elapsed_ms());
    c.warm_started = warm_started;
    c.has_sections = true;
    c.sections = sections;
    c.slice_bounds = scheduler.bounds();
    c.points = archive.points();
    std::lock_guard lock(mutex);
    if (!clauses.empty()) {
      c.clause_base_vars = clause_base_vars;
      c.clauses = clauses;
    }
    c.witnesses.reserve(c.points.size());
    for (const pareto::Vec& p : c.points) {
      const auto it = witnesses.find(p);
      c.witnesses.push_back(it == witnesses.end() ? synth::Implementation{}
                                                  : it->second);
    }
    return c;
  }
};

/// Diversified solver configuration for worker `index` of `total`.  Worker 0
/// keeps the caller's base configuration bit-for-bit (it is the "sequential
/// anchor" of the portfolio); the others jitter tie-breaking, restart
/// cadence and activity decay.
asp::SolverOptions diversify(asp::SolverOptions base, std::size_t index,
                             std::uint64_t portfolio_seed) {
  if (index == 0) return base;
  base.seed = mix_seed(portfolio_seed + index);
  base.restart_base = std::max<std::uint32_t>(
      1, base.restart_base << (index % 3));
  if (index % 3 == 2) base.var_decay = 0.90;
  return base;
}

void run_worker(std::size_t index, std::size_t total,
                const synth::Specification& spec,
                const ParallelExploreOptions& opts, SharedState& shared,
                WorkerReport& report, asp::ProofLog* proof,
                obs::Recorder* rec) {
  util::Timer worker_timer;
  report.worker = index;
  const CommonOptions& common = opts.common;
  if (rec != nullptr) {
    rec->record(obs::EventKind::WorkerStart,
                static_cast<std::int64_t>(index));
  }

  ContextOptions copts;
  copts.archive_kind = common.archive_kind;
  copts.partial_evaluation = common.partial_evaluation;
  // Certified runs disable floors for checkable explanations (see
  // CommonOptions::certify) and give every worker its own proof stream.
  copts.objective_floors = proof != nullptr ? false : common.objective_floors;
  copts.proof = proof;
  copts.solver_options = diversify(common.solver_options, index, opts.seed);
  copts.solver_options.stop = shared.budget->token();
  BudgetMonitor monitor(shared.budget, shared.fault, &shared.fstate, rec);
  copts.solver_options.monitor = &monitor;
  copts.solver_options.recorder = rec;
  SynthContext ctx(spec, copts);
  assert(ctx.objectives.count() == spec.axis_count());
  ctx.dominance().attach_shared(&shared.archive);
  ctx.dominance().set_recorder(rec);
  // Certified mode: the propagator emits an `F` step into this worker's
  // stream for every point it pulls from the shared front (its own
  // publications included, on the sync right after the insert) — so any DOM
  // lemma a point justifies has its feasible-point step earlier in the same
  // stream, whichever worker discovered (or warm-seeded) the point.
  ctx.dominance().set_proof(proof);

  // Incremental re-exploration (respec.hpp): every worker owns an
  // independent solver, so each installs the previous session's clauses
  // behind its own assumption guard.  The guard is dropped on the first
  // Unsat under it — after the active slice, before the unconstrained
  // completeness claim — so replay never taints the global Unsat proof.
  const std::uint32_t base_vars = ctx.solver.num_vars();
  std::vector<asp::Lit> base_assume;
  if (common.clause_replay != nullptr) {
    const auto replay = decode_replay(*common.clause_replay, base_vars);
    if (!replay.empty()) {
      std::size_t installed = 0;
      const asp::Lit guard = ctx.solver.add_guarded_clauses(replay, &installed);
      if (installed > 0) base_assume.push_back(guard);
      report.replayed_clauses = installed;
    }
  }

  // Distributed banding: permanent shard assumptions.  Unlike the replay
  // guard and slice bounds these are never dropped — the terminating Unsat
  // is concluded under exactly these activations, which is what makes it a
  // *shard box* proof the merge layer can combine across processes.
  std::vector<asp::Lit> shard_assume;
  if (opts.shard.active) {
    constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
    constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
    if (opts.shard.objective >= ctx.objectives.count() ||
        ctx.objectives.source(opts.shard.objective).kind !=
            ObjectiveManager::Source::Kind::Linear) {
      // Reject rather than miscompute: banding a combinator (or difference)
      // axis has no sound single-sum floor/ceiling decomposition, and the
      // merged-front checker would refuse the shard boxes anyway.
      throw std::runtime_error(
          "shard objective must be a linear leaf axis; difference-logic and "
          "combinator axes cannot be banded soundly");
    }
    if (opts.shard.hi != kMax) {
      const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
      // Primary-only: a floor-mirrored ceiling would make the checker's
      // shard-box extraction reject the activation as impure (bounds on
      // more than one sum).
      ctx.objectives.add_primary_bound(opts.shard.objective, opts.shard.hi,
                                       act);
      shard_assume.push_back(act);
    }
    if (opts.shard.lo != kMin) {
      const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
      if (!ctx.objectives.add_lower_bound(opts.shard.objective, opts.shard.lo,
                                          act)) {
        throw std::runtime_error(
            "shard objective must be linear (difference logic has no floor)");
      }
      shard_assume.push_back(act);
    }
  }

  std::vector<asp::Lit> assumptions;  // the active slice bound, if any
  std::size_t active_slice = kNoSlice;
  const auto assume_all = [&]() {
    std::vector<asp::Lit> all = base_assume;
    all.insert(all.end(), shard_assume.begin(), shard_assume.end());
    all.insert(all.end(), assumptions.begin(), assumptions.end());
    return all;
  };

  const auto publish = [&](const pareto::Vec& point) {
    ++report.models;
    if (rec != nullptr) {
      rec->record(obs::EventKind::ModelFound, axis_or_zero(point, 0),
                  axis_or_zero(point, 1), axis_or_zero(point, 2));
    }
    fault_worker_throw(shared.fault, index, report.models);
    if (active_slice != kNoSlice) ++report.slice_models;
    const bool observing = rec != nullptr && rec->enabled();
    const std::size_t before = observing ? shared.archive.size() : 0;
    const std::uint64_t cmp_before =
        shared.insert_hist != nullptr ? shared.archive.comparisons() : 0;
    const bool inserted = shared.archive.insert(point);
    if (shared.insert_hist != nullptr) {
      shared.insert_hist->observe(shared.archive.comparisons() - cmp_before);
    }
    ctx.dominance().sync_shared();
    if (!inserted) {
      ++report.rejected_inserts;
      return;
    }
    ++report.shared_inserts;
    if (observing) {
      rec->record(obs::EventKind::ArchiveInsert, axis_or_zero(point, 0),
                  axis_or_zero(point, 1), axis_or_zero(point, 2));
      const std::size_t after = shared.archive.size();
      // Sizes are sampled around a concurrent insert, so the eviction count
      // is best-effort under races; the post-insert size `after` is what
      // exporters treat as authoritative.
      if (before + 1 > after) {
        rec->record(obs::EventKind::ArchiveEvict,
                    static_cast<std::int64_t>(before + 1 - after),
                    static_cast<std::int64_t>(after));
      }
    }
    // No explicit F step here: the sync_shared() above already pulled this
    // publication back into the local snapshot and proof-logged it there
    // (rejected points may be dominated by a *different* peer point and
    // then have no witness, so only successful inserts ever reach a proof).
    {
      std::lock_guard lock(shared.mutex);
      shared.discoveries.emplace_back(shared.timer.elapsed_seconds(), point);
      if (common.collect_witnesses || proof != nullptr) {
        fault_alloc(shared.fault, &shared.fstate);
        shared.witnesses[point] = ctx.capture().implementation();
      }
    }
    if (shared.checkpoint != nullptr && shared.checkpoint->due()) {
      // Ignore write errors here: a failing disk must not kill the search.
      // The final write at end of run reports them.
      const Checkpoint c = shared.snapshot();
      const std::string err = shared.checkpoint->write_if_due(c);
      if (rec != nullptr) {
        rec->record(obs::EventKind::CheckpointWrite,
                    static_cast<std::int64_t>(c.points.size()),
                    err.empty() ? 1 : 0);
      }
    }
  };

  /// Claim the next slice from the gap-guided scheduler (workers > 0 only).
  /// The scheduler is seeded lazily from the first front snapshot that
  /// spans a range — with a warm start that is before the first solve call,
  /// so slices (and their hypervolume-gap ranking) exist from t ~ 0.
  const auto try_activate_slice = [&]() {
    if (active_slice != kNoSlice || index == 0 || total < 2) return;
    if (!shared.scheduler.seeded() &&
        !shared.scheduler.seed(shared.archive.points(), shared.slice_parts)) {
      return;  // no spread yet (or degenerate range); stay unconstrained
    }
    const auto slice = shared.scheduler.claim();
    if (!slice.has_value()) return;
    ++report.slices_claimed;
    const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
    ctx.objectives.add_bound(0, slice->bound, act);
    assumptions.assign(1, act);
    active_slice = slice->id;
    if (rec != nullptr) {
      rec->record(obs::EventKind::SliceScheduled,
                  static_cast<std::int64_t>(slice->id), slice->bound,
                  static_cast<std::int64_t>(slice->gap + 0.5));
      rec->record(obs::EventKind::SliceActivate,
                  static_cast<std::int64_t>(slice->id), slice->bound);
    }
  };

  try {
    for (;;) {
      try_activate_slice();
      const asp::Solver::Result r =
          ctx.solver.solve(assume_all(), shared.budget->deadline());
      if (r == asp::Solver::Result::Unknown) break;  // peer finished or budget
      if (r == asp::Solver::Result::Unsat) {
        if (!assumptions.empty() && ctx.solver.ok()) {
          // Slice exhausted; the next loop iteration claims the scheduler's
          // best remaining slice, or the unconstrained problem if none.
          // (Under an active replay guard "exhausted" is conservative — a
          // stale clause may have hidden a point — but the post-guard
          // unconstrained pass re-covers every slice's region.)
          if (rec != nullptr) {
            rec->record(obs::EventKind::SliceExhaust,
                        static_cast<std::int64_t>(active_slice));
          }
          assumptions.clear();
          active_slice = kNoSlice;
          continue;
        }
        if (!base_assume.empty() && ctx.solver.ok()) {
          // Replay guard exhausted: the *augmented* problem is empty, which
          // proves nothing about the original.  Drop the guard and re-prove
          // completeness against the unmodified encoding.
          base_assume.clear();
          continue;
        }
        // Unsat under at most the permanent shard assumptions: every
        // feasible point (of the shard's band, or globally when unbanded)
        // is weakly dominated by the shared archive, which therefore is the
        // exact front of the explored region.
        report.proved_complete = true;
        shared.complete.store(true, std::memory_order_release);
        shared.budget->request_stop();
        break;
      }
      pareto::Vec point = ctx.capture().vector();
      publish(point);
      // Drill down to a Pareto-optimal point exactly as the sequential
      // explorer does, except that a peer may publish the point first — the
      // rejected insert is counted, never asserted against.
      bool out_of_time = false;
      while (common.drill_down) {
        const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
        for (std::size_t o = 0; o < ctx.objectives.count(); ++o) {
          ctx.objectives.add_bound(o, point[o], act);
        }
        std::vector<asp::Lit> assume = assume_all();
        assume.push_back(act);
        const asp::Solver::Result r2 =
            ctx.solver.solve(assume, shared.budget->deadline());
        if (r2 == asp::Solver::Result::Unknown) {
          out_of_time = true;
          break;
        }
        if (r2 == asp::Solver::Result::Unsat) break;  // point is region-optimal
        point = ctx.capture().vector();
        publish(point);
      }
      if (out_of_time) break;
    }
  } catch (const std::exception& e) {
    // Contained: the shared archive keeps every published point, the slice
    // is requeued for a survivor, and the run degrades instead of dying.
    report.failed = true;
    report.error = e.what();
    shared.record_failure(index, active_slice, e.what());
  } catch (...) {
    report.failed = true;
    report.error = "unknown exception";
    shared.record_failure(index, active_slice, "unknown exception");
  }

  // The sequential anchor donates its learnt clauses to the final v3
  // checkpoint (worker 0's strategy matches what a future sequential or
  // anchor solver would replay against).
  if (index == 0 && shared.clause_dump_cap > 0) {
    std::vector<std::vector<std::int32_t>> dump;
    for (const std::vector<asp::Lit>& cl :
         ctx.solver.export_learnts(base_vars, shared.clause_dump_cap)) {
      if (cl.size() > 1024) continue;  // the checkpoint format's clause cap
      std::vector<std::int32_t> dimacs;
      dimacs.reserve(cl.size());
      for (const asp::Lit l : cl) {
        const auto v = static_cast<std::int32_t>(l.var()) + 1;
        dimacs.push_back(l.positive() ? v : -v);
      }
      dump.push_back(std::move(dimacs));
    }
    if (!dump.empty()) {
      std::lock_guard lock(shared.mutex);
      shared.clause_base_vars = base_vars;
      shared.clauses = std::move(dump);
    }
  }

  const asp::SolverStats& s = ctx.solver.stats();
  report.prunings = ctx.dominance().prunings();
  report.conflicts = s.conflicts;
  report.decisions = s.decisions;
  report.propagations = s.propagations;
  report.restarts = s.restarts;
  report.theory_clauses = s.theory_clauses;
  report.archive_comparisons = ctx.archive().comparisons();
  report.seconds = worker_timer.elapsed_seconds();
  if (rec != nullptr) {
    rec->record(obs::EventKind::WorkerEnd,
                static_cast<std::int64_t>(report.models),
                static_cast<std::int64_t>(report.conflicts),
                report.failed ? 1 : 0);
  }
}

}  // namespace

ParallelExploreResult explore_parallel(const synth::Specification& spec,
                                       const ParallelExploreOptions& options) {
  const CommonOptions& common = options.common;
  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  Budget local_budget(BudgetLimits{common.time_limit_seconds,
                                   common.conflict_budget,
                                   common.mem_limit_mb});
  Budget* budget = common.budget != nullptr ? common.budget : &local_budget;

  FaultPlan env_fault;
  const FaultPlan* fault = common.fault;
  if (fault == nullptr) {
    env_fault = FaultPlan::from_env();
    if (env_fault.any()) fault = &env_fault;
  }

  SharedState shared(common.archive_kind, spec.axis_count(),
                     options.archive_shards, budget, threads);
  shared.fault = fault;
  shared.checkpoint_seed = options.seed;
  shared.fingerprint = spec_fingerprint(spec);
  shared.sections = spec_sections(spec);
  shared.clause_dump_cap = common.checkpoint_clause_dump;
  if (common.metrics != nullptr) {
    shared.insert_hist =
        &common.metrics->histogram("archive.comparisons_per_insert");
  }

  // Observability: one SPSC ring per worker plus one for this orchestrating
  // thread (index `threads`), all drained by the collector into the sink.
  std::unique_ptr<obs::Collector> collector;
  obs::Recorder* orec = nullptr;  // the orchestrator's recorder
  if (common.sink != nullptr) {
    collector = std::make_unique<obs::Collector>(*common.sink, threads + 1);
    orec = &collector->recorder(threads);
    collector->start();
    orec->record(obs::EventKind::RunStart,
                 static_cast<std::int64_t>(common.time_limit_seconds * 1000.0),
                 static_cast<std::int64_t>(threads),
                 static_cast<std::int64_t>(common.conflict_budget));
  }
  const auto worker_recorder = [&](std::size_t w) -> obs::Recorder* {
    return collector != nullptr ? &collector->recorder(w) : nullptr;
  };

  ParallelExploreResult result;
  result.workers.resize(threads);

  // Warm start: seed the shared archive before any worker spawns, so every
  // worker's first generation-counter sync pulls the checkpointed front.
  bool resumed = false;
  if (common.resume != nullptr) {
    if (!checkpoint_matches(*common.resume, spec)) {
      result.base.errors.push_back(
          "resume rejected: checkpoint was written for a different "
          "specification; starting cold");
    } else {
      const Checkpoint& ckpt = *common.resume;
      for (std::size_t i = 0; i < ckpt.points.size(); ++i) {
        shared.archive.insert(ckpt.points[i]);
        if (i < ckpt.witnesses.size() &&
            !ckpt.witnesses[i].option_of_task.empty()) {
          shared.witnesses[ckpt.points[i]] = ckpt.witnesses[i];
        }
      }
      shared.base_elapsed_ms = ckpt.elapsed_ms;
      resumed = !ckpt.points.empty();
      shared.warm_started = ckpt.warm_started;
    }
  }

  // Hybrid warm start: validated heuristic seeds enter the shared archive
  // before any worker spawns, so every worker's first generation-counter
  // sync pulls them (emitting per-stream F steps in certified mode) and the
  // slice scheduler can rank slices by hypervolume gap from t ~ 0.
  if (warm_start_enabled(common.warm_start)) {
    WarmStartResult ws = generate_warm_seeds(spec, common.warm_start);
    result.base.stats.warm_rejected =
        ws.rejected_invalid + ws.rejected_dominated;
    for (WarmSeedCandidate& seed : ws.seeds) {
      if (!shared.archive.insert(seed.point)) {
        ++result.base.stats.warm_rejected;  // a resume point dominates it
        continue;
      }
      ++result.base.stats.warm_seeds;
      shared.warm_started = true;
      shared.discoveries.emplace_back(shared.timer.elapsed_seconds(),
                                      seed.point);
      if (orec != nullptr) {
        orec->record(obs::EventKind::WarmStartSeed, axis_or_zero(seed.point, 0),
                     axis_or_zero(seed.point, 1), axis_or_zero(seed.point, 2));
      }
      if (common.collect_witnesses || common.certify) {
        shared.witnesses[seed.point] = std::move(seed.impl);
      }
    }
  }

  // Checkpoint-v4 slice persistence / shard requeue: rebuild the slice
  // partition from explicit bounds so a resumed session works the same
  // regions (gap scores refresh against whatever front is already seeded).
  if (!options.slice_bounds.empty() && threads > 1) {
    shared.scheduler.seed_bounds(options.slice_bounds, shared.archive.points());
  }

  std::unique_ptr<CheckpointWriter> ckpt_writer;
  if (!common.checkpoint_path.empty()) {
    ckpt_writer = std::make_unique<CheckpointWriter>(
        common.checkpoint_path, common.checkpoint_interval_seconds,
        fault != nullptr && fault->corrupt_checkpoint,
        fault != nullptr && fault->sync_fail);
    shared.checkpoint = ckpt_writer.get();
  }

  // Proof logs are per worker (never shared across threads); the winner's
  // becomes the portfolio's completeness certificate.
  std::vector<std::unique_ptr<asp::ProofLog>> logs(threads);
  if (common.certify) {
    for (auto& log : logs) log = std::make_unique<asp::ProofLog>();
  }

  if (threads == 1) {
    run_worker(0, 1, spec, options, shared, result.workers[0], logs[0].get(),
               worker_recorder(0));
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        try {
          run_worker(w, threads, spec, options, shared, result.workers[w],
                     logs[w].get(), worker_recorder(w));
        } catch (const std::exception& e) {
          // run_worker contains its own search-loop failures; this catch
          // covers context construction, which leaves no stats to report.
          result.workers[w].failed = true;
          result.workers[w].error = e.what();
          shared.record_failure(w, kNoSlice, e.what());
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  result.worker_errors = shared.errors;

  result.base.front = shared.archive.points();
  if (common.collect_witnesses || common.certify) {
    result.base.witnesses.reserve(result.base.front.size());
    for (const pareto::Vec& p : result.base.front) {
      const auto it = shared.witnesses.find(p);
      if (it == shared.witnesses.end()) {
        // A worker death between archive insert and witness capture leaves
        // the point witness-less; report it instead of dereferencing end()
        // (the pre-fix behavior was UB under NDEBUG).
        result.base.witnesses.emplace_back();
        result.base.errors.push_back("missing witness for " +
                                     pareto::to_string(p));
      } else {
        result.base.witnesses.push_back(it->second);
      }
    }
  }
  if (common.collect_witnesses || common.certify) {
    std::lock_guard lock(shared.mutex);
    result.discovery_witnesses.assign(shared.witnesses.begin(),
                                      shared.witnesses.end());
  }
  result.base.discoveries = std::move(shared.discoveries);
  std::stable_sort(result.base.discoveries.begin(),
                   result.base.discoveries.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  ExploreStats& stats = result.base.stats;
  for (const WorkerReport& w : result.workers) {
    stats.models += w.models;
    stats.prunings += w.prunings;
    stats.conflicts += w.conflicts;
    stats.decisions += w.decisions;
    stats.propagations += w.propagations;
    stats.theory_clauses += w.theory_clauses;
    stats.archive_comparisons += w.archive_comparisons;
    stats.replayed_clauses += w.replayed_clauses;
  }
  stats.archive_comparisons += shared.archive.comparisons();
  stats.seconds = shared.timer.elapsed_seconds();
  stats.complete = shared.complete.load(std::memory_order_acquire);
  // A contained crash is reported even when survivors proved the front
  // exact: `complete` certifies the mathematics, `reason` the operations.
  stats.reason = !result.worker_errors.empty() ? StopReason::WorkerFailure
                                               : budget->finish(stats.complete);

  if (common.certify) {
    const auto winner =
        std::find_if(result.workers.begin(), result.workers.end(),
                     [](const WorkerReport& w) { return w.proved_complete; });
    if (!result.worker_errors.empty()) {
      result.base.certificate_error =
          "worker " + std::to_string(result.worker_errors.front().worker) +
          " failed (" + result.worker_errors.front().message +
          "); a degraded run is never certified";
    } else if (resumed) {
      result.base.certificate_error =
          "resumed runs are not certifiable (seeded points lack in-stream "
          "derivations)";
    } else if (!stats.complete || winner == result.workers.end()) {
      // Emit the sequential anchor's stream, honestly truncation-marked, so
      // interrupted certified runs still hand over a checkable prefix.
      result.base.proof = logs[0]->text() + "X 0\n";
      result.base.certificate_error =
          "no worker closed the global Unsat proof; nothing to certify";
    } else if (options.shard.active) {
      // Shard-banded run: the winning stream concludes Unsat under the
      // shard's box activations, not globally — hand it up unjudged; the
      // coordinator certifies the merged front with cert::certify_merged.
      result.base.proof = logs[winner->worker]->text();
    } else {
      result.base.proof = logs[winner->worker]->text();
      std::vector<std::pair<pareto::Vec, synth::Implementation>> pairs(
          shared.witnesses.begin(), shared.witnesses.end());
      const cert::CertifyResult cr = cert::certify_front(
          spec, pairs, result.base.front, result.base.proof);
      result.base.certified = cr.certified;
      if (!cr.certified) result.base.certificate_error = cr.error;
    }
  }

  if (ckpt_writer != nullptr) {
    const Checkpoint c = shared.snapshot();
    const std::string err = ckpt_writer->write(c);
    if (orec != nullptr) {
      orec->record(obs::EventKind::CheckpointWrite,
                   static_cast<std::int64_t>(c.points.size()),
                   err.empty() ? 1 : 0);
    }
    if (!err.empty()) result.base.errors.push_back(err);
  }

  if (orec != nullptr) {
    orec->record(obs::EventKind::RunEnd,
                 static_cast<std::int64_t>(result.base.front.size()),
                 static_cast<std::int64_t>(stats.models),
                 stats.complete ? 1 : 0);
  }
  if (collector != nullptr) collector->stop();

  if (common.metrics != nullptr) {
    export_metrics(*common.metrics, result.base);
    // Per-worker breakdown: conflict totals plus each worker's share of the
    // portfolio's conflicts — the load-balance view of the run.
    for (const WorkerReport& w : result.workers) {
      const std::string prefix = "worker." + std::to_string(w.worker);
      common.metrics->counter(prefix + ".conflicts").set(w.conflicts);
      common.metrics->counter(prefix + ".models").set(w.models);
      common.metrics->counter(prefix + ".shared_inserts").set(w.shared_inserts);
      common.metrics->gauge(prefix + ".conflict_share")
          .set(stats.conflicts == 0
                   ? 0.0
                   : static_cast<double>(w.conflicts) /
                         static_cast<double>(stats.conflicts));
    }
  }
  return result;
}

}  // namespace aspmt::dse
