#include "dse/optimizer.hpp"

#include "dse/context.hpp"

namespace aspmt::dse {

MinimizeResult minimize_objective(SynthContext& ctx, std::size_t objective,
                                  std::vector<asp::Lit>& assumptions,
                                  const util::Deadline* deadline,
                                  std::int64_t upper_bound) {
  MinimizeResult result;
  const std::size_t base = assumptions.size();
  if (upper_bound != kNoUpperBound) {
    // Heuristic warm start: descend from the caller's attained value
    // instead of from the first model the solver happens to find.
    const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
    ctx.objectives.add_bound(objective, upper_bound, act);
    assumptions.push_back(act);
  }
  for (;;) {
    const asp::Solver::Result r = ctx.solver.solve(assumptions, deadline);
    if (r == asp::Solver::Result::Sat) {
      result.feasible = true;
      result.best = ctx.capture().vector()[objective];
      // Tighten: require a strictly better value next round.  The previous
      // tightening assumption (if any) is implied by the new one, so it is
      // dropped to keep the assumption list short.
      assumptions.resize(base);
      const asp::Lit act = asp::Lit::make(ctx.solver.new_var(), true);
      ctx.objectives.add_bound(objective, result.best - 1, act);
      assumptions.push_back(act);
      continue;
    }
    if (r == asp::Solver::Result::Unsat) {
      result.proven = true;  // optimality — or infeasibility — is definitive
      break;
    }
    break;  // deadline expired
  }
  // Replace the tightening assumption by a pin at the best value so that
  // later lexicographic stages keep this objective fixed.
  assumptions.resize(base);
  if (result.feasible) {
    const asp::Lit pin = asp::Lit::make(ctx.solver.new_var(), true);
    ctx.objectives.add_bound(objective, result.best, pin);
    assumptions.push_back(pin);
  }
  return result;
}

}  // namespace aspmt::dse
