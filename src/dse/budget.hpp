// Resource governance and cooperative cancellation for exploration runs.
//
// A Budget bundles every resource ceiling of a run — wall-clock deadline,
// total conflict budget, peak-RSS ceiling — behind one lock-free stop token
// plus a structured StopReason.  Explorers hand the token to their solvers
// (SolverOptions::stop) and poll the ceilings off the hot path through the
// solver's SearchMonitor hook; signal handlers and peer threads trip the
// same token asynchronously.  The first recorded reason wins, so a run that
// hits its deadline while a SIGINT is in flight reports exactly one honest
// cause of death.
//
// All mutating entry points are async-signal-safe (atomics only, no locks,
// no allocation): interrupt() may be called directly from a SIGINT/SIGTERM
// handler.
#pragma once

#include <atomic>
#include <cstdint>

#include "asp/solver.hpp"
#include "dse/fault.hpp"
#include "obs/recorder.hpp"
#include "util/timer.hpp"

namespace aspmt::dse {

/// Why an exploration run stopped.  `Completed` means the front was proven
/// exact; everything else labels a partial (but still valid) front.
enum class StopReason : std::uint8_t {
  Completed = 0,   ///< search space exhausted, front proven exact
  Deadline,        ///< wall-clock budget spent
  Conflicts,       ///< total conflict budget spent
  Memory,          ///< peak RSS crossed the configured ceiling
  Interrupted,     ///< external cancellation (SIGINT/SIGTERM or API)
  WorkerFailure,   ///< a worker died; surviving workers finished the run
};

[[nodiscard]] const char* to_string(StopReason reason) noexcept;

struct BudgetLimits {
  double wall_seconds = 0.0;     ///< <= 0 = unlimited
  std::uint64_t conflicts = 0;   ///< 0 = unlimited, total across all workers
  std::size_t memory_mb = 0;     ///< 0 = unlimited; ceiling on peak RSS
};

/// Current peak RSS of this process in MiB, or -1 when unavailable.
[[nodiscard]] long peak_rss_mb() noexcept;

/// Shared cancellation token + resource governor for one exploration run.
/// Thread-safe; one instance is shared by every worker of a portfolio.
class Budget {
 public:
  Budget() = default;
  explicit Budget(const BudgetLimits& limits)
      : limits_(limits), deadline_(limits.wall_seconds) {}

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Trip the token, recording `reason` unless another reason won the race.
  /// Async-signal-safe.
  void trip(StopReason reason) noexcept {
    std::uint8_t expected = kUntripped;
    reason_.compare_exchange_strong(expected,
                                    static_cast<std::uint8_t>(reason),
                                    std::memory_order_acq_rel);
    stop_.store(true, std::memory_order_release);
  }

  /// External cancellation (the signal-handler entry point).
  void interrupt() noexcept { trip(StopReason::Interrupted); }

  /// Stop every worker without recording a failure — used when a worker
  /// completes the search and peers merely need to wind down.
  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }

  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool tripped() const noexcept {
    return reason_.load(std::memory_order_acquire) != kUntripped;
  }
  /// The recorded trip cause; only meaningful once tripped() is true
  /// (returns Interrupted before any trip).
  [[nodiscard]] StopReason trip_reason() const noexcept {
    const std::uint8_t r = reason_.load(std::memory_order_acquire);
    return r == kUntripped ? StopReason::Interrupted
                           : static_cast<StopReason>(r);
  }

  /// Account `delta` further solver conflicts toward the shared budget.
  void add_conflicts(std::uint64_t delta) noexcept {
    if (delta != 0) conflicts_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t conflicts() const noexcept {
    return conflicts_.load(std::memory_order_relaxed);
  }

  /// Re-check every ceiling and trip the token on the first violation.
  /// Called off the hot path (solver restarts / every ~1k conflicts).
  void poll() noexcept;

  /// The deadline solvers poll each search step (tighter latency than the
  /// monitor cadence).  Unlimited when wall_seconds <= 0.
  [[nodiscard]] const util::Deadline* deadline() const noexcept {
    return &deadline_;
  }
  /// The token for SolverOptions::stop.
  [[nodiscard]] const std::atomic<bool>* token() const noexcept {
    return &stop_;
  }
  [[nodiscard]] const BudgetLimits& limits() const noexcept { return limits_; }

  /// Classify the run after the fact.  `completed` (front proven exact)
  /// wins over any trip; an un-tripped stop falls back to the deadline
  /// check, then to Interrupted (externally stopped without a reason).
  [[nodiscard]] StopReason finish(bool completed) const noexcept {
    if (completed) return StopReason::Completed;
    const std::uint8_t r = reason_.load(std::memory_order_acquire);
    if (r != kUntripped) return static_cast<StopReason>(r);
    if (deadline_.expired()) return StopReason::Deadline;
    return StopReason::Interrupted;
  }

 private:
  static constexpr std::uint8_t kUntripped = 0xFF;

  BudgetLimits limits_;
  util::Deadline deadline_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint8_t> reason_{kUntripped};
  std::atomic<std::uint64_t> conflicts_{0};
};

/// Per-solver adapter between the solver's SearchMonitor hook and a shared
/// Budget: forwards conflict deltas, runs the ceiling poll, and hosts the
/// injected-deadline fault point.  One instance per worker (not shared).
class BudgetMonitor final : public asp::SearchMonitor {
 public:
  explicit BudgetMonitor(Budget* budget, const FaultPlan* fault = nullptr,
                         FaultState* state = nullptr,
                         obs::Recorder* recorder = nullptr)
      : budget_(budget), fault_(fault), state_(state), recorder_(recorder) {}

  void poll(const asp::SolverStats& stats) override {
    budget_->add_conflicts(stats.conflicts - last_conflicts_);
    last_conflicts_ = stats.conflicts;
    if (fault_ != nullptr && state_ != nullptr &&
        fault_->deadline_after_polls != 0 &&
        state_->polls.fetch_add(1, std::memory_order_relaxed) + 1 >=
            fault_->deadline_after_polls) {
      budget_->trip(StopReason::Deadline);  // deadline expiry mid-propagation
    }
    budget_->poll();
    if (recorder_ != nullptr && recorder_->enabled()) {
      // The monitor cadence doubles as the observability sampling cadence:
      // rates in exporters are derived between these samples, and the trip
      // is reported per worker here because Budget::trip() may run in a
      // signal handler or a peer thread (the rings are SPSC).
      recorder_->record(obs::EventKind::StatsSample,
                        static_cast<std::int64_t>(stats.conflicts),
                        static_cast<std::int64_t>(stats.propagations),
                        static_cast<std::int64_t>(stats.decisions));
      if (!trip_reported_ && budget_->tripped()) {
        trip_reported_ = true;
        recorder_->record(
            obs::EventKind::BudgetTrip,
            static_cast<std::int64_t>(budget_->trip_reason()));
      }
    }
  }

 private:
  Budget* budget_;
  const FaultPlan* fault_;
  FaultState* state_;
  obs::Recorder* recorder_;
  std::uint64_t last_conflicts_ = 0;
  bool trip_reported_ = false;
};

}  // namespace aspmt::dse
