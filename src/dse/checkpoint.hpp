// Archive checkpointing for long exploration runs.
//
// A checkpoint is a versioned, checksummed text snapshot of the best-known
// front: the non-dominated points, one witness implementation per point
// (when collected), the spec fingerprint that produced them, the base seed
// and the elapsed wall time.  Snapshots are written atomically (tmp file +
// rename) so a crash mid-write never leaves a torn file, and the loader
// verifies the FNV-1a checksum plus the structural invariants (sorted,
// mutually non-dominated, witness objectives matching their points) before
// accepting anything — a corrupted checkpoint degrades to a cold start, it
// never poisons a resumed run.
//
// Resuming seeds the explorer's archive with the checkpointed points before
// search begins, so every region they weakly dominate is pruned from the
// first propagation on.  Seeded points are ordinary feasible points to the
// exactness argument: the final unconstrained Unsat still proves the
// archive is the exact front.  Resumed runs are not certifiable (seeded
// points carry no in-stream derivation) and say so.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dse/respec.hpp"
#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"
#include "util/timer.hpp"

#include <mutex>

namespace aspmt::dse {

struct Checkpoint {
  std::uint64_t spec_fingerprint = 0;
  std::uint64_t seed = 0;
  std::uint64_t elapsed_ms = 0;  ///< cumulative across resumed segments
  /// Format v2: true when heuristic warm-start seeds were injected at any
  /// point in the (possibly multi-segment) run's history.  Resume semantics
  /// are unchanged either way — resumed runs stay non-certifiable — but the
  /// flag keeps provenance honest across resume chains.  v1 files load with
  /// false.
  bool warm_started = false;
  /// Format v3: per-section spec digests (dse/respec.hpp) enabling
  /// incremental re-exploration to classify spec deltas; false on v1/v2
  /// files, where only the combined fingerprint is available.
  bool has_sections = false;
  SectionDigests sections;
  /// Format v3: reusable learnt-clause dump for assumption-guarded replay.
  /// Literals are signed 1-based (DIMACS convention), all within
  /// [1, clause_base_vars].  Empty when no dump was taken.
  std::uint32_t clause_base_vars = 0;
  std::vector<std::vector<std::int32_t>> clauses;
  /// Format v4: the slice scheduler's objective-0 ceilings at snapshot time
  /// (id order).  `--reexplore-from` reseeds the scheduler from these exact
  /// bounds instead of re-deriving a partition from the reused front, so a
  /// resumed session works the identical regions.  Empty when the scheduler
  /// was never seeded (single-threaded or degenerate range); v1–v3 files
  /// load with it empty.
  std::vector<std::int64_t> slice_bounds;
  /// Mutually non-dominated, sorted lexicographically.
  std::vector<pareto::Vec> points;
  /// Parallel to `points`; an implementation with empty option_of_task
  /// marks a missing witness.  May be empty when none were collected.
  std::vector<synth::Implementation> witnesses;
};

/// FNV-1a fingerprint of the specification's canonical text form — resuming
/// against a different spec is refused.
[[nodiscard]] std::uint64_t spec_fingerprint(const synth::Specification& spec);

/// True iff the checkpoint was written for `spec`: the combined fingerprint
/// matches AND (for v3 checkpoints) every per-section digest matches.  The
/// section comparison closes a latent hole — a combined-hash collision
/// between different specs would otherwise admit a foreign checkpoint.
[[nodiscard]] bool checkpoint_matches(const Checkpoint& ckpt,
                                      const synth::Specification& spec);

/// Serialize to the `aspmt-ckpt 5` text format (checksum trailer included).
/// The loader accepts v5 plus legacy v4/v3/v2/v1 files.
[[nodiscard]] std::string to_text(const Checkpoint& ckpt);

/// Serialize one witness implementation as the payload of a checkpoint `w`
/// line (no leading "w ", no trailing newline); "-" marks a missing
/// witness.  Shared by the checkpoint format and the distributed shard
/// RESULT payload, so both sides round-trip identically.
[[nodiscard]] std::string witness_to_text(const synth::Implementation& w);

/// Parse witness_to_text output.  Returns "" on success, a diagnostic
/// otherwise; a "-" payload leaves `w` empty (missing witness).
[[nodiscard]] std::string witness_from_text(std::string_view text,
                                            synth::Implementation& w);

/// Parse and validate; returns "" on success, a diagnostic otherwise.
[[nodiscard]] std::string parse_checkpoint(std::string_view text,
                                           Checkpoint& out);

/// Durable atomic write: tmp file, fsync, rename, fsync of the parent
/// directory.  A failed fsync (or the `sync_fail` fault hook) still
/// publishes the complete file but returns a "durability degraded"
/// diagnostic for the caller to surface as a non-fatal warning; any other
/// non-empty return is a hard failure and nothing was published.
[[nodiscard]] std::string atomic_write_file(const std::string& path,
                                            std::string_view text,
                                            bool sync_fail = false);

/// Atomic write-rename.  Returns "" on success, a diagnostic otherwise.
/// `inject_corruption` is the fault hook: the payload is damaged after the
/// checksum was computed, so the loader must reject the file.  `sync_fail`
/// simulates fsync failure (see atomic_write_file).
[[nodiscard]] std::string save_checkpoint(const Checkpoint& ckpt,
                                          const std::string& path,
                                          bool inject_corruption = false,
                                          bool sync_fail = false);

/// Load + parse_checkpoint.  Returns "" on success, a diagnostic otherwise.
[[nodiscard]] std::string load_checkpoint(const std::string& path,
                                          Checkpoint& out);

/// Periodic snapshot governor shared by all workers of a run: write()
/// serializes writers and enforces the interval, so publishing workers can
/// call it opportunistically after every insert.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string path, double interval_seconds,
                   bool inject_corruption = false, bool sync_fail = false)
      : path_(std::move(path)),
        interval_(interval_seconds),
        corrupt_(inject_corruption),
        sync_fail_(sync_fail) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Cheap pre-check: the interval elapsed since the last write.
  [[nodiscard]] bool due() const noexcept {
    return timer_.elapsed_seconds() >= interval_;
  }

  /// Write a periodic snapshot if due (re-checked under the writer lock).
  /// Returns "" on success or when skipped, a diagnostic otherwise.
  [[nodiscard]] std::string write_if_due(const Checkpoint& ckpt);

  /// Unconditional final snapshot (end of run).
  [[nodiscard]] std::string write(const Checkpoint& ckpt);

 private:
  std::string path_;
  double interval_;
  bool corrupt_;
  bool sync_fail_ = false;
  std::mutex mutex_;
  util::Timer timer_;
};

}  // namespace aspmt::dse
