#include "dse/combinator_bounds.hpp"

#include <algorithm>

#include "asp/proof.hpp"
#include "asp/solver.hpp"
#include "dse/objective_manager.hpp"

namespace aspmt::dse {

void CombinatorBoundPropagator::add_bound(std::size_t axis, std::int64_t bound,
                                          asp::Lit activation) {
  if (proof_ != nullptr) proof_->def_objective_bound(axis, bound, activation);
  bounds_.push_back(Bound{axis, bound, activation});
}

bool CombinatorBoundPropagator::enforce(asp::Solver& solver) {
  for (const Bound& b : bounds_) {
    if (b.activation != asp::kLitUndef &&
        solver.value(b.activation) != asp::Lbool::True) {
      continue;
    }
    const std::int64_t lb = objectives_.lower_bound(b.axis);
    if (lb <= b.bound) continue;
    std::vector<asp::Lit> clause;
    objectives_.explain(b.axis, b.bound + 1, clause);
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    for (asp::Lit& l : clause) l = ~l;
    if (b.activation != asp::kLitUndef) clause.push_back(~b.activation);
    const asp::TheoryJustification just{
        asp::TheoryTag::CombinatorBound,
        {static_cast<std::int64_t>(b.axis), b.bound,
         b.activation == asp::kLitUndef ? 0 : asp::proof_int(b.activation)}};
    return solver.add_theory_clause(clause, &just);
  }
  return true;
}

}  // namespace aspmt::dse
