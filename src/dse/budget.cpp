#include "dse/budget.hpp"

#include <sys/resource.h>

namespace aspmt::dse {

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::Completed: return "completed";
    case StopReason::Deadline: return "deadline";
    case StopReason::Conflicts: return "conflicts";
    case StopReason::Memory: return "memory";
    case StopReason::Interrupted: return "interrupted";
    case StopReason::WorkerFailure: return "worker-failure";
  }
  return "unknown";
}

long peak_rss_mb() noexcept {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
#ifdef __APPLE__
  return usage.ru_maxrss / (1024 * 1024);  // bytes on macOS
#else
  return usage.ru_maxrss / 1024;  // KiB on Linux
#endif
}

void Budget::poll() noexcept {
  if (stop_.load(std::memory_order_relaxed)) return;  // already stopping
  if (deadline_.expired()) {
    trip(StopReason::Deadline);
    return;
  }
  if (limits_.conflicts != 0 &&
      conflicts_.load(std::memory_order_relaxed) >= limits_.conflicts) {
    trip(StopReason::Conflicts);
    return;
  }
  if (limits_.memory_mb != 0) {
    const long rss = peak_rss_mb();
    if (rss >= 0 && static_cast<std::size_t>(rss) >= limits_.memory_mb) {
      trip(StopReason::Memory);
    }
  }
}

}  // namespace aspmt::dse
