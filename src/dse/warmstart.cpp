#include "dse/warmstart.hpp"

#include <algorithm>
#include <map>

#include "dse/objective_manager.hpp"
#include "ea/nsga2.hpp"
#include "pareto/archive.hpp"
#include "pareto/indicators.hpp"
#include "synth/validator.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace aspmt::dse {

std::optional<WarmStartMethod> parse_warm_start_method(const std::string& name) {
  if (name == "off") return WarmStartMethod::Off;
  if (name == "nsga2") return WarmStartMethod::Nsga2;
  if (name == "sampler") return WarmStartMethod::Sampler;
  return std::nullopt;
}

const char* warm_start_method_name(WarmStartMethod m) {
  switch (m) {
    case WarmStartMethod::Off: return "off";
    case WarmStartMethod::Nsga2: return "nsga2";
    case WarmStartMethod::Sampler: return "sampler";
  }
  return "off";
}

namespace {

/// Budgeted NSGA-II pass: split the evaluation budget into a population and
/// generation count (evaluations = pop * (gens + 1)).
void nsga2_candidates(const synth::Specification& spec,
                      const WarmStartOptions& options,
                      std::vector<WarmSeedCandidate>& out,
                      std::uint64_t& evaluations) {
  ea::Nsga2Options ea_opts;
  ea_opts.seed = options.seed;
  ea_opts.collect_witnesses = true;
  const std::uint64_t budget = std::max<std::uint64_t>(options.budget, 16);
  ea_opts.population =
      static_cast<std::size_t>(std::clamp<std::uint64_t>(budget / 10, 8, 40));
  ea_opts.generations =
      static_cast<std::size_t>(budget / ea_opts.population) - 1;
  const ea::Nsga2Result r = ea::nsga2(spec, ea_opts);
  evaluations += r.evaluations;
  for (std::size_t i = 0; i < r.front.size(); ++i) {
    out.push_back({r.front[i], r.witnesses[i]});
  }
}

/// Uniform random genotypes through the EA decoder — cheaper than NSGA-II
/// and with no selection pressure; useful as a baseline and on specs where
/// the EA's shortest-path routing restriction bites.
void sampler_candidates(const synth::Specification& spec,
                        const WarmStartOptions& options,
                        std::vector<WarmSeedCandidate>& out,
                        std::uint64_t& evaluations) {
  util::Rng rng(options.seed);
  const std::size_t T = spec.tasks().size();
  ea::Genotype g;
  g.option.resize(T);
  g.priority.resize(T);
  for (std::uint64_t i = 0; i < options.budget; ++i) {
    for (std::size_t t = 0; t < T; ++t) {
      g.option[t] = rng.below(spec.mappings_of(t).size());
      g.priority[t] = rng.uniform();
    }
    ++evaluations;
    synth::Implementation impl;
    if (ea::decode_genotype(spec, g, impl)) {
      pareto::Vec point = synth::recompute_objectives(spec, impl);
      out.push_back({std::move(point), std::move(impl)});
    }
  }
}

}  // namespace

WarmStartResult generate_warm_seeds(const synth::Specification& spec,
                                    const WarmStartOptions& options) {
  util::Timer timer;
  WarmStartResult result;
  std::vector<WarmSeedCandidate> candidates;
  switch (options.method) {
    case WarmStartMethod::Off:
      break;
    case WarmStartMethod::Nsga2:
      nsga2_candidates(spec, options, candidates, result.heuristic_evaluations);
      break;
    case WarmStartMethod::Sampler:
      sampler_candidates(spec, options, candidates, result.heuristic_evaluations);
      break;
  }
  candidates.insert(candidates.end(), options.external.begin(),
                    options.external.end());
  result.candidates = candidates.size();

  // The exactness gate: nothing enters the archive on the heuristic's word
  // alone.  The witness must independently re-validate and its recomputed
  // objectives must equal the claimed point.
  std::vector<WarmSeedCandidate> validated;
  for (WarmSeedCandidate& c : candidates) {
    // Structural validation first: recompute_objectives walks bindings and
    // routes, so it must never see an unvalidated (possibly adversarial)
    // candidate.
    if (!synth::validate_implementation(spec, c.impl).empty() ||
        c.point != synth::recompute_objectives(spec, c.impl)) {
      ++result.rejected_invalid;
      continue;
    }
    validated.push_back(std::move(c));
  }

  // Reduce to an antichain: duplicates and dominated seeds would only waste
  // archive inserts downstream.
  pareto::LinearArchive antichain;
  std::map<pareto::Vec, WarmSeedCandidate> by_point;
  for (WarmSeedCandidate& c : validated) {
    if (antichain.insert(c.point)) {
      by_point[c.point] = std::move(c);
    }
  }
  for (const pareto::Vec& p : antichain.points()) {
    result.seeds.push_back(std::move(by_point.at(p)));
  }
  result.rejected_dominated = validated.size() - result.seeds.size();
  result.seconds = timer.elapsed_seconds();
  return result;
}

bool SliceScheduler::seed(const std::vector<pareto::Vec>& front,
                          std::size_t parts) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (seeded_) return true;
  if (front.size() < 2 || parts < 2) return false;
  std::int64_t lo = front.front()[0];
  std::int64_t hi = front.front()[0];
  for (const pareto::Vec& p : front) {
    lo = std::min(lo, p[0]);
    hi = std::max(hi, p[0]);
  }
  const std::vector<std::int64_t> splits =
      ObjectiveManager::epsilon_splits(lo, hi, parts);
  if (splits.empty()) return false;
  const std::vector<double> gaps = pareto::slice_hypervolume_gaps(front, splits);
  install(splits, gaps);
  return true;
}

bool SliceScheduler::seed_bounds(const std::vector<std::int64_t>& bounds,
                                 const std::vector<pareto::Vec>& front) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (seeded_) return true;
  if (bounds.empty()) return false;
  std::vector<std::int64_t> splits = bounds;
  std::sort(splits.begin(), splits.end());
  splits.erase(std::unique(splits.begin(), splits.end()), splits.end());
  const std::vector<double> gaps =
      front.size() >= 2 ? pareto::slice_hypervolume_gaps(front, splits)
                        : std::vector<double>();
  install(splits, gaps);
  return true;
}

std::vector<std::int64_t> SliceScheduler::bounds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::int64_t> out;
  out.reserve(slices_.size());
  for (const Slice& s : slices_) out.push_back(s.bound);
  return out;
}

void SliceScheduler::install(const std::vector<std::int64_t>& splits,
                             const std::vector<double>& gaps) {
  slices_.resize(splits.size());
  requeued_.assign(splits.size(), 0);
  for (std::size_t i = 0; i < splits.size(); ++i) {
    slices_[i] = Slice{i, splits[i], i < gaps.size() ? gaps[i] : 0.0};
  }
  // Pending queue ordered so the *back* is the next claim: ascending gap,
  // ties broken towards lower slice id (tighter objective-0 bound) first.
  queue_.resize(slices_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) queue_[i] = i;
  std::stable_sort(queue_.begin(), queue_.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (slices_[a].gap != slices_[b].gap) {
                       return slices_[a].gap < slices_[b].gap;
                     }
                     return slices_[a].id > slices_[b].id;
                   });
  seeded_ = true;
}

std::optional<SliceScheduler::Slice> SliceScheduler::claim() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!seeded_ || queue_.empty()) return std::nullopt;
  const std::size_t id = queue_.back();
  queue_.pop_back();
  return slices_[id];
}

void SliceScheduler::abandon(std::size_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!seeded_ || id >= slices_.size() || requeued_[id] != 0) return;
  requeued_[id] = 1;
  // Reinsert in gap order so the orphan competes on its score, not on
  // recency.
  const auto pos = std::lower_bound(
      queue_.begin(), queue_.end(), id, [this](std::size_t q, std::size_t v) {
        return slices_[q].gap < slices_[v].gap;
      });
  queue_.insert(pos, id);
}

bool SliceScheduler::seeded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seeded_;
}

std::size_t SliceScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace aspmt::dse
