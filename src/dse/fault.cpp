#include "dse/fault.hpp"

#include <charconv>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>

namespace aspmt::dse {
namespace {

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  const auto res =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size()) {
    throw std::invalid_argument("fault plan: malformed number for '" +
                                std::string(what) + "'");
  }
  return value;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    std::string_view item = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    const std::string_view key = item.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : item.substr(eq + 1);
    if (key == "worker-throw") {
      const std::size_t colon = value.find(':');
      plan.throw_worker =
          static_cast<int>(parse_u64(value.substr(0, colon), key));
      plan.throw_after_models =
          colon == std::string_view::npos
              ? 1
              : parse_u64(value.substr(colon + 1), "worker-throw models");
    } else if (key == "alloc-fail") {
      plan.alloc_fail_after = value.empty() ? 1 : parse_u64(value, key);
    } else if (key == "deadline-polls") {
      plan.deadline_after_polls = parse_u64(value, key);
    } else if (key == "corrupt-checkpoint") {
      plan.corrupt_checkpoint = true;
    } else if (key == "sync-fail") {
      plan.sync_fail = true;
    } else {
      throw std::invalid_argument("fault plan: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("ASPMT_FAULT_INJECT");
  return env == nullptr ? FaultPlan{} : parse(env);
}

void fault_worker_throw(const FaultPlan* plan, std::size_t worker,
                        std::uint64_t models) {
  if (plan == nullptr || plan->throw_worker < 0) return;
  if (static_cast<std::size_t>(plan->throw_worker) == worker &&
      models >= plan->throw_after_models) {
    throw std::runtime_error("injected fault: worker " +
                             std::to_string(worker) + " crashed after " +
                             std::to_string(models) + " model(s)");
  }
}

void fault_alloc(const FaultPlan* plan, FaultState* state) {
  if (plan == nullptr || state == nullptr || plan->alloc_fail_after == 0) {
    return;
  }
  if (state->captures.fetch_add(1, std::memory_order_relaxed) + 1 >=
      plan->alloc_fail_after) {
    throw std::bad_alloc();
  }
}

}  // namespace aspmt::dse
