// Fault-injection harness for the exploration runtime.
//
// The hook points are compiled in unconditionally (each is a null-pointer
// check when no plan is armed) so the *production* code paths — worker
// containment, budget trips, checkpoint corruption detection — are the ones
// under test, not a test-only build flavor.  A plan is armed either
// programmatically (ExploreOptions::fault) or through the environment:
//
//   ASPMT_FAULT_INJECT="worker-throw=1:2,alloc-fail=3,deadline-polls=5,corrupt-checkpoint"
//
//   worker-throw=W[:M]   worker W throws std::runtime_error after its M-th
//                        accepted model (default M = 1)
//   alloc-fail[=N]       the N-th witness capture across the run throws
//                        std::bad_alloc (default N = 1)
//   deadline-polls=N     the budget deadline trips on the N-th monitor poll
//                        (deadline expiry mid-propagation)
//   corrupt-checkpoint   every checkpoint write flips one payload byte
//                        after the checksum was computed
//   sync-fail            every durable (tmp+rename) write reports fsync
//                        failure; the write proceeds but callers must
//                        surface the degraded-durability diagnostic
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace aspmt::dse {

struct FaultPlan {
  int throw_worker = -1;                   ///< worker index to crash; -1 = off
  std::uint64_t throw_after_models = 1;    ///< crash on the N-th accepted model
  std::uint64_t alloc_fail_after = 0;      ///< 0 = off; N-th capture throws
  std::uint64_t deadline_after_polls = 0;  ///< 0 = off; N-th poll trips deadline
  bool corrupt_checkpoint = false;         ///< writer flips a payload byte
  bool sync_fail = false;                  ///< durable writes report fsync loss

  [[nodiscard]] bool any() const noexcept {
    return throw_worker >= 0 || alloc_fail_after != 0 ||
           deadline_after_polls != 0 || corrupt_checkpoint || sync_fail;
  }

  /// Parse the ASPMT_FAULT_INJECT syntax; throws std::invalid_argument on
  /// unknown keys or malformed numbers.
  [[nodiscard]] static FaultPlan parse(std::string_view text);

  /// The plan armed via the environment; all-off when the variable is unset.
  [[nodiscard]] static FaultPlan from_env();
};

/// Mutable per-run counters behind the hook points (the plan itself stays
/// const and shareable).
struct FaultState {
  std::atomic<std::uint64_t> captures{0};
  std::atomic<std::uint64_t> polls{0};
};

/// Hook: worker `worker` has `models` accepted models; throws when armed.
void fault_worker_throw(const FaultPlan* plan, std::size_t worker,
                        std::uint64_t models);

/// Hook: one witness capture is about to run; throws std::bad_alloc when
/// the armed capture count is reached.
void fault_alloc(const FaultPlan* plan, FaultState* state);

}  // namespace aspmt::dse
