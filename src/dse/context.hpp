// SynthContext bundles one fully wired ASPmT instance: solver, theory
// propagators, encoding, objectives, archive and model capture.  Explorer,
// optimiser and the baselines all operate on this bundle.
#pragma once

#include <memory>
#include <string>

#include "asp/solver.hpp"
#include "asp/unfounded.hpp"
#include "dse/combinator_bounds.hpp"
#include "dse/dominance.hpp"
#include "dse/objective_manager.hpp"
#include "pareto/archive.hpp"
#include "synth/encoder.hpp"
#include "synth/spec.hpp"
#include "theory/difference.hpp"
#include "theory/linear_sum.hpp"

namespace aspmt::dse {

struct ContextOptions {
  std::string archive_kind = "quadtree";
  bool partial_evaluation = true;
  /// Domain heuristic of the paper series (LPNMR'15): decide binding atoms
  /// before routing/serialization atoms so theory evaluation bites early.
  bool binding_first_heuristic = true;
  /// Binding-pair floor bounds in the encoding (ablation switch).
  bool objective_floors = true;
  /// When set, the whole session is proof-logged: the solver emits its
  /// inference trace and every theory propagator mirrors its declarations
  /// and lemma justifications.  The pointee must outlive the context.
  /// Certified exploration requires objective_floors = false (floor-based
  /// bound explanations are not independently re-derivable).
  asp::ProofLog* proof = nullptr;
  asp::SolverOptions solver_options{};
};

class SynthContext;

/// Runs as the last theory check on every accepted total assignment and
/// snapshots the exact objective vector plus the decoded implementation
/// while the theory propagators are still at the model's fixpoint.
class ModelCapture final : public asp::TheoryPropagator {
 public:
  explicit ModelCapture(SynthContext& ctx) : ctx_(ctx) {}

  bool propagate(asp::Solver&) override { return true; }
  void undo_to(const asp::Solver&, std::size_t) override {}
  bool check(asp::Solver& solver) override;

  [[nodiscard]] const pareto::Vec& vector() const noexcept { return vector_; }
  [[nodiscard]] const synth::Implementation& implementation() const noexcept {
    return impl_;
  }

 private:
  SynthContext& ctx_;
  pareto::Vec vector_;
  synth::Implementation impl_;
};

class SynthContext {
 public:
  /// `spec` must outlive the context and satisfy spec.validate().empty().
  explicit SynthContext(const synth::Specification& spec, ContextOptions options = {});

  SynthContext(const SynthContext&) = delete;
  SynthContext& operator=(const SynthContext&) = delete;

  [[nodiscard]] const synth::Specification& spec() const noexcept { return *spec_; }

  asp::Solver solver;
  theory::LinearSumPropagator linear;
  theory::DifferencePropagator difference;
  synth::Encoding encoding;
  ObjectiveManager objectives;  ///< one ObjectiveTerm tree per Pareto axis, in
                                ///< spec order (latency, energy, cost default)

  [[nodiscard]] pareto::Archive& archive() noexcept { return *archive_; }
  [[nodiscard]] DominancePropagator& dominance() noexcept { return *dominance_; }
  [[nodiscard]] CombinatorBoundPropagator& combinator_bounds() noexcept {
    return *combinator_bounds_;
  }
  [[nodiscard]] ModelCapture& capture() noexcept { return *capture_; }
  [[nodiscard]] const asp::UnfoundedSetChecker& unfounded() const noexcept {
    return *unfounded_;
  }

 private:
  const synth::Specification* spec_;
  std::unique_ptr<CombinatorBoundPropagator> combinator_bounds_;
  std::unique_ptr<asp::UnfoundedSetChecker> unfounded_;
  std::unique_ptr<pareto::Archive> archive_;
  std::unique_ptr<DominancePropagator> dominance_;
  std::unique_ptr<ModelCapture> capture_;
};

}  // namespace aspmt::dse
