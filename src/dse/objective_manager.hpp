// Uniform view over the objectives of an encoding, regardless of which
// background theory computes them (guarded linear sums for energy/cost,
// difference logic for latency).  The dominance propagator and the
// optimiser only talk to this facade.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asp/literal.hpp"
#include "pareto/point.hpp"
#include "theory/difference.hpp"
#include "theory/linear_sum.hpp"

namespace aspmt::dse {

class ObjectiveManager {
 public:
  /// Register a linear-sum objective (non-owning propagator pointer).
  void add_linear(std::string name, theory::LinearSumPropagator* propagator,
                  theory::LinearSumPropagator::SumId sum);

  /// Attach a *floor* to the most recently added objective: a redundant sum
  /// whose value never exceeds the true objective in any total model but
  /// whose lower bound can be tighter on partial assignments (e.g. minimal
  /// communication energy implied by the bound endpoints before routing is
  /// decided).  lower_bound() takes the maximum over all sources; bounds
  /// added via add_bound() are mirrored onto floors (sound, since
  /// floor <= objective).
  void add_floor(theory::LinearSumPropagator* propagator,
                 theory::LinearSumPropagator::SumId sum);

  /// Register a difference-logic node objective (e.g. the makespan).
  void add_makespan(std::string name, theory::DifferencePropagator* propagator,
                    theory::DifferencePropagator::NodeId node);

  [[nodiscard]] std::size_t count() const noexcept { return objectives_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return objectives_[i].name;
  }

  /// Lower bound of objective `i` under the current partial assignment.
  [[nodiscard]] std::int64_t lower_bound(std::size_t i) const;

  /// All lower bounds as a vector in registration order.
  [[nodiscard]] pareto::Vec lower_bounds() const;

  /// Allocation-free variant for the propagation hot path.
  void lower_bounds_into(pareto::Vec& out) const;

  /// Append literals explaining `lower_bound(i) >= threshold` (all true).
  void explain(std::size_t i, std::int64_t threshold,
               std::vector<asp::Lit>& out) const;

  /// Impose `objective_i <= bound` (activation-guarded; see the theory
  /// propagators' add_bound contracts).
  void add_bound(std::size_t i, std::int64_t bound,
                 asp::Lit activation = asp::kLitUndef);

  /// Like add_bound but on the primary source only — the bound is NOT
  /// mirrored onto floors.  Used for the distributed shard-band ceiling: the
  /// merged-front checker only accepts a shard box whose activation bounds
  /// touch exactly one sum (the shard objective's), so the ceiling must not
  /// fan out across floor sums.  Mirroring is purely a propagation
  /// sharpener; skipping it never affects exactness.
  void add_primary_bound(std::size_t i, std::int64_t bound,
                         asp::Lit activation = asp::kLitUndef);

  /// Impose `objective_i >= bound` (distributed shard banding).  Only
  /// supported for linear objectives — returns false for difference-logic
  /// objectives.  NOT mirrored onto floors: floor <= objective, so a floor
  /// may legitimately sit below the banding threshold.
  bool add_lower_bound(std::size_t i, std::int64_t bound,
                       asp::Lit activation = asp::kLitUndef);

  /// Primary theory source of an objective — what a proof log's objective
  /// binding declares and the checker re-evaluates explanations against.
  struct Source {
    bool is_linear = false;
    std::uint32_t id = 0;  ///< sum id (linear) or node id (difference)
  };
  [[nodiscard]] Source source(std::size_t i) const noexcept {
    const Entry& e = objectives_[i];
    return e.linear != nullptr ? Source{true, e.sum} : Source{false, e.node};
  }

  /// Epsilon-constraint work partitioning for the parallel portfolio: split
  /// the observed objective range [lo, hi] into `parts` regions and return
  /// the ascending interior upper bounds (at most parts-1, deduplicated,
  /// strictly inside (lo, hi)).  Worker w then explores under
  /// `objective <= splits[w-1]` before falling back to the full problem, so
  /// the portfolio seeds the archive from `parts` different slices of the
  /// front.  Purely a work-partitioning heuristic — completeness never
  /// depends on it.
  [[nodiscard]] static std::vector<std::int64_t> epsilon_splits(
      std::int64_t lo, std::int64_t hi, std::size_t parts);

 private:
  struct Floor {
    theory::LinearSumPropagator* linear = nullptr;
    theory::LinearSumPropagator::SumId sum = 0;
  };
  struct Entry {
    std::string name;
    theory::LinearSumPropagator* linear = nullptr;
    theory::LinearSumPropagator::SumId sum = 0;
    theory::DifferencePropagator* difference = nullptr;
    theory::DifferencePropagator::NodeId node = 0;
    std::vector<Floor> floors;
  };
  std::vector<Entry> objectives_;
};

}  // namespace aspmt::dse
