// Uniform view over the Pareto axes of an encoding.  Each axis is an
// ObjectiveTerm tree — a theory-backed leaf (guarded linear sum or
// difference-logic node) or a combinator over such leaves — and the
// dominance propagator and the optimiser only talk to this facade.  The
// manager is conceptually the `pareto_of(...)` root of the term tree: its
// registration order defines the axes a pareto::Point carries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asp/literal.hpp"
#include "dse/objective_term.hpp"
#include "pareto/point.hpp"

namespace aspmt::asp {
class ProofLog;
}

namespace aspmt::dse {

class CombinatorBoundPropagator;

class ObjectiveManager {
 public:
  /// Register one Pareto axis.  This is the only registration surface; the
  /// positional add_linear/add_makespan/add_floor calls below are deprecated
  /// shims over it.
  void add(ObjectiveTerm term);

  /// Wire the residual-bound propagator (and, transitively, its proof log)
  /// used for `add_bound` on combinator axes whose pushdown is incomplete.
  /// Without it such bounds throw (exactness would silently be lost).
  void attach_combinator_bounds(CombinatorBoundPropagator* residual) noexcept {
    residual_ = residual;
  }

  // ---- deprecated registration shims (one release; use add()) -------------

  /// \deprecated Use add(ObjectiveTerm::linear(...)).
  void add_linear(std::string name, theory::LinearSumPropagator* propagator,
                  theory::LinearSumPropagator::SumId sum);

  /// \deprecated Use add(ObjectiveTerm::makespan(...)).
  void add_makespan(std::string name, theory::DifferencePropagator* propagator,
                    theory::DifferencePropagator::NodeId node);

  /// \deprecated Use ObjectiveTerm::with_floor before add().  Attaches a
  /// floor to the most recently added axis, which must be a linear leaf.
  void add_floor(theory::LinearSumPropagator* propagator,
                 theory::LinearSumPropagator::SumId sum);

  // ---- axis inspection ----------------------------------------------------

  [[nodiscard]] std::size_t count() const noexcept { return axes_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return axes_[i].name();
  }
  [[nodiscard]] const ObjectiveTerm& term(std::size_t i) const {
    return axes_[i];
  }

  /// Lower bound of axis `i` under the current partial assignment (exact on
  /// total assignments).
  [[nodiscard]] std::int64_t lower_bound(std::size_t i) const {
    return axes_[i].lower_bound();
  }

  /// All lower bounds as a vector in registration order.
  [[nodiscard]] pareto::Vec lower_bounds() const;

  /// Allocation-free variant for the propagation hot path.
  void lower_bounds_into(pareto::Vec& out) const;

  /// Append literals explaining `lower_bound(i) >= threshold` (all true).
  void explain(std::size_t i, std::int64_t threshold,
               std::vector<asp::Lit>& out) const;

  /// Impose `axis_i <= bound` (activation-guarded; see the theory
  /// propagators' add_bound contracts).  Leaf axes decompose fully; on
  /// combinator axes the sound pushdowns are installed and any undischarged
  /// remainder goes to the attached CombinatorBoundPropagator.
  void add_bound(std::size_t i, std::int64_t bound,
                 asp::Lit activation = asp::kLitUndef);

  /// Like add_bound but on the primary source only — leaf bounds are NOT
  /// mirrored onto floors.  Used for the distributed shard-band ceiling: the
  /// merged-front checker only accepts a shard box whose activation bounds
  /// touch exactly one sum (the shard objective's), so the ceiling must not
  /// fan out across floor sums.  Mirroring is purely a propagation
  /// sharpener; skipping it never affects exactness.
  void add_primary_bound(std::size_t i, std::int64_t bound,
                         asp::Lit activation = asp::kLitUndef);

  /// Impose `axis_i >= bound` (distributed shard banding).  Only supported
  /// for linear *leaf* axes — returns false for difference-logic leaves and
  /// for every combinator (the floor of a combinator is not decomposable
  /// into sound child floors, so distributed banding keeps its linear-only
  /// contract instead of silently miscomputing).
  bool add_lower_bound(std::size_t i, std::int64_t bound,
                       asp::Lit activation = asp::kLitUndef);

  /// Primary theory source of an axis — what a proof log's objective binding
  /// declares and the checker re-evaluates explanations against.  Combinator
  /// axes have no single theory id; callers that need one (distributed
  /// shard-objective validation) must check the kind first.
  struct Source {
    enum class Kind : std::uint8_t { Linear, Difference, Combinator };
    Kind kind = Kind::Linear;
    std::uint32_t id = 0;  ///< sum id (linear) or node id (difference); 0 otherwise
  };
  [[nodiscard]] Source source(std::size_t i) const noexcept;

  /// Epsilon-constraint work partitioning for the parallel portfolio: split
  /// the observed objective range [lo, hi] into `parts` regions and return
  /// the ascending interior upper bounds (at most parts-1, deduplicated,
  /// strictly inside (lo, hi)).  Worker w then explores under
  /// `objective <= splits[w-1]` before falling back to the full problem, so
  /// the portfolio seeds the archive from `parts` different slices of the
  /// front.  Purely a work-partitioning heuristic — completeness never
  /// depends on it.
  [[nodiscard]] static std::vector<std::int64_t> epsilon_splits(
      std::int64_t lo, std::int64_t hi, std::size_t parts);

 private:
  std::vector<ObjectiveTerm> axes_;
  CombinatorBoundPropagator* residual_ = nullptr;
};

}  // namespace aspmt::dse
