#include "dse/baselines.hpp"

#include <algorithm>

#include "dse/context.hpp"
#include "dse/optimizer.hpp"
#include "util/timer.hpp"

namespace aspmt::dse {

BaselineResult enumerate_and_filter(const synth::Specification& spec,
                                    double time_limit_seconds) {
  util::Timer timer;
  const util::Deadline deadline(time_limit_seconds);
  ContextOptions copts;
  copts.archive_kind = "linear";  // archive stays empty: no dominance pruning
  SynthContext ctx(spec, copts);

  BaselineResult result;
  std::vector<pareto::Vec> vectors;
  for (;;) {
    const asp::Solver::Result r = ctx.solver.solve({}, &deadline);
    if (r == asp::Solver::Result::Sat) {
      ++result.models;
      vectors.push_back(ctx.capture().vector());
      // Block exactly this implementation (projection onto decision atoms).
      std::vector<asp::Lit> blocking;
      blocking.reserve(ctx.encoding.decision_lits.size());
      for (const asp::Lit d : ctx.encoding.decision_lits) {
        blocking.push_back(ctx.solver.model_value(d.var()) == d.positive() ? ~d : d);
      }
      if (!ctx.solver.add_clause(std::move(blocking))) {
        result.complete = true;
        break;
      }
      continue;
    }
    result.complete = (r == asp::Solver::Result::Unsat);
    break;
  }
  result.front = pareto::non_dominated_filter(std::move(vectors));
  result.conflicts = ctx.solver.stats().conflicts;
  result.seconds = timer.elapsed_seconds();
  return result;
}

BaselineResult lexicographic_epsilon(const synth::Specification& spec,
                                     double time_limit_seconds) {
  util::Timer timer;
  const util::Deadline deadline(time_limit_seconds);
  ContextOptions copts;
  copts.archive_kind = "linear";  // archive unused
  SynthContext ctx(spec, copts);

  BaselineResult result;
  const std::size_t k = ctx.objectives.count();
  for (;;) {
    if (deadline.expired()) break;
    std::vector<asp::Lit> assumptions;
    pareto::Vec point(k, 0);
    bool feasible = true;
    bool proven = true;
    for (std::size_t o = 0; o < k; ++o) {
      const MinimizeResult mr = minimize_objective(ctx, o, assumptions, &deadline);
      if (!mr.feasible) {
        feasible = false;
        proven = mr.proven;  // Unsat proves exhaustion; a timeout does not
        break;
      }
      proven = proven && mr.proven;
      point[o] = mr.best;
    }
    if (!feasible) {
      result.complete = proven;
      break;
    }
    if (!proven) break;  // timed out mid-optimisation: the point is unproven
    result.front.push_back(point);
    // Exclude the weakly dominated region of `point`: some objective must
    // improve strictly.  d_o  ->  objective_o <= point_o - 1.
    std::vector<asp::Lit> some_better;
    for (std::size_t o = 0; o < k; ++o) {
      const asp::Lit d = asp::Lit::make(ctx.solver.new_var(), true);
      ctx.objectives.add_bound(o, point[o] - 1, d);
      some_better.push_back(d);
    }
    if (!ctx.solver.add_clause(std::move(some_better))) {
      result.complete = true;
      break;
    }
  }
  std::sort(result.front.begin(), result.front.end());
  result.models = ctx.solver.stats().models;
  result.conflicts = ctx.solver.stats().conflicts;
  result.seconds = timer.elapsed_seconds();
  return result;
}

BaselineResult lexicographic_epsilon_cold(const synth::Specification& spec,
                                          double time_limit_seconds) {
  util::Timer timer;
  const util::Deadline deadline(time_limit_seconds);
  ContextOptions copts;
  copts.archive_kind = "linear";  // archive unused

  BaselineResult result;
  std::vector<pareto::Vec> excluded;
  for (;;) {
    if (deadline.expired()) break;
    // Single-shot: re-ground and re-solve from scratch for every point.
    SynthContext ctx(spec, copts);
    const std::size_t k = ctx.objectives.count();
    for (const pareto::Vec& p : excluded) {
      std::vector<asp::Lit> some_better;
      for (std::size_t o = 0; o < k; ++o) {
        const asp::Lit d = asp::Lit::make(ctx.solver.new_var(), true);
        ctx.objectives.add_bound(o, p[o] - 1, d);
        some_better.push_back(d);
      }
      if (!ctx.solver.add_clause(std::move(some_better))) {
        result.complete = true;
        break;
      }
    }
    if (result.complete) break;

    std::vector<asp::Lit> assumptions;
    pareto::Vec point(k, 0);
    bool feasible = true;
    bool proven = true;
    for (std::size_t o = 0; o < k; ++o) {
      const MinimizeResult mr = minimize_objective(ctx, o, assumptions, &deadline);
      if (!mr.feasible) {
        feasible = false;
        proven = mr.proven;
        break;
      }
      proven = proven && mr.proven;
      point[o] = mr.best;
    }
    result.models += ctx.solver.stats().models;
    result.conflicts += ctx.solver.stats().conflicts;
    if (!feasible) {
      result.complete = proven;
      break;
    }
    if (!proven) break;
    result.front.push_back(point);
    excluded.push_back(point);
  }
  std::sort(result.front.begin(), result.front.end());
  result.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace aspmt::dse
