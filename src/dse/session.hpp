// dse::Session — one exploration job as a restartable, cancellable unit.
//
// The batch explorers take a fully-wired options struct and run once; a
// long-lived service needs the same run to be (a) cancellable from another
// thread at any point, (b) restartable after a crash or a contained worker
// failure, and (c) re-attemptable without re-parsing or re-validating the
// specification.  Session packages exactly that: it owns the parsed spec,
// derives a fresh per-attempt Budget from fixed BudgetLimits (the numeric
// limits in CommonOptions would be consumed by the first attempt's
// wall-clock otherwise), pins the checkpoint path, and auto-resumes from
// that checkpoint whenever a matching one exists — which covers both the
// retry-after-failure path and the killed-daemon recovery path with the
// same code.
//
// Cancellation is sticky: cancel() trips the current attempt's Budget and
// every future attempt starts pre-tripped, so a supervisor racing a cancel
// against a retry cannot resurrect a job.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "dse/budget.hpp"
#include "dse/parallel_explorer.hpp"
#include "synth/spec.hpp"

namespace aspmt::dse {

struct SessionOptions {
  /// Explorer configuration.  `base.common.budget`, `.checkpoint_path`,
  /// `.checkpoint_interval_seconds` and `.resume` are owned by the session
  /// and overwritten on every attempt; everything else passes through.
  ParallelExploreOptions base;
  /// Per-attempt resource ceilings (each attempt gets the full allowance —
  /// a retried job is not punished for its failed attempts' wall time).
  BudgetLimits limits;
  /// Crash-safety anchor ("" = none): periodic snapshots are written here
  /// and a matching file found at attempt start is resumed from.
  std::string checkpoint_path;
  double checkpoint_interval_seconds = 1.0;
  /// Gate for the auto-resume probe (tests force cold starts with false).
  bool resume_from_checkpoint = true;
};

class Session {
 public:
  Session(synth::Specification spec, SessionOptions options)
      : spec_(std::move(spec)), options_(std::move(options)) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Run one attempt to completion (or budget trip / cancellation).
  /// Serialized: one attempt at a time per session.  May be called again
  /// after a failure or interruption; the new attempt resumes from the
  /// session checkpoint when one matches the spec.
  [[nodiscard]] ParallelExploreResult run();

  /// Trip the in-flight attempt (if any) and poison future ones.
  /// Thread-safe, callable concurrently with run().
  void cancel();

  /// Stop the in-flight attempt without poisoning future ones (graceful
  /// drain: the attempt checkpoints and can be resumed by a later run()).
  void interrupt();

  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// True iff the most recent run() warm-started from the session
  /// checkpoint (such runs are never certifiable).
  [[nodiscard]] bool resumed_last_run() const noexcept {
    return resumed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const synth::Specification& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] const SessionOptions& options() const noexcept {
    return options_;
  }

 private:
  synth::Specification spec_;
  SessionOptions options_;
  std::mutex run_mutex_;  ///< serializes attempts

  /// The in-flight attempt's budget, published for cross-thread cancel.
  std::mutex budget_mutex_;
  std::shared_ptr<Budget> budget_;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> resumed_{false};
};

}  // namespace aspmt::dse
