#include "dse/dominance.hpp"

#include <algorithm>

#include "asp/proof.hpp"
#include "asp/solver.hpp"
#include "obs/recorder.hpp"
#include "pareto/concurrent_archive.hpp"

namespace aspmt::dse {

void DominancePropagator::sync_shared() {
  if (shared_ == nullptr || shared_->generation() == synced_generation_) return;
  sync_buffer_.clear();
  synced_generation_ = shared_->fetch_updates(synced_generation_, sync_buffer_);
  for (const pareto::Vec& p : sync_buffer_) {
    // The F step precedes the local insert, so any DOM lemma citing `p`
    // lands strictly after it in this worker's stream.  A point already in
    // the stream is never re-announced (the update log can only hand us a
    // point once per generation window, but the set makes that a guarantee
    // rather than a property of the archive).
    if (proof_ != nullptr && proof_emitted_.insert(p).second) {
      proof_->feasible_point(p);
    }
    archive_.insert(p);
  }
}

bool DominancePropagator::enforce(asp::Solver& solver) {
  if (shared_ != nullptr) sync_shared();
  if (archive_.size() == 0) return true;
  objectives_.lower_bounds_into(corner_);
  // With ε-dominance an archive point p blocks {f >= p - eps}; querying the
  // archive with the ε-shifted corner finds exactly those p.
  if (!epsilon_.empty()) {
    for (std::size_t i = 0; i < corner_.size(); ++i) corner_[i] += epsilon_[i];
  }
  const pareto::Vec* dominator = archive_.find_weak_dominator(corner_);
  if (dominator == nullptr) return true;

  // Every completion is (ε-)dominated by *dominator: build the nogood from
  // the per-objective explanations of the lower-bound corner.
  std::vector<asp::Lit> clause;
  for (std::size_t i = 0; i < objectives_.count(); ++i) {
    const std::int64_t eps = epsilon_.empty() ? 0 : epsilon_[i];
    objectives_.explain(i, (*dominator)[i] - eps, clause);
  }
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (asp::Lit& l : clause) l = ~l;
  ++prunings_;
  if (recorder_ != nullptr) {
    recorder_->record(obs::EventKind::DominancePrune,
                      static_cast<std::int64_t>(prunings_));
  }
  // Payload: the per-objective thresholds the clause literals justify.  The
  // checker re-derives each threshold through the declared objective binding
  // and demands a certified feasible point at or below all of them (only
  // attainable with ε = 0, which certify mode enforces).
  asp::TheoryJustification just{asp::TheoryTag::Dominance, {}};
  if (solver.proof() != nullptr) {
    just.payload.reserve(objectives_.count() + 1);
    just.payload.push_back(static_cast<std::int64_t>(objectives_.count()));
    for (std::size_t i = 0; i < objectives_.count(); ++i) {
      const std::int64_t eps = epsilon_.empty() ? 0 : epsilon_[i];
      just.payload.push_back((*dominator)[i] - eps);
    }
  }
  return solver.add_theory_clause(clause, &just);
}

}  // namespace aspmt::dse
