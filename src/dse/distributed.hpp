// Distributed objective-space sharding — multi-process cube-and-conquer
// exploration with a certified front merge.
//
// The objective space is split along one linear objective into K contiguous
// bands ("shards"), chosen at the quantiles of a budgeted heuristic sample
// so each band holds a comparable amount of the discovered mass.  Each shard
// is explored by an independent portfolio (dse/parallel_explorer.hpp) under
// permanent activation-guarded band bounds
//   lo <= objective <= hi,
// so a shard's terminating Unsat is concluded under exactly its band
// activations — which the proof checker turns into a verified *shard box*
// (cert::CheckResult::shard_boxes) and cert::certify_merged combines with a
// coverage argument into one machine-checked exactness claim for the merged
// front (the bands tile the whole objective line; see cert/certify.hpp).
//
// Two execution backends share every other layer:
//
//  * process mode (the default): each shard is farmed to a forked worker —
//    `aspmt_dse shard-worker` — over a plain pipe.  The worker streams a
//    line protocol on stdout (handshake, heartbeats, per-point `PT` lines,
//    then one length-prefixed `RESULT` payload) that the coordinator turns
//    into ShardPoint/ShardHeartbeat observability events.  A worker that
//    exits without a result or goes silent past the heartbeat timeout is
//    SIGKILLed and its shard is requeued under the shared supervision
//    policy (dse/supervise.hpp): capped retries with exponential backoff +
//    deterministic jitter, then circuit-breaker quarantine so one poisoned
//    shard cannot churn the pool forever.  Because shard workers checkpoint
//    independently, each retry resumes from the dead worker's last snapshot
//    through the *certifiable* warm-start gate (seeds re-validate and emit
//    F proof steps), so no progress and no certifiability is lost.
//
//  * in-process mode: shards run on coordinator threads calling
//    explore_parallel directly — the deterministic backend the equivalence
//    test matrix ({threads} x {processes}) runs on.
//
// Exactness: band bounds only restrict *where* each portfolio searches;
// the union of bands is the whole objective line, every band's front is
// exact within its band modulo points dominated from other bands, and the
// non-dominated filter of the union equals the single-process front
// point-for-point (enforced by tests/test_distributed.cpp).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cert/certify.hpp"
#include "dse/explorer.hpp"
#include "dse/parallel_explorer.hpp"
#include "dse/supervise.hpp"
#include "dse/warmstart.hpp"
#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::dse {

/// One contiguous band of the shard objective.  INT64_MIN / INT64_MAX mark
/// unbounded ends; a single-shard split is one fully unbounded band.
struct Shard {
  std::size_t id = 0;
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();
};

/// Split objective `objective` into at most `shards` contiguous bands at the
/// quantiles of a `sample_budget`-evaluation heuristic sample (the sampler
/// warm pass, so every probe is a validated feasible point).  The returned
/// bands always tile (-inf, +inf): the first is open below, the last open
/// above, consecutive bands meet at hi+1.  Degenerate samples (fewer
/// distinct values than bands) yield fewer shards, down to one unbounded
/// shard when the sample collapses entirely.
///
/// When `seeds_out` is non-null it receives the validated sample points.
/// The coordinator forwards them to *every* shard as warm-start seeds: a
/// feasible point outside a shard's band still dominates (and thereby
/// prunes) candidates inside it, and without that cross-band knowledge each
/// shard would redo the global dominance work banding was meant to split —
/// on one core the distributed run would be strictly slower than the
/// portfolio.  Seeds re-enter through the certifiable warm gate (validate +
/// F proof step), so sharing them never weakens the merged certificate.
[[nodiscard]] std::vector<Shard> shard_objective_space(
    const synth::Specification& spec, std::size_t shards,
    std::size_t objective, std::uint64_t sample_budget = 256,
    std::uint64_t seed = 1, std::vector<WarmSeedCandidate>* seeds_out = nullptr,
    WarmStartMethod method = WarmStartMethod::Sampler);

/// Serialize warm seeds for the worker handoff (`--warm-seeds FILE`): a
/// `aspmt-seeds 1` header then alternating `d <objectives>` / `w <witness>`
/// lines (checkpoint witness encoding).  Returns false on I/O failure.
bool save_seed_file(const std::string& path,
                    std::span<const WarmSeedCandidate> seeds);

/// Parse save_seed_file output.  Returns "" on success, a diagnostic
/// otherwise; `out` holds the seeds parsed so far on failure.
[[nodiscard]] std::string load_seed_file(const std::string& path,
                                         std::vector<WarmSeedCandidate>& out);

struct DistributedOptions {
  /// Per-shard portfolio configuration: `base.threads` is the thread count
  /// *inside each worker*, `base.common` carries limits/certify/obs exactly
  /// as for a single-process run.  The coordinator keeps the sink/metrics
  /// endpoints to itself (shard events are reported coordinator-side);
  /// band bounds are installed per shard.
  ParallelExploreOptions base;
  /// Concurrent worker processes (or in-process lanes).
  std::size_t processes = 2;
  /// Shard count; 0 = one shard per process.  More shards than processes
  /// gives the coordinator a work queue to rebalance onto survivors.
  std::size_t shards = 0;
  /// Index of the banded objective.  Must be linear (energy = 1 or cost = 2
  /// in the standard encoding); latency's difference logic has no sound
  /// floor bound.
  std::size_t shard_objective = 1;
  /// Worker binary for process mode.  "" = $ASPMT_DSE_BIN, then
  /// /proc/self/exe (correct when the coordinator is aspmt_dse itself).
  std::string worker_path;
  /// Scratch directory for the spec file and per-shard checkpoints; "" = a
  /// fresh mkdtemp directory, removed on success.
  std::string work_dir;
  /// A worker silent for longer than this is declared dead and requeued.
  double heartbeat_timeout_seconds = 10.0;
  /// Heuristic evaluations behind shard_objective_space.  The default is
  /// deliberately generous: the same pass produces the shared seed pool, and
  /// seed density is what keeps per-shard re-enumeration (and with it the
  /// distributed run's total work) low.
  std::uint64_t split_sample_budget = 2048;
  /// Heuristic behind the split pass.  NSGA-II concentrates its budget near
  /// the front, so the quantiles land where front mass actually sits and
  /// the seed antichain is dense; the uniform sampler is the cheaper,
  /// lower-quality fallback.
  WarmStartMethod split_method = WarmStartMethod::Nsga2;
  /// Run shards on coordinator threads instead of forked workers.
  bool in_process = false;
  /// Fault-injection hook (process mode): this shard's first attempt is
  /// launched with --die-after-points, so its worker kills itself after
  /// streaming `sabotage_after_points` points.  -1 = off.
  std::int64_t sabotage_shard = -1;
  std::uint64_t sabotage_after_points = 1;
  /// Requeue supervision (process mode): a failed shard is relaunched after
  /// a capped, jittered exponential backoff until `retry.max_attempts`
  /// total launches, then quarantined with its failure recorded.
  RetryPolicy retry;
};

/// Per-shard accounting for the CLI report, the bench and the tests.
struct ShardReport {
  std::size_t shard = 0;
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  std::size_t attempts = 0;   ///< launches (> 1 after a requeue)
  bool resumed = false;       ///< a retry warm-started from a checkpoint
  bool completed = false;     ///< band proven exhausted
  double seconds = 0.0;       ///< wall time of the delivering attempt
  std::uint64_t models = 0;   ///< accepted answer sets in the delivering attempt
  std::uint64_t points = 0;   ///< discoveries delivered
  std::string error;          ///< why the shard failed, when it did
};

struct DistributedResult {
  /// The merged run in the sequential explorer's shape: union front (with
  /// witnesses), merged-container proof, certification outcome, aggregated
  /// stats.  `base.stats.complete` iff every shard proved its band
  /// exhausted.
  ExploreResult base;
  std::vector<ShardReport> shards;
  std::size_t processes = 0;  ///< concurrent lanes actually used
  /// Certified mode: the full merged-certification outcome (per-shard proof
  /// checks, coverage, front equality).  `base.certified` mirrors
  /// `merged.certified`.
  cert::MergedCertifyResult merged;
};

/// Explore `spec` distributed over `options.processes` workers.
[[nodiscard]] DistributedResult explore_distributed(
    const synth::Specification& spec, const DistributedOptions& options = {});

// ---- shard-worker wire format (process mode) -------------------------------
//
// Worker stdout, line-framed until the result:
//   ASPMT-SHARD 1              handshake
//   HB <elapsed_ms>            heartbeat (also implied by any other line)
//   PT <l> <e> <c>             a point entered the worker's archive
//   RESULT <nbytes>            terminal; exactly nbytes of payload follow
// The payload is shard_result_to_text below; the worker exits 0 after it.

/// Serialize a finished shard run into the RESULT payload: completion flag,
/// models, wall seconds, every discovery with its witness (checkpoint `w`
/// encoding, dse/checkpoint.hpp), the shard front, and the raw proof stream.
[[nodiscard]] std::string shard_result_to_text(const ParallelExploreResult& r);

/// Coordinator-side decode of shard_result_to_text.
struct ShardResultPayload {
  bool complete = false;
  std::uint64_t models = 0;
  double seconds = 0.0;
  std::vector<std::pair<pareto::Vec, synth::Implementation>> discoveries;
  std::vector<pareto::Vec> front;
  std::string proof;
};

/// Parse a RESULT payload.  Returns "" on success, a diagnostic otherwise.
[[nodiscard]] std::string parse_shard_result(std::string_view text,
                                             ShardResultPayload& out);

}  // namespace aspmt::dse
