// Structural spec diffing + incremental re-exploration (DESIGN.md §13).
//
// Real DSE is a loop: a designer tweaks one WCET, adds a task or swaps a
// resource and re-runs.  This layer generalizes the checkpoint's combined
// spec fingerprint into four per-section digests (tasks, resources,
// mappings, objective coefficients), classifies the delta between a
// previous session's checkpoint and the edited specification, and reuses
// everything reuse-safe:
//
//   * the Pareto archive — still-feasible witnesses are re-decoded against
//     the *new* spec and pushed through the warm-start
//     validate→antichain-reduce→inject gate (re-validate, never trust);
//   * learnt clauses — replayed behind a fresh assumption guard
//     (asp::Solver::add_guarded_clauses), so a stale or hostile dump can
//     prune nothing from the final answer;
//   * epsilon slices — the portfolio's SliceScheduler is seeded from the
//     reused front instead of waiting for first discoveries.
//
// The exactness bar is unconditional: an incremental run returns the same
// front a cold run would, certified, at any thread count — reuse only ever
// changes how fast the search gets there.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/parallel_explorer.hpp"
#include "synth/spec.hpp"

namespace aspmt::dse {

struct Checkpoint;

/// Per-section FNV-1a digests of a specification.  Two specs with equal
/// digests in a section are structurally identical there; the combined
/// checkpoint fingerprint remains the whole-text hash (and is compared as
/// well — see checkpoint_matches).
struct SectionDigests {
  std::uint64_t tasks = 0;       ///< task names + message topology
  std::uint64_t resources = 0;   ///< resources, kinds, capacities, links, hops
  std::uint64_t mappings = 0;    ///< task→resource option structure
  std::uint64_t objectives = 0;  ///< every numeric coefficient + bounds
  std::uint64_t tree = 0;        ///< scenarios + combinator axis expressions

  friend bool operator==(const SectionDigests&, const SectionDigests&) = default;
};

[[nodiscard]] SectionDigests spec_sections(const synth::Specification& spec);

/// The `tree` digest of a spec with no scenario/objective declarations (the
/// classic latency/energy/cost axes).  Pre-v5 checkpoints carry no tree
/// digest and load with this value; the checkpoint parser only enforces the
/// witness-objectives-equal-point invariant under it, because with declared
/// combinator axes the point is tree-valued while the witness records the
/// base triple.
[[nodiscard]] std::uint64_t default_tree_digest() noexcept;

/// How much of a previous session survives the spec edit.
enum class DeltaClass : std::uint8_t {
  Identical,    ///< everything reuses: archive, clauses, slices
  ClauseSafe,   ///< only coefficients changed: variable layout is intact,
                ///< so archive + guarded clause replay + slices all reuse
  ArchiveSafe,  ///< structure changed but tasks survive: witnesses re-decode
                ///< against the new spec; the clause dump is meaningless
  Unsafe,       ///< tasks changed (or v1/v2 checkpoint + different spec):
                ///< cold start
};

[[nodiscard]] const char* delta_class_name(DeltaClass c) noexcept;

struct DeltaReport {
  DeltaClass cls = DeltaClass::Unsafe;
  bool tasks_changed = false;
  bool resources_changed = false;
  bool mappings_changed = false;
  bool objectives_changed = false;
  bool tree_changed = false;
  /// Bitmask of the *_changed flags (tasks=1, resources=2, mappings=4,
  /// objectives=8, tree=16) — the payload of the respec-delta event.
  [[nodiscard]] std::uint32_t section_mask() const noexcept {
    return (tasks_changed ? 1U : 0U) | (resources_changed ? 2U : 0U) |
           (mappings_changed ? 4U : 0U) | (objectives_changed ? 8U : 0U) |
           (tree_changed ? 16U : 0U);
  }
};

/// Classify the structural delta between two digest sets.
[[nodiscard]] DeltaReport classify_delta(const SectionDigests& prev,
                                         const SectionDigests& next);

/// Classify a checkpoint against an edited spec.  v3 checkpoints carry
/// per-section digests and classify precisely; v1/v2 checkpoints only have
/// the combined fingerprint, so anything but an identical spec is Unsafe.
[[nodiscard]] DeltaReport classify_checkpoint(const Checkpoint& prev,
                                              const synth::Specification& next);

/// A learnt-clause dump offered for assumption-guarded replay.  Literals use
/// the signed 1-based DIMACS convention of the proof stream; `base_vars` is
/// the variable count of the encoding that produced them.
struct ClauseReplay {
  std::uint32_t base_vars = 0;
  std::vector<std::vector<std::int32_t>> clauses;
};

/// Decode a dump into solver literals for asp::Solver::add_guarded_clauses.
/// Returns empty when `base_vars` does not match the dump's base (the dump
/// came from a different encoding); clauses containing a zero or
/// out-of-range literal are dropped individually, never installed.
[[nodiscard]] std::vector<std::vector<asp::Lit>> decode_replay(
    const ClauseReplay& replay, std::uint32_t base_vars);

struct ReexploreOptions {
  /// Explorer configuration for the incremental run.  threads <= 1 runs the
  /// sequential explorer, anything larger the portfolio.  `base.common`'s
  /// warm_start.external and clause_replay fields are overwritten by the
  /// reuse machinery; everything else (certify, budgets, observability, …)
  /// is honoured as given.
  ParallelExploreOptions base;
  /// Cap on replayed clauses (the dump is best-first already).
  std::size_t max_replay_clauses = 4096;
};

struct ReuseStats {
  DeltaReport delta;
  std::size_t archive_candidates = 0;  ///< checkpoint witnesses considered
  std::size_t archive_reused = 0;  ///< survived re-decode against the new
                                   ///< spec (the warm gate re-validates each)
  std::size_t clause_candidates = 0;  ///< clauses offered by the checkpoint
  /// Validated clauses handed to the run for guarded install.  The explorer
  /// still drops the whole hand-off if its base_vars does not match the
  /// encoding; actually-installed counts are ExploreStats::replayed_clauses.
  std::size_t clauses_replayed = 0;
  std::size_t slices_resumed = 0;      ///< epsilon slices seedable from reuse
  bool cold_start = false;             ///< nothing was reusable
  /// Fraction of reuse candidates that actually got reused (0 when none
  /// were offered).
  [[nodiscard]] double reuse_rate() const noexcept {
    const std::size_t cand = archive_candidates + clause_candidates;
    if (cand == 0) return 0.0;
    return static_cast<double>(archive_reused + clauses_replayed) /
           static_cast<double>(cand);
  }
};

struct ReexploreResult {
  /// The incremental run's result — front, witnesses, certification.  Same
  /// exactness contract as a cold dse::explore / explore_parallel.
  ExploreResult base;
  ReuseStats reuse;
};

/// Re-explore an edited specification, reusing whatever the delta
/// classification marks safe from `prev`.  Never trusts checkpoint content:
/// witnesses are re-decoded and re-validated, clauses are guard-isolated,
/// and an invalid clause dump is dropped (degrading towards a cold start)
/// rather than installed.  `new_spec` must satisfy validate().empty() and
/// outlive the call.
[[nodiscard]] ReexploreResult reexplore(const Checkpoint& prev,
                                        const synth::Specification& new_spec,
                                        const ReexploreOptions& options = {});

}  // namespace aspmt::dse
