#include "dse/distributed.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dse/checkpoint.hpp"
#include "dse/warmstart.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "pareto/concurrent_archive.hpp"
#include "synth/specio.hpp"
#include "util/timer.hpp"

namespace aspmt::dse {

namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

bool parse_i64(std::string_view token, std::int64_t& out) {
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

std::string_view take_line(std::string_view& rest) {
  const std::size_t nl = rest.find('\n');
  const std::string_view line =
      nl == std::string_view::npos ? rest : rest.substr(0, nl);
  rest = nl == std::string_view::npos ? std::string_view{} : rest.substr(nl + 1);
  return line;
}

std::string_view take_token(std::string_view& rest) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t sp = rest.find(' ');
  const std::string_view tok =
      sp == std::string_view::npos ? rest : rest.substr(0, sp);
  rest = sp == std::string_view::npos ? std::string_view{} : rest.substr(sp + 1);
  return tok;
}

/// Coordinator-side event emission.  The coordinator owns the sink for the
/// whole distributed run (shard portfolios run sink-less), so serializing
/// emissions with one mutex upholds the sink's single-caller contract even
/// when in-process lanes report concurrently.
struct ShardEvents {
  obs::EventSink* sink = nullptr;
  util::Timer epoch;
  std::mutex mutex;

  void emit(obs::EventKind kind, std::int64_t a, std::int64_t b,
            std::int64_t c) {
    if (sink == nullptr) return;
    const std::lock_guard<std::mutex> lock(mutex);
    obs::Event e;
    e.kind = kind;
    e.t_ns = static_cast<std::uint64_t>(epoch.elapsed_seconds() * 1e9);
    e.a = a;
    e.b = b;
    e.c = c;
    e.worker = 0;
    sink->on_event(e);
  }
};

/// What one shard ultimately delivered (from either backend).
struct ShardOutcome {
  bool delivered = false;
  bool complete = false;
  double seconds = 0.0;
  std::uint64_t models = 0;
  std::vector<std::pair<pareto::Vec, synth::Implementation>> discoveries;
  std::vector<pareto::Vec> front;
  std::string proof;
  std::string error;
};

ShardOutcome outcome_from_result(ParallelExploreResult&& r) {
  ShardOutcome out;
  out.delivered = true;
  out.complete = r.base.stats.complete;
  out.seconds = r.base.stats.seconds;
  out.models = r.base.stats.models;
  out.discoveries = std::move(r.discovery_witnesses);
  out.front = std::move(r.base.front);
  out.proof = std::move(r.base.proof);
  if (!r.base.errors.empty()) out.error = r.base.errors.front();
  return out;
}

ShardOutcome outcome_from_payload(ShardResultPayload&& p) {
  ShardOutcome out;
  out.delivered = true;
  out.complete = p.complete;
  out.seconds = p.seconds;
  out.models = p.models;
  out.discoveries = std::move(p.discoveries);
  out.front = std::move(p.front);
  out.proof = std::move(p.proof);
  return out;
}

std::string resolve_worker_path(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("ASPMT_DSE_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return "aspmt_dse";
}

// ---- process-mode plumbing -------------------------------------------------

struct WorkerProc {
  pid_t pid = -1;
  int fd = -1;           ///< read end of the worker's stdout pipe
  std::size_t slot = 0;  ///< index into the shard table
  std::size_t attempt = 1;
  std::string linebuf;
  std::string result;          ///< RESULT payload accumulator
  std::size_t result_need = 0; ///< payload bytes still expected
  bool in_result = false;
  bool result_done = false;
  bool eof = false;
  bool reaped = false;
  int status = 0;
  double last_activity = 0.0;  ///< coordinator-epoch seconds
  std::uint64_t points = 0;    ///< PT lines received
};

/// fork/exec one shard worker with its stdout on a fresh pipe.  Returns ""
/// on success, a diagnostic otherwise.
std::string spawn_worker(const std::string& binary,
                         const std::vector<std::string>& args, WorkerProc& p) {
  int fds[2];
  if (::pipe(fds) != 0) return "pipe() failed";
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return "fork() failed";
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 2);
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);
  }
  ::close(fds[1]);
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
  p.pid = pid;
  p.fd = fds[0];
  return {};
}

}  // namespace

std::vector<Shard> shard_objective_space(const synth::Specification& spec,
                                         std::size_t shards,
                                         std::size_t objective,
                                         std::uint64_t sample_budget,
                                         std::uint64_t seed,
                                         std::vector<WarmSeedCandidate>* seeds_out,
                                         WarmStartMethod method) {
  std::vector<Shard> result;
  const std::size_t want = std::max<std::size_t>(1, shards);
  if (want == 1) {
    result.push_back(Shard{0, kMin, kMax});
    return result;
  }

  // Heuristic warm pass: every probe is a validated feasible design point, so
  // the quantiles reflect where feasible mass actually sits.
  WarmStartOptions warm;
  warm.method = method == WarmStartMethod::Off ? WarmStartMethod::Sampler : method;
  warm.budget = std::max<std::uint64_t>(sample_budget, 4 * want);
  warm.seed = seed;
  WarmStartResult sample = generate_warm_seeds(spec, warm);

  std::vector<std::int64_t> values;
  values.reserve(sample.seeds.size());
  for (const WarmSeedCandidate& s : sample.seeds) {
    if (objective < s.point.size()) values.push_back(s.point[objective]);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  // Splits at the sample quantiles.  Fewer distinct values than shards
  // degrade gracefully to fewer shards; a collapsed sample yields one
  // unbounded shard.
  std::vector<std::int64_t> splits;
  if (values.size() >= 2) {
    for (std::size_t j = 1; j < want; ++j) {
      const std::size_t idx =
          std::min(values.size() - 1, j * values.size() / want);
      const std::int64_t split = values[idx == 0 ? 0 : idx - 1];
      if (splits.empty() || split > splits.back()) splits.push_back(split);
    }
  }

  std::int64_t lo = kMin;
  for (std::size_t j = 0; j < splits.size(); ++j) {
    result.push_back(Shard{j, lo, splits[j]});
    lo = splits[j] + 1;
  }
  result.push_back(Shard{splits.size(), lo, kMax});
  if (seeds_out != nullptr) *seeds_out = std::move(sample.seeds);
  return result;
}

bool save_seed_file(const std::string& path,
                    std::span<const WarmSeedCandidate> seeds) {
  std::ofstream out(path);
  if (!out) return false;
  out << "aspmt-seeds 1\n" << seeds.size() << "\n";
  for (const WarmSeedCandidate& s : seeds) {
    out << "d";
    for (const std::int64_t v : s.point) out << ' ' << v;
    out << "\nw " << witness_to_text(s.impl) << "\n";
  }
  return static_cast<bool>(out);
}

std::string load_seed_file(const std::string& path,
                           std::vector<WarmSeedCandidate>& out) {
  std::ifstream in(path);
  if (!in) return "cannot read '" + path + "'";
  std::string header;
  std::getline(in, header);
  if (header != "aspmt-seeds 1") return "bad seed-file header";
  std::size_t count = 0;
  if (!(in >> count)) return "missing seed count";
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  std::string line;
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line) || line.size() < 2 || line[0] != 'd') {
      return "expected 'd' line";
    }
    WarmSeedCandidate seed;
    std::string_view rest(line);
    take_token(rest);  // "d"
    while (!rest.empty()) {
      std::int64_t v = 0;
      if (!parse_i64(take_token(rest), v)) return "malformed seed point";
      seed.point.push_back(v);
    }
    if (!std::getline(in, line) || line.rfind("w ", 0) != 0) {
      return "expected 'w' line";
    }
    const std::string werr =
        witness_from_text(std::string_view(line).substr(2), seed.impl);
    if (!werr.empty()) return "bad seed witness: " + werr;
    out.push_back(std::move(seed));
  }
  return {};
}

std::string shard_result_to_text(const ParallelExploreResult& r) {
  std::ostringstream out;
  out << "complete " << (r.base.stats.complete ? 1 : 0) << "\n";
  out << "models " << r.base.stats.models << "\n";
  out << "seconds " << r.base.stats.seconds << "\n";
  out << "discoveries " << r.discovery_witnesses.size() << "\n";
  for (const auto& [point, impl] : r.discovery_witnesses) {
    out << "d";
    for (const std::int64_t v : point) out << ' ' << v;
    out << "\n";
    out << "w " << witness_to_text(impl) << "\n";
  }
  out << "front " << r.base.front.size() << "\n";
  for (const pareto::Vec& p : r.base.front) {
    out << "f";
    for (const std::int64_t v : p) out << ' ' << v;
    out << "\n";
  }
  out << "proof " << r.base.proof.size() << "\n";
  out << r.base.proof;
  out << "end\n";
  return out.str();
}

std::string parse_shard_result(std::string_view text, ShardResultPayload& out) {
  out = ShardResultPayload{};
  std::string_view rest = text;

  auto expect_count = [&](std::string_view keyword,
                          std::int64_t& n) -> std::string {
    std::string_view line = take_line(rest);
    if (take_token(line) != keyword) {
      return "expected '" + std::string(keyword) + "' line";
    }
    if (!parse_i64(take_token(line), n) || n < 0) {
      return "malformed '" + std::string(keyword) + "' count";
    }
    return {};
  };

  std::int64_t n = 0;
  std::string err = expect_count("complete", n);
  if (!err.empty()) return err;
  out.complete = n != 0;
  err = expect_count("models", n);
  if (!err.empty()) return err;
  out.models = static_cast<std::uint64_t>(n);
  {
    std::string_view line = take_line(rest);
    if (take_token(line) != "seconds") return "expected 'seconds' line";
    out.seconds = std::atof(std::string(take_token(line)).c_str());
  }
  err = expect_count("discoveries", n);
  if (!err.empty()) return err;
  for (std::int64_t i = 0; i < n; ++i) {
    std::string_view line = take_line(rest);
    if (take_token(line) != "d") return "expected 'd' line";
    pareto::Vec point;
    while (!line.empty()) {
      std::int64_t v = 0;
      if (!parse_i64(take_token(line), v)) return "malformed discovery point";
      point.push_back(v);
    }
    std::string_view wline = take_line(rest);
    if (take_token(wline) != "w") return "expected 'w' line";
    synth::Implementation impl;
    const std::string werr = witness_from_text(wline, impl);
    if (!werr.empty()) return "bad witness: " + werr;
    out.discoveries.emplace_back(std::move(point), std::move(impl));
  }
  err = expect_count("front", n);
  if (!err.empty()) return err;
  for (std::int64_t i = 0; i < n; ++i) {
    std::string_view line = take_line(rest);
    if (take_token(line) != "f") return "expected 'f' line";
    pareto::Vec point;
    while (!line.empty()) {
      std::int64_t v = 0;
      if (!parse_i64(take_token(line), v)) return "malformed front point";
      point.push_back(v);
    }
    out.front.push_back(std::move(point));
  }
  err = expect_count("proof", n);
  if (!err.empty()) return err;
  if (static_cast<std::size_t>(n) > rest.size()) return "truncated proof bytes";
  out.proof.assign(rest.substr(0, static_cast<std::size_t>(n)));
  rest.remove_prefix(static_cast<std::size_t>(n));
  if (take_line(rest) != "end") return "missing 'end' trailer";
  return {};
}

DistributedResult explore_distributed(const synth::Specification& spec,
                                      const DistributedOptions& options) {
  // Fail fast on unshardable axes: banding needs a linear *leaf* objective
  // (a non-latency metric), because neither difference logic nor any
  // combinator admits a sound single-sum floor/ceiling decomposition — and
  // the merged-front checker would reject such shard boxes regardless.
  const std::vector<synth::ObjectiveExpr> axes = spec.effective_objectives();
  if (options.shard_objective >= axes.size() ||
      axes[options.shard_objective].kind != synth::ObjectiveExpr::Kind::Metric ||
      axes[options.shard_objective].metric == "latency") {
    throw std::invalid_argument(
        "distributed sharding requires a linear leaf shard objective "
        "(an energy or cost axis); latency and combinator axes cannot be "
        "banded soundly");
  }

  DistributedResult result;
  util::Timer total;
  const std::size_t processes = std::max<std::size_t>(1, options.processes);

  // The split sample doubles as the shared seed pool: every shard starts
  // with the same globally-validated points, so cross-band dominance pruning
  // survives the partition (see shard_objective_space).
  std::vector<WarmSeedCandidate> seeds;
  std::vector<Shard> shards = shard_objective_space(
      spec, options.shards != 0 ? options.shards : processes,
      options.shard_objective, options.split_sample_budget, options.base.seed,
      &seeds, options.split_method);
  result.processes = std::min(processes, shards.size());

  ShardEvents events;
  events.sink = options.base.common.sink;

  std::vector<ShardOutcome> outcomes(shards.size());
  std::vector<std::size_t> attempts(shards.size(), 0);
  std::vector<char> resumed(shards.size(), 0);

  // Shared work queue; both backends pull shard indices from it.
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < shards.size(); ++i) queue.push_back(i);

  // Requeue supervision (process mode): per-shard failure ledger plus the
  // backoff gate a requeued shard must wait out before relaunch.
  RetrySupervisor requeue_supervisor(options.retry, options.base.seed);
  std::vector<double> ready_at(shards.size(), 0.0);

  events.emit(obs::EventKind::RunStart,
              static_cast<std::int64_t>(
                  options.base.common.time_limit_seconds * 1e3),
              static_cast<std::int64_t>(result.processes),
              static_cast<std::int64_t>(options.base.common.conflict_budget));

  if (options.in_process) {
    // ---- in-process backend: shards on coordinator threads ----------------
    std::mutex mutex;
    auto lane = [&]() {
      for (;;) {
        std::size_t idx = 0;
        {
          const std::lock_guard<std::mutex> lock(mutex);
          if (queue.empty()) return;
          idx = queue.front();
          queue.pop_front();
          attempts[idx] = 1;
        }
        const Shard& shard = shards[idx];
        events.emit(obs::EventKind::ShardSpawn,
                    static_cast<std::int64_t>(shard.id), shard.lo, shard.hi);
        ParallelExploreOptions run = options.base;
        run.common.sink = nullptr;      // coordinator-side reporting only
        run.common.metrics = nullptr;
        run.common.checkpoint_path.clear();  // per-shard ckpts are process-mode
        run.shard.active = true;
        run.shard.objective = options.shard_objective;
        run.shard.lo = shard.lo;
        run.shard.hi = shard.hi;
        run.common.warm_start.external.insert(
            run.common.warm_start.external.end(), seeds.begin(), seeds.end());
        util::Timer t;
        ShardOutcome out;
        try {
          out = outcome_from_result(explore_parallel(spec, run));
          out.seconds = t.elapsed_seconds();
        } catch (const std::exception& e) {
          out.error = e.what();
        }
        {
          const std::lock_guard<std::mutex> lock(mutex);
          outcomes[idx] = std::move(out);
        }
        events.emit(obs::EventKind::ShardExit,
                    static_cast<std::int64_t>(shard.id),
                    outcomes[idx].delivered ? 1 : 0, 1);
      }
    };
    const std::size_t lanes = std::min(processes, shards.size());
    if (lanes <= 1) {
      lane();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(lanes);
      for (std::size_t i = 0; i < lanes; ++i) threads.emplace_back(lane);
      for (std::thread& t : threads) t.join();
    }
  } else {
    // ---- process backend: fork/exec shard workers over pipes --------------
    namespace fs = std::filesystem;
    std::string dir = options.work_dir;
    bool made_dir = false;
    if (dir.empty()) {
      std::string tmpl = (fs::temp_directory_path() / "aspmt-dse-XXXXXX").string();
      std::vector<char> buf(tmpl.begin(), tmpl.end());
      buf.push_back('\0');
      if (::mkdtemp(buf.data()) == nullptr) {
        result.base.errors.push_back("cannot create scratch directory");
        return result;
      }
      dir.assign(buf.data());
      made_dir = true;
    }
    const std::string spec_path = dir + "/spec.txt";
    synth::save_specification(spec, spec_path);
    std::string seeds_path;
    if (!seeds.empty()) {
      seeds_path = dir + "/seeds.txt";
      if (!save_seed_file(seeds_path, seeds)) seeds_path.clear();
    }
    const std::string binary = resolve_worker_path(options.worker_path);
    const double hb_timeout = std::max(0.5, options.heartbeat_timeout_seconds);
    const long hb_ms = std::max<long>(
        50, std::min<long>(1000, static_cast<long>(hb_timeout * 1e3 / 4)));

    auto ckpt_path = [&](std::size_t idx) {
      return dir + "/shard" + std::to_string(idx) + ".ckpt";
    };

    auto launch = [&](std::size_t idx, std::vector<WorkerProc>& procs) {
      const Shard& shard = shards[idx];
      ++attempts[idx];
      std::vector<std::string> args;
      args.emplace_back("shard-worker");
      args.push_back(spec_path);
      if (shard.lo != kMin) {
        args.push_back("--shard-lo=" + std::to_string(shard.lo));
      }
      if (shard.hi != kMax) {
        args.push_back("--shard-hi=" + std::to_string(shard.hi));
      }
      args.emplace_back("--shard-objective");
      args.push_back(std::to_string(options.shard_objective));
      args.emplace_back("--threads");
      args.push_back(std::to_string(std::max<std::size_t>(1, options.base.threads)));
      args.emplace_back("--seed");
      args.push_back(std::to_string(options.base.seed));
      args.emplace_back("--heartbeat-ms");
      args.push_back(std::to_string(hb_ms));
      args.emplace_back("--archive");
      args.push_back(options.base.common.archive_kind);
      if (!options.base.common.partial_evaluation) {
        args.emplace_back("--no-partial-eval");
      }
      if (options.base.common.certify) args.emplace_back("--certify");
      if (options.base.common.time_limit_seconds > 0.0) {
        args.emplace_back("--time-limit");
        args.push_back(std::to_string(options.base.common.time_limit_seconds));
      }
      args.emplace_back("--checkpoint-out");
      args.push_back(ckpt_path(idx));
      args.emplace_back("--checkpoint-interval");
      args.emplace_back("0");
      if (!seeds_path.empty()) {
        args.emplace_back("--warm-seeds");
        args.push_back(seeds_path);
      }
      if (attempts[idx] > 1 && fs::exists(ckpt_path(idx))) {
        args.emplace_back("--shard-resume");
        args.push_back(ckpt_path(idx));
        resumed[idx] = 1;
      }
      if (options.sabotage_shard >= 0 &&
          static_cast<std::size_t>(options.sabotage_shard) == shard.id &&
          attempts[idx] == 1) {
        args.emplace_back("--die-after-points");
        args.push_back(std::to_string(options.sabotage_after_points));
      }
      WorkerProc p;
      p.slot = idx;
      p.attempt = attempts[idx];
      p.last_activity = events.epoch.elapsed_seconds();
      const std::string err = spawn_worker(binary, args, p);
      if (!err.empty()) {
        outcomes[idx].error = err;
        return;
      }
      procs.push_back(std::move(p));
      events.emit(obs::EventKind::ShardSpawn,
                  static_cast<std::int64_t>(shard.id), shard.lo, shard.hi);
    };

    auto handle_line = [&](WorkerProc& p, std::string_view line) {
      p.last_activity = events.epoch.elapsed_seconds();
      std::string_view rest = line;
      const std::string_view head = take_token(rest);
      if (head == "HB") {
        std::int64_t ms = 0;
        parse_i64(take_token(rest), ms);
        events.emit(obs::EventKind::ShardHeartbeat,
                    static_cast<std::int64_t>(shards[p.slot].id), ms,
                    static_cast<std::int64_t>(p.points));
      } else if (head == "PT") {
        std::int64_t a = 0, b = 0, c = 0;
        parse_i64(take_token(rest), a);
        parse_i64(take_token(rest), b);
        parse_i64(take_token(rest), c);
        ++p.points;
        events.emit(obs::EventKind::ShardPoint, a, b, c);
      } else if (head == "RESULT") {
        std::int64_t n = 0;
        if (parse_i64(take_token(rest), n) && n >= 0) {
          p.in_result = true;
          p.result_need = static_cast<std::size_t>(n);
          p.result.reserve(p.result_need);
          if (p.result_need == 0) p.result_done = true;
        }
      }
      // "ASPMT-SHARD 1" and unknown lines: activity only.
    };

    auto consume = [&](WorkerProc& p, const char* data, std::size_t n) {
      std::size_t off = 0;
      while (off < n) {
        if (p.in_result && !p.result_done) {
          const std::size_t take = std::min(n - off, p.result_need);
          p.result.append(data + off, take);
          p.result_need -= take;
          off += take;
          p.last_activity = events.epoch.elapsed_seconds();
          if (p.result_need == 0) p.result_done = true;
          continue;
        }
        const char* nl = static_cast<const char*>(
            std::memchr(data + off, '\n', n - off));
        if (nl == nullptr) {
          p.linebuf.append(data + off, n - off);
          break;
        }
        p.linebuf.append(data + off, static_cast<std::size_t>(nl - (data + off)));
        off = static_cast<std::size_t>(nl - data) + 1;
        handle_line(p, p.linebuf);
        p.linebuf.clear();
      }
    };

    std::vector<WorkerProc> procs;
    while (!queue.empty() || !procs.empty()) {
      // Launch every ready shard (backoff gate elapsed), skipping ones
      // still waiting theirs out.
      const double launch_now = events.epoch.elapsed_seconds();
      for (std::size_t qi = 0;
           procs.size() < processes && qi < queue.size();) {
        const std::size_t idx = queue[qi];
        if (ready_at[idx] > launch_now) {
          ++qi;
          continue;
        }
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
        launch(idx, procs);
      }
      if (procs.empty()) {
        if (queue.empty()) break;
        // Every queued shard is backing off; sleep toward the nearest gate.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }

      std::vector<pollfd> pfds;
      pfds.reserve(procs.size());
      for (const WorkerProc& p : procs) {
        pfds.push_back(pollfd{p.fd, POLLIN, 0});
      }
      ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);

      char buf[65536];
      for (std::size_t i = 0; i < procs.size(); ++i) {
        WorkerProc& p = procs[i];
        if (p.eof ||
            (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
          continue;
        }
        for (;;) {
          const ssize_t n = ::read(p.fd, buf, sizeof(buf));
          if (n > 0) {
            consume(p, buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
            p.eof = true;  // EOF or hard error — the stream is over
            ::close(p.fd);
            p.fd = -1;
          }
          break;
        }
      }

      const double now = events.epoch.elapsed_seconds();
      for (WorkerProc& p : procs) {
        if (!p.eof && !p.result_done && now - p.last_activity > hb_timeout) {
          ::kill(p.pid, SIGKILL);
          p.last_activity = now;  // one kill per timeout trip
        }
        if (!p.reaped) {
          int status = 0;
          if (::waitpid(p.pid, &status, WNOHANG) == p.pid) {
            p.reaped = true;
            p.status = status;
          }
        }
      }

      // Finalize workers whose pipe drained and whose process was reaped.
      for (std::size_t i = 0; i < procs.size();) {
        WorkerProc& p = procs[i];
        if (!p.eof || !p.reaped) {
          ++i;
          continue;
        }
        const std::size_t idx = p.slot;
        bool delivered = false;
        if (p.result_done) {
          ShardResultPayload payload;
          const std::string err = parse_shard_result(p.result, payload);
          if (err.empty()) {
            outcomes[idx] = outcome_from_payload(std::move(payload));
            delivered = true;
          } else {
            outcomes[idx].error = "bad shard result: " + err;
          }
        } else if (outcomes[idx].error.empty()) {
          outcomes[idx].error =
              WIFSIGNALED(p.status)
                  ? "worker killed by signal " +
                        std::to_string(WTERMSIG(p.status))
                  : "worker exited " + std::to_string(WEXITSTATUS(p.status)) +
                        " without a result";
        }
        events.emit(obs::EventKind::ShardExit,
                    static_cast<std::int64_t>(shards[idx].id),
                    delivered ? 1 : 0, static_cast<std::int64_t>(p.attempt));
        if (!delivered) {
          // Supervised requeue onto the survivors: capped attempts with a
          // jittered backoff gate, resuming from the dead worker's
          // checkpoint when one was written.  Past the cap the circuit
          // opens and the shard stays failed (its error is already in
          // outcomes[idx]) rather than churning the pool.
          const auto decision =
              requeue_supervisor.on_failure(shards[idx].id);
          if (decision.retry) {
            const bool have_ckpt = fs::exists(ckpt_path(idx));
            events.emit(obs::EventKind::ShardRequeue,
                        static_cast<std::int64_t>(shards[idx].id),
                        static_cast<std::int64_t>(attempts[idx] + 1),
                        have_ckpt ? 1 : 0);
            outcomes[idx] = ShardOutcome{};
            ready_at[idx] =
                events.epoch.elapsed_seconds() + decision.delay_seconds;
            queue.push_back(idx);
          }
        }
        procs.erase(procs.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }

    if (made_dir) {
      std::error_code ec;
      fs::remove_all(dir, ec);  // best-effort scratch cleanup
    }
  }

  // ---- merge ---------------------------------------------------------------
  bool all_complete = true;
  bool any_failed = false;
  std::map<pareto::Vec, synth::Implementation> witness_by_point;
  std::vector<std::pair<pareto::Vec, synth::Implementation>> union_discoveries;
  pareto::ConcurrentArchive merged(options.base.common.archive_kind, 3,
                                   options.base.archive_shards);
  std::uint64_t total_models = 0;

  result.shards.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Shard& shard = shards[i];
    const ShardOutcome& out = outcomes[i];
    ShardReport report;
    report.shard = shard.id;
    report.lo = shard.lo;
    report.hi = shard.hi;
    report.attempts = attempts[i];
    report.resumed = resumed[i] != 0;
    report.completed = out.delivered && out.complete;
    report.seconds = out.seconds;
    report.models = out.models;
    report.points = out.discoveries.size();
    report.error = out.error;
    result.shards.push_back(report);

    if (!out.delivered) {
      any_failed = true;
      all_complete = false;
      result.base.errors.push_back(
          "shard " + std::to_string(shard.id) + " failed: " +
          (out.error.empty() ? "no result" : out.error));
      continue;
    }
    if (!out.complete) all_complete = false;
    total_models += out.models;
    for (const pareto::Vec& p : out.front) merged.insert(p);
    for (const auto& [point, impl] : out.discoveries) {
      if (witness_by_point.emplace(point, impl).second) {
        union_discoveries.emplace_back(point, impl);
      }
    }
  }

  result.base.front = merged.points();
  const bool want_witnesses =
      options.base.common.collect_witnesses || options.base.common.certify;
  if (want_witnesses) {
    result.base.witnesses.reserve(result.base.front.size());
    for (const pareto::Vec& p : result.base.front) {
      const auto it = witness_by_point.find(p);
      if (it == witness_by_point.end()) {
        result.base.witnesses.emplace_back();
        result.base.errors.push_back("missing witness for " +
                                     pareto::to_string(p));
      } else {
        result.base.witnesses.push_back(it->second);
      }
    }
  }
  result.base.stats.models = total_models;
  result.base.stats.seconds = total.elapsed_seconds();
  result.base.stats.complete = all_complete;
  result.base.stats.reason = all_complete ? StopReason::Completed
                             : any_failed ? StopReason::WorkerFailure
                                          : StopReason::Deadline;

  // ---- certified merge -----------------------------------------------------
  if (options.base.common.certify) {
    std::vector<cert::ShardProof> proofs;
    proofs.reserve(shards.size());
    bool have_proofs = all_complete;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (outcomes[i].proof.empty()) {
        have_proofs = false;
        break;
      }
      proofs.push_back(cert::ShardProof{shards[i].lo, shards[i].hi,
                                        outcomes[i].proof});
    }
    if (have_proofs) {
      result.base.proof =
          cert::merged_proof_to_text(options.shard_objective, proofs);
      result.merged = cert::certify_merged(spec, union_discoveries,
                                           result.base.front, proofs,
                                           options.shard_objective);
      result.base.certified = result.merged.certified;
      result.base.certificate_error = result.merged.error;
    } else {
      result.base.certified = false;
      result.base.certificate_error =
          all_complete ? "a shard delivered no proof stream"
                       : "not every shard proved its band exhausted";
      result.merged.error = result.base.certificate_error;
    }
  }

  events.emit(obs::EventKind::RunEnd,
              static_cast<std::int64_t>(result.base.front.size()),
              static_cast<std::int64_t>(total_models), all_complete ? 1 : 0);
  if (events.sink != nullptr) events.sink->flush();

  // ---- metrics -------------------------------------------------------------
  if (obs::MetricsRegistry* reg = options.base.common.metrics;
      reg != nullptr) {
    reg->counter("distributed.shards").set(shards.size());
    reg->counter("distributed.processes").set(result.processes);
    reg->counter("distributed.models").set(total_models);
    std::uint64_t requeues = 0;
    std::uint64_t launches = 0;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (attempts[i] > 1) requeues += attempts[i] - 1;
      launches += attempts[i];
      reg->gauge("distributed.shard" + std::to_string(shards[i].id) +
                 ".seconds")
          .set(outcomes[i].seconds);
    }
    reg->counter("distributed.requeues").set(requeues);
    // Total launches including first attempts — requeues tells how often
    // workers died, requeue_attempts how much launch work the run cost.
    reg->counter("distributed.requeue_attempts").set(launches);
    reg->gauge("distributed.wall_seconds").set(result.base.stats.seconds);
  }

  return result;
}

}  // namespace aspmt::dse
