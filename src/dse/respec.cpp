#include "dse/respec.hpp"

#include <algorithm>
#include <thread>

#include "dse/checkpoint.hpp"
#include "dse/explorer.hpp"
#include "dse/warmstart.hpp"
#include "ea/nsga2.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "synth/validator.hpp"

namespace aspmt::dse {
namespace {

// FNV-1a over typed fields.  Every value is length- or count-prefixed so
// section digests never collide by concatenation reshuffling alone.
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;

  void byte(unsigned char b) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
};

}  // namespace

SectionDigests spec_sections(const synth::Specification& spec) {
  SectionDigests d;
  {
    // Application topology: task identity plus the message DAG.  Anything
    // here invalidates witnesses (the genotype is indexed by task).
    Fnv h;
    h.u64(spec.tasks().size());
    for (const synth::Task& t : spec.tasks()) h.str(t.name);
    h.u64(spec.messages().size());
    for (const synth::Message& m : spec.messages()) {
      h.str(m.name);
      h.u64(m.src);
      h.u64(m.dst);
    }
    d.tasks = h.h;
  }
  {
    // Architecture structure: resources, their kinds/capacities, the link
    // graph and the hop bound — everything that shapes routing variables.
    Fnv h;
    h.u64(spec.resources().size());
    for (const synth::Resource& r : spec.resources()) {
      h.str(r.name);
      h.u64(static_cast<std::uint64_t>(r.kind));
      h.u64(r.capacity);
    }
    h.u64(spec.links().size());
    for (const synth::Link& l : spec.links()) {
      h.u64(l.from);
      h.u64(l.to);
    }
    h.u64(spec.max_hops);
    d.resources = h.h;
  }
  {
    // Mapping option structure: which (task, resource) pairs exist, in
    // order.  Equal tasks+resources+mappings digests mean the encoding's
    // variable layout is reproduced bit-for-bit.
    Fnv h;
    h.u64(spec.mappings().size());
    for (const synth::MappingOption& m : spec.mappings()) {
      h.u64(m.task);
      h.u64(m.resource);
    }
    d.mappings = h.h;
  }
  {
    // Every numeric coefficient: WCETs, energies, costs, link weights,
    // payloads and the deadline.  Changing only these leaves the variable
    // layout intact — learnt clauses from the old session stay *speakable*
    // (not necessarily true, which is what the replay guard is for).
    Fnv h;
    for (const synth::MappingOption& m : spec.mappings()) {
      h.i64(m.wcet);
      h.i64(m.energy);
    }
    for (const synth::Resource& r : spec.resources()) h.i64(r.cost);
    for (const synth::Link& l : spec.links()) {
      h.i64(l.hop_delay);
      h.i64(l.hop_energy);
    }
    for (const synth::Message& m : spec.messages()) h.i64(m.payload);
    h.i64(spec.latency_bound);
    d.objectives = h.h;
  }
  {
    // Objective-tree identity: declared scenarios plus the combinator axis
    // expressions.  A classic spec (no declarations) hashes to the fixed
    // default_tree_digest(), which is what pre-v5 checkpoints assume.
    Fnv h;
    h.u64(spec.scenarios().size());
    for (const synth::Scenario& s : spec.scenarios()) {
      h.str(s.name);
      h.u64(s.factor.size());
      for (const std::int64_t f : s.factor) h.i64(f);
    }
    h.u64(spec.objective_exprs().size());
    for (const synth::ObjectiveExpr& e : spec.objective_exprs()) {
      h.str(synth::to_string(e));
    }
    d.tree = h.h;
  }
  return d;
}

std::uint64_t default_tree_digest() noexcept {
  Fnv h;
  h.u64(0);  // no scenarios
  h.u64(0);  // no objective expressions
  return h.h;
}

const char* delta_class_name(DeltaClass c) noexcept {
  switch (c) {
    case DeltaClass::Identical: return "identical";
    case DeltaClass::ClauseSafe: return "clause-safe";
    case DeltaClass::ArchiveSafe: return "archive-safe";
    case DeltaClass::Unsafe: return "unsafe";
  }
  return "unknown";
}

DeltaReport classify_delta(const SectionDigests& prev,
                           const SectionDigests& next) {
  DeltaReport r;
  r.tasks_changed = prev.tasks != next.tasks;
  r.resources_changed = prev.resources != next.resources;
  r.mappings_changed = prev.mappings != next.mappings;
  r.objectives_changed = prev.objectives != next.objectives;
  r.tree_changed = prev.tree != next.tree;
  if (r.tasks_changed || r.tree_changed) {
    // A changed objective tree redefines what a Pareto point *is* — axis
    // count, axis semantics, dominance geometry — so neither the archive nor
    // any learnt dominance clause survives: cold start.
    r.cls = DeltaClass::Unsafe;
  } else if (r.resources_changed || r.mappings_changed) {
    r.cls = DeltaClass::ArchiveSafe;
  } else if (r.objectives_changed) {
    r.cls = DeltaClass::ClauseSafe;
  } else {
    r.cls = DeltaClass::Identical;
  }
  return r;
}

DeltaReport classify_checkpoint(const Checkpoint& prev,
                                const synth::Specification& next) {
  if (!prev.has_sections) {
    // v1/v2 checkpoint: only the combined fingerprint exists, so the delta
    // is all-or-nothing.
    DeltaReport r;
    r.cls = prev.spec_fingerprint == spec_fingerprint(next)
                ? DeltaClass::Identical
                : DeltaClass::Unsafe;
    return r;
  }
  return classify_delta(prev.sections, spec_sections(next));
}

std::vector<std::vector<asp::Lit>> decode_replay(const ClauseReplay& replay,
                                                 std::uint32_t base_vars) {
  std::vector<std::vector<asp::Lit>> out;
  if (replay.base_vars != base_vars || base_vars == 0) return out;
  out.reserve(replay.clauses.size());
  for (const std::vector<std::int32_t>& c : replay.clauses) {
    std::vector<asp::Lit> lits;
    lits.reserve(c.size());
    bool in_range = !c.empty();
    for (const std::int32_t l : c) {
      const auto v = static_cast<std::uint32_t>(l < 0 ? -l : l);
      if (l == 0 || v > base_vars) {
        in_range = false;
        break;
      }
      lits.push_back(asp::Lit::make(v - 1, l > 0));
    }
    if (in_range) out.push_back(std::move(lits));
  }
  return out;
}

namespace {

/// Convert a checkpointed witness into a seed candidate for `new_spec`.
/// The witness's global option indices come from the *old* spec; under an
/// unchanged mapping section they coincide with the new ones, otherwise the
/// bound resource is matched by id.  The genotype decode recomputes routes,
/// schedule and objectives against the new spec and rejects anything
/// infeasible there — nothing from the checkpoint is trusted.
bool reseed_witness(const synth::Specification& new_spec,
                    const synth::Implementation& old_impl,
                    WarmSeedCandidate& out) {
  const std::size_t n_tasks = new_spec.tasks().size();
  if (old_impl.option_of_task.size() != n_tasks) return false;
  ea::Genotype g;
  g.option.resize(n_tasks, 0);
  g.priority.resize(n_tasks, 0.0);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    const std::vector<std::size_t>& opts =
        new_spec.mappings_of(static_cast<synth::TaskId>(t));
    if (opts.empty()) return false;
    const std::size_t old_global = old_impl.option_of_task[t];
    std::size_t local = 0;
    bool found = false;
    for (std::size_t i = 0; i < opts.size(); ++i) {
      if (opts[i] == old_global) {
        local = i;
        found = true;
        break;
      }
    }
    if (!found && t < old_impl.binding.size()) {
      for (std::size_t i = 0; i < opts.size(); ++i) {
        if (new_spec.mappings()[opts[i]].resource == old_impl.binding[t]) {
          local = i;
          break;
        }
      }
    }
    g.option[t] = local;
    // Reproduce the old schedule order: earlier old start = higher priority.
    g.priority[t] =
        t < old_impl.start.size() ? -static_cast<double>(old_impl.start[t]) : 0.0;
  }
  synth::Implementation impl;
  if (!ea::decode_genotype(new_spec, g, impl)) return false;
  out.point = synth::recompute_objectives(new_spec, impl);
  out.impl = std::move(impl);
  return true;
}

}  // namespace

ReexploreResult reexplore(const Checkpoint& prev,
                          const synth::Specification& new_spec,
                          const ReexploreOptions& options) {
  ReexploreResult result;
  ReuseStats& reuse = result.reuse;
  reuse.delta = classify_checkpoint(prev, new_spec);
  const DeltaClass cls = reuse.delta.cls;

  ParallelExploreOptions run = options.base;
  CommonOptions& common = run.common;
  // Reuse flows exclusively through the (certifiable) warm-start gate and
  // the guarded replay — never through `resume`, whose seeds skip
  // re-validation and forfeit certification.
  common.resume = nullptr;
  common.warm_start.external.clear();
  common.clause_replay = nullptr;

  // Archive reuse: every checkpoint witness is re-decoded against the NEW
  // spec; survivors enter the warm gate (validate → antichain → inject),
  // which also emits their F proof steps, keeping the run certifiable.
  if (cls != DeltaClass::Unsafe) {
    for (const synth::Implementation& w : prev.witnesses) {
      if (w.option_of_task.empty()) continue;
      ++reuse.archive_candidates;
      WarmSeedCandidate cand;
      if (!reseed_witness(new_spec, w, cand)) continue;
      ++reuse.archive_reused;
      common.warm_start.external.push_back(std::move(cand));
    }
  }

  // Clause reuse: only when the variable layout provably survived the edit.
  // The dump is re-validated here (a checkpoint struct handed to us need not
  // have gone through the parser); invalid clauses are dropped, and the
  // whole dump degrades to nothing on a base mismatch.
  ClauseReplay replay;
  if ((cls == DeltaClass::Identical || cls == DeltaClass::ClauseSafe) &&
      prev.clause_base_vars > 0 && !prev.clauses.empty()) {
    reuse.clause_candidates = prev.clauses.size();
    replay.base_vars = prev.clause_base_vars;
    for (const std::vector<std::int32_t>& c : prev.clauses) {
      if (replay.clauses.size() >= options.max_replay_clauses) break;
      bool valid = !c.empty();
      for (const std::int32_t l : c) {
        const auto v = static_cast<std::uint32_t>(l < 0 ? -l : l);
        if (l == 0 || v > prev.clause_base_vars) {
          valid = false;
          break;
        }
      }
      if (valid) replay.clauses.push_back(c);
    }
    if (!replay.clauses.empty()) {
      common.clause_replay = &replay;
      reuse.clauses_replayed = replay.clauses.size();
    }
  }

  std::size_t threads =
      run.threads != 0 ? run.threads : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  // Slice resumption.  A v4 checkpoint persists the previous session's
  // slice bounds, so the scheduler reseeds the *identical* partition (slice
  // bounds are pure work-partitioning heuristics — safe under every delta
  // class that reuses anything).  Without them, fall back to PR 7 behavior:
  // the scheduler derives a fresh partition from the reused front.
  if (threads > 1 && cls != DeltaClass::Unsafe && !prev.slice_bounds.empty()) {
    run.slice_bounds = prev.slice_bounds;
    reuse.slices_resumed = prev.slice_bounds.size();
  } else if (threads > 1 && common.warm_start.external.size() >= 2) {
    std::vector<pareto::Vec> pts;
    pts.reserve(common.warm_start.external.size());
    for (const WarmSeedCandidate& c : common.warm_start.external) {
      pts.push_back(c.point);
    }
    SliceScheduler probe;
    if (probe.seed(pts, 2 * (threads - 1))) reuse.slices_resumed = probe.pending();
  }

  reuse.cold_start =
      common.warm_start.external.empty() && common.clause_replay == nullptr;

  // Pre-run observability: the run's own collector is not up yet and this
  // function is single-threaded here, so the events go straight to the sink.
  if (common.sink != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::RespecDelta;
    e.a = static_cast<std::int64_t>(cls);
    e.b = reuse.delta.section_mask();
    e.c = reuse.cold_start ? 1 : 0;
    common.sink->on_event(e);
    e.kind = obs::EventKind::RespecReuse;
    e.a = static_cast<std::int64_t>(reuse.archive_reused);
    e.b = static_cast<std::int64_t>(reuse.clauses_replayed);
    e.c = static_cast<std::int64_t>(reuse.slices_resumed);
    common.sink->on_event(e);
  }

  if (threads <= 1) {
    ExploreOptions seq;
    seq.common = common;
    result.base = explore(new_spec, seq);
  } else {
    ParallelExploreResult pr = explore_parallel(new_spec, run);
    result.base = std::move(pr.base);
  }

  if (common.metrics != nullptr) {
    obs::MetricsRegistry& m = *common.metrics;
    m.counter("respec.archive_candidates").set(reuse.archive_candidates);
    m.counter("respec.archive_reused").set(reuse.archive_reused);
    m.counter("respec.clause_candidates").set(reuse.clause_candidates);
    m.counter("respec.clauses_replayed").set(reuse.clauses_replayed);
    m.counter("respec.slices_resumed").set(reuse.slices_resumed);
    m.gauge("respec.delta_class").set(static_cast<double>(cls));
    m.gauge("respec.reuse_rate").set(reuse.reuse_rate());
    m.gauge("respec.cold_start").set(reuse.cold_start ? 1.0 : 0.0);
  }
  return result;
}

}  // namespace aspmt::dse
