// dse::CommonOptions — the single definition of every knob shared by the
// sequential and the portfolio explorer.
//
// Both ExploreOptions and ParallelExploreOptions embed one CommonOptions by
// composition (`opts.common.time_limit_seconds = ...`); the wrapper structs
// only add their mode-specific extras (epsilon; threads/seed/shards).  No
// field is declared twice across the two explorer headers, and anything
// attachable in one place — budgets, checkpoints, fault plans, and the
// observability sink/registry — is attachable to both explorers the same
// way.
#pragma once

#include <cstdint>
#include <string>

#include "asp/solver.hpp"
#include "dse/warmstart.hpp"

namespace aspmt::obs {
class EventSink;
class MetricsRegistry;
}  // namespace aspmt::obs

namespace aspmt::dse {

class Budget;
struct Checkpoint;
struct ClauseReplay;
struct FaultPlan;

struct CommonOptions {
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  bool partial_evaluation = true;   ///< Figure 3 ablation switch
  std::string archive_kind = "quadtree";  ///< or "linear" (Figure 4 ablation)
  bool collect_witnesses = true;
  /// After every model, immediately descend to a Pareto-optimal point by
  /// re-solving under activation-guarded bounds f <= v: mediocre interim
  /// points never enter the archive, so dominance pruning is maximal from
  /// the first insertion on.
  bool drill_down = true;
  /// Binding-pair floor bounds in the encoding (ablation switch; disabling
  /// never changes the front, only the pruning power).
  bool objective_floors = true;
  /// Certified mode: proof-log the whole session, validate every discovered
  /// witness with synth::Validator, and machine-check the terminating Unsat
  /// proof with the independent checker — on success the result's
  /// `certified` flag asserts the front is exactly the Pareto front of the
  /// declared system.  Forces witness collection on and objective floors
  /// off (floor explanations are not independently re-derivable; the front
  /// is unaffected).  Incompatible with a non-empty epsilon.
  bool certify = false;
  asp::SolverOptions solver_options{};  ///< portfolio workers diversify this
  /// Hybrid heuristic–exact pipeline (warmstart.hpp): a budgeted heuristic
  /// pass whose validated candidates seed the archive before solving, so
  /// dominance pruning bites from the first conflict.  Exactness-preserving:
  /// every seed is re-validated and proof-logged, and `certify` still
  /// certifies warm runs end-to-end (unlike `resume`, whose points carry no
  /// in-stream derivations).
  WarmStartOptions warm_start;

  // ---- fault-tolerant runtime (see budget.hpp / checkpoint.hpp) ----------
  std::uint64_t conflict_budget = 0;  ///< 0 = unlimited (total over workers)
  std::size_t mem_limit_mb = 0;       ///< 0 = unlimited; ceiling on peak RSS
  /// External budget/token (CLI signal handling, embedding).  When set it
  /// governs the run and the three numeric limits above are ignored — the
  /// caller configured the Budget itself.
  Budget* budget = nullptr;
  /// Periodic archive snapshots ("" = off), written atomically.
  std::string checkpoint_path;
  double checkpoint_interval_seconds = 30.0;
  /// Warm start: seed the archive (and witness table) from a loaded
  /// checkpoint.  Rejected with a recorded error when the spec fingerprint
  /// does not match.  Resumed runs are not certifiable.
  const Checkpoint* resume = nullptr;
  /// Incremental re-exploration (respec.hpp): learnt clauses from a previous
  /// session, installed behind a fresh assumption guard after encoding.  The
  /// guard makes replay exactness-neutral — the run drops it on the first
  /// Unsat under it and re-proves completeness without — so a stale dump can
  /// delay the proof but never distort the front.  Certifiable: each replayed
  /// clause is logged as a `G` proof step.  Ignored when base_vars does not
  /// match the encoding's variable count.
  const ClauseReplay* clause_replay = nullptr;
  /// v3 checkpoints: cap on learnt clauses dumped per snapshot (0 = none).
  std::size_t checkpoint_clause_dump = 1024;
  /// Fault-injection plan; nullptr = consult ASPMT_FAULT_INJECT.
  const FaultPlan* fault = nullptr;

  // ---- observability (see obs/, DESIGN.md §11) ---------------------------
  /// Event consumer, fed through per-thread lock-free rings and a collector
  /// thread.  nullptr (default) = zero-observer mode: no collector spawns
  /// and every instrumented site reduces to a null-pointer test.  Attaching
  /// a sink never changes the search trajectory, the front, or the proof
  /// stream — only observes them.
  obs::EventSink* sink = nullptr;
  /// When set, the explorer fills this registry at end of run: counter
  /// totals mirror ExploreStats exactly, gauges carry derived rates and
  /// per-worker shares, histograms carry per-insert archive work.
  obs::MetricsRegistry* metrics = nullptr;
};

}  // namespace aspmt::dse
