#include "dse/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "synth/specio.hpp"

namespace aspmt::dse {
namespace {

// Version 2 adds the `warm` line (were heuristic seeds injected into the
// segment's archive history?).  Version 3 adds the per-section spec digests
// (`sections`) and the reusable learnt-clause dump (`clauses` + `c` lines)
// for incremental re-exploration.  Version 4 adds the `slices` line (the
// slice scheduler's objective-0 ceilings) so re-exploration reseeds the
// identical work partition.  Version 5 appends a fifth section digest — the
// objective-tree digest (scenarios + combinator axes) — and gates the
// witness-objectives-equal-point invariant on it: with a non-default tree
// the points are tree-valued while witnesses record the base triple.  Older
// files are still accepted and load with the new fields defaulted; a
// newer-version line inside an older file is rejected as an unknown line
// kind, exactly like any other foreign line.
constexpr std::string_view kHeaderV1 = "aspmt-ckpt 1";
constexpr std::string_view kHeaderV2 = "aspmt-ckpt 2";
constexpr std::string_view kHeaderV3 = "aspmt-ckpt 3";
constexpr std::string_view kHeaderV4 = "aspmt-ckpt 4";
constexpr std::string_view kHeader = "aspmt-ckpt 5";

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Whitespace-separated integer scanner over one line.
class Scanner {
 public:
  explicit Scanner(std::string_view line) : line_(line) {}

  bool word(std::string_view& out) {
    skip();
    if (pos_ >= line_.size()) return false;
    const std::size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] != ' ') ++pos_;
    out = line_.substr(start, pos_ - start);
    return true;
  }

  template <typename T>
  bool integer(T& out) {
    std::string_view tok;
    if (!word(tok)) return false;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), out);
    return res.ec == std::errc{} && res.ptr == tok.data() + tok.size();
  }

  bool done() {
    skip();
    return pos_ >= line_.size();
  }

 private:
  void skip() {
    while (pos_ < line_.size() && line_[pos_] == ' ') ++pos_;
  }
  std::string_view line_;
  std::size_t pos_ = 0;
};

void append_witness(std::ostringstream& out, const synth::Implementation& w) {
  out << "w " << witness_to_text(w) << '\n';
}

std::string parse_witness(Scanner& sc, synth::Implementation& w) {
  std::string_view first;
  if (!sc.word(first)) return "truncated witness line";
  if (first == "-") return "";  // missing witness
  std::size_t tasks = 0;
  {
    const auto res =
        std::from_chars(first.data(), first.data() + first.size(), tasks);
    if (res.ec != std::errc{} || res.ptr != first.data() + first.size() ||
        tasks == 0) {
      return "malformed witness task count";
    }
  }
  w.option_of_task.resize(tasks);
  w.binding.resize(tasks);
  w.start.resize(tasks);
  for (auto& v : w.option_of_task) {
    if (!sc.integer(v)) return "malformed witness options";
  }
  for (auto& v : w.binding) {
    if (!sc.integer(v)) return "malformed witness binding";
  }
  for (auto& v : w.start) {
    if (!sc.integer(v)) return "malformed witness schedule";
  }
  std::size_t routes = 0;
  if (!sc.integer(routes)) return "malformed witness route count";
  w.route.resize(routes);
  for (auto& route : w.route) {
    std::size_t len = 0;
    if (!sc.integer(len)) return "malformed witness route";
    route.resize(len);
    for (auto& l : route) {
      if (!sc.integer(l)) return "malformed witness route";
    }
  }
  if (!sc.integer(w.latency) || !sc.integer(w.energy) || !sc.integer(w.cost) ||
      !sc.done()) {
    return "malformed witness objectives";
  }
  return "";
}

}  // namespace

std::string witness_to_text(const synth::Implementation& w) {
  if (w.option_of_task.empty()) return "-";  // missing-witness sentinel
  std::ostringstream out;
  out << w.option_of_task.size();
  for (const std::size_t o : w.option_of_task) out << ' ' << o;
  for (const synth::ResourceId r : w.binding) out << ' ' << r;
  for (const std::int64_t s : w.start) out << ' ' << s;
  out << ' ' << w.route.size();
  for (const auto& route : w.route) {
    out << ' ' << route.size();
    for (const synth::LinkId l : route) out << ' ' << l;
  }
  out << ' ' << w.latency << ' ' << w.energy << ' ' << w.cost;
  return out.str();
}

std::string witness_from_text(std::string_view text,
                              synth::Implementation& w) {
  w = synth::Implementation{};
  Scanner sc(text);
  return parse_witness(sc, w);
}

std::uint64_t spec_fingerprint(const synth::Specification& spec) {
  return fnv1a(synth::to_text(spec));
}

bool checkpoint_matches(const Checkpoint& ckpt,
                        const synth::Specification& spec) {
  if (ckpt.spec_fingerprint != spec_fingerprint(spec)) return false;
  // The combined hash alone is not enough: compare every section digest a
  // v3 checkpoint carries, so a per-hash collision cannot smuggle a foreign
  // front past the resume gate.
  if (ckpt.has_sections && !(ckpt.sections == spec_sections(spec))) {
    return false;
  }
  return true;
}

std::string to_text(const Checkpoint& ckpt) {
  std::ostringstream out;
  out << kHeader << '\n';
  out << "spec " << ckpt.spec_fingerprint << '\n';
  out << "seed " << ckpt.seed << '\n';
  out << "elapsed-ms " << ckpt.elapsed_ms << '\n';
  out << "warm " << (ckpt.warm_started ? 1 : 0) << '\n';
  if (ckpt.has_sections) {
    out << "sections " << ckpt.sections.tasks << ' ' << ckpt.sections.resources
        << ' ' << ckpt.sections.mappings << ' ' << ckpt.sections.objectives
        << ' ' << ckpt.sections.tree << '\n';
  }
  if (!ckpt.clauses.empty()) {
    out << "clauses " << ckpt.clauses.size() << ' ' << ckpt.clause_base_vars
        << '\n';
    for (const auto& clause : ckpt.clauses) {
      out << "c " << clause.size();
      for (const std::int32_t l : clause) out << ' ' << l;
      out << '\n';
    }
  }
  if (!ckpt.slice_bounds.empty()) {
    out << "slices " << ckpt.slice_bounds.size();
    for (const std::int64_t b : ckpt.slice_bounds) out << ' ' << b;
    out << '\n';
  }
  out << "points " << ckpt.points.size() << '\n';
  for (const pareto::Vec& p : ckpt.points) {
    out << "p " << p.size();
    for (const std::int64_t v : p) out << ' ' << v;
    out << '\n';
  }
  if (!ckpt.witnesses.empty()) {
    for (const synth::Implementation& w : ckpt.witnesses) {
      append_witness(out, w);
    }
  }
  std::string payload = out.str();
  payload += "end ";
  payload += std::to_string(fnv1a(std::string_view(payload)));
  payload += '\n';
  return payload;
}

std::string parse_checkpoint(std::string_view text, Checkpoint& out) {
  out = Checkpoint{};
  // Split off and verify the checksum trailer first: any bit flip anywhere
  // above it is caught before structural parsing begins.
  const std::size_t end_pos = text.rfind("end ");
  if (end_pos == std::string_view::npos ||
      (end_pos != 0 && text[end_pos - 1] != '\n')) {
    return "checkpoint: missing checksum trailer";
  }
  {
    Scanner sc(text.substr(end_pos + 4,
                           text.find('\n', end_pos) == std::string_view::npos
                               ? std::string_view::npos
                               : text.find('\n', end_pos) - end_pos - 4));
    std::uint64_t stated = 0;
    if (!sc.integer(stated) || !sc.done()) {
      return "checkpoint: malformed checksum";
    }
    const std::uint64_t actual = fnv1a(text.substr(0, end_pos + 4));
    if (stated != actual) return "checkpoint: checksum mismatch";
  }
  std::string_view body = text.substr(0, end_pos);

  std::size_t line_no = 0;
  std::size_t declared_points = 0;
  std::size_t declared_clauses = 0;
  bool saw_header = false;
  bool counts_seen = false;
  bool clause_header_seen = false;
  int version = 0;
  while (!body.empty()) {
    const std::size_t nl = body.find('\n');
    std::string_view line = body.substr(0, nl);
    body = nl == std::string_view::npos ? std::string_view{}
                                        : body.substr(nl + 1);
    ++line_no;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line == kHeader) {
        version = 5;
      } else if (line == kHeaderV4) {
        version = 4;
      } else if (line == kHeaderV3) {
        version = 3;
      } else if (line == kHeaderV2) {
        version = 2;
      } else if (line == kHeaderV1) {
        version = 1;
      } else {
        return "checkpoint: bad header";
      }
      saw_header = true;
      continue;
    }
    Scanner sc(line);
    std::string_view kind;
    if (!sc.word(kind)) continue;
    if (kind == "spec") {
      if (!sc.integer(out.spec_fingerprint) || !sc.done()) {
        return "checkpoint: malformed spec fingerprint";
      }
    } else if (kind == "seed") {
      if (!sc.integer(out.seed) || !sc.done()) {
        return "checkpoint: malformed seed";
      }
    } else if (kind == "elapsed-ms") {
      if (!sc.integer(out.elapsed_ms) || !sc.done()) {
        return "checkpoint: malformed elapsed time";
      }
    } else if (kind == "warm" && version >= 2) {
      int flag = 0;
      if (!sc.integer(flag) || !sc.done() || (flag != 0 && flag != 1)) {
        return "checkpoint: malformed warm-start flag";
      }
      out.warm_started = flag != 0;
    } else if (kind == "sections" && version >= 3) {
      if (!sc.integer(out.sections.tasks) ||
          !sc.integer(out.sections.resources) ||
          !sc.integer(out.sections.mappings) ||
          !sc.integer(out.sections.objectives)) {
        return "checkpoint: malformed section digests";
      }
      if (version >= 5) {
        if (!sc.integer(out.sections.tree) || !sc.done()) {
          return "checkpoint: malformed section digests";
        }
      } else {
        // Pre-v5 files predate declared objective trees: default axes.
        if (!sc.done()) return "checkpoint: malformed section digests";
        out.sections.tree = default_tree_digest();
      }
      out.has_sections = true;
    } else if (kind == "clauses" && version >= 3) {
      if (!sc.integer(declared_clauses) ||
          !sc.integer(out.clause_base_vars) || !sc.done() ||
          out.clause_base_vars == 0) {
        return "checkpoint: malformed clause dump header";
      }
      clause_header_seen = true;
    } else if (kind == "c" && version >= 3) {
      if (!clause_header_seen) {
        return "checkpoint: clause before clause dump header";
      }
      std::size_t len = 0;
      if (!sc.integer(len) || len == 0 || len > 1024) {
        return "checkpoint: malformed clause";
      }
      std::vector<std::int32_t> clause(len);
      for (auto& l : clause) {
        if (!sc.integer(l) || l == 0 ||
            static_cast<std::uint64_t>(l < 0 ? -static_cast<std::int64_t>(l)
                                             : l) > out.clause_base_vars) {
          return "checkpoint: clause literal out of range";
        }
      }
      if (!sc.done()) return "checkpoint: malformed clause";
      out.clauses.push_back(std::move(clause));
    } else if (kind == "slices" && version >= 4) {
      std::size_t n = 0;
      if (!sc.integer(n) || n == 0 || n > 4096) {
        return "checkpoint: malformed slice bounds";
      }
      out.slice_bounds.resize(n);
      for (auto& b : out.slice_bounds) {
        if (!sc.integer(b)) return "checkpoint: malformed slice bound";
      }
      if (!sc.done()) return "checkpoint: malformed slice bounds";
    } else if (kind == "points") {
      if (!sc.integer(declared_points) || !sc.done()) {
        return "checkpoint: malformed point count";
      }
      counts_seen = true;
    } else if (kind == "p") {
      std::size_t dims = 0;
      if (!sc.integer(dims) || dims == 0 || dims > 16) {
        return "checkpoint: malformed point";
      }
      pareto::Vec p(dims);
      for (auto& v : p) {
        if (!sc.integer(v)) return "checkpoint: malformed point";
      }
      if (!sc.done()) return "checkpoint: malformed point";
      out.points.push_back(std::move(p));
    } else if (kind == "w") {
      synth::Implementation w;
      const std::string err = parse_witness(sc, w);
      if (!err.empty()) return "checkpoint: " + err;
      out.witnesses.push_back(std::move(w));
    } else {
      return "checkpoint: unknown line kind '" + std::string(kind) + "'";
    }
  }
  if (!saw_header) return "checkpoint: empty file";
  if (!counts_seen || out.points.size() != declared_points) {
    return "checkpoint: point count mismatch";
  }
  if (out.clauses.size() != declared_clauses) {
    return "checkpoint: clause count mismatch";
  }
  if (!out.witnesses.empty() && out.witnesses.size() != out.points.size()) {
    return "checkpoint: witness count mismatch";
  }
  // Structural invariants: sorted lexicographically, uniform dimension,
  // mutually non-dominated, witness objectives matching their points.
  for (std::size_t i = 0; i < out.points.size(); ++i) {
    if (out.points[i].size() != out.points.front().size()) {
      return "checkpoint: inconsistent point dimensions";
    }
    if (i > 0 && !(out.points[i - 1] < out.points[i])) {
      return "checkpoint: points not sorted";
    }
    for (std::size_t j = 0; j < out.points.size(); ++j) {
      if (i != j && pareto::weakly_dominates(out.points[j], out.points[i])) {
        return "checkpoint: points not mutually non-dominated";
      }
    }
    if (!out.witnesses.empty() && !out.witnesses[i].option_of_task.empty()) {
      const synth::Implementation& w = out.witnesses[i];
      if (w.binding.size() != w.option_of_task.size() ||
          w.start.size() != w.option_of_task.size()) {
        return "checkpoint: witness shape mismatch";
      }
      // Witnesses record the base (latency, energy, cost) triple.  Only
      // under the default objective tree is that also the Pareto point; with
      // declared combinator axes the spec-aware resume path re-validates via
      // synth::recompute_objectives instead.
      const bool default_tree =
          !out.has_sections || out.sections.tree == default_tree_digest();
      if (default_tree && w.objectives() != out.points[i]) {
        return "checkpoint: witness objectives do not match point";
      }
    }
  }
  return "";
}

std::string atomic_write_file(const std::string& path, std::string_view text,
                              bool sync_fail) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return "durable write: cannot open '" + tmp + "' for writing";
  std::size_t written = 0;
  while (written < text.size()) {
    const ::ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      return "durable write: write to '" + tmp + "' failed";
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: a crash after the rename must never expose a file
  // whose checksum was computed over bytes that never reached the disk.
  // A failed fsync degrades durability but not atomicity — the rename still
  // publishes a complete, checksummed file — so we finish the write and
  // report the degradation for the caller to surface.
  bool durable = true;
  if (sync_fail || ::fsync(fd) != 0) durable = false;
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return "durable write: close of '" + tmp + "' failed";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return "durable write: rename to '" + path + "' failed";
  }
  // fsync the parent directory so the rename itself survives a crash.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    if (sync_fail || ::fsync(dfd) != 0) durable = false;
    ::close(dfd);
  } else {
    durable = false;
  }
  if (!durable) {
    return "durable write: fsync of '" + path +
           "' failed (durability degraded)";
  }
  return "";
}

std::string save_checkpoint(const Checkpoint& ckpt, const std::string& path,
                            bool inject_corruption, bool sync_fail) {
  std::string text = to_text(ckpt);
  if (inject_corruption && text.size() > 20) {
    text[text.size() / 2] ^= 0x20;  // damage the payload post-checksum
  }
  const std::string err = atomic_write_file(path, text, sync_fail);
  if (!err.empty() && err.find("durability degraded") != std::string::npos) {
    return "checkpoint: fsync of '" + path + "' failed (durability degraded)";
  }
  if (!err.empty()) return "checkpoint: " + err;
  return "";
}

std::string load_checkpoint(const std::string& path, Checkpoint& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "checkpoint: cannot read '" + path + "'";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_checkpoint(buffer.str(), out);
}

std::string CheckpointWriter::write_if_due(const Checkpoint& ckpt) {
  if (!due()) return "";
  std::unique_lock lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock() || !due()) return "";  // another worker is writing
  const std::string err = save_checkpoint(ckpt, path_, corrupt_, sync_fail_);
  timer_.restart();
  return err;
}

std::string CheckpointWriter::write(const Checkpoint& ckpt) {
  const std::lock_guard lock(mutex_);
  const std::string err = save_checkpoint(ckpt, path_, corrupt_, sync_fail_);
  timer_.restart();
  return err;
}

}  // namespace aspmt::dse
