// Residual enforcement of `axis <= bound` constraints on combinator axes.
//
// Weighted and lexicographic axes cannot be fully decomposed into child
// theory bounds (ObjectiveTerm::push_bound returns false for them), so the
// ObjectiveManager registers the undischarged remainder here.  Enforcement
// is conflict-only: whenever the axis' tree lower bound exceeds an active
// bound, the propagator injects the nogood
//
//   {~act} ∪ ~explain(axis, bound + 1)
//
// justified as a CB theory lemma over the OB bound declaration.  This is
// weaker than per-literal propagation but *exact*: tree lower bounds equal
// the axis value on total assignments, so no over-bound model survives
// check(), and the sound partial pushdowns installed alongside carry most of
// the pruning.  Bounds accumulate like theory bounds do — an activation
// literal that leaves the trail simply deactivates its bound.
#pragma once

#include <cstdint>
#include <vector>

#include "asp/literal.hpp"
#include "asp/propagator.hpp"

namespace aspmt::asp {
class ProofLog;
class Solver;
}  // namespace aspmt::asp

namespace aspmt::dse {

class ObjectiveManager;

class CombinatorBoundPropagator final : public asp::TheoryPropagator {
 public:
  explicit CombinatorBoundPropagator(const ObjectiveManager& objectives)
      : objectives_(objectives) {}

  /// Mirror OB declarations into a proof log (attach before any bound).
  void set_proof(asp::ProofLog* proof) noexcept { proof_ = proof; }

  /// Register `axis <= bound` while `activation` holds (kLitUndef = always;
  /// unconditional bounds must only ever tighten, mirroring the theory
  /// propagators' contract).
  void add_bound(std::size_t axis, std::int64_t bound, asp::Lit activation);

  [[nodiscard]] std::size_t bound_count() const noexcept {
    return bounds_.size();
  }

  // -- TheoryPropagator ----------------------------------------------------
  bool propagate(asp::Solver& solver) override { return enforce(solver); }
  void undo_to(const asp::Solver&, std::size_t) override {}
  bool check(asp::Solver& solver) override { return enforce(solver); }

 private:
  bool enforce(asp::Solver& solver);

  struct Bound {
    std::size_t axis = 0;
    std::int64_t bound = 0;
    asp::Lit activation = asp::kLitUndef;
  };

  const ObjectiveManager& objectives_;
  std::vector<Bound> bounds_;
  asp::ProofLog* proof_ = nullptr;
};

}  // namespace aspmt::dse
