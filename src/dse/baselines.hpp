// Baseline exact methods the paper series compares against.
//
// * enumerate_and_filter — enumerate every implementation with blocking
//   clauses over the decision atoms and filter dominated objective vectors
//   afterwards (the naive exact approach; exponential in practice).
// * lexicographic_epsilon — iterative exact front construction: repeatedly
//   find the lexicographically minimal remaining point by single-objective
//   branch-and-bound, then exclude its weakly dominated region through
//   indicator-guarded objective bounds.  Exact, but re-optimises from
//   scratch for every front point and has no dominance propagation.
// * nsga2 (ea/nsga2.hpp) is the heuristic comparator for Figure 1.
#pragma once

#include <cstdint>
#include <vector>

#include "pareto/point.hpp"
#include "synth/spec.hpp"

namespace aspmt::dse {

struct BaselineResult {
  std::vector<pareto::Vec> front;  ///< sorted lexicographically
  std::uint64_t models = 0;        ///< enumerated models / B&B models
  std::uint64_t conflicts = 0;
  double seconds = 0.0;
  bool complete = false;  ///< exactness proven within the time limit
};

/// B1: full enumeration + non-dominated filtering.
[[nodiscard]] BaselineResult enumerate_and_filter(const synth::Specification& spec,
                                                  double time_limit_seconds = 0.0);

/// B2 (multi-shot): iterative lexicographic ε-constraint construction of the
/// exact front on ONE persistent solver — learned clauses and theory state
/// survive across front points (the strongest classical comparator).
[[nodiscard]] BaselineResult lexicographic_epsilon(const synth::Specification& spec,
                                                   double time_limit_seconds = 0.0);

/// B3 (single-shot): the same algorithm, but the solver is rebuilt from
/// scratch for every front point — the re-grounding/re-solving workflow of a
/// conventional one-shot solver pipeline that the multi-shot ASPmT papers
/// argue against.
[[nodiscard]] BaselineResult lexicographic_epsilon_cold(
    const synth::Specification& spec, double time_limit_seconds = 0.0);

}  // namespace aspmt::dse
