// The dominance propagator — the heart of exact multi-objective DSE with
// ASPmT.
//
// It holds the current Pareto archive.  At every propagation fixpoint it
// assembles the objective-space *lower-bound corner* of the current partial
// assignment (partial assignment evaluation) and asks the archive for a
// weak dominator: if some archived point p is <= the corner componentwise,
// then every completion of this partial assignment is weakly dominated by p
// and the whole subtree is pruned with a theory nogood built from the
// per-objective bound explanations.  When the enumeration finally runs dry,
// the archive *is* the exact Pareto front.
//
// Soundness across the run: a point is only ever removed from the archive
// when a new point dominates it, and the blocked region of the dominator is
// a superset of the removed point's region — so clauses learned from older
// archive states remain valid.
#pragma once

#include <set>

#include "asp/propagator.hpp"
#include "dse/objective_manager.hpp"
#include "pareto/archive.hpp"

namespace aspmt::asp {
class ProofLog;
}

namespace aspmt::pareto {
class ConcurrentArchive;
}

namespace aspmt::obs {
class Recorder;
}

namespace aspmt::dse {

class DominancePropagator final : public asp::TheoryPropagator {
 public:
  /// Both references must outlive the propagator.
  DominancePropagator(const ObjectiveManager& objectives, pareto::Archive& archive)
      : objectives_(objectives), archive_(archive) {}

  /// Record a newly found implementation's objective vector.  Returns true
  /// iff the point entered the archive (i.e. was not weakly dominated).
  bool insert(const pareto::Vec& point) { return archive_.insert(point); }

  [[nodiscard]] const pareto::Archive& archive() const noexcept { return archive_; }

  /// Ablation switch: when disabled, dominance is only enforced on total
  /// assignments (the pre-DATE'17 behaviour).
  void set_partial_evaluation(bool enabled) noexcept { partial_eval_ = enabled; }

  /// Enable ε-dominance: additionally block every region some archive point
  /// p epsilon-dominates (f >= p - eps componentwise).  The run then
  /// terminates with an ε-approximate Pareto set: every true front point q
  /// has an archive point p with p <= q + eps.  Empty vector (default) means
  /// exact exploration.  Must be set before solving starts and never
  /// relaxed (blocked regions may only grow).
  void set_epsilon(pareto::Vec epsilon) { epsilon_ = std::move(epsilon); }

  /// Number of subtrees pruned by dominance conflicts.
  [[nodiscard]] std::uint64_t prunings() const noexcept { return prunings_; }

  /// Observability: emit a DominancePrune event on every pruning conflict.
  /// Only the (rare) conflict path records; the no-dominator fast path of
  /// enforce() is untouched.  nullptr (default) disables recording.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Portfolio mode: treat the local archive as a snapshot of `shared` and
  /// keep it fresh.  Every enforce() polls the shared generation counter
  /// (one relaxed atomic load — lock-free) and, only when it moved, pulls
  /// the newly published points into the local archive, so dominance
  /// pruning tightens mid-search as peer workers discover better points.
  /// Always sound: the local snapshot lags the shared front, and
  /// dominance-blocked regions only ever grow.
  void attach_shared(pareto::ConcurrentArchive* shared) noexcept {
    shared_ = shared;
    synced_generation_ = 0;
  }

  /// Pull any pending shared-front updates into the local archive now
  /// (workers call this right after publishing their own point).
  void sync_shared();

  /// Certified portfolio mode: emit an `F` feasible-point step into `proof`
  /// for every point sync_shared() pulls from the shared front (each point
  /// at most once).  Every shared point a DOM lemma of this worker may cite
  /// — peer discoveries, warm-start seeds, the worker's own publications —
  /// then has its F step earlier in this worker's stream, which is what the
  /// trust-mode checker (aspmt_check without --require-unsat's certify
  /// companion) demands.  nullptr (default) disables emission.
  void set_proof(asp::ProofLog* proof) noexcept { proof_ = proof; }

  // -- TheoryPropagator ----------------------------------------------------
  bool propagate(asp::Solver& solver) override {
    return partial_eval_ ? enforce(solver) : true;
  }
  void undo_to(const asp::Solver&, std::size_t) override {}
  bool check(asp::Solver& solver) override { return enforce(solver); }

 private:
  bool enforce(asp::Solver& solver);

  const ObjectiveManager& objectives_;
  pareto::Archive& archive_;
  pareto::Vec corner_;  // scratch, avoids per-fixpoint allocation
  pareto::Vec epsilon_;  // empty = exact
  std::uint64_t prunings_ = 0;
  bool partial_eval_ = true;
  pareto::ConcurrentArchive* shared_ = nullptr;  // non-owning; may be null
  obs::Recorder* recorder_ = nullptr;            // non-owning; may be null
  asp::ProofLog* proof_ = nullptr;               // non-owning; may be null
  std::uint64_t synced_generation_ = 0;
  std::vector<pareto::Vec> sync_buffer_;  // scratch for fetch_updates
  std::set<pareto::Vec> proof_emitted_;   // F-step dedup across syncs
};

}  // namespace aspmt::dse
