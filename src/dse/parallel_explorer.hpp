// Parallel portfolio exploration — N diversified ASPmT workers, one shared
// Pareto front.
//
// Every worker owns a full independent SynthContext (solver, theories,
// encoding, dominance propagator) configured with a distinct seed, restart
// base and phase polarity, and publishes every accepted model into one
// shared ConcurrentArchive.  Each worker's dominance propagator treats its
// thread-local archive as a snapshot of the shared front and refreshes it
// lazily off a lock-free generation counter, so a point found by any worker
// starts pruning every other worker's search mid-flight.
//
// Work partitioning: as soon as the shared front spans a range in the first
// objective (immediately, under a warm start), it is carved into roughly
// 2*(threads-1) epsilon-constraint slices `latency <= split_i`, each scored
// by its remaining-hypervolume gap (pareto::slice_hypervolume_gaps).  A
// shared SliceScheduler (warmstart.hpp) hands the highest-gap pending slice
// to whichever worker asks next; a worker that exhausts its slice claims
// another, and only falls back to the unconstrained problem when the queue
// is empty — search effort concentrates where the most unexplained
// objective-space volume remains instead of being statically pinned to
// worker indices.  Worker 0 always runs the unmodified sequential strategy.
//
// Exactness: slices and diversification only change the *order* of
// discovery.  The run ends when some worker proves the unconstrained
// problem unsatisfiable under dominance pruning — at that moment the shared
// archive weakly dominates every feasible point and, since every archived
// point is itself a feasible model, it *is* the unique exact Pareto front.
// Hence the front is identical to the sequential explorer's for every
// thread count (the test layer enforces this point-for-point).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "asp/solver.hpp"
#include "dse/explorer.hpp"
#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::dse {

struct ParallelExploreOptions {
  /// Everything shared with the sequential explorer — limits, archive kind,
  /// certification, fault-tolerant runtime, observability (see options.hpp).
  /// In certified mode every worker proof-logs its own session and the
  /// winning worker's terminating Unsat proof — the completeness
  /// certificate of the whole portfolio — is machine-checked.
  CommonOptions common;
  std::size_t threads = 0;  ///< 0 = std::thread::hardware_concurrency()
  /// Base seed for portfolio diversification; worker w runs with a solver
  /// seed derived from (seed, w).  Worker 0 always keeps the deterministic
  /// default configuration.
  std::uint64_t seed = 1;
  std::size_t archive_shards = 8;  ///< ConcurrentArchive shard count

  /// Distributed objective-space banding (dse/distributed.hpp).  When
  /// active, every worker permanently assumes
  ///   lo <= objective[objective] <= hi
  /// through activation-guarded theory bounds, and the portfolio's
  /// terminating Unsat is concluded under exactly those activations — which
  /// the proof checker turns into a verified *shard box* (see
  /// cert::CheckResult::shard_boxes).  INT64_MIN / INT64_MAX ends install no
  /// bound at all.  The banded objective must be linear (energy or cost in
  /// the standard encoding; latency's difference logic has no sound floor).
  struct ShardBand {
    bool active = false;
    std::size_t objective = 1;
    std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  };
  ShardBand shard;

  /// Pre-seeded slice bounds (checkpoint v4 persistence, shard requeue):
  /// when non-empty the SliceScheduler is built from these objective-0
  /// ceilings before any worker spawns instead of waiting for a front
  /// snapshot that spans a range.
  std::vector<std::int64_t> slice_bounds;
};

/// Per-worker accounting for the CLI report and the consistency tests.
struct WorkerReport {
  std::size_t worker = 0;
  std::uint64_t models = 0;            ///< accepted answer sets
  std::uint64_t slice_models = 0;      ///< found while some slice was active
  std::uint64_t slices_claimed = 0;    ///< slices adopted from the scheduler
  std::uint64_t shared_inserts = 0;    ///< points this worker published first
  std::uint64_t rejected_inserts = 0;  ///< beaten to the archive by a peer
  std::uint64_t prunings = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t theory_clauses = 0;
  std::uint64_t archive_comparisons = 0;  ///< in the local snapshot archive
  std::uint64_t replayed_clauses = 0;     ///< installed behind this worker's guard
  double seconds = 0.0;
  bool proved_complete = false;  ///< this worker closed the global Unsat proof
  bool failed = false;   ///< this worker died; `error` holds the reason
  std::string error;     ///< the contained exception's message, if any
};

/// One contained worker death: which worker and why.  All failures are
/// preserved, not just the first.
struct WorkerError {
  std::size_t worker = 0;
  std::string message;
};

struct ParallelExploreResult {
  /// The portfolio's result in the sequential explorer's shape: front,
  /// witnesses, discoveries (publication order across all workers), proof /
  /// certification outcome, degradations, and stats aggregated over all
  /// workers.  Embedded by composition — the parallel result *is* an
  /// ExploreResult plus per-worker accounting, not a mirror of its fields.
  ExploreResult base;
  /// Every contained worker death, in detection order (worker index +
  /// message — secondary failures are preserved, not dropped).
  std::vector<WorkerError> worker_errors;
  std::vector<WorkerReport> workers;
  /// Every discovered point with its captured witness (not just the final
  /// front — dominated discoveries keep their witnesses too, because shard
  /// proofs reference them through `F` steps).  Filled when certification or
  /// witness collection is on; the distributed merge layer validates the
  /// union of these across shards.
  std::vector<std::pair<pareto::Vec, synth::Implementation>>
      discovery_witnesses;
};

/// Compute the exact Pareto front of `spec` with a portfolio of
/// `options.threads` diversified workers.  With threads == 1 the worker
/// runs inline in the calling thread (no thread is spawned) and follows the
/// sequential explorer's exact strategy.
[[nodiscard]] ParallelExploreResult explore_parallel(
    const synth::Specification& spec, const ParallelExploreOptions& options = {});

}  // namespace aspmt::dse
