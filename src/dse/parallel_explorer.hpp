// Parallel portfolio exploration — N diversified ASPmT workers, one shared
// Pareto front.
//
// Every worker owns a full independent SynthContext (solver, theories,
// encoding, dominance propagator) configured with a distinct seed, restart
// base and phase polarity, and publishes every accepted model into one
// shared ConcurrentArchive.  Each worker's dominance propagator treats its
// thread-local archive as a snapshot of the shared front and refreshes it
// lazily off a lock-free generation counter, so a point found by any worker
// starts pruning every other worker's search mid-flight.
//
// Work partitioning: as soon as the shared front spans a range in the first
// objective, worker w (w >= 1) derives an epsilon-constraint slice
// `latency <= split_w` from the current front and exhausts that slice first
// — the portfolio fills the front from several regions at once instead of
// walking it from one end.  Worker 0 always runs the unmodified sequential
// strategy.
//
// Exactness: slices and diversification only change the *order* of
// discovery.  The run ends when some worker proves the unconstrained
// problem unsatisfiable under dominance pruning — at that moment the shared
// archive weakly dominates every feasible point and, since every archived
// point is itself a feasible model, it *is* the unique exact Pareto front.
// Hence the front is identical to the sequential explorer's for every
// thread count (the test layer enforces this point-for-point).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asp/solver.hpp"
#include "dse/explorer.hpp"
#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::dse {

struct ParallelExploreOptions {
  std::size_t threads = 0;  ///< 0 = std::thread::hardware_concurrency()
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  std::string archive_kind = "quadtree";  ///< local snapshots + shared shards
  bool collect_witnesses = true;
  bool drill_down = true;
  bool partial_evaluation = true;
  bool objective_floors = true;
  /// Base seed for portfolio diversification; worker w runs with a solver
  /// seed derived from (seed, w).  Worker 0 always keeps the deterministic
  /// default configuration.
  std::uint64_t seed = 1;
  std::size_t archive_shards = 8;
  /// Certified mode: every worker proof-logs its own session, every shared
  /// discovery's witness is validated, and the winning worker's terminating
  /// Unsat proof — the completeness certificate of the whole portfolio — is
  /// machine-checked.  Forces witness collection on and objective floors
  /// off (see ExploreOptions::certify).
  bool certify = false;
  asp::SolverOptions solver_options{};  ///< base config; workers diversify

  // ---- fault-tolerant runtime (see budget.hpp / checkpoint.hpp) ----------
  std::uint64_t conflict_budget = 0;  ///< 0 = unlimited, total over workers
  std::size_t mem_limit_mb = 0;       ///< 0 = unlimited; ceiling on peak RSS
  /// External budget/token (CLI signal handling, embedding).  When set it
  /// governs the run and the numeric limits above are ignored.
  Budget* budget = nullptr;
  /// Periodic archive snapshots ("" = off), written atomically by whichever
  /// worker publishes past the interval.
  std::string checkpoint_path;
  double checkpoint_interval_seconds = 30.0;
  /// Warm start from a loaded checkpoint (see ExploreOptions::resume).
  const Checkpoint* resume = nullptr;
  /// Fault-injection plan; nullptr = consult ASPMT_FAULT_INJECT.
  const FaultPlan* fault = nullptr;
};

/// Per-worker accounting for the CLI report and the consistency tests.
struct WorkerReport {
  std::size_t worker = 0;
  std::uint64_t models = 0;            ///< accepted answer sets
  std::uint64_t slice_models = 0;      ///< found while the slice was active
  std::uint64_t shared_inserts = 0;    ///< points this worker published first
  std::uint64_t rejected_inserts = 0;  ///< beaten to the archive by a peer
  std::uint64_t prunings = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t theory_clauses = 0;
  std::uint64_t archive_comparisons = 0;  ///< in the local snapshot archive
  double seconds = 0.0;
  bool proved_complete = false;  ///< this worker closed the global Unsat proof
  bool failed = false;   ///< this worker died; `error` holds the reason
  std::string error;     ///< the contained exception's message, if any
};

/// One contained worker death: which worker and why.  All failures are
/// preserved, not just the first.
struct WorkerError {
  std::size_t worker = 0;
  std::string message;
};

struct ParallelExploreResult {
  std::vector<pareto::Vec> front;  ///< sorted lexicographically
  /// One witness per front point (parallel to `front`), when collected.
  std::vector<synth::Implementation> witnesses;
  /// Shared-archive insertions over time (seconds since start), in
  /// publication order across all workers.
  std::vector<std::pair<double, pareto::Vec>> discoveries;
  /// Certified mode only: true once every shared discovery's witness
  /// validated and the winning worker's proof checker-verified.
  bool certified = false;
  /// Why certification failed (or was unavailable); empty when certified or
  /// not requested.
  std::string certificate_error;
  /// Certified mode only: the winning worker's full proof stream.
  std::string proof;
  /// Every contained worker death, in detection order (worker index +
  /// message — secondary failures are preserved, not dropped).
  std::vector<WorkerError> worker_errors;
  /// Non-fatal degradations outside worker bodies (missing witnesses,
  /// checkpoint I/O failures, rejected resume files).
  std::vector<std::string> errors;
  ExploreStats stats;  ///< aggregated over all workers
  std::vector<WorkerReport> workers;
};

/// Compute the exact Pareto front of `spec` with a portfolio of
/// `options.threads` diversified workers.  With threads == 1 the worker
/// runs inline in the calling thread (no thread is spawned) and follows the
/// sequential explorer's exact strategy.
[[nodiscard]] ParallelExploreResult explore_parallel(
    const synth::Specification& spec, const ParallelExploreOptions& options = {});

}  // namespace aspmt::dse
