#include "pareto/archive.hpp"

#include <algorithm>
#include <stdexcept>

#include "pareto/quadtree.hpp"

namespace aspmt::pareto {

bool LinearArchive::insert(const Vec& p) {
  for (const Vec& q : points_) {
    count_comparison();
    if (weakly_dominates(q, p)) return false;
  }
  std::erase_if(points_, [&](const Vec& q) {
    count_comparison();
    return weakly_dominates(p, q);
  });
  points_.push_back(p);
  return true;
}

std::size_t LinearArchive::erase_dominated_by(const Vec& p) {
  return std::erase_if(points_, [&](const Vec& q) {
    count_comparison();
    return q != p && weakly_dominates(p, q);
  });
}

const Vec* LinearArchive::find_weak_dominator(const Vec& q) const {
  for (const Vec& p : points_) {
    count_comparison();
    if (weakly_dominates(p, q)) return &p;
  }
  return nullptr;
}

std::vector<Vec> LinearArchive::points() const {
  std::vector<Vec> out = points_;
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Archive> make_archive(const std::string& kind,
                                      std::size_t dimensions) {
  if (kind == "linear") return std::make_unique<LinearArchive>();
  if (kind == "quadtree") return std::make_unique<QuadTreeArchive>(dimensions);
  throw std::invalid_argument("unknown archive kind: " + kind);
}

}  // namespace aspmt::pareto
