// Front-quality indicators used by the Figure 1 comparison between the
// exact front and the evolutionary approximation.
#pragma once

#include <cstdint>
#include <vector>

#include "pareto/point.hpp"

namespace aspmt::pareto {

/// Hypervolume dominated by `front` w.r.t. reference point `ref`
/// (minimisation; every front point should be <= ref componentwise — points
/// beyond the reference are clipped away).  Exact recursive slicing; fine
/// for the small fronts of this domain.
[[nodiscard]] double hypervolume(std::vector<Vec> front, const Vec& ref);

/// Additive epsilon indicator eps(A, R): the smallest e such that every
/// reference point r in R is weakly dominated by some a in A shifted by e
/// (a_i - e <= r_i).  Zero iff A covers R.
[[nodiscard]] std::int64_t additive_epsilon(const std::vector<Vec>& approximation,
                                            const std::vector<Vec>& reference);

/// Fraction of reference points that appear (exactly) in `approximation`.
[[nodiscard]] double coverage_ratio(const std::vector<Vec>& approximation,
                                    const std::vector<Vec>& reference);

}  // namespace aspmt::pareto
