// Front-quality indicators used by the Figure 1 comparison between the
// exact front and the evolutionary approximation.
#pragma once

#include <cstdint>
#include <vector>

#include "pareto/point.hpp"

namespace aspmt::pareto {

/// Hypervolume dominated by `front` w.r.t. reference point `ref`
/// (minimisation; every front point should be <= ref componentwise — points
/// beyond the reference are clipped away).  Exact recursive slicing; fine
/// for the small fronts of this domain.
[[nodiscard]] double hypervolume(std::vector<Vec> front, const Vec& ref);

/// Additive epsilon indicator eps(A, R): the smallest e such that every
/// reference point r in R is weakly dominated by some a in A shifted by e
/// (a_i - e <= r_i).  Zero iff A covers R.
[[nodiscard]] std::int64_t additive_epsilon(const std::vector<Vec>& approximation,
                                            const std::vector<Vec>& reference);

/// Fraction of reference points that appear (exactly) in `approximation`.
[[nodiscard]] double coverage_ratio(const std::vector<Vec>& approximation,
                                    const std::vector<Vec>& reference);

/// Remaining-hypervolume estimate per epsilon slice of objective 0.
///
/// `splits` are the ascending interior bounds produced by
/// `ObjectiveManager::epsilon_splits`; slice i is the objective-0 band
/// (splits[i-1], splits[i]] (the first band starts at the front's
/// objective-0 minimum).  The score of a band is the volume of its
/// bounding box — spanned by the band on objective 0 and by the front's
/// per-objective [min, max+1) ranges elsewhere — minus the part of the box
/// already dominated by the (clipped) front.  A large gap means the
/// incumbent front leaves much of the band unexplained, so a worker
/// constrained to that slice has the most hypervolume left to win; this is
/// the score the portfolio scheduler ranks slices by.
///
/// Returns one non-negative score per split; empty when `front` has fewer
/// than two points or `splits` is empty.
[[nodiscard]] std::vector<double> slice_hypervolume_gaps(
    const std::vector<Vec>& front, const std::vector<std::int64_t>& splits);

}  // namespace aspmt::pareto
