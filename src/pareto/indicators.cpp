#include "pareto/indicators.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace aspmt::pareto {
namespace {

/// Recursive slicing over the last dimension (HSO).  `pts` are clipped,
/// non-dominated, and of dimension k >= 1.
double hv_recursive(std::vector<Vec> pts, const Vec& ref, std::size_t k) {
  if (pts.empty()) return 0.0;
  if (k == 1) {
    std::int64_t best = ref[0];
    for (const Vec& p : pts) best = std::min(best, p[0]);
    return static_cast<double>(ref[0] - best);
  }
  // Sort by the last coordinate ascending and sweep slices.
  std::sort(pts.begin(), pts.end(), [k](const Vec& a, const Vec& b) {
    return a[k - 1] < b[k - 1];
  });
  double volume = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::int64_t lo = pts[i][k - 1];
    const std::int64_t hi = (i + 1 < pts.size()) ? pts[i + 1][k - 1] : ref[k - 1];
    if (hi <= lo) continue;
    // Points contributing to this slice: those with last coord <= lo.
    std::vector<Vec> slice;
    for (std::size_t j = 0; j <= i; ++j) {
      slice.push_back(Vec(pts[j].begin(), pts[j].end() - 1));
    }
    slice = non_dominated_filter(std::move(slice));
    volume += static_cast<double>(hi - lo) * hv_recursive(std::move(slice), ref, k - 1);
  }
  return volume;
}

}  // namespace

double hypervolume(std::vector<Vec> front, const Vec& ref) {
  if (front.empty()) return 0.0;
  const std::size_t k = ref.size();
  std::vector<Vec> clipped;
  for (const Vec& p : front) {
    assert(p.size() == k);
    if (weakly_dominates(p, ref)) clipped.push_back(p);
  }
  clipped = non_dominated_filter(std::move(clipped));
  return hv_recursive(std::move(clipped), ref, k);
}

std::int64_t additive_epsilon(const std::vector<Vec>& approximation,
                              const std::vector<Vec>& reference) {
  if (reference.empty()) return 0;
  if (approximation.empty()) return std::numeric_limits<std::int64_t>::max();
  std::int64_t eps = 0;
  for (const Vec& r : reference) {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const Vec& a : approximation) {
      std::int64_t worst = std::numeric_limits<std::int64_t>::min();
      for (std::size_t i = 0; i < r.size(); ++i) {
        worst = std::max(worst, a[i] - r[i]);
      }
      best = std::min(best, worst);
    }
    eps = std::max(eps, best);
  }
  return eps;
}

std::vector<double> slice_hypervolume_gaps(
    const std::vector<Vec>& front, const std::vector<std::int64_t>& splits) {
  if (front.size() < 2 || splits.empty()) return {};
  const std::size_t k = front.front().size();
  // Per-objective envelope of the front.  The upper reference is max+1 so
  // boundary points still contribute volume (same convention as the anytime
  // bench); the lower corner is the optimistic bound for unexplored space.
  Vec lo = front.front();
  Vec hi = front.front();
  for (const Vec& p : front) {
    for (std::size_t i = 0; i < k; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  Vec ref = hi;
  for (std::size_t i = 0; i < k; ++i) ref[i] += 1;

  std::vector<double> gaps;
  gaps.reserve(splits.size());
  std::int64_t band_lo = lo[0];
  for (const std::int64_t band_hi : splits) {
    if (band_hi <= band_lo) {
      gaps.push_back(0.0);
      continue;
    }
    double box = static_cast<double>(band_hi - band_lo);
    for (std::size_t i = 1; i < k; ++i) {
      box *= static_cast<double>(ref[i] - lo[i]);
    }
    // Dominated volume inside the band: clip every front point at or below
    // the band's upper bound to the band's lower edge on objective 0, then
    // measure against a reference capped at the band's upper bound.
    std::vector<Vec> clipped;
    for (const Vec& p : front) {
      if (p[0] > band_hi) continue;
      Vec q = p;
      q[0] = std::max(q[0], band_lo);
      clipped.push_back(std::move(q));
    }
    Vec band_ref = ref;
    band_ref[0] = band_hi;
    const double covered = hypervolume(std::move(clipped), band_ref);
    gaps.push_back(std::max(0.0, box - covered));
    band_lo = band_hi;
  }
  return gaps;
}

double coverage_ratio(const std::vector<Vec>& approximation,
                      const std::vector<Vec>& reference) {
  if (reference.empty()) return 1.0;
  std::size_t hit = 0;
  for (const Vec& r : reference) {
    if (std::find(approximation.begin(), approximation.end(), r) !=
        approximation.end()) {
      ++hit;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(reference.size());
}

}  // namespace aspmt::pareto
