// Pareto archives: the mutable non-dominated set maintained during
// exploration.  Two implementations share one interface so the dominance
// propagator can be parameterised (Figure 4 ablation): a linear-scan list
// and the quad-tree of the ASP-DAC'18 companion paper (quadtree.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "pareto/point.hpp"

namespace aspmt::pareto {

class Archive {
 public:
  virtual ~Archive() = default;

  Archive() = default;
  Archive(const Archive&) = delete;
  Archive& operator=(const Archive&) = delete;

  /// Insert `p` unless it is weakly dominated by an archive point; points
  /// dominated by `p` are evicted.  Returns true iff `p` was inserted.
  virtual bool insert(const Vec& p) = 0;

  /// Some archive point that weakly dominates `q`, or nullptr.  The pointer
  /// is invalidated by the next insert.
  [[nodiscard]] virtual const Vec* find_weak_dominator(const Vec& q) const = 0;

  /// Evict every archived point weakly dominated by `p`, except a point
  /// equal to `p` itself.  Returns the number of evicted points.  This is
  /// exactly the eviction half of insert(); the concurrent sharded archive
  /// uses it to clear foreign shards before inserting into the home shard.
  virtual std::size_t erase_dominated_by(const Vec& p) = 0;

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Snapshot of all points (sorted lexicographically for reproducibility).
  [[nodiscard]] virtual std::vector<Vec> points() const = 0;

  virtual void clear() = 0;

  /// Total dominance comparisons performed (for the Figure 4 ablation).
  [[nodiscard]] std::uint64_t comparisons() const noexcept {
    return comparisons_.load(std::memory_order_relaxed);
  }

 protected:
  // Atomic because the concurrent sharded archive runs const queries under a
  // shared lock, so concurrent readers bump this counter in parallel; the
  // count is a statistic, relaxed ordering suffices.
  mutable std::atomic<std::uint64_t> comparisons_{0};

  void count_comparison() const noexcept {
    comparisons_.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Plain list archive with linear scans.
class LinearArchive final : public Archive {
 public:
  bool insert(const Vec& p) override;
  [[nodiscard]] const Vec* find_weak_dominator(const Vec& q) const override;
  std::size_t erase_dominated_by(const Vec& p) override;
  [[nodiscard]] std::size_t size() const noexcept override { return points_.size(); }
  [[nodiscard]] std::vector<Vec> points() const override;
  void clear() override { points_.clear(); }

 private:
  std::vector<Vec> points_;
};

/// Factory used by benches/CLI: kind is "linear" or "quadtree".
[[nodiscard]] std::unique_ptr<Archive> make_archive(const std::string& kind,
                                                    std::size_t dimensions);

}  // namespace aspmt::pareto
