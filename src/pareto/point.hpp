// Objective vectors and Pareto dominance (minimisation everywhere).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace aspmt::pareto {

/// An objective vector; all objectives are minimised.
using Vec = std::vector<std::int64_t>;

enum class DomRel : std::uint8_t {
  Dominates,     ///< a <= b componentwise and a < b somewhere
  Dominated,     ///< b dominates a
  Equal,         ///< a == b
  Incomparable,  ///< neither
};

/// Pairwise dominance relation of two vectors of equal dimension.
[[nodiscard]] DomRel compare(std::span<const std::int64_t> a,
                             std::span<const std::int64_t> b) noexcept;

/// a <= b componentwise (weak dominance, includes equality).
[[nodiscard]] bool weakly_dominates(std::span<const std::int64_t> a,
                                    std::span<const std::int64_t> b) noexcept;

/// a <= b componentwise and a != b (strict Pareto dominance).
[[nodiscard]] bool dominates(std::span<const std::int64_t> a,
                             std::span<const std::int64_t> b) noexcept;

/// Remove dominated (and duplicate) vectors; result sorted lexicographically.
[[nodiscard]] std::vector<Vec> non_dominated_filter(std::vector<Vec> points);

/// "(a, b, c)" rendering for reports.
[[nodiscard]] std::string to_string(std::span<const std::int64_t> v);

}  // namespace aspmt::pareto
