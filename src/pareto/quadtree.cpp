#include "pareto/quadtree.hpp"

#include <algorithm>
#include <cassert>

namespace aspmt::pareto {

QuadTreeArchive::QuadTreeArchive(std::size_t dimensions)
    : dims_(dimensions), fanout_(1U << dimensions) {
  assert(dimensions >= 1 && dimensions <= 16);
}

std::uint32_t QuadTreeArchive::successorship(const Vec& q,
                                             const Vec& p) const noexcept {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < dims_; ++i) {
    if (q[i] >= p[i]) mask |= (1U << i);
  }
  return mask;
}

std::int32_t QuadTreeArchive::alloc(Vec point) {
  std::int32_t idx;
  if (!free_list_.empty()) {
    idx = free_list_.back();
    free_list_.pop_back();
    pool_[idx].point = std::move(point);
    std::fill(pool_[idx].children.begin(), pool_[idx].children.end(), kNull);
  } else {
    idx = static_cast<std::int32_t>(pool_.size());
    pool_.push_back(Node{std::move(point),
                         std::vector<std::int32_t>(fanout_, kNull)});
  }
  return idx;
}

void QuadTreeArchive::release(std::int32_t node) { free_list_.push_back(node); }

const Vec* QuadTreeArchive::dominator_in(std::int32_t node, const Vec& q) const {
  if (node == kNull) return nullptr;
  const Node& n = pool_[node];
  count_comparison();
  if (weakly_dominates(n.point, q)) return &n.point;
  const std::uint32_t mask = successorship(q, n.point);
  // A dominator x of q satisfies x <= q; inside child c every set bit i has
  // x_i >= n_i, which is only compatible when q_i >= n_i, i.e. c ⊆ mask.
  for (std::uint32_t c = 0; c < fanout_; ++c) {
    if ((c & ~mask) != 0) continue;
    if (const Vec* d = dominator_in(n.children[c], q); d != nullptr) return d;
  }
  return nullptr;
}

void QuadTreeArchive::collect_dominated(std::int32_t node, const Vec& q,
                                        std::vector<std::int32_t>& out) const {
  if (node == kNull) return;
  const Node& n = pool_[node];
  count_comparison();
  if (weakly_dominates(q, n.point)) out.push_back(node);
  // A point x >= q in child c: every unset bit i has x_i < n_i, compatible
  // only when q_i < n_i.
  std::uint32_t lt_mask = 0;  // bit i set iff q_i < n_i
  for (std::size_t i = 0; i < dims_; ++i) {
    if (q[i] < n.point[i]) lt_mask |= (1U << i);
  }
  const std::uint32_t full = fanout_ - 1;
  for (std::uint32_t c = 0; c < fanout_; ++c) {
    if (((~c & full) & ~lt_mask) != 0) continue;
    collect_dominated(n.children[c], q, out);
  }
}

void QuadTreeArchive::gather_all(std::int32_t node,
                                 std::vector<std::int32_t>& out) const {
  if (node == kNull) return;
  out.push_back(node);
  for (const std::int32_t c : pool_[node].children) gather_all(c, out);
}

void QuadTreeArchive::detach_doomed(std::int32_t& slot,
                                    const std::vector<char>& doomed,
                                    std::vector<std::int32_t>& survivors) {
  if (slot == kNull) return;
  if (doomed[slot]) {
    std::vector<std::int32_t> subtree;
    gather_all(slot, subtree);
    for (const std::int32_t n : subtree) {
      if (doomed[n]) {
        release(n);
      } else {
        survivors.push_back(n);
      }
    }
    slot = kNull;
    return;
  }
  for (std::int32_t& c : pool_[slot].children) detach_doomed(c, doomed, survivors);
}

void QuadTreeArchive::hang(std::int32_t node) {
  std::fill(pool_[node].children.begin(), pool_[node].children.end(), kNull);
  if (root_ == kNull) {
    root_ = node;
    return;
  }
  std::int32_t* slot = &root_;
  while (*slot != kNull) {
    Node& n = pool_[*slot];
    count_comparison();
    const std::uint32_t c = successorship(pool_[node].point, n.point);
    slot = &n.children[c];
  }
  *slot = node;
}

bool QuadTreeArchive::insert(const Vec& p) {
  assert(p.size() == dims_);
  if (dominator_in(root_, p) != nullptr) return false;
  erase_dominated_by(p);
  hang(alloc(p));
  ++size_;
  return true;
}

std::size_t QuadTreeArchive::erase_dominated_by(const Vec& p) {
  assert(p.size() == dims_);
  std::vector<std::int32_t> doomed_list;
  collect_dominated(root_, p, doomed_list);
  std::erase_if(doomed_list,
                [&](std::int32_t n) { return pool_[n].point == p; });
  if (doomed_list.empty()) return 0;
  std::vector<char> doomed(pool_.size(), 0);
  for (const std::int32_t n : doomed_list) doomed[n] = 1;
  std::vector<std::int32_t> survivors;
  detach_doomed(root_, doomed, survivors);
  size_ -= doomed_list.size();
  for (const std::int32_t n : survivors) hang(n);
  return doomed_list.size();
}

const Vec* QuadTreeArchive::find_weak_dominator(const Vec& q) const {
  return dominator_in(root_, q);
}

std::vector<Vec> QuadTreeArchive::points() const {
  std::vector<std::int32_t> nodes;
  gather_all(root_, nodes);
  std::vector<Vec> out;
  out.reserve(nodes.size());
  for (const std::int32_t n : nodes) out.push_back(pool_[n].point);
  std::sort(out.begin(), out.end());
  return out;
}

void QuadTreeArchive::clear() {
  pool_.clear();
  free_list_.clear();
  root_ = kNull;
  size_ = 0;
}

}  // namespace aspmt::pareto
