// Thread-safe shared Pareto archive for the parallel portfolio explorer.
//
// Points live in one of K shards (chosen by a content hash), each shard an
// independent single-threaded Archive behind its own shared_mutex.  The
// global invariant is the same as for a single archive — the union of all
// shards is mutually non-dominated — and is maintained by insert(), which
// first tries a cheap optimistic rejection (shared lock per shard, one at a
// time) and only escalates to the exclusive all-shard lock when the point
// survives every shard's dominance check.
//
// Every successful insertion is appended to an append-only log and bumps a
// lock-free generation counter.  Workers poll the counter with one relaxed
// atomic load per propagation fixpoint; only when it moved do they take a
// shared lock to pull the new points into their thread-local snapshot
// archive — so the hot dominance-pruning path never contends on the shared
// structure, yet bound constraints tighten mid-search as peers publish
// better points.  Pulling a stale/evicted log entry is harmless: the local
// snapshot insert either rejects it or later evicts it when the dominating
// entry arrives (dominance-blocked regions only ever grow).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "pareto/archive.hpp"

namespace aspmt::pareto {

class ConcurrentArchive {
 public:
  /// `kind` as in make_archive ("linear" or "quadtree"); `shards` >= 1.
  ConcurrentArchive(const std::string& kind, std::size_t dimensions,
                    std::size_t shards = 8);

  ConcurrentArchive(const ConcurrentArchive&) = delete;
  ConcurrentArchive& operator=(const ConcurrentArchive&) = delete;

  /// Thread-safe insert with single-archive semantics: rejected iff some
  /// archived point weakly dominates `p`; evicts points dominated by `p`
  /// across all shards.  Returns true iff `p` entered the archive.
  /// `cancel`, when given, is honoured at the one point between the
  /// optimistic shared-lock pass and the exclusive escalation: a tripped
  /// token abandons the insert with zero mutation (returns false), so the
  /// archive is dominance-consistent at every cancellation instant.
  bool insert(const Vec& p, const std::atomic<bool>* cancel = nullptr);

  /// Number of successful insertions so far — a lock-free monotone counter.
  /// Readers compare it against their last-synced value to detect front
  /// updates without touching any lock.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Append all points inserted at log positions [since, generation()) to
  /// `out` and return the new position.  Entries may meanwhile have been
  /// evicted from the archive; replaying them into a local archive in log
  /// order converges to the same non-dominated set.
  std::uint64_t fetch_updates(std::uint64_t since, std::vector<Vec>& out) const;

  /// Consistent snapshot of the current non-dominated set, sorted
  /// lexicographically (all shards locked shared simultaneously).
  [[nodiscard]] std::vector<Vec> points() const;

  [[nodiscard]] std::size_t size() const;

  /// Total dominance comparisons across all shards.
  [[nodiscard]] std::uint64_t comparisons() const;

  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unique_ptr<Archive> archive;
  };

  [[nodiscard]] std::size_t shard_of(const Vec& p) const noexcept;

  std::size_t dims_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::shared_mutex log_mutex_;
  std::vector<Vec> log_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace aspmt::pareto
