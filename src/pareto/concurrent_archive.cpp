#include "pareto/concurrent_archive.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace aspmt::pareto {

ConcurrentArchive::ConcurrentArchive(const std::string& kind,
                                     std::size_t dimensions,
                                     std::size_t shards)
    : dims_(dimensions) {
  assert(shards >= 1);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->archive = make_archive(kind, dimensions);
    shards_.push_back(std::move(shard));
  }
}

std::size_t ConcurrentArchive::shard_of(const Vec& p) const noexcept {
  // FNV-1a over the raw objective values; any stable content hash works.
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::int64_t v : p) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % shards_.size());
}

bool ConcurrentArchive::insert(const Vec& p, const std::atomic<bool>* cancel) {
  assert(p.size() == dims_);
  // Optimistic fast path: most candidates lose against the current front;
  // reject them with per-shard shared locks and no global serialization.
  for (const auto& s : shards_) {
    std::shared_lock lock(s->mutex);
    if (s->archive->find_weak_dominator(p) != nullptr) return false;
  }
  // Cancellation point: the escalation to the exclusive all-shard lock is
  // the only phase that mutates, so bailing here leaves every shard (and
  // the log/generation pair) exactly as it was — the front stays
  // dominance-consistent no matter when the token trips.
  if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
    return false;
  }
  // Slow path: take every shard exclusively (ascending index order — the
  // single lock order in this class, so no deadlock) and re-run the checks,
  // since a peer may have inserted between the optimistic pass and here.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& s : shards_) locks.emplace_back(s->mutex);
  for (const auto& s : shards_) {
    if (s->archive->find_weak_dominator(p) != nullptr) return false;
  }
  for (const auto& s : shards_) s->archive->erase_dominated_by(p);
  const bool inserted = shards_[shard_of(p)]->archive->insert(p);
  assert(inserted);
  (void)inserted;
  {
    std::unique_lock log_lock(log_mutex_);
    log_.push_back(p);
    generation_.store(log_.size(), std::memory_order_release);
  }
  return true;
}

std::uint64_t ConcurrentArchive::fetch_updates(std::uint64_t since,
                                               std::vector<Vec>& out) const {
  std::shared_lock lock(log_mutex_);
  for (std::size_t i = since; i < log_.size(); ++i) out.push_back(log_[i]);
  return log_.size();
}

std::vector<Vec> ConcurrentArchive::points() const {
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& s : shards_) locks.emplace_back(s->mutex);
  std::vector<Vec> out;
  for (const auto& s : shards_) {
    std::vector<Vec> part = s->archive->points();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ConcurrentArchive::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::shared_lock lock(s->mutex);
    total += s->archive->size();
  }
  return total;
}

std::uint64_t ConcurrentArchive::comparisons() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::shared_lock lock(s->mutex);
    total += s->archive->comparisons();
  }
  return total;
}

}  // namespace aspmt::pareto
