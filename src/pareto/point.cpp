#include "pareto/point.hpp"

#include <algorithm>
#include <cassert>

namespace aspmt::pareto {

DomRel compare(std::span<const std::int64_t> a,
               std::span<const std::int64_t> b) noexcept {
  assert(a.size() == b.size());
  bool a_better = false;
  bool b_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) a_better = true;
    else if (b[i] < a[i]) b_better = true;
  }
  if (a_better && b_better) return DomRel::Incomparable;
  if (a_better) return DomRel::Dominates;
  if (b_better) return DomRel::Dominated;
  return DomRel::Equal;
}

bool weakly_dominates(std::span<const std::int64_t> a,
                      std::span<const std::int64_t> b) noexcept {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

bool dominates(std::span<const std::int64_t> a,
               std::span<const std::int64_t> b) noexcept {
  const DomRel r = compare(a, b);
  return r == DomRel::Dominates;
}

std::vector<Vec> non_dominated_filter(std::vector<Vec> points) {
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  std::vector<Vec> front;
  for (const Vec& p : points) {
    bool keep = true;
    for (const Vec& q : points) {
      if (&p != &q && weakly_dominates(q, p) && q != p) {
        keep = false;
        break;
      }
    }
    if (keep) front.push_back(p);
  }
  return front;
}

std::string to_string(std::span<const std::int64_t> v) {
  std::string out = "(";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(v[i]);
  }
  out += ")";
  return out;
}

}  // namespace aspmt::pareto
