// Quad-tree Pareto archive (Habenicht-style, as used in the ASP-DAC'18
// companion paper "Utilizing quad-trees for efficient design space
// exploration with partial assignment evaluation").
//
// Each node stores one non-dominated point; a child slot is indexed by the
// *successorship* bitmask of its subtree relative to the node's point
// (bit i set iff child_point[i] >= node_point[i]).  Dominance queries then
// only descend into children whose mask is compatible with the query,
// skipping large parts of the archive.  Eviction detaches the doomed nodes
// and reinserts the surviving members of their subtrees.
#pragma once

#include <cstdint>
#include <vector>

#include "pareto/archive.hpp"

namespace aspmt::pareto {

class QuadTreeArchive final : public Archive {
 public:
  /// `dimensions` in [1, 16] (children per node = 2^dimensions).
  explicit QuadTreeArchive(std::size_t dimensions);

  bool insert(const Vec& p) override;
  [[nodiscard]] const Vec* find_weak_dominator(const Vec& q) const override;
  std::size_t erase_dominated_by(const Vec& p) override;
  [[nodiscard]] std::size_t size() const noexcept override { return size_; }
  [[nodiscard]] std::vector<Vec> points() const override;
  void clear() override;

 private:
  static constexpr std::int32_t kNull = -1;

  struct Node {
    Vec point;
    std::vector<std::int32_t> children;  // 2^k entries
  };

  /// bit i set iff q[i] >= p[i].
  [[nodiscard]] std::uint32_t successorship(const Vec& q, const Vec& p) const noexcept;
  [[nodiscard]] const Vec* dominator_in(std::int32_t node, const Vec& q) const;
  void collect_dominated(std::int32_t node, const Vec& q,
                         std::vector<std::int32_t>& out) const;
  /// Detach doomed subtree roots below `slot`, gathering survivors.
  void detach_doomed(std::int32_t& slot, const std::vector<char>& doomed,
                     std::vector<std::int32_t>& survivors);
  void gather_all(std::int32_t node, std::vector<std::int32_t>& out) const;
  /// Re-hang an existing pool node (children cleared) under the root.
  void hang(std::int32_t node);

  [[nodiscard]] std::int32_t alloc(Vec point);
  void release(std::int32_t node);

  std::size_t dims_;
  std::uint32_t fanout_;
  std::vector<Node> pool_;
  std::vector<std::int32_t> free_list_;
  std::int32_t root_ = kNull;
  std::size_t size_ = 0;
};

}  // namespace aspmt::pareto
