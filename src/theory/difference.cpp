#include "theory/difference.hpp"

#include <algorithm>
#include <cassert>

#include "asp/solver.hpp"

namespace aspmt::theory {

using asp::Lbool;
using asp::Lit;
using asp::Solver;

DifferencePropagator::NodeId DifferencePropagator::new_node(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.name = name.empty() ? ("n" + std::to_string(id)) : std::move(name);
  nodes_.push_back(std::move(n));
  if (proof_ != nullptr) proof_->def_node(id);
  return id;
}

DifferencePropagator::EdgeId DifferencePropagator::add_edge(
    NodeId from, NodeId to, std::int64_t weight, std::vector<Lit> guards) {
  std::sort(guards.begin(), guards.end());
  guards.erase(std::unique(guards.begin(), guards.end()), guards.end());
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  Edge e;
  e.from = from;
  e.to = to;
  e.weight = weight;
  e.pending = static_cast<std::uint32_t>(guards.size());
  e.guards = std::move(guards);
  edges_.push_back(std::move(e));
  nodes_[from].out.push_back(id);
  for (const Lit g : edges_[id].guards) {
    const std::uint32_t need = g.index() + 1;
    if (watch_.size() < need) watch_.resize(need);
    watch_[g.index()].push_back(id);
  }
  if (proof_ != nullptr) {
    proof_->def_edge(id, from, to, weight, edges_[id].guards);
  }
  if (edges_[id].pending == 0) {
    edges_[id].active = true;
    if (!relax_from(nullptr, id, /*pos_plus1=*/0)) infeasible_ = true;
  }
  return id;
}

void DifferencePropagator::explain_bound(NodeId n, std::vector<Lit>& out) const {
  EdgeId e = nodes_[n].parent;
  while (e != kNone) {
    const Edge& ed = edges_[e];
    out.insert(out.end(), ed.guards.begin(), ed.guards.end());
    e = nodes_[ed.from].parent;
  }
}

void DifferencePropagator::add_bound(NodeId n, std::int64_t bound, Lit activation) {
  if (proof_ != nullptr) proof_->def_node_bound(n, bound, activation);
  nodes_[n].bounds.push_back(BoundEntry{bound, activation});
}

void DifferencePropagator::set_bound(NodeId n, std::int64_t bound, Lit activation) {
  nodes_[n].bounds.clear();
  add_bound(n, bound, activation);
}

void DifferencePropagator::clear_bounds(NodeId n) { nodes_[n].bounds.clear(); }

bool DifferencePropagator::on_parent_chain(NodeId ancestor_candidate,
                                           NodeId start) const {
  NodeId n = start;
  while (n != ancestor_candidate) {
    const EdgeId e = nodes_[n].parent;
    if (e == kNone) return false;
    n = edges_[e].from;
  }
  return true;
}

void DifferencePropagator::collect_cycle_guards(EdgeId closing,
                                                std::vector<Lit>& out) const {
  const Edge& ce = edges_[closing];
  out.insert(out.end(), ce.guards.begin(), ce.guards.end());
  // Walk the parent chain from ce.from back to ce.to.
  NodeId n = ce.from;
  while (n != ce.to) {
    const EdgeId e = nodes_[n].parent;
    assert(e != kNone && "cycle walk must reach the closing target");
    const Edge& ed = edges_[e];
    out.insert(out.end(), ed.guards.begin(), ed.guards.end());
    n = ed.from;
  }
}

bool DifferencePropagator::relax_from(Solver* solver, EdgeId trigger,
                                      std::size_t pos_plus1) {
  std::vector<EdgeId> queue{trigger};
  while (!queue.empty()) {
    const EdgeId eid = queue.back();
    queue.pop_back();
    const Edge& e = edges_[eid];
    if (!e.active) continue;
    const std::int64_t nd = nodes_[e.from].dist + e.weight;
    if (nd <= nodes_[e.to].dist) continue;
    // A distance increase around a cycle means the cycle is positive.
    if (e.to == e.from || on_parent_chain(e.to, e.from)) {
      std::vector<Lit> guards;
      collect_cycle_guards(eid, guards);
      std::sort(guards.begin(), guards.end());
      guards.erase(std::unique(guards.begin(), guards.end()), guards.end());
      if (solver == nullptr) return false;  // construction-time cycle
      for (Lit& g : guards) g = ~g;
      const asp::TheoryJustification just{asp::TheoryTag::DiffCycle, {}};
      const bool status = solver->add_theory_clause(guards, &just);
      assert(!status && "positive-cycle clause must be conflicting");
      return status;
    }
    Node& target = nodes_[e.to];
    undo_stack_.push_back(UndoOp{pos_plus1, UndoKind::DistChange, e.to,
                                 target.dist, target.parent});
    target.dist = nd;
    target.parent = eid;
    for (const EdgeId out : target.out) queue.push_back(out);
  }
  return true;
}

bool DifferencePropagator::activate(Solver* solver, EdgeId e,
                                    std::size_t pos_plus1) {
  edges_[e].active = true;
  return relax_from(solver, e, pos_plus1);
}

bool DifferencePropagator::enforce_bounds(Solver& solver) {
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    for (const BoundEntry& b : node.bounds) {
      if (b.activation != asp::kLitUndef &&
          solver.value(b.activation) != Lbool::True) {
        continue;
      }
      if (node.dist <= b.bound) continue;
      std::vector<Lit> clause;
      explain_bound(n, clause);
      std::sort(clause.begin(), clause.end());
      clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
      for (Lit& l : clause) l = ~l;
      if (b.activation != asp::kLitUndef) clause.push_back(~b.activation);
      const asp::TheoryJustification just{
          asp::TheoryTag::DiffBound,
          {n, b.bound,
           b.activation == asp::kLitUndef ? 0 : asp::proof_int(b.activation)}};
      if (!solver.add_theory_clause(clause, &just)) return false;
      break;  // conflict injected; stop here
    }
  }
  return true;
}

bool DifferencePropagator::propagate(Solver& solver) {
  if (infeasible_) {
    // Positive cycle among unguarded edges: the empty clause is justified
    // by the declared edges alone.
    const asp::TheoryJustification just{asp::TheoryTag::DiffCycle, {}};
    return solver.add_theory_clause({}, &just);
  }
  while (cursor_ < solver.trail().size()) {
    const Lit p = solver.trail()[cursor_];
    const std::size_t pos_plus1 = cursor_ + 1;
    ++cursor_;
    if (p.index() >= watch_.size()) continue;
    for (const EdgeId eid : watch_[p.index()]) {
      Edge& e = edges_[eid];
      undo_stack_.push_back(UndoOp{pos_plus1, UndoKind::EdgeActive, eid, 0, kNone});
      assert(e.pending > 0);
      --e.pending;
      if (e.pending == 0) {
        if (!activate(&solver, eid, pos_plus1)) return false;
      }
    }
  }
  if (partial_eval_) return enforce_bounds(solver);
  return true;
}

void DifferencePropagator::undo_to(const Solver&, std::size_t trail_size) {
  while (!undo_stack_.empty() && undo_stack_.back().pos_plus1 > trail_size) {
    const UndoOp op = undo_stack_.back();
    undo_stack_.pop_back();
    switch (op.kind) {
      case UndoKind::EdgeActive: {
        Edge& e = edges_[op.target];
        ++e.pending;
        e.active = false;
        break;
      }
      case UndoKind::DistChange: {
        Node& n = nodes_[op.target];
        n.dist = op.old_dist;
        n.parent = op.old_parent;
        break;
      }
    }
  }
  cursor_ = std::min(cursor_, trail_size);
}

bool DifferencePropagator::check(Solver& solver) {
  if (!propagate(solver)) return false;
  return enforce_bounds(solver);
}

}  // namespace aspmt::theory
