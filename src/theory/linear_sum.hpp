// Guarded linear sums — the linear-arithmetic background theory.
//
// A sum is  Σ weight_i · [guard_i]  with non-negative integer weights, where
// [guard_i] is 1 iff the solver literal guard_i is true.  Because weights are
// non-negative, the *lower bound* under a partial assignment is simply the
// weighted count of guards already true, and the *upper bound* adds all
// still-undecided guards.  This is the partial-assignment-evaluation
// mechanism of the DATE'17/'18 papers: bounds are exact at total assignments
// and monotonically tighten along the trail.
//
// The propagator maintains any number of sums (one per objective) and
// optional upper-bound constraints `sum <= bound` that can be activated
// under an assumption literal (used by the optimizer and the ε-constraint
// baseline).  Violations are reported as injected clauses over the guards.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "asp/literal.hpp"
#include "asp/proof.hpp"
#include "asp/propagator.hpp"

namespace aspmt::asp {
class Solver;
}

namespace aspmt::theory {

/// One weighted, guarded term of a linear sum.
struct Term {
  asp::Lit guard;
  std::int64_t weight = 0;     ///< must be >= 0
  bool contributing = false;   ///< guard currently true (maintained internally)
};

class LinearSumPropagator final : public asp::TheoryPropagator {
 public:
  using SumId = std::uint32_t;

  /// Register a new sum.  Must be called before the first solve.
  SumId add_sum(std::string name, std::vector<Term> terms);

  [[nodiscard]] std::size_t num_sums() const noexcept { return sums_.size(); }
  [[nodiscard]] const std::string& name(SumId s) const { return sums_[s].name; }

  /// Lower bound of the sum under the current partial assignment.
  [[nodiscard]] std::int64_t lower_bound(SumId s) const noexcept {
    return sums_[s].lower;
  }

  /// Upper bound (lower + all undecided weights).
  [[nodiscard]] std::int64_t upper_bound(SumId s) const noexcept {
    return sums_[s].lower + sums_[s].slack;
  }

  /// Impose `sum <= bound`.  If `activation` is a real literal the constraint
  /// only applies while that literal is true (pass it as an assumption or
  /// decide it); all clauses injected for this bound then contain its
  /// negation, keeping them sound when the activation is dropped.  A bound
  /// without activation must only ever be *tightened* (monotone
  /// strengthening keeps learned clauses sound).  Several bounds may be
  /// active at once; the tightest active one is enforced.
  void add_bound(SumId s, std::int64_t bound, asp::Lit activation = asp::kLitUndef);

  /// Impose `sum >= bound` (the distributed shard floor).  Mirrors
  /// add_bound: with a real `activation` literal the constraint applies only
  /// while that literal is true, and every injected clause carries its
  /// negation.  Enforced against the *upper* bound (lower + slack): once the
  /// falsified guards forfeit too much weight the remaining heavy undecided
  /// guards are forced true, and running out of weight is a conflict.
  void add_lower_bound(SumId s, std::int64_t bound,
                       asp::Lit activation = asp::kLitUndef);

  /// Replace all bounds of a sum by a single one.
  void set_bound(SumId s, std::int64_t bound, asp::Lit activation = asp::kLitUndef);

  /// Remove all bounds of a sum.  Only sound when every removed bound was
  /// activation-guarded (the guard keeps previously learned clauses valid)
  /// or when the solver is rebuilt afterwards.
  void clear_bounds(SumId s);

  /// Collect true guards explaining `lower_bound(s) >= threshold`, greedily
  /// preferring heavy guards so explanations stay short.  Appends the guard
  /// literals (which are true) to `out`.
  void explain_lower_bound(SumId s, std::int64_t threshold,
                           std::vector<asp::Lit>& out) const;

  /// Exact value of the sum under a total model (by variable values).
  [[nodiscard]] std::int64_t value_under_model(
      SumId s, const std::vector<asp::Lbool>& model) const;

  /// Disable bound enforcement on partial assignments (ablation switch —
  /// bookkeeping still runs; violations surface only in check()).
  void set_partial_evaluation(bool enabled) noexcept { partial_eval_ = enabled; }

  /// Mirror sum/bound declarations and lemma justifications into a proof
  /// log.  Must be attached before any sum is registered.
  void set_proof(asp::ProofLog* proof) noexcept { proof_ = proof; }

  // -- TheoryPropagator ----------------------------------------------------
  bool propagate(asp::Solver& solver) override;
  void undo_to(const asp::Solver& solver, std::size_t trail_size) override;
  bool check(asp::Solver& solver) override;

 private:
  struct BoundEntry {
    std::int64_t bound = std::numeric_limits<std::int64_t>::max();
    asp::Lit activation = asp::kLitUndef;
  };

  struct Sum {
    std::string name;
    std::vector<Term> terms;          // sorted by weight descending
    std::int64_t lower = 0;           // weights of true guards
    std::int64_t slack = 0;           // weights of undecided guards
    std::int64_t total = 0;           // Σ weights
    std::vector<BoundEntry> bounds;
    std::vector<BoundEntry> lower_bounds;
  };

  struct WatchRef {
    SumId sum;
    std::uint32_t term;
  };

  struct UndoOp {
    std::size_t trail_pos;
    SumId sum;
    std::int64_t weight;
    bool was_true;  // guard became true (else guard became false)
    std::uint32_t term;
  };

  [[nodiscard]] bool enforce_bound(asp::Solver& solver, SumId id);
  [[nodiscard]] bool enforce_lower_bound(asp::Solver& solver, SumId id);
  // Collect FALSE guards (appended positively) explaining
  // `upper_bound(s) <= total - threshold`, heavy-first.
  void explain_forfeit(SumId s, std::int64_t threshold,
                       const asp::Solver& solver,
                       std::vector<asp::Lit>& out) const;

  std::vector<Sum> sums_;
  // watch table: literal index -> terms whose guard equals that literal
  std::vector<std::vector<WatchRef>> watch_true_;
  std::vector<UndoOp> undo_stack_;
  std::size_t cursor_ = 0;
  bool partial_eval_ = true;
  asp::ProofLog* proof_ = nullptr;
};

}  // namespace aspmt::theory
