// #minimize support: bridges Program::minimize statements to the guarded
// linear-sum theory and provides a branch-and-bound driver — the ASP-level
// counterpart of clasp's optimization mode, built from the same pieces the
// DSE uses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "asp/completion.hpp"
#include "asp/program.hpp"
#include "asp/solver.hpp"
#include "theory/linear_sum.hpp"
#include "util/timer.hpp"

namespace aspmt::theory {

/// Register the program's level-0 minimize statement as a guarded linear
/// sum.  The propagator must already be (or later be) registered with the
/// solver.
[[nodiscard]] LinearSumPropagator::SumId install_minimize(
    const asp::Program& program, const asp::CompiledProgram& compiled,
    LinearSumPropagator& linear);

/// Register every minimize level; the result is ordered highest priority
/// first (the order minimize_answer_set_lex optimises in).
[[nodiscard]] std::vector<LinearSumPropagator::SumId> install_minimize_levels(
    const asp::Program& program, const asp::CompiledProgram& compiled,
    LinearSumPropagator& linear);

struct OptimalModel {
  bool feasible = false;      ///< some answer set exists
  bool proven = false;        ///< optimality (or unsatisfiability) proven
  std::int64_t cost = 0;      ///< best objective value (level 0 / last level)
  std::vector<std::int64_t> level_costs;  ///< per level, highest priority first
  std::vector<asp::Lbool> model;  ///< best model (per solver variable)
};

/// Branch-and-bound minimization of `sum` over the answer sets of the
/// solver's current problem (activation-guarded bounds keep the solver
/// reusable afterwards).
[[nodiscard]] OptimalModel minimize_answer_set(
    asp::Solver& solver, LinearSumPropagator& linear,
    LinearSumPropagator::SumId sum, const util::Deadline* deadline = nullptr);

/// Lexicographic minimization over several sums (highest priority first),
/// clingo-style multi-level #minimize.
[[nodiscard]] OptimalModel minimize_answer_set_lex(
    asp::Solver& solver, LinearSumPropagator& linear,
    std::span<const LinearSumPropagator::SumId> sums,
    const util::Deadline* deadline = nullptr);

}  // namespace aspmt::theory
