#include "theory/linear_sum.hpp"

#include <algorithm>
#include <cassert>

#include "asp/solver.hpp"

namespace aspmt::theory {

using asp::Lbool;
using asp::Lit;
using asp::Solver;

LinearSumPropagator::SumId LinearSumPropagator::add_sum(std::string name,
                                                        std::vector<Term> terms) {
  const SumId id = static_cast<SumId>(sums_.size());
  Sum s;
  s.name = std::move(name);
  s.terms = std::move(terms);
  std::sort(s.terms.begin(), s.terms.end(),
            [](const Term& a, const Term& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.guard < b.guard;
            });
  for (std::uint32_t t = 0; t < s.terms.size(); ++t) {
    const Term& term = s.terms[t];
    assert(term.weight >= 0);
    s.total += term.weight;
    s.slack += term.weight;
    const std::uint32_t need =
        std::max(term.guard.index(), (~term.guard).index()) + 1;
    if (watch_true_.size() < need) watch_true_.resize(need);
    watch_true_[term.guard.index()].push_back(WatchRef{id, t});
  }
  if (proof_ != nullptr) {
    std::vector<std::pair<Lit, std::int64_t>> terms_out;
    terms_out.reserve(s.terms.size());
    for (const Term& t : s.terms) terms_out.emplace_back(t.guard, t.weight);
    proof_->def_sum(id, terms_out);
  }
  sums_.push_back(std::move(s));
  return id;
}

void LinearSumPropagator::add_bound(SumId s, std::int64_t bound, Lit activation) {
  if (proof_ != nullptr) proof_->def_sum_bound(s, bound, activation);
  sums_[s].bounds.push_back(BoundEntry{bound, activation});
}

void LinearSumPropagator::add_lower_bound(SumId s, std::int64_t bound,
                                          Lit activation) {
  if (proof_ != nullptr) proof_->def_sum_lower_bound(s, bound, activation);
  sums_[s].lower_bounds.push_back(BoundEntry{bound, activation});
}

void LinearSumPropagator::set_bound(SumId s, std::int64_t bound, Lit activation) {
  sums_[s].bounds.clear();
  add_bound(s, bound, activation);
}

void LinearSumPropagator::clear_bounds(SumId s) { sums_[s].bounds.clear(); }

void LinearSumPropagator::explain_lower_bound(SumId id, std::int64_t threshold,
                                              std::vector<Lit>& out) const {
  if (threshold <= 0) return;
  const Sum& s = sums_[id];
  std::int64_t gathered = 0;
  for (const Term& t : s.terms) {  // heavy terms first: short explanations
    if (t.weight == 0) break;
    if (!t.contributing) continue;
    out.push_back(t.guard);
    gathered += t.weight;
    if (gathered >= threshold) return;
  }
  assert(gathered >= threshold && "lower bound smaller than threshold");
}

void LinearSumPropagator::explain_forfeit(SumId id, std::int64_t threshold,
                                          const Solver& solver,
                                          std::vector<Lit>& out) const {
  if (threshold <= 0) return;
  const Sum& s = sums_[id];
  std::int64_t gathered = 0;
  for (const Term& t : s.terms) {  // heavy terms first: short explanations
    if (t.weight == 0) break;
    if (solver.value(t.guard) != Lbool::False) continue;
    out.push_back(t.guard);
    gathered += t.weight;
    if (gathered >= threshold) return;
  }
  assert(gathered >= threshold && "forfeited weight smaller than threshold");
}

std::int64_t LinearSumPropagator::value_under_model(
    SumId id, const std::vector<Lbool>& model) const {
  std::int64_t value = 0;
  for (const Term& t : sums_[id].terms) {
    if (lit_value(model[t.guard.var()], t.guard) == Lbool::True) value += t.weight;
  }
  return value;
}

bool LinearSumPropagator::enforce_bound(Solver& solver, SumId id) {
  Sum& s = sums_[id];
  // The tightest active bound subsumes all the others.
  const BoundEntry* tightest = nullptr;
  for (const BoundEntry& b : s.bounds) {
    if (b.activation != asp::kLitUndef &&
        solver.value(b.activation) != Lbool::True) {
      continue;
    }
    if (tightest == nullptr || b.bound < tightest->bound) tightest = &b;
  }
  if (tightest == nullptr) return true;
  const std::int64_t bound = tightest->bound;
  const Lit activation = tightest->activation;
  // The same re-derivation covers both lemma shapes below: the negated
  // guards in the clause carry weight > bound under the declared bound.
  const asp::TheoryJustification just{
      asp::TheoryTag::LinearBound,
      {id, bound,
       activation == asp::kLitUndef ? 0 : asp::proof_int(activation)}};
  std::vector<Lit> clause;
  if (s.lower > bound) {
    // Conflict: enough true guards already exceed the bound.
    explain_lower_bound(id, bound + 1, clause);
    for (Lit& l : clause) l = ~l;
    if (activation != asp::kLitUndef) clause.push_back(~activation);
    return solver.add_theory_clause(clause, &just);
  }
  // Implication: any single undecided guard that would overshoot is false.
  const std::int64_t room = bound - s.lower;
  for (const Term& t : s.terms) {
    if (t.weight <= room) break;  // sorted descending: nothing heavier left
    if (solver.value(t.guard) != Lbool::Undef) continue;
    clause.clear();
    explain_lower_bound(id, bound - t.weight + 1, clause);
    for (Lit& l : clause) l = ~l;
    clause.push_back(~t.guard);
    if (activation != asp::kLitUndef) clause.push_back(~activation);
    if (!solver.add_theory_clause(clause, &just)) return false;
  }
  return true;
}

bool LinearSumPropagator::enforce_lower_bound(Solver& solver, SumId id) {
  Sum& s = sums_[id];
  if (s.lower_bounds.empty()) return true;
  // The largest active floor subsumes all the others.
  const BoundEntry* tightest = nullptr;
  for (const BoundEntry& b : s.lower_bounds) {
    if (b.activation != asp::kLitUndef &&
        solver.value(b.activation) != Lbool::True) {
      continue;
    }
    if (tightest == nullptr || b.bound > tightest->bound) tightest = &b;
  }
  if (tightest == nullptr || tightest->bound <= 0) return true;
  const std::int64_t bound = tightest->bound;
  const Lit activation = tightest->activation;
  // Both lemma shapes share one re-derivation: the positive guards in the
  // clause, all assumed false, forfeit so much weight that the sum can no
  // longer reach the declared floor.
  const asp::TheoryJustification just{
      asp::TheoryTag::LinearLower,
      {id, bound,
       activation == asp::kLitUndef ? 0 : asp::proof_int(activation)}};
  const std::int64_t upper = s.lower + s.slack;
  std::vector<Lit> clause;
  if (upper < bound) {
    // Conflict: the falsified guards forfeit weight > total - bound.
    explain_forfeit(id, s.total - bound + 1, solver, clause);
    if (activation != asp::kLitUndef) clause.push_back(~activation);
    return solver.add_theory_clause(clause, &just);
  }
  // Implication: any undecided guard whose loss would undershoot is true.
  const std::int64_t surplus = upper - bound;
  for (const Term& t : s.terms) {
    if (t.weight <= surplus) break;  // sorted descending: nothing heavier left
    if (solver.value(t.guard) != Lbool::Undef) continue;
    clause.clear();
    explain_forfeit(id, s.total - bound - t.weight + 1, solver, clause);
    clause.push_back(t.guard);
    if (activation != asp::kLitUndef) clause.push_back(~activation);
    if (!solver.add_theory_clause(clause, &just)) return false;
  }
  return true;
}

bool LinearSumPropagator::propagate(Solver& solver) {
  bool any_change = false;
  while (cursor_ < solver.trail().size()) {
    const Lit p = solver.trail()[cursor_];
    const std::size_t pos = cursor_;
    ++cursor_;
    auto process = [&](std::uint32_t watch_index, bool became_true) {
      if (watch_index >= watch_true_.size()) return;
      for (const WatchRef& w : watch_true_[watch_index]) {
        Sum& s = sums_[w.sum];
        Term& t = s.terms[w.term];
        s.slack -= t.weight;
        if (became_true) {
          s.lower += t.weight;
          t.contributing = true;
        }
        undo_stack_.push_back(UndoOp{pos, w.sum, t.weight, became_true, w.term});
        any_change = true;
      }
    };
    process(p.index(), /*became_true=*/true);     // guards equal to p
    process((~p).index(), /*became_true=*/false);  // guards falsified by p
  }
  // Activation literals may have become true without touching any guard;
  // enforcing is cheap, so always sweep bounded sums (unless the ablation
  // switch restricts evaluation to total assignments).
  (void)any_change;
  if (!partial_eval_) return true;
  for (SumId id = 0; id < sums_.size(); ++id) {
    if (!enforce_bound(solver, id)) return false;
    if (!enforce_lower_bound(solver, id)) return false;
  }
  return true;
}

void LinearSumPropagator::undo_to(const Solver&, std::size_t trail_size) {
  while (!undo_stack_.empty() && undo_stack_.back().trail_pos >= trail_size) {
    const UndoOp op = undo_stack_.back();
    undo_stack_.pop_back();
    Sum& s = sums_[op.sum];
    s.slack += op.weight;
    if (op.was_true) {
      s.lower -= op.weight;
      s.terms[op.term].contributing = false;
    }
  }
  cursor_ = std::min(cursor_, trail_size);
}

bool LinearSumPropagator::check(Solver& solver) {
  if (!propagate(solver)) return false;
  for (SumId id = 0; id < sums_.size(); ++id) {
    if (!enforce_bound(solver, id)) return false;
    if (!enforce_lower_bound(solver, id)) return false;
  }
  return true;
}

}  // namespace aspmt::theory
