// Conditional difference logic — the scheduling background theory.
//
// Nodes are integer event variables (task start times, the makespan), all
// implicitly >= 0.  An edge  to >= from + weight  is *guarded* by a
// conjunction of solver literals and becomes active once all guards are
// true.  The propagator maintains longest distances from the implicit
// origin incrementally (trail-synchronised relaxation with undo records):
//
//  * dist(node) is a sound lower bound of the node under any completion of
//    the current partial assignment — partial assignment evaluation for the
//    latency objective;
//  * at a total assignment dist(makespan) is the exact minimal makespan of
//    the induced schedule (ASAP schedule of the activated precedence graph);
//  * a positive cycle of active edges is a theory conflict explained by the
//    guards of the cycle's edges.
//
// Optional per-node upper bounds (`node <= bound`, optionally under an
// activation literal) support single-objective optimisation on latency.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "asp/literal.hpp"
#include "asp/proof.hpp"
#include "asp/propagator.hpp"

namespace aspmt::asp {
class Solver;
}

namespace aspmt::theory {

class DifferencePropagator final : public asp::TheoryPropagator {
 public:
  using NodeId = std::uint32_t;
  using EdgeId = std::uint32_t;

  static constexpr std::uint32_t kNone = 0xffffffffU;

  /// Create a new event variable (>= 0).
  NodeId new_node(std::string name = {});

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::string& name(NodeId n) const { return nodes_[n].name; }

  /// Add the conditional constraint `to >= from + weight`, active when all
  /// `guards` are true.  Unguarded edges are applied immediately and
  /// permanently; a positive cycle among unguarded edges is a construction
  /// error reported via infeasible().
  EdgeId add_edge(NodeId from, NodeId to, std::int64_t weight,
                  std::vector<asp::Lit> guards);

  /// True if the unconditional part is already contradictory.
  [[nodiscard]] bool infeasible() const noexcept { return infeasible_; }

  /// Longest distance from the origin under the current assignment.
  [[nodiscard]] std::int64_t lower_bound(NodeId n) const noexcept {
    return nodes_[n].dist;
  }

  /// Append the guards of the active path supporting `lower_bound(n)`.
  void explain_bound(NodeId n, std::vector<asp::Lit>& out) const;

  /// Impose `node <= bound` (see LinearSumPropagator::add_bound for the
  /// activation-literal contract).  Several bounds may coexist; the tightest
  /// active one is enforced.
  void add_bound(NodeId n, std::int64_t bound, asp::Lit activation = asp::kLitUndef);
  void set_bound(NodeId n, std::int64_t bound, asp::Lit activation = asp::kLitUndef);
  void clear_bounds(NodeId n);

  /// Disable conflict detection on partial assignments (ablation switch —
  /// bookkeeping still runs; violations surface only in check()).
  void set_partial_evaluation(bool enabled) noexcept { partial_eval_ = enabled; }

  /// Mirror node/edge/bound declarations and lemma justifications into a
  /// proof log.  Must be attached before any node or edge is created.
  void set_proof(asp::ProofLog* proof) noexcept { proof_ = proof; }

  // -- TheoryPropagator ----------------------------------------------------
  bool propagate(asp::Solver& solver) override;
  void undo_to(const asp::Solver& solver, std::size_t trail_size) override;
  bool check(asp::Solver& solver) override;

 private:
  struct BoundEntry {
    std::int64_t bound = std::numeric_limits<std::int64_t>::max();
    asp::Lit activation = asp::kLitUndef;
  };

  struct Node {
    std::string name;
    std::int64_t dist = 0;
    EdgeId parent = kNone;  // edge that last improved dist
    std::vector<EdgeId> out;
    std::vector<BoundEntry> bounds;
  };

  struct Edge {
    NodeId from = 0;
    NodeId to = 0;
    std::int64_t weight = 0;
    std::vector<asp::Lit> guards;
    std::uint32_t pending = 0;  // guards not yet true
    bool active = false;
  };

  enum class UndoKind : std::uint8_t { EdgeActive, DistChange };

  struct UndoOp {
    std::size_t pos_plus1;  // trail position + 1; 0 = permanent (never undone)
    UndoKind kind;
    std::uint32_t target;   // edge id or node id
    std::int64_t old_dist = 0;
    EdgeId old_parent = kNone;
  };

  /// Activate edge and run relaxations.  Returns false on conflict (clause
  /// injected).  `pos_plus1` tags undo records.
  bool activate(asp::Solver* solver, EdgeId e, std::size_t pos_plus1);

  /// Relax from `start` through active edges.  Returns false on positive
  /// cycle (clause injected when solver != nullptr, infeasible_ set
  /// otherwise).
  bool relax_from(asp::Solver* solver, EdgeId trigger, std::size_t pos_plus1);

  [[nodiscard]] bool on_parent_chain(NodeId ancestor_candidate, NodeId start) const;
  [[nodiscard]] bool enforce_bounds(asp::Solver& solver);
  void collect_cycle_guards(EdgeId closing, std::vector<asp::Lit>& out) const;

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> watch_;  // literal index -> edges guarded by it
  std::vector<UndoOp> undo_stack_;
  std::size_t cursor_ = 0;
  bool infeasible_ = false;
  bool partial_eval_ = true;
  asp::ProofLog* proof_ = nullptr;
};

}  // namespace aspmt::theory
