#include "theory/asp_minimize.hpp"

namespace aspmt::theory {

LinearSumPropagator::SumId install_minimize(const asp::Program& program,
                                            const asp::CompiledProgram& compiled,
                                            LinearSumPropagator& linear) {
  std::vector<Term> terms;
  for (const asp::WeightedBodyLit& t : program.minimize_terms()) {
    terms.push_back(Term{compiled.lit(t.lit), t.weight});
  }
  return linear.add_sum("#minimize", std::move(terms));
}

std::vector<LinearSumPropagator::SumId> install_minimize_levels(
    const asp::Program& program, const asp::CompiledProgram& compiled,
    LinearSumPropagator& linear) {
  std::vector<LinearSumPropagator::SumId> sums;
  for (const auto& [priority, level_terms] : program.minimize_levels()) {
    std::vector<Term> terms;
    for (const asp::WeightedBodyLit& t : level_terms) {
      terms.push_back(Term{compiled.lit(t.lit), t.weight});
    }
    sums.push_back(linear.add_sum("#minimize@" + std::to_string(priority),
                                  std::move(terms)));
  }
  return sums;
}

OptimalModel minimize_answer_set(asp::Solver& solver, LinearSumPropagator& linear,
                                 LinearSumPropagator::SumId sum,
                                 const util::Deadline* deadline) {
  OptimalModel best;
  std::vector<asp::Lit> assumptions;
  for (;;) {
    const asp::Solver::Result r = solver.solve(assumptions, deadline);
    if (r == asp::Solver::Result::Sat) {
      best.feasible = true;
      best.cost = linear.value_under_model(sum, solver.model());
      best.model = solver.model();
      assumptions.clear();
      const asp::Lit act = asp::Lit::make(solver.new_var(), true);
      linear.add_bound(sum, best.cost - 1, act);
      assumptions.push_back(act);
      continue;
    }
    best.proven = (r == asp::Solver::Result::Unsat);
    return best;
  }
}

OptimalModel minimize_answer_set_lex(
    asp::Solver& solver, LinearSumPropagator& linear,
    std::span<const LinearSumPropagator::SumId> sums,
    const util::Deadline* deadline) {
  OptimalModel best;
  std::vector<asp::Lit> pins;
  for (const auto sum : sums) {
    // Minimize this level under the pins of the previous levels.
    std::int64_t level_best = 0;
    bool level_feasible = false;
    std::vector<asp::Lit> assumptions = pins;
    for (;;) {
      const asp::Solver::Result r = solver.solve(assumptions, deadline);
      if (r == asp::Solver::Result::Sat) {
        level_feasible = true;
        level_best = linear.value_under_model(sum, solver.model());
        best.model = solver.model();
        assumptions = pins;
        const asp::Lit act = asp::Lit::make(solver.new_var(), true);
        linear.add_bound(sum, level_best - 1, act);
        assumptions.push_back(act);
        continue;
      }
      best.proven = (r == asp::Solver::Result::Unsat);
      break;
    }
    if (!level_feasible) return best;  // globally infeasible (or timeout)
    best.feasible = true;
    best.level_costs.push_back(level_best);
    best.cost = level_best;
    const asp::Lit pin = asp::Lit::make(solver.new_var(), true);
    linear.add_bound(sum, level_best, pin);
    pins.push_back(pin);
    if (!best.proven) return best;  // timed out within this level
  }
  return best;
}

}  // namespace aspmt::theory
