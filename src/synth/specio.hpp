// Textual specification format — load/save Specifications so instances can
// be shipped, versioned and fed to the CLI tool.
//
//   # comment
//   max_hops 0
//   latency_bound 0
//   resource <name> processor|router|bus cost=<int> [capacity=<int>]
//   link <from> <to> [delay=<int>] [energy=<int>]
//   task <name>
//   message <name> <src_task> <dst_task> [payload=<int>]
//   map <task> <resource> wcet=<int> [energy=<int>]
//
// Names are whitespace-free identifiers; statements may appear in any order
// as long as referenced entities are declared first.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "synth/spec.hpp"

namespace aspmt::synth {

class SpecParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Render a specification in the textual format (stable order).
[[nodiscard]] std::string to_text(const Specification& spec);

/// Parse the textual format; throws SpecParseError with a line number on
/// malformed input.
[[nodiscard]] Specification parse_specification(std::string_view text);

/// Convenience file wrappers.
void save_specification(const Specification& spec, const std::string& path);
[[nodiscard]] Specification load_specification(const std::string& path);

}  // namespace aspmt::synth
