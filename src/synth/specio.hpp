// Textual specification format — load/save Specifications so instances can
// be shipped, versioned and fed to the CLI tool.
//
//   # comment
//   max_hops 0
//   latency_bound 0
//   resource <name> processor|router|bus cost=<int> [capacity=<int>]
//   link <from> <to> [delay=<int>] [energy=<int>]
//   task <name>
//   message <name> <src_task> <dst_task> [payload=<int>]
//   map <task> <resource> wcet=<int> [energy=<int>]
//   scenario <name> [<resource>=<factor> ...]
//   objective <expr>
//
// `scenario` declares a named energy scenario (per-resource integer factors
// >= 1, unlisted resources default to 1).  `objective` declares one Pareto
// axis; one statement per axis, in axis order.  Expressions are
// whitespace-free: a metric (`latency`, `energy`, `cost`, optionally
// `energy@<scenario>`) or a combinator `lex(a,b,...)`, `minmax(a,b,...)`,
// `worst(a,b,...)`, `weighted(2*a+3*b)`.  Without `objective` statements the
// classic latency/energy/cost axes apply.
//
// Names are whitespace-free identifiers; statements may appear in any order
// as long as referenced entities are declared first.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "synth/spec.hpp"

namespace aspmt::synth {

class SpecParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Render a specification in the textual format (stable order).
[[nodiscard]] std::string to_text(const Specification& spec);

/// Parse the textual format; throws SpecParseError with a line number on
/// malformed input.
[[nodiscard]] Specification parse_specification(std::string_view text);

/// Convenience file wrappers.
void save_specification(const Specification& spec, const std::string& path);
[[nodiscard]] Specification load_specification(const std::string& path);

}  // namespace aspmt::synth
