// Independent feasibility and objective checking for decoded
// implementations.  Deliberately shares no code with the encoder: it
// re-derives every constraint directly from the specification, so tests can
// cross-check the whole ASPmT pipeline against it.
#pragma once

#include <string>

#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::synth {

/// Recompute (latency, energy, cost) from the structure of `impl` alone
/// (latency from the stored start times).  Assumes structural validity.
[[nodiscard]] pareto::Vec recompute_objectives(const Specification& spec,
                                               const Implementation& impl);

/// Full feasibility check: binding validity, route well-formedness (simple,
/// hop-bounded, connects the bound resources), schedule consistency
/// (precedence + communication delays + resource exclusivity) and agreement
/// of the recorded objectives with an independent recomputation.  Returns an
/// empty string when everything holds, else a diagnostic.
[[nodiscard]] std::string validate_implementation(const Specification& spec,
                                                  const Implementation& impl);

}  // namespace aspmt::synth
