// Independent feasibility and objective checking for decoded
// implementations.  Deliberately shares no code with the encoder: it
// re-derives every constraint directly from the specification, so tests can
// cross-check the whole ASPmT pipeline against it.
#pragma once

#include <string>

#include "pareto/point.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"

namespace aspmt::synth {

/// Recompute the base (latency, energy, cost) triple from the structure of
/// `impl` alone (latency from the stored start times).  Assumes structural
/// validity.  This is what Implementation::objectives() records.
[[nodiscard]] pareto::Vec recompute_base(const Specification& spec,
                                         const Implementation& impl);

/// Base metrics plus the per-scenario energies of `impl` — the inputs of
/// objective-expression evaluation.
[[nodiscard]] MetricValues recompute_metrics(const Specification& spec,
                                             const Implementation& impl);

/// Recompute the *Pareto axes* of `impl` under the specification's objective
/// expressions (the classic latency/energy/cost triple when none are
/// declared — in that case identical to recompute_base).  This is the vector
/// the exploration's archive and certification compare against.
[[nodiscard]] pareto::Vec recompute_objectives(const Specification& spec,
                                               const Implementation& impl);

/// Full feasibility check: binding validity, route well-formedness (simple,
/// hop-bounded, connects the bound resources), schedule consistency
/// (precedence + communication delays + resource exclusivity) and agreement
/// of the recorded objectives with an independent recomputation.  Returns an
/// empty string when everything holds, else a diagnostic.
[[nodiscard]] std::string validate_implementation(const Specification& spec,
                                                  const Implementation& impl);

}  // namespace aspmt::synth
