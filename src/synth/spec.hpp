// System-level synthesis specifications.
//
// A specification couples an *application* (tasks and messages forming a
// DAG), an *architecture* (resources joined by directed links) and *mapping
// options* (task -> resource candidates with per-option WCET and energy).
// This is the specification-graph model of the symbolic system synthesis
// literature (Andres et al. LPNMR'13, Biewer et al. DATE'15, Neubauer et al.
// DATE'17/'18) that the DSE explores.
//
// Communication is store-and-forward over hop-bounded simple routes; a link
// traversal of message m costs  payload(m) * hop_delay(link)  time and
// payload(m) * hop_energy(link)  energy.  Link contention is not modelled
// (dedicated-bandwidth links), matching the simplification used in the
// symbolic encodings of the paper series.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "synth/objective_expr.hpp"

namespace aspmt::synth {

using TaskId = std::uint32_t;
using MessageId = std::uint32_t;
using ResourceId = std::uint32_t;
using LinkId = std::uint32_t;

enum class ResourceKind : std::uint8_t { Processor, Router, Bus };

struct Task {
  std::string name;
};

/// A data dependency from `src` to `dst` carrying `payload` units.
struct Message {
  std::string name;
  TaskId src = 0;
  TaskId dst = 0;
  std::int64_t payload = 1;
};

struct Resource {
  std::string name;
  ResourceKind kind = ResourceKind::Processor;
  std::int64_t cost = 0;  ///< monetary/area cost charged when allocated
  /// Maximum number of tasks that may be bound to this resource
  /// (0 = unlimited).
  std::uint32_t capacity = 0;
};

/// Directed communication link.
struct Link {
  ResourceId from = 0;
  ResourceId to = 0;
  std::int64_t hop_delay = 1;   ///< time per payload unit
  std::int64_t hop_energy = 1;  ///< energy per payload unit
};

/// One way of executing a task on a resource.
struct MappingOption {
  TaskId task = 0;
  ResourceId resource = 0;
  std::int64_t wcet = 1;
  std::int64_t energy = 0;
};

class Specification {
 public:
  TaskId add_task(std::string name);
  MessageId add_message(std::string name, TaskId src, TaskId dst,
                        std::int64_t payload = 1);
  ResourceId add_resource(std::string name, ResourceKind kind, std::int64_t cost,
                          std::uint32_t capacity = 0);

  /// Adjust a resource's task capacity after creation (0 = unlimited).
  void set_capacity(ResourceId r, std::uint32_t capacity) {
    resources_[r].capacity = capacity;
  }
  LinkId add_link(ResourceId from, ResourceId to, std::int64_t hop_delay = 1,
                  std::int64_t hop_energy = 1);
  std::size_t add_mapping(TaskId task, ResourceId resource, std::int64_t wcet,
                          std::int64_t energy);

  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }
  [[nodiscard]] const std::vector<Message>& messages() const noexcept { return messages_; }
  [[nodiscard]] const std::vector<Resource>& resources() const noexcept { return resources_; }
  [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }
  [[nodiscard]] const std::vector<MappingOption>& mappings() const noexcept { return mappings_; }

  /// Indices into mappings() for one task.
  [[nodiscard]] const std::vector<std::size_t>& mappings_of(TaskId t) const {
    return mappings_by_task_[t];
  }

  /// Outgoing link ids of a resource.
  [[nodiscard]] const std::vector<LinkId>& links_from(ResourceId r) const {
    return links_from_[r];
  }

  /// Routing hop bound; 0 (default) means "auto": the largest shortest-path
  /// distance between any mapping-candidate pair of any message.
  std::uint32_t max_hops = 0;

  /// Hard end-to-end deadline on the makespan (0 = none).  Implementations
  /// with a larger latency are infeasible, not merely dominated.
  std::int64_t latency_bound = 0;

  /// Effective hop bound (resolves the auto setting).
  [[nodiscard]] std::uint32_t effective_max_hops() const;

  /// All-pairs shortest hop counts over links (kUnreachable when absent).
  static constexpr std::uint32_t kUnreachable = 0xffffffffU;
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> hop_distances() const;

  // ---- objective combinators ----------------------------------------------

  /// Declare a named energy scenario (factors default to 1 per resource).
  std::size_t add_scenario(std::string name);
  /// Set the per-resource energy factor (>= 1) of scenario `s`.
  void set_scenario_factor(std::size_t s, ResourceId r, std::int64_t factor);
  [[nodiscard]] const std::vector<Scenario>& scenarios() const noexcept {
    return scenarios_;
  }
  /// Index of a scenario by name, or npos.
  [[nodiscard]] std::size_t scenario_index(std::string_view name) const noexcept;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Declare one Pareto axis.  With no declared axes the specification uses
  /// the classic latency/energy/cost triple (default_objectives()).
  void add_objective(ObjectiveExpr expr) { objectives_.push_back(std::move(expr)); }
  [[nodiscard]] const std::vector<ObjectiveExpr>& objective_exprs() const noexcept {
    return objectives_;
  }
  /// The classic latency/energy/cost axes used when none are declared.
  [[nodiscard]] static std::vector<ObjectiveExpr> default_objectives();
  /// Declared axes, or the default triple when none are declared.
  [[nodiscard]] std::vector<ObjectiveExpr> effective_objectives() const;
  /// Number of Pareto axes the exploration sees.
  [[nodiscard]] std::size_t axis_count() const noexcept {
    return objectives_.empty() ? 3 : objectives_.size();
  }

  /// Structural sanity: every task has a mapping, every message joins
  /// existing tasks, and every message admits at least one routable
  /// candidate binding pair.  Also validates scenario declarations and
  /// objective expressions.  Returns an empty string when sound.
  [[nodiscard]] std::string validate() const;

 private:
  std::vector<Task> tasks_;
  std::vector<Message> messages_;
  std::vector<Resource> resources_;
  std::vector<Link> links_;
  std::vector<MappingOption> mappings_;
  std::vector<std::vector<std::size_t>> mappings_by_task_;
  std::vector<std::vector<LinkId>> links_from_;
  std::vector<Scenario> scenarios_;
  std::vector<ObjectiveExpr> objectives_;
};

}  // namespace aspmt::synth
