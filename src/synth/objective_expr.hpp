// Spec-level objective combinator trees.
//
// A specification may replace the default latency/energy/cost Pareto axes by
// a list of *objective expressions*: each expression is one axis of the
// dominance relation, built from the three base metrics (optionally
// evaluated under a named energy *scenario*) and the combinators
//
//   lex(a, b, ...)        lexicographic order, packed into one scalar
//   minmax(a, b, ...)     worst (largest) of the children
//   weighted(2*a+3*b)     positive-integer weighted aggregate
//   worst(e@s1, e@s2)     best worst-case over a scenario set (robustness)
//
// Lexicographic axes are represented as a single packed integer
// Σ clamp(v_i, 0, cap_i) · stride_i with *static* per-child caps derived
// from the specification (see expr_cap).  Because clamping and packing are
// monotone in every child, the packed axis is a well-defined monotone
// objective for ANY cap values; the caps merely decide up to which magnitude
// the packing is faithful to the true lexicographic order.  The caps are
// part of the axis definition and are serialized into proof bindings, so
// the runtime tree, the witness recomputation and the proof checker always
// agree on them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aspmt::synth {

class Specification;

/// Named energy scenario: per-resource integer factors (>= 1) scaling every
/// energy contribution attributed to that resource (execution energy of
/// tasks bound there; communication energy of links leaving it).
struct Scenario {
  std::string name;
  /// factor[r] for resource r; entries beyond the vector default to 1.
  std::vector<std::int64_t> factor;

  [[nodiscard]] std::int64_t factor_of(std::size_t resource) const noexcept {
    return resource < factor.size() ? factor[resource] : 1;
  }
};

/// One node of an objective expression tree.
struct ObjectiveExpr {
  enum class Kind : std::uint8_t { Metric, Lex, MinMax, Weighted, Worst };

  Kind kind = Kind::Metric;
  /// Metric leaves: "latency" | "energy" | "cost".
  std::string metric;
  /// Optional scenario name for an energy leaf ("" = nominal).
  std::string scenario;
  /// Weighted: positive integer weight per child.
  std::vector<std::int64_t> weights;
  std::vector<ObjectiveExpr> children;

  bool operator==(const ObjectiveExpr&) const = default;
};

/// Compact display/round-trip form, e.g. "lex(latency,energy@hot)" or
/// "weighted(2*energy+3*cost)".  Inverse of parse_objective_expr.
[[nodiscard]] std::string to_string(const ObjectiveExpr& expr);

/// Parse one whitespace-free objective expression.  On success fills `out`
/// and returns an empty string; otherwise returns the reason.
[[nodiscard]] std::string parse_objective_expr(std::string_view text,
                                               ObjectiveExpr& out);

/// Structural validation of an expression against a specification: known
/// metrics, declared scenarios (energy leaves only), weight arity/positivity,
/// child counts, bounded size, and packable lex caps.  Empty string = valid.
[[nodiscard]] std::string validate_objective_expr(const Specification& spec,
                                                  const ObjectiveExpr& expr);

/// Static upper bound ("cap") of an expression's value over all feasible
/// implementations, derived from the specification alone.  Used as the lex
/// packing caps; also bounds overflow analysis.  Saturates at int64 max / 4.
[[nodiscard]] std::int64_t expr_cap(const Specification& spec,
                                    const ObjectiveExpr& expr);

/// Lex packing over child values with the given caps: the children are
/// clamped into [0, cap_i] and packed big-endian (child 0 most significant).
/// Monotone in every child for any caps.  Caps must satisfy
/// Π (cap_i + 1) <= int64 max (validate_objective_expr enforces this).
[[nodiscard]] std::int64_t lex_pack(const std::vector<std::int64_t>& values,
                                    const std::vector<std::int64_t>& caps);

/// Base metrics of an implementation plus its per-scenario energies, the
/// inputs of expression evaluation.
struct MetricValues {
  std::int64_t latency = 0;
  std::int64_t energy = 0;  ///< nominal
  std::int64_t cost = 0;
  /// Parallel to Specification::scenarios().
  std::vector<std::int64_t> scenario_energy;
};

/// Evaluate an expression over concrete metric values (spec resolves the
/// scenario names and the lex caps).
[[nodiscard]] std::int64_t evaluate_objective_expr(const Specification& spec,
                                                   const ObjectiveExpr& expr,
                                                   const MetricValues& values);

}  // namespace aspmt::synth
