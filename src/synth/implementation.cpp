#include "synth/implementation.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace aspmt::synth {

std::string Implementation::describe(const Specification& spec) const {
  std::ostringstream os;
  os << "objectives: latency=" << latency << " energy=" << energy
     << " cost=" << cost << "\n";
  for (TaskId t = 0; t < spec.tasks().size(); ++t) {
    os << "  " << spec.tasks()[t].name << " -> "
       << spec.resources()[binding[t]].name << " @t=" << start[t]
       << " (wcet=" << spec.mappings()[option_of_task[t]].wcet << ")\n";
  }
  for (MessageId m = 0; m < spec.messages().size(); ++m) {
    const Message& msg = spec.messages()[m];
    os << "  " << msg.name << ": " << spec.resources()[binding[msg.src]].name;
    for (const LinkId l : route[m]) {
      os << " -> " << spec.resources()[spec.links()[l].to].name;
    }
    os << "\n";
  }
  return os.str();
}

std::string Implementation::describe_schedule(const Specification& spec) const {
  std::ostringstream os;
  if (latency <= 0) return "(empty schedule)\n";
  // Compress the time axis to at most ~72 columns.
  const std::int64_t unit = std::max<std::int64_t>(1, (latency + 71) / 72);
  const auto columns = static_cast<std::size_t>((latency + unit - 1) / unit);

  std::size_t label_width = 0;
  for (const Resource& r : spec.resources()) {
    label_width = std::max(label_width, r.name.size());
  }

  for (ResourceId r = 0; r < spec.resources().size(); ++r) {
    std::string row(columns, '.');
    bool used = false;
    for (TaskId t = 0; t < spec.tasks().size(); ++t) {
      if (binding[t] != r) continue;
      used = true;
      const std::int64_t begin = start[t];
      const std::int64_t end = begin + spec.mappings()[option_of_task[t]].wcet;
      const char label =
          static_cast<char>('A' + static_cast<int>(t % 26));
      for (std::int64_t x = begin; x < end; ++x) {
        const auto col = static_cast<std::size_t>(x / unit);
        if (col < columns) row[col] = label;
      }
    }
    if (!used) continue;
    os << std::left << std::setw(static_cast<int>(label_width) + 2)
       << spec.resources()[r].name << "|" << row << "|\n";
  }
  os << std::left << std::setw(static_cast<int>(label_width) + 2) << "t" << " 0";
  const std::string tail = std::to_string(latency);
  if (columns > tail.size() + 2) {
    os << std::string(columns - tail.size() - 1, ' ') << tail;
  }
  os << "  (1 column = " << unit << " time unit" << (unit == 1 ? "" : "s") << ")\n";
  // Legend.
  for (TaskId t = 0; t < spec.tasks().size(); ++t) {
    os << "  " << static_cast<char>('A' + static_cast<int>(t % 26)) << " = "
       << spec.tasks()[t].name << " @" << start[t] << "\n";
  }
  return os.str();
}

}  // namespace aspmt::synth
