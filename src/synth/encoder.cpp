#include "synth/encoder.hpp"

#include <cassert>
#include <limits>
#include <map>
#include <utility>

#include "asp/cardinality.hpp"

namespace aspmt::synth {

namespace {

using asp::Atom;
using asp::BodyLit;
using asp::Lit;
using asp::neg;
using asp::pos;

std::string atom_name(const char* functor, std::initializer_list<std::string> args) {
  std::string s = functor;
  s += '(';
  bool first = true;
  for (const auto& a : args) {
    if (!first) s += ',';
    s += a;
    first = false;
  }
  s += ')';
  return s;
}

}  // namespace

Encoding encode(const Specification& spec, asp::Solver& solver,
                theory::LinearSumPropagator& linear,
                theory::DifferencePropagator& dl,
                const EncodeOptions& options) {
  assert(spec.validate().empty() && "specification must be sound");
  Encoding enc;
  const auto& tasks = spec.tasks();
  const auto& msgs = spec.messages();
  const auto& res = spec.resources();
  const auto& links = spec.links();
  const std::size_t T = tasks.size();
  const std::size_t M = msgs.size();
  const std::size_t R = res.size();
  const std::size_t L = links.size();
  const std::uint32_t H = spec.effective_max_hops();
  enc.hops = H;
  const auto dist = spec.hop_distances();

  asp::Program& prog = enc.program;

  // ---- binding atoms -----------------------------------------------------
  enc.bind_atom.resize(T);
  for (TaskId t = 0; t < T; ++t) {
    for (const std::size_t mi : spec.mappings_of(t)) {
      const MappingOption& o = spec.mappings()[mi];
      const Atom a = prog.new_atom(
          atom_name("bind", {tasks[t].name, res[o.resource].name}));
      prog.choice_rule(a);
      enc.bind_atom[t].push_back(a);
    }
  }

  // Candidate resources per task.
  std::vector<std::vector<char>> task_res(T, std::vector<char>(R, 0));
  for (const MappingOption& o : spec.mappings()) task_res[o.task][o.resource] = 1;

  // ---- routing -----------------------------------------------------------
  enc.head_atom.assign(M, {});
  enc.step_atom.assign(M, {});
  enc.arrived_atom.assign(M, {});
  enc.arrived_acc_atom.assign(M, {});

  for (MessageId m = 0; m < M; ++m) {
    const Message& msg = msgs[m];
    enc.head_atom[m].assign(H + 1, std::vector<Atom>(R, Encoding::kNoAtom));
    enc.step_atom[m].assign(H + 1, std::vector<Atom>(L, Encoding::kNoAtom));
    enc.arrived_atom[m].assign(H + 1, Encoding::kNoAtom);
    enc.arrived_acc_atom[m].assign(H + 1, Encoding::kNoAtom);

    // Reachability pruning: min hop distance from any source candidate and
    // to any destination candidate.
    std::vector<std::uint32_t> from_src(R, Specification::kUnreachable);
    std::vector<std::uint32_t> to_dst(R, Specification::kUnreachable);
    for (const std::size_t mi : spec.mappings_of(msg.src)) {
      const ResourceId s = spec.mappings()[mi].resource;
      for (ResourceId r = 0; r < R; ++r) {
        from_src[r] = std::min(from_src[r], dist[s][r]);
      }
    }
    for (const std::size_t mi : spec.mappings_of(msg.dst)) {
      const ResourceId d = spec.mappings()[mi].resource;
      for (ResourceId r = 0; r < R; ++r) {
        to_dst[r] = std::min(to_dst[r], dist[r][d]);
      }
    }
    auto feasible = [&](std::uint32_t h, ResourceId r) {
      return from_src[r] != Specification::kUnreachable && from_src[r] <= h &&
             to_dst[r] != Specification::kUnreachable && to_dst[r] <= H - h;
    };

    // arrived-accumulator atoms exist for every hop (atoms without rules are
    // simply false, which is exactly the intended semantics).
    for (std::uint32_t h = 0; h <= H; ++h) {
      enc.arrived_acc_atom[m][h] = prog.new_atom(
          atom_name("arrived_by", {msg.name, std::to_string(h)}));
    }

    // Hop 0: the head starts at the source task's resource.
    for (std::size_t i = 0; i < spec.mappings_of(msg.src).size(); ++i) {
      const ResourceId r = spec.mappings()[spec.mappings_of(msg.src)[i]].resource;
      if (!feasible(0, r)) continue;
      Atom& head = enc.head_atom[m][0][r];
      if (head == Encoding::kNoAtom) {
        head = prog.new_atom(
            atom_name("head", {msg.name, "0", res[r].name}));
      }
      prog.rule(head, {pos(enc.bind_atom[msg.src][i])});
    }

    // Hops 1..H: guarded steps along links.
    for (std::uint32_t h = 1; h <= H; ++h) {
      for (ResourceId r = 0; r < R; ++r) {
        if (enc.head_atom[m][h - 1][r] == Encoding::kNoAtom) continue;
        for (const LinkId l : spec.links_from(r)) {
          const ResourceId r2 = links[l].to;
          if (!feasible(h, r2)) continue;
          const Atom step = prog.new_atom(atom_name(
              "step", {msg.name, std::to_string(h), res[r].name, res[r2].name}));
          prog.choice_rule(step, {pos(enc.head_atom[m][h - 1][r]),
                                  neg(enc.arrived_acc_atom[m][h - 1])});
          enc.step_atom[m][h][l] = step;
          Atom& head = enc.head_atom[m][h][r2];
          if (head == Encoding::kNoAtom) {
            head = prog.new_atom(atom_name(
                "head", {msg.name, std::to_string(h), res[r2].name}));
          }
          prog.rule(head, {pos(step)});
        }
      }
    }

    // Arrival: the head sits on the resource the destination task is bound
    // to.  arrived(m,h) is derived, never guessed.
    for (std::uint32_t h = 0; h <= H; ++h) {
      for (std::size_t i = 0; i < spec.mappings_of(msg.dst).size(); ++i) {
        const ResourceId r = spec.mappings()[spec.mappings_of(msg.dst)[i]].resource;
        if (enc.head_atom[m][h][r] == Encoding::kNoAtom) continue;
        Atom& arr = enc.arrived_atom[m][h];
        if (arr == Encoding::kNoAtom) {
          arr = prog.new_atom(
              atom_name("arrived", {msg.name, std::to_string(h)}));
        }
        prog.rule(arr, {pos(enc.head_atom[m][h][r]),
                        pos(enc.bind_atom[msg.dst][i])});
      }
      if (enc.arrived_atom[m][h] != Encoding::kNoAtom) {
        prog.rule(enc.arrived_acc_atom[m][h], {pos(enc.arrived_atom[m][h])});
      }
      if (h > 0) {
        prog.rule(enc.arrived_acc_atom[m][h],
                  {pos(enc.arrived_acc_atom[m][h - 1])});
      }
    }

    // Every message must arrive within the hop bound.
    prog.integrity({neg(enc.arrived_acc_atom[m][H])});

    // Simple walks: no resource is visited twice.
    for (ResourceId r = 0; r < R; ++r) {
      for (std::uint32_t h1 = 0; h1 <= H; ++h1) {
        if (enc.head_atom[m][h1][r] == Encoding::kNoAtom) continue;
        for (std::uint32_t h2 = h1 + 1; h2 <= H; ++h2) {
          if (enc.head_atom[m][h2][r] == Encoding::kNoAtom) continue;
          prog.integrity({pos(enc.head_atom[m][h1][r]),
                          pos(enc.head_atom[m][h2][r])});
        }
      }
    }
  }

  // ---- allocation --------------------------------------------------------
  enc.alloc_atom.resize(R);
  for (ResourceId r = 0; r < R; ++r) {
    enc.alloc_atom[r] = prog.new_atom(atom_name("alloc", {res[r].name}));
  }
  for (TaskId t = 0; t < T; ++t) {
    for (std::size_t i = 0; i < spec.mappings_of(t).size(); ++i) {
      const ResourceId r = spec.mappings()[spec.mappings_of(t)[i]].resource;
      prog.rule(enc.alloc_atom[r], {pos(enc.bind_atom[t][i])});
    }
  }
  for (MessageId m = 0; m < M; ++m) {
    for (std::uint32_t h = 0; h <= H; ++h) {
      for (ResourceId r = 0; r < R; ++r) {
        if (enc.head_atom[m][h][r] != Encoding::kNoAtom) {
          prog.rule(enc.alloc_atom[r], {pos(enc.head_atom[m][h][r])});
        }
      }
    }
  }

  // ---- binding-pair floors -------------------------------------------------
  // Once both endpoints of a message are bound, its communication must cost
  // at least the cheapest path between the two resources — in delay and in
  // energy — regardless of the route eventually chosen.  These floors give
  // partial assignment evaluation teeth *before* any routing decision:
  //  * copair atoms guard minimal-communication-energy terms,
  //  * guarded difference-logic edges carry minimal end-to-end delays,
  //  * pairs that cannot be connected within the hop bound are forbidden
  //    outright.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  auto weighted_apsp = [&](auto link_weight) {
    std::vector<std::vector<std::int64_t>> d(R, std::vector<std::int64_t>(R, kInf));
    for (ResourceId r = 0; r < R; ++r) d[r][r] = 0;
    for (const Link& l : links) {
      d[l.from][l.to] = std::min(d[l.from][l.to], link_weight(l));
    }
    for (ResourceId k = 0; k < R; ++k) {
      for (ResourceId i = 0; i < R; ++i) {
        for (ResourceId j = 0; j < R; ++j) {
          if (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
        }
      }
    }
    return d;
  };
  const auto min_delay = weighted_apsp([](const Link& l) { return l.hop_delay; });
  const auto min_energy = weighted_apsp([](const Link& l) { return l.hop_energy; });

  struct FloorTerm {
    asp::Atom copair;
    std::int64_t weight;
  };
  std::vector<FloorTerm> floor_terms;
  struct FloorEdge {
    TaskId src;
    TaskId dst;
    asp::Atom bind_src;
    asp::Atom bind_dst;
    std::int64_t weight;
  };
  std::vector<FloorEdge> floor_edges;

  for (MessageId m = 0; options.objective_floors && m < M; ++m) {
    const Message& msg = msgs[m];
    std::map<std::pair<ResourceId, ResourceId>, asp::Atom> copair_of;
    for (std::size_t i = 0; i < spec.mappings_of(msg.src).size(); ++i) {
      const ResourceId r1 = spec.mappings()[spec.mappings_of(msg.src)[i]].resource;
      const std::int64_t w1 = spec.mappings()[spec.mappings_of(msg.src)[i]].wcet;
      for (std::size_t j = 0; j < spec.mappings_of(msg.dst).size(); ++j) {
        const ResourceId r2 = spec.mappings()[spec.mappings_of(msg.dst)[j]].resource;
        const Atom b1 = enc.bind_atom[msg.src][i];
        const Atom b2 = enc.bind_atom[msg.dst][j];
        if (dist[r1][r2] == Specification::kUnreachable || dist[r1][r2] > H) {
          // This endpoint combination can never deliver the message.
          prog.integrity({pos(b1), pos(b2)});
          continue;
        }
        floor_edges.push_back(
            FloorEdge{msg.src, msg.dst, b1, b2,
                      w1 + min_delay[r1][r2] * msg.payload});
        if (r1 != r2 && min_energy[r1][r2] > 0) {
          const auto key = std::make_pair(r1, r2);
          auto it = copair_of.find(key);
          if (it == copair_of.end()) {
            const Atom cp = prog.new_atom(atom_name(
                "copair", {msg.name, res[r1].name, res[r2].name}));
            floor_terms.push_back(
                FloorTerm{cp, min_energy[r1][r2] * msg.payload});
            it = copair_of.emplace(key, cp).first;
          }
          prog.rule(it->second, {pos(b1), pos(b2)});
        }
      }
    }
  }

  // ---- serialization (resource sharing) -----------------------------------
  for (TaskId t1 = 0; t1 < T; ++t1) {
    for (TaskId t2 = t1 + 1; t2 < T; ++t2) {
      bool shares = false;
      for (ResourceId r = 0; r < R; ++r) {
        if (task_res[t1][r] != 0 && task_res[t2][r] != 0) {
          shares = true;
          break;
        }
      }
      if (!shares) continue;
      const Atom same = prog.new_atom(
          atom_name("share", {tasks[t1].name, tasks[t2].name}));
      for (std::size_t i = 0; i < spec.mappings_of(t1).size(); ++i) {
        for (std::size_t j = 0; j < spec.mappings_of(t2).size(); ++j) {
          const ResourceId r1 = spec.mappings()[spec.mappings_of(t1)[i]].resource;
          const ResourceId r2 = spec.mappings()[spec.mappings_of(t2)[j]].resource;
          if (r1 != r2) continue;
          prog.rule(same, {pos(enc.bind_atom[t1][i]), pos(enc.bind_atom[t2][j])});
        }
      }
      const Atom p12 = prog.new_atom(
          atom_name("prec", {tasks[t1].name, tasks[t2].name}));
      const Atom p21 = prog.new_atom(
          atom_name("prec", {tasks[t2].name, tasks[t1].name}));
      prog.choice_rule(p12, {pos(same)});
      prog.choice_rule(p21, {pos(same)});
      prog.integrity({pos(same), neg(p12), neg(p21)});
      prog.integrity({pos(p12), pos(p21)});
      enc.prec_pairs.push_back(Encoding::PrecPair{t1, t2, p12, p21});
    }
  }

  // ---- compile the program into the solver --------------------------------
  enc.compiled = asp::compile(prog, solver);

  // Exactly one binding per task; at most one step per message and hop.
  for (TaskId t = 0; t < T; ++t) {
    std::vector<Lit> lits;
    for (const Atom a : enc.bind_atom[t]) lits.push_back(enc.lit(a));
    asp::encode_exactly_one(solver, lits);
  }
  for (MessageId m = 0; m < M; ++m) {
    for (std::uint32_t h = 1; h <= H; ++h) {
      std::vector<Lit> lits;
      for (LinkId l = 0; l < L; ++l) {
        if (enc.step_atom[m][h][l] != Encoding::kNoAtom) {
          lits.push_back(enc.lit(enc.step_atom[m][h][l]));
        }
      }
      if (lits.size() >= 2) asp::encode_at_most_one(solver, lits);
    }
  }

  // Resource capacities: at most `capacity` tasks bound to a resource.
  for (ResourceId r = 0; r < R; ++r) {
    if (res[r].capacity == 0) continue;
    std::vector<Lit> bound_here;
    for (TaskId t = 0; t < T; ++t) {
      for (std::size_t i = 0; i < spec.mappings_of(t).size(); ++i) {
        if (spec.mappings()[spec.mappings_of(t)[i]].resource == r) {
          bound_here.push_back(enc.lit(enc.bind_atom[t][i]));
        }
      }
    }
    asp::encode_at_most(solver, bound_here, res[r].capacity);
  }

  // ---- objectives: cost and energy (guarded linear sums) ------------------
  {
    std::vector<theory::Term> cost_terms;
    for (ResourceId r = 0; r < R; ++r) {
      if (res[r].cost > 0) {
        cost_terms.push_back(theory::Term{enc.lit(enc.alloc_atom[r]), res[r].cost});
      }
    }
    enc.cost_sum = linear.add_sum("cost", std::move(cost_terms));

    std::vector<theory::Term> energy_terms;
    for (TaskId t = 0; t < T; ++t) {
      for (std::size_t i = 0; i < spec.mappings_of(t).size(); ++i) {
        const MappingOption& o = spec.mappings()[spec.mappings_of(t)[i]];
        if (o.energy > 0) {
          energy_terms.push_back(theory::Term{enc.lit(enc.bind_atom[t][i]), o.energy});
        }
      }
    }
    for (MessageId m = 0; m < M; ++m) {
      for (std::uint32_t h = 1; h <= H; ++h) {
        for (LinkId l = 0; l < L; ++l) {
          if (enc.step_atom[m][h][l] == Encoding::kNoAtom) continue;
          const std::int64_t e = links[l].hop_energy * msgs[m].payload;
          if (e > 0) {
            energy_terms.push_back(
                theory::Term{enc.lit(enc.step_atom[m][h][l]), e});
          }
        }
      }
    }
    enc.energy_sum = linear.add_sum("energy", std::move(energy_terms));

    // Redundant energy floor: task terms + minimal communication energy of
    // each bound endpoint pair (never exceeds the true energy).
    std::vector<theory::Term> floor;
    for (TaskId t = 0; t < T; ++t) {
      for (std::size_t i = 0; i < spec.mappings_of(t).size(); ++i) {
        const MappingOption& o = spec.mappings()[spec.mappings_of(t)[i]];
        if (o.energy > 0) {
          floor.push_back(theory::Term{enc.lit(enc.bind_atom[t][i]), o.energy});
        }
      }
    }
    for (const FloorTerm& ft : floor_terms) {
      floor.push_back(theory::Term{enc.lit(ft.copair), ft.weight});
    }
    enc.energy_floor_sum = linear.add_sum("energy_floor", std::move(floor));
  }

  // ---- latency: difference-logic scheduling -------------------------------
  enc.start_node.resize(T);
  for (TaskId t = 0; t < T; ++t) {
    enc.start_node[t] = dl.new_node("start(" + tasks[t].name + ")");
  }
  enc.makespan = dl.new_node("makespan");
  if (spec.latency_bound > 0) {
    // Hard deadline: enforced unconditionally (infeasibility, not
    // dominance).  Objective bounds added later are separate entries.
    dl.add_bound(enc.makespan, spec.latency_bound);
  }
  for (TaskId t = 0; t < T; ++t) {
    for (std::size_t i = 0; i < spec.mappings_of(t).size(); ++i) {
      const MappingOption& o = spec.mappings()[spec.mappings_of(t)[i]];
      dl.add_edge(enc.start_node[t], enc.makespan, o.wcet,
                  {enc.lit(enc.bind_atom[t][i])});
    }
  }

  enc.msgpos_node.assign(M, {});
  for (MessageId m = 0; m < M; ++m) {
    const Message& msg = msgs[m];
    enc.msgpos_node[m].assign(H + 1, Encoding::kNoNode);
    for (std::uint32_t h = 0; h <= H; ++h) {
      bool head_exists = false;
      for (ResourceId r = 0; r < R; ++r) {
        if (enc.head_atom[m][h][r] != Encoding::kNoAtom) {
          head_exists = true;
          break;
        }
      }
      if (head_exists) {
        enc.msgpos_node[m][h] =
            dl.new_node(atom_name("msgpos", {msg.name, std::to_string(h)}));
      }
    }
    // Departure: after the producer finishes.
    for (std::size_t i = 0; i < spec.mappings_of(msg.src).size(); ++i) {
      const MappingOption& o = spec.mappings()[spec.mappings_of(msg.src)[i]];
      dl.add_edge(enc.start_node[msg.src], enc.msgpos_node[m][0], o.wcet,
                  {enc.lit(enc.bind_atom[msg.src][i])});
    }
    // Store-and-forward hops.
    for (std::uint32_t h = 1; h <= H; ++h) {
      for (LinkId l = 0; l < L; ++l) {
        if (enc.step_atom[m][h][l] == Encoding::kNoAtom) continue;
        assert(enc.msgpos_node[m][h] != Encoding::kNoNode &&
               enc.msgpos_node[m][h - 1] != Encoding::kNoNode);
        dl.add_edge(enc.msgpos_node[m][h - 1], enc.msgpos_node[m][h],
                    links[l].hop_delay * msg.payload,
                    {enc.lit(enc.step_atom[m][h][l])});
      }
    }
    // Delivery gates the consumer.
    for (std::uint32_t h = 0; h <= H; ++h) {
      if (enc.arrived_atom[m][h] == Encoding::kNoAtom) continue;
      dl.add_edge(enc.msgpos_node[m][h], enc.start_node[msg.dst], 0,
                  {enc.lit(enc.arrived_atom[m][h])});
    }
  }

  // Delay floors: end-to-end minimal communication latency per endpoint
  // pair, active as soon as both bindings are decided.
  for (const FloorEdge& fe : floor_edges) {
    dl.add_edge(enc.start_node[fe.src], enc.start_node[fe.dst], fe.weight,
                {enc.lit(fe.bind_src), enc.lit(fe.bind_dst)});
  }

  // Serialization edges.
  for (const Encoding::PrecPair& pp : enc.prec_pairs) {
    for (std::size_t i = 0; i < spec.mappings_of(pp.t1).size(); ++i) {
      const MappingOption& o = spec.mappings()[spec.mappings_of(pp.t1)[i]];
      dl.add_edge(enc.start_node[pp.t1], enc.start_node[pp.t2], o.wcet,
                  {enc.lit(pp.t1_first), enc.lit(enc.bind_atom[pp.t1][i])});
    }
    for (std::size_t j = 0; j < spec.mappings_of(pp.t2).size(); ++j) {
      const MappingOption& o = spec.mappings()[spec.mappings_of(pp.t2)[j]];
      dl.add_edge(enc.start_node[pp.t2], enc.start_node[pp.t1], o.wcet,
                  {enc.lit(pp.t2_first), enc.lit(enc.bind_atom[pp.t2][j])});
    }
  }

  // ---- projection (decision atoms) ----------------------------------------
  for (TaskId t = 0; t < T; ++t) {
    for (const Atom a : enc.bind_atom[t]) enc.decision_lits.push_back(enc.lit(a));
  }
  for (MessageId m = 0; m < M; ++m) {
    for (std::uint32_t h = 1; h <= H; ++h) {
      for (LinkId l = 0; l < L; ++l) {
        if (enc.step_atom[m][h][l] != Encoding::kNoAtom) {
          enc.decision_lits.push_back(enc.lit(enc.step_atom[m][h][l]));
        }
      }
    }
  }
  for (const Encoding::PrecPair& pp : enc.prec_pairs) {
    enc.decision_lits.push_back(enc.lit(pp.t1_first));
    enc.decision_lits.push_back(enc.lit(pp.t2_first));
  }

  return enc;
}

Implementation decode_current(const Specification& spec, const Encoding& enc,
                              const asp::Solver& solver,
                              const theory::LinearSumPropagator& linear,
                              const theory::DifferencePropagator& dl) {
  const std::size_t T = spec.tasks().size();
  const std::size_t M = spec.messages().size();
  const std::size_t L = spec.links().size();
  Implementation impl;
  impl.option_of_task.assign(T, 0);
  impl.binding.assign(T, 0);
  impl.route.assign(M, {});
  impl.start.assign(T, 0);

  for (TaskId t = 0; t < T; ++t) {
    [[maybe_unused]] bool found = false;
    for (std::size_t i = 0; i < spec.mappings_of(t).size(); ++i) {
      if (solver.value(enc.lit(enc.bind_atom[t][i])) == asp::Lbool::True) {
        const std::size_t mi = spec.mappings_of(t)[i];
        impl.option_of_task[t] = mi;
        impl.binding[t] = spec.mappings()[mi].resource;
        found = true;
        break;
      }
    }
    assert(found && "total assignment must bind every task");
    impl.start[t] = dl.lower_bound(enc.start_node[t]);
  }

  for (MessageId m = 0; m < M; ++m) {
    for (std::uint32_t h = 1; h <= enc.hops; ++h) {
      if (enc.arrived_acc_atom[m][h - 1] != Encoding::kNoAtom &&
          solver.value(enc.lit(enc.arrived_acc_atom[m][h - 1])) ==
              asp::Lbool::True) {
        break;  // already delivered
      }
      for (LinkId l = 0; l < L; ++l) {
        if (enc.step_atom[m][h][l] == Encoding::kNoAtom) continue;
        if (solver.value(enc.lit(enc.step_atom[m][h][l])) == asp::Lbool::True) {
          impl.route[m].push_back(l);
          break;
        }
      }
    }
  }

  impl.latency = dl.lower_bound(enc.makespan);
  // At a total assignment every guard is decided, so the lower bounds of the
  // guarded sums are the exact objective values.
  impl.energy = linear.lower_bound(enc.energy_sum);
  impl.cost = linear.lower_bound(enc.cost_sum);
  return impl;
}

}  // namespace aspmt::synth
