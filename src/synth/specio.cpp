#include "synth/specio.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace aspmt::synth {

namespace {

const char* kind_name(ResourceKind k) {
  switch (k) {
    case ResourceKind::Processor: return "processor";
    case ResourceKind::Router: return "router";
    case ResourceKind::Bus: return "bus";
  }
  return "processor";
}

/// Split "key=value" tokens into a map; plain tokens go to `positional`.
struct TokenLine {
  std::vector<std::string> positional;
  std::map<std::string, std::int64_t> options;
};

TokenLine tokenize(const std::string& line, std::size_t line_no) {
  TokenLine out;
  std::istringstream iss(line);
  std::string tok;
  while (iss >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      out.positional.push_back(tok);
      continue;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    try {
      std::size_t used = 0;
      const std::int64_t v = std::stoll(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
      out.options[key] = v;
    } catch (const std::exception&) {
      throw SpecParseError("line " + std::to_string(line_no) +
                           ": bad integer in '" + tok + "'");
    }
  }
  return out;
}

std::int64_t opt_or(const TokenLine& t, const std::string& key,
                    std::int64_t fallback) {
  const auto it = t.options.find(key);
  return it == t.options.end() ? fallback : it->second;
}

std::int64_t require_opt(const TokenLine& t, const std::string& key,
                         std::size_t line_no) {
  const auto it = t.options.find(key);
  if (it == t.options.end()) {
    throw SpecParseError("line " + std::to_string(line_no) + ": missing " +
                         key + "=...");
  }
  return it->second;
}

}  // namespace

std::string to_text(const Specification& spec) {
  std::ostringstream os;
  os << "# aspmt-dse specification\n";
  if (spec.max_hops != 0) os << "max_hops " << spec.max_hops << "\n";
  if (spec.latency_bound != 0) os << "latency_bound " << spec.latency_bound << "\n";
  for (const Resource& r : spec.resources()) {
    os << "resource " << r.name << " " << kind_name(r.kind) << " cost=" << r.cost;
    if (r.capacity != 0) os << " capacity=" << r.capacity;
    os << "\n";
  }
  for (const Link& l : spec.links()) {
    os << "link " << spec.resources()[l.from].name << " "
       << spec.resources()[l.to].name << " delay=" << l.hop_delay
       << " energy=" << l.hop_energy << "\n";
  }
  for (const Task& t : spec.tasks()) os << "task " << t.name << "\n";
  for (const Message& m : spec.messages()) {
    os << "message " << m.name << " " << spec.tasks()[m.src].name << " "
       << spec.tasks()[m.dst].name << " payload=" << m.payload << "\n";
  }
  for (const MappingOption& o : spec.mappings()) {
    os << "map " << spec.tasks()[o.task].name << " "
       << spec.resources()[o.resource].name << " wcet=" << o.wcet
       << " energy=" << o.energy << "\n";
  }
  // Combinator declarations are emitted only when present, so classic specs
  // round-trip byte-identically (and their fingerprints stay stable).
  for (const Scenario& s : spec.scenarios()) {
    os << "scenario " << s.name;
    for (std::size_t r = 0; r < s.factor.size(); ++r) {
      if (s.factor[r] != 1) {
        os << " " << spec.resources()[r].name << "=" << s.factor[r];
      }
    }
    os << "\n";
  }
  for (const ObjectiveExpr& expr : spec.objective_exprs()) {
    os << "objective " << to_string(expr) << "\n";
  }
  return os.str();
}

Specification parse_specification(std::string_view text) {
  Specification spec;
  std::map<std::string, ResourceId> resource_by_name;
  std::map<std::string, TaskId> task_by_name;

  auto resource_of = [&](const std::string& name, std::size_t line_no) {
    const auto it = resource_by_name.find(name);
    if (it == resource_by_name.end()) {
      throw SpecParseError("line " + std::to_string(line_no) +
                           ": unknown resource '" + name + "'");
    }
    return it->second;
  };
  auto task_of = [&](const std::string& name, std::size_t line_no) {
    const auto it = task_by_name.find(name);
    if (it == task_by_name.end()) {
      throw SpecParseError("line " + std::to_string(line_no) +
                           ": unknown task '" + name + "'");
    }
    return it->second;
  };

  std::istringstream iss{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(iss, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const TokenLine t = tokenize(line, line_no);
    if (t.positional.empty()) continue;
    const std::string& head = t.positional.front();

    auto expect_args = [&](std::size_t n) {
      if (t.positional.size() != n + 1) {
        throw SpecParseError("line " + std::to_string(line_no) + ": '" + head +
                             "' expects " + std::to_string(n) + " names");
      }
    };

    if (head == "max_hops") {
      expect_args(1);
      spec.max_hops = static_cast<std::uint32_t>(std::stoll(t.positional[1]));
    } else if (head == "latency_bound") {
      expect_args(1);
      spec.latency_bound = std::stoll(t.positional[1]);
    } else if (head == "resource") {
      expect_args(2);
      const std::string& name = t.positional[1];
      const std::string& kind_str = t.positional[2];
      ResourceKind kind;
      if (kind_str == "processor") kind = ResourceKind::Processor;
      else if (kind_str == "router") kind = ResourceKind::Router;
      else if (kind_str == "bus") kind = ResourceKind::Bus;
      else {
        throw SpecParseError("line " + std::to_string(line_no) +
                             ": unknown resource kind '" + kind_str + "'");
      }
      if (resource_by_name.count(name) != 0) {
        throw SpecParseError("line " + std::to_string(line_no) +
                             ": duplicate resource '" + name + "'");
      }
      resource_by_name[name] = spec.add_resource(
          name, kind, require_opt(t, "cost", line_no),
          static_cast<std::uint32_t>(opt_or(t, "capacity", 0)));
    } else if (head == "link") {
      expect_args(2);
      spec.add_link(resource_of(t.positional[1], line_no),
                    resource_of(t.positional[2], line_no),
                    opt_or(t, "delay", 1), opt_or(t, "energy", 1));
    } else if (head == "task") {
      expect_args(1);
      const std::string& name = t.positional[1];
      if (task_by_name.count(name) != 0) {
        throw SpecParseError("line " + std::to_string(line_no) +
                             ": duplicate task '" + name + "'");
      }
      task_by_name[name] = spec.add_task(name);
    } else if (head == "message") {
      expect_args(3);
      spec.add_message(t.positional[1], task_of(t.positional[2], line_no),
                       task_of(t.positional[3], line_no),
                       opt_or(t, "payload", 1));
    } else if (head == "map") {
      expect_args(2);
      spec.add_mapping(task_of(t.positional[1], line_no),
                       resource_of(t.positional[2], line_no),
                       require_opt(t, "wcet", line_no),
                       opt_or(t, "energy", 0));
    } else if (head == "scenario") {
      expect_args(1);
      const std::string& name = t.positional[1];
      if (spec.scenario_index(name) != Specification::npos) {
        throw SpecParseError("line " + std::to_string(line_no) +
                             ": duplicate scenario '" + name + "'");
      }
      const std::size_t s = spec.add_scenario(name);
      for (const auto& [res, factor] : t.options) {
        spec.set_scenario_factor(s, resource_of(res, line_no), factor);
      }
    } else if (head == "objective") {
      expect_args(1);
      ObjectiveExpr expr;
      const std::string err = parse_objective_expr(t.positional[1], expr);
      if (!err.empty()) {
        throw SpecParseError("line " + std::to_string(line_no) + ": " + err);
      }
      spec.add_objective(std::move(expr));
    } else {
      throw SpecParseError("line " + std::to_string(line_no) +
                           ": unknown statement '" + head + "'");
    }
  }
  return spec;
}

void save_specification(const Specification& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw SpecParseError("cannot write '" + path + "'");
  out << to_text(spec);
}

Specification load_specification(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SpecParseError("cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_specification(buffer.str());
}

}  // namespace aspmt::synth
