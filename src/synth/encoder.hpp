// The ASPmT encoding of system synthesis.
//
// Combinatorial part (answer set program + cardinality clauses):
//   * binding    — choice atoms bind(t,o), exactly one option per task;
//   * routing    — a hop-indexed walk per message: head(m,h,r) positions,
//                  step(m,h,l) choice atoms move the head along links until
//                  it reaches the destination task's resource; walks are
//                  simple (no resource revisited) and hop-bounded;
//   * allocation — alloc(r) derived from bindings and traversed positions;
//   * serialization — for each task pair that can share a resource, choice
//                  atoms prec(t1,t2)/prec(t2,t1); exactly one is true when
//                  they do share a resource.
//
// Theory part:
//   * cost   = Σ cost(r)·alloc(r)                    (guarded linear sum)
//   * energy = Σ e(t,o)·bind(t,o) + Σ e(l)·step(m,h,l)
//   * latency: difference-logic nodes start(t), msgpos(m,h), makespan with
//     guarded edges for execution, store-and-forward hops and serialization;
//     the makespan lower bound is the latency objective.
//
// The routing reachability analysis prunes head/step atoms that cannot lie
// on any source-to-destination walk within the hop bound.
#pragma once

#include <cstdint>
#include <vector>

#include "asp/completion.hpp"
#include "asp/program.hpp"
#include "asp/solver.hpp"
#include "synth/implementation.hpp"
#include "synth/spec.hpp"
#include "theory/difference.hpp"
#include "theory/linear_sum.hpp"

namespace aspmt::synth {

struct Encoding {
  static constexpr asp::Atom kNoAtom = 0xffffffffU;
  static constexpr theory::DifferencePropagator::NodeId kNoNode = 0xffffffffU;

  asp::Program program;
  asp::CompiledProgram compiled;
  std::uint32_t hops = 0;

  /// bind_atom[t][i] for the i-th entry of spec.mappings_of(t).
  std::vector<std::vector<asp::Atom>> bind_atom;
  /// head_atom[m][h][r]; kNoAtom when unreachable.
  std::vector<std::vector<std::vector<asp::Atom>>> head_atom;
  /// step_atom[m][h][l] for h in 1..hops; kNoAtom when impossible.
  std::vector<std::vector<std::vector<asp::Atom>>> step_atom;
  /// arrived_atom[m][h] / arrived_acc_atom[m][h]; kNoAtom when impossible.
  std::vector<std::vector<asp::Atom>> arrived_atom;
  std::vector<std::vector<asp::Atom>> arrived_acc_atom;
  std::vector<asp::Atom> alloc_atom;

  struct PrecPair {
    TaskId t1 = 0;
    TaskId t2 = 0;
    asp::Atom t1_first = kNoAtom;
    asp::Atom t2_first = kNoAtom;
  };
  std::vector<PrecPair> prec_pairs;

  theory::LinearSumPropagator::SumId cost_sum = 0;
  theory::LinearSumPropagator::SumId energy_sum = 0;
  /// Redundant floor on the energy objective: task terms plus the minimal
  /// communication energy implied by each message's bound endpoints
  /// (copair atoms), valid before any routing is decided.  Never exceeds
  /// energy_sum in a total model.
  theory::LinearSumPropagator::SumId energy_floor_sum = 0;
  theory::DifferencePropagator::NodeId makespan = 0;
  std::vector<theory::DifferencePropagator::NodeId> start_node;  // per task
  std::vector<std::vector<theory::DifferencePropagator::NodeId>> msgpos_node;

  /// Positive literals of all guessed atoms (bind, step, prec) — the model
  /// projection used for enumeration blocking clauses.
  std::vector<asp::Lit> decision_lits;

  [[nodiscard]] asp::Lit lit(asp::Atom a) const { return compiled.lit(a); }
};

struct EncodeOptions {
  /// Emit the binding-pair floors (copair energy terms, minimal-delay DL
  /// edges, unroutable-pair constraints).  Disabling them is an ablation —
  /// results never change, partial-assignment bounds just get much weaker.
  bool objective_floors = true;
};

/// Build the full encoding into `solver` and the two theory propagators.
/// The propagators must be registered with the solver by the caller (in
/// order: linear, difference, unfounded-set checker, then any DSE
/// propagators).  Precondition: spec.validate() is empty.
[[nodiscard]] Encoding encode(const Specification& spec, asp::Solver& solver,
                              theory::LinearSumPropagator& linear,
                              theory::DifferencePropagator& dl,
                              const EncodeOptions& options = {});

/// Decode the solver's current *total* assignment (valid inside a
/// total-check callback, while the theory propagators are at fixpoint).
[[nodiscard]] Implementation decode_current(const Specification& spec,
                                            const Encoding& enc,
                                            const asp::Solver& solver,
                                            const theory::LinearSumPropagator& linear,
                                            const theory::DifferencePropagator& dl);

}  // namespace aspmt::synth
