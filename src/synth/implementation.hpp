// A decoded implementation: one feasible design point of the specification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pareto/point.hpp"
#include "synth/spec.hpp"

namespace aspmt::synth {

struct Implementation {
  /// Chosen mapping option (index into Specification::mappings) per task.
  std::vector<std::size_t> option_of_task;

  /// Resource executing each task (redundant with option_of_task; kept for
  /// convenience and validated for consistency).
  std::vector<ResourceId> binding;

  /// Route per message: ordered link ids from the source task's resource to
  /// the destination task's resource; empty when both share a resource.
  std::vector<std::vector<LinkId>> route;

  /// ASAP start time per task.
  std::vector<std::int64_t> start;

  std::int64_t latency = 0;
  std::int64_t energy = 0;
  std::int64_t cost = 0;

  /// Objective vector in the canonical order (latency, energy, cost).
  [[nodiscard]] pareto::Vec objectives() const { return {latency, energy, cost}; }

  /// Human-readable multi-line rendering.
  [[nodiscard]] std::string describe(const Specification& spec) const;

  /// ASCII Gantt chart of the schedule: one row per used processor, task
  /// executions as labelled blocks on a (possibly compressed) time axis.
  [[nodiscard]] std::string describe_schedule(const Specification& spec) const;
};

}  // namespace aspmt::synth
