#include "synth/validator.hpp"

#include <algorithm>
#include <set>

namespace aspmt::synth {
namespace {

/// Total communication delay of a message along its route.
std::int64_t route_delay(const Specification& spec, const Message& msg,
                         const std::vector<LinkId>& route) {
  std::int64_t delay = 0;
  for (const LinkId l : route) delay += spec.links()[l].hop_delay * msg.payload;
  return delay;
}

}  // namespace

pareto::Vec recompute_base(const Specification& spec,
                           const Implementation& impl) {
  // Energy: execution + communication.
  std::int64_t energy = 0;
  for (TaskId t = 0; t < spec.tasks().size(); ++t) {
    energy += spec.mappings()[impl.option_of_task[t]].energy;
  }
  for (MessageId m = 0; m < spec.messages().size(); ++m) {
    for (const LinkId l : impl.route[m]) {
      energy += spec.links()[l].hop_energy * spec.messages()[m].payload;
    }
  }
  // Cost: every resource that executes a task or is visited by a route.
  std::set<ResourceId> allocated;
  for (TaskId t = 0; t < spec.tasks().size(); ++t) allocated.insert(impl.binding[t]);
  for (MessageId m = 0; m < spec.messages().size(); ++m) {
    allocated.insert(impl.binding[spec.messages()[m].src]);
    for (const LinkId l : impl.route[m]) allocated.insert(spec.links()[l].to);
  }
  std::int64_t cost = 0;
  for (const ResourceId r : allocated) cost += spec.resources()[r].cost;
  // Latency: maximal finish time.
  std::int64_t latency = 0;
  for (TaskId t = 0; t < spec.tasks().size(); ++t) {
    latency = std::max(latency,
                       impl.start[t] + spec.mappings()[impl.option_of_task[t]].wcet);
  }
  return {latency, energy, cost};
}

MetricValues recompute_metrics(const Specification& spec,
                               const Implementation& impl) {
  MetricValues v;
  const pareto::Vec base = recompute_base(spec, impl);
  v.latency = base[0];
  v.energy = base[1];
  v.cost = base[2];
  v.scenario_energy.reserve(spec.scenarios().size());
  for (const Scenario& scn : spec.scenarios()) {
    // Execution energy scaled by the factor of the executing resource,
    // communication energy by the factor of the link's sending resource —
    // exactly the weights the encoder gives the scenario sum's terms.
    std::int64_t e = 0;
    for (TaskId t = 0; t < spec.tasks().size(); ++t) {
      const MappingOption& o = spec.mappings()[impl.option_of_task[t]];
      e += o.energy * scn.factor_of(o.resource);
    }
    for (MessageId m = 0; m < spec.messages().size(); ++m) {
      for (const LinkId l : impl.route[m]) {
        e += spec.links()[l].hop_energy * spec.messages()[m].payload *
             scn.factor_of(spec.links()[l].from);
      }
    }
    v.scenario_energy.push_back(e);
  }
  return v;
}

pareto::Vec recompute_objectives(const Specification& spec,
                                 const Implementation& impl) {
  if (spec.objective_exprs().empty()) return recompute_base(spec, impl);
  const MetricValues values = recompute_metrics(spec, impl);
  pareto::Vec out;
  out.reserve(spec.objective_exprs().size());
  for (const ObjectiveExpr& expr : spec.objective_exprs()) {
    out.push_back(evaluate_objective_expr(spec, expr, values));
  }
  return out;
}

std::string validate_implementation(const Specification& spec,
                                    const Implementation& impl) {
  const std::size_t T = spec.tasks().size();
  const std::size_t M = spec.messages().size();
  if (impl.option_of_task.size() != T || impl.binding.size() != T ||
      impl.start.size() != T || impl.route.size() != M) {
    return "implementation has inconsistent dimensions";
  }

  // Binding.
  for (TaskId t = 0; t < T; ++t) {
    const std::size_t mi = impl.option_of_task[t];
    if (mi >= spec.mappings().size()) return "mapping index out of range";
    const MappingOption& o = spec.mappings()[mi];
    if (o.task != t) return "task " + spec.tasks()[t].name + " bound via foreign option";
    if (o.resource != impl.binding[t]) {
      return "binding/option mismatch for task " + spec.tasks()[t].name;
    }
  }

  // Routes.
  const std::uint32_t hops = spec.effective_max_hops();
  for (MessageId m = 0; m < M; ++m) {
    const Message& msg = spec.messages()[m];
    const auto& route = impl.route[m];
    const ResourceId from = impl.binding[msg.src];
    const ResourceId to = impl.binding[msg.dst];
    if (route.empty()) {
      if (from != to) return "message " + msg.name + " lacks a route";
      continue;
    }
    if (route.size() > hops) return "message " + msg.name + " exceeds the hop bound";
    std::set<ResourceId> visited{from};
    ResourceId at = from;
    for (const LinkId l : route) {
      if (l >= spec.links().size()) return "route uses an unknown link";
      if (spec.links()[l].from != at) {
        return "route of " + msg.name + " is not contiguous";
      }
      at = spec.links()[l].to;
      if (!visited.insert(at).second) {
        return "route of " + msg.name + " revisits a resource";
      }
    }
    if (at != to) return "route of " + msg.name + " misses its destination";
  }

  // Schedule: start times, precedence and exclusivity.
  for (TaskId t = 0; t < T; ++t) {
    if (impl.start[t] < 0) return "negative start time";
  }
  for (MessageId m = 0; m < M; ++m) {
    const Message& msg = spec.messages()[m];
    const std::int64_t ready = impl.start[msg.src] +
                               spec.mappings()[impl.option_of_task[msg.src]].wcet +
                               route_delay(spec, msg, impl.route[m]);
    if (impl.start[msg.dst] < ready) {
      return "precedence violated for message " + msg.name;
    }
  }
  for (TaskId a = 0; a < T; ++a) {
    for (TaskId b = a + 1; b < T; ++b) {
      if (impl.binding[a] != impl.binding[b]) continue;
      const std::int64_t ea = impl.start[a] + spec.mappings()[impl.option_of_task[a]].wcet;
      const std::int64_t eb = impl.start[b] + spec.mappings()[impl.option_of_task[b]].wcet;
      const bool disjoint = (ea <= impl.start[b]) || (eb <= impl.start[a]);
      if (!disjoint) {
        return "tasks " + spec.tasks()[a].name + " and " + spec.tasks()[b].name +
               " overlap on " + spec.resources()[impl.binding[a]].name;
      }
    }
  }

  // Resource capacities.
  for (ResourceId r = 0; r < spec.resources().size(); ++r) {
    const std::uint32_t cap = spec.resources()[r].capacity;
    if (cap == 0) continue;
    std::uint32_t used = 0;
    for (TaskId t = 0; t < T; ++t) {
      if (impl.binding[t] == r) ++used;
    }
    if (used > cap) {
      return "capacity of " + spec.resources()[r].name + " exceeded";
    }
  }

  // Hard deadline.
  if (spec.latency_bound > 0 && impl.latency > spec.latency_bound) {
    return "latency exceeds the hard deadline";
  }

  // Objectives.  The implementation records the base triple; combinator
  // axes are derived from it (recompute_objectives) by whoever needs them.
  const pareto::Vec recomputed = recompute_base(spec, impl);
  if (recomputed != impl.objectives()) {
    return "objective mismatch: recorded " + pareto::to_string(impl.objectives()) +
           " recomputed " + pareto::to_string(recomputed);
  }
  return {};
}

}  // namespace aspmt::synth
